package baseline

import (
	"math"
	"testing"
)

func TestMarkovErasureValidate(t *testing.T) {
	good := MarkovErasure{N: 8, M: 2, FragmentMTTF: 1e5, FragmentMTTR: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MarkovErasure{
		{N: 2, M: 0, FragmentMTTF: 1e5, FragmentMTTR: 10},
		{N: 2, M: 3, FragmentMTTF: 1e5, FragmentMTTR: 10},
		{N: 4, M: 2, FragmentMTTF: 0, FragmentMTTR: 10},
		{N: 4, M: 2, FragmentMTTF: 1e5, FragmentMTTR: -1},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, e)
		}
	}
	if _, err := (MarkovErasure{N: 2, M: 3, FragmentMTTF: 1, FragmentMTTR: 1}).MTTDL(); err == nil {
		t.Error("MTTDL accepted invalid config")
	}
}

// The mirrored special case has the exact closed form
// MTTDL = (3λ + μ) / (2λ²) for failure rate λ and repair rate μ.
func TestMarkovMirrorExact(t *testing.T) {
	e := MarkovErasure{N: 2, M: 1, FragmentMTTF: 1e5, FragmentMTTR: 10}
	got, err := e.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	lambda := 1.0 / 1e5
	mu := 1.0 / 10
	want := (3*lambda + mu) / (2 * lambda * lambda)
	if relErr(got, want) > 1e-9 {
		t.Errorf("mirrored MTTDL = %v, want exact %v", got, want)
	}
	// And, with fast repair, half the paper-convention eq 9 (the
	// birth-death chain counts both replicas as first-fault initiators).
	if approx := 1e5 * 1e5 / (2 * 10); relErr(got, approx) > 0.01 {
		t.Errorf("mirrored MTTDL = %v, want ~MTTF²/(2·MTTR) = %v", got, approx)
	}
}

// Absorption from a single fragment (n=1, m=1): MTTDL is just the MTTF.
func TestMarkovSingleFragment(t *testing.T) {
	e := MarkovErasure{N: 1, M: 1, FragmentMTTF: 12345, FragmentMTTR: 1}
	got, err := e.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	if relErr(got, 12345) > 1e-12 {
		t.Errorf("single-fragment MTTDL = %v, want MTTF", got)
	}
}

// No-repair chains have the closed form of a pure death process: the sum
// of expected holding times 1/λ_k.
func TestMarkovNoRepairLimit(t *testing.T) {
	// Make repair hopeless (MTTR enormous) and compare against the pure
	// death process sum for n=3, m=1: 1/(3λ) + 1/(2λ) + 1/λ.
	lambda := 1.0 / 1000
	e := MarkovErasure{N: 3, M: 1, FragmentMTTF: 1000, FragmentMTTR: 1e15}
	got, err := e.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	want := 1/(3*lambda) + 1/(2*lambda) + 1/lambda
	if relErr(got, want) > 1e-6 {
		t.Errorf("no-repair MTTDL = %v, want death-process sum %v", got, want)
	}
}

func TestMarkovMonotonicity(t *testing.T) {
	base := MarkovErasure{N: 6, M: 3, FragmentMTTF: 1e5, FragmentMTTR: 10}
	baseline, err := base.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	// Faster repair helps.
	fast := base
	fast.FragmentMTTR = 1
	if v, _ := fast.MTTDL(); v <= baseline {
		t.Errorf("faster repair MTTDL %v should exceed %v", v, baseline)
	}
	// Sturdier fragments help.
	sturdy := base
	sturdy.FragmentMTTF = 1e6
	if v, _ := sturdy.MTTDL(); v <= baseline {
		t.Errorf("sturdier fragments MTTDL %v should exceed %v", v, baseline)
	}
	// Extra fragments at the same m help.
	wider := base
	wider.N = 7
	if v, _ := wider.MTTDL(); v <= baseline {
		t.Errorf("wider code MTTDL %v should exceed %v", v, baseline)
	}
	// Needing more fragments at the same n hurts.
	needier := base
	needier.M = 4
	if v, _ := needier.MTTDL(); v >= baseline {
		t.Errorf("needier code MTTDL %v should fall below %v", v, baseline)
	}
}

// Weatherspoon & Kubiatowicz's headline: at equal storage overhead,
// erasure coding buys orders of magnitude over replication.
func TestErasureBeatsReplicationAtEqualOverhead(t *testing.T) {
	repl, erasure := EqualOverheadComparison(4, 4, 1e5, 10)
	if repl.StorageOverhead() != 4 || erasure.StorageOverhead() != 4 {
		t.Fatalf("overheads %v, %v; want both 4", repl.StorageOverhead(), erasure.StorageOverhead())
	}
	a, err := repl.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := erasure.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	if b < 100*a {
		t.Errorf("16-of-4 erasure MTTDL %v should dwarf 4-way replication %v", b, a)
	}
}

func TestMarkovLossProbability(t *testing.T) {
	e := MarkovErasure{N: 2, M: 1, FragmentMTTF: 1e5, FragmentMTTR: 10}
	if p, _ := e.LossProbability(0); p != 0 {
		t.Errorf("loss at t=0 = %v", p)
	}
	mttdl, _ := e.MTTDL()
	p, err := e.LossProbability(mttdl)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - math.Exp(-1); relErr(p, want) > 1e-9 {
		t.Errorf("loss at MTTDL = %v, want %v", p, want)
	}
}
