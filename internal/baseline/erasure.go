package baseline

import (
	"fmt"
	"math"
)

// MarkovErasure is the birth–death Markov model of an m-of-n
// erasure-coded object, the analytic tool behind Weatherspoon &
// Kubiatowicz's "Erasure coding vs. replication" comparison that the
// paper surveys in §7. n fragments are stored; any m suffice to recover.
// Fragments fail independently at rate 1/FragmentMTTF and are repaired in
// parallel at rate 1/FragmentMTTR each. Data die when n-m+1 fragments are
// simultaneously failed.
//
// Replication is the m=1 special case, which ties this model to the
// paper's eq 12 (with α = 1) and to the simulator's MinIntact knob.
type MarkovErasure struct {
	// N is the total number of fragments.
	N int
	// M is the number of fragments required to recover.
	M int
	// FragmentMTTF is the mean time to failure of one fragment, hours.
	FragmentMTTF float64
	// FragmentMTTR is the mean time to repair one failed fragment, hours.
	FragmentMTTR float64
}

// Validate reports whether the configuration is in the model's domain.
func (e MarkovErasure) Validate() error {
	if e.M < 1 || e.N < e.M {
		return fmt.Errorf("%w: need 1 <= m (%d) <= n (%d)", ErrInvalid, e.M, e.N)
	}
	if e.FragmentMTTF <= 0 || math.IsNaN(e.FragmentMTTF) {
		return fmt.Errorf("%w: fragment MTTF %v must be positive", ErrInvalid, e.FragmentMTTF)
	}
	if e.FragmentMTTR <= 0 || math.IsNaN(e.FragmentMTTR) {
		return fmt.Errorf("%w: fragment MTTR %v must be positive", ErrInvalid, e.FragmentMTTR)
	}
	return nil
}

// StorageOverhead returns n/m, the blow-up factor over storing the data
// once — the axis on which erasure coding and replication are compared
// fairly.
func (e MarkovErasure) StorageOverhead() float64 {
	return float64(e.N) / float64(e.M)
}

// MTTDL returns the mean time from all-fragments-healthy to data loss
// (n-m+1 simultaneous failures), by solving the absorption-time system of
// the birth–death chain exactly.
//
// State k holds k failed fragments; failures arrive at (n-k)/MTTF,
// repairs complete at k/MTTR (parallel repair), and state n-m+1 absorbs.
func (e MarkovErasure) MTTDL() (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	absorb := e.N - e.M + 1
	lambda := func(k int) float64 { return float64(e.N-k) / e.FragmentMTTF }
	mu := func(k int) float64 { return float64(k) / e.FragmentMTTR }

	// T[k] = expected time to absorption from state k, T[absorb] = 0,
	// with (λ_k + μ_k)·T[k] = 1 + λ_k·T[k+1] + μ_k·T[k-1].
	//
	// Because the chain only absorbs upward, the increments
	// a_k = T[k] - T[k+1] satisfy the first-order recurrence
	// λ_k·a_k = 1 + μ_k·a_{k-1}, a_0 = 1/λ_0: every term is positive,
	// so the evaluation is numerically stable even for the extreme
	// repair-to-failure ratios archival systems have.
	t := 0.0
	aPrev := 0.0
	for k := 0; k < absorb; k++ {
		aPrev = (1 + mu(k)*aPrev) / lambda(k)
		t += aPrev
	}
	return t, nil
}

// LossProbability returns P(loss within mission hours) under the
// memoryless approximation on the MTTDL.
func (e MarkovErasure) LossProbability(mission float64) (float64, error) {
	mttdl, err := e.MTTDL()
	if err != nil {
		return 0, err
	}
	if mission <= 0 {
		return 0, nil
	}
	return 1 - math.Exp(-mission/mttdl), nil
}

// EqualOverheadComparison returns an m-of-n erasure configuration with
// (approximately) the same storage overhead as r-way replication of the
// same data, using n = r·m fragments: the apples-to-apples setup of the
// Weatherspoon comparison.
func EqualOverheadComparison(r, m int, fragmentMTTF, fragmentMTTR float64) (replicated, erasure MarkovErasure) {
	replicated = MarkovErasure{N: r, M: 1, FragmentMTTF: fragmentMTTF, FragmentMTTR: fragmentMTTR}
	erasure = MarkovErasure{N: r * m, M: m, FragmentMTTF: fragmentMTTF, FragmentMTTR: fragmentMTTR}
	return replicated, erasure
}
