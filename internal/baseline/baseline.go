// Package baseline implements the prior reliability models the paper
// builds on and positions against (§5, §7):
//
//   - Patterson, Gibson & Katz (1988): the original RAID MTTDL model,
//     double *visible* disk failures only.
//   - Chen et al. (1994): the RAID survey extension with system crashes
//     and uncorrectable bit errors encountered during reconstruction —
//     the first of the lineage to price in latent-style faults.
//   - A mirrored visible-only model, the α = 1 limit the paper notes its
//     eq 9 "appropriately resembles".
//
// These are the comparators for the benches: the point of the paper's
// model is what these miss (detection time MDL, correlation α, and
// latent faults outside the device layer).
package baseline

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid reports baseline parameters outside the model domain.
var ErrInvalid = errors.New("baseline: invalid parameters")

// PattersonRAID is the RAID reliability model of Patterson et al. (1988):
// an array of TotalDisks disks organized into redundancy groups of
// GroupSize disks, each group surviving any single failure. Data is lost
// when a second disk in a group fails during the first disk's repair.
type PattersonRAID struct {
	// DiskMTTF is the mean time to failure of one disk, in hours.
	DiskMTTF float64
	// DiskMTTR is the mean time to repair/rebuild one disk, in hours.
	DiskMTTR float64
	// TotalDisks is the number of disks in the array (N).
	TotalDisks int
	// GroupSize is the number of disks in a redundancy group (G),
	// including the parity disk. GroupSize = 2 is mirroring.
	GroupSize int
}

// Validate reports whether the configuration is in the model's domain.
func (p PattersonRAID) Validate() error {
	if p.DiskMTTF <= 0 || math.IsNaN(p.DiskMTTF) {
		return fmt.Errorf("%w: disk MTTF %v must be positive", ErrInvalid, p.DiskMTTF)
	}
	if p.DiskMTTR <= 0 || math.IsNaN(p.DiskMTTR) {
		return fmt.Errorf("%w: disk MTTR %v must be positive", ErrInvalid, p.DiskMTTR)
	}
	if p.GroupSize < 2 {
		return fmt.Errorf("%w: group size %d must be at least 2", ErrInvalid, p.GroupSize)
	}
	if p.TotalDisks < p.GroupSize {
		return fmt.Errorf("%w: total disks %d below group size %d", ErrInvalid, p.TotalDisks, p.GroupSize)
	}
	return nil
}

// MTTDL returns the Patterson mean time to data loss,
//
//	MTTF² / (N · (G-1) · MTTR)
//
// in hours: the array loses data at the rate of first failures (N/MTTF)
// times the probability ((G-1)·MTTR/MTTF) that a companion in the same
// group fails during the rebuild window.
func (p PattersonRAID) MTTDL() float64 {
	return p.DiskMTTF * p.DiskMTTF /
		(float64(p.TotalDisks) * float64(p.GroupSize-1) * p.DiskMTTR)
}

// LossProbability returns the probability of data loss within mission
// hours under the memoryless assumption.
func (p PattersonRAID) LossProbability(mission float64) float64 {
	if mission <= 0 {
		return 0
	}
	return 1 - math.Exp(-mission/p.MTTDL())
}

// ChenRAID extends PattersonRAID with the two channels Chen et al. (1994)
// identified as dominating real arrays: uncorrectable bit errors
// discovered while reading the surviving disks during reconstruction, and
// system crashes that leave parity inconsistent just before a disk
// failure.
type ChenRAID struct {
	PattersonRAID
	// BitsPerDisk is the disk capacity in bits.
	BitsPerDisk float64
	// BitErrorRate is the irrecoverable read error probability per bit
	// (e.g. 1e-14 for the §6.1 consumer drive).
	BitErrorRate float64
	// SystemMTTF is the mean time between system crashes, in hours.
	// Zero or +Inf disables the crash channel (hardware RAID with NVRAM).
	SystemMTTF float64
	// SystemMTTR is the mean time to restore parity consistency after a
	// crash, in hours.
	SystemMTTR float64
}

// Validate reports whether the configuration is in the model's domain.
func (c ChenRAID) Validate() error {
	if err := c.PattersonRAID.Validate(); err != nil {
		return err
	}
	if c.BitsPerDisk < 0 || math.IsNaN(c.BitsPerDisk) {
		return fmt.Errorf("%w: bits per disk %v must be non-negative", ErrInvalid, c.BitsPerDisk)
	}
	if c.BitErrorRate < 0 || c.BitErrorRate > 1 || math.IsNaN(c.BitErrorRate) {
		return fmt.Errorf("%w: bit error rate %v must be in [0,1]", ErrInvalid, c.BitErrorRate)
	}
	if c.SystemMTTF < 0 || c.SystemMTTR < 0 {
		return fmt.Errorf("%w: system MTTF/MTTR must be non-negative", ErrInvalid)
	}
	return nil
}

// RebuildBitErrorProbability returns the probability that reconstructing
// one failed disk — which reads every bit of the G-1 survivors — hits at
// least one irrecoverable bit error: 1 - exp(-BER · bits · (G-1)).
func (c ChenRAID) RebuildBitErrorProbability() float64 {
	exponent := c.BitErrorRate * c.BitsPerDisk * float64(c.GroupSize-1)
	return 1 - math.Exp(-exponent)
}

// doubleDiskRate is the Patterson channel as a loss rate per hour.
func (c ChenRAID) doubleDiskRate() float64 {
	return 1 / c.PattersonRAID.MTTDL()
}

// diskBitErrorRate is the rate of "disk failure whose rebuild hits a bit
// error" events per hour.
func (c ChenRAID) diskBitErrorRate() float64 {
	firstFailures := float64(c.TotalDisks) / c.DiskMTTF
	return firstFailures * c.RebuildBitErrorProbability()
}

// crashDiskRate is the rate of "system crash closely followed by a disk
// failure while parity is inconsistent" events per hour. Disabled when
// SystemMTTF is zero or infinite.
func (c ChenRAID) crashDiskRate() float64 {
	if c.SystemMTTF <= 0 || math.IsInf(c.SystemMTTF, 1) {
		return 0
	}
	crashes := 1 / c.SystemMTTF
	pDiskDuringWindow := float64(c.TotalDisks) * c.SystemMTTR / c.DiskMTTF
	return crashes * pDiskDuringWindow
}

// MTTDL combines the three loss channels as competing exponentials.
func (c ChenRAID) MTTDL() float64 {
	rate := c.doubleDiskRate() + c.diskBitErrorRate() + c.crashDiskRate()
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// LossProbability returns the probability of data loss within mission
// hours.
func (c ChenRAID) LossProbability(mission float64) float64 {
	if mission <= 0 {
		return 0
	}
	return 1 - math.Exp(-mission/c.MTTDL())
}

// MirroredVisibleOnly returns the MTTDL of a mirrored pair under the
// original RAID model restricted to visible faults: MV²/MRV. This is the
// α = 1, no-latent limit of the paper's eq 9 and the "dangerous
// assumption" strawman of §4 — it is what you believe if you assume all
// faults are visible and independent.
func MirroredVisibleOnly(mv, mrv float64) float64 {
	return mv * mv / mrv
}
