package baseline

import (
	"math"
	"testing"

	"repro/internal/model"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

func TestPattersonWorkedExample(t *testing.T) {
	// The 1988 paper's running example: 100 disks, groups of 10+1... use
	// round numbers here: MTTF 30,000 h, MTTR 1 h, 100 disks, G=10.
	p := PattersonRAID{DiskMTTF: 30000, DiskMTTR: 1, TotalDisks: 100, GroupSize: 10}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 30000.0 * 30000 / (100 * 9 * 1)
	if got := p.MTTDL(); relErr(got, want) > 1e-12 {
		t.Errorf("MTTDL = %v, want %v", got, want)
	}
}

func TestPattersonMirrorMatchesPaperEq9(t *testing.T) {
	// A mirrored pair with the paper's treatment: the paper models the
	// pair as a unit with first-fault mean MV, so its eq 9 (alpha=1) is
	// MV^2/MRV. Patterson's N=2, G=2 counts both disks as first-fault
	// initiators, giving exactly half.
	mv, mrv := model.PaperMV, model.PaperMRV
	pair := PattersonRAID{DiskMTTF: mv, DiskMTTR: mrv, TotalDisks: 2, GroupSize: 2}
	paperEq9 := model.Params{MV: mv, ML: math.Inf(1), MRV: mrv, MRL: 1, MDL: 0, Alpha: 1}.VisibleDominatedMTTDL()
	if got, want := pair.MTTDL(), paperEq9/2; relErr(got, want) > 1e-12 {
		t.Errorf("Patterson mirrored MTTDL = %v, want paper eq9/2 = %v", got, want)
	}
	if got := MirroredVisibleOnly(mv, mrv); relErr(got, paperEq9) > 1e-12 {
		t.Errorf("MirroredVisibleOnly = %v, want eq9 with alpha=1 = %v", got, paperEq9)
	}
}

func TestPattersonValidate(t *testing.T) {
	good := PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PattersonRAID{
		{DiskMTTF: 0, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5},
		{DiskMTTF: 1e5, DiskMTTR: -1, TotalDisks: 10, GroupSize: 5},
		{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 1},
		{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 3, GroupSize: 5},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, b)
		}
	}
}

func TestPattersonScaling(t *testing.T) {
	base := PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5}
	// Twice the disks, half the MTTDL.
	double := base
	double.TotalDisks = 20
	if got, want := double.MTTDL(), base.MTTDL()/2; relErr(got, want) > 1e-12 {
		t.Errorf("doubling disks: MTTDL = %v, want %v", got, want)
	}
	// Twice the MTTF, four times the MTTDL (quadratic, like the paper's
	// eq 9).
	sturdier := base
	sturdier.DiskMTTF *= 2
	if got, want := sturdier.MTTDL(), base.MTTDL()*4; relErr(got, want) > 1e-12 {
		t.Errorf("doubling MTTF: MTTDL = %v, want %v", got, want)
	}
}

func TestChenReducesToPatterson(t *testing.T) {
	chen := ChenRAID{
		PattersonRAID: PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5},
		BitsPerDisk:   0, // no bit error channel
		BitErrorRate:  0,
		SystemMTTF:    0, // crash channel disabled
	}
	if err := chen.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := chen.MTTDL(), chen.PattersonRAID.MTTDL(); relErr(got, want) > 1e-12 {
		t.Errorf("Chen with channels disabled = %v, want Patterson %v", got, want)
	}
}

func TestChenBitErrorChannelDominatesBigDisks(t *testing.T) {
	// Chen et al.'s headline: for large disks, rebuild bit errors —
	// latent faults — dominate double disk failures.
	chen := ChenRAID{
		PattersonRAID: PattersonRAID{DiskMTTF: 1e6, DiskMTTR: 10, TotalDisks: 8, GroupSize: 8},
		BitsPerDisk:   200e9 * 8, // 200 GB disk (§6.1 Barracuda)
		BitErrorRate:  1e-14,
	}
	if chen.diskBitErrorRate() <= chen.doubleDiskRate() {
		t.Errorf("bit-error channel rate %v should dominate double-disk rate %v for 200GB consumer disks",
			chen.diskBitErrorRate(), chen.doubleDiskRate())
	}
	// And the combined MTTDL must sit below the Patterson value.
	if chen.MTTDL() >= chen.PattersonRAID.MTTDL() {
		t.Error("Chen MTTDL should be strictly below Patterson when extra channels are live")
	}
}

func TestChenRebuildBitErrorProbability(t *testing.T) {
	chen := ChenRAID{
		PattersonRAID: PattersonRAID{DiskMTTF: 1e6, DiskMTTR: 10, TotalDisks: 4, GroupSize: 4},
		BitsPerDisk:   1e12,
		BitErrorRate:  1e-13,
	}
	// exponent = 1e-13 * 1e12 * 3 = 0.3
	want := 1 - math.Exp(-0.3)
	if got := chen.RebuildBitErrorProbability(); relErr(got, want) > 1e-12 {
		t.Errorf("rebuild bit error probability = %v, want %v", got, want)
	}
	// Probability must saturate, never exceed 1.
	chen.BitErrorRate = 1
	if got := chen.RebuildBitErrorProbability(); got > 1 {
		t.Errorf("probability %v exceeds 1", got)
	}
}

func TestChenCrashChannel(t *testing.T) {
	base := ChenRAID{
		PattersonRAID: PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5},
		SystemMTTF:    1000, // crashes every ~6 weeks (software RAID)
		SystemMTTR:    1,
	}
	if base.crashDiskRate() <= 0 {
		t.Fatal("crash channel should be live")
	}
	nvram := base
	nvram.SystemMTTF = math.Inf(1)
	if nvram.crashDiskRate() != 0 {
		t.Error("infinite system MTTF should disable the crash channel")
	}
	if base.MTTDL() >= nvram.MTTDL() {
		t.Error("crash channel should reduce MTTDL")
	}
}

func TestChenValidate(t *testing.T) {
	good := ChenRAID{
		PattersonRAID: PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5},
		BitsPerDisk:   1e12, BitErrorRate: 1e-14, SystemMTTF: 1000, SystemMTTR: 1,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BitErrorRate = 2
	if err := bad.Validate(); err == nil {
		t.Error("bit error rate 2 accepted")
	}
	bad = good
	bad.SystemMTTR = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative system MTTR accepted")
	}
	bad = good
	bad.BitsPerDisk = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN capacity accepted")
	}
}

func TestLossProbabilities(t *testing.T) {
	p := PattersonRAID{DiskMTTF: 1e5, DiskMTTR: 10, TotalDisks: 10, GroupSize: 5}
	if got := p.LossProbability(0); got != 0 {
		t.Errorf("loss probability at 0 = %v", got)
	}
	mission := model.YearsToHours(50)
	want := 1 - math.Exp(-mission/p.MTTDL())
	if got := p.LossProbability(mission); relErr(got, want) > 1e-12 {
		t.Errorf("loss probability = %v, want %v", got, want)
	}
}
