package stats

import (
	"fmt"
	"math"
	"sort"
)

// ObsBuffer is a mergeable, compressed buffer of survival observations:
// the streaming counterpart of an []Observation. Event (loss) times are
// kept individually — Kaplan–Meier needs each one — while censored
// observations, which in a horizon-censored Monte Carlo run all share a
// handful of distinct times (usually exactly one, the horizon), collapse
// into (time, count) pairs. In the rare-loss regimes long-term storage
// studies live in, that makes the buffer O(losses), not O(trials).
//
// The zero value is an empty buffer ready to use. Buffers merge (Merge)
// so per-worker partials from a parallel sweep can be reduced; Events
// preserves insertion order across merges, which lets callers that need
// an order-sensitive reduction (e.g. a Welford pass over loss times)
// replay the merged stream deterministically.
type ObsBuffer struct {
	events       []float64 // event (loss) times, insertion order
	censorTimes  []float64 // distinct censoring times, insertion order
	censorCounts []int     // parallel counts for censorTimes
	censored     int       // total censored observations
}

// AddEvent records one observation that ended in the event of interest.
func (b *ObsBuffer) AddEvent(t float64) {
	b.events = append(b.events, t)
}

// AddCensored records one censored observation at time t.
func (b *ObsBuffer) AddCensored(t float64) {
	b.censored++
	for i, ct := range b.censorTimes {
		if ct == t {
			b.censorCounts[i]++
			return
		}
	}
	b.censorTimes = append(b.censorTimes, t)
	b.censorCounts = append(b.censorCounts, 1)
}

// Merge appends o's observations to b: events keep their order (b's
// first, then o's), censored counts accumulate. o is not modified.
func (b *ObsBuffer) Merge(o *ObsBuffer) {
	b.events = append(b.events, o.events...)
	for i, ct := range o.censorTimes {
		n := o.censorCounts[i]
		b.censored += n
		found := false
		for j, bt := range b.censorTimes {
			if bt == ct {
				b.censorCounts[j] += n
				found = true
				break
			}
		}
		if !found {
			b.censorTimes = append(b.censorTimes, ct)
			b.censorCounts = append(b.censorCounts, n)
		}
	}
}

// Reset empties the buffer, keeping its backing arrays for reuse.
func (b *ObsBuffer) Reset() {
	b.events = b.events[:0]
	b.censorTimes = b.censorTimes[:0]
	b.censorCounts = b.censorCounts[:0]
	b.censored = 0
}

// N returns the total number of observations.
func (b *ObsBuffer) N() int { return len(b.events) + b.censored }

// EventsN returns the number of event observations.
func (b *ObsBuffer) EventsN() int { return len(b.events) }

// CensoredN returns the number of censored observations.
func (b *ObsBuffer) CensoredN() int { return b.censored }

// Events returns the event times in insertion order. The slice is the
// buffer's backing store: callers must not modify it, and it is
// invalidated by the next AddEvent or Merge.
func (b *ObsBuffer) Events() []float64 { return b.events }

// KaplanMeier fits the product-limit estimator to the buffer's
// observations. The fit is bit-identical to NewKaplanMeier over the
// equivalent []Observation: the estimator depends only on the multiset
// of (time, event) pairs, and this walk performs the same float
// operations in the same (ascending-time) order.
func (b *ObsBuffer) KaplanMeier() (*KaplanMeier, error) {
	n := b.N()
	if n == 0 {
		return nil, ErrNoData
	}
	for _, t := range b.events {
		if t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("stats: survival observation time %v must be non-negative", t)
		}
	}
	for _, t := range b.censorTimes {
		if t < 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("stats: survival observation time %v must be non-negative", t)
		}
	}

	ev := make([]float64, len(b.events))
	copy(ev, b.events)
	sort.Float64s(ev)
	type censorGroup struct {
		t     float64
		count int
	}
	cz := make([]censorGroup, len(b.censorTimes))
	for i, t := range b.censorTimes {
		cz[i] = censorGroup{t: t, count: b.censorCounts[i]}
	}
	sort.Slice(cz, func(i, j int) bool { return cz[i].t < cz[j].t })

	km := &KaplanMeier{n: n}
	if len(ev) > 0 {
		km.maxTime = ev[len(ev)-1]
	}
	if len(cz) > 0 && cz[len(cz)-1].t > km.maxTime {
		km.maxTime = cz[len(cz)-1].t
	}

	s := 1.0
	removed := 0 // observations at times strictly before the current group
	ci := 0
	for i := 0; i < len(ev); {
		t := ev[i]
		for ci < len(cz) && cz[ci].t < t {
			removed += cz[ci].count
			ci++
		}
		atRisk := n - removed
		events := 0
		for i < len(ev) && ev[i] == t {
			events++
			i++
		}
		s *= 1 - float64(events)/float64(atRisk)
		km.times = append(km.times, t)
		km.survival = append(km.survival, s)
		km.atRisk = append(km.atRisk, atRisk)
		km.events = append(km.events, events)
		removed += events
		// Censored observations sharing this exact time belong to the
		// same risk group; they only leave the risk set afterwards.
		for ci < len(cz) && cz[ci].t == t {
			removed += cz[ci].count
			ci++
		}
	}
	return km, nil
}
