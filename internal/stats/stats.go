// Package stats implements the statistical estimators the Monte Carlo
// harness needs: streaming moments, quantiles, histograms, confidence
// intervals (Student-t and bootstrap), and Kaplan–Meier survival estimation
// for horizon-censored time-to-data-loss trials.
//
// Everything is implemented from scratch on the standard library, because
// the reproduction environment is offline and the paper's claims are about
// means, tail probabilities, and survival fractions — all of which need
// honest uncertainty estimates before "model ≈ simulation" can be asserted.
package stats

import (
	"errors"
	"math"
)

// ErrNoData reports an estimator asked for a result before observing any
// samples.
var ErrNoData = errors.New("stats: no data")

// Running accumulates count, mean, and variance in one pass using
// Welford's algorithm, which stays numerically stable over the millions of
// trials a reliability sweep produces. The zero value is an empty
// accumulator ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll incorporates every value in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// Merge combines another accumulator into r (Chan et al. parallel update),
// so per-goroutine accumulators can be reduced after a parallel sweep.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	nA, nB := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := nA + nB
	r.mean += delta * nB / total
	r.m2 += o.m2 + delta*delta*nA*nB/total
	r.n += o.n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (NaN if empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased sample variance (NaN if n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation (NaN if n < 2).
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean (NaN if n < 2).
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Min returns the smallest observation (NaN if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// Interval is a two-sided confidence interval around a point estimate.
type Interval struct {
	Point  float64
	Lo, Hi float64
	// Level is the nominal coverage, e.g. 0.95.
	Level float64
}

// HalfWidth returns half the interval width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// RelativeHalfWidth returns HalfWidth/|Point| (Inf when Point is 0),
// the usual sequential-stopping criterion for Monte Carlo runs.
func (iv Interval) RelativeHalfWidth() float64 {
	if iv.Point == 0 {
		return math.Inf(1)
	}
	return iv.HalfWidth() / math.Abs(iv.Point)
}

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// MeanCI returns the Student-t confidence interval for the mean at the
// given level (e.g. 0.95). It returns ErrNoData when fewer than two
// observations are available.
func (r *Running) MeanCI(level float64) (Interval, error) {
	if r.n < 2 {
		return Interval{}, ErrNoData
	}
	t := tCritical(level, r.n-1)
	h := t * r.StdErr()
	return Interval{Point: r.mean, Lo: r.mean - h, Hi: r.mean + h, Level: level}, nil
}

// Proportion is a streaming Bernoulli estimator for probabilities such as
// P(data loss within 50 years).
type Proportion struct {
	n, hits int
}

// Add incorporates one Bernoulli observation.
func (p *Proportion) Add(hit bool) {
	p.n++
	if hit {
		p.hits++
	}
}

// Merge combines another accumulator into p. Counts are integers, so the
// merge is exact: merged partials from a parallel sweep produce the same
// estimator and interval as a single sequential pass, in any merge order.
func (p *Proportion) Merge(o Proportion) {
	p.n += o.n
	p.hits += o.hits
}

// N returns the number of trials observed.
func (p *Proportion) N() int { return p.n }

// Hits returns the number of successes observed.
func (p *Proportion) Hits() int { return p.hits }

// Estimate returns the sample proportion (NaN if empty).
func (p *Proportion) Estimate() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	return float64(p.hits) / float64(p.n)
}

// CI returns the Wilson score interval, which behaves sensibly for the
// extreme probabilities (≪1) reliability studies live in, unlike the Wald
// interval.
func (p *Proportion) CI(level float64) (Interval, error) {
	if p.n == 0 {
		return Interval{}, ErrNoData
	}
	z := zCritical(level)
	n := float64(p.n)
	phat := float64(p.hits) / n
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n))
	return Interval{Point: phat, Lo: math.Max(0, center-half), Hi: math.Min(1, center+half), Level: level}, nil
}
