package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestKaplanMeierNoCensoring(t *testing.T) {
	// With no censoring the KM curve steps through the empirical
	// survival function and the restricted mean equals the sample mean.
	obs := []Observation{
		{Time: 1, Event: true},
		{Time: 2, Event: true},
		{Time: 3, Event: true},
		{Time: 4, Event: true},
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0.5, 1}, {1, 0.75}, {2.5, 0.5}, {3, 0.25}, {4, 0}, {10, 0},
	}
	for _, c := range cases {
		if got := km.Survival(c.t); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("S(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if got := km.RestrictedMean(100); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("restricted mean = %v, want 2.5 (sample mean)", got)
	}
	if m, ok := km.MedianSurvival(); !ok || m != 2 {
		t.Errorf("median = %v, %v; want 2, true", m, ok)
	}
}

func TestKaplanMeierCensoring(t *testing.T) {
	// Classic worked example: events at 1 and 3, censored at 2 and 4.
	obs := []Observation{
		{Time: 1, Event: true},
		{Time: 2, Event: false},
		{Time: 3, Event: true},
		{Time: 4, Event: false},
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// S(1) = 3/4. At t=3, risk set = 2, so S(3) = 3/4 * 1/2 = 3/8.
	if got := km.Survival(1); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("S(1) = %v, want 0.75", got)
	}
	if got := km.Survival(3.5); !almostEqual(got, 0.375, 1e-12) {
		t.Errorf("S(3.5) = %v, want 0.375", got)
	}
	// Censoring times do not drop the curve.
	if got := km.Survival(2.5); !almostEqual(got, 0.75, 1e-12) {
		t.Errorf("S(2.5) = %v, want 0.75 (censoring must not drop the curve)", got)
	}
	if got := km.LossProbability(3.5); !almostEqual(got, 0.625, 1e-12) {
		t.Errorf("loss probability = %v, want 0.625", got)
	}
}

func TestKaplanMeierAllCensored(t *testing.T) {
	obs := []Observation{{Time: 5, Event: false}, {Time: 7, Event: false}}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := km.Survival(100); got != 1 {
		t.Errorf("all-censored survival = %v, want 1", got)
	}
	if _, ok := km.MedianSurvival(); ok {
		t.Error("median should be unavailable with no events")
	}
	if got := km.RestrictedMean(10); got != 10 {
		t.Errorf("restricted mean = %v, want horizon 10", got)
	}
}

func TestKaplanMeierErrors(t *testing.T) {
	if _, err := NewKaplanMeier(nil); err == nil {
		t.Error("empty observations accepted")
	}
	if _, err := NewKaplanMeier([]Observation{{Time: -1, Event: true}}); err == nil {
		t.Error("negative time accepted")
	}
}

func TestKaplanMeierMatchesExponentialTruth(t *testing.T) {
	// Draw exponential lifetimes with mean 100, censor at horizon 80,
	// and check S(t) against the true exp(-t/100) curve.
	src := rng.New(77)
	exp, _ := rng.NewExponential(100)
	const horizon = 80.0
	obs := make([]Observation, 20000)
	for i := range obs {
		life := exp.Sample(src)
		if life <= horizon {
			obs[i] = Observation{Time: life, Event: true}
		} else {
			obs[i] = Observation{Time: horizon, Event: false}
		}
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{10, 25, 50, 75} {
		want := math.Exp(-tt / 100)
		got := km.Survival(tt)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("S(%v) = %v, want %v +- 0.01", tt, got, want)
		}
		iv := km.SurvivalCI(tt, 0.95)
		if !iv.Contains(want) && math.Abs(iv.Point-want) > 3*km.GreenwoodSE(tt) {
			t.Errorf("true survival %v far outside CI %+v at t=%v", want, iv, tt)
		}
	}
	// Restricted mean over [0, 80] for Exp(100):
	// integral of exp(-t/100) = 100*(1-exp(-0.8)).
	want := 100 * (1 - math.Exp(-0.8))
	if got := km.RestrictedMean(horizon); math.Abs(got-want) > 1 {
		t.Errorf("restricted mean = %v, want %v +- 1", got, want)
	}
}

func TestKaplanMeierTiedTimes(t *testing.T) {
	obs := []Observation{
		{Time: 2, Event: true},
		{Time: 2, Event: true},
		{Time: 2, Event: false},
		{Time: 5, Event: true},
	}
	km, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	// At t=2: 4 at risk, 2 events -> S = 1/2.
	if got := km.Survival(2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("S(2) = %v, want 0.5", got)
	}
	// At t=5: 1 at risk, 1 event -> S = 0.
	if got := km.Survival(5); !almostEqual(got, 0, 1e-12) {
		t.Errorf("S(5) = %v, want 0", got)
	}
	if km.N() != 4 || km.MaxTime() != 5 {
		t.Errorf("N=%d MaxTime=%v, want 4, 5", km.N(), km.MaxTime())
	}
}
