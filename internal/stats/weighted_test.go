package stats

import (
	"math"
	"math/rand"
	"testing"
)

// naiveWeightedMoments is the two-pass reference: Σwx/Σw and the
// frequency-interpretation weighted sample variance.
func naiveWeightedMoments(xs, ws []float64) (mean, variance float64) {
	var sumW, sumW2, sumWX float64
	for i, x := range xs {
		sumW += ws[i]
		sumW2 += ws[i] * ws[i]
		sumWX += ws[i] * x
	}
	mean = sumWX / sumW
	var m2 float64
	for i, x := range xs {
		m2 += ws[i] * (x - mean) * (x - mean)
	}
	return mean, m2 / (sumW - sumW2/sumW)
}

func TestWeightedMeanMatchesTwoPass(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	ws := make([]float64, 500)
	var m WeightedMean
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		ws[i] = r.ExpFloat64() + 0.01
		m.Add(xs[i], ws[i])
	}
	wantMean, wantVar := naiveWeightedMoments(xs, ws)
	if !almostEqual(m.Mean(), wantMean, 1e-10) {
		t.Errorf("Mean = %v, want %v", m.Mean(), wantMean)
	}
	if !almostEqual(m.Variance(), wantVar, 1e-9) {
		t.Errorf("Variance = %v, want %v", m.Variance(), wantVar)
	}
	if m.N() != len(xs) {
		t.Errorf("N = %d, want %d", m.N(), len(xs))
	}
}

func TestWeightedMeanEqualWeightsDegeneratesToRunning(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var wm WeightedMean
	var rn Running
	for i := 0; i < 200; i++ {
		x := r.NormFloat64()
		wm.Add(x, 1)
		rn.Add(x)
	}
	if !almostEqual(wm.Mean(), rn.Mean(), 1e-12) {
		t.Errorf("equal-weight Mean = %v, Running mean = %v", wm.Mean(), rn.Mean())
	}
	if !almostEqual(wm.Variance(), rn.Variance(), 1e-10) {
		t.Errorf("equal-weight Variance = %v, Running variance = %v", wm.Variance(), rn.Variance())
	}
	if ess := wm.EffectiveN(); !almostEqual(ess, 200, 1e-9) {
		t.Errorf("equal-weight EffectiveN = %v, want 200", ess)
	}
}

func TestWeightedMeanMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 300)
	ws := make([]float64, 300)
	for i := range xs {
		xs[i] = r.NormFloat64() * 5
		ws[i] = r.ExpFloat64()
	}
	var seq WeightedMean
	for i := range xs {
		seq.Add(xs[i], ws[i])
	}
	// Three uneven partials merged in order.
	var a, b, c WeightedMean
	for i := range xs {
		switch {
		case i < 50:
			a.Add(xs[i], ws[i])
		case i < 220:
			b.Add(xs[i], ws[i])
		default:
			c.Add(xs[i], ws[i])
		}
	}
	a.Merge(b)
	a.Merge(c)
	if !almostEqual(a.Mean(), seq.Mean(), 1e-10) {
		t.Errorf("merged Mean = %v, sequential = %v", a.Mean(), seq.Mean())
	}
	if !almostEqual(a.Variance(), seq.Variance(), 1e-8) {
		t.Errorf("merged Variance = %v, sequential = %v", a.Variance(), seq.Variance())
	}
	if a.N() != seq.N() || !almostEqual(a.SumWeights(), seq.SumWeights(), 1e-10) {
		t.Errorf("merged N/ΣW = %d/%v, sequential = %d/%v", a.N(), a.SumWeights(), seq.N(), seq.SumWeights())
	}
}

func TestWeightedMeanMergeEmptySides(t *testing.T) {
	var full WeightedMean
	full.Add(2, 1.5)
	full.Add(4, 0.5)

	empty := WeightedMean{}
	got := full
	got.Merge(empty)
	if got.Mean() != full.Mean() || got.N() != full.N() {
		t.Errorf("merge with empty changed state: %v", got)
	}
	var other WeightedMean
	other.Merge(full)
	if other.Mean() != full.Mean() || other.N() != full.N() {
		t.Errorf("empty.Merge(full) = %v, want copy of full", other)
	}
}

func TestWeightedMeanSkewedWeightsShrinkEffectiveN(t *testing.T) {
	var m WeightedMean
	// One dominant weight: ESS should collapse toward 1 even with many
	// observations.
	m.Add(1, 1000)
	for i := 0; i < 99; i++ {
		m.Add(2, 0.001)
	}
	if ess := m.EffectiveN(); ess > 1.1 {
		t.Errorf("EffectiveN = %v with one dominant weight, want ~1", ess)
	}
	if m.N() != 100 {
		t.Errorf("N = %d, want 100", m.N())
	}
}

func TestWeightedMeanEmptyAndCI(t *testing.T) {
	var m WeightedMean
	if !math.IsNaN(m.Mean()) {
		t.Errorf("empty Mean = %v, want NaN", m.Mean())
	}
	if _, err := m.MeanCI(0.95); err == nil {
		t.Error("empty MeanCI error = nil, want ErrNoData")
	}
	m.Add(5, 2)
	if _, err := m.MeanCI(0.95); err == nil {
		t.Error("single-observation MeanCI error = nil, want ErrNoData (ESS <= 1)")
	}
	m.Add(7, 2)
	m.Add(6, 2)
	iv, err := m.MeanCI(0.95)
	if err != nil {
		t.Fatalf("MeanCI: %v", err)
	}
	if !(iv.Lo <= iv.Point && iv.Point <= iv.Hi) {
		t.Errorf("interval not ordered: %+v", iv)
	}
	if !almostEqual(iv.Point, 6, 1e-12) {
		t.Errorf("Point = %v, want 6", iv.Point)
	}
}

func TestWeightedProportionHorvitzThompson(t *testing.T) {
	// Hand-checked: 4 trials, weights {0.5, 2, 1, 3}, hits on the 2 and
	// the 3. Estimate = (2+3)/4.
	var p WeightedProportion
	p.Add(false, 0.5)
	p.Add(true, 2)
	p.Add(false, 1)
	p.Add(true, 3)
	if got := p.Estimate(); !almostEqual(got, 1.25, 1e-12) {
		t.Errorf("Estimate = %v, want 1.25", got)
	}
	if p.N() != 4 || p.Hits() != 2 {
		t.Errorf("N/Hits = %d/%d, want 4/2", p.N(), p.Hits())
	}
	if got := p.SumWeights(); !almostEqual(got, 6.5, 1e-12) {
		t.Errorf("SumWeights = %v, want 6.5", got)
	}
	// ESS of the hitting trials: (2+3)²/(4+9) = 25/13.
	if got := p.EffectiveN(); !almostEqual(got, 25.0/13.0, 1e-12) {
		t.Errorf("EffectiveN = %v, want %v", got, 25.0/13.0)
	}
}

func TestWeightedProportionUnitWeightsMatchProportion(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	var wp WeightedProportion
	var pl Proportion
	for i := 0; i < 400; i++ {
		hit := r.Float64() < 0.3
		wp.Add(hit, 1)
		pl.Add(hit)
	}
	if !almostEqual(wp.Estimate(), pl.Estimate(), 1e-12) {
		t.Errorf("unit-weight Estimate = %v, Proportion = %v", wp.Estimate(), pl.Estimate())
	}
	if ess := wp.EffectiveN(); !almostEqual(ess, float64(pl.Hits()), 1e-9) {
		t.Errorf("unit-weight EffectiveN = %v, want hit count %d", ess, pl.Hits())
	}
}

func TestWeightedProportionMergeExact(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var seq, a, b WeightedProportion
	for i := 0; i < 300; i++ {
		hit := r.Float64() < 0.1
		w := r.ExpFloat64() * 2
		seq.Add(hit, w)
		if i%2 == 0 {
			a.Add(hit, w)
		} else {
			b.Add(hit, w)
		}
	}
	a.Merge(b)
	// All state is plain sums, so the merge is exact up to float addition
	// order; compare tightly.
	if !almostEqual(a.Estimate(), seq.Estimate(), 1e-12) {
		t.Errorf("merged Estimate = %v, sequential = %v", a.Estimate(), seq.Estimate())
	}
	if a.N() != seq.N() || a.Hits() != seq.Hits() {
		t.Errorf("merged N/Hits = %d/%d, sequential = %d/%d", a.N(), a.Hits(), seq.N(), seq.Hits())
	}
	ci1, err1 := a.CI(0.95)
	ci2, err2 := seq.CI(0.95)
	if err1 != nil || err2 != nil {
		t.Fatalf("CI errors: %v / %v", err1, err2)
	}
	if !almostEqual(ci1.Lo, ci2.Lo, 1e-12) || !almostEqual(ci1.Hi, ci2.Hi, 1e-12) {
		t.Errorf("merged CI = %+v, sequential = %+v", ci1, ci2)
	}
}

func TestWeightedProportionCIClampedAndOrdered(t *testing.T) {
	var p WeightedProportion
	// Heavy weights on rare hits drive the raw normal interval outside
	// [0, 1]; the reported interval must stay clamped.
	p.Add(true, 50)
	for i := 0; i < 9; i++ {
		p.Add(false, 0.1)
	}
	iv, err := p.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Errorf("interval not clamped to [0,1]: %+v", iv)
	}
	if !(iv.Lo <= iv.Hi) {
		t.Errorf("interval inverted: %+v", iv)
	}
}

func TestWeightedProportionEmpty(t *testing.T) {
	var p WeightedProportion
	if !math.IsNaN(p.Estimate()) {
		t.Errorf("empty Estimate = %v, want NaN", p.Estimate())
	}
	if _, err := p.CI(0.95); err == nil {
		t.Error("empty CI error = nil, want ErrNoData")
	}
	if p.EffectiveN() != 0 {
		t.Errorf("empty EffectiveN = %v, want 0", p.EffectiveN())
	}
}

// TestControlVariateRecoversAndTightens: the weight-regression control
// variate (E[w] = 1 exactly) recovers the true probability and its
// interval is no wider than the plain Horvitz–Thompson one; with
// degenerate unit weights it falls back to the plain estimate.
func TestControlVariateRecoversAndTightens(t *testing.T) {
	const (
		trueP = 0.02
		boost = 25.0
		n     = 50000
	)
	r := rand.New(rand.NewSource(43))
	var p WeightedProportion
	for i := 0; i < n; i++ {
		hit := r.Float64() < trueP*boost
		w := (1 - trueP) / (1 - trueP*boost)
		if hit {
			w = 1 / boost
		}
		p.Add(hit, w)
	}
	plain, err := p.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := p.ControlVariateCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Lo > trueP || trueP > cv.Hi {
		t.Errorf("control-variate interval [%v, %v] misses the truth %v", cv.Lo, cv.Hi, trueP)
	}
	if cvW, plainW := cv.Hi-cv.Lo, plain.Hi-plain.Lo; cvW > plainW*1.0001 {
		t.Errorf("control-variate interval width %v exceeds plain width %v", cvW, plainW)
	}

	// Unit weights: Var(w) = 0, so the adjustment must degrade to the
	// plain estimator rather than divide by zero.
	var unit WeightedProportion
	for i := 0; i < 100; i++ {
		unit.Add(i%10 == 0, 1)
	}
	plainU, err1 := unit.CI(0.95)
	cvU, err2 := unit.ControlVariateCI(0.95)
	if err1 != nil || err2 != nil {
		t.Fatalf("unit-weight CI errors: %v / %v", err1, err2)
	}
	if cvU != plainU {
		t.Errorf("unit-weight control variate = %+v, want plain %+v", cvU, plainU)
	}
}

// TestWeightedProportionCoverage is the statistical sanity check: with
// simulated importance-sampling weights (hit probability boosted 10x,
// weight 1/10 per hit), the HT estimate recovers the true probability
// and the CI covers it at roughly the nominal rate.
func TestWeightedProportionCoverage(t *testing.T) {
	const (
		trueP = 0.01
		boost = 10.0
		reps  = 200
		n     = 2000
	)
	r := rand.New(rand.NewSource(31))
	covered := 0
	for rep := 0; rep < reps; rep++ {
		var p WeightedProportion
		for i := 0; i < n; i++ {
			hit := r.Float64() < trueP*boost
			w := 1.0
			if hit {
				w = 1 / boost
			}
			// Non-hitting trials keep weight ~1 in expectation: the
			// residual measure ratio (1-p)/(1-bp) ≈ 1 for small p; use it
			// exactly so E[w] = 1.
			if !hit {
				w = (1 - trueP) / (1 - trueP*boost)
			}
			p.Add(hit, w)
		}
		iv, err := p.CI(0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Lo <= trueP && trueP <= iv.Hi {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.88 || rate > 0.995 {
		t.Errorf("95%% CI covered the truth in %.1f%% of %d reps, want ~95%%", 100*rate, reps)
	}
}
