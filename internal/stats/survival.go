package stats

import (
	"fmt"
	"math"
	"sort"
)

// Observation is one trial outcome for survival analysis: the time at
// which the trial ended and whether it ended in the event of interest
// (data loss) or was censored (simulation horizon reached with the data
// intact).
type Observation struct {
	Time  float64
	Event bool // true = data loss observed at Time; false = censored
}

// KaplanMeier is the product-limit estimator of the survival function
// S(t) = P(no data loss by t), built from possibly-censored trials.
//
// Long-horizon reliability simulation cannot always afford to run every
// trial to data loss (an archive with MTTDL in the thousands of years may
// see no loss within any reasonable horizon), so the estimator must handle
// censoring honestly rather than discarding or truncating those trials.
type KaplanMeier struct {
	times    []float64 // distinct event times, ascending
	survival []float64 // S(t) just after each event time
	atRisk   []int     // risk-set size just before each event time
	events   []int     // events at each time
	n        int
	maxTime  float64
}

// NewKaplanMeier fits the estimator to the given observations.
func NewKaplanMeier(obs []Observation) (*KaplanMeier, error) {
	if len(obs) == 0 {
		return nil, ErrNoData
	}
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	for _, o := range sorted {
		if o.Time < 0 || math.IsNaN(o.Time) {
			return nil, fmt.Errorf("stats: survival observation time %v must be non-negative", o.Time)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	km := &KaplanMeier{n: len(sorted), maxTime: sorted[len(sorted)-1].Time}
	s := 1.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Time
		atRisk := len(sorted) - i
		events := 0
		for i < len(sorted) && sorted[i].Time == t {
			if sorted[i].Event {
				events++
			}
			i++
		}
		if events == 0 {
			continue // pure censoring time: survival unchanged
		}
		s *= 1 - float64(events)/float64(atRisk)
		km.times = append(km.times, t)
		km.survival = append(km.survival, s)
		km.atRisk = append(km.atRisk, atRisk)
		km.events = append(km.events, events)
	}
	return km, nil
}

// Survival returns the estimated S(t).
func (km *KaplanMeier) Survival(t float64) float64 {
	// Step function: S(t) is the survival just after the last event time
	// <= t.
	idx := sort.SearchFloat64s(km.times, t)
	// SearchFloat64s returns the first index with times[idx] >= t; adjust
	// to include an event exactly at t.
	if idx < len(km.times) && km.times[idx] == t {
		idx++
	}
	if idx == 0 {
		return 1
	}
	return km.survival[idx-1]
}

// LossProbability returns the estimated P(data loss by t) = 1 - S(t).
func (km *KaplanMeier) LossProbability(t float64) float64 { return 1 - km.Survival(t) }

// RestrictedMean returns the restricted mean survival time up to horizon:
// the area under S(t) on [0, horizon]. When every trial ends in an event
// before the horizon this equals the plain sample mean; with censoring it
// is the standard defensible summary (the unrestricted mean is not
// identifiable).
func (km *KaplanMeier) RestrictedMean(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	area := 0.0
	prevT := 0.0
	prevS := 1.0
	for i, t := range km.times {
		if t >= horizon {
			break
		}
		area += prevS * (t - prevT)
		prevT = t
		prevS = km.survival[i]
	}
	area += prevS * (horizon - prevT)
	return area
}

// MedianSurvival returns the smallest event time with S(t) <= 0.5, or
// ok=false if survival never falls to one half within the observed range
// (heavy censoring).
func (km *KaplanMeier) MedianSurvival() (median float64, ok bool) {
	for i, s := range km.survival {
		if s <= 0.5 {
			return km.times[i], true
		}
	}
	return 0, false
}

// GreenwoodSE returns Greenwood's standard error of S(t).
func (km *KaplanMeier) GreenwoodSE(t float64) float64 {
	var sum float64
	s := km.Survival(t)
	for i, ti := range km.times {
		if ti > t {
			break
		}
		d := float64(km.events[i])
		n := float64(km.atRisk[i])
		if n > d {
			sum += d / (n * (n - d))
		}
	}
	return s * math.Sqrt(sum)
}

// SurvivalCI returns a confidence interval for S(t) using the normal
// approximation on Greenwood's variance, clamped to [0, 1].
func (km *KaplanMeier) SurvivalCI(t, level float64) Interval {
	s := km.Survival(t)
	h := zCritical(level) * km.GreenwoodSE(t)
	return Interval{
		Point: s,
		Lo:    math.Max(0, s-h),
		Hi:    math.Min(1, s+h),
		Level: level,
	}
}

// N returns the number of fitted observations.
func (km *KaplanMeier) N() int { return km.n }

// MaxTime returns the largest observation time (event or censored).
func (km *KaplanMeier) MaxTime() float64 { return km.maxTime }
