package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Sample is an in-memory collection of observations supporting quantiles
// and bootstrap resampling. Use Running instead when only moments are
// needed; Sample retains every value.
type Sample struct {
	values []float64
	sorted bool
}

// NewSample returns a Sample over a copy of values.
func NewSample(values []float64) *Sample {
	cp := make([]float64, len(values))
	copy(cp, values)
	return &Sample{values: cp}
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.values = append(s.values, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns the underlying observations in insertion order if the
// sample has never been sorted, otherwise in ascending order. The slice is
// shared; callers must not modify it.
func (s *Sample) Values() []float64 { return s.values }

// Mean returns the sample mean (NaN if empty).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) using linear interpolation
// between order statistics (Hyndman–Fan type 7, the common default).
func (s *Sample) Quantile(p float64) (float64, error) {
	if len(s.values) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: quantile p=%v outside [0,1]", p)
	}
	s.ensureSorted()
	if len(s.values) == 1 {
		return s.values[0], nil
	}
	h := p * float64(len(s.values)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return s.values[lo], nil
	}
	frac := h - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac, nil
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() (float64, error) { return s.Quantile(0.5) }

// BootstrapMeanCI returns a percentile-bootstrap confidence interval for
// the mean using resamples drawn from src. It is the distribution-free
// check on the Student-t interval for the heavily skewed time-to-loss
// distributions that MTTDL estimation produces.
func (s *Sample) BootstrapMeanCI(level float64, resamples int, src *rng.Source) (Interval, error) {
	if len(s.values) < 2 {
		return Interval{}, ErrNoData
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("stats: %d bootstrap resamples, need >= 10", resamples)
	}
	n := len(s.values)
	means := make([]float64, resamples)
	for i := range means {
		var sum float64
		for j := 0; j < n; j++ {
			sum += s.values[src.Intn(n)]
		}
		means[i] = sum / float64(n)
	}
	boot := NewSample(means)
	alpha := 1 - level
	lo, err := boot.Quantile(alpha / 2)
	if err != nil {
		return Interval{}, err
	}
	hi, err := boot.Quantile(1 - alpha/2)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Point: s.Mean(), Lo: lo, Hi: hi, Level: level}, nil
}

// Histogram bins observations over [Lo, Hi) into equal-width buckets, with
// underflow/overflow tallies. It renders the shape of time-to-loss
// distributions in reports.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Under     int
	Over      int
	total     int
	logScaled bool
}

// NewHistogram returns a Histogram with n equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if !(lo < hi) || n <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram range [%v,%v) with %d bins", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}, nil
}

// NewLogHistogram returns a Histogram whose n bins are equal-width in
// log10 space over [lo, hi), lo > 0 — the right shape for MTTDL values
// spanning orders of magnitude.
func NewLogHistogram(lo, hi float64, n int) (*Histogram, error) {
	if lo <= 0 {
		return nil, fmt.Errorf("stats: log histogram lower bound %v must be > 0", lo)
	}
	h, err := NewHistogram(math.Log10(lo), math.Log10(hi), n)
	if err != nil {
		return nil, err
	}
	h.logScaled = true
	return h, nil
}

// Add tallies one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	v := x
	if h.logScaled {
		if x <= 0 {
			h.Under++
			return
		}
		v = math.Log10(x)
	}
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx >= len(h.Counts) { // guard float rounding at the top edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations tallied, including under/over.
func (h *Histogram) Total() int { return h.total }

// BinBounds returns the [lo, hi) bounds of bin i in data space.
func (h *Histogram) BinBounds(i int) (lo, hi float64) {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	lo = h.Lo + float64(i)*width
	hi = lo + width
	if h.logScaled {
		lo = math.Pow(10, lo)
		hi = math.Pow(10, hi)
	}
	return lo, hi
}
