package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 {
		t.Errorf("empty N = %d", r.N())
	}
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty accumulator should report NaN moments")
	}
	if _, err := r.MeanCI(0.95); err == nil {
		t.Error("MeanCI on empty accumulator should fail")
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	r.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if !almostEqual(r.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if want := 32.0 / 7; !almostEqual(r.Variance(), want, 1e-12) {
		t.Errorf("variance = %v, want %v", r.Variance(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	src := rng.New(1)
	f := func(split uint8) bool {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = src.Normal(3, 7)
		}
		k := int(split) % len(xs)
		var whole, a, b Running
		whole.AddAll(xs)
		a.AddAll(xs[:k])
		b.AddAll(xs[k:])
		a.Merge(b)
		return a.N() == whole.N() &&
			almostEqual(a.Mean(), whole.Mean(), 1e-9) &&
			almostEqual(a.Variance(), whole.Variance(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmptySides(t *testing.T) {
	var a, b Running
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	var c Running
	a.Merge(c)
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge of empty changed state: N=%d mean=%v", a.N(), a.Mean())
	}
}

func TestMeanCICoverage(t *testing.T) {
	// 95% CI should contain the true mean ~95% of the time.
	src := rng.New(42)
	const experiments = 2000
	const n = 30
	covered := 0
	for e := 0; e < experiments; e++ {
		var r Running
		for i := 0; i < n; i++ {
			r.Add(src.Normal(10, 2))
		}
		iv, err := r.MeanCI(0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(10) {
			covered++
		}
	}
	rate := float64(covered) / experiments
	if rate < 0.93 || rate > 0.97 {
		t.Errorf("95%% CI empirical coverage = %v, want in [0.93, 0.97]", rate)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Point: 10, Lo: 8, Hi: 14, Level: 0.95}
	if iv.HalfWidth() != 3 {
		t.Errorf("half width = %v, want 3", iv.HalfWidth())
	}
	if iv.RelativeHalfWidth() != 0.3 {
		t.Errorf("relative half width = %v, want 0.3", iv.RelativeHalfWidth())
	}
	zero := Interval{Point: 0, Lo: -1, Hi: 1}
	if !math.IsInf(zero.RelativeHalfWidth(), 1) {
		t.Error("relative half width at zero point should be +Inf")
	}
	if !iv.Contains(8) || !iv.Contains(14) || iv.Contains(7.999) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if !math.IsNaN(p.Estimate()) {
		t.Error("empty proportion should be NaN")
	}
	if _, err := p.CI(0.95); err == nil {
		t.Error("CI on empty proportion should fail")
	}
	for i := 0; i < 100; i++ {
		p.Add(i < 25)
	}
	if p.Estimate() != 0.25 {
		t.Errorf("estimate = %v, want 0.25", p.Estimate())
	}
	iv, err := p.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.25) {
		t.Errorf("Wilson CI %+v should contain the point estimate", iv)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Errorf("Wilson CI %+v outside [0,1]", iv)
	}
}

func TestProportionWilsonNeverDegenerate(t *testing.T) {
	// Wald intervals collapse to width 0 at phat=0; Wilson must not.
	var p Proportion
	for i := 0; i < 50; i++ {
		p.Add(false)
	}
	iv, err := p.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi <= 0 {
		t.Errorf("Wilson upper bound %v at zero successes should be positive", iv.Hi)
	}
}

func TestZCritical(t *testing.T) {
	cases := []struct{ level, want float64 }{
		{0.90, 1.6449}, {0.95, 1.9600}, {0.99, 2.5758},
	}
	for _, c := range cases {
		if got := zCritical(c.level); math.Abs(got-c.want) > 2e-4 {
			t.Errorf("zCritical(%v) = %v, want %v", c.level, got, c.want)
		}
	}
	if zCritical(0) != 0 {
		t.Error("zCritical(0) should be 0")
	}
	if !math.IsInf(zCritical(1), 1) {
		t.Error("zCritical(1) should be +Inf")
	}
}

func TestTCriticalTableValues(t *testing.T) {
	cases := []struct {
		level float64
		df    int
		want  float64
	}{
		{0.95, 1, 12.706},
		{0.95, 10, 2.228},
		{0.95, 30, 2.042},
		{0.99, 5, 4.032},
		{0.90, 20, 1.725},
	}
	for _, c := range cases {
		if got := tCritical(c.level, c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("tCritical(%v, %d) = %v, want %v", c.level, c.df, got, c.want)
		}
	}
}

func TestTCriticalLargeDFApproachesZ(t *testing.T) {
	z := zCritical(0.95)
	got := tCritical(0.95, 10000)
	if math.Abs(got-z) > 0.01 {
		t.Errorf("tCritical(0.95, 10000) = %v, want ~%v", got, z)
	}
	// Monotone in df: more data, tighter critical value.
	prev := tCritical(0.95, 1)
	for df := 2; df <= 200; df++ {
		cur := tCritical(0.95, df)
		if cur > prev+1e-9 {
			t.Fatalf("tCritical not non-increasing at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestTCriticalUncommonLevel(t *testing.T) {
	// 0.975 two-sided is not in the table; result must lie between the
	// 0.95 and 0.99 values.
	df := 10
	got := tCritical(0.975, df)
	if got <= tCritical(0.95, df) || got >= tCritical(0.99, df) {
		t.Errorf("tCritical(0.975, %d) = %v not between neighbours", df, got)
	}
}
