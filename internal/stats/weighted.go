package stats

import "math"

// This file holds the weighted counterparts of Running and Proportion
// used by importance-sampled (failure-biased) Monte Carlo runs: each
// trial arrives with a likelihood-ratio weight w = dP/dQ, estimators
// are Horvitz–Thompson style sums of w·x, and uncertainty is reported
// against the effective sample size (ΣW)²/ΣW² rather than the raw
// trial count. All state is plain sums, so merging partials from a
// parallel sweep in trial order reproduces a sequential pass exactly.

// WeightedMean accumulates a weighted mean and variance using West's
// incremental update (the weighted generalization of Welford). With all
// weights equal to 1 it degenerates to the ordinary sample mean. The
// zero value is an empty accumulator ready to use.
type WeightedMean struct {
	n     int
	sumW  float64
	sumW2 float64
	mean  float64
	m2    float64
}

// Add incorporates one observation x with weight w >= 0. Zero-weight
// observations are counted but do not move the mean.
func (m *WeightedMean) Add(x, w float64) {
	m.n++
	if w <= 0 {
		return
	}
	m.sumW += w
	m.sumW2 += w * w
	delta := x - m.mean
	m.mean += delta * w / m.sumW
	m.m2 += w * delta * (x - m.mean)
}

// Merge combines another accumulator into m (the weighted Chan update),
// so per-batch accumulators can be reduced after a parallel sweep.
func (m *WeightedMean) Merge(o WeightedMean) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	m.n += o.n
	if o.sumW == 0 {
		return
	}
	if m.sumW == 0 {
		m.sumW, m.sumW2, m.mean, m.m2 = o.sumW, o.sumW2, o.mean, o.m2
		return
	}
	delta := o.mean - m.mean
	total := m.sumW + o.sumW
	m.mean += delta * o.sumW / total
	m.m2 += o.m2 + delta*delta*m.sumW*o.sumW/total
	m.sumW = total
	m.sumW2 += o.sumW2
}

// N returns the number of observations (including zero-weight ones).
func (m *WeightedMean) N() int { return m.n }

// SumWeights returns ΣW.
func (m *WeightedMean) SumWeights() float64 { return m.sumW }

// Mean returns the weighted mean Σwx/Σw (NaN if no weight observed).
func (m *WeightedMean) Mean() float64 {
	if m.sumW == 0 {
		return math.NaN()
	}
	return m.mean
}

// EffectiveN returns the effective sample size (ΣW)²/ΣW², the
// equal-weight trial count with the same estimator variance; 0 when
// empty.
func (m *WeightedMean) EffectiveN() float64 {
	if m.sumW2 == 0 {
		return 0
	}
	return m.sumW * m.sumW / m.sumW2
}

// Variance returns the frequency-interpretation weighted sample
// variance m2/(ΣW − ΣW²/ΣW), NaN when the effective sample size is
// not above 1.
func (m *WeightedMean) Variance() float64 {
	if m.sumW == 0 || m.EffectiveN() <= 1 {
		return math.NaN()
	}
	return m.m2 / (m.sumW - m.sumW2/m.sumW)
}

// MeanCI returns a Student-t interval for the weighted mean with the
// effective sample size standing in for the observation count — the
// standard large-sample approximation for importance-sampled means. It
// returns ErrNoData when the effective sample size is not above 1.
func (m *WeightedMean) MeanCI(level float64) (Interval, error) {
	ess := m.EffectiveN()
	if ess <= 1 {
		return Interval{}, ErrNoData
	}
	se := math.Sqrt(m.Variance() / ess)
	t := tCritical(level, int(ess)-1)
	h := t * se
	return Interval{Point: m.mean, Lo: m.mean - h, Hi: m.mean + h, Level: level}, nil
}

// WeightedProportion is the Horvitz–Thompson estimator of a rare-event
// probability from importance-sampled Bernoulli trials: each trial i
// contributes weight w_i and indicator y_i, the estimate is
// (1/n)Σw_i·y_i, and the variance is the sample variance of the per-
// trial terms w_i·y_i divided by n. Because E_Q[w·y] = p under the
// biased measure Q, the estimator is unbiased whatever the biasing.
type WeightedProportion struct {
	n, hits int
	sumW    float64 // Σ w_i over all trials
	sumW2   float64 // Σ w_i²
	sumWY   float64 // Σ w_i·y_i
	sumW2Y  float64 // Σ (w_i·y_i)²
}

// Add incorporates one trial with indicator hit and weight w.
func (p *WeightedProportion) Add(hit bool, w float64) {
	p.n++
	p.sumW += w
	p.sumW2 += w * w
	if hit {
		p.hits++
		p.sumWY += w
		p.sumW2Y += w * w
	}
}

// Merge combines another accumulator into p. All state is plain sums,
// so the merge is exact in any order.
func (p *WeightedProportion) Merge(o WeightedProportion) {
	p.n += o.n
	p.hits += o.hits
	p.sumW += o.sumW
	p.sumW2 += o.sumW2
	p.sumWY += o.sumWY
	p.sumW2Y += o.sumW2Y
}

// N returns the number of trials observed.
func (p *WeightedProportion) N() int { return p.n }

// Hits returns the number of raw (biased-measure) successes observed.
func (p *WeightedProportion) Hits() int { return p.hits }

// SumWeights returns Σw over all trials; for a correctly-weighted
// importance sampler this concentrates around N.
func (p *WeightedProportion) SumWeights() float64 { return p.sumW }

// Estimate returns the Horvitz–Thompson point estimate (1/n)Σw·y
// (NaN if empty).
func (p *WeightedProportion) Estimate() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	return p.sumWY / float64(p.n)
}

// EffectiveN returns the effective sample size (Σw·y)²/Σ(w·y)² of the
// hitting trials — the equal-weight loss count carrying the same
// information; 0 with no hits. This is the honest "how many losses did
// we really see" figure a biased run reports.
func (p *WeightedProportion) EffectiveN() float64 {
	if p.sumW2Y == 0 {
		return 0
	}
	return p.sumWY * p.sumWY / p.sumW2Y
}

// ControlVariateCI returns the regression-adjusted interval: the plain
// Horvitz–Thompson estimate corrected by the analytic control variate.
// The control is the likelihood-ratio weight itself, whose expectation
// under the biased measure is exactly 1 (the measure-change identity
// E_Q[dP/dQ] = 1 — an analytic fact, not an estimate): the realized
// deviation of mean(w) from 1 is pure sampling noise, and any
// correlation between w and the loss terms w·y lets the regression
//
//	p_cv = mean(w·y) − b·(mean(w) − 1),  b = Cov(w·y, w)/Var(w)
//
// cancel the shared part of it. With the sample-optimal b the
// asymptotic variance is (1 − ρ²) times the plain estimator's, so the
// adjusted interval is never wider in the limit; the estimated-b bias
// is O(1/n) and vanishes against the 1/√n interval width. All three
// moments are plain sums, so the adjustment merges exactly like the
// rest of the accumulator. Returns ErrNoData when fewer than two
// trials were observed, and falls back to the plain estimate when the
// weights are degenerate (Var(w) = 0, i.e. β = 1).
func (p *WeightedProportion) ControlVariateCI(level float64) (Interval, error) {
	if p.n < 2 {
		return Interval{}, ErrNoData
	}
	n := float64(p.n)
	meanW := p.sumW / n
	meanWY := p.sumWY / n
	varW := (p.sumW2 - p.sumW*p.sumW/n) / (n - 1)
	varWY := (p.sumW2Y - p.sumWY*p.sumWY/n) / (n - 1)
	if varW <= 0 || varWY <= 0 {
		return p.CI(level)
	}
	// y ∈ {0,1} makes (w·y)·w = w²·y, so the cross moment is sumW2Y.
	cov := (p.sumW2Y - p.sumW*p.sumWY/n) / (n - 1)
	b := cov / varW
	point := math.Min(1, math.Max(0, meanWY-b*(meanW-1)))
	rho2 := cov * cov / (varW * varWY)
	if rho2 > 1 {
		rho2 = 1
	}
	s2 := varWY * (1 - rho2)
	var half float64
	if s2 > 0 {
		half = zCritical(level) * math.Sqrt(s2/n)
	}
	return Interval{Point: point, Lo: math.Max(0, point - half), Hi: math.Min(1, point + half), Level: level}, nil
}

// CI returns the normal-approximation interval for the Horvitz–
// Thompson estimate, clamped to [0, 1]. The variance is the sample
// variance of the per-trial terms w·y over n: exact for the i.i.d.
// weighted mean, and well-behaved in the rare-event regimes the
// estimator exists for. Returns ErrNoData when empty.
func (p *WeightedProportion) CI(level float64) (Interval, error) {
	if p.n == 0 {
		return Interval{}, ErrNoData
	}
	n := float64(p.n)
	point := p.sumWY / n
	var half float64
	if p.n > 1 {
		// Sample variance of w·y: (Σ(wy)² − (Σwy)²/n)/(n−1).
		s2 := (p.sumW2Y - p.sumWY*p.sumWY/n) / (n - 1)
		if s2 > 0 {
			half = zCritical(level) * math.Sqrt(s2/n)
		}
	}
	return Interval{Point: point, Lo: math.Max(0, point - half), Hi: math.Min(1, point + half), Level: level}, nil
}
