package stats

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// The buffer fit must be bit-identical to the slice fit on the same
// multiset — that equivalence is what lets the simulator's streaming
// reduce reproduce the historical batch aggregation exactly.
func TestObsBufferKaplanMeierMatchesSliceFit(t *testing.T) {
	src := rng.New(99)
	for scenario := 0; scenario < 20; scenario++ {
		var obs []Observation
		var buf ObsBuffer
		n := 3 + src.Intn(200)
		horizon := 50 + 100*src.Float64()
		for i := 0; i < n; i++ {
			tm := 100 * src.Float64()
			if tm < horizon && src.Bool(0.7) {
				obs = append(obs, Observation{Time: tm, Event: true})
				buf.AddEvent(tm)
			} else {
				obs = append(obs, Observation{Time: horizon, Event: false})
				buf.AddCensored(horizon)
			}
		}
		want, err := NewKaplanMeier(obs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := buf.KaplanMeier()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("scenario %d: buffer fit differs from slice fit:\n%+v\nvs\n%+v", scenario, want, got)
		}
	}
}

func TestObsBufferKaplanMeierTiedTimes(t *testing.T) {
	// Ties between events and censors at the same instant exercise the
	// same-group handling: censored observations at an event time stay in
	// that group's risk set.
	obs := []Observation{
		{Time: 5, Event: true}, {Time: 5, Event: false}, {Time: 5, Event: true},
		{Time: 2, Event: true}, {Time: 9, Event: false}, {Time: 9, Event: false},
		{Time: 7, Event: true},
	}
	var buf ObsBuffer
	for _, o := range obs {
		if o.Event {
			buf.AddEvent(o.Time)
		} else {
			buf.AddCensored(o.Time)
		}
	}
	want, err := NewKaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := buf.KaplanMeier()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("tied-time fit differs:\n%+v\nvs\n%+v", want, got)
	}
}

func TestObsBufferMerge(t *testing.T) {
	var whole, left, right ObsBuffer
	events := []float64{3, 1, 4, 1.5, 9, 2.6}
	for i, e := range events {
		whole.AddEvent(e)
		if i < 3 {
			left.AddEvent(e)
		} else {
			right.AddEvent(e)
		}
	}
	for i := 0; i < 5; i++ {
		whole.AddCensored(100)
		left.AddCensored(100)
	}
	for i := 0; i < 4; i++ {
		whole.AddCensored(50)
		right.AddCensored(50)
	}
	left.Merge(&right)
	if left.N() != whole.N() || left.EventsN() != whole.EventsN() || left.CensoredN() != whole.CensoredN() {
		t.Fatalf("merged counts (%d,%d,%d) != whole (%d,%d,%d)",
			left.N(), left.EventsN(), left.CensoredN(), whole.N(), whole.EventsN(), whole.CensoredN())
	}
	// Event order must be left's then right's — the contract the
	// simulator's ordered batch reduction relies on.
	if !reflect.DeepEqual(left.Events(), events) {
		t.Fatalf("merged event order %v != insertion order %v", left.Events(), events)
	}
	a, err := whole.KaplanMeier()
	if err != nil {
		t.Fatal(err)
	}
	b, err := left.KaplanMeier()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("merged buffer fit differs from whole-buffer fit")
	}
}

func TestObsBufferValidation(t *testing.T) {
	var empty ObsBuffer
	if _, err := empty.KaplanMeier(); err == nil {
		t.Error("empty buffer fit accepted")
	}
	var bad ObsBuffer
	bad.AddEvent(-1)
	if _, err := bad.KaplanMeier(); err == nil {
		t.Error("negative event time accepted")
	}
	var nan ObsBuffer
	nan.AddCensored(math.NaN())
	if _, err := nan.KaplanMeier(); err == nil {
		t.Error("NaN censor time accepted")
	}
}

func TestObsBufferReset(t *testing.T) {
	var b ObsBuffer
	b.AddEvent(1)
	b.AddCensored(2)
	b.Reset()
	if b.N() != 0 || b.EventsN() != 0 || b.CensoredN() != 0 {
		t.Fatalf("reset buffer not empty: %+v", b)
	}
}

func TestProportionMerge(t *testing.T) {
	var whole, a, b Proportion
	src := rng.New(5)
	for i := 0; i < 1000; i++ {
		hit := src.Bool(0.3)
		whole.Add(hit)
		if i%2 == 0 {
			a.Add(hit)
		} else {
			b.Add(hit)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() || a.Hits() != whole.Hits() {
		t.Fatalf("merged (%d,%d) != whole (%d,%d)", a.N(), a.Hits(), whole.N(), whole.Hits())
	}
	ivA, err := a.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	ivW, err := whole.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ivA != ivW {
		t.Fatalf("merged interval %+v != whole interval %+v", ivA, ivW)
	}
}
