package stats

import "math"

// zCritical returns the two-sided standard-normal critical value for the
// given confidence level, via the inverse error function.
func zCritical(level float64) float64 {
	if level <= 0 {
		return 0
	}
	if level >= 1 {
		return math.Inf(1)
	}
	return math.Sqrt2 * erfInv(level)
}

// erfInv computes the inverse error function with the rational
// approximation of Giles (2012), accurate to ~1e-9 over the range the
// package uses (|x| ≤ 0.9999). That is far tighter than Monte Carlo noise.
func erfInv(x float64) float64 {
	if x <= -1 || x >= 1 {
		return math.Inf(int(math.Copysign(1, x)))
	}
	w := -math.Log((1 - x) * (1 + x))
	var p float64
	if w < 6.25 {
		w -= 3.125
		p = -3.6444120640178196996e-21
		p = -1.685059138182016589e-19 + p*w
		p = 1.2858480715256400167e-18 + p*w
		p = 1.115787767802518096e-17 + p*w
		p = -1.333171662854620906e-16 + p*w
		p = 2.0972767875968561637e-17 + p*w
		p = 6.6376381343583238325e-15 + p*w
		p = -4.0545662729752068639e-14 + p*w
		p = -8.1519341976054721522e-14 + p*w
		p = 2.6335093153082322977e-12 + p*w
		p = -1.2975133253453532498e-11 + p*w
		p = -5.4154120542946279317e-11 + p*w
		p = 1.051212273321532285e-09 + p*w
		p = -4.1126339803469836976e-09 + p*w
		p = -2.9070369957882005086e-08 + p*w
		p = 4.2347877827932403518e-07 + p*w
		p = -1.3654692000834678645e-06 + p*w
		p = -1.3882523362786468719e-05 + p*w
		p = 0.0001867342080340571352 + p*w
		p = -0.00074070253416626697512 + p*w
		p = -0.0060336708714301490533 + p*w
		p = 0.24015818242558961693 + p*w
		p = 1.6536545626831027356 + p*w
	} else if w < 16 {
		w = math.Sqrt(w) - 3.25
		p = 2.2137376921775787049e-09
		p = 9.0756561938885390979e-08 + p*w
		p = -2.7517406297064545428e-07 + p*w
		p = 1.8239629214389227755e-08 + p*w
		p = 1.5027403968909827627e-06 + p*w
		p = -4.013867526981545969e-06 + p*w
		p = 2.9234449089955446044e-06 + p*w
		p = 1.2475304481671778723e-05 + p*w
		p = -4.7318229009055733981e-05 + p*w
		p = 6.8284851459573175448e-05 + p*w
		p = 2.4031110387097893999e-05 + p*w
		p = -0.0003550375203628474796 + p*w
		p = 0.00095328937973738049703 + p*w
		p = -0.0016882755560235047313 + p*w
		p = 0.0024914420961078508066 + p*w
		p = -0.0037512085075692412107 + p*w
		p = 0.005370914553590063617 + p*w
		p = 1.0052589676941592334 + p*w
		p = 3.0838856104922207635 + p*w
	} else {
		w = math.Sqrt(w) - 5
		p = -2.7109920616438573243e-11
		p = -2.5556418169965252055e-10 + p*w
		p = 1.5076572693500548083e-09 + p*w
		p = -3.7894654401267369937e-09 + p*w
		p = 7.6157012080783393804e-09 + p*w
		p = -1.4960026627149240478e-08 + p*w
		p = 2.9147953450901080826e-08 + p*w
		p = -6.7711997758452339498e-08 + p*w
		p = 2.2900482228026654717e-07 + p*w
		p = -9.9298272942317002539e-07 + p*w
		p = 4.5260625972231537039e-06 + p*w
		p = -1.9681778105531670567e-05 + p*w
		p = 7.5995277030017761139e-05 + p*w
		p = -0.00021503011930044477347 + p*w
		p = -0.00013871931833623122026 + p*w
		p = 1.0103004648645343977 + p*w
		p = 4.8499064014085844221 + p*w
	}
	return p * x
}

// tCritical returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom. Exact small-df values come from
// a table for the common levels; other inputs interpolate or fall back to
// the normal approximation, which is within 1% of t for df ≥ 30 — far
// below Monte Carlo noise.
func tCritical(level float64, df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	table, ok := tTables[level]
	if !ok {
		// Uncommon level: Cornish–Fisher style inflation of the normal
		// quantile, good to a few percent for df ≥ 3.
		z := zCritical(level)
		d := float64(df)
		return z * (1 + (z*z+1)/(4*d))
	}
	if df <= len(table) {
		return table[df-1]
	}
	// Beyond the table, interpolate between the last entry and z in 1/df.
	z := zCritical(level)
	last := table[len(table)-1]
	lastDF := float64(len(table))
	frac := lastDF / float64(df) // 1 at table edge, ->0 as df grows
	return z + (last-z)*frac
}

// tTables holds two-sided critical values for df = 1..30 at the standard
// confidence levels (Abramowitz & Stegun table 26.10).
var tTables = map[float64][]float64{
	0.90: {
		6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
	},
	0.95: {
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	},
	0.99: {
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
	},
}
