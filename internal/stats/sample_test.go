package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSampleQuantiles(t *testing.T) {
	s := NewSample([]float64{15, 20, 35, 40, 50})
	cases := []struct{ p, want float64 }{
		{0, 15}, {1, 50}, {0.5, 35},
		{0.25, 20}, {0.75, 40},
		{0.1, 17}, // interpolated: 15 + 0.4*(20-15)
	}
	for _, c := range cases {
		got, err := s.Quantile(c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSampleQuantileErrors(t *testing.T) {
	empty := NewSample(nil)
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("quantile of empty sample should fail")
	}
	s := NewSample([]float64{1, 2})
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := s.Quantile(p); err == nil {
			t.Errorf("Quantile(%v) should fail", p)
		}
	}
}

func TestSampleSingleValue(t *testing.T) {
	s := NewSample([]float64{7})
	for _, p := range []float64{0, 0.3, 1} {
		got, err := s.Quantile(p)
		if err != nil || got != 7 {
			t.Errorf("Quantile(%v) = %v, %v; want 7, nil", p, got, err)
		}
	}
}

func TestSampleAddAndMedian(t *testing.T) {
	s := NewSample(nil)
	for _, v := range []float64{9, 1, 5} {
		s.Add(v)
	}
	m, err := s.Median()
	if err != nil {
		t.Fatal(err)
	}
	if m != 5 {
		t.Errorf("median = %v, want 5", m)
	}
	// Adding after a sort must invalidate the cached order.
	s.Add(0)
	m, err = s.Quantile(0)
	if err != nil || m != 0 {
		t.Errorf("min after Add = %v, want 0", m)
	}
}

func TestSampleDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	s := NewSample(in)
	in[0] = 100
	if got, _ := s.Quantile(1); got != 3 {
		t.Errorf("sample aliased caller slice: max = %v, want 3", got)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	src := rng.New(9)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = src.Normal(50, 10)
	}
	s := NewSample(xs)
	iv, err := s.BootstrapMeanCI(0.95, 500, src)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(s.Mean()) {
		t.Errorf("bootstrap CI %+v should contain sample mean %v", iv, s.Mean())
	}
	// Width should be close to the Student-t width for normal data.
	var r Running
	r.AddAll(xs)
	tIv, err := r.MeanCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := iv.HalfWidth() / tIv.HalfWidth(); ratio < 0.7 || ratio > 1.4 {
		t.Errorf("bootstrap/t interval width ratio = %v, want ~1", ratio)
	}
}

func TestBootstrapErrors(t *testing.T) {
	src := rng.New(10)
	if _, err := NewSample([]float64{1}).BootstrapMeanCI(0.95, 100, src); err == nil {
		t.Error("bootstrap on 1 observation should fail")
	}
	if _, err := NewSample([]float64{1, 2, 3}).BootstrapMeanCI(0.95, 5, src); err == nil {
		t.Error("bootstrap with 5 resamples should fail")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 count = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 count = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin 4 count = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	lo, hi := h.BinBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BinBounds(1) = [%v, %v), want [2, 4)", lo, hi)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewLogHistogram(0, 100, 4); err == nil {
		t.Error("log histogram with lo=0 accepted")
	}
}

func TestLogHistogram(t *testing.T) {
	h, err := NewLogHistogram(1, 10000, 4) // decades: [1,10), [10,100), ...
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{2, 20, 200, 2000, 0.5, -3, 1e6} {
		h.Add(v)
	}
	for i := 0; i < 4; i++ {
		if h.Counts[i] != 1 {
			t.Errorf("decade bin %d count = %d, want 1", i, h.Counts[i])
		}
	}
	if h.Under != 2 { // 0.5 (below range) and -3 (non-positive)
		t.Errorf("under = %d, want 2", h.Under)
	}
	if h.Over != 1 {
		t.Errorf("over = %d, want 1", h.Over)
	}
	lo, hi := h.BinBounds(2)
	if !almostEqual(lo, 100, 1e-9) || !almostEqual(hi, 1000, 1e-6) {
		t.Errorf("BinBounds(2) = [%v, %v), want [100, 1000)", lo, hi)
	}
}
