package threat

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/replica"
)

func TestAllThreatsDescribed(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("catalogue has %d threats, the paper's §3 lists 10", len(all))
	}
	seen := map[string]bool{}
	for _, th := range all {
		info := th.Info()
		if info.Name == "" || info.Example == "" || info.Mitigation == "" {
			t.Errorf("threat %d incompletely described: %+v", th, info)
		}
		if seen[info.Name] {
			t.Errorf("duplicate threat name %q", info.Name)
		}
		seen[info.Name] = true
		if th.String() != info.Name {
			t.Errorf("String() = %q, want %q", th.String(), info.Name)
		}
	}
}

func TestInfoPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Info on invalid threat did not panic")
		}
	}()
	Threat(99).Info()
}

// §4.1's observation: most of the threat catalogue manifests as latent
// faults — that is why detection time dominates the model.
func TestMajorityOfThreatsAreLatent(t *testing.T) {
	latent := 0
	for _, th := range All() {
		if th.IsLatent() {
			latent++
		}
	}
	if latent < 6 {
		t.Errorf("%d/10 threats latent; the paper's §4.1 catalogue implies a solid majority", latent)
	}
	// Spot checks against the text.
	if !MediaFault.IsLatent() {
		t.Error("media faults (bit rot) are the canonical latent fault")
	}
	if LargeScaleDisaster.IsLatent() {
		t.Error("large-scale disasters are immediately visible")
	}
}

func TestCorrelatedThreats(t *testing.T) {
	geo := CorrelatedThreats(replica.Geography)
	if len(geo) != 1 || geo[0] != LargeScaleDisaster {
		t.Errorf("geography-correlated threats = %v, want [large-scale disaster]", geo)
	}
	admin := CorrelatedThreats(replica.Administration)
	found := map[Threat]bool{}
	for _, th := range admin {
		found[th] = true
	}
	if !found[HumanError] || !found[Attack] {
		t.Errorf("administration-correlated threats = %v, want human error and attack", admin)
	}
}

func TestScenarioShocksColocatedVsIndependent(t *testing.T) {
	means := map[Threat]float64{
		LargeScaleDisaster: 8760 * 100,
		HumanError:         8760 * 3,
	}
	colo, err := ScenarioShocks(replica.Colocated(3), means)
	if err != nil {
		t.Fatal(err)
	}
	// Colocated: one shock per dimension (geography, administration),
	// each hitting all 3 replicas.
	if len(colo) != 2 {
		t.Fatalf("colocated shocks = %d, want 2", len(colo))
	}
	for _, s := range colo {
		if len(s.Targets) != 3 {
			t.Errorf("colocated shock %q hits %d replicas, want 3", s.Name, len(s.Targets))
		}
	}
	indep, err := ScenarioShocks(replica.FullyIndependent(3), means)
	if err != nil {
		t.Fatal(err)
	}
	if len(indep) != 6 {
		t.Fatalf("independent shocks = %d, want 6 (2 dims x 3 singletons)", len(indep))
	}
	// Marginal rates must match across topologies.
	for r := 0; r < 3; r++ {
		a := faults.MarginalRate(colo, r)
		b := faults.MarginalRate(indep, r)
		if a != b {
			t.Errorf("replica %d marginal rate differs: %v vs %v", r, a, b)
		}
	}
}

func TestScenarioShocksCombinesThreatsOnOneDimension(t *testing.T) {
	// Human error and attack both correlate over administration; their
	// rates must combine, and the latent class must win.
	means := map[Threat]float64{
		HumanError: 1000,
		Attack:     1000,
	}
	shocks, err := ScenarioShocks(replica.Colocated(2), means)
	if err != nil {
		t.Fatal(err)
	}
	var adminShock *faults.Shock
	for i := range shocks {
		if len(shocks[i].Targets) == 2 && shocks[i].Kind == faults.Latent && shocks[i].Mean == 500 {
			adminShock = &shocks[i]
		}
	}
	if adminShock == nil {
		t.Errorf("no combined admin shock with mean 500 found in %+v", shocks)
	}
}
