// Package threat encodes the §3 threat taxonomy — the end-to-end list of
// ways long-term data dies — and maps each threat onto the model's
// vocabulary: which fault class it produces, how widely it correlates
// across replicas, and which §6 strategy addresses it. It is the bridge
// between the paper's qualitative survey and the quantitative machinery.
package threat

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/replica"
)

// Threat is one §3 threat category.
type Threat int

// The §3 threat catalogue, in the paper's order.
const (
	LargeScaleDisaster Threat = iota
	HumanError
	ComponentFault
	MediaFault
	MediaObsolescence
	SoftwareObsolescence
	LossOfContext
	Attack
	OrganizationalFault
	EconomicFault
	numThreats
)

// All lists every threat in the paper's order.
func All() []Threat {
	out := make([]Threat, numThreats)
	for i := range out {
		out[i] = Threat(i)
	}
	return out
}

// Info describes a threat's behaviour in model terms.
type Info struct {
	// Name is the §3 heading.
	Name string
	// Example is the paper's illustrative incident.
	Example string
	// FaultClass is the class of fault the threat typically inflicts.
	FaultClass faults.Type
	// CorrelatesOver lists the independence dimensions along which a
	// single occurrence propagates to multiple replicas. Empty means
	// the threat hits replicas independently.
	CorrelatesOver []replica.Dimension
	// Mitigation is the §6 strategy that addresses it.
	Mitigation string
}

var infos = [numThreats]Info{
	LargeScaleDisaster: {
		Name:           "large-scale disaster",
		Example:        "floods, fires, earthquakes, acts of war; the 9/11 data center whose river-crossing failover was still too close",
		FaultClass:     faults.Visible,
		CorrelatesOver: []replica.Dimension{replica.Geography},
		Mitigation:     "geographic independence of replicas (§6.5)",
	},
	HumanError: {
		Name:           "human error",
		Example:        "operators deleting content still needed; tapes lost in transit; the air-conditioning turned off in the server room",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.Administration},
		Mitigation:     "no single administrator can affect more than one replica (§6.5)",
	},
	ComponentFault: {
		Name:           "component fault",
		Example:        "controller cards fried by power surges; firmware bugs; license servers and DNS registrations that quietly lapse",
		FaultClass:     faults.Visible,
		CorrelatesOver: []replica.Dimension{replica.HardwareBatch},
		Mitigation:     "hardware diversity and avoiding shared third-party dependencies (§6.5)",
	},
	MediaFault: {
		Name:           "media fault",
		Example:        "bit rot; misplaced sector writes from vibration; CD-ROMs sold as good for decades failing in two to five years",
		FaultClass:     faults.Latent,
		CorrelatesOver: nil,
		Mitigation:     "frequent audit (reduce MDL) and automatic repair (reduce MRL) (§6.2, §6.3)",
	},
	MediaObsolescence: {
		Name:           "media/hardware obsolescence",
		Example:        "9-track tape and 12-inch laser discs readable in principle, if only a reader could be found",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.HardwareBatch},
		Mitigation:     "proactive migration to new media before readers vanish (§6)",
	},
	SoftwareObsolescence: {
		Name:           "software/format obsolescence",
		Example:        "proprietary camera RAW formats orphaned when the vendor dies",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.Software},
		Mitigation:     "format migration cycling, like scrubbing at lower frequency (§6)",
	},
	LossOfContext: {
		Name:           "loss of context",
		Example:        "encryption keys lost while the ciphertext survives; metadata that nobody thought to collect",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.Organization},
		Mitigation:     "preserve context with the data; audit interpretability, not just bits (§4.1)",
	},
	Attack: {
		Name:           "attack",
		Example:        "censorship and sanitization of government websites; insider abuse; flash worms hitting every networked replica at once",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.Software, replica.Administration},
		Mitigation:     "platform diversity, audit against reference copies (§6.5, §6.2)",
	},
	OrganizationalFault: {
		Name:           "organizational fault",
		Example:        "the research lab whose projects went to undocumented tapes; Ofoto deleting a customer's photos after a lapsed purchase",
		FaultClass:     faults.Latent,
		CorrelatesOver: []replica.Dimension{replica.Organization},
		Mitigation:     "organizational independence and data exit strategies (§6.5)",
	},
	EconomicFault: {
		Name:           "economic fault",
		Example:        "budgets that vary down to zero; libraries subscribing to fewer serials",
		FaultClass:     faults.Visible,
		CorrelatesOver: []replica.Dimension{replica.Organization},
		Mitigation:     "minimize cost per reliable byte: cheap replicas, automation (§4.3, §6)",
	},
}

// Info returns the threat's description. It panics on an out-of-range
// value; threats are compile-time constants.
func (t Threat) Info() Info {
	if t < 0 || t >= numThreats {
		panic(fmt.Sprintf("threat: unknown threat %d", int(t)))
	}
	return infos[t]
}

// String returns the threat's §3 heading.
func (t Threat) String() string { return t.Info().Name }

// IsLatent reports whether the threat's typical fault evades immediate
// detection — the paper's point that most of the §3 catalogue is latent
// (§4.1 lists human error, component failure, obsolescence, context loss,
// and attack alongside media faults).
func (t Threat) IsLatent() bool { return t.Info().FaultClass == faults.Latent }

// CorrelatedThreats returns the threats that a topology sharing the given
// dimension leaves correlated across replicas.
func CorrelatedThreats(d replica.Dimension) []Threat {
	var out []Threat
	for _, t := range All() {
		for _, dim := range t.Info().CorrelatesOver {
			if dim == d {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// ScenarioShocks builds common-cause shocks for the selected threats over
// a topology: each threat contributes shocks along its correlation
// dimensions, with the given mean time between occurrences per shared
// component. Threats with no correlation dimension are per-replica
// hazards and belong in the fault-process means instead.
func ScenarioShocks(top replica.Topology, threatMeans map[Threat]float64) ([]faults.Shock, error) {
	rates := replica.ShockRates{}
	for t, mean := range threatMeans {
		info := t.Info()
		for _, d := range info.CorrelatesOver {
			spec, exists := rates[d]
			if !exists {
				rates[d] = replica.ShockSpec{Mean: mean, Kind: info.FaultClass, HitProb: 1}
				continue
			}
			// Two threats on one dimension: combine rates (competing
			// exponentials); keep the more dangerous latent class.
			combined := 1 / (1/spec.Mean + 1/mean)
			if info.FaultClass == faults.Latent {
				spec.Kind = faults.Latent
			}
			spec.Mean = combined
			rates[d] = spec
		}
	}
	return top.CompileShocks(rates)
}
