// Package workload models archival access patterns (§2, §6.2): large
// object populations where any single object is read vanishingly rarely —
// the regime where user access cannot be relied on to surface latent
// faults, motivating proactive audit.
package workload

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrInvalid reports a workload parameter outside its domain.
var ErrInvalid = errors.New("workload: invalid parameter")

// Archive describes an archival collection and its aggregate traffic.
type Archive struct {
	// Objects is the number of stored objects.
	Objects int64
	// ObjectMB is the mean object size in megabytes.
	ObjectMB float64
	// AccessesPerHour is the aggregate user access rate across the whole
	// collection. Archives serve "users with data items at a high rate,
	// but the average data item is accessed infrequently" (§4.1).
	AccessesPerHour float64
}

// Validate reports whether the archive description is well-formed.
func (a Archive) Validate() error {
	if a.Objects <= 0 {
		return fmt.Errorf("%w: object count %d must be positive", ErrInvalid, a.Objects)
	}
	if a.ObjectMB <= 0 || math.IsNaN(a.ObjectMB) {
		return fmt.Errorf("%w: object size %v MB must be positive", ErrInvalid, a.ObjectMB)
	}
	if a.AccessesPerHour < 0 || math.IsNaN(a.AccessesPerHour) {
		return fmt.Errorf("%w: access rate %v must be non-negative", ErrInvalid, a.AccessesPerHour)
	}
	return nil
}

// TotalGB returns the collection size in decimal gigabytes.
func (a Archive) TotalGB() float64 {
	return float64(a.Objects) * a.ObjectMB / 1000
}

// PerObjectAccessRate returns the hourly access rate of one average
// object: aggregate rate spread over the population.
func (a Archive) PerObjectAccessRate() float64 {
	return a.AccessesPerHour / float64(a.Objects)
}

// MeanHoursBetweenObjectAccesses returns how long an average object waits
// between reads — the effective detection lag if access were the only
// audit (§6.2: "during the long time between accesses latent faults will
// build up"). +Inf with no traffic.
func (a Archive) MeanHoursBetweenObjectAccesses() float64 {
	r := a.PerObjectAccessRate()
	if r <= 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// AccessDetectionCoverage returns the fraction of a replica's content a
// single access exercises: one object out of the population. Used as the
// OnAccess scrub strategy's coverage.
func (a Archive) AccessDetectionCoverage() float64 {
	return 1 / float64(a.Objects)
}

// AccessProcess is a Poisson stream of user accesses to an archive
// replica, usable both as traffic for opportunistic scrubbing and as the
// §4.1 access-triggered detection channel.
type AccessProcess struct {
	archive Archive
	src     *rng.Source
	now     float64
}

// NewAccessProcess returns an access stream for the archive drawing
// randomness from src.
func NewAccessProcess(a Archive, src *rng.Source) (*AccessProcess, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.AccessesPerHour == 0 {
		return nil, fmt.Errorf("%w: access process needs a positive access rate", ErrInvalid)
	}
	return &AccessProcess{archive: a, src: src}, nil
}

// Next returns the time of the next access and the index of the object it
// touches (uniform over the population).
func (p *AccessProcess) Next() (at float64, object int64) {
	p.now += -math.Log(p.src.Float64Open()) / p.archive.AccessesPerHour
	obj := int64(p.src.Float64() * float64(p.archive.Objects))
	if obj >= p.archive.Objects { // guard the open-interval edge
		obj = p.archive.Objects - 1
	}
	return p.now, obj
}

// Now returns the time of the most recent access (0 before the first).
func (p *AccessProcess) Now() float64 { return p.now }

// PhotoService returns an archive sized like the §2 consumer-photo
// motivation: 10^9 photos of 2 MB each with 100k reads/hour aggregate —
// heavy site traffic, yet each photo is read about once a year.
func PhotoService() Archive {
	return Archive{Objects: 1e9, ObjectMB: 2, AccessesPerHour: 1e5}
}

// InstitutionalArchive returns an archive sized like a library web
// archive: 10^8 documents of 0.5 MB with 1k reads/hour.
func InstitutionalArchive() Archive {
	return Archive{Objects: 1e8, ObjectMB: 0.5, AccessesPerHour: 1e3}
}
