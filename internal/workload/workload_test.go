package workload

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPresetsValidate(t *testing.T) {
	for name, a := range map[string]Archive{
		"photo":         PhotoService(),
		"institutional": InstitutionalArchive(),
	} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []Archive{
		{Objects: 0, ObjectMB: 1, AccessesPerHour: 1},
		{Objects: 10, ObjectMB: 0, AccessesPerHour: 1},
		{Objects: 10, ObjectMB: 1, AccessesPerHour: -1},
		{Objects: 10, ObjectMB: math.NaN(), AccessesPerHour: 1},
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, a)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	a := Archive{Objects: 1000, ObjectMB: 2, AccessesPerHour: 10}
	if got := a.TotalGB(); got != 2 {
		t.Errorf("TotalGB = %v, want 2", got)
	}
	if got := a.PerObjectAccessRate(); got != 0.01 {
		t.Errorf("per-object rate = %v, want 0.01", got)
	}
	if got := a.MeanHoursBetweenObjectAccesses(); got != 100 {
		t.Errorf("mean hours between accesses = %v, want 100", got)
	}
	if got := a.AccessDetectionCoverage(); got != 0.001 {
		t.Errorf("coverage = %v, want 0.001", got)
	}
}

// §4.1's aggregate-vs-item point: the photo service serves 100k reads an
// hour, yet an individual photo waits ~1.1 years between reads.
func TestPhotoServiceAccessGap(t *testing.T) {
	a := PhotoService()
	gapYears := a.MeanHoursBetweenObjectAccesses() / 8760
	if gapYears < 1 || gapYears > 1.3 {
		t.Errorf("per-photo access gap = %.2f years, want ~1.14", gapYears)
	}
}

func TestNoTrafficMeansInfiniteGap(t *testing.T) {
	a := Archive{Objects: 10, ObjectMB: 1, AccessesPerHour: 0}
	if err := a.Validate(); err != nil {
		t.Fatalf("zero traffic should be a valid archive: %v", err)
	}
	if !math.IsInf(a.MeanHoursBetweenObjectAccesses(), 1) {
		t.Error("zero traffic should give infinite access gap")
	}
	if _, err := NewAccessProcess(a, rng.New(1)); err == nil {
		t.Error("access process with zero rate accepted")
	}
}

func TestAccessProcessRateAndUniformity(t *testing.T) {
	a := Archive{Objects: 100, ObjectMB: 1, AccessesPerHour: 50}
	p, err := NewAccessProcess(a, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := make([]int, 100)
	var last float64
	prev := -1.0
	for i := 0; i < n; i++ {
		at, obj := p.Next()
		if at <= prev {
			t.Fatalf("access times not increasing: %v after %v", at, prev)
		}
		if obj < 0 || obj >= 100 {
			t.Fatalf("object index %d out of range", obj)
		}
		counts[obj]++
		prev = at
		last = at
	}
	if got := n / last; math.Abs(got-50)/50 > 0.02 {
		t.Errorf("empirical access rate = %v, want 50 within 2%%", got)
	}
	want := float64(n) / 100
	for obj, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("object %d accessed %d times, want %v +- 6 sigma", obj, c, want)
		}
	}
	if p.Now() != last {
		t.Errorf("Now() = %v, want %v", p.Now(), last)
	}
}
