// Package core assembles the paper's contribution into a single
// decision-support API: describe a preservation system once — drives,
// replica placement, audit schedule, repair automation, budget — and get
// back everything §5–§6 can say about it: analytic MTTDL with regime,
// simulated MTTDL with confidence intervals, mission loss probability,
// mission cost, the threats the placement leaves correlated, and the
// ranked strategy advice of §6.
//
// It is the layer a downstream operator uses; the analytic model
// (internal/model), simulator (internal/sim), and economics
// (internal/costs) remain independently usable underneath.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/costs"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/replica"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/threat"
)

// ErrInvalidSystem reports a System description outside the domain.
var ErrInvalidSystem = errors.New("core: invalid system")

// System describes one candidate preservation deployment.
type System struct {
	// Name labels the system in reports.
	Name string
	// Drive is the disk model for every replica.
	Drive storage.DriveSpec
	// Replicas is the number of copies (or erasure fragments).
	Replicas int
	// MinIntact is the copies needed for recovery: 1 for replication
	// (default when 0), m for an m-of-n erasure code.
	MinIntact int
	// Topology optionally places the replicas on the §6.5 independence
	// dimensions; when set it must have exactly Replicas sites. Shared
	// components become common-cause shocks in the simulation.
	Topology *replica.Topology
	// ThreatMeans gives the mean time between failures of one shared
	// component per threat (hours), for topology-derived shocks. Ignored
	// without a Topology.
	ThreatMeans map[threat.Threat]float64
	// ScrubsPerYear is the audit frequency per replica (0 = never).
	ScrubsPerYear float64
	// LatentFactor is the ratio of latent to visible fault rates
	// (default model.SchwarzLatentFactor = 5).
	LatentFactor float64
	// Alpha is residual correlation beyond what the topology explains
	// (default 1).
	Alpha float64
	// RepairHours is the recovery time for a detected fault; 0 defaults
	// to the drive's full-scan (copy) time — the automated hot-spare
	// posture of §6.3.
	RepairHours float64
	// ArchiveGB and MissionYears size the collection and the horizon.
	ArchiveGB    float64
	MissionYears float64
	// Economics holds the cost knobs; zero values cost zero.
	Economics Economics
}

// Economics carries the §4.3 cost streams.
type Economics struct {
	// AuditCostPerPass is the cost of one audit of one drive.
	AuditCostPerPass float64
	// PowerWattsPerDrive is the average draw per drive.
	PowerWattsPerDrive float64
	// PowerCostPerKWh is the electricity price.
	PowerCostPerKWh float64
	// AdminCostPerDriveYear is yearly administration per drive.
	AdminCostPerDriveYear float64
}

// withDefaults fills the documented defaults.
func (s System) withDefaults() System {
	if s.MinIntact == 0 {
		s.MinIntact = 1
	}
	if s.LatentFactor == 0 {
		s.LatentFactor = model.SchwarzLatentFactor
	}
	if s.Alpha == 0 {
		s.Alpha = 1
	}
	if s.RepairHours == 0 {
		s.RepairHours = s.Drive.FullScanHours()
	}
	return s
}

// Validate reports whether the system description is usable.
func (s System) Validate() error {
	s = s.withDefaults()
	if err := s.Drive.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSystem, err)
	}
	if s.Replicas < 1 {
		return fmt.Errorf("%w: replicas %d must be >= 1", ErrInvalidSystem, s.Replicas)
	}
	if s.MinIntact < 1 || s.MinIntact > s.Replicas {
		return fmt.Errorf("%w: min intact %d outside [1, %d]", ErrInvalidSystem, s.MinIntact, s.Replicas)
	}
	if s.Topology != nil {
		if err := s.Topology.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidSystem, err)
		}
		if s.Topology.Replicas() != s.Replicas {
			return fmt.Errorf("%w: topology has %d sites for %d replicas", ErrInvalidSystem, s.Topology.Replicas(), s.Replicas)
		}
	}
	if s.ScrubsPerYear < 0 || math.IsNaN(s.ScrubsPerYear) {
		return fmt.Errorf("%w: scrubs/year %v must be >= 0", ErrInvalidSystem, s.ScrubsPerYear)
	}
	if s.LatentFactor <= 0 || math.IsNaN(s.LatentFactor) {
		return fmt.Errorf("%w: latent factor %v must be positive", ErrInvalidSystem, s.LatentFactor)
	}
	if s.Alpha <= 0 || s.Alpha > 1 || math.IsNaN(s.Alpha) {
		return fmt.Errorf("%w: alpha %v must be in (0,1]", ErrInvalidSystem, s.Alpha)
	}
	if s.RepairHours <= 0 || math.IsNaN(s.RepairHours) {
		return fmt.Errorf("%w: repair hours %v must be positive", ErrInvalidSystem, s.RepairHours)
	}
	if s.ArchiveGB <= 0 || s.MissionYears <= 0 {
		return fmt.Errorf("%w: archive %v GB and mission %v years must be positive", ErrInvalidSystem, s.ArchiveGB, s.MissionYears)
	}
	return nil
}

// ModelParams derives the §5 parameters for one replica group.
func (s System) ModelParams() model.Params {
	s = s.withDefaults()
	mv := s.Drive.MTTFHours()
	p := model.Params{
		MV:    mv,
		ML:    mv / s.LatentFactor,
		MRV:   s.RepairHours,
		MRL:   s.RepairHours,
		Alpha: s.Alpha,
	}
	return p.WithScrubsPerYear(s.ScrubsPerYear)
}

// SimConfig builds the physical simulation of the system, including
// topology-derived common-cause shocks.
func (s System) SimConfig() (sim.Config, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return sim.Config{}, err
	}
	p := s.ModelParams()
	pol, err := repair.Automated(p.MRV, p.MRL, 0)
	if err != nil {
		return sim.Config{}, err
	}
	var strat scrub.Strategy = scrub.None{}
	if s.ScrubsPerYear > 0 {
		per, err := scrub.NewPeriodic(s.ScrubsPerYear, 0)
		if err != nil {
			return sim.Config{}, err
		}
		strat = per
	}
	var corr faults.Correlation = faults.Independent{}
	if s.Alpha < 1 {
		a, err := faults.NewAlphaCorrelation(s.Alpha)
		if err != nil {
			return sim.Config{}, err
		}
		corr = a
	}
	cfg := sim.Config{
		Replicas:    s.Replicas,
		MinIntact:   s.MinIntact,
		VisibleMean: p.MV,
		LatentMean:  p.ML,
		Scrub:       strat,
		Repair:      pol,
		Correlation: corr,
	}
	if s.Topology != nil && len(s.ThreatMeans) > 0 {
		shocks, err := threat.ScenarioShocks(*s.Topology, s.ThreatMeans)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Shocks = shocks
	}
	return cfg, nil
}

// CostPlan builds the §4.3 cost plan.
func (s System) CostPlan() costs.Plan {
	s = s.withDefaults()
	return costs.Plan{
		Drive:                 s.Drive,
		Replicas:              s.Replicas,
		ArchiveGB:             s.ArchiveGB,
		MissionYears:          s.MissionYears,
		ScrubsPerYear:         s.ScrubsPerYear,
		AuditCostPerPass:      s.Economics.AuditCostPerPass,
		PowerWattsPerDrive:    s.Economics.PowerWattsPerDrive,
		PowerCostPerKWh:       s.Economics.PowerCostPerKWh,
		AdminCostPerDriveYear: s.Economics.AdminCostPerDriveYear,
	}
}

// ExposedThreats returns the §3 threats the placement leaves correlated:
// threats with a correlation dimension on which at least two replicas
// share a value. With no topology, every correlating threat is exposed
// (the conservative reading of a single-room deployment).
func (s System) ExposedThreats() []threat.Threat {
	var out []threat.Threat
	for _, t := range threat.All() {
		info := t.Info()
		if len(info.CorrelatesOver) == 0 {
			continue
		}
		if s.Topology == nil {
			out = append(out, t)
			continue
		}
		exposed := false
		for _, d := range info.CorrelatesOver {
			for _, group := range s.Topology.SharedGroups(d) {
				if len(group) >= 2 {
					exposed = true
					break
				}
			}
			if exposed {
				break
			}
		}
		if exposed {
			out = append(out, t)
		}
	}
	return out
}

// AssessOptions scale the Monte Carlo side of an assessment.
type AssessOptions struct {
	// Trials is the Monte Carlo budget (default 500).
	Trials int
	// Seed fixes the randomness (default 1).
	Seed uint64
	// RunToLoss runs every trial to data loss instead of censoring at
	// the mission horizon. More precise MTTDL; potentially much slower.
	RunToLoss bool
}

// Assessment is everything the library can say about a System.
type Assessment struct {
	// System echoes the (defaulted) input.
	System System
	// Params are the derived §5 model parameters.
	Params model.Params
	// Regime is the operating range classification.
	Regime model.Regime
	// AnalyticMTTDLYears is the clamped eq-7 MTTDL for a mirrored group
	// (replica-pair convention) or eq 12 for r > 2, in years.
	AnalyticMTTDLYears float64
	// SimMTTDLYears is the simulated MTTDL with its confidence interval,
	// in years (restricted mean when censored).
	SimMTTDLYears stats.Interval
	// SimMissionLoss is the simulated P(loss within the mission).
	SimMissionLoss stats.Interval
	// Cost is the mission-total cost breakdown.
	Cost costs.Breakdown
	// CostPerTBYear normalizes Cost.
	CostPerTBYear float64
	// Advice ranks the §6 levers by payoff for a 2x improvement.
	Advice []model.Sensitivity
	// ExposedThreats lists §3 threats the placement leaves correlated.
	ExposedThreats []threat.Threat
}

// Assess runs the full §5–§6 analysis of the system.
func (s System) Assess(opt AssessOptions) (*Assessment, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if opt.Trials <= 0 {
		opt.Trials = 500
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}

	p := s.ModelParams()
	a := &Assessment{System: s, Params: p}
	_, a.Regime = p.Approximation()
	switch {
	case s.MinIntact > 1 || s.Replicas == 1:
		// Erasure codes and single copies have no eq-7 form; leave the
		// simulation to speak (NaN marks "not applicable").
		if s.Replicas == 1 {
			a.AnalyticMTTDLYears = model.Years(p.MV)
		} else {
			a.AnalyticMTTDLYears = math.NaN()
		}
	case s.Replicas == 2:
		a.AnalyticMTTDLYears = model.Years(p.MTTDL())
	default:
		a.AnalyticMTTDLYears = model.Years(p.ReplicatedMTTDL(s.Replicas))
	}

	cfg, err := s.SimConfig()
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	simOpt := sim.Options{Trials: opt.Trials, Seed: opt.Seed}
	if !opt.RunToLoss {
		simOpt.Horizon = model.YearsToHours(s.MissionYears)
	}
	est, err := runner.Estimate(simOpt)
	if err != nil {
		return nil, err
	}
	a.SimMTTDLYears = stats.Interval{
		Point: model.Years(est.MTTDL.Point),
		Lo:    model.Years(est.MTTDL.Lo),
		Hi:    model.Years(est.MTTDL.Hi),
		Level: est.MTTDL.Level,
	}
	if opt.RunToLoss {
		// Derive the mission loss probability from the fitted survival
		// curve.
		mission := model.YearsToHours(s.MissionYears)
		a.SimMissionLoss = est.Survival.SurvivalCI(mission, 0.95)
		a.SimMissionLoss.Point = 1 - a.SimMissionLoss.Point
		a.SimMissionLoss.Lo, a.SimMissionLoss.Hi = 1-a.SimMissionLoss.Hi, 1-a.SimMissionLoss.Lo
	} else {
		a.SimMissionLoss = est.LossProb
	}

	breakdown, err := s.CostPlan().Cost()
	if err != nil {
		return nil, err
	}
	a.Cost = breakdown
	a.CostPerTBYear = breakdown.PerTBYear(s.CostPlan())

	a.Advice = p.Sensitivities(2)
	a.ExposedThreats = s.ExposedThreats()
	return a, nil
}

// Compare assesses several systems under the same options and returns
// them in input order — the §6 decision table for a planning meeting.
func Compare(systems []System, opt AssessOptions) ([]*Assessment, error) {
	out := make([]*Assessment, 0, len(systems))
	for _, s := range systems {
		a, err := s.Assess(opt)
		if err != nil {
			return nil, fmt.Errorf("core: assessing %q: %w", s.Name, err)
		}
		out = append(out, a)
	}
	return out, nil
}
