package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/threat"
)

func demoSystem() System {
	return System{
		Name:          "consumer mirror",
		Drive:         storage.Barracuda200(),
		Replicas:      2,
		ScrubsPerYear: 3,
		ArchiveGB:     5000,
		MissionYears:  20,
		Economics: Economics{
			AuditCostPerPass:      0.05,
			PowerWattsPerDrive:    10,
			PowerCostPerKWh:       0.1,
			AdminCostPerDriveYear: 20,
		},
	}
}

func TestValidateDefaults(t *testing.T) {
	s := demoSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d := s.withDefaults()
	if d.MinIntact != 1 {
		t.Errorf("default MinIntact = %d, want 1", d.MinIntact)
	}
	if d.LatentFactor != model.SchwarzLatentFactor {
		t.Errorf("default latent factor = %v, want Schwarz %v", d.LatentFactor, model.SchwarzLatentFactor)
	}
	if d.Alpha != 1 {
		t.Errorf("default alpha = %v, want 1", d.Alpha)
	}
	if d.RepairHours != s.Drive.FullScanHours() {
		t.Errorf("default repair = %v, want full scan %v", d.RepairHours, s.Drive.FullScanHours())
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*System)
	}{
		{"zero replicas", func(s *System) { s.Replicas = 0 }},
		{"min intact above replicas", func(s *System) { s.MinIntact = 3 }},
		{"negative scrubs", func(s *System) { s.ScrubsPerYear = -1 }},
		{"bad alpha", func(s *System) { s.Alpha = 2 }},
		{"bad latent factor", func(s *System) { s.LatentFactor = -5 }},
		{"zero archive", func(s *System) { s.ArchiveGB = 0 }},
		{"bad drive", func(s *System) { s.Drive.CapacityGB = 0 }},
		{"negative repair", func(s *System) { s.RepairHours = -1 }},
		{"topology size mismatch", func(s *System) {
			top := replica.Colocated(3)
			s.Topology = &top
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := demoSystem()
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestModelParamsDerivation(t *testing.T) {
	s := demoSystem()
	p := s.ModelParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.MV, s.Drive.MTTFHours(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MV = %v, want drive MTTF %v", got, want)
	}
	if got, want := p.ML, p.MV/5; math.Abs(got-want) > 1e-9 {
		t.Errorf("ML = %v, want MV/5", got)
	}
	if got, want := p.MDL, model.HoursPerYear/3/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("MDL = %v, want %v", got, want)
	}
}

func TestAssessMirror(t *testing.T) {
	a, err := demoSystem().Assess(AssessOptions{Trials: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.AnalyticMTTDLYears <= 0 {
		t.Errorf("analytic MTTDL = %v", a.AnalyticMTTDLYears)
	}
	if a.SimMissionLoss.Point < 0 || a.SimMissionLoss.Point > 1 {
		t.Errorf("mission loss = %v", a.SimMissionLoss.Point)
	}
	if a.Cost.Total() <= 0 || a.CostPerTBYear <= 0 {
		t.Errorf("degenerate cost %v / %v", a.Cost.Total(), a.CostPerTBYear)
	}
	if len(a.Advice) == 0 {
		t.Error("no strategy advice")
	}
	// No topology: every correlating threat is exposed.
	if len(a.ExposedThreats) == 0 {
		t.Error("single-room deployment should expose correlated threats")
	}
}

func TestAssessRunToLoss(t *testing.T) {
	s := demoSystem()
	s.ScrubsPerYear = 1
	a, err := s.Assess(AssessOptions{Trials: 150, Seed: 2, RunToLoss: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimMTTDLYears.Point <= 0 {
		t.Errorf("run-to-loss MTTDL = %v", a.SimMTTDLYears.Point)
	}
	if a.SimMTTDLYears.Lo > a.SimMTTDLYears.Point || a.SimMTTDLYears.Hi < a.SimMTTDLYears.Point {
		t.Errorf("malformed CI %+v", a.SimMTTDLYears)
	}
	if a.SimMissionLoss.Point < 0 || a.SimMissionLoss.Point > 1 {
		t.Errorf("mission loss = %v", a.SimMissionLoss.Point)
	}
	if a.SimMissionLoss.Lo > a.SimMissionLoss.Hi {
		t.Errorf("inverted loss interval %+v", a.SimMissionLoss)
	}
}

func TestExposedThreatsByTopology(t *testing.T) {
	s := demoSystem()
	colo := replica.Colocated(2)
	s.Topology = &colo
	all := len(s.ExposedThreats())
	indep := replica.FullyIndependent(2)
	s.Topology = &indep
	none := len(s.ExposedThreats())
	if none != 0 {
		t.Errorf("fully independent topology exposes %d threats, want 0", none)
	}
	if all == 0 {
		t.Error("colocated topology exposes no threats")
	}
	geo := replica.GeoDistributed(2)
	s.Topology = &geo
	some := s.ExposedThreats()
	for _, th := range some {
		if th == threat.LargeScaleDisaster {
			t.Error("geo-distributed placement should not expose large-scale disaster")
		}
	}
	if len(some) == 0 || len(some) >= all {
		t.Errorf("geo-distributed exposure %d should sit between 0 and colocated %d", len(some), all)
	}
}

func TestAssessErasure(t *testing.T) {
	s := demoSystem()
	s.Replicas = 4
	s.MinIntact = 2
	a, err := s.Assess(AssessOptions{Trials: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(a.AnalyticMTTDLYears) {
		t.Errorf("erasure analytic MTTDL = %v, want NaN (no eq-7 form)", a.AnalyticMTTDLYears)
	}
}

func TestAssessSingleCopy(t *testing.T) {
	s := demoSystem()
	s.Replicas = 1
	a, err := s.Assess(AssessOptions{Trials: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := model.Years(s.ModelParams().MV)
	if math.Abs(a.AnalyticMTTDLYears-want)/want > 1e-9 {
		t.Errorf("single-copy analytic MTTDL = %v years, want MV = %v", a.AnalyticMTTDLYears, want)
	}
}

func TestAssessWithTopologyShocks(t *testing.T) {
	s := demoSystem()
	s.Replicas = 3
	colo := replica.Colocated(3)
	s.Topology = &colo
	s.ThreatMeans = map[threat.Threat]float64{
		threat.HumanError: 8760 * 2,
	}
	cfg, err := s.SimConfig()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shocks) == 0 {
		t.Fatal("topology with threat means produced no shocks")
	}
	a, err := s.Assess(AssessOptions{Trials: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A shared admin-error channel every 2 years must raise mission
	// loss probability well above the shock-free system's.
	noShock := demoSystem()
	noShock.Replicas = 3
	b, err := noShock.Assess(AssessOptions{Trials: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimMissionLoss.Point <= b.SimMissionLoss.Point {
		t.Errorf("shared admin shocks: loss %v should exceed shock-free %v",
			a.SimMissionLoss.Point, b.SimMissionLoss.Point)
	}
}

func TestCompare(t *testing.T) {
	mirror := demoSystem()
	triple := demoSystem()
	triple.Name = "consumer triple"
	triple.Replicas = 3
	out, err := Compare([]System{mirror, triple}, AssessOptions{Trials: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d assessments", len(out))
	}
	if out[0].System.Name != "consumer mirror" || out[1].System.Name != "consumer triple" {
		t.Error("Compare must preserve input order")
	}
	if out[1].Cost.Total() <= out[0].Cost.Total() {
		t.Error("triple should cost more than mirror")
	}
	bad := demoSystem()
	bad.Replicas = 0
	if _, err := Compare([]System{bad}, AssessOptions{}); err == nil {
		t.Error("Compare accepted an invalid system")
	}
}
