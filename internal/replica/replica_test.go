package replica

import (
	"math"
	"testing"

	"repro/internal/faults"
)

func TestPresetsValidate(t *testing.T) {
	for name, top := range map[string]Topology{
		"colocated":   Colocated(3),
		"geo":         GeoDistributed(3),
		"independent": FullyIndependent(3),
	} {
		if err := top.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if top.Replicas() != 3 {
			t.Errorf("%s: %d replicas, want 3", name, top.Replicas())
		}
	}
}

func TestValidateRejections(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Error("empty topology accepted")
	}
	broken := Colocated(2)
	broken.Sites[1].Name = ""
	if err := broken.Validate(); err == nil {
		t.Error("unnamed site accepted")
	}
	missing := Colocated(2)
	delete(missing.Sites[0].Attr, Software)
	if err := missing.Validate(); err == nil {
		t.Error("missing dimension accepted")
	}
}

func TestIndependenceScores(t *testing.T) {
	if got := Colocated(3).IndependenceScore(); got != 0 {
		t.Errorf("colocated score = %v, want 0", got)
	}
	if got := FullyIndependent(3).IndependenceScore(); got != 1 {
		t.Errorf("fully independent score = %v, want 1", got)
	}
	// Geo-distributed differs on exactly 1 of 5 dimensions.
	if got := GeoDistributed(3).IndependenceScore(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("geo-distributed score = %v, want 0.2", got)
	}
	if got := Colocated(1).IndependenceScore(); got != 1 {
		t.Errorf("single-replica score = %v, want trivially 1", got)
	}
}

func TestSharedGroups(t *testing.T) {
	top := GeoDistributed(3)
	geo := top.SharedGroups(Geography)
	if len(geo) != 3 {
		t.Errorf("geography groups = %v, want 3 singletons", geo)
	}
	admin := top.SharedGroups(Administration)
	if len(admin) != 1 || len(admin[0]) != 3 {
		t.Errorf("administration groups = %v, want one group of 3", admin)
	}
}

func defaultRates() ShockRates {
	return ShockRates{
		Geography:      {Mean: 8760 * 50, Kind: faults.Visible, HitProb: 1}, // disaster every ~50y per region
		Administration: {Mean: 8760 * 5, Kind: faults.Latent, HitProb: 0.8}, // bad admin action
		Software:       {Mean: 8760 * 10, Kind: faults.Latent, HitProb: 1},  // worm/epidemic bug
	}
}

func TestCompileShocksStructure(t *testing.T) {
	rates := defaultRates()
	colo, err := Colocated(3).CompileShocks(rates)
	if err != nil {
		t.Fatal(err)
	}
	// One group per configured dimension (all replicas shared).
	if len(colo) != 3 {
		t.Fatalf("colocated shocks = %d, want 3 (one per configured dimension)", len(colo))
	}
	for _, s := range colo {
		if len(s.Targets) != 3 {
			t.Errorf("colocated shock %q targets %v, want all 3 replicas", s.Name, s.Targets)
		}
	}
	indep, err := FullyIndependent(3).CompileShocks(rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(indep) != 9 {
		t.Fatalf("independent shocks = %d, want 9 (3 dims x 3 singleton groups)", len(indep))
	}
	for _, s := range indep {
		if len(s.Targets) != 1 {
			t.Errorf("independent shock %q targets %v, want singleton", s.Name, s.Targets)
		}
	}
}

// The central comparability property: marginal per-replica shock rates
// are identical across topologies; only the joint structure differs.
func TestCompileShocksEqualMarginals(t *testing.T) {
	rates := defaultRates()
	topologies := map[string]Topology{
		"colocated":   Colocated(4),
		"geo":         GeoDistributed(4),
		"independent": FullyIndependent(4),
	}
	var reference []float64
	for name, top := range topologies {
		shocks, err := top.CompileShocks(rates)
		if err != nil {
			t.Fatal(err)
		}
		rates := make([]float64, top.Replicas())
		for r := range rates {
			rates[r] = faults.MarginalRate(shocks, r)
		}
		if reference == nil {
			reference = rates
			continue
		}
		for r, got := range rates {
			if math.Abs(got-reference[r]) > 1e-15 {
				t.Errorf("%s replica %d marginal rate %v differs from reference %v", name, r, got, reference[r])
			}
		}
	}
}

func TestCompileShocksSkipsUnconfiguredDimensions(t *testing.T) {
	shocks, err := Colocated(2).CompileShocks(ShockRates{
		Geography: {Mean: 1000, Kind: faults.Visible, HitProb: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(shocks) != 1 {
		t.Errorf("shocks = %d, want 1 (only geography configured)", len(shocks))
	}
}

func TestCompileShocksRejectsBadSpec(t *testing.T) {
	_, err := Colocated(2).CompileShocks(ShockRates{
		Geography: {Mean: 0, Kind: faults.Visible, HitProb: 1},
	})
	if err == nil {
		t.Error("zero shock mean accepted")
	}
	_, err = Colocated(2).CompileShocks(ShockRates{
		Geography: {Mean: 100, Kind: faults.Visible, HitProb: 2},
	})
	if err == nil {
		t.Error("hit probability 2 accepted")
	}
}
