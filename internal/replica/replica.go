// Package replica describes replica placement topologies and the §6.5
// independence dimensions: geography, administration, hardware batch,
// software stack, and hosting organization. A topology compiles into the
// set of common-cause shocks its shared components imply, which is how
// "replication without independence does not help much" (§5.5) becomes a
// runnable experiment.
package replica

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/faults"
)

// ErrInvalid reports a malformed topology.
var ErrInvalid = errors.New("replica: invalid topology")

// Dimension names one §6.5 independence axis.
type Dimension string

// The §6.5 independence dimensions.
const (
	Geography      Dimension = "geography"      // floods, earthquakes, 9/11-scale disasters
	Administration Dimension = "administration" // one admin's error hits every replica they control
	HardwareBatch  Dimension = "hardware"       // same batch, same firmware, same bathtub position
	Software       Dimension = "software"       // epidemic failure, flash worms
	Organization   Dimension = "organization"   // bankruptcy, mission change, budget cuts
)

// AllDimensions lists the dimensions in presentation order.
var AllDimensions = []Dimension{Geography, Administration, HardwareBatch, Software, Organization}

// Site is one replica's placement: the value it holds on each
// independence dimension. Replicas sharing a value share that
// component's failures.
type Site struct {
	// Name identifies the site ("SF-colo-A").
	Name string
	// Attr maps each dimension to this site's value on it ("us-west",
	// "admin-team-1", "batch-2005Q1", "linux-ext3", "acme-corp").
	Attr map[Dimension]string
}

// Topology is an ordered set of replica sites; replica index i lives at
// Sites[i].
type Topology struct {
	Sites []Site
}

// Validate reports whether every site defines every dimension.
func (t Topology) Validate() error {
	if len(t.Sites) == 0 {
		return fmt.Errorf("%w: no sites", ErrInvalid)
	}
	for i, s := range t.Sites {
		if s.Name == "" {
			return fmt.Errorf("%w: site %d unnamed", ErrInvalid, i)
		}
		for _, d := range AllDimensions {
			if s.Attr[d] == "" {
				return fmt.Errorf("%w: site %q missing dimension %q", ErrInvalid, s.Name, d)
			}
		}
	}
	return nil
}

// Replicas returns the replica count.
func (t Topology) Replicas() int { return len(t.Sites) }

// SharedGroups returns, per dimension, the groups of replica indices that
// share a value, for every value held by at least one replica. Group
// order is deterministic (sorted by value).
func (t Topology) SharedGroups(d Dimension) [][]int {
	byValue := map[string][]int{}
	for i, s := range t.Sites {
		v := s.Attr[d]
		byValue[v] = append(byValue[v], i)
	}
	values := make([]string, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Strings(values)
	out := make([][]int, 0, len(values))
	for _, v := range values {
		out = append(out, byValue[v])
	}
	return out
}

// IndependenceScore returns the fraction of (replica pair, dimension)
// combinations that differ: 1 means fully independent on every axis, 0
// means everything shared. Single-replica topologies score 1 trivially.
func (t Topology) IndependenceScore() float64 {
	n := len(t.Sites)
	if n < 2 {
		return 1
	}
	pairs := 0
	differ := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for _, d := range AllDimensions {
				pairs++
				if t.Sites[i].Attr[d] != t.Sites[j].Attr[d] {
					differ++
				}
			}
		}
	}
	return float64(differ) / float64(pairs)
}

// ShockRates maps each dimension to the mean time between that shared
// component's failure events, in hours, and the fault class such an event
// inflicts.
type ShockRates map[Dimension]ShockSpec

// ShockSpec describes the failure behaviour of one dimension's shared
// components.
type ShockSpec struct {
	// Mean is the mean time between failures of one component on this
	// dimension (one power domain, one admin team), in hours.
	Mean float64
	// Kind is the fault class the component's failure inflicts on the
	// replicas that share it.
	Kind faults.Type
	// HitProb is the per-replica probability of actually being faulted
	// by an event.
	HitProb float64
}

// CompileShocks turns the topology into the common-cause shocks its
// sharing structure implies: one shock per (dimension, shared value)
// group. Every replica sees the same marginal rate on each dimension
// regardless of the topology — only the *joint* structure changes — so
// topologies are directly comparable in the independence experiments.
func (t Topology) CompileShocks(rates ShockRates) ([]faults.Shock, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	var shocks []faults.Shock
	for _, d := range AllDimensions {
		spec, ok := rates[d]
		if !ok {
			continue
		}
		if spec.Mean <= 0 {
			return nil, fmt.Errorf("%w: dimension %q shock mean %v must be positive", ErrInvalid, d, spec.Mean)
		}
		for gi, group := range t.SharedGroups(d) {
			s := faults.Shock{
				Name:    fmt.Sprintf("%s/%d", d, gi),
				Mean:    spec.Mean,
				Targets: group,
				Kind:    spec.Kind,
				HitProb: spec.HitProb,
			}
			if err := s.Validate(); err != nil {
				return nil, err
			}
			shocks = append(shocks, s)
		}
	}
	return shocks, nil
}

// Colocated returns r replicas sharing everything: one machine room, one
// admin team, one hardware batch, one software stack, one organization.
// The §4.2 cautionary baseline.
func Colocated(r int) Topology {
	sites := make([]Site, r)
	for i := range sites {
		sites[i] = Site{
			Name: fmt.Sprintf("colo-%d", i),
			Attr: map[Dimension]string{
				Geography:      "dc-1",
				Administration: "ops-1",
				HardwareBatch:  "batch-1",
				Software:       "stack-1",
				Organization:   "org-1",
			},
		}
	}
	return Topology{Sites: sites}
}

// GeoDistributed returns r replicas in distinct locations but under one
// administration, hardware procurement, software stack, and organization
// — the common "we have offsite replicas" posture that §4.2's 9/11
// example shows is not enough.
func GeoDistributed(r int) Topology {
	sites := make([]Site, r)
	for i := range sites {
		sites[i] = Site{
			Name: fmt.Sprintf("geo-%d", i),
			Attr: map[Dimension]string{
				Geography:      fmt.Sprintf("region-%d", i),
				Administration: "ops-1",
				HardwareBatch:  "batch-1",
				Software:       "stack-1",
				Organization:   "org-1",
			},
		}
	}
	return Topology{Sites: sites}
}

// FullyIndependent returns r replicas differing on every dimension — the
// British Library posture of §6.5 (distinct locations, no administrator
// touches more than one replica, rolling hardware procurement, diverse
// software, separable organizations).
func FullyIndependent(r int) Topology {
	sites := make([]Site, r)
	for i := range sites {
		sites[i] = Site{
			Name: fmt.Sprintf("indep-%d", i),
			Attr: map[Dimension]string{
				Geography:      fmt.Sprintf("region-%d", i),
				Administration: fmt.Sprintf("ops-%d", i),
				HardwareBatch:  fmt.Sprintf("batch-%d", i),
				Software:       fmt.Sprintf("stack-%d", i),
				Organization:   fmt.Sprintf("org-%d", i),
			},
		}
	}
	return Topology{Sites: sites}
}
