package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Canonical serializes a validated configuration and its result-shaping
// options into a deterministic, self-describing string: the cache key
// substrate for services that memoize estimates.
//
// Two requests that produce byte-identical estimates must canonicalize
// identically, so the encoding works from the *resolved* per-replica
// expansion (Config.ReplicaSpecs), not the raw struct: a scalar-shorthand
// Config and the equivalent explicit Specs fleet serialize to the same
// string, as do MinIntact 0 and its default 1. Options are normalized the
// same way — Parallel is omitted entirely (the estimator is deterministic
// regardless of worker count, a property spec_test.go pins down) and
// Level 0 folds to its 0.95 default.
//
// Interface-typed fields (scrub strategies, repair samplers, correlation
// models) are encoded by concrete type name plus field values via
// reflection, so any two distinct parameterizations differ and equal ones
// collide, without each implementation opting in. Function-valued state
// cannot be canonicalized and returns an error.
func Canonical(cfg Config, opt Options) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	if opt.Bias != 0 && cfg.HasHazard() {
		return "", fmt.Errorf("%w: failure biasing is incompatible with hazard profiles (likelihood-ratio exposure assumes constant armed rates)", ErrInvalidConfig)
	}
	var b strings.Builder
	b.WriteString("sim.Config/v1{")
	fmt.Fprintf(&b, "replicas:%d,", cfg.NumReplicas())
	minIntact := cfg.MinIntact
	if minIntact == 0 {
		minIntact = 1
	}
	fmt.Fprintf(&b, "minIntact:%d,", minIntact)
	b.WriteString("specs:[")
	for i, s := range cfg.ReplicaSpecs() {
		if i > 0 {
			b.WriteByte(',')
		}
		if err := writeCanonical(&b, reflect.ValueOf(s)); err != nil {
			return "", fmt.Errorf("sim: canonicalizing replica %d: %w", i, err)
		}
	}
	b.WriteString("],correlation:")
	if err := writeCanonical(&b, reflect.ValueOf(cfg.Correlation)); err != nil {
		return "", fmt.Errorf("sim: canonicalizing correlation: %w", err)
	}
	b.WriteString(",shocks:[")
	for i, s := range cfg.Shocks {
		if i > 0 {
			b.WriteByte(',')
		}
		if err := writeCanonical(&b, reflect.ValueOf(s)); err != nil {
			return "", fmt.Errorf("sim: canonicalizing shock %q: %w", s.Name, err)
		}
	}
	b.WriteString("],")
	fmt.Fprintf(&b, "auditLatent:%s,auditVisible:%s}",
		canonFloat(cfg.AuditLatentFaultProb), canonFloat(cfg.AuditVisibleFaultProb))

	opt = opt.withDefaults()
	fmt.Fprintf(&b, "sim.Options/v1{trials:%d,horizon:%s,seed:%d,level:%s",
		opt.Trials, canonFloat(opt.Horizon), opt.Seed, canonFloat(opt.Level))
	if opt.adaptive() {
		// Adaptive runs stop at batch boundaries, so the realized trial
		// count is a deterministic function of (target, maxTrials,
		// batchSize) — these join the key, while fixed-trial runs keep
		// their historical encoding (batch size cannot shape a fixed
		// result, and older fingerprints stay valid).
		fmt.Fprintf(&b, ",targetRel:%s,maxTrials:%d,batch:%d",
			canonFloat(opt.TargetRelWidth), opt.MaxTrials, opt.BatchSize)
	}
	if opt.Bias != 0 {
		// Biased runs use a different estimator, so they must never
		// collide with unbiased keys — which keep their historical,
		// bias-free encoding. Encoding the *resolved* β makes AutoBias
		// and the explicit factor it resolves to share a fingerprint
		// (the resolution is a pure function of the config).
		fmt.Fprintf(&b, ",bias:%s", canonFloat(resolveBias(&cfg, opt.Horizon, opt.Bias)))
	}
	b.WriteString("}")
	return b.String(), nil
}

// Fingerprint returns the hex SHA-256 of Canonical(cfg, opt): the
// content-addressed cache key for an estimation request.
func Fingerprint(cfg Config, opt Options) (string, error) {
	s, err := Canonical(cfg, opt)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:]), nil
}

// canonFloat renders a float deterministically and round-trippably.
func canonFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// hazardType is the faults.Hazard interface, for the additive-field
// omission rule in writeCanonical.
var hazardType = reflect.TypeOf((*faults.Hazard)(nil)).Elem()

// writeCanonical deep-encodes a value: concrete type names for interface
// and pointer indirections, declaration-ordered struct fields (unexported
// included — derived caches are themselves deterministic functions of the
// exported state), ordered slices, and key-sorted maps. It never calls
// Interface(), so unexported fields of foreign types are readable.
//
// One additive-field rule: struct fields of interface type faults.Hazard
// are omitted entirely while nil. The Hazard field joined ReplicaSpec
// after fingerprints were already deployed as persistent cache keys, and
// a nil profile is dynamically identical to the historical behaviour —
// omitting it keeps every unprofiled config's canonical string (and disk
// store) byte-identical to pre-hazard builds, while any non-nil profile
// encodes its concrete type and parameters and fingerprints distinctly.
func writeCanonical(b *strings.Builder, v reflect.Value) error {
	if !v.IsValid() {
		b.WriteString("nil")
		return nil
	}
	switch v.Kind() {
	case reflect.Interface, reflect.Pointer:
		if v.IsNil() {
			b.WriteString("nil")
			return nil
		}
		return writeCanonical(b, v.Elem())
	case reflect.Struct:
		t := v.Type()
		b.WriteString(t.String())
		b.WriteByte('{')
		wrote := false
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).Type == hazardType && v.Field(i).IsNil() {
				continue
			}
			if wrote {
				b.WriteByte(',')
			}
			wrote = true
			b.WriteString(t.Field(i).Name)
			b.WriteByte(':')
			if err := writeCanonical(b, v.Field(i)); err != nil {
				return err
			}
		}
		b.WriteByte('}')
		return nil
	case reflect.Slice, reflect.Array:
		if v.Kind() == reflect.Slice && v.IsNil() {
			b.WriteString("nil")
			return nil
		}
		b.WriteByte('[')
		for i := 0; i < v.Len(); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, v.Index(i)); err != nil {
				return err
			}
		}
		b.WriteByte(']')
		return nil
	case reflect.Map:
		if v.IsNil() {
			b.WriteString("nil")
			return nil
		}
		keys := v.MapKeys()
		entries := make([]string, 0, len(keys))
		for _, k := range keys {
			var kb, vb strings.Builder
			if err := writeCanonical(&kb, k); err != nil {
				return err
			}
			if err := writeCanonical(&vb, v.MapIndex(k)); err != nil {
				return err
			}
			entries = append(entries, kb.String()+":"+vb.String())
		}
		sort.Strings(entries)
		b.WriteString("map{")
		b.WriteString(strings.Join(entries, ","))
		b.WriteByte('}')
		return nil
	case reflect.Float64, reflect.Float32:
		b.WriteString(canonFloat(v.Float()))
		return nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.WriteString(strconv.FormatInt(v.Int(), 10))
		return nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		b.WriteString(strconv.FormatUint(v.Uint(), 10))
		return nil
	case reflect.Bool:
		b.WriteString(strconv.FormatBool(v.Bool()))
		return nil
	case reflect.String:
		b.WriteString(strconv.Quote(v.String()))
		return nil
	default:
		return fmt.Errorf("cannot canonicalize %s value", v.Kind())
	}
}
