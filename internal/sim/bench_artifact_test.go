package sim

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/scrub"
)

// benchMirror is the hot-path benchmark config: a deliberately fragile
// mirror whose run-to-loss trials stay short (~100 events), so the
// benchmark measures per-event engine and accumulator cost rather than
// one enormous trial.
func benchMirror() Config {
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		panic(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

// BenchmarkTrialHotPath measures the worker-local reuse path — one
// allocation-recycled trial re-seeded and re-run per iteration, exactly
// as EstimateStream's workers drive it. ns/op is hours-to-loss
// simulation cost per trial; allocs/op is the per-trial allocation count
// the reuse refactor exists to minimize.
func BenchmarkTrialHotPath(b *testing.B) {
	cfg := benchMirror()
	r, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	t := allocTrial(&r.cfg, r.specs, nil)
	base := rng.New(1)
	var src rng.Source
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.DeriveInto(uint64(i)+trialStreamLabel, &src)
		t.start(&src)
		t.run(0)
	}
}

// BenchmarkEstimateCensored measures a full streaming estimation in the
// paper's interesting regime — high survival, horizon-censored — where
// the O(batch) memory claim matters most.
func BenchmarkEstimateCensored(b *testing.B) {
	cfg := benchMirror()
	cfg.VisibleMean = 1e6
	r, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(Options{Trials: 2000, Seed: uint64(i) + 1, Horizon: 20000, Parallel: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// SimBenchArtifact is the schema of BENCH_sim.json: the simulator-side
// perf trajectory published by CI alongside BENCH_service.json. The
// memory section demonstrates the O(batch) refactor: total bytes
// allocated by an estimation run must not scale with the trial budget.
type SimBenchArtifact struct {
	Bench          string  `json:"bench"`
	NsPerTrial     int64   `json:"ns_per_trial"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	AllocsPerTrial int64   `json:"allocs_per_trial"`
	BytesPerTrial  int64   `json:"bytes_per_trial"`
	MemTrialsSmall int     `json:"mem_trials_small"`
	MemTrialsLarge int     `json:"mem_trials_large"`
	MemBytesSmall  int64   `json:"mem_bytes_small"`
	MemBytesLarge  int64   `json:"mem_bytes_large"`
	MemBytesRatio  float64 `json:"mem_bytes_ratio"`
	GoMaxProcs     int     `json:"gomaxprocs"`
}

// estimateAllocBytes returns the total bytes allocated by one streaming
// estimation of a rare-loss censored scenario at the given trial budget.
func estimateAllocBytes(t *testing.T, trials int) int64 {
	t.Helper()
	cfg := benchMirror()
	cfg.VisibleMean = 1e9 // effectively immortal: the rare-loss regime
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Estimate(Options{Trials: trials, Seed: 1, Horizon: 1000, Parallel: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res.AllocedBytesPerOp()
}

// TestBenchArtifactSim measures the trial hot path and the estimation
// memory profile and, when BENCH_SIM_OUT is set, writes BENCH_sim.json
// (CI publishes it). Without the env var it still asserts the structural
// claims: trial reuse keeps per-trial allocations low, and quadrupling
// the trial budget does not come close to quadrupling allocated bytes.
func TestBenchArtifactSim(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark artifact is not a -short test")
	}
	hot := testing.Benchmark(BenchmarkTrialHotPath)
	small, large := 2000, 8000
	bytesSmall := estimateAllocBytes(t, small)
	bytesLarge := estimateAllocBytes(t, large)
	ratio := float64(bytesLarge) / float64(bytesSmall)

	// The historical implementation allocated an O(Trials) result slice
	// plus an O(Trials) observation slice, so 4x the budget meant ~4x
	// the bytes. Streaming reduction must hold the growth well under
	// that; 2x leaves headroom for noise.
	if ratio > 2 {
		t.Errorf("4x trial budget grew allocated bytes %.2fx (%d -> %d); estimation memory still scales with Trials",
			ratio, bytesSmall, bytesLarge)
	}
	// Worker-local reuse bounds per-trial allocations: the des engine,
	// replicas, processes, sources, arm closures, and still-queued event
	// handles are all recycled, leaving only the handles of events that
	// actually fired. The seed implementation (fresh event graph plus a
	// closure per scheduled event, measured on this exact config)
	// allocated ~419 objects/trial; the reuse path measures ~200. Gate
	// at 250 to catch a regression back toward per-trial rebuilding
	// without flaking on environment noise.
	if hot.AllocsPerOp() > 250 {
		t.Errorf("hot path allocates %d objects/trial, want <= 250 (seed path was ~419)", hot.AllocsPerOp())
	}

	art := SimBenchArtifact{
		Bench:          "sim_trial_hot_path_and_memory",
		NsPerTrial:     hot.NsPerOp(),
		AllocsPerTrial: hot.AllocsPerOp(),
		BytesPerTrial:  hot.AllocedBytesPerOp(),
		MemTrialsSmall: small,
		MemTrialsLarge: large,
		MemBytesSmall:  bytesSmall,
		MemBytesLarge:  bytesLarge,
		MemBytesRatio:  ratio,
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	if hot.NsPerOp() > 0 {
		art.TrialsPerSec = 1e9 / float64(hot.NsPerOp())
	}
	out := os.Getenv("BENCH_SIM_OUT")
	if out == "" {
		t.Logf("hot path %d ns/trial, %d allocs/trial; bytes %d @%d trials vs %d @%d trials (%.2fx) — set BENCH_SIM_OUT to write the artifact",
			hot.NsPerOp(), hot.AllocsPerOp(), bytesSmall, small, bytesLarge, large, ratio)
		return
	}
	bts, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(bts, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d ns/trial, %d allocs/trial, mem ratio %.2f", out, hot.NsPerOp(), hot.AllocsPerOp(), ratio)
}
