package sim

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/rng"
)

// EventKind labels trace entries.
type EventKind int

// Trace event kinds, in lifecycle order.
const (
	eventFault EventKind = iota
	eventDetected
	eventRepairStart
	eventRepaired
	eventAudit
	eventDataLoss
)

// String returns the event-kind name.
func (k EventKind) String() string {
	switch k {
	case eventFault:
		return "fault"
	case eventDetected:
		return "detected"
	case eventRepairStart:
		return "repair-start"
	case eventRepaired:
		return "repaired"
	case eventAudit:
		return "audit"
	case eventDataLoss:
		return "DATA LOSS"
	default:
		return fmt.Sprintf("sim.EventKind(%d)", int(k))
	}
}

// Event is one entry in a trial trace: the raw material for the paper's
// Figure 1 timeline (fault → [detection] → recovery for each class).
type Event struct {
	// Time is the simulation time in hours.
	Time float64
	// Replica is the replica index.
	Replica int
	// Kind is the lifecycle step.
	Kind EventKind
	// Fault is the fault class involved.
	Fault faults.Type
	// Planted marks §6.6 side-effect faults (audit- or repair-induced).
	Planted bool
}

// Trace collects the events of one trial.
type Trace struct {
	Events []Event
	// Result is the trial outcome.
	Result TrialResult
}

// traceEvent appends to the trace when tracing is on.
func (t *trial) traceEvent(at float64, replica int, kind EventKind, fault faults.Type, planted bool) {
	if t.trace == nil {
		return
	}
	t.trace.Events = append(t.trace.Events, Event{
		Time:    at,
		Replica: replica,
		Kind:    kind,
		Fault:   fault,
		Planted: planted,
	})
}

// TraceTrial runs a single traced trial of the configuration: every
// fault, detection, repair, audit, and the loss event in chronological
// order. horizon > 0 censors; 0 runs to data loss.
func TraceTrial(cfg Config, seed uint64, horizon float64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr := &Trace{}
	t := newTrial(&cfg, cfg.ReplicaSpecs(), rng.New(seed), tr)
	tr.Result = t.run(horizon)
	return tr, nil
}
