package sim

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// canonPaperConfig returns the §5.4 scrubbed mirror and default options.
func canonPaperConfig(t *testing.T) (Config, Options) {
	t.Helper()
	cfg, err := PaperConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, Options{Trials: 1000, Seed: 1}
}

func TestCanonicalScalarAndSpecsCollide(t *testing.T) {
	cfg, opt := canonPaperConfig(t)

	// The same fleet written as explicit per-replica specs.
	expanded := Config{
		Specs:       cfg.ReplicaSpecs(),
		Correlation: cfg.Correlation,
	}
	a, err := Canonical(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonical(expanded, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("scalar shorthand and expanded Specs canonicalize differently:\n%s\nvs\n%s", a, b)
	}

	// Partial override that resolves to the same values also collides.
	partial := cfg
	partial.Specs = make([]ReplicaSpec, 2)
	partial.Specs[0].VisibleMean = cfg.VisibleMean
	c, err := Canonical(partial, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Errorf("value-equal partial Specs canonicalize differently")
	}
}

func TestCanonicalNormalizations(t *testing.T) {
	cfg, opt := canonPaperConfig(t)
	base, err := Fingerprint(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Parallelism does not shape results, so it must not shape keys.
	par := opt
	par.Parallel = 7
	if fp, _ := Fingerprint(cfg, par); fp != base {
		t.Errorf("Parallel changed the fingerprint")
	}
	// Level 0 is the documented 0.95 default.
	lvl := opt
	lvl.Level = 0.95
	if fp, _ := Fingerprint(cfg, lvl); fp != base {
		t.Errorf("explicit default Level changed the fingerprint")
	}
	// MinIntact 0 defaults to 1.
	mi := cfg
	mi.MinIntact = 1
	if fp, _ := Fingerprint(mi, opt); fp != base {
		t.Errorf("explicit default MinIntact changed the fingerprint")
	}
}

func TestCanonicalSensitivity(t *testing.T) {
	cfg, opt := canonPaperConfig(t)
	base, err := Fingerprint(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	mutations := map[string]func(*Config, *Options){
		"visible mean":  func(c *Config, _ *Options) { c.VisibleMean *= 2 },
		"latent mean":   func(c *Config, _ *Options) { c.LatentMean *= 2 },
		"replica count": func(c *Config, _ *Options) { c.Replicas = 3 },
		"min intact":    func(c *Config, _ *Options) { c.MinIntact = 2 },
		"scrub":         func(c *Config, _ *Options) { c.Scrub = scrub.Periodic{Interval: 1000} },
		"scrub offset":  func(c *Config, _ *Options) { c.Scrub = scrub.Periodic{Interval: 2920, Offset: 10} },
		"repair": func(c *Config, _ *Options) {
			p, err := repair.Automated(model.PaperMRV*2, model.PaperMRL, 0)
			if err != nil {
				t.Fatal(err)
			}
			c.Repair = p
		},
		"correlation": func(c *Config, _ *Options) { c.Correlation = faults.AlphaCorrelation{Factor: 0.5} },
		"correlation model": func(c *Config, _ *Options) {
			c.Correlation = faults.CompoundingAlpha{Factor: 1}
		},
		"shock": func(c *Config, _ *Options) {
			c.Shocks = []faults.Shock{{Name: "power", Mean: 1e6, Targets: []int{0, 1}, HitProb: 1}}
		},
		"audit wear":   func(c *Config, _ *Options) { c.AuditLatentFaultProb = 0.01 },
		"audit damage": func(c *Config, _ *Options) { c.AuditVisibleFaultProb = 0.01 },
		"access detect": func(c *Config, _ *Options) {
			a, err := scrub.NewOnAccess(0.01, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			c.AccessDetect = a
		},
		"spec label": func(c *Config, _ *Options) {
			c.Specs = c.ReplicaSpecs()
			c.Specs[0].Label = "site-B"
		},
		"trials":  func(_ *Config, o *Options) { o.Trials = 2000 },
		"seed":    func(_ *Config, o *Options) { o.Seed = 2 },
		"horizon": func(_ *Config, o *Options) { o.Horizon = 8760 },
		"level":   func(_ *Config, o *Options) { o.Level = 0.99 },
		"adaptive target": func(_ *Config, o *Options) {
			o.TargetRelWidth = 0.05
			o.MaxTrials = 100000
		},
		"adaptive max trials": func(_ *Config, o *Options) {
			o.TargetRelWidth = 0.05
			o.MaxTrials = 200000
		},
		"adaptive batch size": func(_ *Config, o *Options) {
			o.TargetRelWidth = 0.05
			o.MaxTrials = 100000
			o.BatchSize = 512
		},
	}
	seen := map[string]string{base: "base"}
	for name, mutate := range mutations {
		cfg2, opt2 := canonPaperConfig(t)
		mutate(&cfg2, &opt2)
		fp, err := Fingerprint(cfg2, opt2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
}

// Note: "correlation model" above flips AlphaCorrelation{1} vs the
// default Independent{} — behaviorally identical but a different model
// type, and the canonical form is allowed (and expected) to distinguish
// concrete types; only value-equal configurations must collide.

// Fixed-trial options must keep their historical canonical encoding —
// batch size cannot shape a fixed result, so it must not shape the key —
// while adaptive options fold the stopping rule into the key.
func TestCanonicalAdaptiveEncoding(t *testing.T) {
	cfg, opt := canonPaperConfig(t)
	base, err := Canonical(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(base, "sim.Options/v1{trials:1000,horizon:0,seed:1,level:0.95}") {
		t.Errorf("fixed-trial options encoding changed:\n%s", base)
	}
	batched := opt
	batched.BatchSize = 32
	if got, _ := Canonical(cfg, batched); got != base {
		t.Error("batch size changed a fixed-trial key")
	}

	adaptive := opt
	adaptive.TargetRelWidth = 0.05
	adaptive.MaxTrials = 50000
	s, err := Canonical(cfg, adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "targetRel:0.05,maxTrials:50000,batch:256") {
		t.Errorf("adaptive options not encoded in the key:\n%s", s)
	}
}

func TestCanonicalRejectsInvalidConfig(t *testing.T) {
	var cfg Config // no replicas, nil correlation
	if _, err := Canonical(cfg, Options{Trials: 10}); err == nil {
		t.Fatal("Canonical accepted an invalid config")
	}
}

func TestCanonicalIsSelfDescribing(t *testing.T) {
	cfg, opt := canonPaperConfig(t)
	s, err := Canonical(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sim.Config/v1", "sim.Options/v1", "scrub.Periodic", "repair.Policy",
		"faults.Independent", "trials:1000", "seed:1", "level:0.95",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("canonical form missing %q:\n%s", want, s)
		}
	}
}

func TestConfigMismatchErrorsAreClear(t *testing.T) {
	cfg, _ := canonPaperConfig(t)
	cfg.Specs = cfg.ReplicaSpecs()
	cfg.Replicas = 3 // but len(Specs) == 2
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a Specs/Replicas length mismatch")
	}
	if !strings.Contains(err.Error(), "2 specs for 3 replicas") {
		t.Errorf("mismatch error %q does not state both counts", err)
	}
}
