package sim

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// runMetrics is the simulator's instrument set. Recording happens only
// on the reducer goroutine at batch boundaries — never inside the
// per-trial worker loop — so enabling metrics costs one atomic add per
// ~BatchSize trials and cannot perturb the bit-identical determinism
// contract (snapshots are observational, and so are these counters).
type runMetrics struct {
	trials       *telemetry.Counter
	batches      *telemetry.Counter
	runs         *telemetry.Counter
	runsAdaptive *telemetry.Counter
	stoppedEarly *telemetry.Counter
	biasedRuns   *telemetry.Counter
	runSeconds   *telemetry.Histogram
	relWidth     *telemetry.Histogram
	effSamples   *telemetry.Histogram
}

// metricsPtr is the process-wide simulator instrument set; nil (the
// default) disables recording entirely.
var metricsPtr atomic.Pointer[runMetrics]

// EnableMetrics registers the sim metric families on reg and starts
// recording every estimation run in this process into them:
// sim_trials_total and sim_batches_total give trials/sec and merge
// throughput under rate(), sim_run_seconds the run-duration
// distribution, and sim_adaptive_rel_width the adaptive stopping
// criterion's CI-width trajectory observed at batch boundaries.
// Idempotent on one registry; calling again with a different registry
// redirects recording there.
func EnableMetrics(reg *telemetry.Registry) {
	metricsPtr.Store(&runMetrics{
		trials:       reg.Counter("sim_trials_total", "Monte Carlo trials folded into merged batch accumulators."),
		batches:      reg.Counter("sim_batches_total", "Batch accumulators merged by streaming reducers."),
		runs:         reg.Counter("sim_runs_total", "Estimation runs started."),
		runsAdaptive: reg.Counter("sim_runs_adaptive_total", "Estimation runs driven by a sequential stopping rule."),
		stoppedEarly: reg.Counter("sim_runs_stopped_early_total", "Adaptive runs that met their precision target before exhausting MaxTrials."),
		biasedRuns:   reg.Counter("sim_biased_runs_total", "Estimation runs sampled under importance-sampling failure biasing."),
		runSeconds:   reg.Histogram("sim_run_seconds", "Wall-clock duration of estimation runs.", telemetry.DurationBuckets),
		relWidth: reg.Histogram("sim_adaptive_rel_width",
			"Adaptive stopping criterion's relative CI half-width at batch boundaries — the convergence trajectory.", telemetry.WidthBuckets),
		effSamples: reg.Histogram("sim_effective_sample_size",
			"Effective loss count (ESS) of completed biased runs — how many equal-weight losses the weighted estimator really saw.",
			[]float64{1, 3, 10, 30, 100, 300, 1e3, 3e3, 1e4, 3e4, 1e5}),
	})
}

// DisableMetrics detaches the simulator from any registry; estimation
// runs stop recording. Used by benchmarks measuring instrumentation
// overhead.
func DisableMetrics() { metricsPtr.Store(nil) }
