package sim

import (
	"math"

	"repro/internal/model"
)

// AutoBias is the Options.Bias sentinel asking the runner to choose the
// failure-biasing factor β itself from the analytic model's regime
// classification of the configuration and the run's horizon. The
// resolution is a deterministic function of (config, horizon) — both
// already part of the canonical key — so auto-biased runs canonicalize
// (and cache) identically to the same run with the resolved β spelled
// out.
const AutoBias = -1

// maxAutoBias caps the automatic boost: beyond ~1e6 the per-horizon
// loss probability is so small that pushing β further only inflates
// likelihood-ratio spread without buying more hits per trial.
const maxAutoBias = 1e6

// resolveBias maps Options.Bias to the effective β ≥ 1 the trials
// sample under: 1 for an unbiased run (Bias 0 — note the weighted
// estimator is still NOT used then), the model-chosen factor for
// AutoBias, the explicit factor otherwise. cfg must be validated.
func resolveBias(cfg *Config, horizon, bias float64) float64 {
	switch {
	case bias == 0:
		return 1
	case bias == AutoBias:
		return autoBias(cfg, horizon)
	default:
		return bias
	}
}

// autoBias picks the failure-biasing factor from the analytic model
// (eqs 3–7): estimate the rate-weighted probability s that one window
// of vulnerability sees a second fault before it closes, multiply by
// the expected number of windows the horizon contains (every fault
// arrival on the healthy fleet opens one) to get the per-horizon loss
// probability p_H, and boost the in-window hazards by β ≈ 0.5/p_H.
//
// Targeting the per-horizon probability rather than the per-window one
// is what keeps the estimator well-conditioned: it bounds the total
// measure distortion per trial (β·Λ ≈ 0.5 over the horizon's
// accumulated in-window exposure Λ), so every loss carries a weight of
// the same order and the Horvitz–Thompson variance stays finite-sample
// honest. Boosting 0.5/s per window instead would make each window a
// coin flip — and, across many windows, concentrate the estimate on
// early losses while the rare late ones carry exponentially exploding
// weights.
//
// Configurations where loss over the horizon is not rare (p_H ≥ 0.5,
// including the long-latent-window regime) get β = 1: plain Monte
// Carlo already observes losses there, and biasing would only add
// weight noise. Heterogeneous fleets resolve through replica 0's spec,
// the same convention ModelParams uses everywhere else.
func autoBias(cfg *Config, horizon float64) float64 {
	if !(horizon > 0) {
		return 1
	}
	p := cfg.ModelParams()
	if p.Validate() != nil {
		return 1
	}
	if p.Regime() == model.RegimeLongLatentWOV {
		return 1
	}
	s := p.SecondFaultProbabilities()
	rv, rl := 0.0, 0.0
	if !math.IsInf(p.MV, 1) {
		rv = 1 / p.MV
	}
	if !math.IsInf(p.ML, 1) {
		rl = 1 / p.ML
	}
	if rv+rl == 0 {
		return 1
	}
	sEff := (rv*s.AnyAfterVisible() + rl*s.AnyAfterLatent()) / (rv + rl)
	windows := horizon * float64(cfg.NumReplicas()) * (rv + rl)
	pH := sEff * windows
	if !(pH > 0) {
		return maxAutoBias
	}
	beta := 0.5 / pH
	if beta < 1 {
		return 1
	}
	if beta > maxAutoBias {
		return maxAutoBias
	}
	return beta
}
