package sim

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// accumulator is the mergeable reduction state of an estimation run: the
// replacement for the historical O(Trials) result slice. Workers fold
// each TrialResult into a per-batch accumulator as it completes, and the
// reducer merges batch accumulators in batch-index order, so peak memory
// is O(batch), not O(trials).
//
// Everything in here is either exactly mergeable (integer counters,
// Bernoulli counts, the observation multiset) or replayed in trial order
// during merge (the Welford pass over loss times, via the ObsBuffer's
// order-preserving event stream). That replay is what makes the merged
// reduction bit-identical to the historical sequential aggregation — and
// therefore independent of both worker count and batch size in
// fixed-trial mode.
type accumulator struct {
	// batch is the accumulator's batch index during streaming reduction.
	batch    int
	trials   int
	censored int
	stats    TrialStats
	matrix   DoubleFaultMatrix
	// lossTimes is only folded on the global (reducer-side) accumulator:
	// merge replays each batch's loss times in trial order, keeping the
	// floating-point Welford sequence identical to a sequential run.
	lossTimes stats.Running
	lossProb  stats.Proportion
	obs       stats.ObsBuffer

	// weighted marks an importance-sampled (failure-biased) run. Batch
	// accumulators then additionally buffer each trial's
	// likelihood-ratio weight and outcome in trial order (wTrials), and
	// the reducer replays the buffers into its own weighted estimators
	// during the in-order merge — the exact pattern the Welford pass
	// uses — so weighted float reductions, like unweighted ones, are
	// bit-identical at any Parallel/BatchSize.
	weighted bool
	wTrials  []weightedObs
	// wLoss and wTimes are only folded on the reducer side: the
	// Horvitz–Thompson loss-probability estimator and the weighted
	// spread of loss times.
	wLoss  stats.WeightedProportion
	wTimes stats.WeightedMean
}

// weightedObs is one buffered trial of a biased run: its
// likelihood-ratio weight, end time, and outcome.
type weightedObs struct {
	w, t float64
	lost bool
}

// addTrial folds one trial outcome, mirroring the historical aggregation
// loop field for field.
func (a *accumulator) addTrial(res TrialResult, horizon float64) {
	a.trials++
	a.stats.add(res.Stats)
	if res.Lost {
		a.matrix.Losses[res.FirstFault][res.FinalFault]++
		a.obs.AddEvent(res.Time)
	} else {
		a.censored++
		a.obs.AddCensored(res.Time)
	}
	if horizon > 0 {
		a.lossProb.Add(res.Lost)
	}
	if a.weighted {
		a.wTrials = append(a.wTrials, weightedObs{w: res.Weight, t: res.Time, lost: res.Lost})
	}
}

// merge folds a batch accumulator into a. Called in batch-index order by
// the reducer; o's loss times replay into the Welford accumulator in
// their original trial order.
func (a *accumulator) merge(o *accumulator) {
	a.trials += o.trials
	a.censored += o.censored
	a.stats.add(o.stats)
	for first := range o.matrix.Losses {
		for final := range o.matrix.Losses[first] {
			a.matrix.Losses[first][final] += o.matrix.Losses[first][final]
		}
	}
	a.lossProb.Merge(o.lossProb)
	for _, t := range o.obs.Events() {
		a.lossTimes.Add(t)
	}
	a.obs.Merge(&o.obs)
	for _, e := range o.wTrials {
		a.wLoss.Add(e.lost, e.w)
		if e.lost {
			a.wTimes.Add(e.t, e.w)
		}
	}
}

// reset empties a batch accumulator for reuse, keeping allocations.
func (a *accumulator) reset() {
	obs := a.obs
	obs.Reset()
	wt := a.wTrials[:0]
	*a = accumulator{obs: obs, wTrials: wt}
}

// stopWidth returns the adaptive stopping criterion's current value: the
// relative half-width of the LossProb Wilson interval when the run is
// horizon-censored — or of the weighted Horvitz–Thompson interval in a
// biased run — else of the MTTDL Student-t interval over observed loss
// times. +Inf while the criterion is not yet estimable (no trials,
// fewer than two losses, or a zero point estimate), which simply defers
// stopping to MaxTrials.
func (a *accumulator) stopWidth(opt Options) float64 {
	if a.weighted {
		// Biased runs always have a horizon; stop on the weighted CI.
		if a.wLoss.N() == 0 {
			return math.Inf(1)
		}
		iv, err := a.wLoss.CI(opt.Level)
		if err != nil {
			return math.Inf(1)
		}
		return iv.RelativeHalfWidth()
	}
	if opt.Horizon > 0 {
		if a.lossProb.N() == 0 {
			return math.Inf(1)
		}
		iv, err := a.lossProb.CI(opt.Level)
		if err != nil {
			return math.Inf(1)
		}
		return iv.RelativeHalfWidth()
	}
	if a.lossTimes.N() < 2 {
		return math.Inf(1)
	}
	iv, err := a.lossTimes.MeanCI(opt.Level)
	if err != nil {
		return math.Inf(1)
	}
	return iv.RelativeHalfWidth()
}

// finalize turns the fully-merged reduction into an Estimate. The
// interval logic reproduces the historical aggregate() exactly.
func (a *accumulator) finalize(opt Options) (Estimate, error) {
	var est Estimate
	est.Trials = a.trials
	est.Censored = a.censored
	est.Stats = a.stats
	est.Matrix = a.matrix
	est.Matrix.WOVByVis = est.Stats.WOVOpenedByVis
	est.Matrix.WOVByLat = est.Stats.WOVOpenedByLat

	km, err := a.obs.KaplanMeier()
	if err != nil {
		return Estimate{}, fmt.Errorf("sim: fitting survival curve: %w", err)
	}
	est.Survival = km

	if a.weighted {
		// Biased run: Horvitz–Thompson estimates under the true
		// measure. Survival above stays the raw Kaplan–Meier fit over
		// the biased-measure trials — a diagnostic of what the sampler
		// saw, not a corrected curve.
		est.Bias = opt.Bias
		est.EffectiveSamples = a.wLoss.EffectiveN()
		iv, err := a.wLoss.CI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: weighted loss probability interval: %w", err)
		}
		est.LossProb = iv
		if cv, err := a.wLoss.ControlVariateCI(opt.Level); err == nil {
			est.LossProbCV = cv
		}
		// Weighted restricted mean H − Σ_lost w·(H − T)/n: the
		// importance-sampled counterpart of the Kaplan–Meier restricted
		// mean under fixed-horizon censoring, with the weighted loss
		// times' spread (ESS-adjusted t-interval) as a rough interval.
		rm := opt.Horizon
		if lostW := a.wTimes.SumWeights(); lostW > 0 {
			rm = opt.Horizon - lostW*(opt.Horizon-a.wTimes.Mean())/float64(a.trials)
		}
		if iv, err := a.wTimes.MeanCI(opt.Level); err == nil {
			half := iv.HalfWidth()
			est.MTTDL = stats.Interval{Point: rm, Lo: rm - half, Hi: rm + half, Level: opt.Level}
		} else {
			est.MTTDL = stats.Interval{Point: rm, Lo: rm, Hi: rm, Level: opt.Level}
		}
		return est, nil
	}

	switch {
	case est.Censored == 0:
		iv, err := a.lossTimes.MeanCI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: MTTDL interval: %w", err)
		}
		est.MTTDL = iv
	case a.lossTimes.N() >= 2:
		// Censored run: report the restricted mean (a defensible lower
		// bound) with the uncensored subset's spread as a rough
		// interval.
		rm := km.RestrictedMean(opt.Horizon)
		iv, err := a.lossTimes.MeanCI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: MTTDL interval: %w", err)
		}
		half := iv.HalfWidth()
		est.MTTDL = stats.Interval{Point: rm, Lo: rm - half, Hi: rm + half, Level: opt.Level}
	default:
		// (Almost) nothing was lost before the horizon: the restricted
		// mean is essentially the horizon and carries no spread.
		rm := km.RestrictedMean(opt.Horizon)
		est.MTTDL = stats.Interval{Point: rm, Lo: rm, Hi: rm, Level: opt.Level}
	}

	if opt.Horizon > 0 {
		iv, err := a.lossProb.CI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: loss probability interval: %w", err)
		}
		est.LossProb = iv
	}
	return est, nil
}

// snapshot renders the reduction as a Progress frame. The MTTDL interval
// is the provisional Student-t interval over observed loss times (the
// final censored-run estimate substitutes the restricted mean as its
// point); LossProb is meaningful only when the run is horizon-censored.
func (a *accumulator) snapshot(opt Options, batches, budget int) Progress {
	p := Progress{
		Trials:         a.trials,
		Batches:        batches,
		Losses:         a.obs.EventsN(),
		Censored:       a.censored,
		RelWidth:       a.stopWidth(opt),
		TargetRelWidth: opt.TargetRelWidth,
		Budget:         budget,
	}
	if a.lossTimes.N() >= 2 {
		if iv, err := a.lossTimes.MeanCI(opt.Level); err == nil {
			p.MTTDL = iv
		}
	}
	if a.weighted {
		p.EffectiveSamples = a.wLoss.EffectiveN()
		if a.wLoss.N() > 0 {
			if iv, err := a.wLoss.CI(opt.Level); err == nil {
				p.LossProb = iv
			}
		}
		return p
	}
	if opt.Horizon > 0 && a.lossProb.N() > 0 {
		if iv, err := a.lossProb.CI(opt.Level); err == nil {
			p.LossProb = iv
		}
	}
	return p
}
