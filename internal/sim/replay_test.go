package sim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
	"repro/internal/trace"
)

// recordConfig exercises every event source a trace can carry: both
// fault channels, periodic scrubbing, buggy repairs (planted latent
// faults), and a common-cause shock.
func recordConfig(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(50, 50, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 2000,
		LatentMean:  3000,
		Scrub:       scrub.Periodic{Interval: 200},
		Repair:      rep,
		Correlation: faults.Independent{},
		Shocks: []faults.Shock{{
			Name: "power", Mean: 8000, Targets: []int{0, 1},
			Kind: faults.Visible, HitProb: 0.7,
		}},
	}
}

func recordTrace(t *testing.T) (*trace.Trace, Estimate) {
	t.Helper()
	r, err := NewRunner(recordConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	tr, est, err := r.RecordTrace(Options{Trials: 300, Seed: 11, Horizon: 5000})
	if err != nil {
		t.Fatal(err)
	}
	return tr, est
}

// sameOutcome compares the loss-trajectory-derived parts of two
// estimates bit for bit. Stats are excluded deliberately: replay
// re-simulates audits and detections, so event counts legitimately
// differ while every outcome is identical.
func sameOutcome(t *testing.T, label string, a, b Estimate) {
	t.Helper()
	if a.Trials != b.Trials || a.Censored != b.Censored {
		t.Errorf("%s: trials/censored %d/%d vs %d/%d", label, a.Trials, a.Censored, b.Trials, b.Censored)
	}
	if a.Matrix != b.Matrix {
		t.Errorf("%s: double-fault matrix differs:\n%+v\nvs\n%+v", label, a.Matrix, b.Matrix)
	}
	pairs := [][2]float64{
		{a.LossProb.Point, b.LossProb.Point}, {a.LossProb.Lo, b.LossProb.Lo}, {a.LossProb.Hi, b.LossProb.Hi},
		{a.MTTDL.Point, b.MTTDL.Point}, {a.MTTDL.Lo, b.MTTDL.Lo}, {a.MTTDL.Hi, b.MTTDL.Hi},
		{a.Survival.MaxTime(), b.Survival.MaxTime()},
		{a.Survival.RestrictedMean(20000), b.Survival.RestrictedMean(20000)},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Errorf("%s: outcome field %d differs: %v vs %v", label, i, p[0], p[1])
		}
	}
}

// TestPinnedReplayReproducesOutcomes is the replay contract: a pinned
// replay of a recorded run reproduces every loss outcome exactly — with
// a different seed, since recorded faults and pinned repairs fully
// determine the faulty-count trajectory.
func TestPinnedReplayReproducesOutcomes(t *testing.T) {
	tr, recorded := recordTrace(t)
	if recorded.Censored == 0 || recorded.Censored == recorded.Trials {
		t.Fatalf("degenerate recording (censored %d of %d)", recorded.Censored, recorded.Trials)
	}
	if len(tr.Events) == 0 {
		t.Fatalf("recorded trace is empty")
	}
	r, err := NewReplayRunner(recordConfig(t), tr, true)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := r.ReplayEstimate(Options{Seed: 999, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "pinned replay", recorded, replayed)
}

func TestReplayParallelBitIdentity(t *testing.T) {
	tr, _ := recordTrace(t)
	var got []Estimate
	for _, par := range []int{1, 8} {
		r, err := NewReplayRunner(recordConfig(t), tr, true)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.ReplayEstimate(Options{Seed: 1, Parallel: par})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}
	sameOutcome(t, "parallel replay", got[0], got[1])
	if got[0].Stats != got[1].Stats {
		t.Errorf("replay Stats differ across Parallel 1 vs 8:\n%+v\nvs\n%+v", got[0].Stats, got[1].Stats)
	}
}

// TestReplayNDJSONRoundTrip drives the full wire path: serialize the
// recorded trace, re-parse it, and check the replay is unchanged.
func TestReplayNDJSONRoundTrip(t *testing.T) {
	tr, recorded := recordTrace(t)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse(&buf)
	if err != nil {
		t.Fatalf("re-parsing recorded trace: %v", err)
	}
	r, err := NewReplayRunner(recordConfig(t), parsed, true)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := r.ReplayEstimate(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "round-tripped replay", recorded, replayed)
}

// TestPolicyReplayCounterfactual replays the same fault history under a
// far stronger repair policy: repairs two orders of magnitude faster and
// scrubs four times as frequent. The counterfactual fleet must lose
// data in strictly fewer trials.
func TestPolicyReplayCounterfactual(t *testing.T) {
	tr, recorded := recordTrace(t)
	cfg := recordConfig(t)
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Repair = rep
	cfg.Scrub = scrub.Periodic{Interval: 50}
	r, err := NewReplayRunner(cfg, tr, false)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := r.ReplayEstimate(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recLosses := recorded.Trials - recorded.Censored
	ctrLosses := counter.Trials - counter.Censored
	if ctrLosses >= recLosses {
		t.Errorf("stronger policy lost %d trials vs recorded %d; counterfactual replay is not re-deciding repairs", ctrLosses, recLosses)
	}
}

func TestReplayValidation(t *testing.T) {
	tr, _ := recordTrace(t)
	cfg := recordConfig(t)

	if _, err := NewReplayRunner(cfg, nil, true); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("nil trace: err = %v", err)
	}

	three := cfg
	three.Replicas = 3
	if _, err := NewReplayRunner(three, tr, true); err == nil || !strings.Contains(err.Error(), "replicas") {
		t.Errorf("fleet-size mismatch: err = %v", err)
	}

	r, err := NewReplayRunner(cfg, tr, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(Options{Trials: 10, Seed: 1, Horizon: 5000}); err == nil || !strings.Contains(err.Error(), "trials") {
		t.Errorf("trial-count mismatch: err = %v", err)
	}
	if _, err := r.Estimate(Options{Trials: 300, Seed: 1, Horizon: 5}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("horizon mismatch: err = %v", err)
	}
	if _, err := r.Estimate(Options{Trials: 300, Seed: 1, Horizon: 5000, TargetRelWidth: 0.1}); err == nil || !strings.Contains(err.Error(), "adaptive") {
		t.Errorf("adaptive replay: err = %v", err)
	}
	if _, err := r.Estimate(Options{Trials: 300, Seed: 1, Horizon: 5000, Bias: 4}); err == nil || !strings.Contains(err.Error(), "biasing") {
		t.Errorf("biased replay: err = %v", err)
	}
	if _, _, err := r.RecordTrace(Options{Trials: 10, Seed: 1, Horizon: 100}); err == nil || !strings.Contains(err.Error(), "record") {
		t.Errorf("recording from a replay runner: err = %v", err)
	}

	plain, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ReplayEstimate(Options{Seed: 1}); err == nil || !strings.Contains(err.Error(), "replay runner") {
		t.Errorf("ReplayEstimate without a trace: err = %v", err)
	}
	if _, _, err := plain.RecordTrace(Options{Trials: 10, Seed: 1}); err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Errorf("recording without a horizon: err = %v", err)
	}
	if _, _, err := plain.RecordTrace(Options{Trials: 10, Seed: 1, Horizon: 100, Bias: 4}); err == nil || !strings.Contains(err.Error(), "biasing") {
		t.Errorf("recording under bias: err = %v", err)
	}
	if _, _, err := plain.RecordTrace(Options{Seed: 1, Horizon: 100, TargetRelWidth: 0.1}); err == nil || !strings.Contains(err.Error(), "fixed") {
		t.Errorf("adaptive recording: err = %v", err)
	}
}

// TestRecordTraceWithHazard checks the tentpole features compose: a
// profiled (time-varying) fleet records and replays exactly too.
func TestRecordTraceWithHazard(t *testing.T) {
	cfg := recordConfig(t)
	cfg.Shocks = nil
	cfg.Hazard = faults.WeibullHazard{Shape: 2, Scale: 8000}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, recorded, err := r.RecordTrace(Options{Trials: 200, Seed: 21, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewReplayRunner(cfg, tr, true)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := rr.ReplayEstimate(Options{Seed: 4, Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}
	sameOutcome(t, "profiled replay", recorded, replayed)
}
