package sim

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// goldenConfig is the heterogeneity-free reference system whose results
// were recorded against the pre-ReplicaSpec engine. The golden tests pin
// the refactor's core promise: the uniform shorthand is byte-identical
// to seed behavior under the same seed.
func goldenConfig(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	corr, err := faults.NewAlphaCorrelation(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:     3,
		VisibleMean:  1000,
		LatentMean:   2000,
		Scrub:        scrub.Periodic{Interval: 400},
		AccessDetect: scrub.OnAccess{RatePerHour: 0.01, Coverage: 0.5},
		Repair:       rep,
		Correlation:  corr,
	}
}

// TestUniformConfigMatchesSeedGolden pins Estimate on a scalar-only
// Config to values recorded from the pre-refactor engine: the same seed
// must keep producing bit-identical results through the spec expansion.
func TestUniformConfigMatchesSeedGolden(t *testing.T) {
	r, err := NewRunner(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 500, Seed: 42, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := est.MTTDL.Point, 15634.487849646892; got != want {
		t.Errorf("MTTDL.Point = %.17g, want seed-recorded %.17g", got, want)
	}
	if got, want := est.MTTDL.Lo, 14267.228405643025; got != want {
		t.Errorf("MTTDL.Lo = %.17g, want %.17g", got, want)
	}
	if got, want := est.MTTDL.Hi, 17001.747293650758; got != want {
		t.Errorf("MTTDL.Hi = %.17g, want %.17g", got, want)
	}
	if want := (DoubleFaultMatrix{Losses: [2][2]int{{28, 21}, {317, 134}}, WOVByVis: 19266, WOVByLat: 9777}); est.Matrix != want {
		t.Errorf("Matrix = %+v, want seed-recorded %+v", est.Matrix, want)
	}
	if est.Stats.VisibleFaults != 25722 || est.Stats.LatentFaults != 12391 || est.Stats.Repairs != 35406 {
		t.Errorf("Stats = %+v, want seed-recorded visible=25722 latent=12391 repairs=35406", est.Stats)
	}

	censored, err := r.Estimate(Options{Trials: 400, Seed: 7, Horizon: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := censored.LossProb.Point, 0.69999999999999996; got != want {
		t.Errorf("LossProb.Point = %.17g, want seed-recorded %.17g", got, want)
	}
	if got, want := censored.MTTDL.Point, 11540.320516355237; got != want {
		t.Errorf("censored MTTDL.Point = %.17g, want %.17g", got, want)
	}
	if censored.Censored != 120 {
		t.Errorf("Censored = %d, want seed-recorded 120", censored.Censored)
	}
}

// TestDeprecatedScrubPerReplicaMatchesSeedGolden pins the folded
// ScrubPerReplica path to its pre-refactor results.
func TestDeprecatedScrubPerReplicaMatchesSeedGolden(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.ScrubPerReplica = []scrub.Strategy{
		scrub.Periodic{Interval: 400},
		scrub.Periodic{Interval: 400, Offset: 200},
		scrub.Periodic{Interval: 500},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := est.MTTDL.Point, 17398.300768665224; got != want {
		t.Errorf("MTTDL.Point = %.17g, want seed-recorded %.17g", got, want)
	}
	if want := [2][2]int{{15, 10}, {182, 93}}; est.Matrix.Losses != want {
		t.Errorf("Matrix.Losses = %v, want seed-recorded %v", est.Matrix.Losses, want)
	}
}

// TestExplicitUniformSpecsMatchShorthand asserts the second half of the
// equivalence: spelling the same uniform system as explicit Specs
// consumes randomness identically, so every estimate field matches the
// scalar shorthand bit for bit.
func TestExplicitUniformSpecsMatchShorthand(t *testing.T) {
	scalar := goldenConfig(t)
	spec := ReplicaSpec{
		VisibleMean:  scalar.VisibleMean,
		LatentMean:   scalar.LatentMean,
		Scrub:        scalar.Scrub,
		AccessDetect: scalar.AccessDetect,
		Repair:       scalar.Repair,
	}
	explicit := scalar
	explicit.Replicas = 0
	explicit.VisibleMean = 0
	explicit.LatentMean = 0
	explicit.Scrub = nil
	explicit.AccessDetect = nil
	explicit.Repair = repair.Policy{}
	explicit.Specs = []ReplicaSpec{spec, spec, spec}

	ra, err := NewRunner(scalar)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRunner(explicit)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 400, Seed: 3}
	a, err := ra.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rb.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.MTTDL != b.MTTDL || a.Matrix != b.Matrix || a.Stats != b.Stats {
		t.Errorf("explicit uniform specs diverge from shorthand:\n scalar %+v %+v\n specs  %+v %+v", a.MTTDL, a.Matrix, b.MTTDL, b.Matrix)
	}
}

// heterogeneousConfig is a three-tier fleet exercising every per-replica
// dimension at once: distinct means, scrub schedules, access channels,
// and repair policies.
func heterogeneousConfig(t *testing.T) Config {
	t.Helper()
	fast, err := repair.Automated(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := repair.Automated(30, 30, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Specs: []ReplicaSpec{
			{
				Label:       "consumer-disk",
				VisibleMean: 2000,
				LatentMean:  400,
				Scrub:       scrub.Periodic{Interval: 200},
				Repair:      fast,
			},
			{
				Label:        "enterprise-disk",
				VisibleMean:  5000,
				LatentMean:   1000,
				Scrub:        scrub.Periodic{Interval: 200, Offset: 100},
				AccessDetect: scrub.OnAccess{RatePerHour: 0.1, Coverage: 0.2},
				Repair:       fast,
			},
			{
				Label:       "tape-shelf",
				VisibleMean: 6000,
				LatentMean:  1200,
				Scrub:       scrub.Periodic{Interval: 2000},
				Repair:      slow,
			},
		},
		Correlation: faults.Independent{},
	}
}

// TestHeterogeneousDeterministicAcrossParallelism is the spec-path
// determinism guarantee: the worker count must not leak into results.
func TestHeterogeneousDeterministicAcrossParallelism(t *testing.T) {
	r, err := NewRunner(heterogeneousConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := r.Estimate(Options{Trials: 400, Seed: 11, Parallel: 1, Horizon: 50000})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := r.Estimate(Options{Trials: 400, Seed: 11, Parallel: 8, Horizon: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if serial.MTTDL != parallel.MTTDL {
		t.Errorf("MTTDL differs across parallelism: %+v vs %+v", serial.MTTDL, parallel.MTTDL)
	}
	if serial.LossProb != parallel.LossProb {
		t.Errorf("LossProb differs across parallelism: %+v vs %+v", serial.LossProb, parallel.LossProb)
	}
	if serial.Matrix != parallel.Matrix {
		t.Errorf("Matrix differs across parallelism: %+v vs %+v", serial.Matrix, parallel.Matrix)
	}
	if serial.Stats != parallel.Stats {
		t.Errorf("Stats differ across parallelism: %+v vs %+v", serial.Stats, parallel.Stats)
	}
}

// TestSpecInheritance checks the partial-override contract: zero/nil
// spec fields resolve to the Config scalars.
func TestSpecInheritance(t *testing.T) {
	cfg := goldenConfig(t)
	cfg.Replicas = 0
	cfg.Specs = []ReplicaSpec{
		{},                                // pure inheritance
		{VisibleMean: 7777, Label: "odd"}, // override one field
		{Scrub: scrub.None{}},             // override another
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	specs := cfg.ReplicaSpecs()
	if len(specs) != 3 {
		t.Fatalf("expanded %d specs, want 3", len(specs))
	}
	if specs[0].VisibleMean != cfg.VisibleMean || specs[0].LatentMean != cfg.LatentMean {
		t.Errorf("spec 0 means %v/%v, want inherited %v/%v", specs[0].VisibleMean, specs[0].LatentMean, cfg.VisibleMean, cfg.LatentMean)
	}
	if specs[0].Scrub == nil || specs[0].Scrub.Name() != cfg.Scrub.Name() {
		t.Errorf("spec 0 scrub %v, want inherited %v", specs[0].Scrub, cfg.Scrub)
	}
	if specs[0].Repair.MeanVisible() != cfg.Repair.MeanVisible() {
		t.Errorf("spec 0 repair not inherited")
	}
	if specs[1].VisibleMean != 7777 || specs[1].LatentMean != cfg.LatentMean {
		t.Errorf("spec 1 override broken: %+v", specs[1])
	}
	if specs[2].Scrub.Name() != (scrub.None{}).Name() {
		t.Errorf("spec 2 scrub override broken: %v", specs[2].Scrub.Name())
	}
	if cfg.NumReplicas() != 3 {
		t.Errorf("NumReplicas = %d, want 3 (derived from Specs)", cfg.NumReplicas())
	}
}

// TestSpecValidation covers the new rejection paths.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"specs vs replicas mismatch", func(c *Config) { c.Replicas = 2 }},
		{"specs plus deprecated scrub slice", func(c *Config) {
			c.ScrubPerReplica = []scrub.Strategy{scrub.None{}, scrub.None{}, scrub.None{}}
		}},
		{"NaN spec mean", func(c *Config) { c.Specs[1].VisibleMean = math.NaN() }},
		{"negative spec mean", func(c *Config) { c.Specs[2].LatentMean = -1 }},
		{"min intact beyond derived count", func(c *Config) { c.MinIntact = 4 }},
		{"shock target beyond derived count", func(c *Config) {
			c.Shocks = []faults.Shock{{Name: "x", Mean: 10, Targets: []int{3}, Kind: faults.Visible, HitProb: 1}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := heterogeneousConfig(t)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}

	// A spec fleet with no scalar fallback must reject a nil-scrub spec.
	cfg := heterogeneousConfig(t)
	cfg.Specs[0].Scrub = nil
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted spec with nil scrub and no scalar fallback")
	}
	// All channels disabled across every spec must be rejected.
	all := heterogeneousConfig(t)
	for i := range all.Specs {
		all.Specs[i].VisibleMean = math.Inf(1)
		all.Specs[i].LatentMean = math.Inf(1)
	}
	if err := all.Validate(); err == nil {
		t.Error("Validate accepted a fleet with no fault channel anywhere")
	}
}

// TestEstimateRejectsBadLevel covers the Options.Level domain check:
// withDefaults fixes only the zero value, so out-of-range levels must be
// rejected instead of flowing into interval math.
func TestEstimateRejectsBadLevel(t *testing.T) {
	r, err := NewRunner(goldenConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []float64{-0.5, 1, 1.5, math.NaN()} {
		if _, err := r.Estimate(Options{Trials: 2, Seed: 1, Horizon: 10, Level: level}); err == nil {
			t.Errorf("Estimate accepted Level = %v", level)
		}
	}
	if _, err := r.Estimate(Options{Trials: 50, Seed: 1, Horizon: 10000, Level: 0.9}); err != nil {
		t.Errorf("Estimate rejected valid Level 0.9: %v", err)
	}
}
