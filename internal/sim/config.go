// Package sim is the event-driven Monte Carlo simulator of replicated
// long-term storage: the validation substrate for the paper's analytic
// model and the tool for exploring where its approximations break.
//
// A trial simulates r replicas of one unit of data. Each replica suffers
// visible faults (noticed immediately, repaired from a surviving copy)
// and latent faults (silent until an audit, an access, or a subsequent
// visible fault surfaces them). Correlation accelerates fault arrivals on
// healthy replicas while any fault is outstanding (the paper's α), and
// common-cause shocks fault several replicas at once (the Talagala
// shared-component channel). The trial ends when every replica is
// simultaneously faulty — the generalization of the paper's double-fault
// data-loss event — or when the horizon is reached (censored).
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// ErrInvalidConfig reports a simulator configuration outside its domain.
var ErrInvalidConfig = errors.New("sim: invalid config")

// Config describes one replicated-storage system.
type Config struct {
	// Replicas is the number of copies r (>= 1). For an erasure-coded
	// object it is the number of fragments n.
	Replicas int
	// MinIntact is the number of intact replicas required to recover the
	// data: 1 for plain replication (any surviving copy suffices, the
	// paper's model), m for an m-of-n erasure code (§7, the
	// Weatherspoon/OceanStore design point). 0 defaults to 1.
	MinIntact int
	// VisibleMean is the per-replica mean time to a visible fault (the
	// model's MV), in hours. +Inf disables the channel.
	VisibleMean float64
	// LatentMean is the per-replica mean time to a latent fault (ML), in
	// hours. +Inf disables the channel.
	LatentMean float64
	// Scrub schedules proactive audits of each replica; audits detect
	// outstanding latent faults. scrub.None{} for a system that never
	// audits.
	Scrub scrub.Strategy
	// ScrubPerReplica, if non-nil, overrides Scrub with one strategy per
	// replica — e.g. staggered periodic schedules so replicas are not
	// audited in lockstep. Must have exactly Replicas entries.
	ScrubPerReplica []scrub.Strategy
	// AccessDetect, if non-nil, is the §4.1 user-access detection
	// channel: an additional, usually very slow, detector for latent
	// faults (typically scrub.OnAccess).
	AccessDetect scrub.Strategy
	// Repair is the recovery policy for detected faults.
	Repair repair.Policy
	// Correlation is the inter-replica fault acceleration model (the
	// paper's α). faults.Independent{} for independent replicas.
	Correlation faults.Correlation
	// Shocks are common-cause fault sources hitting several replicas at
	// once (shared power, admin domains, disasters).
	Shocks []faults.Shock
	// AuditLatentFaultProb is the §6.6 audit side effect: the
	// probability that one audit pass plants a new latent fault on the
	// audited replica (media wear, handling).
	AuditLatentFaultProb float64
	// AuditVisibleFaultProb is the probability that one audit pass
	// destroys the replica outright (offline-media handling accidents).
	AuditVisibleFaultProb float64
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	if c.Replicas < 1 {
		return fmt.Errorf("%w: replicas %d must be >= 1", ErrInvalidConfig, c.Replicas)
	}
	if c.MinIntact < 0 || c.MinIntact > c.Replicas {
		return fmt.Errorf("%w: min intact %d must be in [0, %d]", ErrInvalidConfig, c.MinIntact, c.Replicas)
	}
	for name, v := range map[string]float64{
		"visible mean": c.VisibleMean,
		"latent mean":  c.LatentMean,
	} {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("%w: %s %v must be positive (use +Inf to disable)", ErrInvalidConfig, name, v)
		}
	}
	if math.IsInf(c.VisibleMean, 1) && math.IsInf(c.LatentMean, 1) && len(c.Shocks) == 0 {
		return fmt.Errorf("%w: no fault channel configured", ErrInvalidConfig)
	}
	if c.Scrub == nil {
		return fmt.Errorf("%w: nil scrub strategy (use scrub.None{})", ErrInvalidConfig)
	}
	if c.ScrubPerReplica != nil && len(c.ScrubPerReplica) != c.Replicas {
		return fmt.Errorf("%w: %d per-replica scrub strategies for %d replicas", ErrInvalidConfig, len(c.ScrubPerReplica), c.Replicas)
	}
	for i, s := range c.ScrubPerReplica {
		if s == nil {
			return fmt.Errorf("%w: nil per-replica scrub strategy at index %d", ErrInvalidConfig, i)
		}
	}
	if err := c.Repair.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
	}
	if c.Correlation == nil {
		return fmt.Errorf("%w: nil correlation model (use faults.Independent{})", ErrInvalidConfig)
	}
	for _, s := range c.Shocks {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		for _, target := range s.Targets {
			if target >= c.Replicas {
				return fmt.Errorf("%w: shock %q targets replica %d of %d", ErrInvalidConfig, s.Name, target, c.Replicas)
			}
		}
	}
	for name, p := range map[string]float64{
		"audit latent fault probability":  c.AuditLatentFaultProb,
		"audit visible fault probability": c.AuditVisibleFaultProb,
	} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("%w: %s %v must be in [0,1]", ErrInvalidConfig, name, p)
		}
	}
	return nil
}

// ModelParams maps the configuration onto the analytic model's
// parameters for closed-form comparison. Shock channels fold into the
// per-replica fault rates (each replica sees its marginal shock rate);
// detection channels combine as competing processes.
func (c Config) ModelParams() model.Params {
	combine := func(mean, extraRate float64) float64 {
		rate := extraRate
		if !math.IsInf(mean, 1) {
			rate += 1 / mean
		}
		if rate == 0 {
			return math.Inf(1)
		}
		return 1 / rate
	}
	// Shock marginal rates by fault class; replicas can differ, use
	// replica 0 — topology comparisons keep marginals equal by design.
	var visShockRate, latShockRate float64
	for _, s := range c.Shocks {
		for _, t := range s.Targets {
			if t != 0 {
				continue
			}
			switch s.Kind {
			case faults.Visible:
				visShockRate += s.PerReplicaRate()
			case faults.Latent:
				latShockRate += s.PerReplicaRate()
			}
			break
		}
	}
	detect := c.Scrub.MeanDetectionLag()
	if c.AccessDetect != nil {
		parts := scrub.Combined{Parts: []scrub.Strategy{c.Scrub, c.AccessDetect}}
		detect = parts.MeanDetectionLag()
	}
	return model.Params{
		MV:    combine(c.VisibleMean, visShockRate),
		ML:    combine(c.LatentMean, latShockRate),
		MRV:   c.Repair.MeanVisible(),
		MRL:   c.Repair.MeanLatent(),
		MDL:   detect,
		Alpha: c.Correlation.Alpha(),
	}
}

// PaperConfig returns the simulator configuration matching the paper's
// §5.4 worked scenario: mirrored replicas with the Cheetah parameters,
// the given audits per year (0 = never), and correlation factor alpha.
func PaperConfig(scrubsPerYear, alpha float64) (Config, error) {
	rep, err := repair.Automated(model.PaperMRV, model.PaperMRL, 0)
	if err != nil {
		return Config{}, err
	}
	var strat scrub.Strategy = scrub.None{}
	if scrubsPerYear > 0 {
		p, err := scrub.NewPeriodic(scrubsPerYear, 0)
		if err != nil {
			return Config{}, err
		}
		strat = p
	}
	var corr faults.Correlation = faults.Independent{}
	if alpha < 1 {
		a, err := faults.NewAlphaCorrelation(alpha)
		if err != nil {
			return Config{}, err
		}
		corr = a
	}
	return Config{
		Replicas:    2,
		VisibleMean: model.PaperMV,
		LatentMean:  model.PaperML,
		Scrub:       strat,
		Repair:      rep,
		Correlation: corr,
	}, nil
}
