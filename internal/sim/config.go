// Package sim is the event-driven Monte Carlo simulator of replicated
// long-term storage: the validation substrate for the paper's analytic
// model and the tool for exploring where its approximations break.
//
// A trial simulates r replicas of one unit of data. Each replica suffers
// visible faults (noticed immediately, repaired from a surviving copy)
// and latent faults (silent until an audit, an access, or a subsequent
// visible fault surfaces them). Correlation accelerates fault arrivals on
// healthy replicas while any fault is outstanding (the paper's α), and
// common-cause shocks fault several replicas at once (the Talagala
// shared-component channel). The trial ends when every replica is
// simultaneously faulty — the generalization of the paper's double-fault
// data-loss event — or when the horizon is reached (censored).
//
// # Heterogeneous fleets and the Config → ReplicaSpec migration
//
// The §6.1–§6.2 arguments rest on mixing dissimilar media: consumer next
// to enterprise drives, online disk next to offline tape. Config supports
// this through Specs, a slice of per-replica ReplicaSpec values giving
// each copy its own fault means, audit schedule, access-detection
// channel, repair policy, and site/tier label.
//
// The scalar Config fields (VisibleMean, LatentMean, Scrub, AccessDetect,
// Repair) remain as the uniform shorthand: a Config with only scalars set
// behaves exactly as before — Validate expands it into identical specs,
// and the same seed reproduces byte-identical estimates. Within a spec, a
// zero/nil field inherits the corresponding scalar, so partial overrides
// compose with fleet-wide defaults.
//
// ScrubPerReplica is deprecated: it predates Specs and survives only as a
// shorthand that the expansion folds into the per-replica Scrub fields.
// New code should set Specs[i].Scrub instead.
//
// # Time-varying fault processes and trace replay
//
// Fault arrivals default to time-homogeneous Poisson, but a
// ReplicaSpec.Hazard (or the uniform Config.Hazard) attaches a hazard
// profile — constant, piecewise/bathtub (internal/aging.Bathtub),
// Weibull wear-out — that multiplies the channel's base rate over trial
// time, sampled by thinning against the profile's rate envelope
// (faults.Hazard). Profiled runs keep every determinism guarantee below;
// configs without profiles remain byte-identical to historical output,
// both in results and in canonical keys. Recorded fault/repair/access
// event streams (internal/trace) replay through the same trial engine
// via NewReplayRunner. The full probabilistic contract — process
// semantics, the thinning envelope rules, bit-identity, and the
// canonical-key folding — is specified in docs/MODEL.md.
//
// # Streaming estimation, adaptive precision, and the determinism contract
//
// Estimation is a streaming reduce, not a collect-then-aggregate pass:
// each worker owns one reusable trial (the event graph is re-seeded and
// re-armed in place, never rebuilt) and folds every TrialResult into a
// per-batch mergeable accumulator; the reducer merges accumulators at
// fixed batch boundaries (Options.BatchSize trials each) in batch-index
// order. Peak memory is O(batch + losses), not O(trials): censored
// trials collapse to counters, so horizon-censored rare-loss runs no
// longer scale with the budget, while run-to-loss runs still retain one
// loss time per trial for the Kaplan–Meier fit. Runner.EstimateStream
// exposes the run as it executes through Progress snapshots.
//
// The determinism contract has two halves:
//
//   - Fixed-trial runs (TargetRelWidth unset) are bit-identical to the
//     historical sequential aggregation for the same (config, seed,
//     trials) — regardless of Parallel and BatchSize. Integer aggregates
//     merge exactly, the Kaplan–Meier fit depends only on the
//     observation multiset, and the order-sensitive reductions (the
//     Welford pass over loss times and, in biased runs, the weighted
//     estimators) replay each batch's observations in trial order during
//     the merge. golden_test.go pins this to the bit; bias_test.go pins
//     the weighted counterpart.
//
//   - Adaptive runs (TargetRelWidth > 0) stop at the first batch
//     boundary where the stopping interval's relative half-width meets
//     the target (the LossProb Wilson interval under a Horizon, else the
//     MTTDL t-interval), bounded by [Trials, MaxTrials]. Decisions are
//     evaluated only over in-order merged batches, so the realized trial
//     count — and therefore the result — is a pure function of (config,
//     seed, target, MaxTrials, BatchSize), never of Parallel or timing.
//
// Importance-sampled runs (Options.Bias non-zero: an explicit factor or
// AutoBias) keep both halves of the contract. Each trial's likelihood-
// ratio weight is computed inside the trial from the same event stream —
// biasing reshapes hazard draws, never the number or order of random
// draws consumed per event — and the weighted (Horvitz–Thompson)
// estimators are replay-merged in batch order exactly like the Welford
// pass, so a biased run is bit-identical at any Parallel/BatchSize and
// its adaptive variant stops deterministically on the weighted CI.
// Unbiased runs never touch the weighted path: their results and
// canonical keys are byte-identical to pre-bias builds.
//
// Canonical/Fingerprint encode the stopping rule into adaptive cache
// keys and the resolved bias factor into biased keys (AutoBias folds to
// the factor it resolves to, so auto and equivalent-explicit requests
// share a cache entry), while fixed-trial unbiased keys keep their
// historical form.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// ErrInvalidConfig reports a simulator configuration outside its domain.
var ErrInvalidConfig = errors.New("sim: invalid config")

// ReplicaSpec describes one replica of a (possibly heterogeneous) fleet:
// its fault behaviour, detection channels, repair policy, and a label
// naming the site or storage tier it models. Zero/nil fields inherit the
// corresponding Config scalar, so a spec can override just the dimensions
// on which a replica differs from the fleet default.
type ReplicaSpec struct {
	// Label names the site or storage tier ("consumer-disk",
	// "tape-shelf", "site-B"). Informational: reports and traces use it;
	// the dynamics do not.
	Label string
	// VisibleMean is this replica's mean time to a visible fault in
	// hours (+Inf disables the channel; 0 inherits Config.VisibleMean).
	VisibleMean float64
	// LatentMean is this replica's mean time to a latent fault in hours
	// (+Inf disables the channel; 0 inherits Config.LatentMean).
	LatentMean float64
	// Scrub schedules this replica's proactive audits (nil inherits
	// Config.Scrub).
	Scrub scrub.Strategy
	// AccessDetect is this replica's §4.1 user-access detection channel
	// (nil inherits Config.AccessDetect, which may itself be nil = none).
	AccessDetect scrub.Strategy
	// Repair is this replica's recovery policy. The zero Policy (no
	// samplers set) inherits Config.Repair.
	Repair repair.Policy
	// Hazard, when non-nil, makes both of this replica's fault channels
	// time-varying: the instantaneous hazard at trial time t is the
	// channel's base rate (1/mean) times Hazard.Multiplier(t), sampled
	// by thinning (see faults.Hazard and docs/MODEL.md). nil inherits
	// Config.Hazard, which may itself be nil — the time-homogeneous
	// default, byte-identical to historical behaviour. Incompatible
	// with Options.Bias (the likelihood-ratio bookkeeping assumes
	// constant armed rates); EstimateStream rejects the combination.
	Hazard faults.Hazard
}

// inheritsRepair reports whether the spec's Repair field is the zero
// Policy placeholder that inherits the Config scalar.
func (s ReplicaSpec) inheritsRepair() bool {
	return s.Repair.Visible == nil && s.Repair.Latent == nil
}

// validate checks a fully-resolved spec (after scalar inheritance).
func (s ReplicaSpec) validate(i int) error {
	for name, v := range map[string]float64{
		"visible mean": s.VisibleMean,
		"latent mean":  s.LatentMean,
	} {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("%w: replica %d %s %v must be positive (use +Inf to disable)", ErrInvalidConfig, i, name, v)
		}
	}
	if s.Scrub == nil {
		return fmt.Errorf("%w: replica %d has no scrub strategy (use scrub.None{})", ErrInvalidConfig, i)
	}
	if err := s.Repair.Validate(); err != nil {
		return fmt.Errorf("%w: replica %d: %v", ErrInvalidConfig, i, err)
	}
	if s.Hazard != nil {
		if err := s.Hazard.Validate(); err != nil {
			return fmt.Errorf("%w: replica %d hazard profile: %v", ErrInvalidConfig, i, err)
		}
	}
	return nil
}

// Config describes one replicated-storage system.
type Config struct {
	// Replicas is the number of copies r (>= 1). For an erasure-coded
	// object it is the number of fragments n. May be left 0 when Specs
	// is non-empty, in which case len(Specs) is the replica count.
	Replicas int
	// MinIntact is the number of intact replicas required to recover the
	// data: 1 for plain replication (any surviving copy suffices, the
	// paper's model), m for an m-of-n erasure code (§7, the
	// Weatherspoon/OceanStore design point). 0 defaults to 1.
	MinIntact int
	// Specs, if non-empty, gives each replica its own fault means, audit
	// schedule, detection channel, repair policy, and tier label — the
	// §6.1–§6.2 heterogeneous-fleet configuration. Must have exactly
	// Replicas entries (or leave Replicas 0 to derive the count). Zero
	// and nil spec fields inherit the scalar shorthand below. When Specs
	// is empty, the scalars describe every replica uniformly.
	Specs []ReplicaSpec
	// VisibleMean is the per-replica mean time to a visible fault (the
	// model's MV), in hours. +Inf disables the channel.
	VisibleMean float64
	// LatentMean is the per-replica mean time to a latent fault (ML), in
	// hours. +Inf disables the channel.
	LatentMean float64
	// Scrub schedules proactive audits of each replica; audits detect
	// outstanding latent faults. scrub.None{} for a system that never
	// audits.
	Scrub scrub.Strategy
	// ScrubPerReplica, if non-nil, overrides Scrub with one strategy per
	// replica — e.g. staggered periodic schedules so replicas are not
	// audited in lockstep. Must have exactly Replicas entries.
	//
	// Deprecated: set Specs[i].Scrub instead; the expansion folds this
	// field into the spec path. Setting both is an error.
	ScrubPerReplica []scrub.Strategy
	// AccessDetect, if non-nil, is the §4.1 user-access detection
	// channel: an additional, usually very slow, detector for latent
	// faults (typically scrub.OnAccess).
	AccessDetect scrub.Strategy
	// Repair is the recovery policy for detected faults.
	Repair repair.Policy
	// Hazard, when non-nil, applies one hazard profile uniformly: every
	// replica whose spec leaves Hazard nil inherits it, making the whole
	// fleet's fault arrivals time-varying (same-batch aging, the §6.5
	// bathtub). nil keeps the time-homogeneous default.
	Hazard faults.Hazard
	// Correlation is the inter-replica fault acceleration model (the
	// paper's α). faults.Independent{} for independent replicas.
	Correlation faults.Correlation
	// Shocks are common-cause fault sources hitting several replicas at
	// once (shared power, admin domains, disasters).
	Shocks []faults.Shock
	// AuditLatentFaultProb is the §6.6 audit side effect: the
	// probability that one audit pass plants a new latent fault on the
	// audited replica (media wear, handling).
	AuditLatentFaultProb float64
	// AuditVisibleFaultProb is the probability that one audit pass
	// destroys the replica outright (offline-media handling accidents).
	AuditVisibleFaultProb float64
}

// HasHazard reports whether any resolved replica carries a hazard
// profile, i.e. whether the configuration's fault arrivals are
// time-varying. Biased estimation rejects such configs (the
// likelihood-ratio bookkeeping assumes constant armed rates) and
// ModelParams callers should know the closed forms see only the base
// rates.
func (c Config) HasHazard() bool {
	if c.Hazard != nil {
		return true
	}
	for _, s := range c.Specs {
		if s.Hazard != nil {
			return true
		}
	}
	return false
}

// NumReplicas returns the effective replica count: len(Specs) when specs
// are given, else the Replicas scalar.
func (c Config) NumReplicas() int {
	if len(c.Specs) > 0 {
		return len(c.Specs)
	}
	return c.Replicas
}

// resolveSpec returns replica i's fully-resolved spec: the explicit
// Specs[i] entry (when present) with zero/nil fields filled from the
// uniform scalar shorthand and the deprecated ScrubPerReplica slice.
func (c Config) resolveSpec(i int) ReplicaSpec {
	var s ReplicaSpec
	if i < len(c.Specs) {
		s = c.Specs[i]
	}
	if s.VisibleMean == 0 {
		s.VisibleMean = c.VisibleMean
	}
	if s.LatentMean == 0 {
		s.LatentMean = c.LatentMean
	}
	if s.Scrub == nil {
		s.Scrub = c.Scrub
		if len(c.Specs) == 0 && i < len(c.ScrubPerReplica) {
			s.Scrub = c.ScrubPerReplica[i]
		}
	}
	if s.AccessDetect == nil {
		s.AccessDetect = c.AccessDetect
	}
	if s.inheritsRepair() {
		s.Repair = c.Repair
	}
	if s.Hazard == nil {
		s.Hazard = c.Hazard
	}
	return s
}

// ReplicaSpecs expands the configuration into one fully-resolved spec
// per replica. For a uniform Config every entry is identical; for a
// heterogeneous one each entry reflects its Specs override. The trial
// engine consumes this expansion, so uniform shorthand and explicit
// identical specs are byte-for-byte equivalent under the same seed.
func (c Config) ReplicaSpecs() []ReplicaSpec {
	out := make([]ReplicaSpec, c.NumReplicas())
	for i := range out {
		out[i] = c.resolveSpec(i)
	}
	return out
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	n := c.NumReplicas()
	if n < 1 {
		return fmt.Errorf("%w: replicas %d must be >= 1", ErrInvalidConfig, n)
	}
	if len(c.Specs) > 0 {
		if c.Replicas != 0 && c.Replicas != len(c.Specs) {
			return fmt.Errorf("%w: %d specs for %d replicas", ErrInvalidConfig, len(c.Specs), c.Replicas)
		}
		if c.ScrubPerReplica != nil {
			return fmt.Errorf("%w: Specs and deprecated ScrubPerReplica are mutually exclusive", ErrInvalidConfig)
		}
	}
	if c.MinIntact < 0 || c.MinIntact > n {
		return fmt.Errorf("%w: min intact %d must be in [0, %d]", ErrInvalidConfig, c.MinIntact, n)
	}
	if c.ScrubPerReplica != nil && len(c.ScrubPerReplica) != n {
		return fmt.Errorf("%w: %d per-replica scrub strategies for %d replicas", ErrInvalidConfig, len(c.ScrubPerReplica), n)
	}
	for i, s := range c.ScrubPerReplica {
		if s == nil {
			return fmt.Errorf("%w: nil per-replica scrub strategy at index %d", ErrInvalidConfig, i)
		}
	}
	anyChannel := len(c.Shocks) > 0
	for i := 0; i < n; i++ {
		s := c.resolveSpec(i)
		if err := s.validate(i); err != nil {
			return err
		}
		if !math.IsInf(s.VisibleMean, 1) || !math.IsInf(s.LatentMean, 1) {
			anyChannel = true
		}
	}
	if !anyChannel {
		return fmt.Errorf("%w: no fault channel configured", ErrInvalidConfig)
	}
	if c.Correlation == nil {
		return fmt.Errorf("%w: nil correlation model (use faults.Independent{})", ErrInvalidConfig)
	}
	for _, s := range c.Shocks {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidConfig, err)
		}
		for _, target := range s.Targets {
			if target >= n {
				return fmt.Errorf("%w: shock %q targets replica %d of %d", ErrInvalidConfig, s.Name, target, n)
			}
		}
	}
	for name, p := range map[string]float64{
		"audit latent fault probability":  c.AuditLatentFaultProb,
		"audit visible fault probability": c.AuditVisibleFaultProb,
	} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("%w: %s %v must be in [0,1]", ErrInvalidConfig, name, p)
		}
	}
	return nil
}

// ModelParams maps the configuration onto the analytic model's
// parameters for closed-form comparison. Shock channels fold into the
// per-replica fault rates (each replica sees its marginal shock rate);
// detection channels combine as competing processes. Heterogeneous
// fleets use replica 0's spec — topology comparisons keep marginals
// equal by design, and the closed forms assume a uniform fleet anyway.
func (c Config) ModelParams() model.Params {
	spec := c.resolveSpec(0)
	combine := func(mean, extraRate float64) float64 {
		rate := extraRate
		if !math.IsInf(mean, 1) {
			rate += 1 / mean
		}
		if rate == 0 {
			return math.Inf(1)
		}
		return 1 / rate
	}
	// Shock marginal rates by fault class; replicas can differ, use
	// replica 0 — topology comparisons keep marginals equal by design.
	var visShockRate, latShockRate float64
	for _, s := range c.Shocks {
		for _, t := range s.Targets {
			if t != 0 {
				continue
			}
			switch s.Kind {
			case faults.Visible:
				visShockRate += s.PerReplicaRate()
			case faults.Latent:
				latShockRate += s.PerReplicaRate()
			}
			break
		}
	}
	detect := spec.Scrub.MeanDetectionLag()
	if spec.AccessDetect != nil {
		parts := scrub.Combined{Parts: []scrub.Strategy{spec.Scrub, spec.AccessDetect}}
		detect = parts.MeanDetectionLag()
	}
	return model.Params{
		MV:    combine(spec.VisibleMean, visShockRate),
		ML:    combine(spec.LatentMean, latShockRate),
		MRV:   spec.Repair.MeanVisible(),
		MRL:   spec.Repair.MeanLatent(),
		MDL:   detect,
		Alpha: c.Correlation.Alpha(),
	}
}

// PaperConfig returns the simulator configuration matching the paper's
// §5.4 worked scenario: mirrored replicas with the Cheetah parameters,
// the given audits per year (0 = never), and correlation factor alpha.
func PaperConfig(scrubsPerYear, alpha float64) (Config, error) {
	rep, err := repair.Automated(model.PaperMRV, model.PaperMRL, 0)
	if err != nil {
		return Config{}, err
	}
	var strat scrub.Strategy = scrub.None{}
	if scrubsPerYear > 0 {
		p, err := scrub.NewPeriodic(scrubsPerYear, 0)
		if err != nil {
			return Config{}, err
		}
		strat = p
	}
	var corr faults.Correlation = faults.Independent{}
	if alpha < 1 {
		a, err := faults.NewAlphaCorrelation(alpha)
		if err != nil {
			return Config{}, err
		}
		corr = a
	}
	return Config{
		Replicas:    2,
		VisibleMean: model.PaperMV,
		LatentMean:  model.PaperML,
		Scrub:       strat,
		Repair:      rep,
		Correlation: corr,
	}, nil
}
