package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/scrub"
)

// rareMirror is the moderately-rare reference regime for biasing tests:
// mirrored replicas with repair a thousand times faster than the fault
// scale, so a window of vulnerability almost always closes before the
// second fault (loss prob ~2–4% over the test horizons). Rare enough
// that biasing helps, common enough that naive Monte Carlo can still
// cross-check it.
func rareMirror(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

// TestBiasWeightMeanOne pins the likelihood-ratio identity E_Q[W] = 1:
// the average weight over biased trials must concentrate around 1. This
// is the sharpest single check that every biased draw's density ratio
// and every exposure window is accounted for — any missing −lnβ term or
// unclosed faulty interval shifts the mean away from 1.
func TestBiasWeightMeanOne(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		n       = 20000
		beta    = 20.0
		horizon = 20000.0
	)
	base := rng.New(77)
	var src rng.Source
	tr := allocTrial(&r.cfg, r.specs, nil)
	tr.setBiasFactor(beta)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		base.DeriveInto(uint64(i)+trialStreamLabel, &src)
		tr.start(&src)
		res := tr.run(horizon)
		if res.Weight <= 0 || math.IsNaN(res.Weight) || math.IsInf(res.Weight, 0) {
			t.Fatalf("trial %d: weight %v out of domain", i, res.Weight)
		}
		sum += res.Weight
		sum2 += res.Weight * res.Weight
	}
	mean := sum / n
	se := math.Sqrt((sum2/n - mean*mean) / n)
	if d := math.Abs(mean - 1); d > 5*se {
		t.Fatalf("mean weight %v is %v from 1, > 5 standard errors (%v)", mean, d, se)
	}
}

// TestUnbiasedTrialsWeightExactlyOne: with biasing off every trial's
// weight is the exact constant 1 — the unbiased path never touches the
// log-weight accumulator.
func TestUnbiasedTrialsWeightExactlyOne(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		res := r.RunTrial(3, i, 20000)
		if res.Weight != 1 {
			t.Fatalf("trial %d: unbiased weight %v, want exactly 1", i, res.Weight)
		}
	}
}

// TestBiasedAgreesWithNaive is the unbiasedness regression: on an
// overlapping (moderately-rare) regime, the biased Horvitz–Thompson
// estimate and the naive Wilson estimate must agree within their
// combined confidence intervals — while the biased run observes far
// more raw losses per trial.
func TestBiasedAgreesWithNaive(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := r.Estimate(Options{Trials: 20000, Seed: 11, Horizon: 10000})
	if err != nil {
		t.Fatal(err)
	}
	biased, err := r.Estimate(Options{Trials: 4000, Seed: 12, Horizon: 10000, Bias: AutoBias})
	if err != nil {
		t.Fatal(err)
	}
	if naive.Bias != 0 || naive.EffectiveSamples != 0 {
		t.Fatalf("naive run reports bias %v / ESS %v, want zeros", naive.Bias, naive.EffectiveSamples)
	}
	if biased.Bias < 1 {
		t.Fatalf("biased run resolved β %v, want >= 1", biased.Bias)
	}
	if biased.EffectiveSamples <= 0 {
		t.Fatalf("biased run ESS %v, want > 0", biased.EffectiveSamples)
	}
	pn, pb := naive.LossProb, biased.LossProb
	if pb.Point <= 0 {
		t.Fatalf("biased loss prob %v, want > 0", pb.Point)
	}
	if diff, comb := math.Abs(pb.Point-pn.Point), pn.HalfWidth()+pb.HalfWidth(); diff > comb {
		t.Fatalf("biased %v vs naive %v differ by %v, beyond combined CI half-widths %v",
			pb.Point, pn.Point, diff, comb)
	}
}

// TestBiasedGoldenIdentity mirrors golden_test.go for the weighted
// path: a biased run's estimate — including the weighted LossProb
// interval, the weighted restricted-mean MTTDL, and the effective
// sample size — must be bit-identical across worker counts and batch
// sizes to a serial reference, because batch accumulators only buffer
// (weight, time, outcome) triples and the reducer replays them in trial
// order.
func TestBiasedGoldenIdentity(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Trials: 2000, Seed: 9, Horizon: 20000, Bias: 200}
	ref, err := r.Estimate(func() Options { o := base; o.Parallel = 1; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Bias != 200 {
		t.Fatalf("resolved bias %v, want 200", ref.Bias)
	}
	variants := []struct {
		name     string
		parallel int
		batch    int
	}{
		{"parallel8", 8, 0},
		{"batch1-parallel4", 4, 1},
		{"batch7", 3, 7},
		{"one-big-batch", 8, 1 << 20},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			o := base
			o.Parallel, o.BatchSize = v.parallel, v.batch
			est, err := r.Estimate(o)
			if err != nil {
				t.Fatal(err)
			}
			for name, pair := range map[string][2]float64{
				"LossProb.Point":   {est.LossProb.Point, ref.LossProb.Point},
				"LossProb.Lo":      {est.LossProb.Lo, ref.LossProb.Lo},
				"LossProb.Hi":      {est.LossProb.Hi, ref.LossProb.Hi},
				"MTTDL.Point":      {est.MTTDL.Point, ref.MTTDL.Point},
				"MTTDL.Lo":         {est.MTTDL.Lo, ref.MTTDL.Lo},
				"MTTDL.Hi":         {est.MTTDL.Hi, ref.MTTDL.Hi},
				"EffectiveSamples": {est.EffectiveSamples, ref.EffectiveSamples},
				"LossProbCV.Point": {est.LossProbCV.Point, ref.LossProbCV.Point},
				"LossProbCV.Lo":    {est.LossProbCV.Lo, ref.LossProbCV.Lo},
				"LossProbCV.Hi":    {est.LossProbCV.Hi, ref.LossProbCV.Hi},
			} {
				if got, want := math.Float64bits(pair[0]), math.Float64bits(pair[1]); got != want {
					t.Errorf("%s bits %#x, want %#x", name, got, want)
				}
			}
			if est.Trials != ref.Trials || est.Censored != ref.Censored {
				t.Errorf("trials/censored %d/%d, want %d/%d", est.Trials, est.Censored, ref.Trials, ref.Censored)
			}
		})
	}
}

// TestBiasedAdaptiveDeterministic: an adaptive biased run stops on the
// weighted CI at a batch boundary, so its realized trial count and
// estimate are independent of worker count.
func TestBiasedAdaptiveDeterministic(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Seed: 21, Horizon: 20000, Bias: AutoBias,
		TargetRelWidth: 0.2, MaxTrials: 1 << 14, BatchSize: 256}
	a, err := r.Estimate(func() Options { o := base; o.Parallel = 1; return o }())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Estimate(func() Options { o := base; o.Parallel = 8; return o }())
	if err != nil {
		t.Fatal(err)
	}
	if a.Trials != b.Trials {
		t.Fatalf("realized trials %d vs %d across worker counts", a.Trials, b.Trials)
	}
	if math.Float64bits(a.LossProb.Point) != math.Float64bits(b.LossProb.Point) ||
		math.Float64bits(a.EffectiveSamples) != math.Float64bits(b.EffectiveSamples) {
		t.Fatalf("adaptive biased estimates differ across worker counts: %+v vs %+v", a.LossProb, b.LossProb)
	}
	if a.Trials >= base.MaxTrials {
		t.Fatalf("adaptive biased run never stopped early (trials %d)", a.Trials)
	}
}

// TestCanonicalBiasFolding pins the cache-key contract: unbiased keys
// keep their historical bias-free encoding, biased keys differ from
// them, and AutoBias canonicalizes identically to the explicit factor
// it resolves to.
func TestCanonicalBiasFolding(t *testing.T) {
	cfg := rareMirror(t)
	opt := Options{Trials: 1000, Seed: 5, Horizon: 20000}
	plain, err := Canonical(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "bias") {
		t.Fatalf("unbiased canonical form mentions bias: %s", plain)
	}
	optB := opt
	optB.Bias = 150
	biased, err := Canonical(cfg, optB)
	if err != nil {
		t.Fatal(err)
	}
	if biased == plain {
		t.Fatal("biased and unbiased runs canonicalize identically — cache collision")
	}
	if !strings.Contains(biased, ",bias:150}") {
		t.Fatalf("biased canonical form missing resolved factor: %s", biased)
	}
	optAuto := opt
	optAuto.Bias = AutoBias
	auto, err := Canonical(cfg, optAuto)
	if err != nil {
		t.Fatal(err)
	}
	optExplicit := opt
	optExplicit.Bias = autoBias(&cfg, opt.Horizon)
	explicit, err := Canonical(cfg, optExplicit)
	if err != nil {
		t.Fatal(err)
	}
	if auto != explicit {
		t.Fatalf("AutoBias key %q != resolved-explicit key %q", auto, explicit)
	}
	if auto == plain || auto == biased {
		t.Fatal("auto-biased key collides with another mode")
	}
}

// TestBiasValidation rejects out-of-domain bias options.
func TestBiasValidation(t *testing.T) {
	cfg := rareMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{Trials: 100, Horizon: 20000, Bias: 0.5},
		{Trials: 100, Horizon: 20000, Bias: -2},
		{Trials: 100, Horizon: 20000, Bias: math.NaN()},
		{Trials: 100, Horizon: 20000, Bias: math.Inf(1)},
		{Trials: 100, Bias: 2},        // bias without horizon
		{Trials: 100, Bias: AutoBias}, // auto-bias without horizon
	}
	for _, o := range bad {
		if _, err := r.Estimate(o); err == nil {
			t.Errorf("Estimate accepted invalid bias options %+v", o)
		}
	}
}

// TestAutoBiasResolution: the model-chosen factor is deterministic, at
// least 1, and large for a genuinely rare regime.
func TestAutoBiasResolution(t *testing.T) {
	cfg := rareMirror(t)
	b1, b2 := autoBias(&cfg, 10000), autoBias(&cfg, 10000)
	if b1 != b2 {
		t.Fatalf("autoBias not deterministic: %v vs %v", b1, b2)
	}
	if b1 < 1 || b1 > maxAutoBias {
		t.Fatalf("autoBias %v outside [1, %v]", b1, maxAutoBias)
	}
	if b1 < 5 {
		t.Fatalf("autoBias %v suspiciously small for a rare regime (repair 1000x faster than faults)", b1)
	}
	// A longer horizon contains more windows of vulnerability, so loss
	// is less rare over it and the chosen boost shrinks.
	if bLong := autoBias(&cfg, 1e6); bLong >= b1 {
		t.Fatalf("autoBias at long horizon %v not below short-horizon %v", bLong, b1)
	}
}
