package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// canonPaperGolden is the canonical string of PaperConfig(3, 1) with
// Options{Trials: 1000, Seed: 1}, captured from the build immediately
// before ReplicaSpec gained its Hazard field. Unprofiled configs must
// keep producing exactly this string (and fingerprint) forever: the
// canonical form is the persistent disk-store key, so any drift silently
// orphans every cached result. The writeCanonical additive-field rule —
// nil faults.Hazard fields are omitted — is what this test pins.
const canonPaperGolden = `sim.Config/v1{replicas:2,minIntact:1,specs:[sim.ReplicaSpec{Label:"",VisibleMean:1.4e+06,LatentMean:280000,Scrub:scrub.Periodic{Interval:2920,Offset:0},AccessDetect:nil,Repair:repair.Policy{Visible:rng.Deterministic{Value:0.3333333333333333},Latent:rng.Deterministic{Value:0.3333333333333333},OperatorDelay:nil,BugLatentProb:0}},sim.ReplicaSpec{Label:"",VisibleMean:1.4e+06,LatentMean:280000,Scrub:scrub.Periodic{Interval:2920,Offset:0},AccessDetect:nil,Repair:repair.Policy{Visible:rng.Deterministic{Value:0.3333333333333333},Latent:rng.Deterministic{Value:0.3333333333333333},OperatorDelay:nil,BugLatentProb:0}}],correlation:faults.Independent{},shocks:[],auditLatent:0,auditVisible:0}sim.Options/v1{trials:1000,horizon:0,seed:1,level:0.95}`

const canonPaperGoldenFP = "4b4591651b78b870bffbe159ad65eeedb990fead96c0c2ce7c81faddb64bc520"

func TestCanonicalNilHazardByteIdentical(t *testing.T) {
	cfg, err := PaperConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 1000, Seed: 1}
	s, err := Canonical(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s != canonPaperGolden {
		t.Errorf("nil-hazard canonical string drifted from the pre-hazard encoding:\n got %s\nwant %s", s, canonPaperGolden)
	}
	fp, err := Fingerprint(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fp != canonPaperGoldenFP {
		t.Errorf("nil-hazard fingerprint drifted: got %s, want %s", fp, canonPaperGoldenFP)
	}
}

func TestHazardFingerprintsDistinct(t *testing.T) {
	cfg, err := PaperConfig(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 1000, Seed: 1}
	base, err := Fingerprint(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Even the dynamically-identical unit profile must fingerprint apart
	// from nil: a profiled run consumes randomness differently (thinning
	// draws), so it is a different result.
	unit := cfg
	unit.Hazard = faults.ConstantHazard{Factor: 1}
	fpUnit, err := Fingerprint(unit, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fpUnit == base {
		t.Errorf("ConstantHazard{1} collided with the nil-profile fingerprint")
	}

	weib := cfg
	weib.Hazard = faults.WeibullHazard{Shape: 2, Scale: 50000}
	fpWeib, err := Fingerprint(weib, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fpWeib == base || fpWeib == fpUnit {
		t.Errorf("Weibull profile fingerprint collided (%s base=%s unit=%s)", fpWeib, base, fpUnit)
	}

	// Equal parameterizations collide, whether set on the config scalar
	// or expanded into explicit specs.
	expanded := Config{Specs: weib.ReplicaSpecs(), Correlation: weib.Correlation}
	fpExp, err := Fingerprint(expanded, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fpExp != fpWeib {
		t.Errorf("scalar hazard and expanded-spec hazard fingerprint differently")
	}
}

// hazardMirror is a two-way mirror whose visible channel carries the
// given profile (nil for the plain constant process).
func hazardMirror(t *testing.T, h faults.Hazard) Config {
	t.Helper()
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
		Hazard:      h,
	}
}

func TestHazardEstimateParallelBitIdentity(t *testing.T) {
	bath, err := aging.Bathtub(2000, 3, 12000, 6)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := faults.Normalize(bath, 20000)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 400, Seed: 5, Horizon: 20000}
	var got []Estimate
	for _, par := range []int{1, 8} {
		r, err := NewRunner(hazardMirror(t, norm))
		if err != nil {
			t.Fatal(err)
		}
		o := opt
		o.Parallel = par
		est, err := r.Estimate(o)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, est)
	}
	a, b := got[0], got[1]
	if math.Float64bits(a.LossProb.Point) != math.Float64bits(b.LossProb.Point) ||
		math.Float64bits(a.LossProb.Lo) != math.Float64bits(b.LossProb.Lo) ||
		math.Float64bits(a.MTTDL.Point) != math.Float64bits(b.MTTDL.Point) ||
		math.Float64bits(a.MTTDL.Lo) != math.Float64bits(b.MTTDL.Lo) ||
		a.Censored != b.Censored || a.Stats != b.Stats || a.Matrix != b.Matrix {
		t.Errorf("profiled estimate differs across Parallel 1 vs 8:\n%+v\nvs\n%+v", a, b)
	}
	if a.Censored == 0 || a.Censored == opt.Trials {
		t.Errorf("degenerate profiled run (censored %d of %d): test exercises nothing", a.Censored, opt.Trials)
	}
}

func TestHazardAccelerationShiftsLoss(t *testing.T) {
	opt := Options{Trials: 1000, Seed: 3, Horizon: 20000}
	rBase, err := NewRunner(hazardMirror(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	base, err := rBase.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	rHot, err := NewRunner(hazardMirror(t, faults.ConstantHazard{Factor: 2}))
	if err != nil {
		t.Fatal(err)
	}
	hot, err := rHot.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if hot.LossProb.Point <= base.LossProb.Point {
		t.Errorf("doubled hazard did not raise loss probability: %v vs %v", hot.LossProb.Point, base.LossProb.Point)
	}
}

func TestHazardBiasRejected(t *testing.T) {
	cfg := hazardMirror(t, faults.ConstantHazard{Factor: 2})
	opt := Options{Trials: 100, Seed: 1, Horizon: 20000, Bias: 4}
	if _, err := Canonical(cfg, opt); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Canonical(bias+hazard) err = %v, want ErrInvalidConfig", err)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(opt); err == nil || !strings.Contains(err.Error(), "hazard") {
		t.Errorf("Estimate(bias+hazard) err = %v, want hazard incompatibility", err)
	}
}

func TestHazardInheritanceAndOverride(t *testing.T) {
	cfg := hazardMirror(t, faults.ConstantHazard{Factor: 2})
	specs := cfg.ReplicaSpecs()
	for i, s := range specs {
		if s.Hazard != (faults.ConstantHazard{Factor: 2}) {
			t.Errorf("replica %d did not inherit the config hazard: %v", i, s.Hazard)
		}
	}
	// A per-spec profile overrides the scalar.
	over := cfg
	over.Specs = make([]ReplicaSpec, 2)
	over.Specs[1].Hazard = faults.WeibullHazard{Shape: 2, Scale: 1000}
	specs = over.ReplicaSpecs()
	if specs[0].Hazard != (faults.ConstantHazard{Factor: 2}) {
		t.Errorf("spec 0 lost the inherited hazard: %v", specs[0].Hazard)
	}
	if specs[1].Hazard != (faults.WeibullHazard{Shape: 2, Scale: 1000}) {
		t.Errorf("spec 1 override lost: %v", specs[1].Hazard)
	}
	if !cfg.HasHazard() || !over.HasHazard() {
		t.Errorf("HasHazard false on profiled configs")
	}
	if plain := hazardMirror(t, nil); plain.HasHazard() {
		t.Errorf("HasHazard true on an unprofiled config")
	}
}

func TestHazardConfigValidation(t *testing.T) {
	bad := hazardMirror(t, faults.WeibullHazard{Shape: 0.5, Scale: 1000})
	if err := bad.Validate(); err == nil {
		t.Errorf("Validate accepted a shape<1 Weibull hazard")
	}
}
