package sim

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Trace replay: re-simulating recorded fault streams.
//
// A replay runner (NewReplayRunner) substitutes a trace.Trace's recorded
// per-trial event stream for the sampled fault processes: fault arrivals
// come from the recording, and the generative machinery — fault-process
// sampling, shock arming, §6.6 side-effect planting — is switched off
// (the recorded stream already embodies all of it). Two modes:
//
//   - Pinned (pinRepairs true): recorded repair completions are honored
//     and no repair duration is ever sampled, so the replayed
//     faulty-replica trajectory — and with it every loss outcome, loss
//     time, and double-fault cell — reproduces the recorded world
//     exactly. The loss trajectory depends only on fault and repair
//     events (detection merely moves a replica from latent to repairing,
//     which never changes the faulty count), so pinned replay is exact
//     even though simulated detection times may differ.
//
//   - Policy (pinRepairs false): recorded repair and access events are
//     ignored; detection and repair are re-decided from the replay
//     config's scrub strategies and repair samplers. This answers the
//     counterfactual "what would this fault history have cost under a
//     different policy?".
//
// Either way a replay is a pure function of (config, trace, seed):
// deterministic at any Parallel/BatchSize, by the same per-trial
// stream-derivation and in-order merge argument as generative runs.
// docs/MODEL.md §Trace replay specifies the full semantics.

// replayData is a Runner's parsed replay source: the trace header plus
// its events split per trial.
type replayData struct {
	header     trace.Header
	trials     [][]trace.Event
	pinRepairs bool
}

// replaySchedule is the per-trial replay cursor. The worker loop points
// events at the current trial's slice before each start; step is the
// prebound DES handler, allocated once per trial allocation.
type replaySchedule struct {
	events     []trace.Event
	pinRepairs bool
	idx        int
	step       des.Handler
}

// scheduleReplay arms the recorded event stream: the first event is
// scheduled, and each firing schedules its successor, so the engine
// holds at most one replay event at a time. Called from start after the
// (no-op, in replay mode) generative arming.
func (t *trial) scheduleReplay() {
	rp := t.replay
	rp.idx = 0
	if rp.step == nil {
		rp.step = func(*des.Engine) { t.replayStep() }
	}
	if len(rp.events) > 0 {
		t.eng.Schedule(rp.events[0].T, rp.step)
	}
}

// replayStep dispatches the cursor's current recorded event and
// schedules the next. The successor is scheduled before dispatch so
// same-timestamp sequences (repair completion, then its planted fault)
// preserve recorded order under the engine's FIFO tie-break.
func (t *trial) replayStep() {
	rp := t.replay
	ev := rp.events[rp.idx]
	rp.idx++
	if rp.idx < len(rp.events) {
		t.eng.Schedule(rp.events[rp.idx].T, rp.step)
	}
	if t.lost {
		return
	}
	switch ev.Event {
	case trace.EventFault:
		kind := faults.Visible
		if ev.Fault == trace.FaultLatent {
			kind = faults.Latent
		}
		t.onFault(ev.Replica, kind, ev.Planted)
	case trace.EventAccess:
		// A recorded detection opportunity. Pinned replay honors it (a
		// no-op unless the replica has an outstanding latent fault);
		// policy replay re-decides detection from the config instead.
		if rp.pinRepairs {
			t.onDetected(ev.Replica)
		}
	case trace.EventRepair:
		if !rp.pinRepairs {
			return
		}
		// Pinned completion. The replica may still be latent here — the
		// re-simulated detection channel can run later than the recorded
		// one — so force the latent→repairing→healthy transitions; the
		// faulty-count trajectory comes out identical either way.
		switch t.reps[ev.Replica].state {
		case stateLatent:
			t.onDetected(ev.Replica)
			t.onRepaired(ev.Replica)
		case stateRepairing:
			t.onRepaired(ev.Replica)
		}
	}
}

// NewReplayRunner builds a Runner that re-simulates tr's recorded fault
// streams under cfg instead of sampling its fault processes.
// pinRepairs selects exact reproduction (recorded repairs honored) over
// counterfactual policy replay (repairs re-decided from cfg); see the
// package comment above. The trace must match cfg's fleet size.
func NewReplayRunner(cfg Config, tr *trace.Trace, pinRepairs bool) (*Runner, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	if tr == nil {
		return nil, fmt.Errorf("%w: replay requires a trace", ErrInvalidConfig)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if tr.Header.Replicas != cfg.NumReplicas() {
		return nil, fmt.Errorf("%w: trace records %d replicas but the config has %d",
			ErrInvalidConfig, tr.Header.Replicas, cfg.NumReplicas())
	}
	r.replay = &replayData{header: tr.Header, trials: tr.TrialEvents(), pinRepairs: pinRepairs}
	return r, nil
}

// validateReplay rejects option combinations a replay runner cannot
// honor: the trial count and horizon are the trace's (recorded trial i
// must map to replayed trial i at the recorded censoring point),
// adaptive stopping would re-map that correspondence, and biasing has no
// sampling measure to re-weight — recorded arrivals are data, not draws.
func (r *Runner) validateReplay(opt Options) error {
	if r.replay == nil {
		return nil
	}
	if opt.adaptive() {
		return fmt.Errorf("%w: trace replay requires a fixed trial count (adaptive stopping would re-map recorded trials)", ErrInvalidConfig)
	}
	if opt.Bias != 0 {
		return fmt.Errorf("%w: trace replay is incompatible with failure biasing (recorded arrivals carry no sampling measure to re-weight)", ErrInvalidConfig)
	}
	h := r.replay.header
	if opt.Trials != h.Trials {
		return fmt.Errorf("%w: replay must run exactly the trace's %d trials, got %d (ReplayEstimate inherits them)", ErrInvalidConfig, h.Trials, opt.Trials)
	}
	if opt.Horizon != h.HorizonHours {
		return fmt.Errorf("%w: replay must use the trace's recorded horizon %v h, got %v (ReplayEstimate inherits it)", ErrInvalidConfig, h.HorizonHours, opt.Horizon)
	}
	return nil
}

// ReplayEstimate estimates over the runner's recorded trace, inheriting
// the trial count and censoring horizon from the trace header (any
// values in opt are overwritten; adaptive stopping is switched off).
// Remaining options — Seed, Parallel, Level — keep their meaning; Seed
// only feeds the re-simulated policy randomness, so in pinned mode it
// cannot change outcomes, only event-count bookkeeping.
func (r *Runner) ReplayEstimate(opt Options) (Estimate, error) {
	if r.replay == nil {
		return Estimate{}, fmt.Errorf("%w: ReplayEstimate requires a replay runner (NewReplayRunner)", ErrInvalidConfig)
	}
	opt.Trials = r.replay.header.Trials
	opt.Horizon = r.replay.header.HorizonHours
	opt.TargetRelWidth = 0
	return r.Estimate(opt)
}

// RecordTrace runs opt.Trials generative trials sequentially, recording
// each one's fault/detection/repair events as a replayable trace, and
// returns the trace alongside the run's own Estimate — so a pinned
// replay of the returned trace can be checked against the returned
// estimate. Requires a fixed trial count, a censoring horizon (the
// trace header's), and no biasing.
//
// Tracing a trial disables the lazy-audit fast path (audit passes must
// actually execute to be observable), which consumes the audit stream
// differently than a plain Estimate — a recorded run is its own run,
// reproducible via RecordTrace with the same seed but not bitwise
// comparable to Estimate at that seed.
func (r *Runner) RecordTrace(opt Options) (*trace.Trace, Estimate, error) {
	if r.replay != nil {
		return nil, Estimate{}, fmt.Errorf("%w: cannot record from a replay runner", ErrInvalidConfig)
	}
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, Estimate{}, err
	}
	if opt.adaptive() {
		return nil, Estimate{}, fmt.Errorf("%w: recording requires a fixed trial count", ErrInvalidConfig)
	}
	if opt.Bias != 0 {
		return nil, Estimate{}, fmt.Errorf("%w: recording under failure biasing would bake the tilted sampling measure into the trace", ErrInvalidConfig)
	}
	if opt.Horizon <= 0 {
		return nil, Estimate{}, fmt.Errorf("%w: recording requires a censoring horizon", ErrInvalidConfig)
	}

	out := &trace.Trace{Header: trace.Header{
		V:            trace.Version,
		Kind:         trace.Kind,
		Replicas:     len(r.specs),
		Trials:       opt.Trials,
		HorizonHours: opt.Horizon,
		Source:       fmt.Sprintf("sim.RecordTrace(seed=%d)", opt.Seed),
	}}
	var batch, global accumulator
	base := rng.New(opt.Seed)
	var trialSrc rng.Source
	tr := &Trace{}
	t := allocTrial(&r.cfg, r.specs, tr)
	for i := 0; i < opt.Trials; i++ {
		base.DeriveInto(uint64(i)+trialStreamLabel, &trialSrc)
		tr.Events = tr.Events[:0]
		t.start(&trialSrc)
		batch.addTrial(t.run(opt.Horizon), opt.Horizon)
		for _, ev := range tr.Events {
			switch ev.Kind {
			case eventFault:
				cls := trace.FaultVisible
				if ev.Fault == faults.Latent {
					cls = trace.FaultLatent
				}
				out.Events = append(out.Events, trace.Event{
					Trial: i, T: ev.Time, Replica: ev.Replica,
					Event: trace.EventFault, Fault: cls, Planted: ev.Planted,
				})
			case eventDetected:
				out.Events = append(out.Events, trace.Event{
					Trial: i, T: ev.Time, Replica: ev.Replica, Event: trace.EventAccess,
				})
			case eventRepaired:
				out.Events = append(out.Events, trace.Event{
					Trial: i, T: ev.Time, Replica: ev.Replica, Event: trace.EventRepair,
				})
			}
		}
	}
	// Finalize through the same merge step the streaming reducer uses
	// (merge is what replays loss times into the Welford pass); fixed
	// runs are batch-size invariant, so one big batch is equivalent.
	global.merge(&batch)
	est, err := global.finalize(opt)
	if err != nil {
		return nil, Estimate{}, err
	}
	if err := out.Validate(); err != nil {
		return nil, Estimate{}, fmt.Errorf("sim: internal: recorded trace failed validation: %w", err)
	}
	return out, est, nil
}
