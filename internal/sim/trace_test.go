package sim

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
)

func traceConfig(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 2000,
		LatentMean:  1000,
		Scrub:       scrub.Periodic{Interval: 200},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

func TestTraceChronologicalAndConsistent(t *testing.T) {
	tr, err := TraceTrial(traceConfig(t), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	prev := -1.0
	var losses int
	for _, e := range tr.Events {
		if e.Time < prev {
			t.Fatalf("trace not chronological: %v after %v", e.Time, prev)
		}
		prev = e.Time
		if e.Replica < 0 || e.Replica >= 2 {
			t.Fatalf("bad replica index %d", e.Replica)
		}
		if e.Kind == eventDataLoss {
			losses++
		}
	}
	if !tr.Result.Lost {
		t.Fatal("run-to-loss trial reported no loss")
	}
	if losses != 1 {
		t.Errorf("trace has %d loss events, want 1", losses)
	}
	if last := tr.Events[len(tr.Events)-1]; last.Kind != eventDataLoss {
		t.Errorf("last event = %v, want DATA LOSS", last.Kind)
	}
	if last := tr.Events[len(tr.Events)-1]; last.Time != tr.Result.Time {
		t.Errorf("loss event at %v but result time %v", last.Time, tr.Result.Time)
	}
}

// Every detected latent fault must show the Figure 1 lifecycle: fault
// strictly before detection, detection at or before repair start.
func TestTraceLatentLifecycle(t *testing.T) {
	tr, err := TraceTrial(traceConfig(t), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Track per-replica pending latent fault times.
	faultAt := map[int]float64{}
	for _, e := range tr.Events {
		switch e.Kind {
		case eventFault:
			if e.Fault == faults.Latent {
				faultAt[e.Replica] = e.Time
			}
		case eventDetected:
			start, ok := faultAt[e.Replica]
			if !ok {
				continue // visible-fault path
			}
			if e.Time < start {
				t.Fatalf("replica %d detected at %v before fault at %v", e.Replica, e.Time, start)
			}
			delete(faultAt, e.Replica)
		}
	}
}

// With periodic audits every 200 h, a latent fault is detected within one
// interval (unless a visible fault or loss intervenes first).
func TestTraceDetectionWithinInterval(t *testing.T) {
	tr, err := TraceTrial(traceConfig(t), 3, 200000)
	if err != nil {
		t.Fatal(err)
	}
	faultAt := map[int]float64{}
	for _, e := range tr.Events {
		switch e.Kind {
		case eventFault:
			if e.Fault == faults.Latent {
				faultAt[e.Replica] = e.Time
			} else {
				delete(faultAt, e.Replica) // visible path takes over
			}
		case eventDetected:
			if start, ok := faultAt[e.Replica]; ok {
				if lag := e.Time - start; lag > 200+1e-9 {
					t.Fatalf("detection lag %v exceeds the audit interval", lag)
				}
				delete(faultAt, e.Replica)
			}
		}
	}
}

func TestTraceHorizonCensored(t *testing.T) {
	cfg := traceConfig(t)
	cfg.VisibleMean = 1e12
	cfg.LatentMean = 1e12
	tr, err := TraceTrial(cfg, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Result.Lost {
		t.Fatal("immortal config lost data")
	}
	if tr.Result.Time != 500 {
		t.Errorf("censored time = %v, want 500", tr.Result.Time)
	}
	// Audits at 200 and 400 for each of 2 replicas.
	audits := 0
	for _, e := range tr.Events {
		if e.Kind == eventAudit {
			audits++
		}
	}
	if audits != 4 {
		t.Errorf("audits = %d, want 4 (2 replicas x 2 passes)", audits)
	}
}

func TestTraceRejectsInvalidConfig(t *testing.T) {
	if _, err := TraceTrial(Config{}, 1, 0); err == nil {
		t.Error("TraceTrial accepted invalid config")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{eventFault, eventDetected, eventRepairStart, eventRepaired, eventAudit, eventDataLoss}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has empty/duplicate string %q", k, s)
		}
		seen[s] = true
	}
	if EventKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestModelParamsMapping(t *testing.T) {
	cfg := traceConfig(t)
	p := cfg.ModelParams()
	if p.MV != 2000 || p.ML != 1000 {
		t.Errorf("MV/ML = %v/%v, want 2000/1000", p.MV, p.ML)
	}
	if p.MRV != 5 || p.MRL != 2 {
		t.Errorf("MRV/MRL = %v/%v, want 5/2", p.MRV, p.MRL)
	}
	if p.MDL != 100 {
		t.Errorf("MDL = %v, want 100 (half the 200h audit interval)", p.MDL)
	}
	if p.Alpha != 1 {
		t.Errorf("Alpha = %v, want 1", p.Alpha)
	}
	// Shocks fold into the fault rates.
	cfg.Shocks = []faults.Shock{
		{Name: "s", Mean: 1000, Targets: []int{0, 1}, Kind: faults.Visible, HitProb: 1},
	}
	p = cfg.ModelParams()
	wantMV := 1 / (1.0/2000 + 1.0/1000)
	if math.Abs(p.MV-wantMV) > 1e-9 {
		t.Errorf("MV with shock = %v, want %v", p.MV, wantMV)
	}
	// Access detection combines with scrub.
	acc, err := scrub.NewOnAccess(0.01, 1) // lag 100
	if err != nil {
		t.Fatal(err)
	}
	cfg.AccessDetect = acc
	p = cfg.ModelParams()
	if math.Abs(p.MDL-50) > 1e-9 {
		t.Errorf("MDL with access channel = %v, want 50 (two competing 100h detectors)", p.MDL)
	}
}
