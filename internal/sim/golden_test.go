package sim

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// The golden values below were captured from the pre-streaming
// implementation (the O(Trials) slice-and-barrier aggregation of PR 2)
// and pin the refactor's central contract: the streaming batched reduce
// produces bit-identical estimates for the same seed. The Welford pass
// over loss times replays in trial order during batch merges, the
// Kaplan–Meier fit depends only on the observation multiset, and every
// other aggregate is integer-exact — so these must hold to the last bit,
// at any parallelism and any batch size.

type goldenCase struct {
	name    string
	cfg     func(t *testing.T) Config
	opt     Options
	mttdl   [3]uint64 // Point, Lo, Hi bits
	loss    [3]uint64
	cens    int
	losses  int
	maxTime uint64
	rm      uint64 // RestrictedMean(horizon) bits
	surv    uint64 // Survival(horizon/2) bits
}

func goldenMirror(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

func goldenLatent(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  1000,
		Scrub:       scrub.Periodic{Interval: 100},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name: "mirror-loss", cfg: goldenMirror,
			opt:   Options{Trials: 300, Seed: 42},
			mttdl: [3]uint64{0x40e8484b6a35c103, 0x40e56b8538271afc, 0x40eb25119c44670a},
			loss:  [3]uint64{0, 0, 0},
			cens:  0, losses: 300,
			maxTime: 0x411350163ba3e5ce, rm: 0x0, surv: 0x3ff0000000000000,
		},
		{
			name: "mirror-censored", cfg: goldenMirror,
			opt:   Options{Trials: 500, Seed: 7, Horizon: 20000},
			mttdl: [3]uint64{0x40cff8bd6faf595a, 0x40ce48c9ef7f292c, 0x40d0d45877efc4c4},
			loss:  [3]uint64{0x3fd604189374bc6a, 0x3fd36fb49ec73a0f, 0x3fd8bf75eafb9709},
			cens:  328, losses: 172,
			maxTime: 0x40d3880000000000, rm: 0x40cff8bd6faf595a, surv: 0x3fea1cac083126e8,
		},
		{
			name: "latent-scrubbed", cfg: goldenLatent,
			opt:   Options{Trials: 400, Seed: 2, Horizon: 30000},
			mttdl: [3]uint64{0x40c48ec46db14cb5, 0x40c30641f652aff8, 0x40c61746e50fe972},
			loss:  [3]uint64{0x3fee000000000000, 0x3fed19867b6a30de, 0x3feea24a61b7b04e},
			cens:  25, losses: 375,
			maxTime: 0x40dd4c0000000000, rm: 0x40c48ec46db14cb5, surv: 0x3fd170a3d70a3d80,
		},
	}
}

func checkGolden(t *testing.T, g goldenCase, est Estimate) {
	t.Helper()
	gotM := [3]uint64{math.Float64bits(est.MTTDL.Point), math.Float64bits(est.MTTDL.Lo), math.Float64bits(est.MTTDL.Hi)}
	if gotM != g.mttdl {
		t.Errorf("MTTDL bits %#x, want %#x", gotM, g.mttdl)
	}
	gotL := [3]uint64{math.Float64bits(est.LossProb.Point), math.Float64bits(est.LossProb.Lo), math.Float64bits(est.LossProb.Hi)}
	if gotL != g.loss {
		t.Errorf("LossProb bits %#x, want %#x", gotL, g.loss)
	}
	if est.Censored != g.cens {
		t.Errorf("censored %d, want %d", est.Censored, g.cens)
	}
	if n := est.Trials - est.Censored; n != g.losses {
		t.Errorf("losses %d, want %d", n, g.losses)
	}
	if bits := math.Float64bits(est.Survival.MaxTime()); bits != g.maxTime {
		t.Errorf("survival max time bits %#x, want %#x", bits, g.maxTime)
	}
	if bits := math.Float64bits(est.Survival.RestrictedMean(g.opt.Horizon)); bits != g.rm {
		t.Errorf("restricted mean bits %#x, want %#x", bits, g.rm)
	}
	if bits := math.Float64bits(est.Survival.Survival(g.opt.Horizon / 2)); bits != g.surv {
		t.Errorf("survival bits %#x, want %#x", bits, g.surv)
	}
}

// TestGoldenBitIdentity pins the refactor invariant at several worker
// counts and batch sizes, including pathological ones (batch 1, batch
// larger than the budget).
func TestGoldenBitIdentity(t *testing.T) {
	for _, g := range goldenCases() {
		t.Run(g.name, func(t *testing.T) {
			for _, variant := range []struct {
				label    string
				parallel int
				batch    int
			}{
				{"serial", 1, 0},
				{"parallel8", 8, 0},
				{"batch1-parallel4", 4, 1},
				{"batch7", 3, 7},
				{"one-big-batch", 8, 1 << 20},
			} {
				r, err := NewRunner(g.cfg(t))
				if err != nil {
					t.Fatal(err)
				}
				opt := g.opt
				opt.Parallel = variant.parallel
				opt.BatchSize = variant.batch
				est, err := r.Estimate(opt)
				if err != nil {
					t.Fatal(err)
				}
				t.Run(variant.label, func(t *testing.T) { checkGolden(t, g, est) })
			}
		})
	}
}
