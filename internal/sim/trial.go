package sim

import (
	"math"

	"repro/internal/des"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/scrub"
)

// replicaState is the per-replica lifecycle.
type replicaState int

const (
	stateHealthy replicaState = iota
	// stateLatent: an undetected latent fault is outstanding. The
	// replica still serves (wrong) data; no one knows.
	stateLatent
	// stateRepairing: a fault is known and repair is underway. The
	// replica is unavailable as a recovery source until repair
	// completes.
	stateRepairing
)

// TrialStats counts what happened during one trial.
type TrialStats struct {
	VisibleFaults  int // visible faults incurred (incl. shock-inflicted)
	LatentFaults   int // latent faults incurred (incl. audit/repair-planted)
	Detections     int // latent faults surfaced by audit/access/visible fault
	Repairs        int // completed repairs
	Audits         int // audit passes executed (0 in the lazy fast path)
	ShockEvents    int // common-cause events fired
	AuditInduced   int // faults planted by audit side effects
	RepairBugs     int // latent faults planted by buggy repairs
	WOVOpenedByVis int // windows of vulnerability opened by a visible fault
	WOVOpenedByLat int // windows opened by a latent fault
}

// add accumulates other into s.
func (s *TrialStats) add(o TrialStats) {
	s.VisibleFaults += o.VisibleFaults
	s.LatentFaults += o.LatentFaults
	s.Detections += o.Detections
	s.Repairs += o.Repairs
	s.Audits += o.Audits
	s.ShockEvents += o.ShockEvents
	s.AuditInduced += o.AuditInduced
	s.RepairBugs += o.RepairBugs
	s.WOVOpenedByVis += o.WOVOpenedByVis
	s.WOVOpenedByLat += o.WOVOpenedByLat
}

// TrialResult is the outcome of one trial.
type TrialResult struct {
	// Lost reports whether data loss occurred before the horizon.
	Lost bool
	// Time is the loss time (hours) when Lost, else the censoring
	// horizon.
	Time float64
	// FirstFault and FinalFault are the classes of the fault that opened
	// the fatal window of vulnerability and the fault that closed it —
	// the coordinates of the paper's Figure 2 matrix. Valid only when
	// Lost.
	FirstFault, FinalFault faults.Type
	// Weight is the likelihood-ratio weight dP/dQ of the trial's fault
	// path when the trial ran under failure biasing, 1 otherwise.
	// Horvitz–Thompson estimators multiply each observation by it to
	// undo the biased sampling measure exactly.
	Weight float64
	// Stats counts trial events.
	Stats TrialStats
}

// replica is the per-copy simulation state.
type replica struct {
	state replicaState
	// faultKind is the class of the outstanding fault (valid outside
	// stateHealthy). A latent-faulty replica hit by a visible fault
	// escalates to visible.
	faultKind faults.Type
	// faultAt is when the current outstanding fault occurred.
	faultAt float64

	visible *faults.Process
	latent  *faults.Process

	// visRate and latRate track the true (unbiased) hazard rates of the
	// currently armed fault arrivals, for likelihood-ratio exposure
	// accounting under failure biasing; 0 when the arrival is unarmed.
	// Maintained only while biasing is on.
	visRate float64
	latRate float64

	visibleEv *des.Handle // pending visible fault arrival
	latentEv  *des.Handle // pending latent fault arrival
	detectEv  *des.Handle // pending access-channel detection
	repairEv  *des.Handle // pending repair completion

	src *rng.Source // fault/repair randomness for this replica

	// Prebound event handlers: each arm/re-arm schedules the same
	// callback, so binding the (trial, index) pair once per replica —
	// instead of allocating a fresh closure per scheduled event — keeps
	// the reused per-trial hot path nearly allocation-free.
	fireVisible  des.Handler
	fireLatent   des.Handler
	fireDetect   des.Handler
	fireAudit    des.Handler
	fireRepaired des.Handler
}

// trial is one running simulation.
type trial struct {
	cfg *Config
	// specs is the per-replica expansion of cfg: each replica draws its
	// fault, audit, detection, and repair behaviour from its own entry.
	specs    []ReplicaSpec
	eng      *des.Engine
	reps     []*replica
	auditSrc *rng.Source
	shockSrc *rng.Source

	// lossAt is the faulty-replica count at which the data become
	// irrecoverable: Replicas - MinIntact + 1.
	lossAt int

	// lazyAudit short-circuits audit scheduling: when audits have no
	// side effects and no trace wants to see them, an audit pass only
	// matters if a latent fault is outstanding, so the detection time
	// can be computed directly at fault time instead of simulating
	// every pass. Exact for the strategies shipped here: Periodic is
	// deterministic from absolute time, Poisson/OnAccess are
	// memoryless.
	lazyAudit bool

	faulty int // replicas not healthy

	// Failure biasing (importance sampling). While any replica is
	// faulty, every armed fault arrival is accelerated by bias β and
	// the trial accumulates the log likelihood ratio of the biased path:
	// each biased arrival that fires contributes −ln β, and every armed
	// biased process contributes (β−1)·λ_true per unit time of exposure
	// (the survival-density ratio of the exponential draw). bias <= 1
	// disables all of it and the trial is bit-identical to the
	// historical unbiased path.
	bias      float64 // β; 0 when biasing is off
	logBias   float64 // ln β, precomputed
	logW      float64 // accumulated log likelihood ratio ln(dP/dQ)
	wSyncAt   float64 // simulation time logW exposure is accrued through
	armedRate float64 // Σ true rates of currently armed fault arrivals

	lost     bool
	lossTime float64
	first    faults.Type // fault class that opened the fatal WOV
	final    faults.Type // fault class that completed it

	stats TrialStats
	trace *Trace // optional event trace (nil = off)

	// replay, when non-nil, switches the trial from generative to
	// replay mode: fault arrivals come from a recorded event stream
	// instead of the sampled processes (armVisible/armLatent/armShock
	// no-op), and §6.6 side-effect faults are never re-sampled — the
	// recorded stream already contains them. See replay.go.
	replay *replaySchedule

	// shockFns are the prebound recurring handlers for cfg.Shocks,
	// mirroring the per-replica fire* closures.
	shockFns []des.Handler
}

// newTrial builds the event graph for one trial. src must be a
// trial-specific stream. trace may be nil. specs must be
// cfg.ReplicaSpecs() — precomputed by the caller so estimation runs
// expand the config once, not once per trial.
func newTrial(cfg *Config, specs []ReplicaSpec, src *rng.Source, trace *Trace) *trial {
	t := allocTrial(cfg, specs, trace)
	t.start(src)
	return t
}

// allocTrial allocates a trial's reusable state — engine, replicas,
// fault processes, derived-source slots, prebound handlers — without
// arming any events. A worker allocates once and then runs many trials
// through start, which re-seeds and re-arms in place; the sequence of
// random draws and scheduled events is identical to a freshly built
// trial, so reuse cannot change results.
func allocTrial(cfg *Config, specs []ReplicaSpec, trace *Trace) *trial {
	t := &trial{
		cfg:       cfg,
		specs:     specs,
		eng:       &des.Engine{},
		reps:      make([]*replica, len(specs)),
		auditSrc:  &rng.Source{},
		shockSrc:  &rng.Source{},
		trace:     trace,
		lazyAudit: cfg.AuditLatentFaultProb == 0 && cfg.AuditVisibleFaultProb == 0 && trace == nil,
	}
	minIntact := cfg.MinIntact
	if minIntact < 1 {
		minIntact = 1
	}
	t.lossAt = len(specs) - minIntact + 1
	for i := range t.reps {
		vis, err := faults.NewProcess(specs[i].VisibleMean)
		if err != nil {
			panic("sim: config validated but visible process rejected: " + err.Error())
		}
		lat, err := faults.NewProcess(specs[i].LatentMean)
		if err != nil {
			panic("sim: config validated but latent process rejected: " + err.Error())
		}
		if h := specs[i].Hazard; h != nil {
			vis.SetProfile(h)
			lat.SetProfile(h)
		}
		r := &replica{visible: vis, latent: lat, src: &rng.Source{}}
		i := i
		// A biased arrival firing contributes the density-ratio factor
		// 1/β; an arrival is biased exactly when it fires inside a
		// faulty window (applyAcceleration re-samples every armed draw
		// at each boost transition, so the pending draw always matches
		// the current boost state).
		r.fireVisible = func(*des.Engine) {
			if t.bias > 1 && t.faulty > 0 {
				t.logW -= t.logBias
			}
			t.onFault(i, faults.Visible, false)
		}
		r.fireLatent = func(*des.Engine) {
			if t.bias > 1 && t.faulty > 0 {
				t.logW -= t.logBias
			}
			t.onFault(i, faults.Latent, false)
		}
		r.fireDetect = func(*des.Engine) { t.onDetected(i) }
		r.fireAudit = func(*des.Engine) {
			t.onAudit(i)
			t.armAudit(i)
		}
		r.fireRepaired = func(*des.Engine) { t.onRepaired(i) }
		t.reps[i] = r
	}
	t.shockFns = make([]des.Handler, len(cfg.Shocks))
	for si := range cfg.Shocks {
		si := si
		t.shockFns[si] = func(*des.Engine) {
			t.onShock(si)
			if !t.lost {
				t.armShock(si)
			}
		}
	}
	return t
}

// start (re)initializes the trial from a trial-specific stream and arms
// the initial events. The derivation labels, draw order, and event
// scheduling order replicate newTrial's historical construction exactly,
// so a reset trial is bit-identical to a fresh one.
func (t *trial) start(src *rng.Source) {
	t.eng.Reset()
	src.DeriveStringInto("audit", t.auditSrc)
	src.DeriveStringInto("shock", t.shockSrc)
	t.faulty = 0
	t.lost = false
	t.lossTime = 0
	t.first, t.final = 0, 0
	t.stats = TrialStats{}
	t.logW = 0
	t.wSyncAt = 0
	t.armedRate = 0
	for i, r := range t.reps {
		src.DeriveInto(uint64(i)+1, r.src)
		r.state = stateHealthy
		r.faultKind = 0
		r.faultAt = 0
		r.visibleEv, r.latentEv, r.detectEv, r.repairEv = nil, nil, nil, nil
		r.visible.SetAcceleration(1)
		r.latent.SetAcceleration(1)
		if t.bias > 1 {
			// No replica is faulty at t=0, so sampling starts unbiased.
			r.visible.SetBias(1)
			r.latent.SetBias(1)
			r.visRate, r.latRate = 0, 0
		}
	}
	// Arm the initial fault arrivals and audit schedules.
	for i := range t.reps {
		t.armVisible(i)
		t.armLatent(i)
		if !t.lazyAudit {
			t.armAudit(i)
		}
	}
	// Arm common-cause shocks.
	for si := range t.cfg.Shocks {
		t.armShock(si)
	}
	// In replay mode the exogenous events come from the recorded stream.
	if t.replay != nil {
		t.scheduleReplay()
	}
}

// run executes the trial until loss or horizon (0 = run to loss).
func (t *trial) run(horizon float64) TrialResult {
	if horizon > 0 {
		t.eng.RunUntil(horizon)
	} else {
		t.eng.Run()
	}
	res := TrialResult{Lost: t.lost, Stats: t.stats, Weight: 1}
	if t.lost {
		res.Time = t.lossTime
		res.FirstFault = t.first
		res.FinalFault = t.final
	} else {
		res.Time = horizon
	}
	if t.bias > 1 {
		if !t.lost && horizon > 0 && t.faulty > 0 {
			// Censored with an open faulty window: the still-armed biased
			// draws survived to the horizon, contributing their survival
			// ratio over the un-synced tail.
			t.logW += (t.bias - 1) * t.armedRate * (horizon - t.wSyncAt)
		}
		res.Weight = math.Exp(t.logW)
	}
	return res
}

// setBiasFactor configures failure biasing for every trial this
// allocation runs: while any replica is faulty, armed fault arrivals
// sample at β times their true hazard and the trial tracks the
// likelihood-ratio weight that corrects the estimate. beta <= 1 turns
// biasing off entirely (the historical, weightless path).
func (t *trial) setBiasFactor(beta float64) {
	if beta > 1 {
		t.bias = beta
		t.logBias = math.Log(beta)
	} else {
		t.bias = 0
		t.logBias = 0
	}
}

// wSync accrues likelihood-ratio exposure for the interval since the
// last sync: while faulty, every armed biased draw contributes
// (β−1)·λ_true per unit time. Callers must sync before mutating
// t.faulty or any armed rate, so the elapsed interval is charged under
// the state it actually ran in.
func (t *trial) wSync() {
	now := t.eng.Now()
	if t.faulty > 0 && now > t.wSyncAt {
		t.logW += (t.bias - 1) * t.armedRate * (now - t.wSyncAt)
	}
	t.wSyncAt = now
}

// noteRate records that a tracked armed-arrival hazard slot changed,
// accruing exposure up to now first.
func (t *trial) noteRate(slot *float64, nr float64) {
	t.wSync()
	t.armedRate += nr - *slot
	*slot = nr
}

// armVisible schedules the next visible fault for replica i if eligible.
// Visible faults strike healthy replicas and latent-faulty ones (a disk
// with silent corruption can still crash); repairing replicas are already
// being restored.
func (t *trial) armVisible(i int) {
	if t.replay != nil {
		return
	}
	r := t.reps[i]
	r.visibleEv.Cancel()
	r.visibleEv = nil
	if r.state != stateRepairing && !r.visible.Disabled() {
		delay := r.visible.SampleNextAt(t.eng.Now(), r.src)
		if !math.IsInf(delay, 1) {
			r.visibleEv = t.eng.ScheduleAfter(delay, r.fireVisible)
		}
	}
	if t.bias > 1 {
		nr := 0.0
		if r.visibleEv != nil {
			nr = 1 / r.visible.EffectiveMean()
		}
		t.noteRate(&r.visRate, nr)
	}
}

// armLatent schedules the next latent fault for replica i if healthy.
func (t *trial) armLatent(i int) {
	if t.replay != nil {
		return
	}
	r := t.reps[i]
	r.latentEv.Cancel()
	r.latentEv = nil
	if r.state == stateHealthy && !r.latent.Disabled() {
		delay := r.latent.SampleNextAt(t.eng.Now(), r.src)
		if !math.IsInf(delay, 1) {
			r.latentEv = t.eng.ScheduleAfter(delay, r.fireLatent)
		}
	}
	if t.bias > 1 {
		nr := 0.0
		if r.latentEv != nil {
			nr = 1 / r.latent.EffectiveMean()
		}
		t.noteRate(&r.latRate, nr)
	}
}

// scrubFor returns the audit strategy for replica i.
func (t *trial) scrubFor(i int) scrub.Strategy {
	return t.specs[i].Scrub
}

// armAudit schedules the next audit pass for replica i.
func (t *trial) armAudit(i int) {
	if t.lost {
		return
	}
	at, ok := t.scrubFor(i).NextAudit(t.eng.Now(), t.auditSrc)
	if !ok {
		return
	}
	t.eng.Schedule(at, t.reps[i].fireAudit)
}

// armShock schedules the next firing of shock si.
func (t *trial) armShock(si int) {
	if t.replay != nil {
		// Recorded streams already embody shock outcomes as plain fault
		// events.
		return
	}
	s := &t.cfg.Shocks[si]
	delay := s.SampleNext(t.shockSrc)
	t.eng.ScheduleAfter(delay, t.shockFns[si])
}

// armDetection schedules the discovery of replica i's outstanding latent
// fault through whichever channel fires first: the audit schedule (in
// lazy mode; otherwise the recurring audit events handle it) and the
// user-access channel. Sampling the earliest of the channels at fault
// time is exact for deterministic-periodic and memoryless strategies.
func (t *trial) armDetection(i int) {
	r := t.reps[i]
	r.detectEv.Cancel()
	r.detectEv = nil
	best := math.Inf(1)
	if t.lazyAudit {
		if at, ok := t.scrubFor(i).NextAudit(t.eng.Now(), t.auditSrc); ok && at < best {
			best = at
		}
	}
	if ad := t.specs[i].AccessDetect; ad != nil {
		if at, ok := ad.NextAudit(t.eng.Now(), t.auditSrc); ok && at < best {
			best = at
		}
	}
	if math.IsInf(best, 1) {
		return
	}
	r.detectEv = t.eng.Schedule(best, r.fireDetect)
}

// onFault applies a fault of the given class to replica i. planted marks
// §6.6 side-effect faults (from audits or buggy repairs) for accounting.
func (t *trial) onFault(i int, kind faults.Type, planted bool) {
	if t.lost {
		return
	}
	r := t.reps[i]
	now := t.eng.Now()
	switch kind {
	case faults.Visible:
		t.stats.VisibleFaults++
	case faults.Latent:
		t.stats.LatentFaults++
	}
	t.traceEvent(now, i, eventFault, kind, planted)

	switch r.state {
	case stateHealthy:
		r.faultKind = kind
		r.faultAt = now
		if t.faulty == 0 {
			// This fault opens a window of vulnerability.
			t.first = kind
			if kind == faults.Visible {
				t.stats.WOVOpenedByVis++
			} else {
				t.stats.WOVOpenedByLat++
			}
		}
		// State must change before setFaulty so that the correlation
		// re-arm inside it treats this replica as faulty (its own
		// processes run at base rate).
		if kind == faults.Visible {
			r.state = stateRepairing
		} else {
			r.state = stateLatent
		}
		t.setFaulty(i, kind)
		if t.lost {
			return
		}
		if kind == faults.Visible {
			t.startRepair(i)
		} else {
			t.armDetection(i)
			// The latent process pauses (one outstanding latent fault
			// is enough); the visible process keeps running.
			t.armLatent(i)
			t.armVisible(i)
		}
	case stateLatent:
		if kind == faults.Visible {
			// The silent corruption's disk now visibly fails; the
			// repair that follows will restore everything. The fault
			// that opened this replica's bad spell keeps its class for
			// loss accounting.
			t.stats.Detections++
			t.traceEvent(now, i, eventDetected, r.faultKind, false)
			r.state = stateRepairing
			r.faultKind = faults.Visible
			t.startRepair(i)
		}
		// A second latent fault on an already latent-faulty replica
		// changes nothing.
	case stateRepairing:
		// Already being restored; further faults during repair are
		// absorbed by the restore. (Repair-planted faults are applied
		// after completion, not here.)
	}
}

// onAudit runs one audit pass on replica i: detect an outstanding latent
// fault, then possibly plant a side-effect fault (§6.6).
func (t *trial) onAudit(i int) {
	if t.lost {
		return
	}
	t.stats.Audits++
	r := t.reps[i]
	t.traceEvent(t.eng.Now(), i, eventAudit, faults.Latent, false)
	if r.state == stateLatent {
		t.onDetected(i)
	}
	// Side effects apply to replicas the audit actually touched; a
	// replica under repair is not audited. Replay never re-samples side
	// effects: planted faults ride in the recorded stream.
	if r.state == stateRepairing || t.replay != nil {
		return
	}
	if t.cfg.AuditVisibleFaultProb > 0 && t.auditSrc.Bool(t.cfg.AuditVisibleFaultProb) {
		t.stats.AuditInduced++
		t.onFault(i, faults.Visible, true)
		return
	}
	if t.cfg.AuditLatentFaultProb > 0 && r.state == stateHealthy && t.auditSrc.Bool(t.cfg.AuditLatentFaultProb) {
		t.stats.AuditInduced++
		t.onFault(i, faults.Latent, true)
	}
}

// onDetected surfaces replica i's latent fault and starts repair.
func (t *trial) onDetected(i int) {
	if t.lost {
		return
	}
	r := t.reps[i]
	if r.state != stateLatent {
		return
	}
	t.stats.Detections++
	t.traceEvent(t.eng.Now(), i, eventDetected, faults.Latent, false)
	r.detectEv.Cancel()
	r.detectEv = nil
	r.state = stateRepairing
	// The visible arrival no longer matters while repairing.
	r.visibleEv.Cancel()
	r.visibleEv = nil
	t.startRepair(i)
}

// onShock fires common-cause shock si.
func (t *trial) onShock(si int) {
	if t.lost {
		return
	}
	s := &t.cfg.Shocks[si]
	t.stats.ShockEvents++
	for _, target := range s.Strike(t.shockSrc) {
		if t.lost {
			return
		}
		t.onFault(target, s.Kind, false)
	}
}

// startRepair schedules replica i's repair completion. The caller has
// already moved it to stateRepairing and accounted the fault.
func (t *trial) startRepair(i int) {
	r := t.reps[i]
	// Fault arrivals pause during repair.
	r.visibleEv.Cancel()
	r.visibleEv = nil
	r.latentEv.Cancel()
	r.latentEv = nil
	r.detectEv.Cancel()
	r.detectEv = nil
	if t.bias > 1 {
		t.noteRate(&r.visRate, 0)
		t.noteRate(&r.latRate, 0)
	}
	if t.replay != nil && t.replay.pinRepairs {
		// Pinned replay: the recorded stream's repair events complete
		// this repair; no policy duration is sampled.
		t.traceEvent(t.eng.Now(), i, eventRepairStart, r.faultKind, false)
		return
	}
	d := t.specs[i].Repair.Duration(r.faultKind == faults.Visible, r.src)
	r.repairEv = t.eng.ScheduleAfter(d, r.fireRepaired)
	t.traceEvent(t.eng.Now(), i, eventRepairStart, r.faultKind, false)
}

// onRepaired completes replica i's repair.
func (t *trial) onRepaired(i int) {
	if t.lost {
		return
	}
	r := t.reps[i]
	r.repairEv = nil
	t.stats.Repairs++
	t.traceEvent(t.eng.Now(), i, eventRepaired, r.faultKind, false)
	r.state = stateHealthy
	t.setHealthy(i)
	t.armVisible(i)
	t.armLatent(i)
	// §6.6: buggy automation can leave a fresh latent fault behind. In
	// replay mode the recorded stream already carries planted faults, so
	// they are never re-sampled.
	if t.replay == nil && t.specs[i].Repair.RepairPlantsFault(r.src) {
		t.stats.RepairBugs++
		t.onFault(i, faults.Latent, true)
	}
}

// setFaulty transitions replica i into the faulty population and checks
// for data loss.
func (t *trial) setFaulty(i int, kind faults.Type) {
	if t.bias > 1 {
		// Accrue exposure under the pre-transition boost state before
		// the faulty count (and with it the biased/unbiased regime)
		// changes.
		t.wSync()
	}
	t.faulty++
	if t.faulty == t.lossAt {
		t.lost = true
		t.lossTime = t.eng.Now()
		t.final = kind
		t.traceEvent(t.lossTime, i, eventDataLoss, kind, false)
		t.eng.Stop()
		return
	}
	t.applyAcceleration()
}

// setHealthy transitions replica i back into the healthy population.
func (t *trial) setHealthy(int) {
	if t.bias > 1 {
		t.wSync()
	}
	t.faulty--
	t.applyAcceleration()
}

// applyAcceleration re-arms the fault processes of non-faulty replicas
// with the correlation model's current hazard multiplier, and — under
// failure biasing — switches every replica's sampling bias on or off
// with the faulty window. Valid because the processes are memoryless:
// resampling the remaining wait preserves the distribution. The bias
// term in the re-arm condition is what guarantees a pending draw always
// matches the current boost regime (with Independent correlation it is
// the only trigger on a faulty transition), so "fired while faulty" is
// exactly "drawn biased".
func (t *trial) applyAcceleration() {
	accel := t.cfg.Correlation.Acceleration(t.faulty)
	boost := 1.0
	if t.bias > 1 && t.faulty > 0 {
		boost = t.bias
	}
	for i, r := range t.reps {
		target := 1.0
		if r.state == stateHealthy {
			target = accel
		}
		if r.visible.Acceleration() != target || r.latent.Acceleration() != target || r.visible.Bias() != boost {
			r.visible.SetAcceleration(target)
			r.latent.SetAcceleration(target)
			r.visible.SetBias(boost)
			r.latent.SetBias(boost)
			t.armVisible(i)
			t.armLatent(i)
		}
	}
}
