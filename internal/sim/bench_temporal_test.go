package sim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/rng"
)

// TemporalBenchArtifact is the schema of BENCH_temporal.json: what the
// hazard-profile thinning machinery costs on the trial hot path. The
// constant arm runs ConstantHazard{1} — dynamically identical to the
// unprofiled process — so the nil/constant ratio isolates pure thinning
// overhead (the envelope walk and its interface calls; a tight envelope
// spends no acceptance draws) from any change in simulated dynamics;
// the Weibull arm reports a real time-varying profile for context.
type TemporalBenchArtifact struct {
	Bench             string  `json:"bench"`
	NsPerTrialNil     int64   `json:"ns_per_trial_nil"`
	NsPerTrialConst   int64   `json:"ns_per_trial_const"`
	NsPerTrialWeibull int64   `json:"ns_per_trial_weibull"`
	ConstOverhead     float64 `json:"const_overhead"`
	AllocsNil         int64   `json:"allocs_nil"`
	AllocsConst       int64   `json:"allocs_const"`
	GoMaxProcs        int     `json:"gomaxprocs"`
}

// benchTrialNs measures the worker-reuse hot path (as in
// BenchmarkTrialHotPath) for benchMirror under the given profile,
// taking the fastest of rounds — the minimum is the standard
// noise-robust statistic for a deterministic workload.
func benchTrialNs(rounds int, h faults.Hazard) (nsMin, allocs int64) {
	cfg := benchMirror()
	cfg.Hazard = h
	r, err := NewRunner(cfg)
	if err != nil {
		panic(err)
	}
	for round := 0; round < rounds; round++ {
		res := testing.Benchmark(func(b *testing.B) {
			t := allocTrial(&r.cfg, r.specs, nil)
			base := rng.New(1)
			var src rng.Source
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base.DeriveInto(uint64(i)+trialStreamLabel, &src)
				t.start(&src)
				t.run(0)
			}
		})
		if ns := res.NsPerOp(); round == 0 || ns < nsMin {
			nsMin = ns
		}
		allocs = res.AllocsPerOp()
	}
	return nsMin, allocs
}

// TestBenchArtifactTemporal gates the hazard plumbing's hot-path cost:
// an unprofiled trial must run within 1.10x of its pre-hazard speed
// proxy (the ConstantHazard{1} arm bounds the thinning machinery; the
// nil arm must not have picked up overhead from the profile plumbing
// itself, which it can only show against the constant arm), and neither
// profiled arm may allocate more than the nil path — thinning is
// allocation-free by construction. When BENCH_TEMPORAL_OUT is set the
// measurement is written as BENCH_temporal.json for CI to publish.
func TestBenchArtifactTemporal(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark artifact is not a -short test")
	}
	// Rounds interleave the arms so drifting background load (CI
	// neighbours, the rest of the package's tests) biases the nil and
	// profiled measurements alike instead of skewing their ratio; each
	// arm keeps its own minimum across rounds.
	const rounds = 5
	var nsNil, nsConst, nsWeib, allocsNil, allocsConst int64
	for round := 0; round < rounds; round++ {
		if ns, a := benchTrialNs(1, nil); round == 0 || ns < nsNil {
			nsNil, allocsNil = ns, a
		}
		if ns, a := benchTrialNs(1, faults.ConstantHazard{Factor: 1}); round == 0 || ns < nsConst {
			nsConst, allocsConst = ns, a
		}
		if ns, _ := benchTrialNs(1, faults.WeibullHazard{Shape: 2, Scale: 2000}); round == 0 || ns < nsWeib {
			nsWeib = ns
		}
	}

	overhead := float64(nsConst) / float64(nsNil)
	if overhead > 1.10 {
		t.Errorf("ConstantHazard{1} trials cost %.3fx the nil-profile path (%d vs %d ns/trial); thinning overhead exceeds the 1.10x budget",
			overhead, nsConst, nsNil)
	}
	if allocsConst > allocsNil {
		t.Errorf("profiled hot path allocates %d objects/trial vs nil %d; thinning must be allocation-free",
			allocsConst, allocsNil)
	}

	art := TemporalBenchArtifact{
		Bench:             "sim_hazard_profile_hot_path",
		NsPerTrialNil:     nsNil,
		NsPerTrialConst:   nsConst,
		NsPerTrialWeibull: nsWeib,
		ConstOverhead:     overhead,
		AllocsNil:         allocsNil,
		AllocsConst:       allocsConst,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
	}
	out := os.Getenv("BENCH_TEMPORAL_OUT")
	if out == "" {
		t.Logf("nil %d ns/trial, const-profile %d ns/trial (%.3fx), weibull %d ns/trial — set BENCH_TEMPORAL_OUT to write the artifact",
			nsNil, nsConst, overhead, nsWeib)
		return
	}
	bts, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(bts, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: const overhead %.3fx, weibull %d ns/trial", out, overhead, nsWeib)
}
