package sim

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/scrub"
)

// fastMirror returns a deliberately unreliable mirrored config so trials
// reach data loss in few events: visible-only channel, MV=1000h,
// MRV=10h. The physical MTTDL is MV²/(r·MRV) = 50,000 h (the paper's
// closed form divided by the replica count; see E9 in DESIGN.md).
func fastMirror(t *testing.T) Config {
	t.Helper()
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

func TestConfigValidate(t *testing.T) {
	good := fastMirror(t)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero replicas", func(c *Config) { c.Replicas = 0 }},
		{"zero visible mean", func(c *Config) { c.VisibleMean = 0 }},
		{"NaN latent mean", func(c *Config) { c.LatentMean = math.NaN() }},
		{"no channels", func(c *Config) { c.VisibleMean = math.Inf(1); c.LatentMean = math.Inf(1) }},
		{"nil scrub", func(c *Config) { c.Scrub = nil }},
		{"nil correlation", func(c *Config) { c.Correlation = nil }},
		{"empty repair", func(c *Config) { c.Repair = repair.Policy{} }},
		{"shock out of range", func(c *Config) {
			c.Shocks = []faults.Shock{{Name: "x", Mean: 10, Targets: []int{5}, Kind: faults.Visible, HitProb: 1}}
		}},
		{"bad audit prob", func(c *Config) { c.AuditLatentFaultProb = -0.1 }},
		{"short per-replica scrub", func(c *Config) { c.ScrubPerReplica = []scrub.Strategy{scrub.None{}} }},
		{"nil per-replica scrub", func(c *Config) { c.ScrubPerReplica = []scrub.Strategy{scrub.None{}, nil} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := fastMirror(t)
			c.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestVisibleOnlyMirrorMatchesTheory(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 3000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Censored != 0 {
		t.Fatalf("%d censored trials in a run-to-loss estimate", est.Censored)
	}
	// Physical MTTDL for a 2-unit repairable system with per-unit rate
	// 1/MV and fixed repair R: first faults at 2/MV, loss probability
	// per fault ~ R/MV, so MTTDL ~ MV²/(2R) = 50,000 h (plus the repair
	// itself, negligible).
	want := 1000.0 * 1000 / (2 * 10)
	if math.Abs(est.MTTDL.Point-want)/want > 0.06 {
		t.Errorf("simulated MTTDL = %.0f, want %.0f within 6%%", est.MTTDL.Point, want)
	}
	// The paper's closed form (eq 9, alpha=1) should be ~2x the physical
	// value — the documented first-fault convention gap.
	paper := cfg.ModelParams().MTTDL()
	if ratio := paper / est.MTTDL.Point; math.Abs(ratio-2) > 0.2 {
		t.Errorf("paper model / sim ratio = %.2f, want ~2 (first-fault convention)", ratio)
	}
	// All losses must be visible-visible.
	if est.Matrix.Losses[faults.Latent][faults.Visible]+est.Matrix.Losses[faults.Visible][faults.Latent]+est.Matrix.Losses[faults.Latent][faults.Latent] != 0 {
		t.Errorf("visible-only run produced latent losses: %+v", est.Matrix)
	}
	// Conditional loss probability per WOV ~ MRV/MV = 0.01.
	got := est.Matrix.ConditionalLossProb(faults.Visible, faults.Visible)
	if math.Abs(got-0.01)/0.01 > 0.1 {
		t.Errorf("P(V2|V1) = %v, want ~0.01", got)
	}
}

func TestLatentScrubbedMirrorMatchesTheory(t *testing.T) {
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  1000,
		Scrub:       scrub.Periodic{Interval: 100},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 3000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Renewal argument: cycles of (both healthy: mean 500 h at pair rate
	// 2/ML) + (window of vulnerability: detection wait W ~ U(0,100) plus
	// 1 h repair). Loss per window with the exact exponential:
	// p = 1 - E[exp(-(W+1)/ML)] = 0.0493. MTTDL ≈ (500+51)/p ≈ 11.2e3 h.
	// (The paper's first-order form ML²/(2(MDL+MRL)) = 9804 ignores the
	// window dwell time — a visible ~12% bias at these scales.)
	p := 1 - math.Exp(-1.0/1000)*(1000.0/100)*(1-math.Exp(-100.0/1000))
	want := (500 + 51) / p
	if math.Abs(est.MTTDL.Point-want)/want > 0.06 {
		t.Errorf("simulated MTTDL = %.0f, want %.0f within 6%%", est.MTTDL.Point, want)
	}
	// Detections can't exceed latent faults. (Audit passes are not
	// simulated as events in the lazy fast path, so Stats.Audits stays
	// zero here; detection still happens on the audit schedule.)
	if est.Stats.Detections > est.Stats.LatentFaults {
		t.Errorf("detections %d exceed latent faults %d", est.Stats.Detections, est.Stats.LatentFaults)
	}
	if est.Stats.Detections == 0 {
		t.Error("no detections recorded")
	}
	// Both loss classes must be latent (no visible channel).
	if est.Matrix.Losses[faults.Visible][faults.Visible] != 0 {
		t.Error("visible losses in a latent-only run")
	}
}

// The lazy detection fast path (no audit events) and the eager path
// (every audit simulated) must agree statistically — they are two
// implementations of the same process.
func TestLazyAndEagerAuditPathsAgree(t *testing.T) {
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  1000,
		Scrub:       scrub.Periodic{Interval: 100},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	eager := cfg
	eager.AuditLatentFaultProb = 1e-300 // never fires, but disables the fast path
	runEst := func(c Config, seed uint64) Estimate {
		r, err := NewRunner(c)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 1500, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	lazy := runEst(cfg, 21)
	egr := runEst(eager, 22)
	if egr.Stats.Audits == 0 {
		t.Fatal("eager run recorded no audits; fast path not disabled")
	}
	if lazy.Stats.Audits != 0 {
		t.Fatal("lazy run recorded audits; fast path not engaged")
	}
	if rel := math.Abs(lazy.MTTDL.Point-egr.MTTDL.Point) / egr.MTTDL.Point; rel > 0.08 {
		t.Errorf("lazy MTTDL %.0f vs eager %.0f differ by %.1f%%, want < 8%%",
			lazy.MTTDL.Point, egr.MTTDL.Point, rel*100)
	}
}

func TestAlphaAcceleratesLoss(t *testing.T) {
	base := fastMirror(t)
	r1, err := NewRunner(base)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := r1.Estimate(Options{Trials: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	corr := base
	alpha, err := faults.NewAlphaCorrelation(0.1)
	if err != nil {
		t.Fatal(err)
	}
	corr.Correlation = alpha
	r2, err := NewRunner(corr)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := r2.Estimate(Options{Trials: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ratio := ind.MTTDL.Point / dep.MTTDL.Point
	// alpha=0.1 should cost ~10x (second-fault hazard x10; small
	// corrections from the repair tail).
	if ratio < 7 || ratio > 13 {
		t.Errorf("alpha=0.1 MTTDL penalty = %.1fx, want ~10x", ratio)
	}
}

// CompoundingAlpha accelerates per outstanding fault, so with r=3 it must
// cost strictly more than the paper's flat model at the same alpha — the
// ablation the faults package documents.
func TestCompoundingCorrelationHurtsMore(t *testing.T) {
	base := fastMirror(t)
	base.Replicas = 3
	base.VisibleMean = 500 // keep r=3 trials quick
	flat, err := faults.NewAlphaCorrelation(0.3)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := faults.NewCompoundingAlpha(0.3)
	if err != nil {
		t.Fatal(err)
	}
	runEst := func(c faults.Correlation) float64 {
		cfg := base
		cfg.Correlation = c
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 800, Seed: 14})
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTDL.Point
	}
	flatMTTDL := runEst(flat)
	compMTTDL := runEst(comp)
	if compMTTDL >= flatMTTDL {
		t.Errorf("compounding correlation MTTDL %.0f should be below flat %.0f at r=3", compMTTDL, flatMTTDL)
	}
}

func TestMoreReplicasHelp(t *testing.T) {
	base := fastMirror(t)
	base.VisibleMean = 200 // keep r=3 trials affordable
	prev := 0.0
	for _, r := range []int{1, 2, 3} {
		cfg := base
		cfg.Replicas = r
		runner, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := runner.Estimate(Options{Trials: 600, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if est.MTTDL.Point <= prev {
			t.Errorf("r=%d MTTDL %.0f not above r-1's %.0f", r, est.MTTDL.Point, prev)
		}
		prev = est.MTTDL.Point
	}
}

func TestMinIntactErasureSemantics(t *testing.T) {
	if testing.Short() {
		// The 1-of-4 cell simulates ~10^9 events; skip under -short so
		// the race-detector CI pass stays affordable.
		t.Skip("minutes-long full-replication cell")
	}
	base := fastMirror(t)
	base.Replicas = 4

	// m=1 (plain 4-way replication): loss needs all 4 down at once.
	repl := base
	repl.MinIntact = 1
	// m=3 of 4: loss needs just 2 down at once — much weaker.
	needy := base
	needy.MinIntact = 3
	runEst := func(cfg Config) float64 {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 600, Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTDL.Point
	}
	a := runEst(repl)
	b := runEst(needy)
	if b >= a {
		t.Errorf("3-of-4 MTTDL %.0f should be far below 1-of-4 %.0f", b, a)
	}
	// MinIntact = Replicas: any single fault is loss; MTTDL = time to
	// first fault anywhere = MV/r.
	all := base
	all.MinIntact = 4
	got := runEst(all)
	want := base.VisibleMean / 4
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("MinIntact=n MTTDL = %.0f, want ~MV/4 = %.0f", got, want)
	}
	// Validation bounds.
	bad := base
	bad.MinIntact = 5
	if err := bad.Validate(); err == nil {
		t.Error("MinIntact above Replicas accepted")
	}
	bad.MinIntact = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative MinIntact accepted")
	}
}

func TestMinIntactMatchesMarkovModel(t *testing.T) {
	// 2-of-4 code with exponential repair: compare against the exact
	// birth-death MTTDL. Exponential repair matches the Markov model's
	// assumptions (deterministic repair would not).
	vis, err := rng.NewExponential(25)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Replicas:    4,
		MinIntact:   2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      repair.Policy{Visible: vis, Latent: vis},
		Correlation: faults.Independent{},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 2500, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	markov := baseline.MarkovErasure{N: 4, M: 2, FragmentMTTF: 1000, FragmentMTTR: 25}
	want, err := markov.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est.MTTDL.Point-want) / want; rel > 0.08 {
		t.Errorf("simulated 2-of-4 MTTDL %.0f vs Markov %.0f: %.1f%% off, want < 8%%",
			est.MTTDL.Point, want, rel*100)
	}
}

func TestSingleReplicaMTTDLIsMV(t *testing.T) {
	cfg := fastMirror(t)
	cfg.Replicas = 1
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MTTDL.Point-1000)/1000 > 0.05 {
		t.Errorf("single replica MTTDL = %.0f, want ~1000 (MV)", est.MTTDL.Point)
	}
}

func TestHorizonCensoring(t *testing.T) {
	cfg := fastMirror(t)
	cfg.VisibleMean = 1e9 // essentially immortal
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 500, Seed: 6, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if est.Censored != 500 {
		t.Errorf("censored = %d, want all 500", est.Censored)
	}
	if est.LossProb.Point != 0 {
		t.Errorf("loss probability = %v, want 0", est.LossProb.Point)
	}
	if est.MTTDL.Point != 1000 {
		t.Errorf("restricted-mean MTTDL = %v, want the horizon 1000", est.MTTDL.Point)
	}
	if est.Survival.Survival(999) != 1 {
		t.Error("survival should be 1 throughout a lossless run")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := fastMirror(t)
	run := func(parallel int) Estimate {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 300, Seed: 42, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	a := run(1)
	b := run(8)
	if a.MTTDL.Point != b.MTTDL.Point {
		t.Errorf("parallelism changed results: %v vs %v", a.MTTDL.Point, b.MTTDL.Point)
	}
	if a.Stats != b.Stats {
		t.Errorf("parallelism changed stats: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestRunTrialReproducible(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := r.RunTrial(7, 3, 0)
	b := r.RunTrial(7, 3, 0)
	if a != b {
		t.Errorf("same (seed, index) gave %+v vs %+v", a, b)
	}
	c := r.RunTrial(7, 4, 0)
	if a.Time == c.Time {
		t.Error("different trial indices gave identical loss times")
	}
}

func TestSharedShockDestroysMirror(t *testing.T) {
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No individual faults at all: only a shared shock that takes out
	// both replicas at once. Every shock is a loss, so MTTDL = shock
	// mean.
	cfg := Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
		Shocks: []faults.Shock{
			{Name: "dc-power", Mean: 5000, Targets: []int{0, 1}, Kind: faults.Visible, HitProb: 1},
		},
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 3000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.MTTDL.Point-5000)/5000 > 0.05 {
		t.Errorf("shared-shock MTTDL = %.0f, want ~5000 (every shock kills both)", est.MTTDL.Point)
	}
	if est.Stats.ShockEvents == 0 {
		t.Error("no shock events recorded")
	}
}

func TestIndependentShocksFarSafer(t *testing.T) {
	rep, err := repair.Automated(10, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	shared := base
	shared.Shocks = []faults.Shock{
		{Name: "dc", Mean: 5000, Targets: []int{0, 1}, Kind: faults.Visible, HitProb: 1},
	}
	split := base
	split.Shocks = []faults.Shock{
		{Name: "dc0", Mean: 5000, Targets: []int{0}, Kind: faults.Visible, HitProb: 1},
		{Name: "dc1", Mean: 5000, Targets: []int{1}, Kind: faults.Visible, HitProb: 1},
	}
	runEst := func(cfg Config) float64 {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 800, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return est.MTTDL.Point
	}
	sharedMTTDL := runEst(shared)
	splitMTTDL := runEst(split)
	// Same marginal hazard per replica; the only difference is
	// correlation. Independence should win by orders of magnitude
	// (~MV/(2·MRV) = 250x here).
	if splitMTTDL < 50*sharedMTTDL {
		t.Errorf("independent shocks MTTDL %.0f should dwarf shared %.0f", splitMTTDL, sharedMTTDL)
	}
}

func TestBuggyRepairDegradesReliability(t *testing.T) {
	clean := fastMirror(t)
	buggy := fastMirror(t)
	rep, err := repair.Automated(10, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	buggy.Repair = rep
	// Buggy repairs plant latent faults that nothing detects (no scrub):
	// each repaired replica has a coin-flip chance of staying silently
	// bad, so the mirror decays toward a single copy.
	runEst := func(cfg Config) Estimate {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 800, Seed: 10})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	c := runEst(clean)
	b := runEst(buggy)
	if b.MTTDL.Point >= c.MTTDL.Point/3 {
		t.Errorf("bug-ridden repair MTTDL %.0f should be far below clean %.0f", b.MTTDL.Point, c.MTTDL.Point)
	}
	if b.Stats.RepairBugs == 0 {
		t.Error("no repair bugs recorded")
	}
}

func TestAuditSideEffectsCanHurt(t *testing.T) {
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Replicas:    2,
		VisibleMean: math.Inf(1),
		LatentMean:  2000,
		Scrub:       scrub.Periodic{Interval: 50}, // hyperactive scrubbing
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	wear := base
	wear.AuditLatentFaultProb = 0.05 // each pass can plant a fault
	runEst := func(cfg Config) Estimate {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{Trials: 300, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	clean := runEst(base)
	worn := runEst(wear)
	if worn.MTTDL.Point >= clean.MTTDL.Point {
		t.Errorf("audit wear MTTDL %.0f should fall below clean %.0f", worn.MTTDL.Point, clean.MTTDL.Point)
	}
	if worn.Stats.AuditInduced == 0 {
		t.Error("no audit-induced faults recorded")
	}
}

func TestEstimateOptionValidation(t *testing.T) {
	r, err := NewRunner(fastMirror(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(Options{Trials: 1}); err == nil {
		t.Error("1 trial accepted")
	}
	if _, err := r.Estimate(Options{Trials: 10, Horizon: -5}); err == nil {
		t.Error("negative horizon accepted")
	}
	if _, err := NewRunner(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
