package sim

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/rng"
)

// Adaptive runs must be parallelism-independent: the stopping decision
// happens only at batch boundaries, over batches merged in index order.
func TestAdaptiveParallelismIndependent(t *testing.T) {
	cfg := fastMirror(t)
	run := func(parallel int) Estimate {
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := r.Estimate(Options{
			Seed:           42,
			Parallel:       parallel,
			TargetRelWidth: 0.08,
			MaxTrials:      20000,
			BatchSize:      128,
		})
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	a := run(1)
	b := run(16)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("adaptive run depends on parallelism:\n%+v\nvs\n%+v", a, b)
	}
	if a.Trials >= 20000 {
		t.Fatalf("adaptive run never stopped early (%d trials)", a.Trials)
	}
	if a.Trials%128 != 0 {
		t.Errorf("adaptive run stopped at %d trials, not a batch boundary", a.Trials)
	}
	if rw := a.MTTDL.RelativeHalfWidth(); rw > 0.08 {
		t.Errorf("stopped with relative half-width %.3f > target 0.08", rw)
	}
}

// An adaptive run whose target is never reached must equal the
// fixed-trial run at MaxTrials bit for bit: the stopping rule decides
// only when to stop, never what the trials produce.
func TestAdaptiveExhaustedEqualsFixed(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := r.Estimate(Options{Seed: 3, TargetRelWidth: 1e-9, MaxTrials: 500})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := r.Estimate(Options{Seed: 3, Trials: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adaptive, fixed) {
		t.Fatalf("exhausted adaptive run differs from fixed run:\n%+v\nvs\n%+v", adaptive, fixed)
	}
	if adaptive.Trials != 500 {
		t.Fatalf("exhausted adaptive run did %d trials, want 500", adaptive.Trials)
	}
}

// The horizon-censored stopping criterion is the LossProb Wilson
// interval.
func TestAdaptiveLossProbCriterion(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{
		Seed:           1,
		Horizon:        20000,
		TargetRelWidth: 0.25,
		MaxTrials:      50000,
		BatchSize:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials >= 50000 {
		t.Fatalf("adaptive censored run never stopped early (%d trials)", est.Trials)
	}
	if rw := est.LossProb.RelativeHalfWidth(); rw > 0.25 {
		t.Errorf("stopped with LossProb relative half-width %.3f > target 0.25", rw)
	}
}

func TestAdaptiveMinTrialsRespected(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A huge target would stop at the first boundary; Trials floors it.
	est, err := r.Estimate(Options{
		Seed:           5,
		TargetRelWidth: 10,
		Trials:         1000,
		MaxTrials:      5000,
		BatchSize:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials < 1000 {
		t.Fatalf("adaptive run stopped at %d trials, below the %d minimum", est.Trials, 1000)
	}
}

// EstimateStream must emit monotonic snapshots and a final frame, and
// the estimate must match the sink-less run exactly (progress is
// observational).
func TestEstimateStreamProgress(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 1000, Seed: 9, BatchSize: 100, Parallel: 4}
	var frames []Progress
	est, err := r.EstimateStream(context.Background(), opt, func(p Progress) {
		frames = append(frames, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 {
		t.Fatalf("got %d frames, want 10 (one per batch, last one final)", len(frames))
	}
	for i, p := range frames {
		if want := (i + 1) * 100; p.Trials != want {
			t.Errorf("frame %d at %d trials, want %d", i, p.Trials, want)
		}
		if p.Budget != 1000 {
			t.Errorf("frame %d budget %d, want 1000", i, p.Budget)
		}
		if p.Final != (i == len(frames)-1) {
			t.Errorf("frame %d Final = %v", i, p.Final)
		}
	}
	plain, err := r.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(est, plain) {
		t.Fatal("streamed estimate differs from plain estimate")
	}
	// The final frame agrees with the folded totals.
	last := frames[len(frames)-1]
	if last.Losses+last.Censored != est.Trials {
		t.Errorf("final frame %d+%d outcomes != %d trials", last.Losses, last.Censored, est.Trials)
	}
}

// Workers must observe cancellation between trials and return promptly,
// and a completed context-run must equal the plain run byte for byte.
func TestEstimateContextCancellation(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// A budget far beyond what 20ms allows: promptness means the abort
	// happened mid-run, not after the budget drained.
	_, err = r.EstimateContext(ctx, Options{Trials: 50_000_000, Seed: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if elapsed > time.Second {
		t.Fatalf("cancelled run took %v, want < 1s", elapsed)
	}

	// A run that completes under a live context is identical to Estimate.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	opt := Options{Trials: 400, Seed: 17, Parallel: 4}
	viaCtx, err := r.EstimateContext(ctx2, opt)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCtx, plain) {
		t.Fatal("completed EstimateContext differs from Estimate")
	}
}

// Oversubscribed worker counts clamp to the available work instead of
// spawning goroutines that can never claim a trial.
func TestParallelOversubscriptionClamped(t *testing.T) {
	cfg := fastMirror(t)
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Trials: 4, Seed: 31, Parallel: 64}
	over, err := r.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallel = 1
	serial, err := r.Estimate(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(over, serial) {
		t.Fatal("oversubscribed run differs from serial run")
	}
	if over.Trials != 4 {
		t.Fatalf("got %d trials, want 4", over.Trials)
	}
}

// A reused worker-local trial must reproduce a freshly-built trial
// exactly — the allocation-reuse path cannot leak state across trials.
func TestTrialReuseMatchesFresh(t *testing.T) {
	cfg := goldenLatent(t)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	specs := cfg.ReplicaSpecs()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reused := allocTrial(&cfg, specs, nil)
	base := rng.New(77)
	var src rng.Source
	for _, idx := range []uint64{0, 1, 5, 9, 5, 0} {
		fresh := r.RunTrial(77, idx, 30000)
		base.DeriveInto(idx+trialStreamLabel, &src)
		reused.start(&src)
		got := reused.run(30000)
		if got != fresh {
			t.Fatalf("trial %d: reused %+v != fresh %+v", idx, got, fresh)
		}
	}
}

func TestAdaptiveOptionValidation(t *testing.T) {
	runner, err := NewRunner(fastMirror(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{TargetRelWidth: math.NaN(), MaxTrials: 100},
		{TargetRelWidth: -0.1, Trials: 100},
		{TargetRelWidth: math.Inf(1), MaxTrials: 100},
		{TargetRelWidth: 0.1, MaxTrials: 1},
		{TargetRelWidth: 0.1, Trials: 200, MaxTrials: 100},
		{TargetRelWidth: 0.1, Trials: -1, MaxTrials: 100},
	}
	for i, opt := range cases {
		if _, err := runner.Estimate(opt); err == nil {
			t.Errorf("case %d: invalid adaptive options accepted: %+v", i, opt)
		}
	}
}
