package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/stats"
)

// DefaultBatchSize is the accumulator merge granularity when
// Options.BatchSize is zero. Adaptive stopping decisions happen only at
// batch boundaries, so this value is part of an adaptive result's
// identity (and of its canonical fingerprint); fixed-trial results do
// not depend on it.
const DefaultBatchSize = 256

// Options control a Monte Carlo estimation run.
type Options struct {
	// Trials is the number of independent trials (required, >= 2). In
	// adaptive mode (TargetRelWidth > 0) it is instead the minimum trial
	// count before the stopping rule may fire, and may be left 0.
	Trials int
	// Horizon censors each trial at this many hours. 0 runs every trial
	// to data loss — only affordable when the configured MTTDL is not
	// astronomically beyond the fault scales.
	Horizon float64
	// Seed fixes the run's randomness; the same seed, config, and trial
	// count reproduce results exactly, regardless of parallelism.
	Seed uint64
	// Parallel is the worker count; 0 means GOMAXPROCS. Workers claim
	// whole batches, so Parallel is effectively clamped to the batch
	// count: for fixed runs with a defaulted BatchSize the granularity
	// shrinks to keep every worker busy (results are batch-size
	// invariant there), while adaptive runs and explicit BatchSize cap
	// useful workers at ceil(budget/BatchSize).
	Parallel int
	// Level is the confidence level for intervals, in (0,1); 0 defaults
	// to 0.95. Estimate rejects any other out-of-range value.
	Level float64

	// TargetRelWidth, when positive, switches the run to adaptive
	// (precision-targeted) mode: the run stops at the first batch
	// boundary where the stopping interval's relative half-width is at
	// or below this target — the LossProb Wilson interval when Horizon
	// is set, else the MTTDL Student-t interval over observed loss
	// times. Because the decision is evaluated only at deterministic
	// batch boundaries, over batches merged in index order, an adaptive
	// run is a pure function of (config, seed, target, MaxTrials,
	// BatchSize) — worker count never changes the answer.
	TargetRelWidth float64
	// MaxTrials caps an adaptive run's trial budget; 0 defaults to
	// 1<<20. Ignored in fixed-trial mode.
	MaxTrials int
	// BatchSize is the number of trials folded into one per-worker
	// accumulator between merges; 0 defaults to DefaultBatchSize. Fixed
	// trial runs are batch-size-invariant; adaptive runs stop only at
	// multiples of it.
	BatchSize int

	// Bias enables importance-sampled failure biasing for rare-event
	// runs: while any replica has an outstanding fault, every armed
	// fault hazard is multiplied by β, and each trial carries the
	// likelihood-ratio weight that corrects the estimate back to the
	// true measure. 0 (the default) runs plain Monte Carlo,
	// bit-identical to historical behavior. AutoBias asks the analytic
	// model to choose β from the configuration's regime; any finite
	// value >= 1 is used as β directly. Biased runs require a censoring
	// Horizon and estimate LossProb with the Horvitz–Thompson weighted
	// estimator; adaptive stopping then targets the weighted CI.
	Bias float64
}

// adaptive reports whether the sequential stopping rule is active.
func (o Options) adaptive() bool { return o.TargetRelWidth > 0 }

// budget returns the run's maximum trial count.
func (o Options) budget() int {
	if o.adaptive() {
		return o.MaxTrials
	}
	return o.Trials
}

func (o Options) withDefaults() Options {
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Level == 0 {
		o.Level = 0.95
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.adaptive() && o.MaxTrials == 0 {
		o.MaxTrials = 1 << 20
	}
	return o
}

// validate checks the result-shaping options after withDefaults.
func (o Options) validate() error {
	if o.Horizon < 0 || math.IsNaN(o.Horizon) {
		return fmt.Errorf("%w: horizon %v must be >= 0", ErrInvalidConfig, o.Horizon)
	}
	if math.IsNaN(o.Level) || o.Level <= 0 || o.Level >= 1 {
		return fmt.Errorf("%w: confidence level %v must be in (0,1)", ErrInvalidConfig, o.Level)
	}
	if math.IsNaN(o.TargetRelWidth) || o.TargetRelWidth < 0 || math.IsInf(o.TargetRelWidth, 1) {
		return fmt.Errorf("%w: target relative width %v must be a finite value >= 0", ErrInvalidConfig, o.TargetRelWidth)
	}
	if math.IsNaN(o.Bias) || math.IsInf(o.Bias, 0) || (o.Bias != 0 && o.Bias != AutoBias && o.Bias < 1) {
		return fmt.Errorf("%w: bias %v must be 0 (off), AutoBias, or a finite factor >= 1", ErrInvalidConfig, o.Bias)
	}
	if o.Bias != 0 && o.Horizon <= 0 {
		return fmt.Errorf("%w: bias requires a censoring horizon", ErrInvalidConfig)
	}
	if o.adaptive() {
		if o.MaxTrials < 2 {
			return fmt.Errorf("%w: %d max trials, need >= 2", ErrInvalidConfig, o.MaxTrials)
		}
		if o.Trials < 0 || o.Trials > o.MaxTrials {
			return fmt.Errorf("%w: minimum trials %d must be in [0, max trials %d]", ErrInvalidConfig, o.Trials, o.MaxTrials)
		}
		return nil
	}
	if o.Trials < 2 {
		return fmt.Errorf("%w: %d trials, need >= 2", ErrInvalidConfig, o.Trials)
	}
	return nil
}

// DoubleFaultMatrix counts loss events by (first fault, final fault)
// class — the empirical version of the paper's Figure 2.
type DoubleFaultMatrix struct {
	// Losses[first][final] counts losses whose fatal window was opened
	// by a `first`-class fault and closed by a `final`-class one.
	Losses [2][2]int
	// WOVByVis and WOVByLat count windows of vulnerability opened by
	// each class (the denominators for conditional loss probabilities).
	WOVByVis, WOVByLat int
}

// ConditionalLossProb returns the estimated probability that a window
// opened by `first` ends in loss completed by `final` — the Monte Carlo
// counterpart of eqs 3–6.
func (m DoubleFaultMatrix) ConditionalLossProb(first, final faults.Type) float64 {
	wov := m.WOVByVis
	if first == faults.Latent {
		wov = m.WOVByLat
	}
	if wov == 0 {
		return math.NaN()
	}
	return float64(m.Losses[first][final]) / float64(wov)
}

// Estimate is the outcome of a Monte Carlo run.
type Estimate struct {
	// MTTDL is the mean time to data loss in hours with its confidence
	// interval. With censoring (Horizon > 0 and censored trials
	// present), this is the Kaplan–Meier restricted mean, a lower bound
	// on the true MTTDL, and the interval degrades to the uncensored
	// subset's t-interval.
	MTTDL stats.Interval
	// LossProb is P(data loss within Horizon) with its Wilson interval.
	// Only meaningful when Horizon > 0.
	LossProb stats.Interval
	// Survival is the fitted Kaplan–Meier curve over the trials.
	Survival *stats.KaplanMeier
	// Trials and Censored count the run's outcomes. In adaptive mode
	// Trials is the realized count at the stopping boundary.
	Trials, Censored int
	// Stats aggregates event counts over all trials.
	Stats TrialStats
	// Matrix is the empirical Figure 2 double-fault matrix.
	Matrix DoubleFaultMatrix
	// Bias is the resolved failure-biasing factor β the run sampled
	// under: 0 for an unbiased run, the model-chosen value for
	// Options.Bias == AutoBias, the explicit factor otherwise.
	Bias float64
	// EffectiveSamples is the effective loss count (Σwy)²/Σ(wy)² of the
	// weighted loss indicator in a biased run — the equal-weight number
	// of observed losses carrying the same information. 0 for unbiased
	// runs.
	EffectiveSamples float64
	// LossProbCV is the control-variate refinement of LossProb in a
	// biased run: the Horvitz–Thompson estimate regression-adjusted
	// against the likelihood-ratio weight, whose expectation is exactly
	// 1 under the biased measure (stats.WeightedProportion.
	// ControlVariateCI). Asymptotically never wider than LossProb; a
	// diagnostic companion, not the primary estimate — LossProb drives
	// adaptive stopping and the wire encodings. Zero for unbiased runs.
	LossProbCV stats.Interval
}

// Progress is a point-in-time snapshot of a streaming estimation run,
// emitted by EstimateStream at batch boundaries. Snapshots are
// observational: consuming or ignoring them never changes the run's
// result.
type Progress struct {
	// Trials is the number of trials folded so far; Batches the number
	// of merged batches.
	Trials, Batches int
	// Losses and Censored split the folded trials by outcome.
	Losses, Censored int
	// MTTDL is the provisional Student-t interval over observed loss
	// times (zero until two losses have been seen).
	MTTDL stats.Interval
	// LossProb is the provisional Wilson interval; meaningful only for
	// horizon-censored runs.
	LossProb stats.Interval
	// RelWidth is the stopping criterion's current relative half-width
	// (+Inf while not yet estimable); TargetRelWidth echoes the target
	// (0 in fixed-trial mode).
	RelWidth, TargetRelWidth float64
	// Budget is the run's maximum trial count (Trials, or MaxTrials in
	// adaptive mode).
	Budget int
	// EffectiveSamples is the weighted estimator's effective loss count
	// so far; 0 in unbiased runs.
	EffectiveSamples float64
	// Final marks the last snapshot of a completed run.
	Final bool
}

// Runner executes Monte Carlo estimations of a configuration.
type Runner struct {
	cfg Config
	// specs caches cfg.ReplicaSpecs() so the per-trial hot path skips
	// the expansion.
	specs []ReplicaSpec
	// replay, when non-nil (NewReplayRunner), substitutes recorded
	// per-trial fault streams for the sampled fault processes. See
	// replay.go.
	replay *replayData
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, specs: cfg.ReplicaSpecs()}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// trialStreamLabel offsets trial indices into the derivation label
// space, keeping trial streams disjoint from other derived subsystems.
const trialStreamLabel = 0x517cc1b727220a95

// RunTrial executes one trial with the stream derived from (seed, index)
// and returns its result. Exposed for replaying individual trials.
func (r *Runner) RunTrial(seed, index uint64, horizon float64) TrialResult {
	src := rng.New(seed).Derive(index + trialStreamLabel)
	t := newTrial(&r.cfg, r.specs, src, nil)
	return t.run(horizon)
}

// Estimate runs opt.Trials independent trials and aggregates them.
func (r *Runner) Estimate(opt Options) (Estimate, error) {
	return r.EstimateContext(context.Background(), opt)
}

// EstimateContext is Estimate with cooperative cancellation: workers
// check ctx between trials, so a cancelled or timed-out run returns
// ctx's error promptly instead of completing the full trial budget.
// Results are identical to Estimate's for any run that completes —
// cancellation never changes the trial-to-stream mapping, only whether
// the run finishes.
func (r *Runner) EstimateContext(ctx context.Context, opt Options) (Estimate, error) {
	return r.EstimateStream(ctx, opt, nil)
}

// batchState is the shared coordination state of one streaming run.
type batchState struct {
	batchSize int
	budget    int
	// next is the atomic claim counter: workers take batch indices from
	// it instead of draining a pre-filled O(Trials) work channel.
	next atomic.Int64
	// stopAt is the first batch index workers must not start. It begins
	// at the full batch count and only shrinks, when the reducer's
	// stopping rule fires at a boundary.
	stopAt atomic.Int64
}

// bounds returns batch b's trial index range.
func (s *batchState) bounds(b int) (lo, hi int) {
	lo = b * s.batchSize
	hi = lo + s.batchSize
	if hi > s.budget {
		hi = s.budget
	}
	return lo, hi
}

// EstimateStream is the streaming estimation core: workers fold trials
// into per-batch accumulators which merge at deterministic batch
// boundaries, so memory is O(batch) rather than O(trials) and the run
// can be observed while it executes. Every other estimation entry point
// is a thin wrapper over it.
//
// sink, when non-nil, receives a Progress snapshot after each merged
// batch and a Final snapshot on completion, synchronously from the
// calling goroutine. When opt.TargetRelWidth is set the sequential
// stopping rule runs at each boundary (see Options.TargetRelWidth for
// the determinism contract).
func (r *Runner) EstimateStream(ctx context.Context, opt Options, sink func(Progress)) (Estimate, error) {
	batchSet := opt.BatchSize > 0
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return Estimate{}, err
	}
	if opt.Bias != 0 && r.cfg.HasHazard() {
		return Estimate{}, fmt.Errorf("%w: failure biasing is incompatible with hazard profiles (likelihood-ratio exposure assumes constant armed rates)", ErrInvalidConfig)
	}
	if err := r.validateReplay(opt); err != nil {
		return Estimate{}, err
	}
	// Resolve the biasing factor once, so workers, the stopping rule,
	// and the final Estimate all see the same effective β. An active
	// Bias — even one that resolves to β = 1 — switches the run to the
	// weighted estimator; only Bias == 0 is the historical path.
	if opt.Bias != 0 {
		opt.Bias = resolveBias(&r.cfg, opt.Horizon, opt.Bias)
	}
	// Batches are both the work-claim unit and the merge boundary, so a
	// small fixed run under the default batch size would idle most
	// workers (1000 trials / 256 = 4 claimable units). Fixed-trial
	// results are batch-size invariant (golden_test.go pins it), so
	// shrink the default granularity to keep every worker busy; explicit
	// BatchSize and adaptive runs — where the boundary is part of the
	// result's identity — are left alone.
	if !opt.adaptive() && !batchSet {
		if per := (opt.budget() + opt.Parallel - 1) / opt.Parallel; per < opt.BatchSize {
			opt.BatchSize = per
		}
	}
	// Telemetry is recorded only here on the reducer goroutine — the
	// worker trial loop below is untouched, so instrumentation cannot
	// perturb results or meaningfully cost the hot path.
	m := metricsPtr.Load()
	if m != nil {
		m.runs.Inc()
		if opt.adaptive() {
			m.runsAdaptive.Inc()
		}
		if opt.Bias != 0 {
			m.biasedRuns.Inc()
		}
		runStart := time.Now()
		defer func() { m.runSeconds.Observe(time.Since(runStart).Seconds()) }()
	}
	st := &batchState{batchSize: opt.BatchSize, budget: opt.budget()}
	numBatches := (st.budget + st.batchSize - 1) / st.batchSize
	st.stopAt.Store(int64(numBatches))
	// Clamp oversubscription: beyond one worker per batch (and never
	// more than one per trial) extra workers could not claim any work.
	if opt.Parallel > numBatches {
		opt.Parallel = numBatches
	}
	minTrials := opt.Trials
	if minTrials < 2 {
		minTrials = 2
	}

	results := make(chan *accumulator, opt.Parallel)
	pool := sync.Pool{New: func() any { return new(accumulator) }}
	done := ctx.Done()
	var wg sync.WaitGroup
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := rng.New(opt.Seed)
			var trialSrc rng.Source
			t := allocTrial(&r.cfg, r.specs, nil)
			t.setBiasFactor(opt.Bias)
			if r.replay != nil {
				t.replay = &replaySchedule{pinRepairs: r.replay.pinRepairs}
			}
			for {
				b := int(st.next.Add(1) - 1)
				if int64(b) >= st.stopAt.Load() {
					return
				}
				lo, hi := st.bounds(b)
				acc := pool.Get().(*accumulator)
				acc.reset()
				acc.batch = b
				acc.weighted = opt.Bias != 0
				for i := lo; i < hi; i++ {
					select {
					case <-done:
						return
					default:
					}
					base.DeriveInto(uint64(i)+trialStreamLabel, &trialSrc)
					if r.replay != nil {
						t.replay.events = r.replay.trials[i]
					}
					t.start(&trialSrc)
					acc.addTrial(t.run(opt.Horizon), opt.Horizon)
				}
				select {
				case results <- acc:
				case <-done:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// The reducer: merge batch accumulators in index order, deciding
	// stopping and emitting progress only at merged boundaries. Ranging
	// until the channel closes (rather than until the target batch
	// count) both reaps in-flight batches after an early stop and makes
	// worker exits — including cancellation — impossible to deadlock.
	var global accumulator
	global.weighted = opt.Bias != 0
	pending := make(map[int]*accumulator)
	folded := 0
	target := numBatches
	for acc := range results {
		if acc.batch >= target {
			pool.Put(acc)
			continue
		}
		pending[acc.batch] = acc
		for folded < target {
			nb, ok := pending[folded]
			if !ok {
				break
			}
			delete(pending, folded)
			batchTrials := nb.trials
			global.merge(nb)
			pool.Put(nb)
			folded++
			if m != nil {
				m.trials.Add(uint64(batchTrials))
				m.batches.Inc()
			}
			if opt.adaptive() && folded < target && global.trials >= minTrials {
				width := global.stopWidth(opt)
				if m != nil && !math.IsInf(width, 1) {
					m.relWidth.Observe(width)
				}
				if width <= opt.TargetRelWidth {
					target = folded
					st.stopAt.Store(int64(folded))
					if m != nil {
						m.stoppedEarly.Inc()
					}
				}
			}
			if sink != nil && folded < target {
				sink(global.snapshot(opt, folded, st.budget))
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Estimate{}, fmt.Errorf("sim: estimation aborted: %w", err)
	}
	if folded != target {
		return Estimate{}, fmt.Errorf("sim: internal: merged %d of %d batches", folded, target)
	}

	est, err := global.finalize(opt)
	if err != nil {
		return Estimate{}, err
	}
	if m != nil && opt.Bias != 0 {
		m.effSamples.Observe(est.EffectiveSamples)
	}
	if sink != nil {
		p := global.snapshot(opt, folded, st.budget)
		p.Final = true
		sink(p)
	}
	return est, nil
}
