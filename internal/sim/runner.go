package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Options control a Monte Carlo estimation run.
type Options struct {
	// Trials is the number of independent trials (required, >= 2).
	Trials int
	// Horizon censors each trial at this many hours. 0 runs every trial
	// to data loss — only affordable when the configured MTTDL is not
	// astronomically beyond the fault scales.
	Horizon float64
	// Seed fixes the run's randomness; the same seed, config, and trial
	// count reproduce results exactly, regardless of parallelism.
	Seed uint64
	// Parallel is the worker count; 0 means GOMAXPROCS.
	Parallel int
	// Level is the confidence level for intervals, in (0,1); 0 defaults
	// to 0.95. Estimate rejects any other out-of-range value.
	Level float64
}

func (o Options) withDefaults() Options {
	if o.Parallel <= 0 {
		o.Parallel = runtime.GOMAXPROCS(0)
	}
	if o.Level == 0 {
		o.Level = 0.95
	}
	return o
}

// DoubleFaultMatrix counts loss events by (first fault, final fault)
// class — the empirical version of the paper's Figure 2.
type DoubleFaultMatrix struct {
	// Losses[first][final] counts losses whose fatal window was opened
	// by a `first`-class fault and closed by a `final`-class one.
	Losses [2][2]int
	// WOVByVis and WOVByLat count windows of vulnerability opened by
	// each class (the denominators for conditional loss probabilities).
	WOVByVis, WOVByLat int
}

// ConditionalLossProb returns the estimated probability that a window
// opened by `first` ends in loss completed by `final` — the Monte Carlo
// counterpart of eqs 3–6.
func (m DoubleFaultMatrix) ConditionalLossProb(first, final faults.Type) float64 {
	wov := m.WOVByVis
	if first == faults.Latent {
		wov = m.WOVByLat
	}
	if wov == 0 {
		return math.NaN()
	}
	return float64(m.Losses[first][final]) / float64(wov)
}

// Estimate is the outcome of a Monte Carlo run.
type Estimate struct {
	// MTTDL is the mean time to data loss in hours with its confidence
	// interval. With censoring (Horizon > 0 and censored trials
	// present), this is the Kaplan–Meier restricted mean, a lower bound
	// on the true MTTDL, and the interval degrades to the uncensored
	// subset's t-interval.
	MTTDL stats.Interval
	// LossProb is P(data loss within Horizon) with its Wilson interval.
	// Only meaningful when Horizon > 0.
	LossProb stats.Interval
	// Survival is the fitted Kaplan–Meier curve over the trials.
	Survival *stats.KaplanMeier
	// Trials and Censored count the run's outcomes.
	Trials, Censored int
	// Stats aggregates event counts over all trials.
	Stats TrialStats
	// Matrix is the empirical Figure 2 double-fault matrix.
	Matrix DoubleFaultMatrix
}

// Runner executes Monte Carlo estimations of a configuration.
type Runner struct {
	cfg Config
	// specs caches cfg.ReplicaSpecs() so the per-trial hot path skips
	// the expansion.
	specs []ReplicaSpec
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, specs: cfg.ReplicaSpecs()}, nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// RunTrial executes one trial with the stream derived from (seed, index)
// and returns its result. Exposed for replaying individual trials.
func (r *Runner) RunTrial(seed, index uint64, horizon float64) TrialResult {
	src := rng.New(seed).Derive(index + 0x517cc1b727220a95)
	t := newTrial(&r.cfg, r.specs, src, nil)
	return t.run(horizon)
}

// Estimate runs opt.Trials independent trials and aggregates them.
func (r *Runner) Estimate(opt Options) (Estimate, error) {
	return r.EstimateContext(context.Background(), opt)
}

// EstimateContext is Estimate with cooperative cancellation: workers
// check ctx between trials, so a cancelled or timed-out run returns
// ctx's error promptly instead of completing the full trial budget.
// Results are identical to Estimate's for any run that completes —
// cancellation never changes the trial-to-stream mapping, only whether
// the run finishes.
func (r *Runner) EstimateContext(ctx context.Context, opt Options) (Estimate, error) {
	opt = opt.withDefaults()
	if opt.Trials < 2 {
		return Estimate{}, fmt.Errorf("%w: %d trials, need >= 2", ErrInvalidConfig, opt.Trials)
	}
	if opt.Horizon < 0 || math.IsNaN(opt.Horizon) {
		return Estimate{}, fmt.Errorf("%w: horizon %v must be >= 0", ErrInvalidConfig, opt.Horizon)
	}
	if math.IsNaN(opt.Level) || opt.Level <= 0 || opt.Level >= 1 {
		return Estimate{}, fmt.Errorf("%w: confidence level %v must be in (0,1)", ErrInvalidConfig, opt.Level)
	}

	results := make([]TrialResult, opt.Trials)
	var wg sync.WaitGroup
	next := make(chan int, opt.Trials)
	for i := 0; i < opt.Trials; i++ {
		next <- i
	}
	close(next)
	done := ctx.Done()
	for w := 0; w < opt.Parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				select {
				case <-done:
					return
				default:
				}
				results[i] = r.RunTrial(opt.Seed, uint64(i), opt.Horizon)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Estimate{}, fmt.Errorf("sim: estimation aborted: %w", err)
	}

	return aggregate(results, opt)
}

// aggregate reduces trial results into an Estimate.
func aggregate(results []TrialResult, opt Options) (Estimate, error) {
	var est Estimate
	est.Trials = len(results)
	obs := make([]stats.Observation, 0, len(results))
	var lossTimes stats.Running
	var lossWithinHorizon stats.Proportion
	for _, res := range results {
		est.Stats.add(res.Stats)
		obs = append(obs, stats.Observation{Time: res.Time, Event: res.Lost})
		if res.Lost {
			lossTimes.Add(res.Time)
			est.Matrix.Losses[res.FirstFault][res.FinalFault]++
		} else {
			est.Censored++
		}
		if opt.Horizon > 0 {
			lossWithinHorizon.Add(res.Lost)
		}
	}
	est.Matrix.WOVByVis = est.Stats.WOVOpenedByVis
	est.Matrix.WOVByLat = est.Stats.WOVOpenedByLat

	km, err := stats.NewKaplanMeier(obs)
	if err != nil {
		return Estimate{}, fmt.Errorf("sim: fitting survival curve: %w", err)
	}
	est.Survival = km

	switch {
	case est.Censored == 0:
		iv, err := lossTimes.MeanCI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: MTTDL interval: %w", err)
		}
		est.MTTDL = iv
	case lossTimes.N() >= 2:
		// Censored run: report the restricted mean (a defensible lower
		// bound) with the uncensored subset's spread as a rough
		// interval.
		rm := km.RestrictedMean(opt.Horizon)
		iv, err := lossTimes.MeanCI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: MTTDL interval: %w", err)
		}
		half := iv.HalfWidth()
		est.MTTDL = stats.Interval{Point: rm, Lo: rm - half, Hi: rm + half, Level: opt.Level}
	default:
		// (Almost) nothing was lost before the horizon: the restricted
		// mean is essentially the horizon and carries no spread.
		rm := km.RestrictedMean(opt.Horizon)
		est.MTTDL = stats.Interval{Point: rm, Lo: rm, Hi: rm, Level: opt.Level}
	}

	if opt.Horizon > 0 {
		iv, err := lossWithinHorizon.CI(opt.Level)
		if err != nil {
			return Estimate{}, fmt.Errorf("sim: loss probability interval: %w", err)
		}
		est.LossProb = iv
	}
	return est, nil
}
