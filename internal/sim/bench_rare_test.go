package sim

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/scrub"
)

// rareBenchMirror is the rare-event reference config: a 2-replica
// mirror with 1000-hour visible faults and 1-hour automated repair,
// censored at 1000 hours, so P(loss) ≈ 2e-3 — rare enough that naive
// Monte Carlo needs tens of thousands of trials for a tight CI, common
// enough that the naive arm can still reach the target inside the
// budget and the comparison is measured, not extrapolated.
func rareBenchMirror() Config {
	rep, err := repair.Automated(1, 1, 0)
	if err != nil {
		panic(err)
	}
	return Config{
		Replicas:    2,
		VisibleMean: 1000,
		LatentMean:  math.Inf(1),
		Scrub:       scrub.None{},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
}

// RareBenchArtifact is the schema of BENCH_rare.json: what the
// importance-sampling fast path buys at equal CI width, published by CI
// alongside BENCH_sim.json.
type RareBenchArtifact struct {
	Bench             string  `json:"bench"`
	TargetRelWidth    float64 `json:"target_rel_width"`
	Beta              float64 `json:"beta"`
	NaiveTrials       int     `json:"naive_trials"`
	BiasedTrials      int     `json:"biased_trials"`
	TrialsRatio       float64 `json:"trials_ratio"`
	NaiveLossProb     float64 `json:"naive_loss_prob"`
	BiasedLossProb    float64 `json:"biased_loss_prob"`
	NaiveRelWidth     float64 `json:"naive_rel_width"`
	BiasedRelWidth    float64 `json:"biased_rel_width"`
	VarianceReduction float64 `json:"variance_reduction"`
	EffectiveSamples  float64 `json:"effective_samples"`
	CVLossProb        float64 `json:"cv_loss_prob"`
	CVRelWidth        float64 `json:"cv_rel_width"`
	GoMaxProcs        int     `json:"gomaxprocs"`
}

// relWidth returns the interval's relative half-width.
func relWidth(lo, hi, point float64) float64 {
	if point <= 0 {
		return math.Inf(1)
	}
	return (hi - lo) / 2 / point
}

// TestBenchArtifactRare runs the same rare-event estimation twice —
// plain Monte Carlo and auto-biased importance sampling — with one
// precision target, and measures the trials each needed. This is the
// tentpole's acceptance check: the biased run must reach the target CI
// width in at least 10x fewer trials. When BENCH_RARE_OUT is set the
// measurement is written as BENCH_rare.json for CI to publish.
func TestBenchArtifactRare(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark artifact is not a -short test")
	}
	cfg := rareBenchMirror()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		horizon   = 1000.0
		targetRel = 0.15
		batch     = 512
	)
	base := Options{
		Seed:           3,
		Horizon:        horizon,
		Trials:         batch,
		MaxTrials:      1 << 18,
		BatchSize:      batch,
		TargetRelWidth: targetRel,
	}

	naiveOpt := base
	naive, err := r.Estimate(naiveOpt)
	if err != nil {
		t.Fatal(err)
	}
	biasedOpt := base
	biasedOpt.Bias = AutoBias
	biased, err := r.Estimate(biasedOpt)
	if err != nil {
		t.Fatal(err)
	}

	if biased.Trials >= biasedOpt.MaxTrials {
		t.Fatalf("biased run exhausted its %d-trial budget without reaching the %.0f%% target", biasedOpt.MaxTrials, 100*targetRel)
	}
	nw := relWidth(naive.LossProb.Lo, naive.LossProb.Hi, naive.LossProb.Point)
	bw := relWidth(biased.LossProb.Lo, biased.LossProb.Hi, biased.LossProb.Point)
	cw := relWidth(biased.LossProbCV.Lo, biased.LossProbCV.Hi, biased.LossProbCV.Point)

	// The control-variate refinement must agree with the primary
	// weighted estimate and not be looser (it is asymptotically never
	// wider; allow slack for finite-sample wobble).
	if biased.LossProbCV.Point <= 0 {
		t.Error("biased run did not produce a control-variate estimate")
	}
	if cw > bw*1.05 {
		t.Errorf("control-variate rel width %.3f is looser than the plain weighted %.3f", cw, bw)
	}

	// Trials at equal width: both runs stopped at the first batch
	// boundary meeting the same relative-width target, so realized trial
	// counts compare directly. (If the naive arm capped out first, the
	// ratio understates the true gap — still a valid floor.)
	ratio := float64(naive.Trials) / float64(biased.Trials)
	if ratio < 10 {
		t.Errorf("biased run used %d trials vs naive %d (%.1fx) to reach rel width %.2f vs %.2f; want >= 10x fewer",
			biased.Trials, naive.Trials, ratio, bw, nw)
	}

	// The two estimates must agree within their combined half-widths —
	// the unbiasedness cross-check at bench scale.
	halfN := (naive.LossProb.Hi - naive.LossProb.Lo) / 2
	halfB := (biased.LossProb.Hi - biased.LossProb.Lo) / 2
	if diff := math.Abs(naive.LossProb.Point - biased.LossProb.Point); diff > halfN+halfB {
		t.Errorf("naive %.3g and biased %.3g disagree by %.3g, more than combined half-widths %.3g",
			naive.LossProb.Point, biased.LossProb.Point, diff, halfN+halfB)
	}

	// Per-trial variance reduction: (half²·n) is proportional to the
	// per-trial estimator variance, so the ratio is the classic VRF.
	vrf := (halfN * halfN * float64(naive.Trials)) / (halfB * halfB * float64(biased.Trials))

	art := RareBenchArtifact{
		Bench:             "sim_rare_event_importance_sampling",
		TargetRelWidth:    targetRel,
		Beta:              biased.Bias,
		NaiveTrials:       naive.Trials,
		BiasedTrials:      biased.Trials,
		TrialsRatio:       ratio,
		NaiveLossProb:     naive.LossProb.Point,
		BiasedLossProb:    biased.LossProb.Point,
		NaiveRelWidth:     nw,
		BiasedRelWidth:    bw,
		VarianceReduction: vrf,
		EffectiveSamples:  biased.EffectiveSamples,
		CVLossProb:        biased.LossProbCV.Point,
		CVRelWidth:        cw,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
	}
	out := os.Getenv("BENCH_RARE_OUT")
	if out == "" {
		t.Logf("naive %d trials (rel width %.3f) vs biased %d trials (rel width %.3f, β=%.1f, ESS %.1f): %.1fx fewer trials, VRF %.1f — set BENCH_RARE_OUT to write the artifact",
			naive.Trials, nw, biased.Trials, bw, biased.Bias, biased.EffectiveSamples, ratio, vrf)
		return
	}
	bts, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(bts, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.1fx fewer trials at rel width %.2f, VRF %.1f", out, ratio, targetRel, vrf)
}
