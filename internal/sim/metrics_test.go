package sim

import (
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// TestMetricsDoNotChangeResults is the determinism golden test for the
// telemetry layer: the same (config, options) estimated with metrics
// disabled and enabled produces a deeply equal Estimate. Instrumentation
// is recorded on the reducer at batch boundaries only, so it must be
// purely observational.
func TestMetricsDoNotChangeResults(t *testing.T) {
	cfg := benchMirror()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]Options{
		"fixed":    {Trials: 600, Seed: 9, Horizon: 20000, Parallel: 2},
		"adaptive": {TargetRelWidth: 0.2, MaxTrials: 4000, Seed: 9, Horizon: 20000, Parallel: 2},
	}
	for name, opt := range cases {
		DisableMetrics()
		plain, err := r.Estimate(opt)
		if err != nil {
			t.Fatalf("%s without metrics: %v", name, err)
		}
		EnableMetrics(telemetry.NewRegistry())
		instrumented, err := r.Estimate(opt)
		DisableMetrics()
		if err != nil {
			t.Fatalf("%s with metrics: %v", name, err)
		}
		if !reflect.DeepEqual(plain, instrumented) {
			t.Errorf("%s: estimate changed when telemetry was enabled:\n%+v\nvs\n%+v", name, plain, instrumented)
		}
	}
}

// TestMetricsAccounting checks the recorded counters agree with the
// run's realized outcome: every trial and batch is counted exactly once,
// and the adaptive early-stop path is visible.
func TestMetricsAccounting(t *testing.T) {
	reg := telemetry.NewRegistry()
	EnableMetrics(reg)
	t.Cleanup(DisableMetrics)
	m := metricsPtr.Load()

	cfg := benchMirror()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(Options{Trials: 600, Seed: 4, Horizon: 20000, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.trials.Value(); got != uint64(est.Trials) {
		t.Errorf("trials counter = %d, want the run's %d", got, est.Trials)
	}
	if m.batches.Value() < 1 {
		t.Error("no batches counted")
	}
	if got := m.runs.Value(); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
	if got := m.runsAdaptive.Value(); got != 0 {
		t.Errorf("adaptive runs counter = %d after a fixed run, want 0", got)
	}
	if _, _, count := m.runSeconds.Snapshot(); count != 1 {
		t.Errorf("run duration observations = %d, want 1", count)
	}

	// A loose adaptive target on a loss-heavy config stops well before
	// MaxTrials, exercising the early-stop counter and the CI-width
	// trajectory histogram.
	adapted, err := r.Estimate(Options{TargetRelWidth: 0.3, MaxTrials: 1 << 16, Seed: 4, Horizon: 20000, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if adapted.Trials >= 1<<16 {
		t.Fatalf("adaptive run used the full budget (%d trials); pick a looser target", adapted.Trials)
	}
	if got := m.runsAdaptive.Value(); got != 1 {
		t.Errorf("adaptive runs counter = %d, want 1", got)
	}
	if got := m.stoppedEarly.Value(); got != 1 {
		t.Errorf("stopped-early counter = %d, want 1", got)
	}
	if _, _, widths := m.relWidth.Snapshot(); widths < 1 {
		t.Error("adaptive run recorded no CI-width observations")
	}
	if got := m.trials.Value(); got != uint64(est.Trials+adapted.Trials) {
		t.Errorf("trials counter = %d, want %d across both runs", got, est.Trials+adapted.Trials)
	}
}
