package sim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/telemetry"
)

// ObsBenchArtifact is the schema of BENCH_observability.json: the
// instrumentation-overhead measurement CI publishes alongside the other
// bench artifacts. The headline number is the trial hot path with
// metrics enabled versus disabled — the PR's <= 3% overhead budget.
// Telemetry records on the reducer at batch boundaries, never in the
// per-trial loop, so the ratio should sit at 1.0 modulo noise.
type ObsBenchArtifact struct {
	Bench                  string  `json:"bench"`
	PlainNsPerTrial        int64   `json:"plain_ns_per_trial"`
	InstrumentedNsPerTrial int64   `json:"instrumented_ns_per_trial"`
	HotPathOverhead        float64 `json:"hot_path_overhead"`
	PlainEstimateNsPerOp   int64   `json:"plain_estimate_ns_per_op"`
	InstrEstimateNsPerOp   int64   `json:"instrumented_estimate_ns_per_op"`
	EstimateOverhead       float64 `json:"estimate_overhead"`
	GoMaxProcs             int     `json:"gomaxprocs"`
}

// measurePair benchmarks f with metrics disabled and enabled in
// alternating rounds, keeping each side's fastest run. Interleaving
// means a machine-load swing hits both sides rather than biasing
// whichever side happened to run during the spike, and the minimum
// estimates the noise-free cost better than the mean.
func measurePair(f func(b *testing.B)) (plain, instrumented int64) {
	for i := 0; i < 5; i++ {
		DisableMetrics()
		if ns := testing.Benchmark(f).NsPerOp(); plain == 0 || ns < plain {
			plain = ns
		}
		EnableMetrics(telemetry.NewRegistry())
		if ns := testing.Benchmark(f).NsPerOp(); instrumented == 0 || ns < instrumented {
			instrumented = ns
		}
	}
	DisableMetrics()
	return plain, instrumented
}

// benchEstimate is a full streaming estimation, the path that actually
// contains the (batch-boundary) instrumentation.
func benchEstimate(b *testing.B) {
	cfg := benchMirror()
	r, err := NewRunner(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(Options{Trials: 2000, Seed: uint64(i) + 1, Horizon: 20000, Parallel: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchArtifactObservability measures instrumentation overhead and,
// when BENCH_OBS_OUT is set, writes BENCH_observability.json. Without
// the env var it still gates the acceptance criterion: enabling metrics
// must not slow the per-trial hot path by more than 3%.
func TestBenchArtifactObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark artifact is not a -short test")
	}
	out := os.Getenv("BENCH_OBS_OUT")
	t.Cleanup(DisableMetrics)
	plainHot, instrHot := measurePair(BenchmarkTrialHotPath)
	plainEst, instrEst := measurePair(benchEstimate)

	hotOverhead := float64(instrHot) / float64(plainHot)
	estOverhead := float64(instrEst) / float64(plainEst)
	// The 3% acceptance gate holds only when the benchmark owns the
	// machine — the dedicated CI artifact step (BENCH_OBS_OUT set). Under
	// a plain `go test ./...` other packages' tests run concurrently and
	// load noise swamps a 3% signal, so gate loosely there: still enough
	// to catch instrumentation leaking into the per-trial loop (the hot
	// path contains zero telemetry code, so its true ratio is 1.0).
	hotGate, estGate := 1.25, 1.30
	if out != "" {
		hotGate, estGate = 1.03, 1.15
	}
	if hotOverhead > hotGate {
		t.Errorf("trial hot path overhead = %.3fx (%d -> %d ns/trial), want <= %.2fx",
			hotOverhead, plainHot, instrHot, hotGate)
	}
	// The estimate path contains the actual recording (one counter add
	// and histogram observe per ~BatchSize trials); its gate is looser —
	// it measures whole parallel runs, so run-to-run noise dwarfs the
	// instrumentation.
	if estOverhead > estGate {
		t.Errorf("estimate overhead = %.3fx (%d -> %d ns/op), want <= %.2fx", estOverhead, plainEst, instrEst, estGate)
	}

	art := ObsBenchArtifact{
		Bench:                  "sim_instrumentation_overhead",
		PlainNsPerTrial:        plainHot,
		InstrumentedNsPerTrial: instrHot,
		HotPathOverhead:        hotOverhead,
		PlainEstimateNsPerOp:   plainEst,
		InstrEstimateNsPerOp:   instrEst,
		EstimateOverhead:       estOverhead,
		GoMaxProcs:             runtime.GOMAXPROCS(0),
	}
	if out == "" {
		t.Logf("hot path %.3fx (%d -> %d ns/trial), estimate %.3fx — set BENCH_OBS_OUT to write the artifact",
			hotOverhead, plainHot, instrHot, estOverhead)
		return
	}
	bts, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(bts, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: hot path %.3fx, estimate %.3fx", out, hotOverhead, estOverhead)
}
