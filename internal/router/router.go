package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config sizes a Router.
type Config struct {
	// Workers are the ltsimd base URLs the ring hashes over. Names
	// default to the URL stripped of its scheme.
	Workers []Worker
	// VNodes is the virtual-node count per worker; 0 means 64.
	VNodes int
	// LoadFactor is the bounded-load ceiling multiplier; 0 means 1.25.
	LoadFactor float64
	// ProbeInterval paces the health prober; 0 means 2s. ProbeTimeout
	// bounds one probe; 0 means 1s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// SweepConcurrency bounds concurrently dispatched sweep points; 0
	// means 8 per worker.
	SweepConcurrency int
	// Client performs upstream requests; nil uses a default with no
	// overall timeout (sweep responses stream for as long as the
	// simulations take; per-probe timeouts are separate).
	Client *http.Client
	// Logger receives lifecycle events (ejections, re-admissions); nil
	// discards. Metrics is the registry GET /metrics exposes; nil
	// creates a fresh one.
	Logger  *slog.Logger
	Metrics *telemetry.Registry
}

// Worker names one ltsimd instance.
type Worker struct {
	Name string
	URL  string
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 1.25
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.SweepConcurrency <= 0 {
		c.SweepConcurrency = 8 * len(c.Workers)
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// flight is one in-flight upstream computation; duplicate keys wait on
// done and replay the owner's outcome — the router half of cluster-wide
// single-flight (the worker's shard scheduler is the other half, for
// duplicates that slip past the router, e.g. from clients hitting
// workers directly).
type flight struct {
	done chan struct{}
	res  *upstream
	err  error
}

// upstream is one worker response, buffered for replay to coalesced
// waiters.
type upstream struct {
	node    string
	status  int
	cache   string // the worker's X-Ltsimd-Cache disposition
	key     string // the worker's X-Ltsimd-Key (its cache key, policy folded in)
	body    []byte
	retried int
}

// Router is the stateless cluster front. Create with New, serve
// Handler, stop with Close.
type Router struct {
	cfg    Config
	ring   *Ring
	mux    *http.ServeMux
	client *http.Client
	logger *slog.Logger
	start  time.Time

	flightMu sync.Mutex
	flights  map[string]*flight

	probeStop   context.CancelFunc
	probeDone   chan struct{}
	coalesced   atomic.Uint64
	retries     atomic.Uint64
	ejections   atomic.Uint64
	readmits    atomic.Uint64
	routedTotal atomic.Uint64

	metrics *routerMetrics
}

type routerMetrics struct {
	reg       *telemetry.Registry
	requests  *telemetry.CounterVec // node
	coalesced *telemetry.Counter
	retries   *telemetry.Counter
	ejections *telemetry.Counter
	readmits  *telemetry.Counter
}

// New builds a started router (its health prober is running).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	nodes := make([]*Node, 0, len(cfg.Workers))
	for _, w := range cfg.Workers {
		url := strings.TrimSuffix(w.URL, "/")
		if url == "" {
			return nil, errors.New("router: worker URL must not be empty")
		}
		name := w.Name
		if name == "" {
			name = strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://")
		}
		nodes = append(nodes, &Node{Name: name, URL: url})
	}
	ring, err := NewRing(nodes, cfg.VNodes, cfg.LoadFactor)
	if err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		mux:       http.NewServeMux(),
		client:    cfg.Client,
		logger:    cfg.Logger,
		start:     time.Now(),
		flights:   make(map[string]*flight),
		probeDone: make(chan struct{}),
	}
	r.metrics = &routerMetrics{
		reg: reg,
		requests: reg.CounterVec("ltsimr_requests_total",
			"Upstream requests dispatched, by worker.", "node"),
		coalesced: reg.Counter("ltsimr_coalesced_total",
			"Requests that joined an in-flight duplicate at the router instead of dispatching."),
		retries: reg.Counter("ltsimr_retries_total",
			"Dispatches retried on a successor node after a worker failed mid-request."),
		ejections: reg.Counter("ltsimr_ejections_total",
			"Workers ejected from the ring (probe failure or request-time death)."),
		readmits: reg.Counter("ltsimr_readmissions_total",
			"Ejected workers re-admitted by a succeeding health probe."),
	}
	reg.GaugeFunc("ltsimr_nodes_healthy", "Workers currently admitted to the ring.", func() float64 {
		return float64(r.ring.HealthyCount())
	})
	reg.GaugeFunc("ltsimr_nodes_total", "Workers configured in the ring.", func() float64 {
		return float64(len(r.ring.Nodes()))
	})
	reg.GaugeFunc("ltsimr_uptime_seconds", "Seconds since the router started.", func() float64 {
		return time.Since(r.start).Seconds()
	})
	inflight := reg.GaugeVec("ltsimr_node_inflight", "In-flight upstream requests per worker.", "node")
	for _, n := range ring.Nodes() {
		node := n
		inflight.Func(func() float64 { return float64(node.Inflight()) }, node.Name)
	}

	r.mux.HandleFunc("POST /estimate", r.handleEstimate)
	r.mux.HandleFunc("POST /sweep", r.handleSweep)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /stats", r.handleStats)
	r.mux.Handle("GET /metrics", reg.Handler())

	probeCtx, cancel := context.WithCancel(context.Background())
	r.probeStop = cancel
	go r.probe(probeCtx)
	return r, nil
}

// Handler returns the HTTP surface.
func (r *Router) Handler() http.Handler { return r.mux }

// Ring exposes the ring for stats and tests.
func (r *Router) Ring() *Ring { return r.ring }

// Close stops the health prober.
func (r *Router) Close() {
	r.probeStop()
	<-r.probeDone
}

// probe is the health loop: a failing /healthz ejects a worker from the
// ring, a succeeding one re-admits it. An ejected worker keeps its ring
// positions, so re-admission restores the same key ownership (and the
// warm cache behind it).
func (r *Router) probe(ctx context.Context) {
	defer close(r.probeDone)
	tick := time.NewTicker(r.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for _, n := range r.ring.Nodes() {
			ok := r.probeOnce(ctx, n)
			switch {
			case ok && n.setHealthy(true):
				r.readmits.Add(1)
				r.metrics.readmits.Inc()
				r.logger.Info("worker re-admitted", "node", n.Name, "url", n.URL)
			case !ok && n.setHealthy(false):
				r.ejections.Add(1)
				r.metrics.ejections.Inc()
				r.logger.Warn("worker ejected by health probe", "node", n.Name, "url", n.URL)
			}
		}
	}
}

// probeOnce asks one worker's /healthz.
func (r *Router) probeOnce(ctx context.Context, n *Node) bool {
	ctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// writeError emits a JSON error body, mirroring the worker's shape.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// routingKey fingerprints a request for ring placement and coalescing.
// The router applies no request policy (workers fold their own
// -target-rel/-max-trials/-bias defaults in before caching), so this key
// can differ from the worker's cache key — it only needs to be
// consistent: identical requests hash identically, so they land on the
// same worker and coalesce with each other.
func routingKey(req service.EstimateRequest) (string, error) {
	cfg, opt, err := req.Build()
	if err != nil {
		return "", err
	}
	return sim.Fingerprint(cfg, opt)
}

// dispatch sends body to the worker owning key, retrying on the ring
// successor when a worker dies mid-request (transport error ⇒ immediate
// ejection; the prober re-admits it when it recovers). HTTP error
// statuses are the worker *answering* — backpressure 503s and 4xxs pass
// through untouched for the client's own retry policy.
func (r *Router) dispatch(ctx context.Context, key string, body []byte) (*upstream, error) {
	var exclude []string
	for {
		node, err := r.ring.Pick(key, exclude...)
		if err != nil {
			return nil, err
		}
		node.acquire()
		r.routedTotal.Add(1)
		r.metrics.requests.With(node.Name).Inc()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.URL+"/estimate", bytes.NewReader(body))
		if err != nil {
			node.release()
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			node.release()
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			// The worker died under us: eject it and retry the request on
			// the ring successor.
			if node.setHealthy(false) {
				r.ejections.Add(1)
				r.metrics.ejections.Inc()
				r.logger.Warn("worker ejected on request failure", "node", node.Name, "err", err.Error())
			}
			exclude = append(exclude, node.Name)
			r.retries.Add(1)
			r.metrics.retries.Inc()
			continue
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		node.release()
		if err != nil {
			// Died mid-body: same ejection + successor retry. The
			// successor recomputes (or disk-replays) deterministically, so
			// the retried answer is the same bytes the dead worker would
			// have sent.
			if node.setHealthy(false) {
				r.ejections.Add(1)
				r.metrics.ejections.Inc()
				r.logger.Warn("worker ejected mid-response", "node", node.Name, "err", err.Error())
			}
			exclude = append(exclude, node.Name)
			r.retries.Add(1)
			r.metrics.retries.Inc()
			continue
		}
		return &upstream{
			node:    node.Name,
			status:  resp.StatusCode,
			cache:   resp.Header.Get("X-Ltsimd-Cache"),
			key:     resp.Header.Get("X-Ltsimd-Key"),
			body:    payload,
			retried: len(exclude),
		}, nil
	}
}

// estimateOnce runs one non-progress estimate through the cluster-wide
// single-flight table: the first holder of a key dispatches, duplicates
// wait and replay its buffered outcome.
func (r *Router) estimateOnce(ctx context.Context, key string, body []byte) (*upstream, bool, error) {
	r.flightMu.Lock()
	if f, dup := r.flights[key]; dup {
		r.flightMu.Unlock()
		r.coalesced.Add(1)
		r.metrics.coalesced.Inc()
		select {
		case <-f.done:
			return f.res, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	r.flights[key] = f
	r.flightMu.Unlock()

	f.res, f.err = r.dispatch(ctx, key, body)
	r.flightMu.Lock()
	delete(r.flights, key)
	r.flightMu.Unlock()
	close(f.done)
	return f.res, false, f.err
}

// handleEstimate proxies one estimate to the worker owning its
// fingerprint. Duplicate in-flight keys coalesce at the router before
// dispatch (one upstream request, everyone replays its bytes, the
// followers marked X-Ltsimd-Cache: dedup). Progress-streamed requests
// are routed by the same key but proxied straight through — a stream
// cannot be buffered for replay.
func (r *Router) handleEstimate(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var er service.EstimateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&er); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	key, err := routingKey(er)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if er.Progress {
		r.proxyStream(w, req.Context(), key, body)
		return
	}
	res, joined, err := r.estimateOnce(req.Context(), key, body)
	if err != nil {
		writeError(w, upstreamStatus(err), err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Ltsimr-Node", res.node)
	if res.key != "" {
		h.Set("X-Ltsimd-Key", res.key)
	}
	disp := res.cache
	if joined {
		disp = "dedup"
	}
	if disp != "" {
		h.Set("X-Ltsimd-Cache", disp)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// upstreamStatus maps a dispatch error onto a response status.
func upstreamStatus(err error) int {
	switch {
	case errors.Is(err, ErrNoHealthyNodes):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}

// proxyStream forwards a progress-streamed estimate and relays the
// NDJSON frames as they arrive. Worker death before the first byte
// retries on the successor; after frames have flowed the stream just
// ends (the client re-requests and hits the successor's cache).
func (r *Router) proxyStream(w http.ResponseWriter, ctx context.Context, key string, body []byte) {
	var exclude []string
	for {
		node, err := r.ring.Pick(key, exclude...)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		node.acquire()
		r.metrics.requests.With(node.Name).Inc()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, node.URL+"/estimate", bytes.NewReader(body))
		if err != nil {
			node.release()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			node.release()
			if ctx.Err() != nil {
				return
			}
			if node.setHealthy(false) {
				r.ejections.Add(1)
				r.metrics.ejections.Inc()
			}
			exclude = append(exclude, node.Name)
			r.retries.Add(1)
			r.metrics.retries.Inc()
			continue
		}
		h := w.Header()
		for _, name := range []string{"Content-Type", "X-Ltsimd-Key", "X-Ltsimd-Cache"} {
			if v := resp.Header.Get(name); v != "" {
				h.Set(name, v)
			}
		}
		h.Set("X-Ltsimr-Node", node.Name)
		w.WriteHeader(resp.StatusCode)
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 32*1024)
		for {
			n, err := resp.Body.Read(buf)
			if n > 0 {
				w.Write(buf[:n])
				if flusher != nil {
					flusher.Flush()
				}
			}
			if err != nil {
				break
			}
		}
		resp.Body.Close()
		node.release()
		return
	}
}

// handleSweep fans a batch across the cluster: scenario documents are
// expanded exactly once here at the router, every request is
// fingerprinted, identical fingerprints dedupe batch-wide, and each
// unique key dispatches to the worker that owns it (joining any
// already-in-flight duplicate cluster-wide). Lines stream back in
// completion order with per-point node attribution; the summary
// aggregates worker cache outcomes (memory and disk tiers).
func (r *Router) handleSweep(w http.ResponseWriter, req *http.Request) {
	var sreq service.SweepRequest
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if sreq.Scenario != nil {
		if len(sreq.Requests) > 0 {
			writeError(w, http.StatusBadRequest, errors.New("sweep takes requests or a scenario, not both"))
			return
		}
		points, err := scenario.Expand(*sreq.Scenario)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		sreq.Requests = make([]service.EstimateRequest, len(points))
		for i, pt := range points {
			sreq.Requests[i] = pt.Request
		}
	}
	if len(sreq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("sweep needs at least one request"))
		return
	}
	if len(sreq.Requests) > scenario.MaxPoints {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d requests exceeds the %d limit", len(sreq.Requests), scenario.MaxPoints))
		return
	}
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line service.SweepLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary := service.SweepLine{Summary: true, Requested: len(sreq.Requests)}

	// Fingerprint across cores (the same CPU-bound resolve the worker
	// sweep path parallelizes), then group serially.
	type resolution struct {
		key  string
		body []byte
		err  error
	}
	resolutions := make([]resolution, len(sreq.Requests))
	var wg sync.WaitGroup
	var next atomic.Int64
	for worker := 0; worker < min(runtime.GOMAXPROCS(0), len(sreq.Requests)); worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sreq.Requests) {
					return
				}
				res := &resolutions[i]
				res.key, res.err = routingKey(sreq.Requests[i])
				if res.err == nil {
					res.body, res.err = json.Marshal(sreq.Requests[i])
				}
			}
		}()
	}
	wg.Wait()

	type group struct {
		key     string
		body    []byte
		indices []int
	}
	groups := make(map[string]*group)
	var order []*group
	for i, res := range resolutions {
		if res.err != nil {
			summary.Errors++
			emit(service.SweepLine{Index: i, Error: res.err.Error()})
			continue
		}
		g, ok := groups[res.key]
		if !ok {
			g = &group{key: res.key, body: res.body}
			groups[res.key] = g
			order = append(order, g)
		} else {
			summary.Deduped++
		}
		g.indices = append(g.indices, i)
	}

	type outcome struct {
		g   *group
		res *upstream
		err error
	}
	results := make(chan outcome)
	var nextGroup atomic.Int64
	for worker := 0; worker < min(len(order), r.cfg.SweepConcurrency); worker++ {
		go func() {
			for {
				gi := int(nextGroup.Add(1)) - 1
				if gi >= len(order) {
					return
				}
				g := order[gi]
				res, _, err := r.estimateOnce(req.Context(), g.key, g.body)
				results <- outcome{g: g, res: res, err: err}
			}
		}()
	}

	for range order {
		out := <-results
		for _, i := range out.g.indices {
			err := out.err
			if err == nil && out.res.status != http.StatusOK {
				err = fmt.Errorf("worker %s returned %d: %s", out.res.node, out.res.status, strings.TrimSpace(string(out.res.body)))
			}
			if err != nil {
				summary.Errors++
				emit(service.SweepLine{Index: i, Key: out.g.key, Error: err.Error()})
				continue
			}
			summary.OK++
			switch out.res.cache {
			case "hit":
				summary.CacheHits++
			case "disk":
				summary.CacheHits++
				summary.DiskHits++
			}
			emit(service.SweepLine{Index: i, Key: out.res.key, Result: out.res.body, Node: out.res.node})
		}
	}
	summary.ElapsedMS = time.Since(start).Milliseconds()
	enc.Encode(summary)
}

// NodeHealth is one worker's row in the aggregated /healthz.
type NodeHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// handleHealthz aggregates worker health: "ok" when every worker is
// admitted, "degraded" (still 200 — the cluster serves) while at least
// one is, and 503 "down" when the ring is empty.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	nodes := make([]NodeHealth, 0, len(r.ring.Nodes()))
	healthy := 0
	for _, n := range r.ring.Nodes() {
		ok := n.Healthy()
		if ok {
			healthy++
		}
		nodes = append(nodes, NodeHealth{Name: n.Name, URL: n.URL, Healthy: ok})
	}
	status := "ok"
	code := http.StatusOK
	switch {
	case healthy == 0:
		status, code = "down", http.StatusServiceUnavailable
	case healthy < len(nodes):
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(r.start).Seconds(),
		"nodes":          nodes,
	})
}

// NodeStats is one worker's row in the aggregated /stats: its health,
// the router's view of its load, and the worker's own /stats payload
// (raw, so new worker fields pass through untouched).
type NodeStats struct {
	Name     string          `json:"name"`
	URL      string          `json:"url"`
	Healthy  bool            `json:"healthy"`
	Inflight int64           `json:"inflight"`
	Error    string          `json:"error,omitempty"`
	Stats    json.RawMessage `json:"stats,omitempty"`
}

// StatsSnapshot is the router's /stats payload: cluster-wide cache
// warmth (the aggregated hit rate over every tier of every node) plus
// per-node attribution.
type StatsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Nodes         int     `json:"nodes"`
	HealthyNodes  int     `json:"healthy_nodes"`
	Routed        uint64  `json:"routed"`
	Coalesced     uint64  `json:"coalesced"`
	Retries       uint64  `json:"retries"`
	Ejections     uint64  `json:"ejections"`
	Readmissions  uint64  `json:"readmissions"`
	// ClusterHits/ClusterMisses aggregate the workers' memory-tier
	// counters; ClusterHitRate is their ratio — the cluster cache warmth
	// that sets sweep throughput.
	ClusterHits    uint64      `json:"cluster_hits"`
	ClusterMisses  uint64      `json:"cluster_misses"`
	ClusterHitRate float64     `json:"cluster_hit_rate"`
	PerNode        []NodeStats `json:"per_node"`
}

// handleStats fans /stats across the workers and aggregates.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	nodes := r.ring.Nodes()
	rows := make([]NodeStats, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			row := NodeStats{Name: n.Name, URL: n.URL, Healthy: n.Healthy(), Inflight: n.Inflight()}
			ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ProbeTimeout)
			defer cancel()
			sreq, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/stats", nil)
			if err == nil {
				var resp *http.Response
				if resp, err = r.client.Do(sreq); err == nil {
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						err = rerr
					} else if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					} else {
						row.Stats = body
					}
				}
			}
			if err != nil {
				row.Error = err.Error()
			}
			rows[i] = row
		}(i, n)
	}
	wg.Wait()

	snap := StatsSnapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Nodes:         len(nodes),
		HealthyNodes:  r.ring.HealthyCount(),
		Routed:        r.routedTotal.Load(),
		Coalesced:     r.coalesced.Load(),
		Retries:       r.retries.Load(),
		Ejections:     r.ejections.Load(),
		Readmissions:  r.readmits.Load(),
		PerNode:       rows,
	}
	for _, row := range rows {
		if row.Stats == nil {
			continue
		}
		var ws service.StatsSnapshot
		if err := json.Unmarshal(row.Stats, &ws); err == nil {
			snap.ClusterHits += ws.Cache.Hits
			snap.ClusterMisses += ws.Cache.Misses
		}
	}
	if total := snap.ClusterHits + snap.ClusterMisses; total > 0 {
		snap.ClusterHitRate = float64(snap.ClusterHits) / float64(total)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
}
