package router

import (
	"fmt"
	"testing"
)

func ringOf(t *testing.T, names ...string) (*Ring, []*Node) {
	t.Helper()
	nodes := make([]*Node, len(names))
	for i, name := range names {
		nodes[i] = &Node{Name: name, URL: "http://" + name}
	}
	r, err := NewRing(nodes, 64, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	return r, r.Nodes()
}

// TestRingDeterministicPlacement: the same key always lands on the same
// node — the property the cluster's cache warmth depends on.
func TestRingDeterministicPlacement(t *testing.T) {
	r, _ := ringOf(t, "a", "b", "c")
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		n1, err := r.Pick(key)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 5; probe++ {
			n2, err := r.Pick(key)
			if err != nil {
				t.Fatal(err)
			}
			if n2 != n1 {
				t.Fatalf("key %s moved from %s to %s with stable membership", key, n1.Name, n2.Name)
			}
		}
	}
}

// TestRingSpreadsKeys: virtual nodes give every worker a share of the
// keyspace (no worker starves, none owns everything).
func TestRingSpreadsKeys(t *testing.T) {
	r, _ := ringOf(t, "a", "b", "c")
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		n, err := r.Pick(fmt.Sprintf("%064x", i*7919))
		if err != nil {
			t.Fatal(err)
		}
		counts[n.Name]++
	}
	for name, c := range counts {
		if c < keys/10 || c > keys*6/10 {
			t.Errorf("node %s owns %d/%d keys — distribution badly skewed: %v", name, c, keys, counts)
		}
	}
	if len(counts) != 3 {
		t.Errorf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
}

// TestRingEjectionMovesOnlyOrphanedKeys: ejecting one node reassigns its
// keys to successors and leaves every other key in place; re-admission
// restores the original ownership exactly (so a recovered worker's warm
// disk store is immediately useful again).
func TestRingEjectionMovesOnlyOrphanedKeys(t *testing.T) {
	r, nodes := ringOf(t, "a", "b", "c")
	const keys = 500
	before := make([]string, keys)
	for i := range before {
		n, err := r.Pick(fmt.Sprintf("%064x", i))
		if err != nil {
			t.Fatal(err)
		}
		before[i] = n.Name
	}

	nodes[1].setHealthy(false) // eject "b"
	moved := 0
	for i := range before {
		n, err := r.Pick(fmt.Sprintf("%064x", i))
		if err != nil {
			t.Fatal(err)
		}
		if n.Name == "b" {
			t.Fatalf("key %d routed to ejected node", i)
		}
		if before[i] == "b" {
			moved++
		} else if n.Name != before[i] {
			t.Errorf("key %d owned by healthy %s moved to %s on b's ejection", i, before[i], n.Name)
		}
	}
	if moved == 0 {
		t.Fatal("ejected node owned no keys; test proves nothing")
	}

	nodes[1].setHealthy(true) // re-admit
	for i := range before {
		n, err := r.Pick(fmt.Sprintf("%064x", i))
		if err != nil {
			t.Fatal(err)
		}
		if n.Name != before[i] {
			t.Errorf("key %d: ownership %s before ejection, %s after re-admission", i, before[i], n.Name)
		}
	}
}

// TestRingExcludeFindsSuccessor: the retry path — excluding the owner
// yields a different healthy node, and excluding everyone is
// ErrNoHealthyNodes.
func TestRingExcludeFindsSuccessor(t *testing.T) {
	r, _ := ringOf(t, "a", "b")
	key := fmt.Sprintf("%064x", 42)
	owner, err := r.Pick(key)
	if err != nil {
		t.Fatal(err)
	}
	succ, err := r.Pick(key, owner.Name)
	if err != nil {
		t.Fatal(err)
	}
	if succ == owner {
		t.Fatalf("successor pick returned the excluded owner %s", owner.Name)
	}
	if _, err := r.Pick(key, "a", "b"); err != ErrNoHealthyNodes {
		t.Fatalf("all-excluded pick: err = %v, want ErrNoHealthyNodes", err)
	}
}

// TestRingAllUnhealthy: an empty effective ring reports, not panics.
func TestRingAllUnhealthy(t *testing.T) {
	r, nodes := ringOf(t, "a", "b")
	for _, n := range nodes {
		n.setHealthy(false)
	}
	if _, err := r.Pick("deadbeef"); err != ErrNoHealthyNodes {
		t.Fatalf("err = %v, want ErrNoHealthyNodes", err)
	}
	if got := r.HealthyCount(); got != 0 {
		t.Fatalf("HealthyCount = %d, want 0", got)
	}
}

// TestRingBoundedLoadSkipsHotNode: a node far over the load ceiling is
// skipped in favor of an idle successor, and picked again once it
// drains — the bounded-load rule balancing, not rejecting.
func TestRingBoundedLoadSkipsHotNode(t *testing.T) {
	r, _ := ringOf(t, "a", "b", "c")
	key := fmt.Sprintf("%064x", 7)
	owner, err := r.Pick(key)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		owner.acquire()
	}
	spilled, err := r.Pick(key)
	if err != nil {
		t.Fatal(err)
	}
	if spilled == owner {
		t.Fatalf("pick stuck to %s at inflight %d with idle peers", owner.Name, owner.Inflight())
	}
	for i := 0; i < 100; i++ {
		owner.release()
	}
	back, err := r.Pick(key)
	if err != nil {
		t.Fatal(err)
	}
	if back != owner {
		t.Fatalf("drained owner %s not restored; got %s", owner.Name, back.Name)
	}
}

// TestRingValidation: bad configurations fail at build time.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 64, 1.25); err == nil {
		t.Error("empty ring accepted")
	}
	n := func(name string) *Node { return &Node{Name: name, URL: "http://" + name} }
	if _, err := NewRing([]*Node{n("a"), n("a")}, 64, 1.25); err == nil {
		t.Error("duplicate node names accepted")
	}
	if _, err := NewRing([]*Node{n("a")}, 0, 1.25); err == nil {
		t.Error("zero vnodes accepted")
	}
	if _, err := NewRing([]*Node{n("a")}, 64, 1.0); err == nil {
		t.Error("load factor 1.0 accepted")
	}
}
