package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// worker is one real ltsimd service under the router in tests.
type worker struct {
	svc *service.Service
	ts  *httptest.Server
	// down simulates a sick-but-answering worker: /healthz returns 503
	// while set, everything else still serves.
	down atomic.Bool
	// delay stalls /estimate, widening the window duplicate requests
	// must coalesce in.
	delay atomic.Int64
	// stopped makes stop idempotent (Service.Shutdown is not).
	stopped atomic.Bool
}

// stop tears the worker down once; safe to call again (the test
// cleanup always does).
func (w *worker) stop() {
	if w.stopped.Swap(true) {
		return
	}
	w.ts.Close()
	w.svc.Shutdown(context.Background())
}

// startWorkers brings up n services, each with its own cache (and a
// disk store when dirs is non-nil).
func startWorkers(t *testing.T, n int, dirs []string) []*worker {
	t.Helper()
	ws := make([]*worker, n)
	for i := range ws {
		cfg := service.Config{CacheSize: 256, Shards: 2, QueueDepth: 64, JobTimeout: time.Minute, SimParallel: 2}
		if dirs != nil {
			ds, err := store.OpenDisk(dirs[i], 0)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Store = ds
		}
		w := &worker{svc: service.New(cfg)}
		inner := w.svc.Handler()
		w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" && w.down.Load() {
				http.Error(rw, "sick", http.StatusServiceUnavailable)
				return
			}
			if r.URL.Path == "/estimate" {
				if d := w.delay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
			}
			inner.ServeHTTP(rw, r)
		}))
		ws[i] = w
		t.Cleanup(w.stop)
	}
	return ws
}

// startRouter fronts the workers with fast probes for test latency.
func startRouter(t *testing.T, ws []*worker) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  500 * time.Millisecond,
	}
	for i, w := range ws {
		cfg.Workers = append(cfg.Workers, Worker{Name: fmt.Sprintf("w%d", i), URL: w.ts.URL})
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func slurp(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// completedAcross sums scheduled (non-cache) runs over the cluster.
func completedAcross(ws []*worker) uint64 {
	var total uint64
	for _, w := range ws {
		total += w.svc.Stats().Scheduler.Completed
	}
	return total
}

type estReq struct {
	Trials       int     `json:"trials,omitempty"`
	HorizonYears float64 `json:"horizon_years,omitempty"`
	Replicas     int     `json:"replicas,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	Progress     bool    `json:"progress,omitempty"`
}

// TestRouterEstimateStickyAndWarm: repeats of one request land on one
// worker (X-Ltsimr-Node stable), the repeat is that worker's cache hit,
// and the bytes match — the router is transparent.
func TestRouterEstimateStickyAndWarm(t *testing.T) {
	ws := startWorkers(t, 3, nil)
	_, ts := startRouter(t, ws)

	req := estReq{Trials: 100, HorizonYears: 50}
	resp := post(t, ts.URL+"/estimate", req)
	node := resp.Header.Get("X-Ltsimr-Node")
	if node == "" {
		t.Fatal("response missing X-Ltsimr-Node attribution")
	}
	if got := resp.Header.Get("X-Ltsimd-Cache"); got != "miss" {
		t.Fatalf("cold request: cache = %q, want miss", got)
	}
	cold := slurp(t, resp)

	resp = post(t, ts.URL+"/estimate", req)
	if got := resp.Header.Get("X-Ltsimr-Node"); got != node {
		t.Fatalf("repeat routed to %s, first to %s — placement not sticky", got, node)
	}
	if got := resp.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Fatalf("repeat: cache = %q, want hit", got)
	}
	if warm := slurp(t, resp); !bytes.Equal(cold, warm) {
		t.Fatal("routed replay is not byte-identical")
	}
	if got := completedAcross(ws); got != 1 {
		t.Fatalf("cluster ran %d simulations for one unique request, want 1", got)
	}
}

// TestRouterClusterSingleFlight is the acceptance gate: N identical
// concurrent requests through the router produce exactly one scheduled
// run cluster-wide, with the duplicates coalescing at the router before
// dispatch.
func TestRouterClusterSingleFlight(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	for _, w := range ws {
		w.delay.Store(int64(300 * time.Millisecond))
	}
	rt, ts := startRouter(t, ws)

	req := estReq{Trials: 120, HorizonYears: 50, Alpha: 0.2}
	const dupes = 8
	bodies := make([][]byte, dupes)
	var wg sync.WaitGroup
	launch := func(i int) {
		defer wg.Done()
		resp := post(t, ts.URL+"/estimate", req)
		bodies[i] = slurp(t, resp)
	}
	// The first request opens the flight; the rest arrive while the
	// worker is still stalled in the delay middleware.
	wg.Add(1)
	go launch(0)
	time.Sleep(100 * time.Millisecond)
	for i := 1; i < dupes; i++ {
		wg.Add(1)
		go launch(i)
	}
	wg.Wait()

	for i := 1; i < dupes; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("duplicate %d got different bytes than the flight owner", i)
		}
	}
	if got := completedAcross(ws); got != 1 {
		t.Fatalf("cluster scheduled %d runs for %d identical concurrent requests, want 1", got, dupes)
	}
	if got := rt.coalesced.Load(); got != dupes-1 {
		t.Fatalf("router coalesced %d requests, want %d", got, dupes-1)
	}
}

// decodeSweep splits an NDJSON sweep body into point lines + summary.
func decodeSweep(t *testing.T, body []byte) ([]service.SweepLine, service.SweepLine) {
	t.Helper()
	var lines []service.SweepLine
	var summary service.SweepLine
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var line service.SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", raw, err)
		}
		if line.Summary {
			summary = line
			continue
		}
		lines = append(lines, line)
	}
	if !summary.Summary {
		t.Fatalf("sweep body has no summary line: %s", body)
	}
	return lines, summary
}

// TestRouterSweepScenarioFanOut: a scenario document expands once at
// the router, points spread across workers with node attribution, the
// warm repeat is all cache hits cluster-wide, and in-batch duplicates
// dedupe before dispatch.
func TestRouterSweepScenarioFanOut(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	_, ts := startRouter(t, ws)

	doc := map[string]any{
		"scenario": map[string]any{
			"v":    1,
			"base": map[string]any{"trials": 80, "horizon_years": 50},
			"grid": []map[string]any{{"param": "replicas", "values": []float64{1, 2, 3, 4, 5, 6}}},
		},
	}
	lines, sum := decodeSweep(t, slurp(t, post(t, ts.URL+"/sweep", doc)))
	if sum.Requested != 6 || sum.OK != 6 || sum.Errors != 0 {
		t.Fatalf("cold summary = %+v, want 6 requested, 6 ok", sum)
	}
	nodes := map[string]int{}
	byIndex := map[int][]byte{}
	for _, l := range lines {
		if l.Node == "" {
			t.Fatalf("sweep line %d has no node attribution", l.Index)
		}
		nodes[l.Node]++
		byIndex[l.Index] = l.Result
	}
	if len(byIndex) != 6 {
		t.Fatalf("got %d distinct indices, want 6", len(byIndex))
	}
	if len(nodes) < 2 {
		t.Logf("note: all 6 points hashed to one worker (%v) — legal, just unlucky", nodes)
	}

	warmLines, warmSum := decodeSweep(t, slurp(t, post(t, ts.URL+"/sweep", doc)))
	if warmSum.CacheHits != 6 {
		t.Fatalf("warm summary cache hits = %d, want 6 (cluster-wide warmth)", warmSum.CacheHits)
	}
	for _, l := range warmLines {
		if !bytes.Equal(l.Result, byIndex[l.Index]) {
			t.Fatalf("warm sweep point %d differs from cold run", l.Index)
		}
	}
	if got := completedAcross(ws); got != 6 {
		t.Fatalf("cluster scheduled %d runs over both sweeps, want 6", got)
	}

	// In-batch duplicates collapse at the router: 4 identical fresh
	// requests cost exactly one scheduled run cluster-wide.
	dupReq := map[string]any{"requests": []estReq{
		{Trials: 80, HorizonYears: 50, Alpha: 0.9},
		{Trials: 80, HorizonYears: 50, Alpha: 0.9},
		{Trials: 80, HorizonYears: 50, Alpha: 0.9},
		{Trials: 80, HorizonYears: 50, Alpha: 0.9},
	}}
	dupLines, dupSum := decodeSweep(t, slurp(t, post(t, ts.URL+"/sweep", dupReq)))
	if dupSum.Deduped != 3 || dupSum.OK != 4 {
		t.Fatalf("duplicate batch summary = %+v, want 4 ok with 3 deduped", dupSum)
	}
	for _, l := range dupLines {
		if !bytes.Equal(l.Result, dupLines[0].Result) {
			t.Fatalf("deduped index %d replayed different bytes", l.Index)
		}
	}
	if got := completedAcross(ws); got != 7 {
		t.Fatalf("cluster scheduled %d runs total, want 7 (the duplicate batch cost exactly 1)", got)
	}
}

// TestRouterWorkerDeathRetriesOnSuccessor: kill a worker outright (its
// listener closes) and a request for a key it owned transparently
// retries on the ring successor; /healthz reports the cluster degraded.
func TestRouterWorkerDeathRetriesOnSuccessor(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	rt, ts := startRouter(t, ws)

	// Find a request owned by worker 0 so its death is on the request
	// path.
	var victim estReq
	for a := 1; a <= 64; a++ {
		req := estReq{Trials: 70, HorizonYears: 50, Alpha: float64(a) / 100}
		resp := post(t, ts.URL+"/estimate", req)
		node := resp.Header.Get("X-Ltsimr-Node")
		slurp(t, resp)
		if node == "w0" {
			victim = req
			break
		}
	}
	if victim.Alpha == 0 {
		t.Fatal("no probe request routed to w0")
	}

	ws[0].ts.Close() // worker dies: connection refused from here on

	resp := post(t, ts.URL+"/estimate", victim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after worker death: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ltsimr-Node"); got != "w1" {
		t.Fatalf("retried request served by %q, want successor w1", got)
	}
	slurp(t, resp)
	if rt.retries.Load() == 0 {
		t.Error("successor retry not counted")
	}
	if rt.ejections.Load() == 0 {
		t.Error("request-time death did not eject the worker")
	}

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Nodes  []struct {
			Name    string `json:"name"`
			Healthy bool   `json:"healthy"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(slurp(t, hres), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Fatalf("cluster health = %q with one dead worker, want degraded", health.Status)
	}
}

// TestRouterProbeEjectsAndReadmits: a worker whose /healthz sours is
// ejected by the prober and re-admitted when it recovers — without the
// router restarting or the ring being rebuilt.
func TestRouterProbeEjectsAndReadmits(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	rt, _ := startRouter(t, ws)

	node, ok := rt.Ring().NodeByName("w0")
	if !ok {
		t.Fatal("w0 not in ring")
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	ws[0].down.Store(true)
	waitFor(func() bool { return !node.Healthy() }, "probe ejection")
	if rt.ejections.Load() == 0 {
		t.Error("ejection not counted")
	}

	ws[0].down.Store(false)
	waitFor(func() bool { return node.Healthy() }, "probe re-admission")
	if rt.readmits.Load() == 0 {
		t.Error("re-admission not counted")
	}
}

// TestRouterStatsAggregatesWarmth: /stats carries per-node rows with
// the workers' own snapshots plus the cluster-wide hit-rate rollup.
func TestRouterStatsAggregatesWarmth(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	_, ts := startRouter(t, ws)

	req := estReq{Trials: 90, HorizonYears: 50}
	slurp(t, post(t, ts.URL+"/estimate", req))
	slurp(t, post(t, ts.URL+"/estimate", req)) // warm repeat

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(slurp(t, resp), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Nodes != 2 || snap.HealthyNodes != 2 {
		t.Fatalf("stats nodes = %d/%d healthy, want 2/2", snap.HealthyNodes, snap.Nodes)
	}
	if snap.ClusterHits != 1 {
		t.Fatalf("cluster hits = %d, want 1 (the warm repeat)", snap.ClusterHits)
	}
	if snap.ClusterHitRate <= 0 {
		t.Fatal("cluster hit rate not computed")
	}
	if len(snap.PerNode) != 2 {
		t.Fatalf("per-node rows = %d, want 2", len(snap.PerNode))
	}
	for _, row := range snap.PerNode {
		if row.Error != "" {
			t.Errorf("node %s stats errored: %s", row.Name, row.Error)
		}
		if len(row.Stats) == 0 {
			t.Errorf("node %s row carries no worker stats", row.Name)
		}
	}
}

// TestRouterMetricFamilies: the ltsimr_ families reach GET /metrics.
func TestRouterMetricFamilies(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	_, ts := startRouter(t, ws)
	slurp(t, post(t, ts.URL+"/estimate", estReq{Trials: 60, HorizonYears: 50}))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(slurp(t, resp))
	for _, family := range []string{
		"ltsimr_requests_total", "ltsimr_coalesced_total",
		"ltsimr_retries_total", "ltsimr_ejections_total",
		"ltsimr_readmissions_total", "ltsimr_nodes_healthy",
		"ltsimr_nodes_total", "ltsimr_node_inflight",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}
	if !strings.Contains(text, `ltsimr_nodes_healthy 2`) {
		t.Errorf("healthy-nodes gauge wrong:\n%s", text)
	}
}

// TestRouterDiskTierAcrossCluster: workers with disk stores replay
// bit-identical bytes through the router after every worker restarts —
// the cluster-level version of the restart-durability tentpole.
func TestRouterDiskTierAcrossCluster(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	ws := startWorkers(t, 2, dirs)
	_, ts := startRouter(t, ws)

	reqs := []estReq{
		{Trials: 80, HorizonYears: 50},
		{Trials: 80, HorizonYears: 50, Replicas: 3},
		{Trials: 80, HorizonYears: 50, Alpha: 0.4},
	}
	cold := make([][]byte, len(reqs))
	for i, req := range reqs {
		cold[i] = slurp(t, post(t, ts.URL+"/estimate", req))
	}

	// "Restart" the whole cluster over the same directories.
	for _, w := range ws {
		w.stop()
	}
	ws2 := startWorkers(t, 2, dirs)
	_, ts2 := startRouter(t, ws2)

	for i, req := range reqs {
		resp := post(t, ts2.URL+"/estimate", req)
		if got := resp.Header.Get("X-Ltsimd-Cache"); got != "disk" {
			t.Fatalf("request %d after cluster restart: cache = %q, want disk", i, got)
		}
		if body := slurp(t, resp); !bytes.Equal(body, cold[i]) {
			t.Fatalf("request %d not bit-identical across cluster restart", i)
		}
	}
	if got := completedAcross(ws2); got != 0 {
		t.Fatalf("restarted cluster simulated %d jobs, want 0 (all disk replays)", got)
	}
}

// TestRouterProgressStreamProxied: a progress-streamed estimate flows
// through the router frame by frame with node attribution.
func TestRouterProgressStreamProxied(t *testing.T) {
	ws := startWorkers(t, 2, nil)
	_, ts := startRouter(t, ws)

	resp := post(t, ts.URL+"/estimate", estReq{Trials: 5000, HorizonYears: 50, Progress: true})
	if resp.Header.Get("X-Ltsimr-Node") == "" {
		t.Error("progress stream missing node attribution")
	}
	body := slurp(t, resp)
	frames := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(frames) < 2 {
		t.Fatalf("progress stream carried %d frames, want at least a progress frame and a final", len(frames))
	}
	var last map[string]any
	if err := json.Unmarshal(frames[len(frames)-1], &last); err != nil {
		t.Fatalf("final frame is not JSON: %v", err)
	}
}
