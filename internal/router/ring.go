// Package router is the stateless front of an ltsimd cluster: it
// expands scenarios once, consistent-hashes canonical fingerprints
// across N workers, coalesces duplicate in-flight keys cluster-wide,
// and survives worker death by ejecting the node from the ring and
// retrying on the successor until the health probe re-admits it.
//
// Routing by fingerprint is what makes the cluster's cache warmth add
// up instead of dilute: every repeat of a configuration lands on the
// same worker, so each worker's memory LRU and disk store hold a
// disjoint shard of the cluster's answered questions, and the
// cluster-wide hit rate — not per-node compute — sets throughput.
package router

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync/atomic"
)

// ErrNoHealthyNodes reports a pick with every worker ejected.
var ErrNoHealthyNodes = errors.New("router: no healthy workers in the ring")

// Node is one ltsimd worker in the ring.
type Node struct {
	// Name labels the node in sweep lines, stats, and metrics; URL is
	// its base address.
	Name string
	URL  string

	healthy  atomic.Bool
	inflight atomic.Int64
}

// Healthy reports whether the node is currently admitted to the ring.
func (n *Node) Healthy() bool { return n.healthy.Load() }

// Inflight returns the requests the router currently has against this
// node — the load the bounded-load rule balances.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

func (n *Node) setHealthy(ok bool) bool { return n.healthy.Swap(ok) != ok }
func (n *Node) acquire()                { n.inflight.Add(1) }
func (n *Node) release()                { n.inflight.Add(-1) }

// vnode is one virtual point on the hash circle.
type vnode struct {
	hash uint64
	node *Node
}

// Ring is a consistent-hash ring with virtual nodes and bounded loads
// (Mirrokni et al.: a node is skipped while its in-flight load exceeds
// loadFactor times the mean, so one hot fingerprint region cannot
// saturate a single worker while others idle). Membership is fixed at
// build time; health is dynamic — ejected nodes stay on the circle but
// are skipped, so re-admission restores the exact same key ownership
// and the warm caches behind it.
type Ring struct {
	nodes      []*Node // sorted by name, for stable listings
	vnodes     []vnode // sorted by hash
	loadFactor float64
}

// NewRing builds a ring over the given nodes with vnodesPer virtual
// points each (more points = smoother key distribution). loadFactor
// must be > 1; 1.25 is the usual choice.
func NewRing(nodes []*Node, vnodesPer int, loadFactor float64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("router: ring needs at least one node")
	}
	if vnodesPer < 1 {
		return nil, errors.New("router: need at least one virtual node per worker")
	}
	if loadFactor <= 1 {
		return nil, fmt.Errorf("router: load factor %g must exceed 1", loadFactor)
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:      append([]*Node(nil), nodes...),
		vnodes:     make([]vnode, 0, len(nodes)*vnodesPer),
		loadFactor: loadFactor,
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].Name < r.nodes[j].Name })
	for _, n := range r.nodes {
		if seen[n.Name] {
			return nil, fmt.Errorf("router: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		n.healthy.Store(true)
		for i := 0; i < vnodesPer; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: hash64(fmt.Sprintf("%s#%d", n.Name, i)), node: n})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r, nil
}

// hash64 is the ring's point hash: FNV-1a (dependency-free) through a
// splitmix64 finalizer — raw FNV avalanches poorly on the short "name#i"
// vnode labels, which shows up as badly skewed key ownership.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes lists the ring members sorted by name.
func (r *Ring) Nodes() []*Node { return r.nodes }

// NodeByName finds a member.
func (r *Ring) NodeByName(name string) (*Node, bool) {
	for _, n := range r.nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// HealthyCount counts admitted nodes.
func (r *Ring) HealthyCount() int {
	c := 0
	for _, n := range r.nodes {
		if n.Healthy() {
			c++
		}
	}
	return c
}

// Pick returns the worker that owns key: the first healthy,
// non-excluded node clockwise from the key's point whose in-flight load
// fits the bounded-load rule. If every candidate is over the bound the
// first healthy one is used anyway (the bound balances, it does not
// reject). exclude names nodes already tried and failed this request —
// the successor-retry path after an ejection.
func (r *Ring) Pick(key string, exclude ...string) (*Node, error) {
	if len(r.vnodes) == 0 {
		return nil, ErrNoHealthyNodes
	}
	excluded := func(n *Node) bool {
		for _, name := range exclude {
			if n.Name == name {
				return true
			}
		}
		return false
	}

	// The bounded-load ceiling: a node is admissible while taking this
	// request keeps it at or under loadFactor times the mean load.
	var total int64
	healthy := 0
	for _, n := range r.nodes {
		if n.Healthy() && !excluded(n) {
			total += n.Inflight()
			healthy++
		}
	}
	if healthy == 0 {
		return nil, ErrNoHealthyNodes
	}
	ceiling := int64(math.Ceil(r.loadFactor * float64(total+1) / float64(healthy)))
	if ceiling < 1 {
		ceiling = 1
	}

	h := hash64(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	var first *Node
	seen := make(map[string]bool, healthy)
	for i := 0; i < len(r.vnodes) && len(seen) < healthy; i++ {
		n := r.vnodes[(start+i)%len(r.vnodes)].node
		if !n.Healthy() || excluded(n) || seen[n.Name] {
			continue
		}
		seen[n.Name] = true
		if first == nil {
			first = n
		}
		if n.Inflight()+1 <= ceiling {
			return n, nil
		}
	}
	return first, nil
}
