package router

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"
)

// ClusterBenchArtifact is the schema of BENCH_cluster.json: the routed
// sweep measured cold (every point simulated somewhere in the cluster),
// warm (cluster-wide cache hits through the router), and disk-warm
// (every worker restarted, answers replayed from the persistent tier) —
// the cluster-level analogue of BENCH_service.json.
type ClusterBenchArtifact struct {
	Bench         string  `json:"bench"`
	Workers       int     `json:"workers"`
	SweepConfigs  int     `json:"sweep_configs"`
	TrialsPerItem int     `json:"trials_per_item"`
	ColdMS        int64   `json:"cold_ms"`
	WarmMS        int64   `json:"warm_ms"`
	DiskWarmMS    int64   `json:"disk_warm_ms"`
	WarmSpeedup   float64 `json:"warm_speedup"`
	WarmHits      int     `json:"warm_cache_hits"`
	DiskHits      int     `json:"disk_warm_disk_hits"`
	ScheduledRuns uint64  `json:"scheduled_runs"`
	BitIdentical  bool    `json:"bit_identical"`
	GoMaxProcs    int     `json:"gomaxprocs"`
}

// benchSweep posts the doc and returns elapsed, per-index results, and
// the summary.
func benchSweep(t *testing.T, url string, doc map[string]any) (time.Duration, map[int][]byte, SweepSummary) {
	t.Helper()
	start := time.Now()
	lines, sum := decodeSweep(t, slurp(t, post(t, url+"/sweep", doc)))
	elapsed := time.Since(start)
	byIndex := map[int][]byte{}
	for _, l := range lines {
		byIndex[l.Index] = l.Result
	}
	return elapsed, byIndex, SweepSummary{OK: sum.OK, Errors: sum.Errors, CacheHits: sum.CacheHits, DiskHits: sum.DiskHits}
}

// SweepSummary is the slice of the sweep summary line the bench reads.
type SweepSummary struct {
	OK, Errors, CacheHits, DiskHits int
}

// TestBenchArtifactCluster measures a scenario sweep through a 2-worker
// routed cluster: cold, memory-warm, then disk-warm after restarting
// every worker over its cache directory. With BENCH_CLUSTER_OUT set the
// measurements land as a JSON artifact (CI publishes BENCH_cluster.json);
// without it the test still asserts warmth and bit-identity.
func TestBenchArtifactCluster(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	ws := startWorkers(t, 2, dirs)
	_, ts := startRouter(t, ws)

	const trials = 300
	doc := map[string]any{
		"scenario": map[string]any{
			"v":    1,
			"base": map[string]any{"trials": trials, "horizon_years": 50},
			"grid": []map[string]any{
				{"param": "replicas", "values": []float64{1, 2, 3, 4}},
				{"param": "alpha", "values": []float64{0.1, 0.3, 0.5}},
			},
		},
	}
	const points = 12

	coldDur, cold, coldSum := benchSweep(t, ts.URL, doc)
	if coldSum.OK != points || coldSum.Errors != 0 {
		t.Fatalf("cold sweep summary = %+v, want %d ok", coldSum, points)
	}

	warmDur, warm, warmSum := benchSweep(t, ts.URL, doc)
	if warmSum.CacheHits != points {
		t.Fatalf("warm sweep hit %d of %d cluster-wide", warmSum.CacheHits, points)
	}

	// Restart every worker over its cache dir; the rebuilt cluster must
	// answer entirely from the disk tier.
	for _, w := range ws {
		w.stop()
	}
	ws2 := startWorkers(t, 2, dirs)
	_, ts2 := startRouter(t, ws2)
	diskDur, disk, diskSum := benchSweep(t, ts2.URL, doc)
	if diskSum.DiskHits != points {
		t.Fatalf("disk-warm sweep: %d disk hits of %d", diskSum.DiskHits, points)
	}
	if got := completedAcross(ws2); got != 0 {
		t.Fatalf("restarted cluster simulated %d points, want 0", got)
	}

	identical := true
	for i := 0; i < points; i++ {
		if string(cold[i]) != string(warm[i]) || string(cold[i]) != string(disk[i]) {
			identical = false
			t.Errorf("point %d differs across cold/warm/disk passes", i)
		}
	}

	art := ClusterBenchArtifact{
		Bench:         "cluster_sweep_cold_vs_warm_vs_disk",
		Workers:       2,
		SweepConfigs:  points,
		TrialsPerItem: trials,
		ColdMS:        coldDur.Milliseconds(),
		WarmMS:        warmDur.Milliseconds(),
		DiskWarmMS:    diskDur.Milliseconds(),
		WarmHits:      warmSum.CacheHits,
		DiskHits:      diskSum.DiskHits,
		ScheduledRuns: completedAcross(ws),
		BitIdentical:  identical,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	if w := warmDur.Milliseconds(); w > 0 {
		art.WarmSpeedup = float64(coldDur.Milliseconds()) / float64(w)
	}

	out := os.Getenv("BENCH_CLUSTER_OUT")
	if out == "" {
		t.Logf("cold %dms, warm %dms, disk-warm %dms, %d scheduled runs (set BENCH_CLUSTER_OUT to write the artifact)",
			art.ColdMS, art.WarmMS, art.DiskWarmMS, art.ScheduledRuns)
		return
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold %dms, warm %dms, disk-warm %dms", out, art.ColdMS, art.WarmMS, art.DiskWarmMS)
}
