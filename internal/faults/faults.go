// Package faults models the fault processes of §4–§5: visible and latent
// fault arrivals, correlation between replicas (the paper's multiplicative
// α and the shared-component correlation it abstracts), and common-cause
// shocks of the kind Talagala logged in the UC Berkeley disk farm (shared
// power, cooling, controllers).
//
// The package is simulation-substrate: it knows about hazard rates and
// replica indices, not about the des engine. internal/sim wires these
// processes to the event queue.
package faults

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Type distinguishes the two §5.1 fault classes.
type Type int

const (
	// Visible faults are detected the instant they occur (whole-disk
	// failures, controller errors).
	Visible Type = iota
	// Latent faults occur silently (bit rot, misdirected writes,
	// unreadable sectors, format obsolescence) and wait for an audit or
	// access to be discovered.
	Latent
)

// String returns the fault-class name.
func (t Type) String() string {
	switch t {
	case Visible:
		return "visible"
	case Latent:
		return "latent"
	default:
		return fmt.Sprintf("faults.Type(%d)", int(t))
	}
}

// ErrInvalid reports a fault-process parameter outside its domain.
var ErrInvalid = errors.New("faults: invalid parameter")

// Process is a memoryless fault arrival process with a switchable hazard
// rate. The base hazard is 1/Mean; correlation models accelerate it while
// other replicas have outstanding faults, and importance sampling may
// further multiply it by a bias factor whose effect is corrected out of
// the estimate via likelihood-ratio weights. Memorylessness is what makes
// resampling the next arrival after every rate change valid — the paper's
// model makes exactly the same assumption (§5.2).
type Process struct {
	mean  float64
	accel float64
	bias  float64
	// profile, when non-nil, makes the hazard time-varying:
	// SampleNextAt thins candidate arrivals against it. See Hazard.
	profile Hazard
}

// NewProcess returns a Process with the given mean time between faults in
// hours. A mean of +Inf disables the process (no such fault channel).
func NewProcess(mean float64) (*Process, error) {
	if math.IsNaN(mean) || mean <= 0 {
		return nil, fmt.Errorf("%w: fault process mean %v must be positive", ErrInvalid, mean)
	}
	return &Process{mean: mean, accel: 1, bias: 1}, nil
}

// SetAcceleration sets the hazard multiplier f ≥ 1 (1 = nominal). The
// correlation models produce f = 1/α while faults are outstanding.
func (p *Process) SetAcceleration(f float64) {
	if math.IsNaN(f) || f < 1 {
		panic(fmt.Sprintf("faults: acceleration %v must be >= 1", f))
	}
	p.accel = f
}

// Acceleration returns the current hazard multiplier.
func (p *Process) Acceleration() float64 { return p.accel }

// SetBias sets the importance-sampling hazard multiplier b ≥ 1
// (1 = unbiased). Unlike acceleration, bias is a property of the
// sampling measure, not the modeled system: EffectiveMean — the true
// rate, used for likelihood-ratio exposure — excludes it, while
// SampleNext draws under it.
func (p *Process) SetBias(b float64) {
	if math.IsNaN(b) || b < 1 {
		panic(fmt.Sprintf("faults: bias %v must be >= 1", b))
	}
	p.bias = b
}

// Bias returns the current importance-sampling multiplier.
func (p *Process) Bias() float64 { return p.bias }

// EffectiveMean returns the current modeled mean inter-arrival time,
// mean/acceleration — deliberately excluding any sampling bias.
func (p *Process) EffectiveMean() float64 { return p.mean / p.accel }

// BaseMean returns the nominal (unaccelerated) mean.
func (p *Process) BaseMean() float64 { return p.mean }

// Disabled reports whether the process can never fire.
func (p *Process) Disabled() bool { return math.IsInf(p.mean, 1) }

// SampleNext draws the time from now until the next fault under the
// current acceleration and sampling bias. Returns +Inf for a disabled
// process. At bias 1 the draw is bit-identical to the unbiased path
// (the /1 divide is exact).
func (p *Process) SampleNext(src *rng.Source) float64 {
	if p.Disabled() {
		return math.Inf(1)
	}
	return -p.mean / (p.accel * p.bias) * math.Log(src.Float64Open())
}

// Correlation maps the number of replicas with outstanding faults to the
// hazard acceleration experienced by the still-healthy replicas.
type Correlation interface {
	// Acceleration returns the hazard multiplier (≥ 1) applied to
	// healthy replicas while nFaulty replicas have outstanding faults.
	Acceleration(nFaulty int) float64
	// Alpha returns the equivalent model correlation factor α ∈ (0, 1]
	// for the first conditional fault, for analytic comparison.
	Alpha() float64
}

// Independent is the no-correlation model: replicas fail independently
// (α = 1), the §4.2 "independence assumption".
type Independent struct{}

// Acceleration returns 1 regardless of outstanding faults.
func (Independent) Acceleration(int) float64 { return 1 }

// Alpha returns 1.
func (Independent) Alpha() float64 { return 1 }

// AlphaCorrelation is the paper's §5.3 model: once any fault is
// outstanding, the conditional mean time to the next fault on another
// replica contracts by α, i.e. the hazard accelerates by 1/α. The factor
// is flat in the number of outstanding faults, matching the eq 12
// derivation where each successive failure has probability MRV/(α·MV).
type AlphaCorrelation struct {
	// Factor is α ∈ (0, 1].
	Factor float64
}

// NewAlphaCorrelation returns an AlphaCorrelation with the given α.
func NewAlphaCorrelation(alpha float64) (AlphaCorrelation, error) {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return AlphaCorrelation{}, fmt.Errorf("%w: alpha %v must be in (0, 1]", ErrInvalid, alpha)
	}
	return AlphaCorrelation{Factor: alpha}, nil
}

// Acceleration returns 1/α while any fault is outstanding.
func (c AlphaCorrelation) Acceleration(nFaulty int) float64 {
	if nFaulty <= 0 {
		return 1
	}
	return 1 / c.Factor
}

// Alpha returns α.
func (c AlphaCorrelation) Alpha() float64 { return c.Factor }

// CompoundingAlpha accelerates by 1/α per outstanding fault: a harsher
// reading of correlation in which each additional failure further
// destabilizes the system (cascading overload). Used in ablation benches
// against the paper's flat model.
type CompoundingAlpha struct {
	// Factor is α ∈ (0, 1].
	Factor float64
}

// NewCompoundingAlpha returns a CompoundingAlpha with the given α.
func NewCompoundingAlpha(alpha float64) (CompoundingAlpha, error) {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > 1 {
		return CompoundingAlpha{}, fmt.Errorf("%w: alpha %v must be in (0, 1]", ErrInvalid, alpha)
	}
	return CompoundingAlpha{Factor: alpha}, nil
}

// Acceleration returns (1/α)^nFaulty.
func (c CompoundingAlpha) Acceleration(nFaulty int) float64 {
	if nFaulty <= 0 {
		return 1
	}
	return math.Pow(1/c.Factor, float64(nFaulty))
}

// Alpha returns α.
func (c CompoundingAlpha) Alpha() float64 { return c.Factor }
