package faults

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Hazard shapes the time-dependence of a fault process: a dimensionless
// multiplier φ(t) on the process's base rate 1/Mean, so the instantaneous
// hazard at simulation time t is φ(t)·accel·bias/Mean. A nil Hazard on a
// Process means φ ≡ 1 — the historical time-homogeneous Poisson channel.
//
// Profiles are sampled by thinning (Lewis–Shedler): SampleNextAt draws
// candidate arrivals from a piecewise-constant envelope the profile
// supplies through Envelope and accepts each with probability
// φ(t)/envelope. Implementations must therefore guarantee
// Multiplier(t) <= bound for every t in [from, from+dt) returned by
// Envelope(from). The draw sequence consumed per accepted arrival depends
// only on the profile and the candidate times, never on wall state, so
// profiled trials keep the per-trial determinism contract.
//
// Implementations shipped here: ConstantHazard, PiecewiseHazard,
// WeibullHazard, and the ScaledHazard combinator. internal/aging builds
// the paper's §6.5 bathtub curves on top of PiecewiseHazard.
type Hazard interface {
	// Multiplier returns φ(t) >= 0, the hazard multiplier at time t
	// (hours since the start of the trial).
	Multiplier(t float64) float64
	// Envelope returns a finite bound >= sup φ over [t, t+dt) together
	// with the window length dt > 0. dt may be +Inf when the bound holds
	// forever. The thinning sampler advances window by window, so tight
	// envelopes cost fewer rejected candidates.
	Envelope(t float64) (bound, dt float64)
	// MeanMultiplier returns the time-average of φ over [0, horizon]:
	// the factor by which the profile scales the expected number of
	// arrivals in a horizon relative to the constant-rate process.
	// Equal-mean-rate comparisons (experiment E17) normalize profiles so
	// this is 1.
	MeanMultiplier(horizon float64) float64
	// Validate reports whether the profile's parameters are in domain.
	Validate() error
}

// maxHazardTime bounds the thinning walk: a candidate pushed beyond this
// point (far past any simulation horizon, ~10^14 years) is treated as
// "never", protecting against unbounded loops on profiles whose tail rate
// is vanishingly small but positive.
const maxHazardTime = 1e18

// SetProfile attaches a hazard profile to the process; nil restores the
// time-homogeneous behaviour. The profile multiplies the base hazard
// sampled by SampleNextAt; SampleNext ignores it (callers that sample
// with SampleNext must not attach profiles).
func (p *Process) SetProfile(h Hazard) { p.profile = h }

// Profile returns the attached hazard profile (nil = homogeneous).
func (p *Process) Profile() Hazard { return p.profile }

// SampleNextAt draws the time from `now` until the next fault. With no
// profile attached it delegates to SampleNext — one draw, bit-identical
// to the historical path. With a profile it thins candidate arrivals
// against the profile's envelope: in each envelope window it draws an
// exponential candidate at rate bound·accel·bias/mean, advances to the
// window end on overshoot, and otherwise accepts with probability
// φ(candidate)/bound — outright when the envelope is tight (φ = bound,
// as for constant and piecewise profiles), so the acceptance draw is
// only spent where rejection is possible. Returns +Inf when the process
// is disabled or the profile's remaining mass is negligible.
func (p *Process) SampleNextAt(now float64, src *rng.Source) float64 {
	if p.profile == nil {
		return p.SampleNext(src)
	}
	if p.Disabled() {
		return math.Inf(1)
	}
	base := p.accel * p.bias / p.mean
	t := now
	for {
		if t > maxHazardTime {
			return math.Inf(1)
		}
		bound, dt := p.profile.Envelope(t)
		end := t + dt
		if bound <= 0 {
			if math.IsInf(end, 1) {
				return math.Inf(1)
			}
			t = end
			continue
		}
		t += -math.Log(src.Float64Open()) / (base * bound)
		if t >= end {
			t = end
			continue
		}
		if m := p.profile.Multiplier(t); m >= bound || src.Float64Open()*bound <= m {
			return t - now
		}
	}
}

// ConstantHazard is the trivial profile φ(t) = Factor: a time-homogeneous
// channel whose rate is Factor times the process's base rate. Factor 1 is
// dynamically identical to no profile at all, but is sampled through the
// thinning path and canonicalizes distinctly (profiled configs never
// collide with unprofiled cache keys). Used mostly as the explicit
// "constant" arm of profile comparisons.
type ConstantHazard struct {
	// Factor is the constant multiplier, > 0.
	Factor float64
}

// NewConstantHazard returns a validated constant profile.
func NewConstantHazard(factor float64) (ConstantHazard, error) {
	h := ConstantHazard{Factor: factor}
	if err := h.Validate(); err != nil {
		return ConstantHazard{}, err
	}
	return h, nil
}

// Multiplier returns Factor.
func (h ConstantHazard) Multiplier(float64) float64 { return h.Factor }

// Envelope returns (Factor, +Inf): the bound holds forever.
func (h ConstantHazard) Envelope(float64) (float64, float64) {
	return h.Factor, math.Inf(1)
}

// MeanMultiplier returns Factor for every horizon.
func (h ConstantHazard) MeanMultiplier(float64) float64 { return h.Factor }

// Validate reports whether Factor is in domain.
func (h ConstantHazard) Validate() error {
	if math.IsNaN(h.Factor) || math.IsInf(h.Factor, 0) || h.Factor <= 0 {
		return fmt.Errorf("%w: constant hazard factor %v must be positive and finite", ErrInvalid, h.Factor)
	}
	return nil
}

// PiecewiseHazard is a piecewise-constant profile: φ(t) = Factors[i] for
// t in [Bounds[i-1], Bounds[i]), with Bounds[-1] = 0 and the final factor
// extending to +Inf. It is the general multiperiod-rate vocabulary —
// burn-in/useful-life/wear-out bathtubs (internal/aging.Bathtub),
// maintenance seasons, operator-outage windows — and doubles as its own
// exact thinning envelope, so sampling never rejects inside a segment.
type PiecewiseHazard struct {
	// Bounds are the ascending segment boundaries in hours, each > 0.
	// len(Factors) == len(Bounds)+1.
	Bounds []float64
	// Factors are the per-segment multipliers, each >= 0. At least one
	// must be positive.
	Factors []float64
}

// NewPiecewiseHazard returns a validated piecewise-constant profile.
func NewPiecewiseHazard(bounds, factors []float64) (PiecewiseHazard, error) {
	h := PiecewiseHazard{Bounds: bounds, Factors: factors}
	if err := h.Validate(); err != nil {
		return PiecewiseHazard{}, err
	}
	return h, nil
}

// segment returns the index of the segment containing t.
func (h PiecewiseHazard) segment(t float64) int {
	for i, b := range h.Bounds {
		if t < b {
			return i
		}
	}
	return len(h.Bounds)
}

// Multiplier returns the factor of the segment containing t.
func (h PiecewiseHazard) Multiplier(t float64) float64 {
	return h.Factors[h.segment(t)]
}

// Envelope returns the exact segment rate and the time to its boundary
// (+Inf in the final segment), so thinning accepts every in-window
// candidate.
func (h PiecewiseHazard) Envelope(t float64) (float64, float64) {
	i := h.segment(t)
	if i == len(h.Bounds) {
		return h.Factors[i], math.Inf(1)
	}
	return h.Factors[i], h.Bounds[i] - t
}

// MeanMultiplier integrates the step function over [0, horizon].
func (h PiecewiseHazard) MeanMultiplier(horizon float64) float64 {
	if horizon <= 0 {
		return h.Factors[0]
	}
	total, prev := 0.0, 0.0
	for i, b := range h.Bounds {
		if b >= horizon {
			break
		}
		total += h.Factors[i] * (b - prev)
		prev = b
	}
	total += h.Multiplier(horizon) * (horizon - prev)
	return total / horizon
}

// Validate reports whether the segments are well-formed.
func (h PiecewiseHazard) Validate() error {
	if len(h.Factors) != len(h.Bounds)+1 {
		return fmt.Errorf("%w: piecewise hazard needs len(factors) == len(bounds)+1, got %d factors for %d bounds", ErrInvalid, len(h.Factors), len(h.Bounds))
	}
	prev := 0.0
	for i, b := range h.Bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) || b <= prev {
			return fmt.Errorf("%w: piecewise hazard bounds must be finite, positive, and ascending; bound %d is %v after %v", ErrInvalid, i, b, prev)
		}
		prev = b
	}
	any := false
	for i, f := range h.Factors {
		if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return fmt.Errorf("%w: piecewise hazard factor %d is %v, must be finite and >= 0", ErrInvalid, i, f)
		}
		if f > 0 {
			any = true
		}
	}
	if !any {
		return fmt.Errorf("%w: piecewise hazard has no positive segment (disable the channel with a +Inf mean instead)", ErrInvalid)
	}
	return nil
}

// WeibullHazard is the power-law profile of Weibull wear-out:
// φ(t) = Shape·(t/Scale)^(Shape−1). With the process mean equal to Scale,
// the first arrival is exactly Weibull(Shape, Scale) — mean
// Scale·Γ(1+1/Shape) — which is the closed form the statistical tests
// check the thinning sampler against. Shape must be >= 1: shapes below 1
// have an unbounded hazard at t = 0 with no finite thinning envelope;
// model infant mortality with a PiecewiseHazard burn-in segment instead.
type WeibullHazard struct {
	// Shape is the Weibull k, >= 1 (1 = constant, memoryless).
	Shape float64
	// Scale is the Weibull λ in hours, > 0.
	Scale float64
}

// NewWeibullHazard returns a validated Weibull profile.
func NewWeibullHazard(shape, scale float64) (WeibullHazard, error) {
	h := WeibullHazard{Shape: shape, Scale: scale}
	if err := h.Validate(); err != nil {
		return WeibullHazard{}, err
	}
	return h, nil
}

// Multiplier returns Shape·(t/Scale)^(Shape−1).
func (h WeibullHazard) Multiplier(t float64) float64 {
	if h.Shape == 1 {
		return 1
	}
	if t <= 0 {
		return 0
	}
	return h.Shape * math.Pow(t/h.Scale, h.Shape-1)
}

// Envelope returns the multiplier at the window end — exact as a bound
// because the profile is non-decreasing (Shape >= 1). Windows grow with
// t, keeping the expected number of thinning rounds per arrival bounded.
func (h WeibullHazard) Envelope(t float64) (float64, float64) {
	if h.Shape == 1 {
		return 1, math.Inf(1)
	}
	dt := (t + h.Scale) / 4
	return h.Multiplier(t + dt), dt
}

// MeanMultiplier returns (horizon/Scale)^(Shape−1), the exact average of
// φ over [0, horizon].
func (h WeibullHazard) MeanMultiplier(horizon float64) float64 {
	if h.Shape == 1 || horizon <= 0 {
		return 1
	}
	return math.Pow(horizon/h.Scale, h.Shape-1)
}

// Validate reports whether shape and scale are in domain.
func (h WeibullHazard) Validate() error {
	if math.IsNaN(h.Shape) || math.IsInf(h.Shape, 0) || h.Shape < 1 {
		return fmt.Errorf("%w: weibull hazard shape %v must be >= 1 (use a piecewise burn-in segment for infant mortality)", ErrInvalid, h.Shape)
	}
	if math.IsNaN(h.Scale) || math.IsInf(h.Scale, 0) || h.Scale <= 0 {
		return fmt.Errorf("%w: weibull hazard scale %v must be positive and finite", ErrInvalid, h.Scale)
	}
	return nil
}

// ScaledHazard multiplies another profile by a positive constant. Its
// main use is equal-mean-rate normalization: Normalize wraps a profile so
// its MeanMultiplier over a reference horizon is exactly 1, letting
// profile-shape comparisons (E17) hold the expected fault count fixed.
type ScaledHazard struct {
	// Base is the underlying profile.
	Base Hazard
	// Factor is the constant multiplier, > 0.
	Factor float64
}

// Normalize returns h scaled so its mean multiplier over [0, horizon] is
// 1: the profile reshapes *when* faults arrive without changing how many
// arrive on average within the horizon.
func Normalize(h Hazard, horizon float64) (ScaledHazard, error) {
	if h == nil {
		return ScaledHazard{}, fmt.Errorf("%w: cannot normalize a nil hazard", ErrInvalid)
	}
	if err := h.Validate(); err != nil {
		return ScaledHazard{}, err
	}
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return ScaledHazard{}, fmt.Errorf("%w: normalization horizon %v must be positive and finite", ErrInvalid, horizon)
	}
	m := h.MeanMultiplier(horizon)
	if math.IsNaN(m) || m <= 0 || math.IsInf(m, 0) {
		return ScaledHazard{}, fmt.Errorf("%w: hazard mean multiplier %v over %v h is not normalizable", ErrInvalid, m, horizon)
	}
	return ScaledHazard{Base: h, Factor: 1 / m}, nil
}

// Multiplier returns Factor·Base.Multiplier(t).
func (h ScaledHazard) Multiplier(t float64) float64 {
	return h.Factor * h.Base.Multiplier(t)
}

// Envelope scales the base envelope.
func (h ScaledHazard) Envelope(t float64) (float64, float64) {
	bound, dt := h.Base.Envelope(t)
	return h.Factor * bound, dt
}

// MeanMultiplier scales the base average.
func (h ScaledHazard) MeanMultiplier(horizon float64) float64 {
	return h.Factor * h.Base.MeanMultiplier(horizon)
}

// Validate checks the factor and the base profile.
func (h ScaledHazard) Validate() error {
	if h.Base == nil {
		return fmt.Errorf("%w: scaled hazard has no base profile", ErrInvalid)
	}
	if math.IsNaN(h.Factor) || math.IsInf(h.Factor, 0) || h.Factor <= 0 {
		return fmt.Errorf("%w: scaled hazard factor %v must be positive and finite", ErrInvalid, h.Factor)
	}
	return h.Base.Validate()
}
