package faults

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Shock is a common-cause fault source: a single underlying error that
// produces faults at several replicas at once. It is the mechanistic
// counterpart of the abstract α factor — shared power units (Talagala's
// "a single power outage accounted for 22% of all machine restarts"),
// shared cooling, a flash worm, an administrator error replicated across
// a unified administrative domain, or a large-scale disaster (§4.2).
type Shock struct {
	// Name identifies the shared component or threat ("power/rack-1",
	// "admin/alice", "geo/SF-bay").
	Name string
	// Mean is the mean time between shock events, in hours.
	Mean float64
	// Targets lists the replica indices exposed to this shock.
	Targets []int
	// Kind is the fault class a shock inflicts. Power surges and floods
	// are Visible; a buggy firmware update or worm that silently corrupts
	// data is Latent.
	Kind Type
	// HitProb is the probability that each exposed replica is actually
	// faulted by a given shock event, independently. 1 means the shock
	// always takes out every target.
	HitProb float64
}

// Validate reports whether the shock is well-formed.
func (s Shock) Validate() error {
	if math.IsNaN(s.Mean) || s.Mean <= 0 {
		return fmt.Errorf("%w: shock %q mean %v must be positive", ErrInvalid, s.Name, s.Mean)
	}
	if len(s.Targets) == 0 {
		return fmt.Errorf("%w: shock %q has no targets", ErrInvalid, s.Name)
	}
	seen := make(map[int]bool, len(s.Targets))
	for _, t := range s.Targets {
		if t < 0 {
			return fmt.Errorf("%w: shock %q targets negative replica %d", ErrInvalid, s.Name, t)
		}
		if seen[t] {
			return fmt.Errorf("%w: shock %q targets replica %d twice", ErrInvalid, s.Name, t)
		}
		seen[t] = true
	}
	if math.IsNaN(s.HitProb) || s.HitProb < 0 || s.HitProb > 1 {
		return fmt.Errorf("%w: shock %q hit probability %v must be in [0,1]", ErrInvalid, s.Name, s.HitProb)
	}
	if s.Kind != Visible && s.Kind != Latent {
		return fmt.Errorf("%w: shock %q has unknown fault type %d", ErrInvalid, s.Name, int(s.Kind))
	}
	return nil
}

// SampleNext draws the time until the next shock event.
func (s Shock) SampleNext(src *rng.Source) float64 {
	return -s.Mean * math.Log(src.Float64Open())
}

// Strike returns the subset of Targets hit by one shock event.
func (s Shock) Strike(src *rng.Source) []int {
	if s.HitProb >= 1 {
		out := make([]int, len(s.Targets))
		copy(out, s.Targets)
		return out
	}
	var out []int
	for _, t := range s.Targets {
		if src.Bool(s.HitProb) {
			out = append(out, t)
		}
	}
	return out
}

// PerReplicaRate returns the marginal fault rate each exposed replica
// sees from this shock: HitProb/Mean. Topology comparisons hold this
// constant so that only the *correlation* differs, not the total hazard.
func (s Shock) PerReplicaRate() float64 {
	return s.HitProb / s.Mean
}

// MarginalRate sums the per-replica shock rates seen by the given replica
// across a set of shocks.
func MarginalRate(shocks []Shock, replica int) float64 {
	var rate float64
	for _, s := range shocks {
		for _, t := range s.Targets {
			if t == replica {
				rate += s.PerReplicaRate()
				break
			}
		}
	}
	return rate
}
