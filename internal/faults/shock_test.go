package faults

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func validShock() Shock {
	return Shock{
		Name:    "power/rack-1",
		Mean:    1000,
		Targets: []int{0, 1, 2},
		Kind:    Visible,
		HitProb: 1,
	}
}

func TestShockValidate(t *testing.T) {
	if err := validShock().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Shock)
	}{
		{"zero mean", func(s *Shock) { s.Mean = 0 }},
		{"nan mean", func(s *Shock) { s.Mean = math.NaN() }},
		{"no targets", func(s *Shock) { s.Targets = nil }},
		{"negative target", func(s *Shock) { s.Targets = []int{0, -1} }},
		{"duplicate target", func(s *Shock) { s.Targets = []int{1, 1} }},
		{"bad hit prob", func(s *Shock) { s.HitProb = 1.5 }},
		{"bad kind", func(s *Shock) { s.Kind = Type(7) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validShock()
			c.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestShockStrikeAllTargets(t *testing.T) {
	s := validShock()
	src := rng.New(1)
	hit := s.Strike(src)
	if len(hit) != 3 {
		t.Fatalf("HitProb=1 strike hit %v, want all 3 targets", hit)
	}
	// Must be a copy, not the internal slice.
	hit[0] = 99
	if s.Targets[0] == 99 {
		t.Error("Strike aliased the Targets slice")
	}
}

func TestShockStrikePartial(t *testing.T) {
	s := validShock()
	s.HitProb = 0.3
	src := rng.New(2)
	const n = 100000
	total := 0
	for i := 0; i < n; i++ {
		total += len(s.Strike(src))
	}
	got := float64(total) / n
	want := 0.3 * 3
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("mean targets hit = %v, want %v within 2%%", got, want)
	}
}

func TestShockSampleNextMean(t *testing.T) {
	s := validShock()
	src := rng.New(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.SampleNext(src)
	}
	if got := sum / n; math.Abs(got-1000)/1000 > 0.02 {
		t.Errorf("inter-shock mean %v, want 1000 within 2%%", got)
	}
}

func TestPerReplicaRate(t *testing.T) {
	s := validShock()
	s.HitProb = 0.5
	if got, want := s.PerReplicaRate(), 0.5/1000; math.Abs(got-want) > 1e-15 {
		t.Errorf("per-replica rate = %v, want %v", got, want)
	}
}

func TestMarginalRate(t *testing.T) {
	shocks := []Shock{
		{Name: "a", Mean: 100, Targets: []int{0, 1}, Kind: Visible, HitProb: 1},
		{Name: "b", Mean: 200, Targets: []int{1, 2}, Kind: Latent, HitProb: 0.5},
		{Name: "c", Mean: 50, Targets: []int{2}, Kind: Visible, HitProb: 1},
	}
	cases := []struct {
		replica int
		want    float64
	}{
		{0, 1.0 / 100},
		{1, 1.0/100 + 0.5/200},
		{2, 0.5/200 + 1.0/50},
		{3, 0},
	}
	for _, c := range cases {
		if got := MarginalRate(shocks, c.replica); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("MarginalRate(replica %d) = %v, want %v", c.replica, got, c.want)
		}
	}
}

// The correlation-vs-independence experiment requires that a colocated
// topology (one shock hitting all replicas) and a distributed topology
// (one shock per replica) expose each replica to the same marginal rate —
// only the joint behaviour differs.
func TestEqualMarginalRatesAcrossTopologies(t *testing.T) {
	colocated := []Shock{{Name: "dc", Mean: 100, Targets: []int{0, 1, 2}, Kind: Visible, HitProb: 1}}
	distributed := []Shock{
		{Name: "dc0", Mean: 100, Targets: []int{0}, Kind: Visible, HitProb: 1},
		{Name: "dc1", Mean: 100, Targets: []int{1}, Kind: Visible, HitProb: 1},
		{Name: "dc2", Mean: 100, Targets: []int{2}, Kind: Visible, HitProb: 1},
	}
	for r := 0; r < 3; r++ {
		a := MarginalRate(colocated, r)
		b := MarginalRate(distributed, r)
		if math.Abs(a-b) > 1e-15 {
			t.Errorf("replica %d marginal rates differ: colocated %v vs distributed %v", r, a, b)
		}
	}
}
