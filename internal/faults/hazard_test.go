package faults

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func mustProcess(t *testing.T, mean float64) *Process {
	t.Helper()
	p, err := NewProcess(mean)
	if err != nil {
		t.Fatalf("NewProcess(%v): %v", mean, err)
	}
	return p
}

// TestSampleNextAtNilProfileBitIdentical pins the constant-path contract:
// with no profile attached, SampleNextAt consumes exactly the one draw
// SampleNext does and returns the identical value, so switching call
// sites to SampleNextAt cannot perturb any historical result.
func TestSampleNextAtNilProfileBitIdentical(t *testing.T) {
	a := mustProcess(t, 1234.5)
	b := mustProcess(t, 1234.5)
	srcA, srcB := rng.New(7), rng.New(7)
	for i := 0; i < 1000; i++ {
		now := float64(i) * 17.25
		va := a.SampleNextAt(now, srcA)
		vb := b.SampleNext(srcB)
		if va != vb {
			t.Fatalf("draw %d: SampleNextAt %v != SampleNext %v", i, va, vb)
		}
	}
}

// TestWeibullThinningClosedFormMean is the statistical contract: a
// process with mean m under WeibullHazard{Shape: k, Scale: m} has
// first-arrival times distributed exactly Weibull(k, m), whose mean is
// m·Γ(1+1/k). The thinning sampler must agree with the closed form.
func TestWeibullThinningClosedFormMean(t *testing.T) {
	const mean = 40000.0
	const n = 100000
	for _, shape := range []float64{1.5, 2, 3} {
		h, err := NewWeibullHazard(shape, mean)
		if err != nil {
			t.Fatalf("NewWeibullHazard: %v", err)
		}
		p := mustProcess(t, mean)
		p.SetProfile(h)
		src := rng.New(42)
		sum := 0.0
		for i := 0; i < n; i++ {
			v := p.SampleNextAt(0, src)
			if math.IsInf(v, 1) || v <= 0 {
				t.Fatalf("shape %v: draw %d = %v", shape, i, v)
			}
			sum += v
		}
		got := sum / n
		want := mean * math.Gamma(1+1/shape)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Errorf("shape %v: sample mean %v vs closed form %v (rel err %.4f)", shape, got, want, rel)
		}
	}
}

// TestPiecewiseThinningClosedFormSurvival checks the piecewise sampler
// against the exact first-arrival survival function: with base mean m
// and factor f on [0, b), P(T > b) = exp(−f·b/m).
func TestPiecewiseThinningClosedFormSurvival(t *testing.T) {
	const mean = 1000.0
	const n = 100000
	h, err := NewPiecewiseHazard([]float64{500}, []float64{2, 0.5})
	if err != nil {
		t.Fatalf("NewPiecewiseHazard: %v", err)
	}
	p := mustProcess(t, mean)
	p.SetProfile(h)
	src := rng.New(9)
	beyond := 0
	for i := 0; i < n; i++ {
		if p.SampleNextAt(0, src) > 500 {
			beyond++
		}
	}
	got := float64(beyond) / n
	want := math.Exp(-2 * 500 / mean)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("P(T > 500) = %v, want %v", got, want)
	}
}

// TestConstantHazardExponential checks that a factor-f constant profile
// is statistically an exponential at f times the base rate.
func TestConstantHazardExponential(t *testing.T) {
	const mean = 5000.0
	h, err := NewConstantHazard(2.5)
	if err != nil {
		t.Fatalf("NewConstantHazard: %v", err)
	}
	p := mustProcess(t, mean)
	p.SetProfile(h)
	src := rng.New(3)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.SampleNextAt(0, src)
	}
	got := sum / n
	want := mean / 2.5
	if rel := math.Abs(got-want) / want; rel > 0.01 {
		t.Errorf("sample mean %v, want %v", got, want)
	}
}

// TestSampleNextAtDeterministic pins per-seed determinism of the
// thinning path: identical seeds reproduce identical draw sequences.
func TestSampleNextAtDeterministic(t *testing.T) {
	h, err := NewWeibullHazard(2, 30000)
	if err != nil {
		t.Fatal(err)
	}
	draw := func() []float64 {
		p := mustProcess(t, 30000)
		p.SetProfile(h)
		src := rng.New(11)
		out := make([]float64, 200)
		for i := range out {
			out[i] = p.SampleNextAt(float64(i)*100, src)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: %v != %v", i, a[i], b[i])
		}
	}
}

// TestSampleNextAtDisabled checks disabled processes stay disabled under
// a profile, and zero-tail profiles return +Inf instead of looping.
func TestSampleNextAtDisabled(t *testing.T) {
	p := mustProcess(t, math.Inf(1))
	h, _ := NewConstantHazard(4)
	p.SetProfile(h)
	if v := p.SampleNextAt(0, rng.New(1)); !math.IsInf(v, 1) {
		t.Errorf("disabled process sampled %v, want +Inf", v)
	}

	// A profile whose final segment is rate 0: arrivals past the last
	// bound are impossible, so the sampler must terminate with +Inf.
	dead, err := NewPiecewiseHazard([]float64{10}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	q := mustProcess(t, 1e9) // nearly no mass in [0, 10)
	q.SetProfile(dead)
	sawInf := false
	src := rng.New(5)
	for i := 0; i < 100; i++ {
		if math.IsInf(q.SampleNextAt(0, src), 1) {
			sawInf = true
			break
		}
	}
	if !sawInf {
		t.Error("zero-tail profile never returned +Inf")
	}
}

// TestEnvelopeBounds checks the thinning soundness invariant
// Multiplier(t) <= bound over each envelope window.
func TestEnvelopeBounds(t *testing.T) {
	profiles := []Hazard{
		ConstantHazard{Factor: 3},
		PiecewiseHazard{Bounds: []float64{100, 5000}, Factors: []float64{4, 1, 9}},
		WeibullHazard{Shape: 3, Scale: 10000},
		ScaledHazard{Base: WeibullHazard{Shape: 2, Scale: 400}, Factor: 0.25},
	}
	for _, h := range profiles {
		if err := h.Validate(); err != nil {
			t.Fatalf("%T: %v", h, err)
		}
		for _, from := range []float64{0, 50, 100, 999, 5000, 123456} {
			bound, dt := h.Envelope(from)
			if dt <= 0 {
				t.Fatalf("%T: Envelope(%v) window %v <= 0", h, from, dt)
			}
			end := from + dt
			if math.IsInf(end, 1) {
				end = from + 1e7
			}
			for i := 0; i <= 20; i++ {
				at := from + (end-from)*float64(i)/20
				if at >= from+dt {
					break
				}
				if m := h.Multiplier(at); m > bound*(1+1e-12) {
					t.Fatalf("%T: Multiplier(%v) = %v exceeds envelope %v from %v", h, at, m, bound, from)
				}
			}
		}
	}
}

// TestMeanMultiplierClosedForms pins the analytic averages the
// equal-mean-rate normalization depends on.
func TestMeanMultiplierClosedForms(t *testing.T) {
	w := WeibullHazard{Shape: 2, Scale: 1000}
	if got, want := w.MeanMultiplier(4000), 4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("weibull mean multiplier %v, want %v", got, want)
	}
	pw := PiecewiseHazard{Bounds: []float64{100}, Factors: []float64{5, 1}}
	// (5·100 + 1·900)/1000 = 1.4
	if got, want := pw.MeanMultiplier(1000), 1.4; math.Abs(got-want) > 1e-12 {
		t.Errorf("piecewise mean multiplier %v, want %v", got, want)
	}
	// Horizon inside the first segment.
	if got, want := pw.MeanMultiplier(50), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("piecewise short-horizon mean multiplier %v, want %v", got, want)
	}
	n, err := Normalize(pw, 1000)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	if got := n.MeanMultiplier(1000); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized mean multiplier %v, want 1", got)
	}
}

// TestHazardValidation exercises the constructors' domain checks.
func TestHazardValidation(t *testing.T) {
	if _, err := NewConstantHazard(0); err == nil {
		t.Error("constant factor 0 accepted")
	}
	if _, err := NewConstantHazard(math.Inf(1)); err == nil {
		t.Error("constant factor +Inf accepted")
	}
	if _, err := NewWeibullHazard(0.5, 100); err == nil {
		t.Error("weibull shape < 1 accepted")
	}
	if _, err := NewWeibullHazard(2, 0); err == nil {
		t.Error("weibull scale 0 accepted")
	}
	if _, err := NewPiecewiseHazard([]float64{10, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("descending bounds accepted")
	}
	if _, err := NewPiecewiseHazard([]float64{10}, []float64{1}); err == nil {
		t.Error("factor/bound length mismatch accepted")
	}
	if _, err := NewPiecewiseHazard([]float64{10}, []float64{0, 0}); err == nil {
		t.Error("all-zero piecewise accepted")
	}
	if _, err := NewPiecewiseHazard(nil, []float64{2}); err != nil {
		t.Error("single-segment piecewise rejected")
	}
	if _, err := Normalize(nil, 100); err == nil {
		t.Error("normalizing nil accepted")
	}
	if _, err := Normalize(ConstantHazard{Factor: 1}, 0); err == nil {
		t.Error("normalization horizon 0 accepted")
	}
}
