package faults

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTypeString(t *testing.T) {
	if Visible.String() != "visible" || Latent.String() != "latent" {
		t.Errorf("type strings: %v, %v", Visible, Latent)
	}
	if s := Type(99).String(); s == "" {
		t.Error("unknown type should still render")
	}
}

func TestNewProcessValidation(t *testing.T) {
	for _, mean := range []float64{0, -5, math.NaN()} {
		if _, err := NewProcess(mean); err == nil {
			t.Errorf("NewProcess(%v) accepted invalid mean", mean)
		}
	}
	p, err := NewProcess(math.Inf(1))
	if err != nil {
		t.Fatalf("infinite mean should be accepted (disabled channel): %v", err)
	}
	if !p.Disabled() {
		t.Error("infinite-mean process should report disabled")
	}
	if next := p.SampleNext(rng.New(1)); !math.IsInf(next, 1) {
		t.Errorf("disabled process sampled %v, want +Inf", next)
	}
}

func TestProcessSampleMean(t *testing.T) {
	p, err := NewProcess(500)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.SampleNext(src)
	}
	if got := sum / n; math.Abs(got-500)/500 > 0.01 {
		t.Errorf("sample mean %v, want 500 within 1%%", got)
	}
}

func TestProcessAcceleration(t *testing.T) {
	p, err := NewProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	p.SetAcceleration(10)
	if got := p.EffectiveMean(); got != 100 {
		t.Errorf("effective mean = %v, want 100", got)
	}
	if got := p.BaseMean(); got != 1000 {
		t.Errorf("base mean changed to %v", got)
	}
	src := rng.New(3)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.SampleNext(src)
	}
	if got := sum / n; math.Abs(got-100)/100 > 0.02 {
		t.Errorf("accelerated sample mean %v, want 100 within 2%%", got)
	}
	p.SetAcceleration(1)
	if got := p.EffectiveMean(); got != 1000 {
		t.Errorf("reset effective mean = %v, want 1000", got)
	}
}

func TestProcessAccelerationPanics(t *testing.T) {
	p, _ := NewProcess(100)
	for _, f := range []float64{0.5, 0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetAcceleration(%v) did not panic", f)
				}
			}()
			p.SetAcceleration(f)
		}()
	}
}

func TestAlphaCorrelation(t *testing.T) {
	c, err := NewAlphaCorrelation(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Acceleration(0); got != 1 {
		t.Errorf("acceleration with no faults = %v, want 1", got)
	}
	for _, n := range []int{1, 2, 5} {
		if got := c.Acceleration(n); got != 10 {
			t.Errorf("acceleration(%d) = %v, want flat 10 (paper's model)", n, got)
		}
	}
	if c.Alpha() != 0.1 {
		t.Errorf("Alpha() = %v, want 0.1", c.Alpha())
	}
}

func TestAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewAlphaCorrelation(a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
		if _, err := NewCompoundingAlpha(a); err == nil {
			t.Errorf("compounding alpha %v accepted", a)
		}
	}
	if _, err := NewAlphaCorrelation(1); err != nil {
		t.Errorf("alpha=1 (independence) rejected: %v", err)
	}
}

func TestIndependent(t *testing.T) {
	var c Independent
	for _, n := range []int{0, 1, 10} {
		if got := c.Acceleration(n); got != 1 {
			t.Errorf("independent acceleration(%d) = %v, want 1", n, got)
		}
	}
	if c.Alpha() != 1 {
		t.Errorf("independent alpha = %v, want 1", c.Alpha())
	}
}

func TestCompoundingAlpha(t *testing.T) {
	c, err := NewCompoundingAlpha(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 8}
	for n, w := range want {
		if got := c.Acceleration(n); math.Abs(got-w) > 1e-12 {
			t.Errorf("compounding acceleration(%d) = %v, want %v", n, got, w)
		}
	}
	// At one outstanding fault, flat and compounding agree: both are the
	// paper's conditional-second-fault acceleration.
	flat, _ := NewAlphaCorrelation(0.5)
	if flat.Acceleration(1) != c.Acceleration(1) {
		t.Error("flat and compounding must agree at nFaulty=1")
	}
}
