package des

import "testing"

func TestTickerFiresPeriodically(t *testing.T) {
	var e Engine
	var times []Time
	e.Every(10, 5, func(e *Engine) { times = append(times, e.Now()) })
	e.RunUntil(31)
	want := []Time{10, 15, 20, 25, 30}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	var e Engine
	count := 0
	tk := e.Every(0, 1, func(*Engine) { count++ })
	e.Schedule(3.5, func(*Engine) { tk.Stop() })
	e.RunUntil(10)
	if count != 4 { // fires at 0,1,2,3
		t.Errorf("ticker fired %d times, want 4", count)
	}
	if !tk.Stopped() {
		t.Error("ticker should report stopped")
	}
	if _, ok := tk.Next(); ok {
		t.Error("stopped ticker should have no next firing")
	}
	if tk.Count != 4 {
		t.Errorf("Count = %d, want 4", tk.Count)
	}
}

func TestTickerStopFromOwnHandler(t *testing.T) {
	var e Engine
	count := 0
	var tk *Ticker
	tk = e.Every(0, 2, func(*Engine) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Errorf("self-stopping ticker fired %d times, want 3", count)
	}
}

func TestTickerNext(t *testing.T) {
	var e Engine
	tk := e.Every(7, 3, func(*Engine) {})
	next, ok := tk.Next()
	if !ok || next != 7 {
		t.Errorf("Next() = %v, %v; want 7, true", next, ok)
	}
	e.RunUntil(8)
	next, ok = tk.Next()
	if !ok || next != 10 {
		t.Errorf("Next() after first firing = %v, %v; want 10, true", next, ok)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every with period 0 did not panic")
		}
	}()
	var e Engine
	e.Every(0, 0, func(*Engine) {})
}
