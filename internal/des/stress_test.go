package des

import (
	"testing"

	"repro/internal/rng"
)

// TestScheduleCancelStorm hammers the engine with interleaved schedules
// and cancellations from inside handlers and verifies the core
// invariants: the clock never goes backward, every fired event was live,
// and fired + cancelled-unfired accounts for every schedule.
func TestScheduleCancelStorm(t *testing.T) {
	src := rng.New(99)
	for round := 0; round < 20; round++ {
		var e Engine
		var scheduled, fired, cancelled int
		var live []*Handle
		lastTime := -1.0

		var mkHandler func(depth int) Handler
		mkHandler = func(depth int) Handler {
			return func(e *Engine) {
				fired++
				if e.Now() < lastTime {
					t.Fatalf("clock went backward: %v after %v", e.Now(), lastTime)
				}
				lastTime = e.Now()
				// Randomly schedule more work and cancel random pending
				// handles.
				if depth < 3 {
					n := src.Intn(4)
					for i := 0; i < n; i++ {
						h := e.ScheduleAfter(src.Float64()*10, mkHandler(depth+1))
						scheduled++
						live = append(live, h)
					}
				}
				if len(live) > 0 && src.Bool(0.3) {
					idx := src.Intn(len(live))
					h := live[idx]
					if !h.Cancelled() && h.At() > e.Now() {
						h.Cancel()
						cancelled++
					}
				}
			}
		}
		for i := 0; i < 50; i++ {
			h := e.Schedule(src.Float64()*100, mkHandler(0))
			scheduled++
			live = append(live, h)
		}
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("round %d: %d events left pending after Run", round, e.Pending())
		}
		if int(e.Fired()) != fired {
			t.Fatalf("round %d: engine fired %d, handlers saw %d", round, e.Fired(), fired)
		}
		if fired+cancelled != scheduled {
			t.Fatalf("round %d: fired %d + cancelled %d != scheduled %d", round, fired, cancelled, scheduled)
		}
	}
}

// TestManyEventsOrdered verifies strict time ordering over a large
// randomized schedule.
func TestManyEventsOrdered(t *testing.T) {
	var e Engine
	src := rng.New(123)
	const n = 50000
	var prev float64 = -1
	count := 0
	for i := 0; i < n; i++ {
		at := src.Float64() * 1e6
		e.Schedule(at, func(e *Engine) {
			if e.Now() < prev {
				t.Fatalf("out of order: %v after %v", e.Now(), prev)
			}
			prev = e.Now()
			count++
		})
	}
	e.Run()
	if count != n {
		t.Fatalf("fired %d of %d", count, n)
	}
}
