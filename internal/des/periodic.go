package des

import "fmt"

// Ticker repeatedly invokes a handler at a fixed period, the shape of a
// periodic scrub schedule. It reschedules itself after each firing until
// stopped.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      Handler
	pending *Handle
	stopped bool

	// Count is the number of completed firings.
	Count int
}

// Every schedules fn to run at start and then every period hours. It
// panics on a non-positive period (a zero period would livelock the
// engine at a single instant).
func (e *Engine) Every(start, period Time, fn Handler) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("des: Every with non-positive period %v", period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.pending = e.Schedule(start, t.fire)
	return t
}

func (t *Ticker) fire(e *Engine) {
	if t.stopped {
		return
	}
	t.Count++
	t.fn(e)
	if !t.stopped { // handler may have called Stop
		t.pending = e.ScheduleAfter(t.period, t.fire)
	}
}

// Stop cancels future firings. Safe to call from within the handler.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}

// Stopped reports whether Stop was called.
func (t *Ticker) Stopped() bool { return t.stopped }

// Next returns the time of the next scheduled firing and whether one is
// pending.
func (t *Ticker) Next() (Time, bool) {
	if t.stopped || t.pending == nil || t.pending.Cancelled() {
		return 0, false
	}
	return t.pending.At(), true
}
