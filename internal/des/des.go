// Package des is a minimal deterministic discrete-event simulation engine:
// a simulation clock plus a priority queue of scheduled callbacks.
//
// The Monte Carlo reliability simulator in internal/sim is built on top of
// it. Two properties matter there and shape the design:
//
//   - Determinism. Events at equal times fire in scheduling order (FIFO
//     tie-break by sequence number), so a trial is a pure function of its
//     random seed.
//   - Cheap cancellation. Fault/repair/audit processes constantly
//     invalidate each other's pending events (a repaired replica cancels
//     its pending second-fault event). Cancellation is O(1) by marking;
//     dead events are dropped lazily when popped.
//
// Time is a float64 in hours, consistent with the rest of the repository.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in hours.
type Time = float64

// Handler is a callback invoked when its event fires. It runs on the
// engine's single logical thread: handlers may schedule and cancel freely
// but must not retain the engine across goroutines.
type Handler func(e *Engine)

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct {
	at        Time
	seq       uint64
	fn        Handler
	index     int // position in the heap, -1 once popped or cancelled
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op, so owners can Cancel defensively.
func (h *Handle) Cancel() {
	if h == nil {
		return
	}
	h.cancelled = true
	h.fn = nil // release closure for GC; heap entry is dropped lazily
}

// Cancelled reports whether Cancel was called.
func (h *Handle) Cancelled() bool { return h != nil && h.cancelled }

// At returns the simulation time the event is (or was) scheduled for.
func (h *Handle) At() Time { return h.at }

// Engine is a discrete-event scheduler. The zero value is ready to use at
// time 0.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool

	// Fired counts handler invocations, for tests and run statistics.
	fired uint64

	// free recycles Handles across Reset boundaries: events still
	// pending when a simulation ends are the common case in censored
	// reliability runs (a fault arrival far beyond the horizon), and
	// without recycling every such event costs one allocation per run.
	free []*Handle
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have fired.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled (possibly cancelled but not yet
// dropped) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at absolute time at. It panics if at is
// before the current time or not a finite number: scheduling into the past
// is always a simulator bug, and failing loudly at the call site is the
// only useful behaviour.
func (e *Engine) Schedule(at Time, fn Handler) *Handle {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("des: Schedule at non-finite time %v", at))
	}
	if at < e.now {
		panic(fmt.Sprintf("des: Schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("des: Schedule with nil handler")
	}
	var h *Handle
	if n := len(e.free); n > 0 {
		h = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*h = Handle{at: at, seq: e.seq, fn: fn}
	} else {
		h = &Handle{at: at, seq: e.seq, fn: fn}
	}
	e.seq++
	heap.Push(&e.queue, h)
	return h
}

// ScheduleAfter registers fn to run delay hours from now. Negative delays
// panic; a zero delay fires after all events already scheduled for the
// current instant (FIFO).
func (e *Engine) ScheduleAfter(delay Time, fn Handler) *Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: ScheduleAfter negative delay %v", delay))
	}
	return e.Schedule(e.now+delay, fn)
}

// Step fires the next pending event, advancing the clock to its time. It
// returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		h := heap.Pop(&e.queue).(*Handle)
		if h.cancelled {
			continue
		}
		e.now = h.at
		fn := h.fn
		h.fn = nil
		e.fired++
		fn(e)
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires all events scheduled at or before horizon (unless Stop is
// called), then advances the clock to horizon. It panics if horizon is in
// the past.
func (e *Engine) RunUntil(horizon Time) {
	if horizon < e.now {
		panic(fmt.Sprintf("des: RunUntil horizon %v before now %v", horizon, e.now))
	}
	e.stopped = false
	for !e.stopped {
		h := e.peekLive()
		if h == nil || h.at > horizon {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < horizon {
		e.now = horizon
	}
}

// Reset returns the engine to its zero state — time 0, empty queue,
// sequence counter 0 — while keeping the queue's backing array and
// recycling still-queued Handles, so a worker can run millions of short
// simulations on one Engine with almost no per-run allocation.
//
// Recycling makes Reset a hard ownership boundary: every *Handle handed
// out before the call may be reused by a later Schedule, so callers must
// drop all Handle references when they Reset (the simulator's per-trial
// reset does exactly that before arming anything). Handles that already
// fired are not recycled — callers routinely keep pointers to those
// within a run and Cancel them defensively.
func (e *Engine) Reset() {
	for i, h := range e.queue {
		h.index = -1
		h.fn = nil
		h.cancelled = false
		e.free = append(e.free, h)
		e.queue[i] = nil
	}
	e.queue = e.queue[:0]
	e.now = 0
	e.seq = 0
	e.stopped = false
	e.fired = 0
}

// Stop halts Run/RunUntil after the current handler returns. The queue is
// left intact so the run can be resumed.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop was called during the last Run/RunUntil.
func (e *Engine) Stopped() bool { return e.stopped }

// eventQueue is a min-heap on (time, seq).
type eventQueue []*Handle

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	h := x.(*Handle)
	h.index = len(*q)
	*q = append(*q, h)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	h.index = -1
	*q = old[:n-1]
	return h
}

// peekLive returns the earliest non-cancelled event without firing it,
// dropping cancelled entries it encounters at the head.
func (e *Engine) peekLive() *Handle {
	for e.queue.Len() > 0 {
		if h := e.queue[0]; !h.cancelled {
			return h
		}
		heap.Pop(&e.queue)
	}
	return nil
}
