package des

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("firing order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d, want 3", e.Fired())
	}
}

func TestEqualTimesFIFO(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: order = %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestScheduleInvalidPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func(e *Engine)
	}{
		{"nan", func(e *Engine) { e.Schedule(nan(), func(*Engine) {}) }},
		{"nil handler", func(e *Engine) { e.Schedule(1, nil) }},
		{"negative delay", func(e *Engine) { e.ScheduleAfter(-1, func(*Engine) {}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			var e Engine
			c.f(&e)
		})
	}
}

func nan() float64 {
	v := 0.0
	return v / v
}

func TestHandlerSchedulesMore(t *testing.T) {
	var e Engine
	var times []Time
	var chain func(e *Engine)
	chain = func(e *Engine) {
		times = append(times, e.Now())
		if len(times) < 5 {
			e.ScheduleAfter(2, chain)
		}
	}
	e.Schedule(1, chain)
	e.Run()
	want := []Time{1, 3, 5, 7, 9}
	if len(times) != len(want) {
		t.Fatalf("chain times = %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("chain times = %v, want %v", times, want)
		}
	}
}

func TestCancel(t *testing.T) {
	var e Engine
	fired := false
	h := e.Schedule(1, func(*Engine) { fired = true })
	h.Cancel()
	if !h.Cancelled() {
		t.Error("handle should report cancelled")
	}
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double cancel and cancel-after-run are no-ops.
	h.Cancel()
	var nilHandle *Handle
	nilHandle.Cancel() // must not panic
}

func TestCancelFromHandler(t *testing.T) {
	var e Engine
	var secondFired bool
	var h2 *Handle
	e.Schedule(1, func(*Engine) { h2.Cancel() })
	h2 = e.Schedule(2, func(*Engine) { secondFired = true })
	e.Run()
	if secondFired {
		t.Error("event cancelled by an earlier handler still fired")
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{1, 5, 10, 15} {
		at := at
		e.Schedule(at, func(e *Engine) { fired = append(fired, e.Now()) })
	}
	e.RunUntil(10)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,5,10", fired)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	// Continue to the rest.
	e.RunUntil(20)
	if len(fired) != 4 || e.Now() != 20 {
		t.Errorf("after second RunUntil: fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("idle clock = %v, want 42", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Error("RunUntil into the past did not panic")
		}
	}()
	e.RunUntil(41)
}

func TestStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i), func(e *Engine) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("events fired = %d, want 3 (stopped)", count)
	}
	if !e.Stopped() {
		t.Error("engine should report stopped")
	}
	// Resume processes the rest.
	e.Run()
	if count != 10 {
		t.Errorf("after resume, events fired = %d, want 10", count)
	}
}

func TestStopDuringRunUntil(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(Time(i), func(e *Engine) {
			count++
			e.Stop()
		})
	}
	e.RunUntil(10)
	if count != 1 {
		t.Errorf("fired %d, want 1", count)
	}
	// The clock must not jump to the horizon when stopped early.
	if e.Now() != 1 {
		t.Errorf("clock = %v, want 1 (stopped before horizon)", e.Now())
	}
}

func TestDeterministicUnderPermutation(t *testing.T) {
	// The firing order depends only on (time, scheduling order), so two
	// engines given the same schedule produce identical traces.
	f := func(rawTimes []uint16) bool {
		if len(rawTimes) == 0 {
			return true
		}
		times := make([]Time, len(rawTimes))
		for i, r := range rawTimes {
			times[i] = Time(r % 100)
		}
		run := func() []Time {
			var e Engine
			var trace []Time
			for _, at := range times {
				at := at
				e.Schedule(at, func(e *Engine) { trace = append(trace, e.Now()) })
			}
			e.Run()
			return trace
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return sort.Float64sAreSorted(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroDelayFIFO(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(1, func(e *Engine) {
		order = append(order, "first")
		e.ScheduleAfter(0, func(*Engine) { order = append(order, "chained") })
	})
	e.Schedule(1, func(*Engine) { order = append(order, "second") })
	e.Run()
	want := []string{"first", "second", "chained"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPendingCountsCancelled(t *testing.T) {
	var e Engine
	h := e.Schedule(1, func(*Engine) {})
	e.Schedule(2, func(*Engine) {})
	h.Cancel()
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2 (lazy deletion)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("pending after run = %d, want 0", e.Pending())
	}
	if e.Fired() != 1 {
		t.Errorf("fired = %d, want 1", e.Fired())
	}
}
