package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// estimateBiasFields is the slice of the estimate body the bias tests
// care about.
type estimateBiasFields struct {
	Bias             *float64 `json:"bias"`
	EffectiveSamples *float64 `json:"effective_samples"`
	Trials           int      `json:"trials"`
}

// TestServiceDefaultBiasPolicy: a daemon started with a server-wide bias
// default applies it to horizon-censored requests that did not choose a
// mode, leaves horizon-less requests unbiased (biasing requires a
// horizon), and counts the biased runs in /stats.
func TestServiceDefaultBiasPolicy(t *testing.T) {
	svc := New(Config{
		CacheSize: 64, Shards: 1, QueueDepth: 8, JobTimeout: time.Minute,
		SimParallel: 2, DefaultBias: -1, // model-chosen β
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})

	seed := uint64(7)
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 300, HorizonYears: 50, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("biased-by-policy request: %s: %s", resp.Status, readAll(t, resp))
	}
	var biased estimateBiasFields
	if err := json.Unmarshal(readAll(t, resp), &biased); err != nil {
		t.Fatal(err)
	}
	if biased.Bias == nil || *biased.Bias < 1 {
		t.Fatalf("policy-biased estimate bias = %v, want a resolved factor >= 1", biased.Bias)
	}
	if biased.EffectiveSamples == nil {
		t.Error("policy-biased estimate missing effective_samples")
	}

	// No horizon: the default must not apply (biasing requires one).
	plain := postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 60, Seed: &seed})
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("horizon-less request: %s: %s", plain.Status, readAll(t, plain))
	}
	var unbiased estimateBiasFields
	if err := json.Unmarshal(readAll(t, plain), &unbiased); err != nil {
		t.Fatal(err)
	}
	if unbiased.Bias != nil {
		t.Errorf("horizon-less estimate reports bias %v, want unbiased", *unbiased.Bias)
	}

	stats, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	if err := json.Unmarshal(readAll(t, stats), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.BiasedRuns != 1 {
		t.Errorf("/stats biased_runs = %d, want 1 (one biased, one plain)", snap.BiasedRuns)
	}
}

// TestEstimateRequestExplicitBias: a request can pick its own bias on a
// daemon with no server-wide default, the resolved factor rides the
// response, and biased/unbiased requests never share a cache key.
func TestEstimateRequestExplicitBias(t *testing.T) {
	_, ts := newTestService(t)
	seed := uint64(9)
	base := EstimateRequest{Trials: 300, HorizonYears: 50, Seed: &seed}

	plain := postJSON(t, ts.URL+"/estimate", base)
	if plain.StatusCode != http.StatusOK {
		t.Fatalf("plain request: %s: %s", plain.Status, readAll(t, plain))
	}
	plainKey := plain.Header.Get("X-Ltsimd-Key")
	readAll(t, plain)

	req := base
	req.Bias = 200
	resp := postJSON(t, ts.URL+"/estimate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("biased request: %s: %s", resp.Status, readAll(t, resp))
	}
	if key := resp.Header.Get("X-Ltsimd-Key"); key == plainKey {
		t.Error("biased and unbiased requests share a cache key")
	}
	var got estimateBiasFields
	if err := json.Unmarshal(readAll(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if got.Bias == nil || *got.Bias != 200 {
		t.Errorf("explicit-bias estimate bias = %v, want 200", got.Bias)
	}

	// Invalid bias values are rejected before any simulation runs.
	bad := base
	bad.Bias = 0.5
	reject := postJSON(t, ts.URL+"/estimate", bad)
	body := readAll(t, reject)
	if reject.StatusCode == http.StatusOK {
		t.Errorf("bias 0.5 accepted, want a client error: %s", body)
	}
}
