package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// serviceMetrics holds the HTTP-layer instrument handles. Cache and
// scheduler instruments live on their own types (resultCache.instrument,
// scheduler.instrument); everything registers into one shared registry
// that GET /metrics exposes.
type serviceMetrics struct {
	reg          *telemetry.Registry
	httpSeconds  *telemetry.HistogramVec // route, status, cache
	httpInflight *telemetry.Gauge
	sweepDeduped *telemetry.Counter
}

// newServiceMetrics registers the HTTP metric families.
func newServiceMetrics(reg *telemetry.Registry) *serviceMetrics {
	return &serviceMetrics{
		reg: reg,
		httpSeconds: reg.HistogramVec("ltsimd_http_request_seconds",
			"HTTP request latency by route, status code, and cache outcome (hit, miss, dedup, none).",
			telemetry.DurationBuckets, "route", "status", "cache"),
		httpInflight: reg.Gauge("ltsimd_http_in_flight",
			"HTTP requests currently being served."),
		sweepDeduped: reg.Counter("ltsimd_sweep_deduped_total",
			"Sweep indices absorbed by batch-wide fingerprint dedupe (duplicates replaying another index's bytes)."),
	}
}

// routeLabel folds a request path onto the bounded route label set so
// arbitrary client paths cannot explode metric cardinality.
func routeLabel(path string) string {
	switch path {
	case "/estimate", "/sweep", "/scenarios/expand", "/experiments",
		"/experiments/run", "/healthz", "/stats", "/metrics":
		return path
	}
	return "other"
}

// statusRecorder captures the response status for the middleware while
// passing flushes through, so NDJSON streaming handlers keep working
// behind it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry is the observability middleware: it assigns every
// request an ID (returned in X-Ltsimd-Request and attached to the
// context as a telemetry.Trace that handlers and scheduler jobs mark),
// records the per-route latency histogram split by status and cache
// outcome, and emits one structured slog record per request carrying
// the span timeline as NDJSON.
func (s *Service) withTelemetry(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := telemetry.NewTrace()
		tr.Mark("received")
		w.Header().Set("X-Ltsimd-Request", tr.ID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}

		s.metrics.httpInflight.Add(1)
		h.ServeHTTP(rec, r.WithContext(telemetry.WithTrace(r.Context(), tr)))
		s.metrics.httpInflight.Add(-1)
		tr.Mark("served")

		route := routeLabel(r.URL.Path)
		cache := rec.Header().Get("X-Ltsimd-Cache")
		if cache == "" {
			cache = "none"
		}
		elapsed := time.Since(tr.Start)
		s.metrics.httpSeconds.With(route, strconv.Itoa(rec.status), cache).Observe(elapsed.Seconds())

		// Scrape and liveness traffic logs at debug so steady-state
		// monitoring does not flood the request log.
		level := slog.LevelInfo
		if route == "/healthz" || route == "/metrics" {
			level = slog.LevelDebug
		}
		attrs := append([]slog.Attr{
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("status", rec.status),
			slog.String("cache", cache),
			slog.Float64("dur_ms", float64(elapsed.Nanoseconds())/1e6),
		}, tr.LogAttrs()...)
		s.logger.LogAttrs(r.Context(), level, "request", attrs...)
	})
}
