package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Service is the simulation service: canonical hashing in front of a
// content-addressed cache in front of a sharded scheduler. Create with
// New, serve Handler, stop with Shutdown.
type Service struct {
	cfg   Config
	cache *resultCache
	// diskStore is the persistent result tier under the memory LRU; nil
	// when the service runs memory-only (Config.Store unset).
	diskStore store.Store
	sched     *scheduler
	mux       *http.ServeMux
	start     time.Time
	// progressSem bounds concurrently-running progress-streamed
	// simulations. Progress runs execute outside the shard queue, so
	// this capacity is additive to the scheduler's: at most Shards extra
	// simulations on top of the Shards queued ones, never unbounded.
	progressSem chan struct{}
	// progressMu/progressInflight single-flight progress runs by
	// canonical key: concurrent duplicates wait for the owner and replay
	// its cached result instead of recomputing.
	progressMu       sync.Mutex
	progressInflight map[string]chan struct{}

	// logger receives one structured record per request (the span
	// timeline) plus service lifecycle events; defaults to discarding.
	logger *slog.Logger
	// metrics is the HTTP instrument set; metrics.reg is the registry
	// GET /metrics exposes (cache, scheduler, and sim families register
	// into the same one).
	metrics *serviceMetrics
	// sweepDeduped counts, across all sweeps, indices that replayed
	// another index's bytes via batch-wide fingerprint dedupe.
	sweepDeduped atomic.Uint64
	// biasedRuns counts simulations this service actually executed (not
	// cache replays) under importance-sampled failure biasing.
	biasedRuns atomic.Uint64
}

// New returns a started service (its scheduler workers are running).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:              cfg,
		cache:            newResultCache(cfg.CacheSize),
		diskStore:        cfg.Store,
		sched:            newScheduler(cfg.Shards, cfg.QueueDepth, cfg.JobTimeout),
		mux:              http.NewServeMux(),
		start:            time.Now(),
		progressSem:      make(chan struct{}, cfg.Shards),
		progressInflight: make(map[string]chan struct{}),
		logger:           cfg.Logger,
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.metrics = newServiceMetrics(reg)
	s.cache.instrument(reg)
	if in, ok := s.diskStore.(interface {
		Instrument(*telemetry.Registry)
	}); ok {
		in.Instrument(reg)
	}
	s.sched.instrument(reg)
	sim.EnableMetrics(reg)
	reg.GaugeFunc("ltsimd_progress_inflight",
		"Progress-streamed estimate runs currently in flight (single-flight owners).", func() float64 {
			s.progressMu.Lock()
			defer s.progressMu.Unlock()
			return float64(len(s.progressInflight))
		})
	reg.GaugeFunc("ltsimd_uptime_seconds", "Seconds since the service started.", func() float64 {
		return time.Since(s.start).Seconds()
	})

	s.mux.HandleFunc("POST /estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /sweep", s.handleSweep)
	s.mux.HandleFunc("POST /scenarios/expand", s.handleScenarioExpand)
	s.mux.HandleFunc("GET /experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /experiments/run", s.handleExperimentRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", reg.Handler())
	return s
}

// Handler returns the HTTP surface, wrapped in the telemetry middleware
// (request IDs, per-route latency histograms, structured request logs).
func (s *Service) Handler() http.Handler { return s.withTelemetry(s.mux) }

// MetricsRegistry returns the registry behind GET /metrics.
func (s *Service) MetricsRegistry() *telemetry.Registry { return s.metrics.reg }

// Shutdown drains the scheduler (see scheduler.Shutdown for semantics),
// then closes the persistent store so its directory can be reopened by
// the next process — draining first means every completed job's bytes
// reach disk before the store stops accepting writes.
func (s *Service) Shutdown(ctx context.Context) error {
	err := s.sched.Shutdown(ctx)
	if s.diskStore != nil {
		if cerr := s.diskStore.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Cache tiers, as they appear in the X-Ltsimd-Cache header and sweep
// summaries: "hit" is the in-memory LRU, "disk" the persistent store.
const (
	tierMemory = "hit"
	tierDisk   = "disk"
)

// cacheGet probes the memory tier then the persistent store. A store
// hit promotes the bytes back into memory (read-through), so the next
// probe of a hot key is a memory hit; tier reports which tier answered.
func (s *Service) cacheGet(key string) (body []byte, tier string, ok bool) {
	if body, ok := s.cache.Get(key); ok {
		return body, tierMemory, true
	}
	if s.diskStore == nil {
		return nil, "", false
	}
	body, ok = s.diskStore.Get(key)
	if !ok {
		return nil, "", false
	}
	s.cache.Put(key, body)
	return body, tierDisk, true
}

// cachePut writes through both tiers.
func (s *Service) cachePut(key string, val []byte) {
	s.cache.Put(key, val)
	if s.diskStore != nil {
		s.diskStore.Put(key, val)
	}
}

// writeError emits a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// submitStatus maps a scheduler error onto an HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, sim.ErrInvalidConfig):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// applyPolicy folds the daemon-level request policy into a request
// before it is built and fingerprinted, so the effective (and cached)
// configuration is the policy-adjusted one: DefaultTargetRel turns
// budget-less requests adaptive, MaxTrialsCap clamps every trial budget.
func (s *Service) applyPolicy(req EstimateRequest) EstimateRequest {
	if s.cfg.DefaultTargetRel > 0 && req.Trials == 0 && req.TargetRelWidth == 0 {
		req.TargetRelWidth = s.cfg.DefaultTargetRel
	}
	// The bias default only reaches requests it could be valid for:
	// biasing needs a censoring horizon.
	if s.cfg.DefaultBias != 0 && req.Bias == 0 && req.HorizonYears > 0 {
		req.Bias = s.cfg.DefaultBias
	}
	if cap := s.cfg.MaxTrialsCap; cap > 0 {
		if req.TargetRelWidth > 0 {
			if req.MaxTrials == 0 || req.MaxTrials > cap {
				req.MaxTrials = cap
			}
			if req.Trials > cap {
				req.Trials = cap
			}
		} else {
			if req.Trials == 0 {
				req.Trials = scenario.DefaultTrials // make the wire default explicit before clamping
			}
			if req.Trials > cap {
				req.Trials = cap
			}
		}
	}
	return req
}

// resolved applies policy, builds, and fingerprints one request,
// returning the policy-effective request alongside so callers that
// display it (the /scenarios/expand dry run) derive it from the same
// pass that produced the key.
func (s *Service) resolved(req EstimateRequest) (string, EstimateRequest, sim.Config, sim.Options, error) {
	req = s.applyPolicy(req)
	cfg, opt, err := req.Build()
	if err != nil {
		return "", req, sim.Config{}, sim.Options{}, err
	}
	opt.Parallel = s.cfg.SimParallel
	key, err := sim.Fingerprint(cfg, opt)
	if err != nil {
		return "", req, sim.Config{}, sim.Options{}, err
	}
	return key, req, cfg, opt, nil
}

// resolve fingerprints one request and returns the compute closure that
// produces (and caches) its encoded result.
func (s *Service) resolve(req EstimateRequest) (key string, compute func(context.Context) ([]byte, error), err error) {
	key, _, cfg, opt, err := s.resolved(req)
	if err != nil {
		return "", nil, err
	}
	compute = func(ctx context.Context) ([]byte, error) {
		runner, err := sim.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		if opt.Bias != 0 {
			s.biasedRuns.Add(1)
		}
		est, err := runner.EstimateContext(ctx, opt)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(report.NewEstimateJSON(est, opt.Horizon))
		if err != nil {
			return nil, err
		}
		// ctx carries the owning request's trace through the scheduler.
		telemetry.TraceFrom(ctx).Mark("encoded")
		s.cachePut(key, body)
		return body, nil
	}
	return key, compute, nil
}

// handleEstimate serves one estimate: cache hit replays the stored
// bytes; miss schedules the simulation and waits for it.
func (s *Service) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Progress {
		s.streamEstimate(w, r, req)
		return
	}
	tr := telemetry.TraceFrom(r.Context())
	key, compute, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tr.Mark("resolved")
	body, tier, hit := s.cacheGet(key)
	joined := false
	if !hit {
		tr.Mark("queued")
		body, joined, err = s.sched.submit(r.Context(), key, compute)
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
	}
	disp := "miss"
	switch {
	case hit:
		// tierMemory ("hit") or tierDisk ("disk"), per the tier that
		// actually answered.
		disp = tier
	case joined:
		// The request coalesced onto an already-in-flight computation of
		// the same fingerprint and replayed its bytes.
		disp = "dedup"
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Ltsimd-Key", key)
	h.Set("X-Ltsimd-Cache", disp)
	w.Write(body)
	w.Write([]byte("\n"))
}

// ProgressJSON is a sim.Progress snapshot on the wire. RelWidth is
// omitted while the stopping criterion is not yet estimable (JSON cannot
// carry +Inf).
type ProgressJSON struct {
	Trials   int                  `json:"trials"`
	Budget   int                  `json:"budget"`
	Batches  int                  `json:"batches"`
	Losses   int                  `json:"losses"`
	Censored int                  `json:"censored"`
	MTTDL    *report.IntervalJSON `json:"mttdl_hours,omitempty"`
	LossProb *report.IntervalJSON `json:"loss_prob,omitempty"`
	RelWidth *float64             `json:"rel_width,omitempty"`
	Target   float64              `json:"target_rel_width,omitempty"`
	// EffectiveSamples is the weighted estimator's effective loss count
	// so far; omitted in unbiased runs (additive field).
	EffectiveSamples *float64 `json:"effective_samples,omitempty"`
}

// newProgressJSON converts a snapshot.
func newProgressJSON(p sim.Progress) *ProgressJSON {
	out := &ProgressJSON{
		Trials:   p.Trials,
		Budget:   p.Budget,
		Batches:  p.Batches,
		Losses:   p.Losses,
		Censored: p.Censored,
		Target:   p.TargetRelWidth,
	}
	if !math.IsInf(p.RelWidth, 1) {
		rw := p.RelWidth
		out.RelWidth = &rw
	}
	if p.MTTDL.Level != 0 {
		iv := report.NewIntervalJSON(p.MTTDL)
		out.MTTDL = &iv
	}
	if p.LossProb.Level != 0 {
		iv := report.NewIntervalJSON(p.LossProb)
		out.LossProb = &iv
	}
	if p.EffectiveSamples > 0 {
		ess := p.EffectiveSamples
		out.EffectiveSamples = &ess
	}
	return out
}

// EstimateFrame is one NDJSON line of a progress-streamed estimate:
// either a progress snapshot, the final frame carrying the canonical
// result bytes (identical to the plain /estimate body, and to what the
// cache replays), or an error.
type EstimateFrame struct {
	Progress *ProgressJSON   `json:"progress,omitempty"`
	Final    bool            `json:"final,omitempty"`
	Key      string          `json:"key,omitempty"`
	Cache    string          `json:"cache,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// writeFinalFrame serves a cached result as a one-frame NDJSON stream;
// tier is the cache tier that answered ("hit" or "disk").
func (s *Service) writeFinalFrame(w http.ResponseWriter, key, tier string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Ltsimd-Key", key)
	h.Set("X-Ltsimd-Cache", tier)
	json.NewEncoder(w).Encode(EstimateFrame{Final: true, Key: key, Cache: tier, Result: body})
}

// streamEstimate serves one estimate as an NDJSON stream: progress
// frames at batch boundaries (throttled), then a final frame with the
// canonical result body. A cache hit skips straight to the final frame.
// Progress runs execute on the request goroutine under the per-job
// timeout rather than on the shard queue — a queued job could not emit
// frames while it waits — but they are still disciplined: duplicates of
// an in-flight key coalesce onto the owner's result, at most Shards
// progress simulations run at once (additively to the scheduler's own
// Shards workers; excess requests get 503, the same backpressure signal
// a full shard queue sends), and the result lands in the shared cache
// under the same canonical key a plain request would use.
func (s *Service) streamEstimate(w http.ResponseWriter, r *http.Request, req EstimateRequest) {
	tr := telemetry.TraceFrom(r.Context())
	key, _, cfg, opt, err := s.resolved(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tr.Mark("resolved")
	// Serve cache hits before taking a slot: replaying bytes is cheap.
	if body, tier, hit := s.cacheGet(key); hit {
		s.writeFinalFrame(w, key, tier, body)
		return
	}
	// Single-flight: a duplicate of an in-flight progress run waits for
	// the owner and replays its cached bytes instead of recomputing.
	s.progressMu.Lock()
	if done, dup := s.progressInflight[key]; dup {
		s.progressMu.Unlock()
		select {
		case <-done:
		case <-r.Context().Done():
			return
		}
		if body, tier, hit := s.cacheGet(key); hit {
			s.writeFinalFrame(w, key, tier, body)
			return
		}
		// The owner failed; report rather than silently recomputing.
		writeError(w, http.StatusInternalServerError, errors.New("service: coalesced progress run failed; retry"))
		return
	}
	done := make(chan struct{})
	s.progressInflight[key] = done
	s.progressMu.Unlock()
	defer func() {
		s.progressMu.Lock()
		delete(s.progressInflight, key)
		s.progressMu.Unlock()
		close(done)
	}()

	select {
	case s.progressSem <- struct{}{}:
		defer func() { <-s.progressSem }()
	default:
		writeError(w, http.StatusServiceUnavailable, errors.New("service: progress-streaming capacity exhausted"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Ltsimd-Key", key)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(f EstimateFrame) {
		enc.Encode(f)
		if flusher != nil {
			flusher.Flush()
		}
	}
	h.Set("X-Ltsimd-Cache", "miss")

	runner, err := sim.NewRunner(cfg)
	if err != nil {
		emit(EstimateFrame{Error: err.Error(), Key: key})
		return
	}
	// Progress runs execute on the request goroutine, so the span
	// timeline skips "queued" and marks "running" directly.
	tr.Mark("running")
	if opt.Bias != 0 {
		s.biasedRuns.Add(1)
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.JobTimeout)
	defer cancel()
	var lastEmit time.Time
	est, err := runner.EstimateStream(ctx, opt, func(p sim.Progress) {
		if p.Final {
			return // the final frame below carries the result
		}
		// Always emit the first boundary, then throttle so a
		// million-trial run does not flood the connection.
		if !lastEmit.IsZero() && time.Since(lastEmit) < 100*time.Millisecond {
			return
		}
		lastEmit = time.Now()
		emit(EstimateFrame{Progress: newProgressJSON(p), Key: key})
	})
	if err != nil {
		emit(EstimateFrame{Error: err.Error(), Key: key})
		return
	}
	body, err := json.Marshal(report.NewEstimateJSON(est, opt.Horizon))
	if err != nil {
		emit(EstimateFrame{Error: err.Error(), Key: key})
		return
	}
	tr.Mark("encoded")
	s.cachePut(key, body)
	emit(EstimateFrame{Final: true, Key: key, Cache: "miss", Result: body})
}

// SweepRequest fans a batch of estimate requests across the worker
// pool: either an explicit request list, or a scenario document the
// server expands through exactly the path a client would (so both
// spellings yield byte-identical result lines and share cache entries).
type SweepRequest struct {
	Requests []EstimateRequest  `json:"requests,omitempty"`
	Scenario *scenario.Document `json:"scenario,omitempty"`
}

// SweepLine is one NDJSON line of a sweep response: a per-request result
// (in completion order, Index mapping it back to the request) or error.
// The final line is the summary (Summary true, Result empty).
type SweepLine struct {
	Index     int             `json:"index"`
	Key       string          `json:"key,omitempty"`
	Error     string          `json:"error,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Summary   bool            `json:"summary,omitempty"`
	Requested int             `json:"requested,omitempty"`
	OK        int             `json:"ok,omitempty"`
	Errors    int             `json:"errors,omitempty"`
	CacheHits int             `json:"cache_hits,omitempty"`
	// Deduped counts the indices that shared another index's fingerprint
	// within this batch and replayed its bytes instead of scheduling (or
	// cache-probing) their own run.
	Deduped int `json:"deduped,omitempty"`
	// DiskHits counts the subset of CacheHits answered by the persistent
	// store rather than the memory LRU (additive; memory-only daemons
	// never emit it). Node is the worker a routed sweep point was served
	// by — set only by the ltsimr router, never by a single daemon.
	DiskHits  int    `json:"disk_hits,omitempty"`
	Node      string `json:"node,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
}

// handleSweep streams a batch: every request is fingerprinted up front,
// identical fingerprints are deduplicated batch-wide (one scheduled run
// per unique key — a cold sweep of N identical requests simulates once,
// and every duplicate index replays the same bytes), and each unique
// key is served from cache or scheduled and written back as NDJSON
// lines the moment it finishes — results interleave across workers, so
// a sweep's wall clock is the slowest shard, not the sum. A trailing
// summary line reports totals, the batch's cache-hit count, and how
// many indices the dedupe absorbed.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Scenario != nil {
		if len(req.Requests) > 0 {
			writeError(w, http.StatusBadRequest, errors.New("sweep takes requests or a scenario, not both"))
			return
		}
		points, err := scenario.Expand(*req.Scenario)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.Requests = make([]EstimateRequest, len(points))
		for i, pt := range points {
			req.Requests[i] = pt.Request
		}
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("sweep needs at least one request"))
		return
	}
	// Explicit request lists honor the same bound scenario expansion
	// enforces, so neither spelling can queue unbounded work.
	if len(req.Requests) > scenario.MaxPoints {
		writeError(w, http.StatusBadRequest, fmt.Errorf("sweep of %d requests exceeds the %d limit", len(req.Requests), scenario.MaxPoints))
		return
	}
	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line SweepLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}
	summary := SweepLine{Summary: true, Requested: len(req.Requests)}

	// Resolve everything up front — fingerprinting is pure CPU (build +
	// canonicalize + hash), so a large batch fans it across cores rather
	// than stalling the stream on one goroutine — then group indices by
	// fingerprint serially, so the batch schedules each unique
	// configuration exactly once.
	type resolution struct {
		key     string
		compute func(context.Context) ([]byte, error)
		err     error
	}
	resolutions := make([]resolution, len(req.Requests))
	var wg sync.WaitGroup
	var nextResolve atomic.Int64
	for worker := 0; worker < min(runtime.GOMAXPROCS(0), len(req.Requests)); worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextResolve.Add(1)) - 1
				if i >= len(req.Requests) {
					return
				}
				r := &resolutions[i]
				r.key, r.compute, r.err = s.resolve(req.Requests[i])
			}
		}()
	}
	wg.Wait()

	type group struct {
		key     string
		compute func(context.Context) ([]byte, error)
		indices []int
	}
	groups := make(map[string]*group)
	var order []*group
	for i, r := range resolutions {
		if r.err != nil {
			// Invalid requests answer immediately, in index order, ahead
			// of any simulation output.
			summary.Errors++
			emit(SweepLine{Index: i, Error: r.err.Error()})
			continue
		}
		g, ok := groups[r.key]
		if !ok {
			g = &group{key: r.key, compute: r.compute}
			groups[r.key] = g
			order = append(order, g)
		} else {
			summary.Deduped++
		}
		g.indices = append(g.indices, i)
	}
	if summary.Deduped > 0 {
		s.sweepDeduped.Add(uint64(summary.Deduped))
		s.metrics.sweepDeduped.Add(uint64(summary.Deduped))
	}

	type outcome struct {
		g    *group
		body []byte
		err  error
		hit  bool
		tier string
	}
	results := make(chan outcome)
	// A fixed pool of submitters, sized below total queue capacity so a
	// large sweep applies backpressure to itself instead of tripping
	// 503s — and so a 65k-point batch costs a few dozen goroutines, not
	// one per group.
	var nextGroup atomic.Int64
	for worker := 0; worker < min(len(order), max(1, s.cfg.Shards*s.cfg.QueueDepth/2)); worker++ {
		go func() {
			for {
				gi := int(nextGroup.Add(1)) - 1
				if gi >= len(order) {
					return
				}
				g := order[gi]
				body, tier, hit := s.cacheGet(g.key)
				var err error
				if !hit {
					body, err = s.submitWithRetry(r.Context(), g.key, g.compute)
				}
				results <- outcome{g: g, body: body, err: err, hit: hit, tier: tier}
			}
		}()
	}

	for range order {
		out := <-results
		for _, i := range out.g.indices {
			if out.err != nil {
				summary.Errors++
				emit(SweepLine{Index: i, Key: out.g.key, Error: out.err.Error()})
				continue
			}
			summary.OK++
			if out.hit {
				summary.CacheHits++
				if out.tier == tierDisk {
					summary.DiskHits++
				}
			}
			emit(SweepLine{Index: i, Key: out.g.key, Result: out.body})
		}
	}
	summary.ElapsedMS = time.Since(start).Milliseconds()
	enc.Encode(summary)
}

// ExpandLine is one NDJSON line of a /scenarios/expand dry run: an
// expanded point (its deterministic index, the coordinates that
// produced it, the policy-effective request, and the fingerprint a
// sweep of this document would cache under), or a per-point build
// error, with a trailing summary line.
type ExpandLine struct {
	Index   int              `json:"index"`
	Key     string           `json:"key,omitempty"`
	Coords  []scenario.Coord `json:"coords,omitempty"`
	Request *EstimateRequest `json:"request,omitempty"`
	Error   string           `json:"error,omitempty"`
	Summary bool             `json:"summary,omitempty"`
	Name    string           `json:"name,omitempty"`
	Points  int              `json:"points,omitempty"`
	OK      int              `json:"ok,omitempty"`
	Errors  int              `json:"errors,omitempty"`
}

// handleScenarioExpand is the dry run behind scenario-driven sweeps: it
// expands a document server-side and streams every point with its
// fingerprint, without scheduling any simulation. The reported request
// is the policy-effective one (after the daemon's -target-rel /
// -max-trials adjustments), so the keys are exactly what /sweep would
// hit; a daemon with no request policy reports the expansion verbatim,
// fingerprint-identical to client-side scenario.Expand.
func (s *Service) handleScenarioExpand(w http.ResponseWriter, r *http.Request) {
	var doc scenario.Document
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding scenario: %w", err))
		return
	}
	points, err := scenario.Expand(doc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Fingerprinting is the same CPU-bound work the sweep parallelizes;
	// resolve across cores, then emit in index order.
	lines := make([]ExpandLine, len(points))
	var wg sync.WaitGroup
	var next atomic.Int64
	for worker := 0; worker < min(runtime.GOMAXPROCS(0), len(points)); worker++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) {
					return
				}
				line := ExpandLine{Index: points[i].Index, Coords: points[i].Coords}
				if key, eff, _, _, err := s.resolved(points[i].Request); err != nil {
					line.Error = err.Error()
				} else {
					line.Key = key
					line.Request = &eff
				}
				lines[i] = line
			}
		}()
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	summary := ExpandLine{Summary: true, Name: doc.Name, Points: len(points)}
	for _, line := range lines {
		if line.Error != "" {
			summary.Errors++
		} else {
			summary.OK++
		}
		enc.Encode(line)
	}
	enc.Encode(summary)
}

// submitWithRetry is Submit with backoff on a full shard queue: the
// sweep semaphore caps total concurrency, but key hashing can still
// skew submissions onto one shard, and a sweep item should wait its
// turn rather than surface a transient 503 as a failed line.
func (s *Service) submitWithRetry(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) ([]byte, error) {
	backoff := 5 * time.Millisecond
	for {
		body, err := s.sched.Submit(ctx, key, compute)
		if !errors.Is(err, ErrQueueFull) {
			return body, err
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff < 200*time.Millisecond {
			backoff *= 2
		}
	}
}

// handleExperiments lists the registered experiment index.
func (s *Service) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Source string `json:"source"`
	}
	out := make([]entry, 0)
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Title: e.Title, Source: e.Source})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// experimentResult is an experiment run on the wire: tables as
// structured grids, plots pre-rendered as the same ASCII the CLI draws.
type experimentResult struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Source string          `json:"source"`
	Tables []*report.Table `json:"tables"`
	Plots  []string        `json:"plots"`
	Notes  []string        `json:"notes"`
}

// handleExperimentRun runs one registered experiment by id
// (?id=E2&quick=1&seed=1) through the same scheduler and cache as
// estimates — experiments are deterministic in (id, seed, quick), so
// they content-address just as well.
func (s *Service) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	e, ok := experiments.ByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", id))
		return
	}
	quick := false
	if q := r.URL.Query().Get("quick"); q != "" {
		v, err := strconv.ParseBool(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("quick: %w", err))
			return
		}
		quick = v
	}
	var seed uint64 = 1
	if q := r.URL.Query().Get("seed"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("seed: %w", err))
			return
		}
		seed = v
	}
	key := fmt.Sprintf("exp/v1|%s|seed=%d|quick=%t", e.ID, seed, quick)
	body, tier, hit := s.cacheGet(key)
	if !hit {
		var err error
		body, err = s.sched.Submit(r.Context(), key, func(ctx context.Context) ([]byte, error) {
			res, err := runExperiment(ctx, e, experiments.RunConfig{Seed: seed, Quick: quick})
			if err != nil {
				return nil, err
			}
			out := experimentResult{
				ID: e.ID, Title: e.Title, Source: e.Source,
				Tables: res.Tables, Plots: make([]string, 0, len(res.Plots)),
				Notes: res.Notes,
			}
			if out.Tables == nil {
				out.Tables = []*report.Table{}
			}
			if out.Notes == nil {
				out.Notes = []string{}
			}
			for _, p := range res.Plots {
				var sb strings.Builder
				if err := p.Render(&sb); err != nil {
					return nil, err
				}
				out.Plots = append(out.Plots, sb.String())
			}
			b, err := json.Marshal(out)
			if err != nil {
				return nil, err
			}
			s.cachePut(key, b)
			return b, nil
		})
		if err != nil {
			writeError(w, submitStatus(err), err)
			return
		}
	}
	disp := "miss"
	if hit {
		disp = tier
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Ltsimd-Key", key)
	h.Set("X-Ltsimd-Cache", disp)
	w.Write(body)
	w.Write([]byte("\n"))
}

// runExperiment runs e under ctx's deadline. Experiment Run functions
// predate context support, so cancellation is cooperative only at the
// job boundary: on timeout or shutdown the job publishes ctx's error
// promptly (keeping the drain budget honest) while the orphaned Run
// finishes on its own goroutine and is discarded — experiments are
// finite, so the goroutine terminates, it just stops counting.
func runExperiment(ctx context.Context, e experiments.Experiment, cfg experiments.RunConfig) (*experiments.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		res *experiments.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Run(cfg)
		done <- outcome{res, err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// handleHealthz is the liveness probe.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// StatsSnapshot is the /stats payload. ProgressInflight and
// SweepDeduped are additive (PR 7); the earlier fields keep their names
// and positions, so pre-existing consumers decode unchanged.
type StatsSnapshot struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Cache         CacheStats     `json:"cache"`
	Scheduler     SchedulerStats `json:"scheduler"`
	// ProgressInflight counts progress-streamed estimate runs currently
	// in flight (single-flight owners executing off the shard queue).
	ProgressInflight int `json:"progress_inflight"`
	// SweepDeduped is the cumulative count of sweep indices that
	// replayed another index's bytes via batch-wide fingerprint dedupe.
	SweepDeduped uint64 `json:"sweep_deduped"`
	// BiasedRuns is the cumulative count of simulations executed (not
	// cache replays) under importance-sampled failure biasing. Additive
	// (PR 8); pre-existing consumers decode unchanged.
	BiasedRuns uint64 `json:"biased_runs"`
	// Store is the persistent result tier's snapshot; omitted entirely on
	// memory-only daemons. Additive (PR 9); its Hits vs the memory
	// cache's Hits is the per-node tier attribution the ltsimr router
	// aggregates as cluster cache warmth.
	Store *store.Stats `json:"store,omitempty"`
}

// Stats snapshots the service counters.
func (s *Service) Stats() StatsSnapshot {
	s.progressMu.Lock()
	progressInflight := len(s.progressInflight)
	s.progressMu.Unlock()
	snap := StatsSnapshot{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Cache:            s.cache.Stats(),
		Scheduler:        s.sched.Stats(),
		ProgressInflight: progressInflight,
		SweepDeduped:     s.sweepDeduped.Load(),
		BiasedRuns:       s.biasedRuns.Load(),
	}
	if s.diskStore != nil {
		st := s.diskStore.Stats()
		snap.Store = &st
	}
	return snap
}

// handleStats reports cache and scheduler health.
func (s *Service) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}
