package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// testScenario is a small grid+zip document used across the tests.
func testScenario() scenario.Document {
	seed := uint64(11)
	return scenario.Document{
		V:    scenario.Version,
		Name: "service-test",
		Base: scenario.EstimateRequest{Trials: 60, HorizonYears: 50, Seed: &seed},
		Grid: []scenario.Axis{{Param: "replicas", Values: []float64{2, 3}}},
		Zip: []scenario.Axis{
			{Param: "alpha", Values: []float64{1, 0.5}},
			{Param: "scrubs_per_year", Values: []float64{3, 12}},
		},
	}
}

// TestScenarioExpandEndpoint: the dry run streams one line per point
// whose fingerprints match client-side expansion exactly (the daemon
// has no request policy here), plus a summary.
func TestScenarioExpandEndpoint(t *testing.T) {
	_, ts := newTestService(t)
	doc := testScenario()
	points, err := scenario.Expand(doc)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/scenarios/expand", doc)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expand: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var lines []ExpandLine
	var summary ExpandLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l ExpandLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if l.Summary {
			summary = l
		} else {
			lines = append(lines, l)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(points) {
		t.Fatalf("expand streamed %d points, want %d", len(lines), len(points))
	}
	for i, l := range lines {
		if l.Index != i || l.Error != "" {
			t.Fatalf("line %d = %+v", i, l)
		}
		want, err := points[i].Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if l.Key != want {
			t.Errorf("point %d: server key %s != client key %s", i, l.Key, want)
		}
		if l.Request == nil || l.Request.Replicas != points[i].Request.Replicas {
			t.Errorf("point %d: effective request %+v does not mirror expansion", i, l.Request)
		}
		if len(l.Coords) != 3 {
			t.Errorf("point %d coords = %+v, want 3 axes", i, l.Coords)
		}
	}
	if summary.Points != len(points) || summary.OK != len(points) || summary.Name != doc.Name {
		t.Errorf("summary = %+v", summary)
	}

	// A structurally invalid document is a 400, not a stream.
	bad := postJSON(t, ts.URL+"/scenarios/expand", scenario.Document{V: 99})
	if readAll(t, bad); bad.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid document status = %d, want 400", bad.StatusCode)
	}
}

// TestScenarioSweepMatchesClientExpansion is the acceptance criterion:
// the same document expanded server-side ({"scenario": doc} to /sweep)
// and client-side (scenario.Expand then {"requests": [...]}) yields
// byte-identical per-index result lines and identical fingerprints.
func TestScenarioSweepMatchesClientExpansion(t *testing.T) {
	doc := testScenario()
	points, err := scenario.Expand(doc)
	if err != nil {
		t.Fatal(err)
	}
	var client SweepRequest
	for _, pt := range points {
		client.Requests = append(client.Requests, pt.Request)
	}

	// Separate services so both passes are cold: byte identity must come
	// from determinism, not from one warming the other's cache.
	_, tsServer := newTestService(t)
	_, tsClient := newTestService(t)
	serverLines, serverSum := runSweep(t, tsServer.URL, SweepRequest{Scenario: &doc})
	clientLines, _ := runSweep(t, tsClient.URL, client)

	if len(serverLines) != len(points) || len(clientLines) != len(points) {
		t.Fatalf("line counts %d/%d, want %d", len(serverLines), len(clientLines), len(points))
	}
	for i := range serverLines {
		if serverLines[i] != clientLines[i] {
			t.Errorf("point %d: server-side and client-side expansion bytes differ:\n%s\nvs\n%s",
				i, serverLines[i], clientLines[i])
		}
	}
	if serverSum.OK != len(points) {
		t.Errorf("scenario sweep summary = %+v", serverSum)
	}
}

// TestSweepDedupesIdenticalFingerprints: a cold sweep containing
// duplicate configurations schedules each unique fingerprint once;
// every duplicate index replays the same bytes and is counted in the
// summary's deduped field.
func TestSweepDedupesIdenticalFingerprints(t *testing.T) {
	svc, ts := newTestService(t)
	seed := uint64(5)
	a := EstimateRequest{Trials: 70, HorizonYears: 50, Seed: &seed}
	b := EstimateRequest{Trials: 70, HorizonYears: 50, Seed: &seed, Replicas: 3}
	lines, sum := runSweep(t, ts.URL, SweepRequest{Requests: []EstimateRequest{a, a, a, b}})

	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4", len(lines))
	}
	if lines[0] != lines[1] || lines[1] != lines[2] {
		t.Error("duplicate indices did not replay identical bytes")
	}
	if lines[0] == lines[3] {
		t.Error("distinct configuration shared the duplicates' bytes")
	}
	if sum.Deduped != 2 {
		t.Errorf("summary deduped = %d, want 2", sum.Deduped)
	}
	if sum.CacheHits != 0 {
		t.Errorf("cold sweep cache hits = %d, want 0 (dedupe is not a cache hit)", sum.CacheHits)
	}
	if got := svc.Stats().Scheduler.Completed; got != 2 {
		t.Errorf("scheduler completed %d jobs for 4 requests, want 2 (one per unique fingerprint)", got)
	}

	// Warm pass: everything is a cache hit now, dedupe count unchanged.
	_, warm := runSweep(t, ts.URL, SweepRequest{Requests: []EstimateRequest{a, a, a, b}})
	if warm.CacheHits != 4 || warm.Deduped != 2 {
		t.Errorf("warm summary hits/deduped = %d/%d, want 4/2", warm.CacheHits, warm.Deduped)
	}
	if got := svc.Stats().Scheduler.Completed; got != 2 {
		t.Errorf("warm pass scheduled extra jobs: completed = %d, want still 2", got)
	}
}

// TestSweepScenarioCanonicalDedupe: equivalent points produced by the
// expansion itself (min_intact 0 vs its default 1) collide onto one
// scheduled run.
func TestSweepScenarioCanonicalDedupe(t *testing.T) {
	svc, ts := newTestService(t)
	doc := scenario.Document{
		V:    scenario.Version,
		Base: scenario.EstimateRequest{Trials: 70, HorizonYears: 50},
		Grid: []scenario.Axis{{Param: "min_intact", Values: []float64{0, 1}}},
	}
	lines, sum := runSweep(t, ts.URL, SweepRequest{Scenario: &doc})
	if len(lines) != 2 || lines[0] != lines[1] {
		t.Fatalf("equivalent points did not share bytes: %v", lines)
	}
	if sum.Deduped != 1 {
		t.Errorf("deduped = %d, want 1", sum.Deduped)
	}
	if got := svc.Stats().Scheduler.Completed; got != 1 {
		t.Errorf("scheduler ran %d jobs, want 1", got)
	}
}

// TestSweepRejectsAmbiguousBody: requests and scenario are mutually
// exclusive, and a scenario failing validation is a 400.
func TestSweepRejectsAmbiguousBody(t *testing.T) {
	_, ts := newTestService(t)
	doc := testScenario()
	resp := postJSON(t, ts.URL+"/sweep", SweepRequest{
		Requests: []EstimateRequest{{Trials: 50}},
		Scenario: &doc,
	})
	if body := readAll(t, resp); resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "not both") {
		t.Errorf("ambiguous sweep = %d %s, want 400 naming the conflict", resp.StatusCode, body)
	}
	bad := scenario.Document{V: scenario.Version, Grid: []scenario.Axis{{Param: "bogus", Values: []float64{1}}}}
	resp = postJSON(t, ts.URL+"/sweep", SweepRequest{Scenario: &bad})
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid scenario sweep status = %d, want 400", resp.StatusCode)
	}
}
