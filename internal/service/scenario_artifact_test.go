package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/scenario"
)

// ScenarioBenchArtifact is the schema of BENCH_scenario.json: one
// scenario document swept cold and warm through server-side expansion,
// recording expansion size, batch dedupe, and the cache's effect on
// wall time.
type ScenarioBenchArtifact struct {
	Bench           string  `json:"bench"`
	ConfigsExpanded int     `json:"configs_expanded"`
	UniqueKeys      int     `json:"unique_keys"`
	DedupedCold     int     `json:"deduped_cold"`
	TrialsPerItem   int     `json:"trials_per_item"`
	ColdMS          int64   `json:"cold_ms"`
	WarmMS          int64   `json:"warm_ms"`
	Speedup         float64 `json:"speedup"`
	WarmCacheHits   int     `json:"warm_cache_hits"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
	BitIdentical    bool    `json:"bit_identical"`
	GoMaxProcs      int     `json:"gomaxprocs"`
}

// benchScenario is the artifact's document: a replicas × scrubs × alpha
// grid with a deliberately-colliding min_intact axis (0 canonicalizes
// to its default 1), so the cold pass exercises batch dedupe — half the
// expansion shares the other half's fingerprints.
func benchScenario() scenario.Document {
	seed := uint64(3)
	return scenario.Document{
		V:    scenario.Version,
		Name: "bench-scenario-sweep",
		Base: scenario.EstimateRequest{Trials: 200, HorizonYears: 50, Seed: &seed},
		Grid: []scenario.Axis{
			{Param: "replicas", Values: []float64{2, 3}},
			{Param: "alpha", Values: []float64{1, 0.5}},
			{Param: "scrubs_per_year", Values: []float64{1, 2, 3, 4, 5, 6}},
			{Param: "min_intact", Values: []float64{0, 1}},
		},
	}
}

// TestBenchArtifactScenario sweeps the scenario document cold and warm
// through server-side expansion and, when BENCH_SCENARIO_OUT is set,
// writes the measurements as a machine-readable JSON artifact (CI
// publishes it as BENCH_scenario.json). Without the env var it still
// runs as a cheap assertion on dedupe, hit counts, and bit-identity.
func TestBenchArtifactScenario(t *testing.T) {
	svc := New(Config{CacheSize: 256, Shards: 4, QueueDepth: 64, JobTimeout: time.Minute})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Shutdown(context.Background())
	}()

	doc := benchScenario()
	points, err := scenario.Expand(doc)
	if err != nil {
		t.Fatal(err)
	}
	sweep := SweepRequest{Scenario: &doc}

	start := time.Now()
	cold, coldSum := runSweep(t, ts.URL, sweep)
	coldMS := time.Since(start).Milliseconds()

	start = time.Now()
	warm, warmSum := runSweep(t, ts.URL, sweep)
	warmMS := time.Since(start).Milliseconds()

	unique := len(points) - coldSum.Deduped
	identical := len(cold) == len(warm)
	for i := range cold {
		if cold[i] != warm[i] {
			identical = false
		}
	}
	if !identical {
		t.Error("warm scenario sweep results are not bit-identical to cold")
	}
	if wantDedupe := len(points) / 2; coldSum.Deduped != wantDedupe {
		t.Errorf("cold dedupe = %d of %d points, want %d (min_intact 0 ≡ 1)", coldSum.Deduped, len(points), wantDedupe)
	}
	if warmSum.CacheHits < len(points)*95/100 {
		t.Errorf("warm cache hits = %d of %d, want >= 95%%", warmSum.CacheHits, len(points))
	}
	if got := int(svc.Stats().Scheduler.Completed); got != unique {
		t.Errorf("scheduler ran %d jobs across both passes, want %d (unique keys, cold pass only)", got, unique)
	}

	art := ScenarioBenchArtifact{
		Bench:           "scenario_sweep_cold_vs_cached",
		ConfigsExpanded: len(points),
		UniqueKeys:      unique,
		DedupedCold:     coldSum.Deduped,
		TrialsPerItem:   200,
		ColdMS:          coldMS,
		WarmMS:          warmMS,
		WarmCacheHits:   warmSum.CacheHits,
		WarmHitRate:     float64(warmSum.CacheHits) / float64(len(points)),
		BitIdentical:    identical,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
	}
	if warmMS > 0 {
		art.Speedup = float64(coldMS) / float64(warmMS)
	}
	if coldMS >= 50 && warmMS >= coldMS {
		t.Errorf("cached scenario sweep (%dms) not faster than cold (%dms)", warmMS, coldMS)
	}

	out := os.Getenv("BENCH_SCENARIO_OUT")
	if out == "" {
		t.Logf("expanded %d (unique %d), cold %dms, warm %dms, %d hits (set BENCH_SCENARIO_OUT to write the artifact)",
			len(points), unique, coldMS, warmMS, warmSum.CacheHits)
		return
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d configs (%d unique), cold %dms, warm %dms, speedup %.1fx", out, len(points), unique, coldMS, warmMS, art.Speedup)
}
