package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// newDiskService starts a service with a persistent store over dir.
func newDiskService(t *testing.T, dir string) (*Service, *httptest.Server) {
	t.Helper()
	ds, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{CacheSize: 256, Shards: 2, QueueDepth: 32, JobTimeout: time.Minute, SimParallel: 2, Store: ds})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	return svc, ts
}

// TestRestartDurability is the tentpole's acceptance test in miniature:
// fill the cache, tear the service down (the daemon's SIGTERM path calls
// the same Shutdown), start a fresh service over the same directory, and
// the warm keys serve byte-identical answers from the disk tier — with
// the X-Ltsimd-Cache header and /stats attributing each tier correctly.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	reqs := []EstimateRequest{
		{Trials: 100, HorizonYears: 50},
		{Trials: 100, HorizonYears: 50, Alpha: 0.3},
		{Trials: 60, Replicas: 3, HorizonYears: 50},
	}

	_, ts1 := newDiskService(t, dir)
	cold := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp := postJSON(t, ts1.URL+"/estimate", req)
		if got := resp.Header.Get("X-Ltsimd-Cache"); got != "miss" {
			t.Fatalf("cold request %d: X-Ltsimd-Cache = %q, want miss", i, got)
		}
		cold[i] = readAll(t, resp)
	}
	ts1.Close() // cleanup order: the deferred Shutdown still runs later

	svc2, ts2 := newDiskService(t, dir)
	for i, req := range reqs {
		resp := postJSON(t, ts2.URL+"/estimate", req)
		if got := resp.Header.Get("X-Ltsimd-Cache"); got != "disk" {
			t.Fatalf("warm request %d after restart: X-Ltsimd-Cache = %q, want disk", i, got)
		}
		if body := readAll(t, resp); !bytes.Equal(body, cold[i]) {
			t.Fatalf("restart replay %d is not bit-identical:\ncold: %s\nwarm: %s", i, cold[i], body)
		}
		// The disk hit promoted the entry into memory: the next probe is
		// a memory hit.
		resp = postJSON(t, ts2.URL+"/estimate", req)
		if got := resp.Header.Get("X-Ltsimd-Cache"); got != "hit" {
			t.Fatalf("second warm request %d: X-Ltsimd-Cache = %q, want hit (memory)", i, got)
		}
		readAll(t, resp)
	}

	snap := svc2.Stats()
	if snap.Store == nil {
		t.Fatal("/stats has no store section on a disk-backed service")
	}
	if snap.Store.Hits != uint64(len(reqs)) {
		t.Errorf("store hits = %d, want %d (one per restart replay)", snap.Store.Hits, len(reqs))
	}
	if snap.Cache.Hits != uint64(len(reqs)) {
		t.Errorf("memory hits = %d, want %d (one per promoted re-probe)", snap.Cache.Hits, len(reqs))
	}
	if snap.Scheduler.Completed != 0 {
		t.Errorf("restarted service simulated %d jobs; want 0 (everything from disk)", snap.Scheduler.Completed)
	}
}

// TestRestartDurabilitySweep: a whole sweep replays from the disk tier
// after a restart, bit-identically, with the summary attributing the
// hits to disk.
func TestRestartDurabilitySweep(t *testing.T) {
	dir := t.TempDir()
	sweep := SweepRequest{Requests: []EstimateRequest{
		{Trials: 80, HorizonYears: 50},
		{Trials: 80, HorizonYears: 50, Replicas: 3},
		{Trials: 80, HorizonYears: 50, Alpha: 0.5},
	}}

	_, ts1 := newDiskService(t, dir)
	cold := sweepLines(t, readAll(t, postJSON(t, ts1.URL+"/sweep", sweep)))
	ts1.Close()

	_, ts2 := newDiskService(t, dir)
	warm := sweepLines(t, readAll(t, postJSON(t, ts2.URL+"/sweep", sweep)))
	for i := range sweep.Requests {
		if !bytes.Equal(cold[i].Result, warm[i].Result) {
			t.Errorf("sweep point %d differs across restart", i)
		}
	}
	sum := warm[len(warm)-1]
	if !sum.Summary || sum.CacheHits != 3 || sum.DiskHits != 3 {
		t.Errorf("warm summary = %+v, want 3 cache hits, all from disk", sum)
	}
}

// sweepLines decodes an NDJSON sweep body into indexed lines, summary
// last.
func sweepLines(t *testing.T, body []byte) []SweepLine {
	t.Helper()
	var out []SweepLine
	byIndex := map[int]SweepLine{}
	var summary *SweepLine
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var line SweepLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("bad sweep line %q: %v", raw, err)
		}
		if line.Summary {
			l := line
			summary = &l
			continue
		}
		byIndex[line.Index] = line
	}
	if summary == nil {
		t.Fatal("sweep body has no summary line")
	}
	for i := 0; i < len(byIndex); i++ {
		line, ok := byIndex[i]
		if !ok {
			t.Fatalf("sweep body missing index %d", i)
		}
		out = append(out, line)
	}
	return append(out, *summary)
}

// TestCorruptEntryResimulatesBitIdentical is the satellite test: a
// corrupted store file is treated as a miss and quarantined, the
// simulation re-runs, and determinism makes the recomputed bytes
// bit-identical to the original answer.
func TestCorruptEntryResimulatesBitIdentical(t *testing.T) {
	dir := t.TempDir()
	req := EstimateRequest{Trials: 90, HorizonYears: 50}

	_, ts1 := newDiskService(t, dir)
	resp := postJSON(t, ts1.URL+"/estimate", req)
	key := resp.Header.Get("X-Ltsimd-Key")
	original := readAll(t, resp)
	ts1.Close()

	// Overwrite the stored entry with garbage while no service holds it.
	ds, err := store.OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := ds.Path(key)
	ds.Close()
	if err := os.WriteFile(path, []byte("garbage bytes, not a store entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, ts2 := newDiskService(t, dir)
	resp = postJSON(t, ts2.URL+"/estimate", req)
	if got := resp.Header.Get("X-Ltsimd-Cache"); got != "miss" {
		t.Fatalf("corrupt entry served as %q, want miss", got)
	}
	if body := readAll(t, resp); !bytes.Equal(body, original) {
		t.Fatalf("re-simulation after corruption is not bit-identical:\nwas: %s\nnow: %s", original, body)
	}
	snap := svc2.Stats()
	if snap.Store == nil || snap.Store.Corrupt != 1 {
		t.Fatalf("store stats = %+v, want exactly 1 corrupt entry", snap.Store)
	}
	// The garbage landed in quarantine, not the serving path, and the
	// recomputed result was written back.
	entries, err := os.ReadDir(filepath.Join(dir, "corrupt"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("quarantine dir: %d entries, err %v; want 1", len(entries), err)
	}
	resp = postJSON(t, ts2.URL+"/estimate", req)
	if got := resp.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Fatalf("after re-simulation: X-Ltsimd-Cache = %q, want hit", got)
	}
	readAll(t, resp)
}

// TestStatsStoreSectionAdditive is the /stats byte-compat regression
// test for the new fields: on a disk-backed service every pre-existing
// field keeps its name and the new store section carries the tier
// counters; on a memory-only service the section is absent so earlier
// consumers see byte-compatible output.
func TestStatsStoreSectionAdditive(t *testing.T) {
	_, ts := newDiskService(t, t.TempDir())
	readAll(t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 60, HorizonYears: 50}))

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"uptime_seconds", "cache", "scheduler",
		"progress_inflight", "sweep_deduped", "biased_runs",
		// PR 9 additive section.
		"store",
	} {
		if _, ok := top[key]; !ok {
			t.Errorf("/stats missing %q: %s", key, body)
		}
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(top["store"], &st); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"entries", "bytes", "capacity_bytes", "hits", "misses", "writes", "corrupt", "gc_evictions", "errors"} {
		if _, ok := st[key]; !ok {
			t.Errorf("/stats store missing %q: %s", key, top["store"])
		}
	}

	// Memory-only daemons must not grow the section at all.
	_, tsMem := newTestService(t)
	respMem, err := http.Get(tsMem.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(readAll(t, respMem), []byte(`"store"`)) {
		t.Error("memory-only /stats grew a store section")
	}
}

// TestStoreMetricFamiliesExposed: the disk tier's families (including
// the corruption counter dashboards alert on) reach GET /metrics.
func TestStoreMetricFamiliesExposed(t *testing.T) {
	_, ts := newDiskService(t, t.TempDir())
	readAll(t, postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 50, HorizonYears: 50}))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readAll(t, resp))
	for _, family := range []string{
		"ltsimd_store_hits_total", "ltsimd_store_misses_total",
		"ltsimd_store_writes_total", "ltsimd_store_corrupt_total",
		"ltsimd_store_gc_evictions_total", "ltsimd_store_entries",
		"ltsimd_store_bytes", "ltsimd_store_capacity_bytes",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %q", family)
		}
	}
	if !strings.Contains(text, "ltsimd_store_writes_total 1") {
		t.Errorf("store writes counter did not record the computed result:\n%s", text)
	}
}
