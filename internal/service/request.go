package service

import (
	"repro/internal/scenario"
	"repro/internal/storage"
)

// The wire request vocabulary — FleetEntry, EstimateRequest, the
// WireFloat +Inf↔−1 convention — lives in internal/scenario, where the
// declarative scenario documents that sweep over it are defined. The
// service re-exports it under its historical names so every frontend
// (cmd/ltsim, the facade, embedders) keeps one import path for "talking
// to the daemon".

// EstimateRequest is one estimation query on the wire; see
// scenario.EstimateRequest.
type EstimateRequest = scenario.EstimateRequest

// FleetEntry is one replica of a heterogeneous fleet on the wire; see
// scenario.FleetEntry.
type FleetEntry = scenario.FleetEntry

// HazardSpec is a non-stationary fault profile on the wire; see
// scenario.HazardSpec.
type HazardSpec = scenario.HazardSpec

// WireFloat maps a fault mean onto its wire form (+Inf travels as -1).
func WireFloat(v float64) float64 { return scenario.WireFloat(v) }

// FleetEntryFromSpec converts a resolved storage spec into its wire
// form.
func FleetEntryFromSpec(s storage.Spec) FleetEntry { return scenario.FleetEntryFromSpec(s) }
