package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/storage"
)

// newTestService returns a small running service and its HTTP server.
func newTestService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(Config{CacheSize: 256, Shards: 2, QueueDepth: 32, JobTimeout: time.Minute, SimParallel: 2})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	return svc, ts
}

// postJSON posts a JSON body and returns the response.
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEstimateMissThenHitBitIdentical(t *testing.T) {
	_, ts := newTestService(t)
	seed := uint64(7)
	req := EstimateRequest{Trials: 120, HorizonYears: 50, Seed: &seed}

	first := postJSON(t, ts.URL+"/estimate", req)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first request: %s: %s", first.Status, readAll(t, first))
	}
	if got := first.Header.Get("X-Ltsimd-Cache"); got != "miss" {
		t.Errorf("first request cache disposition = %q, want miss", got)
	}
	key := first.Header.Get("X-Ltsimd-Key")
	if len(key) != 64 {
		t.Errorf("fingerprint %q is not a hex sha256", key)
	}
	body1 := readAll(t, first)

	second := postJSON(t, ts.URL+"/estimate", req)
	if got := second.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Errorf("second request cache disposition = %q, want hit", got)
	}
	if got := second.Header.Get("X-Ltsimd-Key"); got != key {
		t.Errorf("key changed between identical requests: %q vs %q", key, got)
	}
	body2 := readAll(t, second)
	if !bytes.Equal(body1, body2) {
		t.Errorf("cached response differs from computed response:\n%s\nvs\n%s", body1, body2)
	}

	var est struct {
		MTTDLYears struct{ Point float64 } `json:"mttdl_years"`
		Trials     int                     `json:"trials"`
	}
	if err := json.Unmarshal(body1, &est); err != nil {
		t.Fatalf("response is not estimate JSON: %v", err)
	}
	if est.Trials != 120 || est.MTTDLYears.Point <= 0 {
		t.Errorf("estimate = %+v, want 120 trials and positive MTTDL", est)
	}
}

// TestEstimateEquivalentRequestsShareCacheEntry exercises canonical
// hashing over the wire: a fleet written as named tiers and the same
// fleet written as explicit numbers resolve to the same sim.Config, so
// the daemon gives them one cache entry and bit-identical bytes.
func TestEstimateEquivalentRequestsShareCacheEntry(t *testing.T) {
	_, ts := newTestService(t)
	tiered := EstimateRequest{
		Fleet:  []FleetEntry{{Tier: "consumer"}, {Tier: "consumer"}},
		Trials: 100, HorizonYears: 50,
	}
	// Spell out the exact numbers the tier resolves to.
	s, ok := storage.TierSpec("consumer", 3)
	if !ok {
		t.Fatal("consumer tier missing")
	}
	entry := FleetEntryFromSpec(s)
	explicit := EstimateRequest{
		Fleet:  []FleetEntry{entry, entry},
		Trials: 100, HorizonYears: 50,
	}

	r1 := postJSON(t, ts.URL+"/estimate", tiered)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("tiered: %s: %s", r1.Status, readAll(t, r1))
	}
	k1 := r1.Header.Get("X-Ltsimd-Key")
	b1 := readAll(t, r1)

	r2 := postJSON(t, ts.URL+"/estimate", explicit)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("explicit: %s: %s", r2.Status, readAll(t, r2))
	}
	if k2 := r2.Header.Get("X-Ltsimd-Key"); k2 != k1 {
		t.Errorf("equivalent requests got different keys:\n%s\nvs\n%s", k1, k2)
	}
	if disp := r2.Header.Get("X-Ltsimd-Cache"); disp != "hit" {
		t.Errorf("equivalent request cache disposition = %q, want hit", disp)
	}
	if b2 := readAll(t, r2); !bytes.Equal(b1, b2) {
		t.Error("equivalent requests returned different bytes")
	}
}

func TestEstimateRejectsBadRequests(t *testing.T) {
	_, ts := newTestService(t)
	for name, body := range map[string]string{
		"malformed":     `{"trials": `,
		"unknown field": `{"trialz": 100}`,
		"bad alpha":     `{"alpha": 2}`,
		"bad tier":      `{"fleet": [{"tier": "floppy"}]}`,
		"one trial":     `{"trials": 1}`,
		"bad level":     `{"level": 1.5, "trials": 100}`,
	} {
		resp, err := http.Post(ts.URL+"/estimate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		payload := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, body %s; want 400", name, resp.StatusCode, payload)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(payload, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not {error: ...}", name, payload)
		}
	}
}

// sweepGrid builds the acceptance-criteria parameter grid: ≥20 distinct
// configurations spanning replication level, scrub rate, and correlation.
func sweepGrid() SweepRequest {
	var sr SweepRequest
	seed := uint64(3)
	for _, replicas := range []int{2, 3} {
		for _, alpha := range []float64{1, 0.5} {
			for scrubs := 1; scrubs <= 6; scrubs++ {
				s := float64(scrubs)
				sr.Requests = append(sr.Requests, EstimateRequest{
					Replicas:      replicas,
					Alpha:         alpha,
					ScrubsPerYear: &s,
					Trials:        80,
					HorizonYears:  50,
					Seed:          &seed,
				})
			}
		}
	}
	return sr
}

// runSweep posts a sweep and returns result lines by index plus the
// summary.
func runSweep(t *testing.T, url string, sr SweepRequest) (map[int]string, SweepLine) {
	t.Helper()
	resp := postJSON(t, url+"/sweep", sr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("sweep content type = %q", ct)
	}
	results := make(map[int]string)
	var summary SweepLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Summary {
			summary = line
			continue
		}
		if line.Error != "" {
			t.Fatalf("sweep item %d failed: %s", line.Index, line.Error)
		}
		results[line.Index] = string(line.Result)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !summary.Summary {
		t.Fatal("sweep response missing summary line")
	}
	return results, summary
}

// TestSweepTwiceBitIdenticalAndCached is the PR's acceptance scenario: a
// grid of ≥20 configs submitted twice returns bit-identical results both
// times, with the second pass served (almost) entirely from cache.
func TestSweepTwiceBitIdenticalAndCached(t *testing.T) {
	_, ts := newTestService(t)
	grid := sweepGrid()
	if len(grid.Requests) < 20 {
		t.Fatalf("grid has %d configs, need >= 20", len(grid.Requests))
	}

	first, sum1 := runSweep(t, ts.URL, grid)
	second, sum2 := runSweep(t, ts.URL, grid)

	if len(first) != len(grid.Requests) || len(second) != len(grid.Requests) {
		t.Fatalf("result counts %d/%d, want %d", len(first), len(second), len(grid.Requests))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("config %d: results differ between passes:\n%s\nvs\n%s", i, first[i], second[i])
		}
	}
	if sum1.OK != len(grid.Requests) || sum2.OK != len(grid.Requests) {
		t.Errorf("ok counts %d/%d, want all %d", sum1.OK, sum2.OK, len(grid.Requests))
	}
	minHits := int(0.95 * float64(len(grid.Requests)))
	if sum2.CacheHits < minHits {
		t.Errorf("second pass cache hits = %d of %d, want >= %d", sum2.CacheHits, len(grid.Requests), minHits)
	}
}

func TestSweepRejectsEmpty(t *testing.T) {
	_, ts := newTestService(t)
	resp := postJSON(t, ts.URL+"/sweep", SweepRequest{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep status = %d, want 400", resp.StatusCode)
	}
}

func TestSweepReportsPerItemErrors(t *testing.T) {
	_, ts := newTestService(t)
	bad := EstimateRequest{Alpha: 5, Trials: 50}
	good := EstimateRequest{Trials: 80, HorizonYears: 50}
	results := make(map[int]SweepLine)
	resp := postJSON(t, ts.URL+"/sweep", SweepRequest{Requests: []EstimateRequest{bad, good}})
	defer resp.Body.Close()
	var summary SweepLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line SweepLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Summary {
			summary = line
		} else {
			results[line.Index] = line
		}
	}
	if results[0].Error == "" {
		t.Error("invalid item 0 did not report an error")
	}
	if results[1].Error != "" || len(results[1].Result) == 0 {
		t.Errorf("valid item 1 = %+v, want a result", results[1])
	}
	if summary.OK != 1 || summary.Errors != 1 {
		t.Errorf("summary ok/errors = %d/%d, want 1/1", summary.OK, summary.Errors)
	}
}

func TestExperimentsEndpoints(t *testing.T) {
	_, ts := newTestService(t)
	resp, err := http.Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var index []struct{ ID, Title, Source string }
	if err := json.Unmarshal(readAll(t, resp), &index); err != nil {
		t.Fatal(err)
	}
	if len(index) == 0 {
		t.Fatal("experiment index is empty")
	}

	run := func() []byte {
		r, err := http.Post(ts.URL+"/experiments/run?id="+index[0].ID+"&quick=1", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("run %s: %s: %s", index[0].ID, r.Status, readAll(t, r))
		}
		return readAll(t, r)
	}
	body1 := run()
	body2 := run()
	if !bytes.Equal(body1, body2) {
		t.Error("repeat experiment run is not bit-identical")
	}
	var res struct {
		ID     string          `json:"id"`
		Tables json.RawMessage `json:"tables"`
	}
	if err := json.Unmarshal(body1, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != index[0].ID {
		t.Errorf("ran %q, want %q", res.ID, index[0].ID)
	}

	r404, err := http.Post(ts.URL+"/experiments/run?id=E999", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, r404); r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown experiment status = %d, want 404", r404.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestService(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(readAll(t, resp), &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", health, err)
	}

	// Generate one miss and one hit, then check the counters add up.
	req := EstimateRequest{Trials: 80, HorizonYears: 50}
	readAll(t, postJSON(t, ts.URL+"/estimate", req))
	readAll(t, postJSON(t, ts.URL+"/estimate", req))
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsSnapshot
	if err := json.Unmarshal(readAll(t, sresp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses < 1 {
		t.Errorf("cache stats = %+v, want at least one hit and one miss", stats.Cache)
	}
	if stats.Scheduler.Completed < 1 {
		t.Errorf("scheduler stats = %+v, want at least one completed job", stats.Scheduler)
	}
	if stats.Scheduler.Shards != 2 {
		t.Errorf("shards = %d, want 2", stats.Scheduler.Shards)
	}
}

// TestShutdownMidSweepDrainsCleanly kills the service while a sweep is
// in flight: in-flight jobs drain, the response completes (every item
// answered or errored), and no goroutines leak — the -race run in CI
// doubles as the data-race check on the drain path.
func TestShutdownMidSweepDrainsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	svc := New(Config{CacheSize: 64, Shards: 2, QueueDepth: 32, JobTimeout: time.Minute, SimParallel: 1})
	ts := httptest.NewServer(svc.Handler())

	grid := sweepGrid()
	for i := range grid.Requests {
		grid.Requests[i].Trials = 400 // slow enough to still be running at shutdown
	}
	b, err := json.Marshal(grid)
	if err != nil {
		t.Fatal(err)
	}
	sweepDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", bytes.NewReader(b))
		if err != nil {
			sweepDone <- err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		lines := 0
		for sc.Scan() {
			lines++
		}
		if lines != len(grid.Requests)+1 {
			sweepDone <- fmt.Errorf("sweep returned %d lines, want %d", lines, len(grid.Requests)+1)
			return
		}
		sweepDone <- sc.Err()
	}()

	time.Sleep(30 * time.Millisecond) // let some jobs start
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-sweepDone; err != nil {
		t.Fatalf("mid-shutdown sweep: %v", err)
	}
	ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d before, %d after shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
