package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q, want text/plain", ct)
	}
	return string(readAll(t, resp))
}

// metricValue extracts one sample's value from exposition text, summing
// across label sets when the series name matches more than one line.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9eE+.-]+|\+Inf|NaN)$`)
	matches := re.FindAllStringSubmatch(text, -1)
	if len(matches) == 0 {
		t.Fatalf("metric %s not found in exposition", name)
	}
	var sum float64
	for _, m := range matches {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s value %q: %v", name, m[1], err)
		}
		sum += v
	}
	return sum
}

// TestMetricsEndpointCoversAllFamilies is the tentpole's acceptance
// check: after one miss and one hit, GET /metrics serves Prometheus text
// whose http, cache, scheduler, and sim families all reflect the
// traffic.
func TestMetricsEndpointCoversAllFamilies(t *testing.T) {
	_, ts := newTestService(t)
	seed := uint64(11)
	req := EstimateRequest{Trials: 120, HorizonYears: 50, Seed: &seed}
	readAll(t, postJSON(t, ts.URL+"/estimate", req)) // miss
	readAll(t, postJSON(t, ts.URL+"/estimate", req)) // hit

	text := scrape(t, ts.URL)

	if hits := metricValue(t, text, "ltsimd_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %v, want 1", hits)
	}
	if misses := metricValue(t, text, "ltsimd_cache_misses_total"); misses != 1 {
		t.Errorf("cache misses = %v, want 1", misses)
	}
	if entries := metricValue(t, text, "ltsimd_cache_entries"); entries != 1 {
		t.Errorf("cache entries = %v, want 1", entries)
	}
	if completed := metricValue(t, text, "ltsimd_sched_jobs_completed_total"); completed != 1 {
		t.Errorf("scheduler completed = %v, want 1 (summed across shards)", completed)
	}
	if trials := metricValue(t, text, "sim_trials_total"); trials < 120 {
		t.Errorf("sim trials = %v, want >= 120", trials)
	}
	if runs := metricValue(t, text, "sim_runs_total"); runs < 1 {
		t.Errorf("sim runs = %v, want >= 1", runs)
	}
	if up := metricValue(t, text, "ltsimd_uptime_seconds"); up <= 0 {
		t.Errorf("uptime = %v, want > 0", up)
	}
	// The HTTP histogram recorded both estimate requests, split by cache
	// outcome.
	for _, cacheLabel := range []string{"miss", "hit"} {
		want := `ltsimd_http_request_seconds_count{route="/estimate",status="200",cache="` + cacheLabel + `"} 1`
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Queue-wait and run-duration histograms saw the one scheduled job.
	if waits := metricValue(t, text, "ltsimd_sched_queue_wait_seconds_count"); waits != 1 {
		t.Errorf("queue wait observations = %v, want 1", waits)
	}
	if runs := metricValue(t, text, "ltsimd_sched_run_seconds_count"); runs != 1 {
		t.Errorf("run duration observations = %v, want 1", runs)
	}
}

// TestMiddlewareHistogramBuckets checks the middleware records exactly
// one observation per request into the right child and that the
// observation is consistent with its bucket placement.
func TestMiddlewareHistogramBuckets(t *testing.T) {
	svc, ts := newTestService(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)

	h := svc.metrics.httpSeconds.With("/healthz", "200", "none")
	buckets, sum, count := h.Snapshot()
	if count != 1 {
		t.Fatalf("healthz child count = %d, want 1", count)
	}
	if sum < 0 {
		t.Errorf("sum = %v, want >= 0", sum)
	}
	var total uint64
	for _, b := range buckets {
		total += b
	}
	if total != 1 {
		t.Errorf("bucket counts sum to %d, want 1 (one observation in exactly one bucket)", total)
	}
	// A healthz round trip is far under the top bucket bound, so the
	// overflow bucket must be empty.
	if buckets[len(buckets)-1] != 0 {
		t.Errorf("healthz latency landed in the overflow bucket (sum=%v)", sum)
	}

	// Unknown paths fold onto the bounded "other" route label.
	r404, err := http.Get(ts.URL + "/definitely/not/a/route")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, r404)
	_, _, otherCount := svc.metrics.httpSeconds.With("other", "404", "none").Snapshot()
	if otherCount != 1 {
		t.Errorf("other-route child count = %d, want 1", otherCount)
	}
}

// TestStatsSnapshotBackwardCompatible is the satellite regression test:
// the PR adds fields to /stats but every pre-existing field keeps its
// name, and the new fields are additive.
func TestStatsSnapshotBackwardCompatible(t *testing.T) {
	_, ts := newTestService(t)
	req := EstimateRequest{Trials: 80, HorizonYears: 50}
	readAll(t, postJSON(t, ts.URL+"/estimate", req))
	readAll(t, postJSON(t, ts.URL+"/estimate", req))

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)

	var top map[string]json.RawMessage
	if err := json.Unmarshal(body, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		// Pre-existing surface.
		"uptime_seconds", "cache", "scheduler",
		// PR 7 additive fields.
		"progress_inflight", "sweep_deduped",
		// PR 8 additive field.
		"biased_runs",
	} {
		if _, ok := top[key]; !ok {
			t.Errorf("/stats missing %q: %s", key, body)
		}
	}
	var cache map[string]json.RawMessage
	if err := json.Unmarshal(top["cache"], &cache); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"size", "capacity", "hits", "misses", "hit_rate", "evictions"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("/stats cache missing %q: %s", key, top["cache"])
		}
	}
	var sched map[string]json.RawMessage
	if err := json.Unmarshal(top["scheduler"], &sched); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shards", "queue_depth", "inflight", "completed", "failed", "timeouts"} {
		if _, ok := sched[key]; !ok {
			t.Errorf("/stats scheduler missing %q: %s", key, top["scheduler"])
		}
	}
	// The old decode path still works and the counters are sane.
	var snap StatsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit and 1 miss", snap.Cache)
	}
}

// logLine is one NDJSON record from the request log.
type logLine struct {
	Msg     string `json:"msg"`
	Route   string `json:"route"`
	Status  int    `json:"status"`
	Cache   string `json:"cache"`
	Request string `json:"request"`
	Spans   []struct {
		Name string  `json:"name"`
		AtMS float64 `json:"at_ms"`
	} `json:"spans"`
}

// TestRequestSpanOrdering is the satellite span test: a cache-miss
// estimate's structured log record carries the full span timeline with
// queued <= running <= served, and the logged request ID matches the
// X-Ltsimd-Request header.
func TestRequestSpanOrdering(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	svc := New(Config{CacheSize: 64, Shards: 2, QueueDepth: 16, JobTimeout: time.Minute, SimParallel: 1, Logger: logger})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})

	seed := uint64(5)
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 100, HorizonYears: 50, Seed: &seed})
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %s", resp.Status)
	}
	reqID := resp.Header.Get("X-Ltsimd-Request")
	if len(reqID) != 16 {
		t.Fatalf("X-Ltsimd-Request = %q, want 16 hex chars", reqID)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	var rec logLine
	found := false
	for _, line := range lines {
		var l logLine
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		if l.Msg == "request" && l.Request == reqID {
			rec, found = l, true
		}
	}
	if !found {
		t.Fatalf("no request log record for id %s in:\n%s", reqID, buf.String())
	}
	if rec.Route != "/estimate" || rec.Status != 200 || rec.Cache != "miss" {
		t.Errorf("record = %+v, want route=/estimate status=200 cache=miss", rec)
	}

	at := map[string]float64{}
	last := -1.0
	for _, s := range rec.Spans {
		if s.AtMS < last {
			t.Errorf("span %s at %vms precedes previous mark at %vms — timeline out of order", s.Name, s.AtMS, last)
		}
		last = s.AtMS
		at[s.Name] = s.AtMS
	}
	for _, name := range []string{"received", "resolved", "queued", "running", "encoded", "served"} {
		if _, ok := at[name]; !ok {
			t.Errorf("span timeline missing %q: %+v", name, rec.Spans)
		}
	}
	if !(at["queued"] <= at["running"] && at["running"] <= at["served"]) {
		t.Errorf("span ordering violated: queued=%v running=%v served=%v", at["queued"], at["running"], at["served"])
	}
}

// lockedWriter serializes writes so the handler goroutine and the test
// reader never race on the buffer.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestSubmitReportsJoined pins the scheduler's dedup signal: a duplicate
// key submitted while the first is still running coalesces (joined=true)
// and both callers get the same bytes.
func TestSubmitReportsJoined(t *testing.T) {
	s := newScheduler(1, 8, time.Minute)
	t.Cleanup(func() { s.Shutdown(context.Background()) })

	started := make(chan struct{})
	release := make(chan struct{})
	fn := func(context.Context) ([]byte, error) {
		close(started)
		<-release
		return []byte("payload"), nil
	}

	type res struct {
		val    []byte
		joined bool
		err    error
	}
	owner := make(chan res, 1)
	go func() {
		v, j, e := s.submit(context.Background(), "k", fn)
		owner <- res{v, j, e}
	}()
	<-started // the owner's job is running, so the key is in the pending table

	dup := make(chan res, 1)
	go func() {
		v, j, e := s.submit(context.Background(), "k", func(context.Context) ([]byte, error) {
			t.Error("duplicate submission ran its own compute")
			return nil, nil
		})
		dup <- res{v, j, e}
	}()
	// The duplicate must be visibly joined before the owner finishes;
	// give its goroutine a moment to take the shard lock.
	time.Sleep(10 * time.Millisecond)
	close(release)

	o, d := <-owner, <-dup
	if o.err != nil || d.err != nil {
		t.Fatalf("submit errors: owner=%v dup=%v", o.err, d.err)
	}
	if o.joined {
		t.Error("owner submission reported joined=true")
	}
	if !d.joined {
		t.Error("duplicate submission reported joined=false, want true (dedup)")
	}
	if string(o.val) != "payload" || string(d.val) != "payload" {
		t.Errorf("values = %q / %q, want both %q", o.val, d.val, "payload")
	}
}
