package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"
)

// BenchArtifact is the schema of BENCH_service.json: the daemon smoke
// bench comparing a cold sweep (every config simulated) against the same
// sweep replayed from cache, the seed measurement of the service's perf
// trajectory.
type BenchArtifact struct {
	Bench           string  `json:"bench"`
	SweepConfigs    int     `json:"sweep_configs"`
	TrialsPerItem   int     `json:"trials_per_item"`
	ColdMS          int64   `json:"cold_ms"`
	WarmMS          int64   `json:"warm_ms"`
	Speedup         float64 `json:"speedup"`
	WarmCacheHits   int     `json:"warm_cache_hits"`
	WarmHitRate     float64 `json:"warm_hit_rate"`
	BitIdentical    bool    `json:"bit_identical"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	SchedulerShards int     `json:"scheduler_shards"`
}

// TestBenchArtifact measures estimate latency cold vs. cache-hit over
// the acceptance sweep and, when BENCH_SERVICE_OUT is set, writes the
// measurements as a machine-readable JSON artifact (CI publishes it as
// BENCH_service.json). Without the env var it still runs as a cheap
// assertion that the cached pass is faster and fully hit.
func TestBenchArtifact(t *testing.T) {
	svc := New(Config{CacheSize: 256, Shards: 4, QueueDepth: 64, JobTimeout: time.Minute})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Shutdown(context.Background())
	}()

	grid := sweepGrid()
	for i := range grid.Requests {
		grid.Requests[i].Trials = 200
	}

	start := time.Now()
	cold, _ := runSweep(t, ts.URL, grid)
	coldMS := time.Since(start).Milliseconds()

	start = time.Now()
	warm, warmSummary := runSweep(t, ts.URL, grid)
	warmMS := time.Since(start).Milliseconds()

	identical := len(cold) == len(warm)
	for i := range cold {
		if cold[i] != warm[i] {
			identical = false
		}
	}
	if !identical {
		t.Error("warm sweep results are not bit-identical to cold")
	}
	if warmSummary.CacheHits < len(grid.Requests)*95/100 {
		t.Errorf("warm cache hits = %d of %d, want >= 95%%", warmSummary.CacheHits, len(grid.Requests))
	}

	art := BenchArtifact{
		Bench:           "service_sweep_cold_vs_cached",
		SweepConfigs:    len(grid.Requests),
		TrialsPerItem:   200,
		ColdMS:          coldMS,
		WarmMS:          warmMS,
		WarmCacheHits:   warmSummary.CacheHits,
		WarmHitRate:     float64(warmSummary.CacheHits) / float64(len(grid.Requests)),
		BitIdentical:    identical,
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		SchedulerShards: svc.cfg.Shards,
	}
	if warmMS > 0 {
		art.Speedup = float64(coldMS) / float64(warmMS)
	}
	// The cached pass must be measurably faster. Timer granularity can
	// make tiny sweeps flaky, so only enforce when the cold pass did
	// real work.
	if coldMS >= 50 && warmMS >= coldMS {
		t.Errorf("cached sweep (%dms) not faster than cold sweep (%dms)", warmMS, coldMS)
	}

	out := os.Getenv("BENCH_SERVICE_OUT")
	if out == "" {
		t.Logf("cold %dms, warm %dms, %d/%d hits (set BENCH_SERVICE_OUT to write the artifact)",
			coldMS, warmMS, warmSummary.CacheHits, len(grid.Requests))
		return
	}
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cold %dms, warm %dms, speedup %.1fx", out, coldMS, warmMS, art.Speedup)
}
