package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	// a is now most recent; inserting c should evict b.
	c.Put("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Errorf("a = %q, %v; want A, true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Errorf("c = %q, %v; want C, true", v, ok)
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("v2"))
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Errorf("updated value = %q, want v2", v)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Errorf("size after update = %d, want 1", st.Size)
	}
}

func TestCacheStatsHitRate(t *testing.T) {
	c := newResultCache(4)
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("k")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
	if want := 2.0 / 3.0; st.HitRate != want {
		t.Errorf("hit rate = %v, want %v", st.HitRate, want)
	}
}

// TestCacheConcurrentAccess is the race-detector workout: concurrent
// readers, writers, and stats snapshots over a small, hot key space.
func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				if v, ok := c.Get(key); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.Put(key, []byte(key))
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Size > 8 {
		t.Errorf("size %d exceeds capacity 8", st.Size)
	}
}
