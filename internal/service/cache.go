package service

import (
	"container/list"
	"sync"

	"repro/internal/telemetry"
)

// resultCache is a bounded, mutex-guarded LRU mapping canonical request
// fingerprints to encoded response bytes. Caching the bytes rather than
// the decoded estimate is what makes repeat answers bit-identical by
// construction: a hit replays exactly what the first computation wrote.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions uint64
	// metrics mirrors the counters above into the telemetry registry
	// when instrument has been called; nil outside a Service.
	metrics *cacheMetrics
}

// cacheMetrics is the cache's telemetry instrument set.
type cacheMetrics struct {
	hits, misses, evictions *telemetry.Counter
}

// instrument registers the cache metric families and starts mirroring
// the internal counters into them. Called once by Service.New before
// the cache serves traffic.
func (c *resultCache) instrument(reg *telemetry.Registry) {
	c.metrics = &cacheMetrics{
		hits:      reg.Counter("ltsimd_cache_hits_total", "Result cache lookups that replayed stored bytes."),
		misses:    reg.Counter("ltsimd_cache_misses_total", "Result cache lookups that found nothing."),
		evictions: reg.Counter("ltsimd_cache_evictions_total", "Entries evicted by the LRU bound."),
	}
	reg.GaugeFunc("ltsimd_cache_entries", "Result cache size in entries.", func() float64 {
		return float64(c.Len())
	})
	reg.GaugeFunc("ltsimd_cache_capacity", "Result cache capacity in entries.", func() float64 {
		return float64(c.cap)
	})
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns an LRU bounded to capacity entries (>= 1).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached bytes for key, counting a hit or miss.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		if c.metrics != nil {
			c.metrics.misses.Inc()
		}
		return nil, false
	}
	c.hits++
	if c.metrics != nil {
		c.metrics.hits.Inc()
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// over capacity. Callers must not mutate val afterwards.
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
		if c.metrics != nil {
			c.metrics.evictions.Inc()
		}
	}
}

// CacheStats is a point-in-time cache snapshot. Evictions is additive
// (PR 7); the earlier fields keep their names and positions.
type CacheStats struct {
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Size: c.order.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
