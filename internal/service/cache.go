package service

import (
	"container/list"
	"sync"
)

// resultCache is a bounded, mutex-guarded LRU mapping canonical request
// fingerprints to encoded response bytes. Caching the bytes rather than
// the decoded estimate is what makes repeat answers bit-identical by
// construction: a hit replays exactly what the first computation wrote.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// newResultCache returns an LRU bounded to capacity entries (>= 1).
func newResultCache(capacity int) *resultCache {
	if capacity < 1 {
		capacity = 1
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached bytes for key, counting a hit or miss.
func (c *resultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// over capacity. Callers must not mutate val afterwards.
func (c *resultCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time cache snapshot.
type CacheStats struct {
	Size     int     `json:"size"`
	Capacity int     `json:"capacity"`
	Hits     uint64  `json:"hits"`
	Misses   uint64  `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
}

// Stats snapshots the cache counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{Size: c.order.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
