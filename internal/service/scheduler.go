package service

import (
	"context"
	"errors"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Scheduler errors.
var (
	// ErrQueueFull reports that the job's shard queue is at capacity —
	// the backpressure signal the HTTP layer maps to 503.
	ErrQueueFull = errors.New("service: shard queue full")
	// ErrShuttingDown reports a submission after shutdown began.
	ErrShuttingDown = errors.New("service: scheduler shutting down")
)

// job is one unit of scheduled work: compute bytes for a key. Waiters
// block on done; duplicate submissions of an in-flight key join the
// existing job instead of queueing a second computation.
type job struct {
	key  string
	fn   func(context.Context) ([]byte, error)
	done chan struct{}
	val  []byte
	err  error
	// enqueued timestamps admission, for the queue-wait histogram.
	enqueued time.Time
	// trace is the submitting request's span timeline (nil when the
	// submitter carries none); the worker marks "running" on it and
	// threads it into the job context so compute code can mark later
	// stages. Coalesced waiters share the owner's spans.
	trace *telemetry.Trace
}

// shard is one scheduler partition: a bounded queue, one worker, and the
// single-flight table for keys currently queued or running here. Keys
// hash to shards, so all duplicates of a key meet in the same table and
// the per-shard mutex never contends across shards.
type shard struct {
	queue   chan *job
	mu      sync.Mutex
	pending map[string]*job
	// metrics is the shard's pre-resolved instrument handles; nil until
	// scheduler.instrument runs (always before traffic in a Service).
	metrics *shardInstruments
}

// shardInstruments is one shard's telemetry handle set, resolved once
// at instrument time so the worker loop records with plain atomics.
type shardInstruments struct {
	queueWait, runDur           *telemetry.Histogram
	completed, failed, timeouts *telemetry.Counter
}

// scheduler fans jobs out across key-hashed shards with per-job
// timeouts, graceful draining, and aggregate stats.
type scheduler struct {
	shards  []*shard
	timeout time.Duration

	baseCtx context.Context
	cancel  context.CancelFunc
	quit    chan struct{}
	workers sync.WaitGroup
	// mu makes the closed transition atomic with respect to job
	// admission: Submit holds the read side across its check-and-Add, so
	// once Shutdown flips closed under the write lock, every admitted
	// job is already counted in jobs and jobs.Wait() races with nothing.
	mu     sync.RWMutex
	jobs   sync.WaitGroup
	closed bool

	inflight  atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
	timeouts  atomic.Uint64
}

// instrument registers the scheduler metric families: per-shard queue
// depth gauges, queue-wait and run-duration histograms, and
// completed/failed/timeout counters. Called once by Service.New before
// any Submit.
func (s *scheduler) instrument(reg *telemetry.Registry) {
	queueWait := reg.HistogramVec("ltsimd_sched_queue_wait_seconds",
		"Time jobs spend queued before a shard worker starts them.", telemetry.DurationBuckets, "shard")
	runDur := reg.HistogramVec("ltsimd_sched_run_seconds",
		"Job execution time on a shard worker.", telemetry.DurationBuckets, "shard")
	completed := reg.CounterVec("ltsimd_sched_jobs_completed_total",
		"Jobs that finished successfully.", "shard")
	failed := reg.CounterVec("ltsimd_sched_jobs_failed_total",
		"Jobs that returned an error (timeouts included).", "shard")
	timeouts := reg.CounterVec("ltsimd_sched_jobs_timeout_total",
		"Jobs aborted by the per-job timeout.", "shard")
	depth := reg.GaugeVec("ltsimd_sched_queue_depth",
		"Jobs queued (not yet running) per shard.", "shard")
	reg.GaugeFunc("ltsimd_sched_inflight", "Jobs currently executing across all shards.", func() float64 {
		return float64(s.inflight.Load())
	})
	for i, sh := range s.shards {
		label := strconv.Itoa(i)
		sh.metrics = &shardInstruments{
			queueWait: queueWait.With(label),
			runDur:    runDur.With(label),
			completed: completed.With(label),
			failed:    failed.With(label),
			timeouts:  timeouts.With(label),
		}
		q := sh.queue
		depth.Func(func() float64 { return float64(len(q)) }, label)
	}
}

// newScheduler starts nShards workers, one per shard.
func newScheduler(nShards, queueDepth int, timeout time.Duration) *scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		shards:  make([]*shard, nShards),
		timeout: timeout,
		baseCtx: ctx,
		cancel:  cancel,
		quit:    make(chan struct{}),
	}
	for i := range s.shards {
		sh := &shard{
			queue:   make(chan *job, queueDepth),
			pending: make(map[string]*job),
		}
		s.shards[i] = sh
		s.workers.Add(1)
		go s.work(sh)
	}
	return s
}

// shardFor hashes a key onto its shard.
func (s *scheduler) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// work is one shard's worker loop.
func (s *scheduler) work(sh *shard) {
	defer s.workers.Done()
	for {
		select {
		case j := <-sh.queue:
			s.run(sh, j)
		case <-s.quit:
			// Drain whatever is still queued so no waiter blocks
			// forever; post-shutdown jobs fail fast on the cancelled
			// base context.
			for {
				select {
				case j := <-sh.queue:
					s.run(sh, j)
				default:
					return
				}
			}
		}
	}
}

// run executes one job under the per-job timeout and publishes its
// outcome.
func (s *scheduler) run(sh *shard, j *job) {
	wait := time.Since(j.enqueued)
	j.trace.Mark("running")
	s.inflight.Add(1)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.timeout)
	j.val, j.err = j.fn(telemetry.WithTrace(ctx, j.trace))
	cancel()
	s.inflight.Add(-1)
	timedOut := j.err != nil && errors.Is(j.err, context.DeadlineExceeded)
	if j.err != nil {
		s.failed.Add(1)
		if timedOut {
			s.timeouts.Add(1)
		}
	} else {
		s.completed.Add(1)
	}
	if m := sh.metrics; m != nil {
		m.queueWait.Observe(wait.Seconds())
		m.runDur.Observe(time.Since(start).Seconds())
		if j.err == nil {
			m.completed.Inc()
		} else {
			m.failed.Inc()
			if timedOut {
				m.timeouts.Inc()
			}
		}
	}

	sh.mu.Lock()
	delete(sh.pending, j.key)
	sh.mu.Unlock()
	close(j.done)
	s.jobs.Done()
}

// Submit schedules fn under key and waits for its result. Duplicate
// in-flight keys share one execution (all waiters get the same bytes).
// ctx cancels the *wait*, not the job: an abandoned job still completes
// and can populate the cache.
func (s *scheduler) Submit(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	val, _, err := s.submit(ctx, key, fn)
	return val, err
}

// submit is Submit reporting whether the call coalesced onto an
// already-in-flight job for the same key (the "dedup" cache outcome).
// The owner's submit carries its context trace into the job, so the
// worker's "running" and the compute path's later marks land on the
// originating request's timeline.
func (s *scheduler) submit(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, bool, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, false, ErrShuttingDown
	}
	sh := s.shardFor(key)

	sh.mu.Lock()
	j, joined := sh.pending[key]
	if !joined {
		j = &job{key: key, fn: fn, done: make(chan struct{}), enqueued: time.Now(), trace: telemetry.TraceFrom(ctx)}
		select {
		case sh.queue <- j:
			sh.pending[key] = j
			s.jobs.Add(1)
		default:
			sh.mu.Unlock()
			s.mu.RUnlock()
			return nil, false, ErrQueueFull
		}
	}
	sh.mu.Unlock()
	s.mu.RUnlock()

	select {
	case <-j.done:
		return j.val, joined, j.err
	case <-ctx.Done():
		return nil, joined, ctx.Err()
	}
}

// SchedulerStats is a point-in-time scheduler snapshot. Timeouts is
// additive (PR 7); the earlier fields keep their names and positions.
type SchedulerStats struct {
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Timeouts   uint64 `json:"timeouts"`
}

// Stats snapshots the scheduler counters. QueueDepth sums queued (not
// yet running) jobs across shards.
func (s *scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Shards:    len(s.shards),
		Inflight:  s.inflight.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Timeouts:  s.timeouts.Load(),
	}
	for _, sh := range s.shards {
		st.QueueDepth += len(sh.queue)
	}
	return st
}

// Shutdown stops accepting work and drains: queued and running jobs
// complete normally until ctx expires, at which point the base context
// is cancelled and the remainder abort promptly (the simulator checks
// its context between trials). Workers are always reaped before return.
func (s *scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort in-flight simulations
		<-drained  // every job still publishes, so this is prompt
	}
	close(s.quit)
	s.workers.Wait()
	s.cancel()
	return err
}
