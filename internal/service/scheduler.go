package service

import (
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler errors.
var (
	// ErrQueueFull reports that the job's shard queue is at capacity —
	// the backpressure signal the HTTP layer maps to 503.
	ErrQueueFull = errors.New("service: shard queue full")
	// ErrShuttingDown reports a submission after shutdown began.
	ErrShuttingDown = errors.New("service: scheduler shutting down")
)

// job is one unit of scheduled work: compute bytes for a key. Waiters
// block on done; duplicate submissions of an in-flight key join the
// existing job instead of queueing a second computation.
type job struct {
	key  string
	fn   func(context.Context) ([]byte, error)
	done chan struct{}
	val  []byte
	err  error
}

// shard is one scheduler partition: a bounded queue, one worker, and the
// single-flight table for keys currently queued or running here. Keys
// hash to shards, so all duplicates of a key meet in the same table and
// the per-shard mutex never contends across shards.
type shard struct {
	queue   chan *job
	mu      sync.Mutex
	pending map[string]*job
}

// scheduler fans jobs out across key-hashed shards with per-job
// timeouts, graceful draining, and aggregate stats.
type scheduler struct {
	shards  []*shard
	timeout time.Duration

	baseCtx context.Context
	cancel  context.CancelFunc
	quit    chan struct{}
	workers sync.WaitGroup
	// mu makes the closed transition atomic with respect to job
	// admission: Submit holds the read side across its check-and-Add, so
	// once Shutdown flips closed under the write lock, every admitted
	// job is already counted in jobs and jobs.Wait() races with nothing.
	mu     sync.RWMutex
	jobs   sync.WaitGroup
	closed bool

	inflight  atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
}

// newScheduler starts nShards workers, one per shard.
func newScheduler(nShards, queueDepth int, timeout time.Duration) *scheduler {
	ctx, cancel := context.WithCancel(context.Background())
	s := &scheduler{
		shards:  make([]*shard, nShards),
		timeout: timeout,
		baseCtx: ctx,
		cancel:  cancel,
		quit:    make(chan struct{}),
	}
	for i := range s.shards {
		sh := &shard{
			queue:   make(chan *job, queueDepth),
			pending: make(map[string]*job),
		}
		s.shards[i] = sh
		s.workers.Add(1)
		go s.work(sh)
	}
	return s
}

// shardFor hashes a key onto its shard.
func (s *scheduler) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// work is one shard's worker loop.
func (s *scheduler) work(sh *shard) {
	defer s.workers.Done()
	for {
		select {
		case j := <-sh.queue:
			s.run(sh, j)
		case <-s.quit:
			// Drain whatever is still queued so no waiter blocks
			// forever; post-shutdown jobs fail fast on the cancelled
			// base context.
			for {
				select {
				case j := <-sh.queue:
					s.run(sh, j)
				default:
					return
				}
			}
		}
	}
}

// run executes one job under the per-job timeout and publishes its
// outcome.
func (s *scheduler) run(sh *shard, j *job) {
	s.inflight.Add(1)
	ctx, cancel := context.WithTimeout(s.baseCtx, s.timeout)
	j.val, j.err = j.fn(ctx)
	cancel()
	s.inflight.Add(-1)
	if j.err != nil {
		s.failed.Add(1)
	} else {
		s.completed.Add(1)
	}

	sh.mu.Lock()
	delete(sh.pending, j.key)
	sh.mu.Unlock()
	close(j.done)
	s.jobs.Done()
}

// Submit schedules fn under key and waits for its result. Duplicate
// in-flight keys share one execution (all waiters get the same bytes).
// ctx cancels the *wait*, not the job: an abandoned job still completes
// and can populate the cache.
func (s *scheduler) Submit(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) ([]byte, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrShuttingDown
	}
	sh := s.shardFor(key)

	sh.mu.Lock()
	j, joined := sh.pending[key]
	if !joined {
		j = &job{key: key, fn: fn, done: make(chan struct{})}
		select {
		case sh.queue <- j:
			sh.pending[key] = j
			s.jobs.Add(1)
		default:
			sh.mu.Unlock()
			s.mu.RUnlock()
			return nil, ErrQueueFull
		}
	}
	sh.mu.Unlock()
	s.mu.RUnlock()

	select {
	case <-j.done:
		return j.val, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SchedulerStats is a point-in-time scheduler snapshot.
type SchedulerStats struct {
	Shards     int    `json:"shards"`
	QueueDepth int    `json:"queue_depth"`
	Inflight   int64  `json:"inflight"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
}

// Stats snapshots the scheduler counters. QueueDepth sums queued (not
// yet running) jobs across shards.
func (s *scheduler) Stats() SchedulerStats {
	st := SchedulerStats{
		Shards:    len(s.shards),
		Inflight:  s.inflight.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
	}
	for _, sh := range s.shards {
		st.QueueDepth += len(sh.queue)
	}
	return st
}

// Shutdown stops accepting work and drains: queued and running jobs
// complete normally until ctx expires, at which point the base context
// is cancelled and the remainder abort promptly (the simulator checks
// its context between trials). Workers are always reaped before return.
func (s *scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	drained := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancel() // abort in-flight simulations
		<-drained  // every job still publishes, so this is prompt
	}
	close(s.quit)
	s.workers.Wait()
	s.cancel()
	return err
}
