package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerRunsJobs(t *testing.T) {
	// Queue depth 32 per shard: all 20 jobs must fit even if one shard
	// gets every key.
	s := newScheduler(2, 32, time.Minute)
	defer s.Shutdown(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("job-%d", i)
			v, err := s.Submit(context.Background(), key, func(context.Context) ([]byte, error) {
				return []byte(key), nil
			})
			if err != nil || string(v) != key {
				t.Errorf("job %d = %q, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if st := s.Stats(); st.Completed != 20 || st.Failed != 0 {
		t.Errorf("completed/failed = %d/%d, want 20/0", st.Completed, st.Failed)
	}
}

func TestSchedulerSingleFlight(t *testing.T) {
	s := newScheduler(1, 8, time.Minute)
	defer s.Shutdown(context.Background())
	var runs atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Submit(context.Background(), "same-key", func(context.Context) ([]byte, error) {
				runs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil || string(v) != "result" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	// Give every Submit a chance to land on the pending map before the
	// single execution finishes.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times for 10 duplicate submissions, want 1", got)
	}
}

func TestSchedulerQueueFull(t *testing.T) {
	s := newScheduler(1, 1, time.Minute)
	defer s.Shutdown(context.Background())
	block := make(chan struct{})
	// Occupy the worker...
	go s.Submit(context.Background(), "running", func(context.Context) ([]byte, error) {
		<-block
		return nil, nil
	})
	// ...and the single queue slot.
	for {
		st := s.Stats()
		if st.Inflight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	go s.Submit(context.Background(), "queued", func(context.Context) ([]byte, error) { return nil, nil })
	for {
		if s.Stats().QueueDepth == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	_, err := s.Submit(context.Background(), "overflow", func(context.Context) ([]byte, error) { return nil, nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("overflow submit = %v, want ErrQueueFull", err)
	}
	close(block)
}

func TestSchedulerJobTimeout(t *testing.T) {
	s := newScheduler(1, 4, 20*time.Millisecond)
	defer s.Shutdown(context.Background())
	_, err := s.Submit(context.Background(), "slow", func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("slow job = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
}

func TestSchedulerWaiterCancellation(t *testing.T) {
	s := newScheduler(1, 4, time.Minute)
	defer s.Shutdown(context.Background())
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, "k", func(context.Context) ([]byte, error) {
			<-release
			return []byte("late"), nil
		})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned wait = %v, want Canceled", err)
	}
	// The job itself still completes and publishes.
	close(release)
	v, err := s.Submit(context.Background(), "k2", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" {
		t.Fatalf("scheduler unusable after abandoned wait: %q, %v", v, err)
	}
}

func TestSchedulerGracefulShutdownDrains(t *testing.T) {
	s := newScheduler(2, 16, time.Minute)
	var completed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), fmt.Sprintf("drain-%d", i), func(ctx context.Context) ([]byte, error) {
				select {
				case <-time.After(5 * time.Millisecond):
					completed.Add(1)
					return []byte("done"), nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			})
			if err != nil {
				t.Errorf("job %d: %v", i, err)
			}
		}(i)
	}
	// Let the jobs enqueue, then drain with a generous budget: every
	// queued job must complete, none may be aborted.
	time.Sleep(10 * time.Millisecond)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if got := completed.Load(); got != 12 {
		t.Errorf("%d jobs completed, want all 12", got)
	}
	if _, err := s.Submit(context.Background(), "late", nil); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit = %v, want ErrShuttingDown", err)
	}
}

func TestSchedulerHardShutdownAborts(t *testing.T) {
	s := newScheduler(1, 4, time.Minute)
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "stuck", func(ctx context.Context) ([]byte, error) {
			close(started)
			<-ctx.Done() // simulates EstimateContext noticing cancellation
			return nil, ctx.Err()
		})
		done <- err
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded after drain budget", err)
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("stuck job = %v, want Canceled by hard shutdown", err)
	}
}
