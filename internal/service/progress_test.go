package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// streamFrames posts a progress request and decodes the NDJSON frames.
func streamFrames(t *testing.T, url string, req EstimateRequest) (frames []EstimateFrame, contentType string) {
	t.Helper()
	resp := postJSON(t, url+"/estimate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress request: %s", resp.Status)
	}
	contentType = resp.Header.Get("Content-Type")
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var f EstimateFrame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad frame %q: %v", sc.Text(), err)
		}
		frames = append(frames, f)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames, contentType
}

// A progress-streamed estimate must emit at least one progress frame
// before the final frame, and the final frame's result must be the
// exact bytes a plain request (or a cache replay) serves.
func TestEstimateProgressStreaming(t *testing.T) {
	_, ts := newTestService(t)
	seed := uint64(3)
	// > DefaultBatchSize trials so at least one non-final boundary exists.
	req := EstimateRequest{Trials: 600, HorizonYears: 50, Seed: &seed, Progress: true}

	frames, ct := streamFrames(t, ts.URL, req)
	if ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	if len(frames) < 2 {
		t.Fatalf("got %d frames, want at least one progress + one final", len(frames))
	}
	final := frames[len(frames)-1]
	if !final.Final || final.Cache != "miss" || len(final.Result) == 0 {
		t.Fatalf("bad final frame: %+v", final)
	}
	for i, f := range frames[:len(frames)-1] {
		if f.Final || f.Progress == nil {
			t.Fatalf("frame %d is not a progress frame: %+v", i, f)
		}
		if f.Progress.Budget != 600 {
			t.Errorf("frame %d budget %d, want 600", i, f.Progress.Budget)
		}
	}

	// The same request without progress serves the identical result body
	// — from cache, since the streamed run populated it.
	plainReq := req
	plainReq.Progress = false
	resp := postJSON(t, ts.URL+"/estimate", plainReq)
	if got := resp.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Errorf("plain request after streamed run: cache %q, want hit", got)
	}
	body := bytes.TrimSpace(readAll(t, resp))
	if !bytes.Equal(body, bytes.TrimSpace(final.Result)) {
		t.Error("final frame result differs from the plain response body")
	}

	// A second streamed request hits the cache: single final frame.
	frames2, _ := streamFrames(t, ts.URL, req)
	if len(frames2) != 1 || !frames2[0].Final || frames2[0].Cache != "hit" {
		t.Fatalf("cached stream frames: %+v", frames2)
	}
	if !bytes.Equal(bytes.TrimSpace(frames2[0].Result), bytes.TrimSpace(final.Result)) {
		t.Error("cached final frame differs from the first run's")
	}
}

// Adaptive requests cache by their canonical request (the stopping
// rule), not by realized trial count, and distinct targets get distinct
// entries.
func TestAdaptiveEstimateCacheable(t *testing.T) {
	_, ts := newTestService(t)
	seed := uint64(11)
	req := EstimateRequest{
		HorizonYears:   50,
		Seed:           &seed,
		TargetRelWidth: 0.2,
		MaxTrials:      20000,
	}
	first := postJSON(t, ts.URL+"/estimate", req)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("adaptive request: %s: %s", first.Status, readAll(t, first))
	}
	if got := first.Header.Get("X-Ltsimd-Cache"); got != "miss" {
		t.Fatalf("first adaptive request: cache %q", got)
	}
	firstKey := first.Header.Get("X-Ltsimd-Key")
	firstBody := readAll(t, first)

	second := postJSON(t, ts.URL+"/estimate", req)
	if got := second.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Errorf("repeat adaptive request: cache %q, want hit", got)
	}
	if !bytes.Equal(firstBody, readAll(t, second)) {
		t.Error("repeat adaptive response not bit-identical")
	}

	var est struct {
		Trials int `json:"trials"`
	}
	if err := json.Unmarshal(firstBody, &est); err != nil {
		t.Fatal(err)
	}
	if est.Trials == 0 || est.Trials >= 20000 {
		t.Errorf("adaptive run trials = %d, want early stop in (0, 20000)", est.Trials)
	}

	tighter := req
	tighter.TargetRelWidth = 0.1
	third := postJSON(t, ts.URL+"/estimate", tighter)
	if key := third.Header.Get("X-Ltsimd-Key"); key == firstKey {
		t.Error("different stopping targets share a cache key")
	}
	readAll(t, third)
}

// Daemon-level policy: DefaultTargetRel turns budget-less requests
// adaptive; MaxTrialsCap clamps budgets pre-fingerprint.
func TestServicePolicyDefaults(t *testing.T) {
	svc := New(Config{
		CacheSize: 64, Shards: 1, QueueDepth: 8, JobTimeout: time.Minute,
		SimParallel: 2, DefaultTargetRel: 0.2, MaxTrialsCap: 3000,
	})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})

	seed := uint64(5)
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{HorizonYears: 50, Seed: &seed})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policy-default request: %s: %s", resp.Status, readAll(t, resp))
	}
	var est struct {
		Trials int `json:"trials"`
	}
	if err := json.Unmarshal(readAll(t, resp), &est); err != nil {
		t.Fatal(err)
	}
	// The adaptive default stops early; the cap bounds it even if not.
	if est.Trials > 3000 {
		t.Errorf("policy run trials = %d, want <= cap 3000", est.Trials)
	}

	// An explicit fixed budget above the cap is clamped, and the clamped
	// request shares its cache entry with the explicitly-clamped form.
	big := postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 50000, HorizonYears: 50, Seed: &seed})
	if big.StatusCode != http.StatusOK {
		t.Fatalf("capped request: %s: %s", big.Status, readAll(t, big))
	}
	bigKey := big.Header.Get("X-Ltsimd-Key")
	readAll(t, big)
	capped := postJSON(t, ts.URL+"/estimate", EstimateRequest{Trials: 3000, HorizonYears: 50, Seed: &seed})
	if got := capped.Header.Get("X-Ltsimd-Cache"); got != "hit" {
		t.Errorf("explicitly-capped request: cache %q, want hit (key %s vs %s)",
			got, capped.Header.Get("X-Ltsimd-Key"), bigKey)
	}
	readAll(t, capped)
}

// Concurrent identical progress requests must coalesce onto one
// simulation: every response carries the same bytes, and the run
// executes once (one cache miss).
func TestProgressSingleFlight(t *testing.T) {
	svc, ts := newTestService(t)
	seed := uint64(21)
	req := EstimateRequest{Trials: 5000, HorizonYears: 50, Seed: &seed, Progress: true}

	const clients = 4
	results := make(chan []byte, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp := postJSON(t, ts.URL+"/estimate", req)
			defer resp.Body.Close()
			var final EstimateFrame
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				var f EstimateFrame
				if json.Unmarshal(sc.Bytes(), &f) == nil && f.Final {
					final = f
				}
			}
			results <- final.Result
		}()
	}
	var first []byte
	for i := 0; i < clients; i++ {
		got := <-results
		if len(got) == 0 {
			t.Fatal("a coalesced client got no final frame")
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			t.Error("coalesced clients got different results")
		}
	}
	// Every duplicate resolves through the cache — either by coalescing
	// onto the in-flight owner (post-wait hit) or by arriving after it
	// finished (initial hit). Independent recomputation records none.
	if hits := svc.cache.Stats().Hits; hits < clients-1 {
		t.Errorf("cache recorded %d hits for %d coalesced clients; simulations were duplicated", hits, clients)
	}
}

// Progress with an invalid configuration still fails with a clean 400
// before any streaming starts.
func TestEstimateProgressBadRequest(t *testing.T) {
	_, ts := newTestService(t)
	resp := postJSON(t, ts.URL+"/estimate", EstimateRequest{Alpha: -2, Progress: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad progress request: %s, want 400", resp.Status)
	}
}
