// Package service is the long-running simulation service behind cmd/ltsimd:
// the paper's what-if reliability estimator turned into a daemon that
// archives (LOCKSS-style long-term stores, capacity planners, dashboards)
// can query continuously instead of shelling out to one-shot CLI runs.
//
// Three mechanisms make repeat traffic cheap and safe:
//
//   - Canonical request hashing. Every estimate request is built into a
//     sim.Config + sim.Options pair and fingerprinted with sim.Fingerprint,
//     which canonicalizes over the *resolved* per-replica expansion: a
//     scalar-shorthand fleet and its explicit Specs form, or two requests
//     differing only in worker count, hash identically.
//
//   - A content-addressed result cache. Responses are cached as their
//     encoded JSON bytes keyed by fingerprint, bounded by an LRU, so a
//     repeat query replays the exact bytes of the first answer —
//     bit-identical, which the simulator's determinism guarantees is also
//     what a recomputation would produce.
//
//   - A sharded worker-pool scheduler. Cache misses become jobs hashed
//     onto shards, each with its own bounded queue and worker; duplicate
//     in-flight keys coalesce (single-flight) on their shard, jobs run
//     under per-job contexts with a timeout, and shutdown drains queued
//     work before cancelling anything.
//
// HTTP surface (all JSON):
//
//	POST /estimate        one estimate; X-Ltsimd-Cache: hit|miss
//	POST /sweep           many estimates, streamed back as NDJSON lines
//	                      in completion order, trailing summary line
//	GET  /experiments     the registered experiment index
//	POST /experiments/run run one experiment by id (?id=E2&quick=1&seed=1)
//	GET  /healthz         liveness
//	GET  /stats           cache hit rate, queue depth, in-flight jobs
package service

import (
	"runtime"
	"time"
)

// Config sizes the service.
type Config struct {
	// CacheSize bounds the result cache in entries; 0 means 1024.
	CacheSize int
	// Shards is the number of scheduler shards (each with its own queue
	// and worker); 0 means min(4, GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's job queue; 0 means 64.
	QueueDepth int
	// JobTimeout bounds one simulation job's runtime; 0 means 5 minutes.
	JobTimeout time.Duration
	// SimParallel is the per-job simulator worker count; 0 divides
	// GOMAXPROCS evenly across shards so concurrent jobs do not
	// oversubscribe the machine.
	SimParallel int
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Shards <= 0 {
		c.Shards = min(4, runtime.GOMAXPROCS(0))
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.SimParallel <= 0 {
		c.SimParallel = max(1, runtime.GOMAXPROCS(0)/c.Shards)
	}
	return c
}
