// Package service is the long-running simulation service behind cmd/ltsimd:
// the paper's what-if reliability estimator turned into a daemon that
// archives (LOCKSS-style long-term stores, capacity planners, dashboards)
// can query continuously instead of shelling out to one-shot CLI runs.
//
// Three mechanisms make repeat traffic cheap and safe:
//
//   - Canonical request hashing. Every estimate request is built into a
//     sim.Config + sim.Options pair and fingerprinted with sim.Fingerprint,
//     which canonicalizes over the *resolved* per-replica expansion: a
//     scalar-shorthand fleet and its explicit Specs form, or two requests
//     differing only in worker count, hash identically.
//
//   - A content-addressed result cache, optionally two-tiered. Responses
//     are cached as their encoded JSON bytes keyed by fingerprint in a
//     bounded in-memory LRU; with Config.Store set, a persistent
//     content-addressed store (internal/store) sits under it —
//     read-through (a memory miss probes the store, a store hit promotes
//     back into memory and serves with X-Ltsimd-Cache: disk) and
//     write-through (every computed result lands in both), so a repeat
//     query replays the exact bytes of the first answer even across
//     daemon restarts — bit-identical, which the simulator's determinism
//     guarantees is also what a recomputation would produce.
//
//   - A sharded worker-pool scheduler. Cache misses become jobs hashed
//     onto shards, each with its own bounded queue and worker; duplicate
//     in-flight keys coalesce (single-flight) on their shard, jobs run
//     under per-job contexts with a timeout, and shutdown drains queued
//     work before cancelling anything.
//
// HTTP surface (all JSON):
//
//	POST /estimate        one estimate; X-Ltsimd-Cache: hit|miss. With
//	                      "progress": true, an NDJSON stream of progress
//	                      frames at batch boundaries followed by a final
//	                      frame carrying the canonical result bytes
//	                      (progress mode runs on the request goroutine,
//	                      bypassing the shard queue; the result still
//	                      populates the shared cache)
//	POST /sweep           many estimates, streamed back as NDJSON lines
//	                      in completion order, trailing summary line.
//	                      Takes {"requests": [...]} or a declarative
//	                      {"scenario": {...}} document (internal/scenario)
//	                      expanded server-side; identical fingerprints
//	                      within one batch are deduplicated (one
//	                      scheduled run per unique key, duplicates
//	                      replay its bytes, "deduped" in the summary)
//	POST /scenarios/expand dry-run a scenario document: NDJSON of
//	                      expanded points with policy-effective requests
//	                      and the fingerprints a sweep would cache under
//	GET  /experiments     the registered experiment index
//	POST /experiments/run run one experiment by id (?id=E2&quick=1&seed=1)
//	GET  /healthz         liveness
//	GET  /stats           cache hit rate, queue depth, in-flight jobs
//
// Estimate requests may be adaptive ("target_rel_width", "max_trials"):
// the simulator stops at the first batch boundary where the target
// precision is met. Adaptive runs are deterministic (batch-boundary
// stopping, parallelism-independent), so they cache exactly like fixed
// runs — keyed by the canonical request including the stopping rule, not
// by the realized trial count.
package service

import (
	"log/slog"
	"runtime"
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// CacheSize bounds the result cache in entries; 0 means 1024.
	CacheSize int
	// Shards is the number of scheduler shards (each with its own queue
	// and worker); 0 means min(4, GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's job queue; 0 means 64.
	QueueDepth int
	// JobTimeout bounds one simulation job's runtime; 0 means 5 minutes.
	JobTimeout time.Duration
	// SimParallel is the per-job simulator worker count; 0 divides
	// GOMAXPROCS evenly across shards so concurrent jobs do not
	// oversubscribe the machine.
	SimParallel int
	// MaxTrialsCap, when positive, clamps every request's trial budget
	// (fixed Trials and adaptive MaxTrials alike) before the request is
	// fingerprinted — the daemon's guard against abusive budgets. The
	// cached entry is the clamped request's.
	MaxTrialsCap int
	// DefaultTargetRel, when positive, turns requests that specify
	// neither a trial count nor their own target into adaptive runs at
	// this relative half-width — "give me the answer to 5%" as the
	// server-wide default contract. Applied before fingerprinting.
	DefaultTargetRel float64
	// DefaultBias, when non-zero, applies importance-sampled failure
	// biasing to horizon-censored requests that do not choose a bias
	// mode themselves: -1 lets the analytic model pick the boost factor
	// per configuration, >= 1 fixes an explicit β. Requests without a
	// horizon are left unbiased (biasing requires one). Applied before
	// fingerprinting, so the cached entry is the biased request's.
	DefaultBias float64
	// Logger receives one structured record per request (the request ID
	// and span timeline) plus lifecycle events. Nil discards — tests and
	// library embedders stay quiet by default; the daemon passes a JSON
	// handler so the request log is NDJSON.
	Logger *slog.Logger
	// Metrics is the registry GET /metrics exposes; nil creates a fresh
	// one. Pass a shared registry to merge the service's families with
	// an embedder's own.
	Metrics *telemetry.Registry
	// Store, when non-nil, is the persistent result tier layered under
	// the in-memory LRU: reads fall through memory to the store (a store
	// hit promotes back into memory and serves with X-Ltsimd-Cache:
	// disk), writes go through to both, and a daemon restarted over the
	// same store replays bit-identical bytes without re-simulating. The
	// service closes the store on Shutdown. cmd/ltsimd opens a
	// store.DiskStore here from -cache-dir.
	Store store.Store
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.Shards <= 0 {
		c.Shards = min(4, runtime.GOMAXPROCS(0))
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.SimParallel <= 0 {
		c.SimParallel = max(1, runtime.GOMAXPROCS(0)/c.Shards)
	}
	return c
}
