package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// File format: a fixed 8-byte header followed by the payload bytes.
//
//	bytes 0..3  magic "LTS1"
//	bytes 4..7  little-endian IEEE CRC32 of the payload
//
// Anything that fails these checks — short file, wrong magic, CRC
// mismatch — is treated as absent and quarantined, never served.
const (
	diskMagic  = "LTS1"
	diskHeader = 8
)

// corruptDir is the quarantine subdirectory under the store root.
const corruptDir = "corrupt"

// DiskStore is the shipped Store backend: one file per key in a
// sharded content-addressed directory. Keys that are already canonical
// fingerprints (64 hex chars) name their file directly; any other key is
// content-addressed through SHA-256 first, so arbitrary cache keys (the
// experiment-result keys, say) store safely too.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu         sync.Mutex
	items      map[string]*list.Element // pathKey -> element
	order      *list.List               // front = most recently used
	totalBytes int64
	corruptSeq uint64
	closed     bool

	stats Stats

	// metrics mirrors the counters into the telemetry registry when
	// Instrument has been called; nil otherwise.
	metrics *diskMetrics
}

type diskEntry struct {
	pathKey string
	size    int64
}

type diskMetrics struct {
	hits, misses, writes, corrupt, gcEvictions, errors *telemetry.Counter
}

// OpenDisk opens (creating if needed) a disk store rooted at dir,
// bounded to maxBytes of payload files (0 = unbounded). It scans the
// directory so a warm dir from a previous process serves immediately,
// removes leftover temp files from interrupted writes, and runs GC if
// the scan comes up over budget. The LRU order across restarts is the
// files' mtimes — reads refresh them, so recency survives the process.
func OpenDisk(dir string, maxBytes int64) (*DiskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: cache dir must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, corruptDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &DiskStore{
		dir:      dir,
		maxBytes: maxBytes,
		items:    make(map[string]*list.Element),
		order:    list.New(),
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.gcLocked()
	s.mu.Unlock()
	return s, nil
}

// scan walks the shard directories and rebuilds the index, oldest mtime
// first so the in-memory LRU matches the on-disk one.
func (s *DiskStore) scan() error {
	type found struct {
		pathKey string
		size    int64
		mtime   time.Time
	}
	var all []found
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == corruptDir {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			if f.IsDir() {
				continue
			}
			path := filepath.Join(s.dir, sh.Name(), f.Name())
			// Interrupted writes leave temp files; they were never
			// visible as entries, so sweep them on startup.
			if strings.HasPrefix(f.Name(), tmpPrefix) {
				os.Remove(path)
				continue
			}
			if !isPathKey(f.Name()) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			all = append(all, found{pathKey: f.Name(), size: info.Size(), mtime: info.ModTime()})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		// Ascending mtime + PushFront leaves the newest at the front.
		s.items[f.pathKey] = s.order.PushFront(&diskEntry{pathKey: f.pathKey, size: f.size})
		s.totalBytes += f.size
	}
	return nil
}

const tmpPrefix = ".tmp-"

// isPathKey reports whether name is a 64-char lowercase-hex filename —
// the only shape Put ever writes.
func isPathKey(name string) bool {
	if len(name) != 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// pathKeyFor maps an arbitrary store key onto its filename: canonical
// fingerprints (already 64-hex) pass through, anything else is hashed.
func pathKeyFor(key string) string {
	if isPathKey(key) {
		return key
	}
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Path returns the file an entry for key lives at (whether or not it
// exists) — exported so tests and operational tooling can inspect or
// deliberately corrupt specific entries.
func (s *DiskStore) Path(key string) string {
	pk := pathKeyFor(key)
	return filepath.Join(s.dir, pk[:2], pk)
}

// CorruptDir returns the quarantine directory.
func (s *DiskStore) CorruptDir() string { return filepath.Join(s.dir, corruptDir) }

// Instrument registers the store metric families and mirrors the
// internal counters into them. Call once, before traffic.
func (s *DiskStore) Instrument(reg *telemetry.Registry) {
	s.metrics = &diskMetrics{
		hits:        reg.Counter("ltsimd_store_hits_total", "Disk-store lookups that replayed stored bytes."),
		misses:      reg.Counter("ltsimd_store_misses_total", "Disk-store lookups that found nothing."),
		writes:      reg.Counter("ltsimd_store_writes_total", "Entries written to the disk store."),
		corrupt:     reg.Counter("ltsimd_store_corrupt_total", "Entries quarantined on read: truncated, garbage, or CRC-mismatched files served as misses."),
		gcEvictions: reg.Counter("ltsimd_store_gc_evictions_total", "Entries deleted by the size-bounded GC."),
		errors:      reg.Counter("ltsimd_store_errors_total", "I/O failures that degraded a store read or write."),
	}
	reg.GaugeFunc("ltsimd_store_entries", "Disk-store size in entries.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.order.Len())
	})
	reg.GaugeFunc("ltsimd_store_bytes", "Disk-store size in file bytes.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.totalBytes)
	})
	reg.GaugeFunc("ltsimd_store_capacity_bytes", "Disk-store GC bound in bytes (0 = unbounded).", func() float64 {
		return float64(s.maxBytes)
	})
}

// Get returns the stored bytes for key. A file that fails validation is
// quarantined and reported as a miss; the caller recomputes, and
// determinism makes the recomputation bit-identical to what was lost.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	pk := pathKeyFor(key)
	path := filepath.Join(s.dir, pk[:2], pk)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	el, ok := s.items[pk]
	if !ok {
		s.miss()
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		// The index said present but the file is gone (external
		// interference); treat as a miss and drop the entry.
		s.removeLocked(el)
		s.stats.Errors++
		if s.metrics != nil {
			s.metrics.errors.Inc()
		}
		s.miss()
		return nil, false
	}
	payload, ok := decodeEntry(data)
	if !ok {
		s.quarantineLocked(el, path, pk)
		s.miss()
		return nil, false
	}
	s.order.MoveToFront(el)
	// Refresh the mtime so the on-disk LRU order a future startup scan
	// rebuilds matches this process's; best-effort.
	now := time.Now()
	os.Chtimes(path, now, now)
	s.stats.Hits++
	if s.metrics != nil {
		s.metrics.hits.Inc()
	}
	return payload, true
}

// miss counts a miss; callers hold s.mu.
func (s *DiskStore) miss() {
	s.stats.Misses++
	if s.metrics != nil {
		s.metrics.misses.Inc()
	}
}

// decodeEntry validates the header and CRC, returning the payload.
func decodeEntry(data []byte) ([]byte, bool) {
	if len(data) < diskHeader || string(data[:4]) != diskMagic {
		return nil, false
	}
	payload := data[diskHeader:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, false
	}
	return payload, true
}

// encodeEntry frames a payload for disk.
func encodeEntry(val []byte) []byte {
	out := make([]byte, diskHeader+len(val))
	copy(out, diskMagic)
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(val))
	copy(out[diskHeader:], val)
	return out
}

// quarantineLocked moves a failed entry into the corrupt directory
// (numbered, so repeat corruption of one key never collides) and drops
// it from the index. Callers hold s.mu.
func (s *DiskStore) quarantineLocked(el *list.Element, path, pk string) {
	s.corruptSeq++
	dest := filepath.Join(s.dir, corruptDir, fmt.Sprintf("%s.%d", pk, s.corruptSeq))
	if err := os.Rename(path, dest); err != nil {
		os.Remove(path)
	}
	s.removeLocked(el)
	s.stats.Corrupt++
	if s.metrics != nil {
		s.metrics.corrupt.Inc()
	}
}

// removeLocked drops an entry from the index. Callers hold s.mu.
func (s *DiskStore) removeLocked(el *list.Element) {
	e := el.Value.(*diskEntry)
	s.order.Remove(el)
	delete(s.items, e.pathKey)
	s.totalBytes -= e.size
}

// Put stores val under key with an atomic temp+rename write. Failures
// degrade (the entry is skipped and counted) rather than erroring: the
// memory tier above still holds the bytes, so serving is unaffected.
func (s *DiskStore) Put(key string, val []byte) {
	pk := pathKeyFor(key)
	shard := filepath.Join(s.dir, pk[:2])
	framed := encodeEntry(val)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if err := writeAtomic(shard, pk, framed); err != nil {
		s.stats.Errors++
		if s.metrics != nil {
			s.metrics.errors.Inc()
		}
		return
	}
	size := int64(len(framed))
	if el, ok := s.items[pk]; ok {
		e := el.Value.(*diskEntry)
		s.totalBytes += size - e.size
		e.size = size
		s.order.MoveToFront(el)
	} else {
		s.items[pk] = s.order.PushFront(&diskEntry{pathKey: pk, size: size})
		s.totalBytes += size
	}
	s.stats.Writes++
	if s.metrics != nil {
		s.metrics.writes.Inc()
	}
	s.gcLocked()
}

// writeAtomic writes data to shard/name via a synced temp file and
// rename, so a crash mid-write can never leave a half-visible entry —
// readers see the old bytes or the new bytes, nothing between.
func writeAtomic(shard, name string, data []byte) error {
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(shard, tmpPrefix+name+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(shard, name))
}

// gcLocked deletes least-recently-used entries until the footprint fits
// the bound. A lone entry is never evicted, so one result larger than
// the whole budget still caches (the bound is advisory for that case).
// Callers hold s.mu.
func (s *DiskStore) gcLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.totalBytes > s.maxBytes && s.order.Len() > 1 {
		el := s.order.Back()
		e := el.Value.(*diskEntry)
		os.Remove(filepath.Join(s.dir, e.pathKey[:2], e.pathKey))
		s.removeLocked(el)
		s.stats.GCEvictions++
		if s.metrics != nil {
			s.metrics.gcEvictions.Inc()
		}
	}
}

// Len returns the current entry count.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Stats snapshots the store counters.
func (s *DiskStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.order.Len()
	st.Bytes = s.totalBytes
	st.CapacityBytes = s.maxBytes
	return st
}

// Close marks the store closed; subsequent Gets miss and Puts are
// dropped. The files stay — that is the point.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
