// Package store is the persistent result-store layer under the ltsimd
// service's in-memory LRU: a pluggable, content-addressed byte store
// keyed by the same canonical fingerprints the cache uses, so a daemon
// restarted on a warm directory replays bit-identical answers instead of
// re-simulating them.
//
// The one shipped backend, DiskStore, keeps one file per key in a
// sharded directory tree with atomic temp+rename writes, CRC-checked
// reads, a startup scan, and size-bounded garbage collection ordered by
// LRU mtime. Corrupt entries (truncated, garbage, CRC mismatch) are
// never served: they read as a miss, are quarantined under
// <dir>/corrupt/, and are counted — the layer above re-simulates, which
// the simulator's determinism guarantees reproduces the original bytes.
package store

// Store is a persistent result store. Implementations must be safe for
// concurrent use. Get returns the stored bytes (callers must not mutate
// them) and whether the key was present; Put stores val under key,
// overwriting any previous value; Close releases resources and must be
// called before the directory is handed to another Store instance.
type Store interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte)
	Len() int
	Stats() Stats
	Close() error
}

// Stats is a point-in-time snapshot of a store's counters, shaped for
// the service's /stats payload.
type Stats struct {
	// Entries and Bytes describe the current footprint; CapacityBytes is
	// the GC bound (0 = unbounded).
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	// Hits and Misses count Get outcomes; Writes counts successful Puts.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Writes uint64 `json:"writes"`
	// Corrupt counts entries quarantined on read (truncated, garbage, or
	// CRC mismatch — each one served as a miss, never as bad bytes).
	Corrupt uint64 `json:"corrupt"`
	// GCEvictions counts entries deleted by the size-bounded GC.
	GCEvictions uint64 `json:"gc_evictions"`
	// Errors counts I/O failures that degraded a Put or Get (the store
	// stays available: a failed write is skipped, a failed read misses).
	Errors uint64 `json:"errors"`
}
