package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fpKey fabricates a canonical-fingerprint-shaped key (64 hex chars).
func fpKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func openTestStore(t *testing.T, dir string, maxBytes int64) *DiskStore {
	t.Helper()
	s, err := OpenDisk(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestDiskRoundTrip(t *testing.T) {
	s := openTestStore(t, t.TempDir(), 0)
	key := fpKey("a")
	val := []byte(`{"mttdl_hours":123}`)
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(key, val)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, val)
	}
	// Overwrite replaces in place.
	val2 := []byte(`{"mttdl_hours":456}`)
	s.Put(key, val2)
	if got, _ := s.Get(key); !bytes.Equal(got, val2) {
		t.Fatalf("after overwrite Get = %q, want %q", got, val2)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Writes != 2 {
		t.Fatalf("stats = %+v, want 2 hits, 1 miss, 2 writes", st)
	}
}

// TestDiskNonFingerprintKeys covers keys that are not 64-hex canonical
// fingerprints (the experiment-result keys): they content-address
// through SHA-256 and round-trip like any other.
func TestDiskNonFingerprintKeys(t *testing.T) {
	s := openTestStore(t, t.TempDir(), 0)
	key := "exp/v1|E2|seed=1|quick=true"
	val := []byte("experiment tables")
	s.Put(key, val)
	if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, val)
	}
	if base := filepath.Base(s.Path(key)); !isPathKey(base) {
		t.Fatalf("Path(%q) basename %q is not a hashed path key", key, base)
	}
}

// TestDiskRestartScan is the durability core: a new DiskStore over the
// same directory serves the previous instance's bytes verbatim.
func TestDiskRestartScan(t *testing.T) {
	dir := t.TempDir()
	vals := map[string][]byte{}
	s1 := openTestStore(t, dir, 0)
	for i := 0; i < 20; i++ {
		k := fpKey(fmt.Sprint("restart-", i))
		v := []byte(strings.Repeat(fmt.Sprint("payload-", i, ";"), i+1))
		vals[k] = v
		s1.Put(k, v)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, 0)
	if s2.Len() != len(vals) {
		t.Fatalf("restart scan found %d entries, want %d", s2.Len(), len(vals))
	}
	for k, v := range vals {
		got, ok := s2.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("after restart Get(%s) = %v, want stored bytes", k, ok)
		}
	}
}

// TestDiskRestartSweepsTempFiles: leftover temp files from interrupted
// writes are removed by the startup scan and never indexed.
func TestDiskRestartSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s1 := openTestStore(t, dir, 0)
	key := fpKey("tmp-sweep")
	s1.Put(key, []byte("x"))
	s1.Close()
	shard := filepath.Dir(s1.Path(key))
	tmp := filepath.Join(shard, tmpPrefix+"leftover-123")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTestStore(t, dir, 0)
	if s2.Len() != 1 {
		t.Fatalf("scan indexed %d entries, want 1", s2.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file survived the startup sweep: %v", err)
	}
}

// TestDiskGCBySize: the store deletes least-recently-used entries (by
// access order, persisted as mtime) once over budget.
func TestDiskGCBySize(t *testing.T) {
	dir := t.TempDir()
	// Each entry is 100 payload bytes + 8 header = 108 file bytes.
	payload := bytes.Repeat([]byte("x"), 100)
	budget := int64(5 * 108)
	s := openTestStore(t, dir, budget)
	var keys []string
	for i := 0; i < 5; i++ {
		k := fpKey(fmt.Sprint("gc-", i))
		keys = append(keys, k)
		s.Put(k, payload)
	}
	// Touch the oldest so it is no longer the LRU victim.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("warm entry missing before GC")
	}
	// One more entry pushes over budget; keys[1] is now the LRU.
	k5 := fpKey("gc-5")
	s.Put(k5, payload)
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU entry survived GC")
	}
	for _, k := range []string{keys[0], keys[2], keys[3], keys[4], k5} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("entry %s was evicted but is not the LRU", k)
		}
	}
	st := s.Stats()
	if st.GCEvictions != 1 {
		t.Fatalf("GCEvictions = %d, want 1", st.GCEvictions)
	}
	if st.Bytes > budget {
		t.Fatalf("footprint %d exceeds budget %d after GC", st.Bytes, budget)
	}
}

// TestDiskGCOnStartupScan: opening an over-budget directory GCs down to
// the bound, deleting the oldest-mtime entries first.
func TestDiskGCOnStartupScan(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 100)
	s1 := openTestStore(t, dir, 0) // unbounded writer
	old := fpKey("scan-old")
	s1.Put(old, payload)
	// Backdate the first entry so the scan sees a strict mtime order
	// regardless of filesystem timestamp granularity.
	oldPath := s1.Path(old)
	past := time.Now().Add(-time.Hour)
	os.Chtimes(oldPath, past, past)
	newer := fpKey("scan-new")
	s1.Put(newer, payload)
	s1.Close()

	s2 := openTestStore(t, dir, 108) // room for one entry
	if _, ok := s2.Get(old); ok {
		t.Fatal("oldest entry survived startup GC")
	}
	if _, ok := s2.Get(newer); !ok {
		t.Fatal("newest entry did not survive startup GC")
	}
}

// TestDiskCorruptQuarantine is the satellite test: truncated, garbage,
// and CRC-flipped files all read as misses, land in <dir>/corrupt/, and
// count in the corrupt counter (mirrored to ltsimd_store_corrupt_total).
func TestDiskCorruptQuarantine(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 0)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)

	corruptions := []struct {
		name    string
		corrupt func(path string, t *testing.T)
	}{
		{"garbage", func(path string, t *testing.T) {
			if err := os.WriteFile(path, []byte("not a store file at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(path string, t *testing.T) {
			if err := os.Truncate(path, 5); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for i, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			key := fpKey("corrupt-" + c.name)
			val := []byte(`{"answer":` + fmt.Sprint(i) + `}`)
			s.Put(key, val)
			c.corrupt(s.Path(key), t)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if _, err := os.Stat(s.Path(key)); !os.IsNotExist(err) {
				t.Fatalf("corrupt file still in place: %v", err)
			}
			// Re-putting the recomputed bytes round-trips again.
			s.Put(key, val)
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("re-put after quarantine: Get = %q, %v", got, ok)
			}
		})
	}
	st := s.Stats()
	if st.Corrupt != uint64(len(corruptions)) {
		t.Fatalf("Corrupt = %d, want %d", st.Corrupt, len(corruptions))
	}
	quarantined, err := os.ReadDir(s.CorruptDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined) != len(corruptions) {
		t.Fatalf("quarantine holds %d files, want %d", len(quarantined), len(corruptions))
	}
	// The metric family the dashboards watch must agree.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("ltsimd_store_corrupt_total %d", len(corruptions))
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
}

// TestDiskConcurrentAccess races readers, writers, and corrupters.
func TestDiskConcurrentAccess(t *testing.T) {
	s := openTestStore(t, t.TempDir(), 40*1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fpKey(fmt.Sprint("conc-", (g+i)%20))
				if i%3 == 0 {
					s.Put(key, bytes.Repeat([]byte{byte(i)}, 256))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestDiskClosedStoreDegrades: a closed store misses and drops writes
// without touching the directory.
func TestDiskClosedStoreDegrades(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, 0)
	key := fpKey("closed")
	s.Put(key, []byte("v"))
	s.Close()
	if _, ok := s.Get(key); ok {
		t.Fatal("closed store served a hit")
	}
	s.Put(fpKey("closed-2"), []byte("w"))
	s2 := openTestStore(t, dir, 0)
	if s2.Len() != 1 {
		t.Fatalf("closed-store Put reached disk: %d entries", s2.Len())
	}
}
