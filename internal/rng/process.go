package rng

import (
	"fmt"
	"math"
)

// PoissonProcess generates event times of a homogeneous Poisson process
// with the given rate (events per hour). It is the arrival model for user
// accesses to an archive and for random (non-periodic) audit schedules.
type PoissonProcess struct {
	Rate float64
	src  *Source
	now  float64
}

// NewPoissonProcess returns a process with the given rate drawing from src.
func NewPoissonProcess(rate float64, src *Source) (*PoissonProcess, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("%w: poisson rate %v must be positive and finite", ErrInvalidParam, rate)
	}
	return &PoissonProcess{Rate: rate, src: src}, nil
}

// Next returns the time of the next event, strictly after the previous one.
func (p *PoissonProcess) Next() float64 {
	p.now += -math.Log(p.src.Float64Open()) / p.Rate
	return p.now
}

// Now returns the time of the most recently generated event (0 before the
// first call to Next).
func (p *PoissonProcess) Now() float64 { return p.now }

// Reset rewinds the process clock to t without changing the stream.
func (p *PoissonProcess) Reset(t float64) { p.now = t }

// PoissonCount draws the number of events of a rate-λ Poisson process in an
// interval of the given length. Knuth's product method suffices for the
// small means used here (audits per interval, handling errors per mount);
// for mean > 30 it falls back to a normal approximation to avoid O(mean)
// cost and underflow.
func (s *Source) PoissonCount(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		n := math.Floor(s.Normal(mean, math.Sqrt(mean)) + 0.5)
		if n < 0 {
			return 0
		}
		return int(n)
	}
	limit := math.Exp(-mean)
	count := 0
	for prod := s.Float64(); prod > limit; prod *= s.Float64() {
		count++
	}
	return count
}

// Binomial draws the number of successes in n independent trials of
// probability p. Used for bit-error counts over a scrub pass when the
// expected count is small. Direct simulation is O(n); for the large n
// used in bit-error models the Poisson limit is taken automatically when
// n*p is small and p tiny.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// Poisson limit: p below 1e-6 with modest mean keeps the absolute
	// error negligible while avoiding O(n) work for n ~ 1e12 bit reads.
	if mean := float64(n) * p; p < 1e-6 {
		c := s.PoissonCount(mean)
		if c > n {
			c = n
		}
		return c
	}
	count := 0
	for i := 0; i < n; i++ {
		if s.Float64() < p {
			count++
		}
	}
	return count
}
