package rng

import (
	"errors"
	"fmt"
	"math"
)

// Sampler draws values from a probability distribution. Implementations
// must be deterministic given the Source state and must not retain the
// Source between calls.
type Sampler interface {
	// Sample draws one value. Durations and times are in hours throughout
	// this repository; Samplers themselves are unit-agnostic.
	Sample(src *Source) float64

	// Mean returns the distribution's expected value, used by analytic
	// cross-checks. NaN if the mean does not exist.
	Mean() float64
}

// ErrInvalidParam reports a distribution constructed with parameters
// outside its domain.
var ErrInvalidParam = errors.New("rng: invalid distribution parameter")

// Exponential is the memoryless distribution with the given mean, the
// paper's §5.2 baseline assumption for both visible and latent fault
// inter-arrival times (eq 1).
type Exponential struct {
	MeanValue float64
}

// NewExponential returns an Exponential with the given mean.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Exponential{}, fmt.Errorf("%w: exponential mean %v must be positive and finite", ErrInvalidParam, mean)
	}
	return Exponential{MeanValue: mean}, nil
}

// Sample draws by inverse transform: -mean * ln(U).
func (e Exponential) Sample(src *Source) float64 {
	return -e.MeanValue * math.Log(src.Float64Open())
}

// Mean returns the distribution mean.
func (e Exponential) Mean() float64 { return e.MeanValue }

// Rate returns 1/mean, the hazard rate.
func (e Exponential) Rate() float64 { return 1 / e.MeanValue }

// Weibull models age-dependent hazard. Shape < 1 gives infant mortality,
// shape == 1 reduces to Exponential, shape > 1 gives wear-out; combining
// phases yields the "bathtub" lifetime curve the paper cites for disks in
// §6.5 (Gibson's dissertation).
type Weibull struct {
	Shape float64 // k
	Scale float64 // λ
}

// NewWeibull returns a Weibull with shape k and scale lambda.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return Weibull{}, fmt.Errorf("%w: weibull shape %v and scale %v must be positive", ErrInvalidParam, shape, scale)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Sample draws by inverse transform: λ * (-ln U)^(1/k).
func (w Weibull) Sample(src *Source) float64 {
	return w.Scale * math.Pow(-math.Log(src.Float64Open()), 1/w.Shape)
}

// Mean returns λ·Γ(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.Scale * math.Gamma(1+1/w.Shape)
}

// WeibullFromMean returns the Weibull with the given shape whose mean is
// mean, convenient when substituting an age-dependent process for an
// exponential one with a matched MTTF.
func WeibullFromMean(shape, mean float64) (Weibull, error) {
	if mean <= 0 {
		return Weibull{}, fmt.Errorf("%w: weibull mean %v must be positive", ErrInvalidParam, mean)
	}
	scale := mean / math.Gamma(1+1/shape)
	return NewWeibull(shape, scale)
}

// LogNormal models multiplicative noise, used for operator repair delays
// whose distribution is heavy-tailed.
type LogNormal struct {
	Mu    float64 // mean of ln X
	Sigma float64 // stddev of ln X
}

// NewLogNormal returns a LogNormal with the given log-space parameters.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if sigma <= 0 || math.IsNaN(mu) || math.IsNaN(sigma) {
		return LogNormal{}, fmt.Errorf("%w: lognormal sigma %v must be positive", ErrInvalidParam, sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalFromMeanCV returns the LogNormal with the given mean and
// coefficient of variation (stddev/mean), the natural parameterization for
// "repairs take about a day, give or take 2x".
func LogNormalFromMeanCV(mean, cv float64) (LogNormal, error) {
	if mean <= 0 || cv <= 0 {
		return LogNormal{}, fmt.Errorf("%w: lognormal mean %v and cv %v must be positive", ErrInvalidParam, mean, cv)
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return NewLogNormal(mu, math.Sqrt(sigma2))
}

// Sample draws exp(N(mu, sigma)).
func (l LogNormal) Sample(src *Source) float64 {
	return math.Exp(l.Mu + l.Sigma*src.normal())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// normal draws a standard normal deviate by the Marsaglia polar method.
// The spare deviate is intentionally discarded: caching it would make the
// stream consumed by one subsystem depend on draw parity, breaking the
// per-stream reproducibility contract of Derive.
func (s *Source) normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// Normal draws from N(mean, stddev). Exposed for workload and cost noise.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.normal()
}

// Gamma is the gamma distribution with shape k and scale θ. Erlang repair
// pipelines (k sequential exponential stages) are Gamma with integer k.
type Gamma struct {
	Shape float64 // k
	Scale float64 // θ
}

// NewGamma returns a Gamma with shape k and scale theta.
func NewGamma(shape, scale float64) (Gamma, error) {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		return Gamma{}, fmt.Errorf("%w: gamma shape %v and scale %v must be positive", ErrInvalidParam, shape, scale)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Erlang returns the Gamma distribution of the sum of k independent
// exponentials with the given total mean.
func Erlang(k int, mean float64) (Gamma, error) {
	if k <= 0 {
		return Gamma{}, fmt.Errorf("%w: erlang stage count %d must be positive", ErrInvalidParam, k)
	}
	return NewGamma(float64(k), mean/float64(k))
}

// Sample draws using Marsaglia–Tsang for k >= 1 and the boost
// transformation U^(1/k) for k < 1.
func (g Gamma) Sample(src *Source) float64 {
	k := g.Shape
	boost := 1.0
	if k < 1 {
		// X_k = X_{k+1} * U^{1/k}
		boost = math.Pow(src.Float64Open(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := src.normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := src.Float64Open()
		if u < 1-0.0331*x*x*x*x || math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Scale
		}
	}
}

// Mean returns k·θ.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns a Uniform on [lo, hi).
func NewUniform(lo, hi float64) (Uniform, error) {
	if !(lo < hi) {
		return Uniform{}, fmt.Errorf("%w: uniform bounds [%v, %v) are empty", ErrInvalidParam, lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(src *Source) float64 {
	return u.Lo + (u.Hi-u.Lo)*src.Float64()
}

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Deterministic always returns Value. Repair-time models frequently use it
// (the paper's MRV for a Cheetah rebuild is the fixed 20-minute full-disk
// transfer time).
type Deterministic struct {
	Value float64
}

// Sample returns Value.
func (d Deterministic) Sample(*Source) float64 { return d.Value }

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

// Shifted adds a fixed offset to another Sampler, e.g. operator dispatch
// latency before an exponential repair.
type Shifted struct {
	Offset float64
	Base   Sampler
}

// Sample returns Offset + Base.Sample.
func (s Shifted) Sample(src *Source) float64 { return s.Offset + s.Base.Sample(src) }

// Mean returns Offset + Base.Mean.
func (s Shifted) Mean() float64 { return s.Offset + s.Base.Mean() }

// Scaled multiplies another Sampler by a fixed factor. The correlation
// model uses it to contract inter-fault times by α.
type Scaled struct {
	Factor float64
	Base   Sampler
}

// Sample returns Factor * Base.Sample.
func (s Scaled) Sample(src *Source) float64 { return s.Factor * s.Base.Sample(src) }

// Mean returns Factor * Base.Mean.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

// Mixture draws from component i with probability Weights[i].
type Mixture struct {
	Weights    []float64
	Components []Sampler
	cumulative []float64
	total      float64
}

// NewMixture returns a Mixture of the given components. Weights need not
// be normalized but must be non-negative with a positive sum, and there
// must be one weight per component.
func NewMixture(weights []float64, components []Sampler) (*Mixture, error) {
	if len(weights) != len(components) || len(weights) == 0 {
		return nil, fmt.Errorf("%w: mixture needs equal, non-zero numbers of weights (%d) and components (%d)", ErrInvalidParam, len(weights), len(components))
	}
	m := &Mixture{Weights: weights, Components: components}
	m.cumulative = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("%w: mixture weight %v must be non-negative", ErrInvalidParam, w)
		}
		m.total += w
		m.cumulative[i] = m.total
	}
	if m.total <= 0 {
		return nil, fmt.Errorf("%w: mixture weights sum to %v, need > 0", ErrInvalidParam, m.total)
	}
	return m, nil
}

// Sample picks a component by weight and draws from it.
func (m *Mixture) Sample(src *Source) float64 {
	u := src.Float64() * m.total
	for i, c := range m.cumulative {
		if u < c {
			return m.Components[i].Sample(src)
		}
	}
	return m.Components[len(m.Components)-1].Sample(src)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	var sum float64
	for i, c := range m.Components {
		sum += m.Weights[i] * c.Mean()
	}
	return sum / m.total
}

// Empirical resamples uniformly from observed values, for replaying
// measured repair or detection delays.
type Empirical struct {
	Values []float64
}

// NewEmpirical returns an Empirical over a copy of values.
func NewEmpirical(values []float64) (*Empirical, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empirical distribution needs at least one value", ErrInvalidParam)
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	return &Empirical{Values: cp}, nil
}

// Sample returns one of the observed values uniformly at random.
func (e *Empirical) Sample(src *Source) float64 {
	return e.Values[src.Intn(len(e.Values))]
}

// Mean returns the sample mean of the observed values.
func (e *Empirical) Mean() float64 {
	var sum float64
	for _, v := range e.Values {
		sum += v
	}
	return sum / float64(len(e.Values))
}
