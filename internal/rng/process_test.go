package rng

import (
	"math"
	"testing"
)

func TestPoissonProcessIncreasing(t *testing.T) {
	p, err := NewPoissonProcess(2, New(1))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 10000; i++ {
		next := p.Next()
		if next <= prev {
			t.Fatalf("event %d: time %v not after %v", i, next, prev)
		}
		prev = next
	}
	if p.Now() != prev {
		t.Errorf("Now() = %v, want %v", p.Now(), prev)
	}
}

func TestPoissonProcessRate(t *testing.T) {
	const rate = 0.5
	p, err := NewPoissonProcess(rate, New(2))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	gotRate := n / last
	if math.Abs(gotRate-rate)/rate > 0.02 {
		t.Errorf("empirical rate %v, want %v within 2%%", gotRate, rate)
	}
}

func TestPoissonProcessReset(t *testing.T) {
	p, err := NewPoissonProcess(1, New(3))
	if err != nil {
		t.Fatal(err)
	}
	p.Next()
	p.Reset(100)
	if next := p.Next(); next <= 100 {
		t.Errorf("after Reset(100), Next() = %v, want > 100", next)
	}
}

func TestPoissonProcessInvalidRate(t *testing.T) {
	for _, rate := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		if _, err := NewPoissonProcess(rate, New(1)); err == nil {
			t.Errorf("NewPoissonProcess(%v) accepted invalid rate", rate)
		}
	}
}

func TestPoissonCountMean(t *testing.T) {
	src := New(4)
	for _, mean := range []float64{0.1, 1, 5, 25, 100} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(src.PoissonCount(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/n) // 4 sigma on the sample mean
		if math.Abs(got-mean) > tol+0.01 {
			t.Errorf("PoissonCount(%v) sample mean %v, want within %v", mean, got, tol)
		}
	}
}

func TestPoissonCountEdge(t *testing.T) {
	src := New(5)
	if c := src.PoissonCount(0); c != 0 {
		t.Errorf("PoissonCount(0) = %d, want 0", c)
	}
	if c := src.PoissonCount(-1); c != 0 {
		t.Errorf("PoissonCount(-1) = %d, want 0", c)
	}
}

func TestBinomialSmall(t *testing.T) {
	src := New(6)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(src.Binomial(20, 0.3))
	}
	got := sum / n
	if math.Abs(got-6) > 0.05 {
		t.Errorf("Binomial(20, 0.3) mean %v, want 6 +- 0.05", got)
	}
}

func TestBinomialPoissonLimit(t *testing.T) {
	// Bit-error regime: n huge, p tiny. Expected count n*p.
	src := New(7)
	const trials = 20000
	n := 1 << 40 // ~1e12 "bits"
	p := 5e-12
	want := float64(n) * p // ~5.5
	var sum float64
	for i := 0; i < trials; i++ {
		sum += float64(src.Binomial(n, p))
	}
	got := sum / trials
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("Binomial(%d, %v) mean %v, want %v within 5%%", n, p, got, want)
	}
}

func TestBinomialEdges(t *testing.T) {
	src := New(8)
	if c := src.Binomial(0, 0.5); c != 0 {
		t.Errorf("Binomial(0, .5) = %d, want 0", c)
	}
	if c := src.Binomial(10, 0); c != 0 {
		t.Errorf("Binomial(10, 0) = %d, want 0", c)
	}
	if c := src.Binomial(10, 1); c != 10 {
		t.Errorf("Binomial(10, 1) = %d, want 10", c)
	}
	if c := src.Binomial(10, 2); c != 10 {
		t.Errorf("Binomial(10, 2) = %d, want 10 (clamped)", c)
	}
}
