// Package rng provides a deterministic, splittable pseudo-random number
// generator and the probability distributions used throughout the
// reliability simulator.
//
// Monte Carlo reproducibility requirements drive the design:
//
//   - Every trial must be reproducible from (seed, trial index) alone, so a
//     failing trial can be replayed in isolation.
//   - Independent subsystems of one trial (per-replica fault processes,
//     scrub schedules, repair durations) must draw from statistically
//     independent streams so that adding a draw in one subsystem does not
//     perturb another. Source.Derive provides such streams.
//
// The core generator is xoshiro256**, seeded through SplitMix64, following
// Blackman & Vigna. Both are implemented here directly because math/rand's
// global functions are neither splittable nor stable across releases.
package rng

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine with Derive.
//
// The zero value is invalid; use New.
type Source struct {
	s0, s1, s2, s3 uint64

	// id is a stable fingerprint of the seed this Source was created
	// from. Derive mixes id with the label so that derived streams do not
	// depend on how many values the parent has already produced.
	id uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to expand seeds into full generator state and to mix derivation
// labels.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds produce streams
// that are, for simulation purposes, independent.
func New(seed uint64) *Source {
	var src Source
	src.reseed(seed)
	return &src
}

func (s *Source) reseed(seed uint64) {
	s.id = seed
	st := seed
	s.s0 = splitmix64(&st)
	s.s1 = splitmix64(&st)
	s.s2 = splitmix64(&st)
	s.s3 = splitmix64(&st)
	// xoshiro256** must not start from the all-zero state. SplitMix64
	// cannot produce four zero outputs in a row, but guard anyway so the
	// invariant is local and obvious.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Float64 returns a uniform float64 in the half-open interval [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in the open interval (0, 1).
// Inverse-CDF transforms (e.g. -ln(u)) need u > 0.
func (s *Source) Float64Open() float64 {
	for {
		if u := s.Float64(); u > 0 {
			return u
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation would be faster; the
	// simulator draws bounded ints rarely, so plain modulo rejection keeps
	// the code obvious.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := s.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Derive returns a new Source whose stream is independent of s and of any
// sibling derived with a different label. Deriving does not consume
// randomness from s, so the parent stream is unperturbed — critical for
// keeping per-subsystem streams stable as code evolves.
func (s *Source) Derive(label uint64) *Source {
	var child Source
	s.DeriveInto(label, &child)
	return &child
}

// DeriveInto reseeds into with exactly the stream Derive(label) would
// return, without allocating. Hot loops (the simulator re-seeds a
// worker-local trial once per Monte Carlo trial) use it to reuse one
// Source per subsystem across millions of derivations.
func (s *Source) DeriveInto(label uint64, into *Source) {
	// Mix the stable identity of s (not its evolving state) with the
	// label through SplitMix64, keeping Derive(label) stable regardless
	// of how many draws s has made.
	st := s.id ^ rotl(label, 13) ^ (label * 0x9e3779b97f4a7c15)
	into.reseed(splitmix64(&st))
}

// DeriveString is Derive with a string label, for callers that identify
// subsystems by name ("faults/visible", "scrub", ...).
func (s *Source) DeriveString(label string) *Source {
	return s.Derive(stringLabel(label))
}

// DeriveStringInto is DeriveString with the allocation-free contract of
// DeriveInto.
func (s *Source) DeriveStringInto(label string, into *Source) {
	s.DeriveInto(stringLabel(label), into)
}

// stringLabel hashes a string label for Derive. FNV-1a; inlined to keep
// the package dependency-free.
func stringLabel(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h
}

// Shuffle pseudo-randomly permutes the n elements addressed by swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		if i != j {
			swap(i, j)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
