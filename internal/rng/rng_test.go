package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("sources with different seeds produced %d identical 64-bit draws in 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(7)
	for i := 0; i < 100000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v, want [0,1)", v)
		}
	}
}

func TestFloat64UniformMoments(t *testing.T) {
	src := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want 0.5 +- 0.005", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want 1/12 +- 0.005", variance)
	}
}

func TestDeriveIndependentOfParentDraws(t *testing.T) {
	a := New(99)
	b := New(99)
	// Burn draws on a only; derived children must still match.
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	ca := a.Derive(5)
	cb := b.Derive(5)
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatalf("Derive depends on parent draw position (diverged at draw %d)", i)
		}
	}
}

func TestDeriveDistinctLabels(t *testing.T) {
	parent := New(3)
	a := parent.Derive(1)
	b := parent.Derive(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams for distinct labels collided %d/1000 times", same)
	}
}

func TestDeriveStringMatchesStableHash(t *testing.T) {
	parent := New(8)
	a := parent.DeriveString("faults/visible")
	b := parent.DeriveString("faults/visible")
	if a.Uint64() != b.Uint64() {
		t.Error("DeriveString is not deterministic for equal labels")
	}
	c := parent.DeriveString("faults/latent")
	d := parent.DeriveString("faults/visible")
	d.Uint64() // advance past the value compared above
	if c.Uint64() == d.Uint64() {
		t.Error("DeriveString streams for different labels should differ")
	}
}

func TestIntnBounds(t *testing.T) {
	src := New(5)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := src.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for digit, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n*0.1*0.9) {
			t.Errorf("Intn(10) digit %d count %d deviates more than 5 sigma from %d", digit, c, n/10)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBoolEdges(t *testing.T) {
	src := New(13)
	for i := 0; i < 100; i++ {
		if src.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !src.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(17)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if src.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v, want 0.3 +- 0.01", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := src.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalMoments(t *testing.T) {
	src := New(29)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want 10 +- 0.05", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Errorf("normal stddev = %v, want 3 +- 0.05", sd)
	}
}

func TestZeroStateGuard(t *testing.T) {
	var s Source
	s.reseed(0)
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		t.Fatal("reseed(0) left an all-zero state")
	}
	// The stream must still be usable.
	if a, b := s.Uint64(), s.Uint64(); a == 0 && b == 0 {
		t.Error("stream from seed 0 is degenerate")
	}
}
