package rng

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleMoments draws n values and returns their mean and variance.
func sampleMoments(t *testing.T, s Sampler, src *Source, n int) (mean, variance float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Sample(src)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%T produced non-finite sample %v", s, v)
		}
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestExponentialMoments(t *testing.T) {
	e, err := NewExponential(250)
	if err != nil {
		t.Fatal(err)
	}
	mean, variance := sampleMoments(t, e, New(1), 400000)
	if rel := math.Abs(mean-250) / 250; rel > 0.01 {
		t.Errorf("exponential sample mean %v, want 250 within 1%%", mean)
	}
	if rel := math.Abs(variance-250*250) / (250 * 250); rel > 0.03 {
		t.Errorf("exponential sample variance %v, want %v within 3%%", variance, 250.0*250)
	}
}

func TestExponentialMemoryless(t *testing.T) {
	// P(X > a+b | X > a) must equal P(X > b): compare survivor fractions.
	e, _ := NewExponential(1)
	src := New(2)
	const n = 300000
	var beyondA, beyondAB, beyondB int
	const a, b = 0.7, 0.9
	for i := 0; i < n; i++ {
		x := e.Sample(src)
		if x > a {
			beyondA++
			if x > a+b {
				beyondAB++
			}
		}
		if x > b {
			beyondB++
		}
	}
	cond := float64(beyondAB) / float64(beyondA)
	uncond := float64(beyondB) / float64(n)
	if math.Abs(cond-uncond) > 0.01 {
		t.Errorf("memorylessness violated: P(X>a+b|X>a)=%v vs P(X>b)=%v", cond, uncond)
	}
}

func TestExponentialInvalid(t *testing.T) {
	for _, mean := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewExponential(mean); err == nil {
			t.Errorf("NewExponential(%v) accepted an invalid mean", mean)
		}
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	w, err := NewWeibull(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.Mean()-100) > 1e-9 {
		t.Fatalf("Weibull(1, 100) mean = %v, want 100", w.Mean())
	}
	mean, variance := sampleMoments(t, w, New(3), 300000)
	if math.Abs(mean-100)/100 > 0.01 {
		t.Errorf("Weibull(1,100) sample mean %v, want 100 within 1%%", mean)
	}
	if math.Abs(variance-10000)/10000 > 0.05 {
		t.Errorf("Weibull(1,100) sample variance %v, want 10000 within 5%%", variance)
	}
}

func TestWeibullFromMean(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 1.5, 3} {
		w, err := WeibullFromMean(shape, 1234)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(w.Mean()-1234)/1234 > 1e-12 {
			t.Errorf("WeibullFromMean(shape=%v) mean = %v, want 1234", shape, w.Mean())
		}
	}
}

func TestWeibullHazardShape(t *testing.T) {
	// Shape < 1: more early failures than exponential with same mean.
	// Shape > 1: fewer early failures. Compare P(X < mean/10).
	src := New(5)
	early := func(shape float64) float64 {
		w, err := WeibullFromMean(shape, 100)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if w.Sample(src) < 10 {
				count++
			}
		}
		return float64(count) / n
	}
	infant := early(0.5)
	expo := early(1.0)
	wearout := early(3.0)
	if !(infant > expo && expo > wearout) {
		t.Errorf("early-failure fractions not ordered: shape0.5=%v shape1=%v shape3=%v", infant, expo, wearout)
	}
}

func TestLogNormalFromMeanCV(t *testing.T) {
	l, err := LogNormalFromMeanCV(48, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Mean()-48)/48 > 1e-12 {
		t.Fatalf("analytic mean = %v, want 48", l.Mean())
	}
	mean, variance := sampleMoments(t, l, New(7), 500000)
	if math.Abs(mean-48)/48 > 0.02 {
		t.Errorf("lognormal sample mean %v, want 48 within 2%%", mean)
	}
	wantSD := 48 * 1.5
	if sd := math.Sqrt(variance); math.Abs(sd-wantSD)/wantSD > 0.1 {
		t.Errorf("lognormal sample stddev %v, want %v within 10%%", sd, wantSD)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 2}, {1, 3}, {2.5, 10}, {9, 0.5},
	} {
		g, err := NewGamma(tc.shape, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		mean, variance := sampleMoments(t, g, New(11), 300000)
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > 0.02 {
			t.Errorf("Gamma(%v,%v) sample mean %v, want %v within 2%%", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.06 {
			t.Errorf("Gamma(%v,%v) sample variance %v, want %v within 6%%", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestErlangIsSumOfExponentials(t *testing.T) {
	g, err := Erlang(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean()-100) > 1e-9 {
		t.Fatalf("Erlang(4, 100) mean = %v, want 100", g.Mean())
	}
	// Variance of Erlang(k, mean) is mean^2/k.
	_, variance := sampleMoments(t, g, New(13), 300000)
	want := 100.0 * 100 / 4
	if math.Abs(variance-want)/want > 0.06 {
		t.Errorf("Erlang(4,100) variance %v, want %v within 6%%", variance, want)
	}
}

func TestUniformMoments(t *testing.T) {
	u, err := NewUniform(10, 30)
	if err != nil {
		t.Fatal(err)
	}
	src := New(17)
	for i := 0; i < 10000; i++ {
		v := u.Sample(src)
		if v < 10 || v >= 30 {
			t.Fatalf("Uniform(10,30) sample %v out of range", v)
		}
	}
	if u.Mean() != 20 {
		t.Errorf("Uniform(10,30) mean = %v, want 20", u.Mean())
	}
}

func TestDeterministicAndCombinators(t *testing.T) {
	src := New(19)
	d := Deterministic{Value: 42}
	if v := d.Sample(src); v != 42 {
		t.Errorf("Deterministic sample = %v, want 42", v)
	}
	sh := Shifted{Offset: 8, Base: d}
	if v := sh.Sample(src); v != 50 {
		t.Errorf("Shifted sample = %v, want 50", v)
	}
	if sh.Mean() != 50 {
		t.Errorf("Shifted mean = %v, want 50", sh.Mean())
	}
	sc := Scaled{Factor: 0.5, Base: sh}
	if v := sc.Sample(src); v != 25 {
		t.Errorf("Scaled sample = %v, want 25", v)
	}
	if sc.Mean() != 25 {
		t.Errorf("Scaled mean = %v, want 25", sc.Mean())
	}
}

func TestMixture(t *testing.T) {
	m, err := NewMixture(
		[]float64{3, 1},
		[]Sampler{Deterministic{Value: 0}, Deterministic{Value: 100}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := 25.0; math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean = %v, want %v", m.Mean(), want)
	}
	src := New(23)
	const n = 100000
	hundreds := 0
	for i := 0; i < n; i++ {
		if m.Sample(src) == 100 {
			hundreds++
		}
	}
	if p := float64(hundreds) / n; math.Abs(p-0.25) > 0.01 {
		t.Errorf("mixture picked heavy component with freq %v, want 0.25 +- 0.01", p)
	}
}

func TestMixtureInvalid(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture accepted")
	}
	if _, err := NewMixture([]float64{1}, []Sampler{Deterministic{}, Deterministic{}}); err == nil {
		t.Error("mismatched weights/components accepted")
	}
	if _, err := NewMixture([]float64{-1, 2}, []Sampler{Deterministic{}, Deterministic{}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewMixture([]float64{0, 0}, []Sampler{Deterministic{}, Deterministic{}}); err == nil {
		t.Error("all-zero weights accepted")
	}
}

func TestEmpirical(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	e, err := NewEmpirical(obs)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 2.5 {
		t.Errorf("empirical mean = %v, want 2.5", e.Mean())
	}
	obs[0] = 999 // must not alias caller's slice
	src := New(29)
	for i := 0; i < 1000; i++ {
		v := e.Sample(src)
		if v < 1 || v > 4 {
			t.Fatalf("empirical sample %v outside observed set", v)
		}
	}
	if _, err := NewEmpirical(nil); err == nil {
		t.Error("empty empirical accepted")
	}
}

func TestSamplersNonNegativeProperty(t *testing.T) {
	// Every lifetime/duration distribution used by the simulator must
	// produce non-negative values for any seed.
	src := New(31)
	e, _ := NewExponential(5)
	w, _ := NewWeibull(1.7, 3)
	g, _ := NewGamma(2, 2)
	l, _ := NewLogNormal(0, 1)
	samplers := []Sampler{e, w, g, l}
	f := func(seed uint64) bool {
		s := src.Derive(seed)
		for _, d := range samplers {
			if d.Sample(s) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
