// Package report renders experiment results as aligned text tables, CSV,
// and ASCII plots — the output layer that regenerates the paper's tables
// and figures on a terminal.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// ErrShape reports inconsistent table dimensions.
var ErrShape = errors.New("report: inconsistent table shape")

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and column
// headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are stringified with %v, floats compactly.
func (t *Table) AddRow(cells ...any) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("%w: row has %d cells, table has %d columns", ErrShape, len(cells), len(t.Columns))
	}
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow for statically-shaped callers; it panics on shape
// mismatch.
func (t *Table) MustAddRow(cells ...any) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// formatCell renders one value compactly.
func formatCell(c any) string {
	switch v := c.(type) {
	case float64:
		return FormatFloat(v)
	case float32:
		return FormatFloat(float64(v))
	case string:
		return v
	default:
		return fmt.Sprintf("%v", v)
	}
}

// FormatFloat renders a float with sensible precision across the many
// orders of magnitude reliability numbers span.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	}
	a := math.Abs(v)
	switch {
	case a >= 1e6 || a < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case a >= 100:
		return fmt.Sprintf("%.1f", v)
	case a >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim the trailing pad of the last column.
		s := strings.TrimRight(sb.String(), " ")
		sb.Reset()
		sb.WriteString(s)
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quote only when needed).
func (t *Table) CSV(w io.Writer) error {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
