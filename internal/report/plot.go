package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ErrPlot reports unusable plot input.
var ErrPlot = errors.New("report: invalid plot input")

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X, Y []float64
}

// LinePlot renders series as an ASCII scatter/line chart — the terminal
// stand-in for the paper's figures.
type LinePlot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX / LogY switch the axes to log10 scale (reliability sweeps
	// span orders of magnitude).
	LogX, LogY bool
	// Width and Height are the plot area in characters; zero means the
	// 72x20 default.
	Width, Height int

	series []Series
}

// markers distinguish up to eight series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Add appends a series. X and Y must be equal-length and non-empty.
func (p *LinePlot) Add(s Series) error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("%w: series %q has %d x and %d y points", ErrPlot, s.Name, len(s.X), len(s.Y))
	}
	p.series = append(p.series, s)
	return nil
}

// MustAdd is Add that panics on malformed series (static call sites).
func (p *LinePlot) MustAdd(s Series) {
	if err := p.Add(s); err != nil {
		panic(err)
	}
}

func (p *LinePlot) dims() (w, h int) {
	w, h = p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

// transform applies the axis scaling, dropping non-plottable points.
func transform(v float64, log bool) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	if log {
		if v <= 0 {
			return 0, false
		}
		return math.Log10(v), true
	}
	return v, true
}

// Render writes the plot.
func (p *LinePlot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("%w: no series", ErrPlot)
	}
	width, height := p.dims()

	// Collect transformed points and ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type pt struct{ x, y float64 }
	pts := make([][]pt, len(p.series))
	for si, s := range p.series {
		for i := range s.X {
			x, okx := transform(s.X[i], p.LogX)
			y, oky := transform(s.Y[i], p.LogY)
			if !okx || !oky {
				continue
			}
			pts[si] = append(pts[si], pt{x, y})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX {
		return fmt.Errorf("%w: no plottable points", ErrPlot)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si := range pts {
		m := markers[si%len(markers)]
		for _, q := range pts[si] {
			col := int((q.x - minX) / (maxX - minX) * float64(width-1))
			row := int((q.y - minY) / (maxY - minY) * float64(height-1))
			grid[height-1-row][col] = m
		}
	}

	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	axisLabel := func(v float64, log bool) string {
		if log {
			return FormatFloat(math.Pow(10, v))
		}
		return FormatFloat(v)
	}
	topLabel := axisLabel(maxY, p.LogY)
	botLabel := axisLabel(minY, p.LogY)
	pad := len(topLabel)
	if len(botLabel) > pad {
		pad = len(botLabel)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, topLabel)
		case height - 1:
			label = fmt.Sprintf("%*s", pad, botLabel)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, strings.TrimRight(string(line), " "))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %s%s%s\n",
		strings.Repeat(" ", pad),
		axisLabel(minX, p.LogX),
		strings.Repeat(" ", max(1, width-len(axisLabel(minX, p.LogX))-len(axisLabel(maxX, p.LogX)))),
		axisLabel(maxX, p.LogX))
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "%s  x: %s   y: %s\n", strings.Repeat(" ", pad), p.XLabel, p.YLabel)
	}
	// Legend in series order.
	names := make([]string, 0, len(p.series))
	for si, s := range p.series {
		names = append(names, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "%s  legend: %s\n", strings.Repeat(" ", pad), strings.Join(names, "   "))
	_, err := io.WriteString(w, sb.String())
	return err
}
