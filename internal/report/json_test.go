package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// sampleEstimate is a small hand-built estimate for encoding tests.
func sampleEstimate() sim.Estimate {
	return sim.Estimate{
		MTTDL:    stats.Interval{Point: 1000, Lo: 900, Hi: 1100, Level: 0.95},
		LossProb: stats.Interval{Point: 0.01, Lo: 0.005, Hi: 0.015, Level: 0.95},
		Trials:   500,
		Censored: 495,
	}
}

// TestEstimateJSONBiasFieldsAdditive is the backward-compat regression
// for the PR 8 wire change: unbiased estimates encode byte-identically
// to the historical schema (no bias keys at all), and biased estimates
// differ only by the two appended fields.
func TestEstimateJSONBiasFieldsAdditive(t *testing.T) {
	plain, err := json.Marshal(NewEstimateJSON(sampleEstimate(), 1000))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte(`"bias"`)) || bytes.Contains(plain, []byte(`"effective_samples"`)) {
		t.Fatalf("unbiased encoding carries bias keys: %s", plain)
	}

	biasedEst := sampleEstimate()
	biasedEst.Bias = 250
	biasedEst.EffectiveSamples = 12.5
	biased, err := json.Marshal(NewEstimateJSON(biasedEst, 1000))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"bias":250`, `"effective_samples":12.5`} {
		if !bytes.Contains(biased, []byte(key)) {
			t.Errorf("biased encoding missing %s: %s", key, biased)
		}
	}

	// Key-by-key, the biased body is the unbiased body plus exactly the
	// two new fields — nothing renamed, nothing dropped.
	var plainMap, biasedMap map[string]json.RawMessage
	if err := json.Unmarshal(plain, &plainMap); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(biased, &biasedMap); err != nil {
		t.Fatal(err)
	}
	delete(biasedMap, "bias")
	delete(biasedMap, "effective_samples")
	if len(biasedMap) != len(plainMap) {
		t.Fatalf("biased encoding has extra or missing fields beyond bias/effective_samples:\n%s\n%s", plain, biased)
	}
	for k, v := range plainMap {
		if !bytes.Equal(v, biasedMap[k]) {
			t.Errorf("field %q differs between unbiased %s and biased %s encodings", k, v, biasedMap[k])
		}
	}
}
