package report

import (
	"encoding/json"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// This file is the machine-readable counterpart of the text tables: one
// JSON encoding of a Monte Carlo estimate shared by every producer, so
// `ltsim -json`, the ltsimd daemon, and cached daemon replies are
// byte-comparable. Field order is fixed by the struct declarations and
// floats render via encoding/json's shortest-round-trip form, so equal
// estimates encode to identical bytes — the property the service's
// content-addressed cache relies on.

// IntervalJSON is a stats.Interval on the wire.
type IntervalJSON struct {
	Point float64 `json:"point"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

// NewIntervalJSON converts a stats.Interval.
func NewIntervalJSON(iv stats.Interval) IntervalJSON {
	return IntervalJSON{Point: iv.Point, Lo: iv.Lo, Hi: iv.Hi, Level: iv.Level}
}

// CellJSON is one double-fault matrix cell: losses whose window was
// opened by First and closed by Final, plus the conditional loss
// probability when its denominator is non-zero.
type CellJSON struct {
	First  string   `json:"first"`
	Final  string   `json:"final"`
	Losses int      `json:"losses"`
	Prob   *float64 `json:"prob,omitempty"`
}

// EventCountsJSON aggregates sim.TrialStats on the wire.
type EventCountsJSON struct {
	VisibleFaults int `json:"visible_faults"`
	LatentFaults  int `json:"latent_faults"`
	Detections    int `json:"detections"`
	Repairs       int `json:"repairs"`
	Audits        int `json:"audits"`
	ShockEvents   int `json:"shock_events"`
	AuditInduced  int `json:"audit_induced"`
	RepairBugs    int `json:"repair_bugs"`
}

// EstimateJSON is the canonical machine-readable form of a sim.Estimate.
type EstimateJSON struct {
	MTTDLHours IntervalJSON    `json:"mttdl_hours"`
	MTTDLYears IntervalJSON    `json:"mttdl_years"`
	LossProb   *IntervalJSON   `json:"loss_prob,omitempty"`
	Trials     int             `json:"trials"`
	Censored   int             `json:"censored"`
	Events     EventCountsJSON `json:"events"`
	Matrix     []CellJSON      `json:"matrix"`
	// Bias and EffectiveSamples describe an importance-sampled run: the
	// resolved failure-biasing factor β and the weighted estimator's
	// effective loss count. Both omitted for unbiased runs, keeping
	// historical encodings byte-identical.
	Bias             *float64 `json:"bias,omitempty"`
	EffectiveSamples *float64 `json:"effective_samples,omitempty"`
}

// NewEstimateJSON converts an estimate. horizonHours > 0 marks the run
// as censored-at-horizon, which is when LossProb is meaningful.
func NewEstimateJSON(est sim.Estimate, horizonHours float64) EstimateJSON {
	toYears := func(iv stats.Interval) IntervalJSON {
		return IntervalJSON{
			Point: model.Years(iv.Point), Lo: model.Years(iv.Lo), Hi: model.Years(iv.Hi),
			Level: iv.Level,
		}
	}
	out := EstimateJSON{
		MTTDLHours: NewIntervalJSON(est.MTTDL),
		MTTDLYears: toYears(est.MTTDL),
		Trials:     est.Trials,
		Censored:   est.Censored,
		Events: EventCountsJSON{
			VisibleFaults: est.Stats.VisibleFaults,
			LatentFaults:  est.Stats.LatentFaults,
			Detections:    est.Stats.Detections,
			Repairs:       est.Stats.Repairs,
			Audits:        est.Stats.Audits,
			ShockEvents:   est.Stats.ShockEvents,
			AuditInduced:  est.Stats.AuditInduced,
			RepairBugs:    est.Stats.RepairBugs,
		},
	}
	if horizonHours > 0 {
		iv := NewIntervalJSON(est.LossProb)
		out.LossProb = &iv
	}
	if est.Bias != 0 {
		bias, ess := est.Bias, est.EffectiveSamples
		out.Bias = &bias
		out.EffectiveSamples = &ess
	}
	for _, first := range []faults.Type{faults.Visible, faults.Latent} {
		for _, final := range []faults.Type{faults.Visible, faults.Latent} {
			cell := CellJSON{
				First:  first.String(),
				Final:  final.String(),
				Losses: est.Matrix.Losses[first][final],
			}
			wov := est.Matrix.WOVByVis
			if first == faults.Latent {
				wov = est.Matrix.WOVByLat
			}
			if wov > 0 {
				p := est.Matrix.ConditionalLossProb(first, final)
				cell.Prob = &p
			}
			out.Matrix = append(out.Matrix, cell)
		}
	}
	return out
}

// MarshalJSON renders a table as {title, columns, rows} — the JSON view
// of the same grid Render draws as text.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, rows})
}
