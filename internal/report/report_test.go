package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value", "note")
	if err := tb.AddRow("alpha", 0.1, "correlated"); err != nil {
		t.Fatal(err)
	}
	tb.MustAddRow("mttdl", 6128.7, "years")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "0.1000", "6128.7", "years"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("render has %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d, want 2", tb.Rows())
	}
}

func TestTableShapeError(t *testing.T) {
	tb := NewTable("x", "a", "b")
	if err := tb.AddRow(1); err == nil {
		t.Error("short row accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic on shape error")
		}
	}()
	tb.MustAddRow(1, 2, 3)
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.MustAddRow(`quo"te`, "with,comma")
	tb.MustAddRow("plain", 3.5)
	var sb strings.Builder
	if err := tb.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"quo\"\"te\",\"with,comma\"\nplain,3.50\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "inf"},
		{math.Inf(-1), "-inf"},
		{1.4e6, "1.4e+06"},
		{6128.7, "6128.7"},
		{32.0, "32.00"},
		{0.79, "0.7900"},
		{0.0001234, "0.000123"},
		{-42.5, "-42.50"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestLinePlotRender(t *testing.T) {
	var p LinePlot
	p.Title = "MTTDL vs replicas"
	p.XLabel = "replicas"
	p.YLabel = "MTTDL"
	p.LogY = true
	p.MustAdd(Series{Name: "alpha=1", X: []float64{1, 2, 3}, Y: []float64{10, 1000, 100000}})
	p.MustAdd(Series{Name: "alpha=0.1", X: []float64{1, 2, 3}, Y: []float64{10, 100, 1000}})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"MTTDL vs replicas", "legend:", "alpha=1", "alpha=0.1", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q in:\n%s", want, out)
		}
	}
}

func TestLinePlotErrors(t *testing.T) {
	var p LinePlot
	if err := p.Render(&strings.Builder{}); err == nil {
		t.Error("empty plot rendered")
	}
	if err := p.Add(Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("mismatched series accepted")
	}
	// Series with only non-plottable points.
	var q LinePlot
	q.LogY = true
	q.MustAdd(Series{Name: "neg", X: []float64{1}, Y: []float64{-5}})
	if err := q.Render(&strings.Builder{}); err == nil {
		t.Error("plot with no plottable points rendered")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic")
		}
	}()
	p.MustAdd(Series{Name: "bad", X: nil, Y: nil})
}

func TestLinePlotDegenerateRanges(t *testing.T) {
	var p LinePlot
	p.MustAdd(Series{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatalf("flat series failed to render: %v", err)
	}
	var q LinePlot
	q.MustAdd(Series{Name: "point", X: []float64{1}, Y: []float64{1}})
	sb.Reset()
	if err := q.Render(&sb); err != nil {
		t.Fatalf("single point failed to render: %v", err)
	}
}

func TestLinePlotSkipsInvalidPoints(t *testing.T) {
	var p LinePlot
	p.LogX = true
	p.MustAdd(Series{
		Name: "mixed",
		X:    []float64{0, 1, 10, math.NaN()},
		Y:    []float64{1, 2, 3, 4},
	})
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatalf("mixed-validity series failed: %v", err)
	}
}
