package scrub

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNone(t *testing.T) {
	var n None
	if _, ok := n.NextAudit(100, rng.New(1)); ok {
		t.Error("None scheduled an audit")
	}
	if !math.IsInf(n.MeanDetectionLag(), 1) {
		t.Error("None should have infinite detection lag")
	}
	if n.Name() != "none" {
		t.Errorf("name = %q", n.Name())
	}
}

func TestPeriodicPaperMDL(t *testing.T) {
	// The paper's 3 scrubs/year => MDL = 1460 h.
	p, err := NewPeriodic(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MeanDetectionLag(); got != 1460 {
		t.Errorf("3/year mean detection lag = %v, want 1460", got)
	}
}

func TestPeriodicNextAudit(t *testing.T) {
	p := Periodic{Interval: 100, Offset: 10}
	cases := []struct{ now, want float64 }{
		{0, 10},
		{10, 110}, // strictly after now
		{10.5, 110},
		{109.999, 110},
		{110, 210},
		{1050, 1110},
	}
	for _, c := range cases {
		got, ok := p.NextAudit(c.now, nil)
		if !ok || got != c.want {
			t.Errorf("NextAudit(%v) = %v, %v; want %v, true", c.now, got, ok, c.want)
		}
	}
}

func TestPeriodicStrictlyAfterNow(t *testing.T) {
	p := Periodic{Interval: 0.1, Offset: 0}
	now := 0.0
	for i := 0; i < 1000; i++ {
		next, ok := p.NextAudit(now, nil)
		if !ok || next <= now {
			t.Fatalf("audit %d: NextAudit(%v) = %v not strictly later", i, now, next)
		}
		now = next
	}
}

func TestPeriodicEmpiricalLag(t *testing.T) {
	// Faults dropped uniformly into the schedule must wait Interval/2 on
	// average.
	p := Periodic{Interval: 200, Offset: 0}
	src := rng.New(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		at := src.Float64() * 10000
		next, _ := p.NextAudit(at, nil)
		sum += next - at
	}
	got := sum / n
	if math.Abs(got-100)/100 > 0.02 {
		t.Errorf("empirical mean lag = %v, want 100 within 2%%", got)
	}
}

func TestPoissonEmpiricalLag(t *testing.T) {
	p, err := NewPoisson(8760.0 / 200) // mean interval 200h
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.MeanInterval-200) > 1e-9 {
		t.Fatalf("mean interval = %v, want 200", p.MeanInterval)
	}
	src := rng.New(8)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		next, ok := p.NextAudit(50, src)
		if !ok || next <= 50 {
			t.Fatalf("NextAudit returned %v, %v", next, ok)
		}
		sum += next - 50
	}
	got := sum / n
	// Memoryless: the wait is the full mean interval, double the
	// periodic schedule's lag at equal audit budget.
	if math.Abs(got-200)/200 > 0.02 {
		t.Errorf("empirical mean lag = %v, want 200 within 2%%", got)
	}
	if p.MeanDetectionLag() != 200 {
		t.Errorf("analytic lag = %v, want 200", p.MeanDetectionLag())
	}
}

func TestPeriodicBeatsPoissonAtEqualBudget(t *testing.T) {
	per, _ := NewPeriodic(3, 0)
	poi, _ := NewPoisson(3)
	if per.MeanDetectionLag() >= poi.MeanDetectionLag() {
		t.Errorf("periodic lag %v should beat poisson lag %v at the same audit budget",
			per.MeanDetectionLag(), poi.MeanDetectionLag())
	}
	if ratio := poi.MeanDetectionLag() / per.MeanDetectionLag(); math.Abs(ratio-2) > 1e-9 {
		t.Errorf("poisson/periodic lag ratio = %v, want exactly 2", ratio)
	}
}

func TestOnAccess(t *testing.T) {
	// §6.2: per-item access so rare it cannot be the detector. 1 access
	// per replica per 100h with 1e-3 coverage => lag 1e5 h.
	a, err := NewOnAccess(0.01, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.MeanDetectionLag(); math.Abs(got-1e5)/1e5 > 1e-9 {
		t.Errorf("on-access lag = %v, want 1e5", got)
	}
	src := rng.New(9)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		next, ok := a.NextAudit(0, src)
		if !ok {
			t.Fatal("on-access returned no audit")
		}
		sum += next
	}
	if got := sum / n; math.Abs(got-1e5)/1e5 > 0.02 {
		t.Errorf("empirical on-access lag = %v, want 1e5 within 2%%", got)
	}
}

func TestCombined(t *testing.T) {
	per := Periodic{Interval: 1000, Offset: 0}
	acc := OnAccess{RatePerHour: 0.01, Coverage: 0.1} // lag 1000
	c := Combined{Parts: []Strategy{per, acc}}
	src := rng.New(10)
	// Earliest of the two always wins.
	for i := 0; i < 1000; i++ {
		now := src.Float64() * 5000
		got, ok := c.NextAudit(now, src)
		if !ok {
			t.Fatal("combined returned no audit")
		}
		pNext, _ := per.NextAudit(now, src)
		if got > pNext {
			t.Fatalf("combined audit %v after periodic %v", got, pNext)
		}
		if got <= now {
			t.Fatalf("combined audit %v not after now %v", got, now)
		}
	}
	// Parts have lags 500 (periodic 1000h) and 1000 (on-access); the
	// competing-process combination is 1/(1/500 + 1/1000) = 333.3.
	if got := c.MeanDetectionLag(); math.Abs(got-1000.0/3) > 1e-9 {
		t.Errorf("combined lag = %v, want 333.33", got)
	}
	if got := (Combined{Parts: []Strategy{None{}}}).MeanDetectionLag(); !math.IsInf(got, 1) {
		t.Errorf("combined of None = %v, want +Inf", got)
	}
	if name := c.Name(); name == "" {
		t.Error("combined name empty")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewPeriodic(0, 0); err == nil {
		t.Error("NewPeriodic(0) accepted")
	}
	if _, err := NewPeriodic(math.NaN(), 0); err == nil {
		t.Error("NewPeriodic(NaN) accepted")
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Error("NewPoisson(-1) accepted")
	}
	if _, err := NewOnAccess(0, 0.5); err == nil {
		t.Error("NewOnAccess zero rate accepted")
	}
	if _, err := NewOnAccess(1, 0); err == nil {
		t.Error("NewOnAccess zero coverage accepted")
	}
	if _, err := NewOnAccess(1, 1.5); err == nil {
		t.Error("NewOnAccess coverage above 1 accepted")
	}
}
