// Package scrub implements the audit strategies of §6.2: the mechanisms
// that turn latent faults into detected (and hence repairable) ones.
// Each strategy decides *when* a replica is audited; the analytic mean
// detection lag (the model's MDL) is exposed alongside so simulation and
// closed form can be compared on equal terms.
package scrub

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrInvalid reports a strategy parameter outside its domain.
var ErrInvalid = errors.New("scrub: invalid parameter")

// Strategy schedules audits of a single replica. Implementations must be
// deterministic given the Source.
type Strategy interface {
	// NextAudit returns the absolute time of the first audit after now.
	// ok = false means the replica is never audited again.
	NextAudit(now float64, src *rng.Source) (at float64, ok bool)
	// MeanDetectionLag returns the analytic mean time from a latent
	// fault's occurrence to its detection under this strategy, assuming
	// faults arrive uniformly in time. +Inf for never-audited.
	MeanDetectionLag() float64
	// Name identifies the strategy in reports.
	Name() string
}

// None never audits: the §4.1 fault-visibility strawman. Latent faults
// are found only if some other channel (user access) stumbles on them.
type None struct{}

// NextAudit reports that no audit will happen.
func (None) NextAudit(float64, *rng.Source) (float64, bool) { return 0, false }

// MeanDetectionLag returns +Inf.
func (None) MeanDetectionLag() float64 { return math.Inf(1) }

// Name returns "none".
func (None) Name() string { return "none" }

// Periodic audits every Interval hours starting at Offset. With faults
// arriving uniformly within an interval, the mean detection lag is half
// the interval — the paper's "MDL is 1460 hours (which is half of the
// scrubbing period)".
type Periodic struct {
	// Interval is the audit period in hours.
	Interval float64
	// Offset staggers the schedule (audit times are Offset + k·Interval).
	// Staggering audits across replicas avoids synchronized load spikes.
	Offset float64
}

// NewPeriodic returns a Periodic strategy with n audits per year of 8760
// hours, staggered by offset.
func NewPeriodic(perYear, offset float64) (Periodic, error) {
	if perYear <= 0 || math.IsNaN(perYear) {
		return Periodic{}, fmt.Errorf("%w: periodic audits/year %v must be positive", ErrInvalid, perYear)
	}
	return Periodic{Interval: 8760 / perYear, Offset: offset}, nil
}

// NextAudit returns the next scheduled audit strictly after now.
func (p Periodic) NextAudit(now float64, _ *rng.Source) (float64, bool) {
	if p.Interval <= 0 {
		return 0, false
	}
	k := math.Floor((now - p.Offset) / p.Interval)
	next := p.Offset + (k+1)*p.Interval
	// Guard float rounding: the result must be strictly after now.
	for next <= now {
		next += p.Interval
	}
	return next, true
}

// MeanDetectionLag returns Interval/2.
func (p Periodic) MeanDetectionLag() float64 { return p.Interval / 2 }

// Name returns a description with the period.
func (p Periodic) Name() string {
	return fmt.Sprintf("periodic/%.3gh", p.Interval)
}

// Poisson audits at exponentially distributed intervals with the given
// mean. Because the process is memoryless, the mean lag from a uniformly
// arriving fault to the next audit equals the full mean interval — twice
// as bad as a periodic schedule with the same audit budget, a fact the
// audit-strategy bench (E8) demonstrates.
type Poisson struct {
	// MeanInterval is the mean hours between audits.
	MeanInterval float64
}

// NewPoisson returns a Poisson strategy with n audits per year on
// average.
func NewPoisson(perYear float64) (Poisson, error) {
	if perYear <= 0 || math.IsNaN(perYear) {
		return Poisson{}, fmt.Errorf("%w: poisson audits/year %v must be positive", ErrInvalid, perYear)
	}
	return Poisson{MeanInterval: 8760 / perYear}, nil
}

// NextAudit draws the next audit time.
func (p Poisson) NextAudit(now float64, src *rng.Source) (float64, bool) {
	return now - p.MeanInterval*math.Log(src.Float64Open()), true
}

// MeanDetectionLag returns the full mean interval (memorylessness).
func (p Poisson) MeanDetectionLag() float64 { return p.MeanInterval }

// Name returns a description with the mean interval.
func (p Poisson) Name() string {
	return fmt.Sprintf("poisson/%.3gh", p.MeanInterval)
}

// OnAccess detects latent faults only when ordinary user traffic happens
// to read the faulty data — §6.2's warning case: "The system cannot
// depend on user access to trigger fault detection and recovery". Rate is
// the per-replica access rate; Coverage is the probability that an access
// would surface the fault (an access touches a vanishingly small fraction
// of an archive).
type OnAccess struct {
	// RatePerHour is the rate of user accesses touching this replica.
	RatePerHour float64
	// Coverage is the probability an access detects an outstanding
	// latent fault.
	Coverage float64
}

// NewOnAccess returns an OnAccess detector.
func NewOnAccess(ratePerHour, coverage float64) (OnAccess, error) {
	if ratePerHour <= 0 || math.IsNaN(ratePerHour) {
		return OnAccess{}, fmt.Errorf("%w: access rate %v must be positive", ErrInvalid, ratePerHour)
	}
	if coverage <= 0 || coverage > 1 || math.IsNaN(coverage) {
		return OnAccess{}, fmt.Errorf("%w: coverage %v must be in (0,1]", ErrInvalid, coverage)
	}
	return OnAccess{RatePerHour: ratePerHour, Coverage: coverage}, nil
}

// NextAudit draws the next *detecting* access: accesses that would detect
// the fault arrive as a thinned Poisson process of rate Rate·Coverage.
func (a OnAccess) NextAudit(now float64, src *rng.Source) (float64, bool) {
	rate := a.RatePerHour * a.Coverage
	return now - math.Log(src.Float64Open())/rate, true
}

// MeanDetectionLag returns 1/(rate·coverage).
func (a OnAccess) MeanDetectionLag() float64 {
	return 1 / (a.RatePerHour * a.Coverage)
}

// Name returns "on-access".
func (a OnAccess) Name() string { return "on-access" }

// Combined audits under several strategies at once (e.g. periodic scrub
// plus on-access detection); the earliest wins.
type Combined struct {
	Parts []Strategy
}

// NextAudit returns the earliest next audit among the parts.
func (c Combined) NextAudit(now float64, src *rng.Source) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, s := range c.Parts {
		if at, ok := s.NextAudit(now, src); ok && at < best {
			best = at
			found = true
		}
	}
	return best, found
}

// MeanDetectionLag combines the parts' lags as competing detection
// processes (harmonic sum of rates) — exact for memoryless parts, a
// serviceable approximation for periodic ones.
func (c Combined) MeanDetectionLag() float64 {
	var rate float64
	for _, s := range c.Parts {
		lag := s.MeanDetectionLag()
		if !math.IsInf(lag, 1) && lag > 0 {
			rate += 1 / lag
		}
	}
	if rate == 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// Name joins the part names.
func (c Combined) Name() string {
	name := "combined("
	for i, s := range c.Parts {
		if i > 0 {
			name += "+"
		}
		name += s.Name()
	}
	return name + ")"
}
