package repair

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestAutomated(t *testing.T) {
	p, err := Automated(0.5, 0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	if got := p.Duration(true, src); got != 0.5 {
		t.Errorf("visible duration = %v, want deterministic 0.5", got)
	}
	if got := p.Duration(false, src); got != 0.25 {
		t.Errorf("latent duration = %v, want deterministic 0.25", got)
	}
	if p.MeanVisible() != 0.5 || p.MeanLatent() != 0.25 {
		t.Errorf("means = %v/%v, want 0.5/0.25", p.MeanVisible(), p.MeanLatent())
	}
	if p.RepairPlantsFault(src) {
		t.Error("bug-free policy planted a fault")
	}
}

func TestAutomatedValidation(t *testing.T) {
	if _, err := Automated(0, 1, 0); err == nil {
		t.Error("zero visible repair accepted")
	}
	if _, err := Automated(1, -1, 0); err == nil {
		t.Error("negative latent repair accepted")
	}
	if _, err := Automated(1, 1, 1.5); err == nil {
		t.Error("bug probability above 1 accepted")
	}
	if _, err := Automated(math.NaN(), 1, 0); err == nil {
		t.Error("NaN repair accepted")
	}
}

func TestOperatorAssisted(t *testing.T) {
	p, err := OperatorAssisted(24, 1, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Means include the dispatch delay.
	if got := p.MeanVisible(); math.Abs(got-24.5) > 1e-9 {
		t.Errorf("mean visible = %v, want 24.5", got)
	}
	if got := p.MeanLatent(); math.Abs(got-24.5) > 1e-9 {
		t.Errorf("mean latent = %v, want 24.5", got)
	}
	// Empirical check on sampled durations.
	src := rng.New(2)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += p.Duration(true, src)
	}
	got := sum / n
	if math.Abs(got-24.5)/24.5 > 0.02 {
		t.Errorf("empirical mean duration = %v, want 24.5 within 2%%", got)
	}
}

func TestOperatorAssistedValidation(t *testing.T) {
	if _, err := OperatorAssisted(0, 1, 1, 1); err == nil {
		t.Error("zero dispatch mean accepted")
	}
	if _, err := OperatorAssisted(24, 1, 0, 1); err == nil {
		t.Error("zero visible repair accepted")
	}
	if _, err := OperatorAssisted(24, 1, 1, -2); err == nil {
		t.Error("negative latent repair accepted")
	}
}

// §6.3's comparison: automation shrinks the window of vulnerability by
// orders of magnitude relative to operator-assisted recovery.
func TestAutomationShrinksWindow(t *testing.T) {
	auto, err := Automated(1.0/3, 1.0/3, 0) // 20-minute copy
	if err != nil {
		t.Fatal(err)
	}
	manual, err := OperatorAssisted(24, 1.5, 1.0/3, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := manual.MeanVisible() / auto.MeanVisible(); ratio < 10 {
		t.Errorf("operator repair %vx automated; expected >= 10x", ratio)
	}
}

func TestBuggyRepairRate(t *testing.T) {
	p, err := Automated(1, 1, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if p.RepairPlantsFault(src) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("bug rate = %v, want 0.25 +- 0.01", got)
	}
}

func TestValidateNilSamplers(t *testing.T) {
	if err := (Policy{}).Validate(); err == nil {
		t.Error("empty policy accepted")
	}
	if err := (Policy{Visible: rng.Deterministic{Value: 1}}).Validate(); err == nil {
		t.Error("policy without latent sampler accepted")
	}
}
