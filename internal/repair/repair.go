// Package repair models the §6.3 recovery machinery: how long repairs
// take, whether a human is in the loop, and the §6.6 hazard that
// automated repair is itself software that can plant faults ("if buggy or
// compromised by an attacker, it can itself introduce latent faults").
package repair

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrInvalid reports a repair parameter outside its domain.
var ErrInvalid = errors.New("repair: invalid parameter")

// Policy describes how a system repairs each fault class.
type Policy struct {
	// Visible is the repair-duration distribution after a visible fault,
	// in hours.
	Visible rng.Sampler
	// Latent is the repair-duration distribution after a *detected*
	// latent fault, in hours.
	Latent rng.Sampler
	// OperatorDelay, if non-nil, is an additional dispatch delay drawn
	// before every repair: waiting for a human to notice the alert,
	// travel, find the spare. Hot-spare/automated designs leave it nil.
	OperatorDelay rng.Sampler
	// BugLatentProb is the probability that a completed repair silently
	// plants a new latent fault on the repaired replica (§6.6: "even
	// visible faults can now ... turn into latent ones").
	BugLatentProb float64
}

// Validate reports whether the policy is well-formed.
func (p Policy) Validate() error {
	if p.Visible == nil || p.Latent == nil {
		return fmt.Errorf("%w: policy needs visible and latent repair distributions", ErrInvalid)
	}
	if math.IsNaN(p.BugLatentProb) || p.BugLatentProb < 0 || p.BugLatentProb > 1 {
		return fmt.Errorf("%w: bug probability %v must be in [0,1]", ErrInvalid, p.BugLatentProb)
	}
	return nil
}

// Duration draws the total repair time for the given fault class:
// operator delay (if any) plus the repair itself. kindIsVisible selects
// the distribution.
func (p Policy) Duration(kindIsVisible bool, src *rng.Source) float64 {
	var d float64
	if p.OperatorDelay != nil {
		d += p.OperatorDelay.Sample(src)
	}
	if kindIsVisible {
		d += p.Visible.Sample(src)
	} else {
		d += p.Latent.Sample(src)
	}
	return d
}

// MeanVisible returns the expected total visible repair time (the model's
// MRV).
func (p Policy) MeanVisible() float64 {
	m := p.Visible.Mean()
	if p.OperatorDelay != nil {
		m += p.OperatorDelay.Mean()
	}
	return m
}

// MeanLatent returns the expected total latent repair time (the model's
// MRL).
func (p Policy) MeanLatent() float64 {
	m := p.Latent.Mean()
	if p.OperatorDelay != nil {
		m += p.OperatorDelay.Mean()
	}
	return m
}

// RepairPlantsFault draws whether this completed repair left a latent
// fault behind.
func (p Policy) RepairPlantsFault(src *rng.Source) bool {
	return src.Bool(p.BugLatentProb)
}

// Automated returns the §6.3 hot-spare policy: deterministic repair at
// copy speed for both fault classes, no operator, optionally buggy.
// mrv/mrl are the copy times in hours.
func Automated(mrv, mrl, bugProb float64) (Policy, error) {
	p := Policy{
		Visible:       rng.Deterministic{Value: mrv},
		Latent:        rng.Deterministic{Value: mrl},
		BugLatentProb: bugProb,
	}
	if mrv <= 0 || mrl <= 0 || math.IsNaN(mrv) || math.IsNaN(mrl) {
		return Policy{}, fmt.Errorf("%w: repair times %v/%v must be positive", ErrInvalid, mrv, mrl)
	}
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// OperatorAssisted returns a policy where a human must act first:
// lognormal dispatch delay with the given mean and coefficient of
// variation, then an exponential repair with the given means — the §6.3
// foil to Automated ("repair times for media faults might be very short
// indeed ... No human intervention is needed").
func OperatorAssisted(dispatchMean, dispatchCV, mrv, mrl float64) (Policy, error) {
	delay, err := rng.LogNormalFromMeanCV(dispatchMean, dispatchCV)
	if err != nil {
		return Policy{}, fmt.Errorf("repair: operator delay: %w", err)
	}
	vis, err := rng.NewExponential(mrv)
	if err != nil {
		return Policy{}, fmt.Errorf("repair: visible repair: %w", err)
	}
	lat, err := rng.NewExponential(mrl)
	if err != nil {
		return Policy{}, fmt.Errorf("repair: latent repair: %w", err)
	}
	return Policy{Visible: vis, Latent: lat, OperatorDelay: delay}, nil
}
