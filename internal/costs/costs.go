// Package costs implements the economics the paper insists must discipline
// every reliability strategy (§4.3 "the unlimited budget assumption",
// §6.1 drive economics): capital, replacement, power, administration, and
// audit cost streams over a preservation mission, paired with the model's
// loss probability to form a cost–reliability frontier.
package costs

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/storage"
)

// ErrInvalid reports a cost-plan parameter outside its domain.
var ErrInvalid = errors.New("costs: invalid parameter")

// Plan describes one candidate preservation system for costing.
type Plan struct {
	// Drive is the disk model used for every replica.
	Drive storage.DriveSpec
	// Replicas is the number of full copies kept.
	Replicas int
	// ArchiveGB is the collection size in decimal gigabytes.
	ArchiveGB float64
	// MissionYears is the planning horizon.
	MissionYears float64
	// ScrubsPerYear is the audit frequency per replica (0 = never).
	ScrubsPerYear float64
	// AuditCostPerPass is the cost of auditing one drive once. Near
	// zero for online media; tens of dollars for offline handling
	// (§6.2).
	AuditCostPerPass float64
	// PowerWattsPerDrive is the average draw of one spinning drive.
	PowerWattsPerDrive float64
	// PowerCostPerKWh is the electricity price in dollars.
	PowerCostPerKWh float64
	// AdminCostPerDriveYear is the administration cost allocated to one
	// drive for one year (LOCKSS-style appliances push this down, §7).
	AdminCostPerDriveYear float64
}

// Validate reports whether the plan is well-formed.
func (p Plan) Validate() error {
	if err := p.Drive.Validate(); err != nil {
		return err
	}
	if p.Replicas < 1 {
		return fmt.Errorf("%w: replicas %d must be >= 1", ErrInvalid, p.Replicas)
	}
	for name, v := range map[string]float64{
		"archive size":  p.ArchiveGB,
		"mission years": p.MissionYears,
	} {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("%w: %s %v must be positive", ErrInvalid, name, v)
		}
	}
	for name, v := range map[string]float64{
		"scrubs per year":       p.ScrubsPerYear,
		"audit cost":            p.AuditCostPerPass,
		"power watts":           p.PowerWattsPerDrive,
		"power cost":            p.PowerCostPerKWh,
		"admin cost/drive-year": p.AdminCostPerDriveYear,
	} {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("%w: %s %v must be non-negative", ErrInvalid, name, v)
		}
	}
	return nil
}

// DrivesPerReplica returns the drive count for one copy of the archive.
func (p Plan) DrivesPerReplica() int {
	return int(math.Ceil(p.ArchiveGB / p.Drive.CapacityGB))
}

// TotalDrives returns the fleet size across all replicas.
func (p Plan) TotalDrives() int { return p.DrivesPerReplica() * p.Replicas }

// Breakdown is the mission-total cost by category, in dollars.
type Breakdown struct {
	// Capital buys the initial fleet.
	Capital float64
	// Replacement covers drives that fail in service over the mission
	// (expected count under the memoryless visible-fault rate) plus the
	// periodic refresh forced by the drive's service life.
	Replacement float64
	// Power runs the fleet for the mission.
	Power float64
	// Admin pays people to run the fleet.
	Admin float64
	// Audit pays for scrub passes.
	Audit float64
}

// Total sums the categories.
func (b Breakdown) Total() float64 {
	return b.Capital + b.Replacement + b.Power + b.Admin + b.Audit
}

// PerTBYear normalizes the mission total to dollars per terabyte-year for
// the given plan — the unit preservation budgets are written in.
func (b Breakdown) PerTBYear(p Plan) float64 {
	tbYears := p.ArchiveGB / 1000 * p.MissionYears
	return b.Total() / tbYears
}

// Cost returns the mission-total breakdown for the plan.
func (p Plan) Cost() (Breakdown, error) {
	if err := p.Validate(); err != nil {
		return Breakdown{}, err
	}
	drives := float64(p.TotalDrives())
	price := p.Drive.Price()

	var b Breakdown
	b.Capital = drives * price

	// In-service failures (memoryless approximation) ...
	failuresPerDriveYear := model.HoursPerYear / p.Drive.MTTFHours()
	expectedFailures := drives * failuresPerDriveYear * p.MissionYears
	// ... plus scheduled refresh at end of each service life beyond the
	// initial purchase (rolling procurement, §6.5).
	refreshes := math.Max(0, math.Ceil(p.MissionYears/p.Drive.ServiceLifeYears)-1)
	b.Replacement = (expectedFailures + refreshes*drives) * price

	kwh := p.PowerWattsPerDrive / 1000 * model.HoursPerYear * p.MissionYears * drives
	b.Power = kwh * p.PowerCostPerKWh

	b.Admin = p.AdminCostPerDriveYear * drives * p.MissionYears

	b.Audit = p.ScrubsPerYear * p.AuditCostPerPass * drives * p.MissionYears
	return b, nil
}

// FrontierPoint pairs a plan's cost with its modeled reliability: one
// point on the §6 cost–reliability tradeoff.
type FrontierPoint struct {
	// Label names the plan.
	Label string
	// CostPerTBYear is the normalized mission cost.
	CostPerTBYear float64
	// MTTDLYears is the modeled mean time to data loss.
	MTTDLYears float64
	// LossProb is the modeled probability of loss within the mission.
	LossProb float64
}

// Evaluate combines a plan with model parameters into a frontier point.
// The params should describe one replica pair/group of the plan (use
// model presets or sim.Config.ModelParams).
func Evaluate(label string, p Plan, params model.Params) (FrontierPoint, error) {
	b, err := p.Cost()
	if err != nil {
		return FrontierPoint{}, err
	}
	var mttdl float64
	if p.Replicas == 1 {
		mttdl = params.MV // single copy: first fault is loss
	} else if p.Replicas == 2 {
		mttdl = params.MTTDL()
	} else {
		mttdl = params.ReplicatedMTTDL(p.Replicas)
	}
	mission := model.YearsToHours(p.MissionYears)
	return FrontierPoint{
		Label:         label,
		CostPerTBYear: b.PerTBYear(p),
		MTTDLYears:    model.Years(mttdl),
		LossProb:      model.FaultProbability(mission, mttdl),
	}, nil
}
