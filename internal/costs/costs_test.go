package costs

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/storage"
)

func basePlan() Plan {
	return Plan{
		Drive:                 storage.Barracuda200(),
		Replicas:              2,
		ArchiveGB:             10000, // 10 TB
		MissionYears:          10,
		ScrubsPerYear:         3,
		AuditCostPerPass:      0.05,
		PowerWattsPerDrive:    10,
		PowerCostPerKWh:       0.10,
		AdminCostPerDriveYear: 20,
	}
}

func TestPlanValidate(t *testing.T) {
	if err := basePlan().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*Plan)
	}{
		{"zero replicas", func(p *Plan) { p.Replicas = 0 }},
		{"zero archive", func(p *Plan) { p.ArchiveGB = 0 }},
		{"negative mission", func(p *Plan) { p.MissionYears = -1 }},
		{"negative scrubs", func(p *Plan) { p.ScrubsPerYear = -1 }},
		{"NaN power", func(p *Plan) { p.PowerWattsPerDrive = math.NaN() }},
		{"bad drive", func(p *Plan) { p.Drive.CapacityGB = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := basePlan()
			c.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

func TestDriveCounts(t *testing.T) {
	p := basePlan() // 10 TB over 200 GB drives = 50 per replica
	if got := p.DrivesPerReplica(); got != 50 {
		t.Errorf("drives per replica = %d, want 50", got)
	}
	if got := p.TotalDrives(); got != 100 {
		t.Errorf("total drives = %d, want 100", got)
	}
	// Partial drives round up.
	p.ArchiveGB = 10001
	if got := p.DrivesPerReplica(); got != 51 {
		t.Errorf("drives per replica = %d, want 51 (ceil)", got)
	}
}

func TestCostBreakdown(t *testing.T) {
	p := basePlan()
	b, err := p.Cost()
	if err != nil {
		t.Fatal(err)
	}
	// Capital: 100 drives x $114.
	if math.Abs(b.Capital-11400) > 1e-9 {
		t.Errorf("capital = %v, want 11400", b.Capital)
	}
	// One refresh at year 5 boundary (10-year mission, 5-year life).
	if b.Replacement <= 11400 {
		t.Errorf("replacement = %v, should include a full refresh plus failures", b.Replacement)
	}
	// Power: 10W x 8760h x 10y x 100 drives = 87,600 kWh x $0.10.
	if math.Abs(b.Power-8760) > 1e-6 {
		t.Errorf("power = %v, want 8760", b.Power)
	}
	// Admin: $20 x 100 drives x 10 years.
	if math.Abs(b.Admin-20000) > 1e-9 {
		t.Errorf("admin = %v, want 20000", b.Admin)
	}
	// Audit: 3/year x $0.05 x 100 drives x 10 years.
	if math.Abs(b.Audit-150) > 1e-9 {
		t.Errorf("audit = %v, want 150", b.Audit)
	}
	if got := b.Total(); math.Abs(got-(b.Capital+b.Replacement+b.Power+b.Admin+b.Audit)) > 1e-9 {
		t.Errorf("total = %v inconsistent with parts", got)
	}
	// Per TB-year: total / (10 TB x 10 years).
	if got, want := b.PerTBYear(p), b.Total()/100; math.Abs(got-want) > 1e-9 {
		t.Errorf("per TB-year = %v, want %v", got, want)
	}
}

// §6.1's punchline in dollars: a consumer-drive mirror plus a third
// consumer replica costs far less than an enterprise mirror, and the
// model says the extra replica buys more reliability than the better
// drive.
func TestConsumerTripleBeatsEnterpriseMirror(t *testing.T) {
	consumer3 := basePlan()
	consumer3.Replicas = 3
	enterprise2 := basePlan()
	enterprise2.Drive = storage.Cheetah146()

	c3, err := consumer3.Cost()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := enterprise2.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if c3.Total() >= e2.Total() {
		t.Errorf("3x consumer total %v should undercut 2x enterprise %v", c3.Total(), e2.Total())
	}

	// Reliability via eq 12 with matched per-drive parameters.
	consumerParams := model.Params{
		MV: storage.Barracuda200().MTTFHours(), ML: math.Inf(1),
		MRV: 1, MRL: 1, MDL: 0, Alpha: 0.1,
	}
	enterpriseParams := consumerParams
	enterpriseParams.MV = storage.Cheetah146().MTTFHours()
	if consumerParams.ReplicatedMTTDL(3) <= enterpriseParams.ReplicatedMTTDL(2) {
		t.Error("third consumer replica should out-reliability the enterprise mirror")
	}
}

func TestEvaluate(t *testing.T) {
	p := basePlan()
	params := model.PaperScrubbed()
	fp, err := Evaluate("mirror", p, params)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Label != "mirror" {
		t.Errorf("label = %q", fp.Label)
	}
	if fp.MTTDLYears <= 0 || fp.CostPerTBYear <= 0 {
		t.Errorf("degenerate frontier point %+v", fp)
	}
	if fp.LossProb <= 0 || fp.LossProb >= 1 {
		t.Errorf("loss probability %v out of range", fp.LossProb)
	}
	// Single replica: MTTDL is MV.
	p1 := p
	p1.Replicas = 1
	fp1, err := Evaluate("single", p1, params)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fp1.MTTDLYears, model.Years(params.MV); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("single-copy MTTDL = %v years, want %v", got, want)
	}
	// More replicas must not cost less or lose more.
	p3 := p
	p3.Replicas = 3
	fp3, err := Evaluate("triple", p3, params)
	if err != nil {
		t.Fatal(err)
	}
	if fp3.CostPerTBYear <= fp.CostPerTBYear {
		t.Error("third replica should cost more")
	}
	if fp3.LossProb >= fp.LossProb {
		t.Error("third replica should lose less")
	}
	// Invalid plans are rejected.
	bad := p
	bad.Replicas = 0
	if _, err := Evaluate("bad", bad, params); err == nil {
		t.Error("Evaluate accepted invalid plan")
	}
}
