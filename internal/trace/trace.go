// Package trace defines the versioned NDJSON fault-trace format:
// recorded fault/repair/access event streams that the simulator can
// replay deterministically through the DES (sim.NewReplayRunner), so
// recorded fleet histories — from the simulator itself or from real
// operations logs massaged into the schema — can be re-simulated,
// including counterfactually under a different repair/scrub policy.
//
// # Schema (v1)
//
// A trace is newline-delimited JSON. The first line is the header:
//
//	{"v":1,"kind":"ltsim-trace","replicas":2,"trials":100,"horizon_hours":87600,"source":"..."}
//
// Every following non-empty line is one event:
//
//	{"trial":0,"t":1234.5,"replica":1,"event":"fault","fault":"visible"}
//	{"trial":0,"t":1301.0,"replica":1,"event":"repair"}
//	{"trial":3,"t":8.25,"replica":0,"event":"access"}
//
// Event kinds:
//
//   - "fault": a fault arrival of class "fault" ("visible" | "latent").
//     "planted":true flags §6.6 side-effect faults (audit wear, buggy
//     repairs); replay treats them like any other fault and never
//     re-samples side effects of its own.
//   - "repair": completion of the replica's outstanding repair. Replay
//     honors these when pinning repairs (exact re-simulation) and
//     ignores them in policy mode (counterfactual re-decision).
//   - "access": a detection opportunity — an access or audit that
//     surfaces the replica's outstanding latent fault, if any.
//
// Events must be grouped by ascending trial index with non-decreasing
// times inside each trial; times must lie in [0, horizon_hours]. Parse
// is strict: unknown fields, unknown kinds, out-of-range indices, and
// ordering violations are errors with line numbers, never warnings. The
// worked example under examples/trace-replay/ walks one recorded stream
// end to end; docs/MODEL.md specifies the replay semantics.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Version is the trace schema version this package implements.
const Version = 1

// Kind is the header's format discriminator.
const Kind = "ltsim-trace"

// Event kinds.
const (
	EventFault  = "fault"
	EventRepair = "repair"
	EventAccess = "access"
)

// Fault classes of an EventFault event.
const (
	FaultVisible = "visible"
	FaultLatent  = "latent"
)

// Header is the trace's first NDJSON line.
type Header struct {
	// V is the schema version; must be Version.
	V int `json:"v"`
	// Kind discriminates the format; must be Kind.
	Kind string `json:"kind"`
	// Replicas is the recorded fleet size; event replica indices are in
	// [0, Replicas).
	Replicas int `json:"replicas"`
	// Trials is the number of recorded trial histories; event trial
	// indices are in [0, Trials).
	Trials int `json:"trials"`
	// HorizonHours is the censoring horizon every trial was recorded
	// under; replay runs to exactly this horizon.
	HorizonHours float64 `json:"horizon_hours"`
	// Source is free-form provenance ("ltsim -record", a fleet log
	// exporter, ...).
	Source string `json:"source,omitempty"`
}

// Event is one recorded NDJSON event line.
type Event struct {
	// Trial is the recorded trial history this event belongs to.
	Trial int `json:"trial"`
	// T is the event time in hours since the trial start.
	T float64 `json:"t"`
	// Replica is the replica index the event concerns.
	Replica int `json:"replica"`
	// Event is the kind: EventFault, EventRepair, or EventAccess.
	Event string `json:"event"`
	// Fault is the fault class (FaultVisible | FaultLatent); required
	// for fault events, forbidden otherwise.
	Fault string `json:"fault,omitempty"`
	// Planted flags §6.6 side-effect faults; only valid on fault events.
	Planted bool `json:"planted,omitempty"`
}

// Trace is a parsed, validated trace document.
type Trace struct {
	Header Header
	Events []Event
}

// maxLine bounds one NDJSON line (events are tiny; this is a sanity
// limit, not a format parameter).
const maxLine = 1 << 20

// Parse reads and validates an NDJSON trace. Decoding is strict:
// unknown fields fail with the offending line number.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	tr := &Trace{}
	line := 0
	headerSeen := false
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !headerSeen {
			if err := strictDecode(raw, &tr.Header); err != nil {
				return nil, fmt.Errorf("trace: line %d (header): %w", line, err)
			}
			headerSeen = true
			continue
		}
		var ev Event
		if err := strictDecode(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	if !headerSeen {
		return nil, fmt.Errorf("trace: empty input (expected a header line)")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Trace, error) { return Parse(strings.NewReader(s)) }

// strictDecode unmarshals one line rejecting unknown fields and
// trailing garbage.
func strictDecode(raw []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}

// Validate checks the header and the full event stream: version and
// kind, index ranges, kind/fault-class consistency, and the
// grouped-by-trial, time-sorted ordering replay depends on.
func (t *Trace) Validate() error {
	h := t.Header
	if h.V != Version {
		return fmt.Errorf("trace: unsupported version %d (this build speaks v%d)", h.V, Version)
	}
	if h.Kind != Kind {
		return fmt.Errorf("trace: header kind %q, want %q", h.Kind, Kind)
	}
	if h.Replicas < 1 {
		return fmt.Errorf("trace: header replicas %d must be >= 1", h.Replicas)
	}
	if h.Trials < 1 {
		return fmt.Errorf("trace: header trials %d must be >= 1", h.Trials)
	}
	if math.IsNaN(h.HorizonHours) || math.IsInf(h.HorizonHours, 0) || h.HorizonHours <= 0 {
		return fmt.Errorf("trace: header horizon_hours %v must be positive and finite", h.HorizonHours)
	}
	prevTrial, prevT := 0, 0.0
	for i, ev := range t.Events {
		where := fmt.Sprintf("trace: event %d (trial %d, t %v)", i, ev.Trial, ev.T)
		if ev.Trial < 0 || ev.Trial >= h.Trials {
			return fmt.Errorf("%s: trial index out of range [0,%d)", where, h.Trials)
		}
		if ev.Replica < 0 || ev.Replica >= h.Replicas {
			return fmt.Errorf("%s: replica %d out of range [0,%d)", where, ev.Replica, h.Replicas)
		}
		if math.IsNaN(ev.T) || ev.T < 0 || ev.T > h.HorizonHours {
			return fmt.Errorf("%s: time outside [0, horizon %v]", where, h.HorizonHours)
		}
		switch ev.Event {
		case EventFault:
			if ev.Fault != FaultVisible && ev.Fault != FaultLatent {
				return fmt.Errorf("%s: fault event needs fault %q or %q, got %q", where, FaultVisible, FaultLatent, ev.Fault)
			}
		case EventRepair, EventAccess:
			if ev.Fault != "" {
				return fmt.Errorf("%s: %s event must not carry a fault class", where, ev.Event)
			}
			if ev.Planted {
				return fmt.Errorf("%s: %s event must not be planted", where, ev.Event)
			}
		default:
			return fmt.Errorf("%s: unknown event kind %q", where, ev.Event)
		}
		if ev.Trial < prevTrial {
			return fmt.Errorf("%s: events must be grouped by ascending trial (after trial %d)", where, prevTrial)
		}
		if ev.Trial == prevTrial && i > 0 && ev.T < prevT {
			return fmt.Errorf("%s: times must be non-decreasing within a trial (after t %v)", where, prevT)
		}
		prevTrial, prevT = ev.Trial, ev.T
	}
	return nil
}

// Write emits the trace as NDJSON: header line, then one line per
// event. Write(Parse(x)) round-trips semantically (field order and
// whitespace are canonicalized by encoding/json).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(t.Header); err != nil {
		return fmt.Errorf("trace: encoding header: %w", err)
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return fmt.Errorf("trace: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// TrialEvents splits the validated event stream into one slice per
// trial index (sharing the underlying array). Trials with no events get
// empty slices — a perfectly healthy recorded history.
func (t *Trace) TrialEvents() [][]Event {
	out := make([][]Event, t.Header.Trials)
	start := 0
	for i := 1; i <= len(t.Events); i++ {
		if i == len(t.Events) || t.Events[i].Trial != t.Events[start].Trial {
			out[t.Events[start].Trial] = t.Events[start:i]
			start = i
		}
	}
	return out
}
