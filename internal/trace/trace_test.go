package trace

import (
	"bytes"
	"strings"
	"testing"
)

const goodDoc = `{"v":1,"kind":"ltsim-trace","replicas":2,"trials":3,"horizon_hours":1000,"source":"test"}
{"trial":0,"t":10.5,"replica":1,"event":"fault","fault":"latent"}
{"trial":0,"t":40,"replica":1,"event":"access"}
{"trial":0,"t":55,"replica":1,"event":"repair"}
{"trial":2,"t":5,"replica":0,"event":"fault","fault":"visible","planted":true}
`

func TestParseGood(t *testing.T) {
	tr, err := ParseString(goodDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Header.Replicas != 2 || tr.Header.Trials != 3 || tr.Header.HorizonHours != 1000 {
		t.Fatalf("header = %+v", tr.Header)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
	if ev := tr.Events[3]; ev.Trial != 2 || !ev.Planted || ev.Fault != FaultVisible {
		t.Fatalf("event 3 = %+v", ev)
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	doc := strings.ReplaceAll(goodDoc, "\n{\"trial\":2", "\n\n{\"trial\":2")
	tr, err := ParseString(doc)
	if err != nil {
		t.Fatalf("Parse with blank line: %v", err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("got %d events, want 4", len(tr.Events))
	}
}

func TestTrialEvents(t *testing.T) {
	tr, err := ParseString(goodDoc)
	if err != nil {
		t.Fatal(err)
	}
	byTrial := tr.TrialEvents()
	if len(byTrial) != 3 {
		t.Fatalf("got %d trials, want 3", len(byTrial))
	}
	if len(byTrial[0]) != 3 || len(byTrial[1]) != 0 || len(byTrial[2]) != 1 {
		t.Fatalf("per-trial lengths = %d,%d,%d", len(byTrial[0]), len(byTrial[1]), len(byTrial[2]))
	}
	if byTrial[2][0].T != 5 {
		t.Fatalf("trial 2 event = %+v", byTrial[2][0])
	}
}

func TestWriteRoundTrip(t *testing.T) {
	tr, err := ParseString(goodDoc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if tr2.Header != tr.Header {
		t.Fatalf("header round-trip: %+v vs %+v", tr2.Header, tr.Header)
	}
	if len(tr2.Events) != len(tr.Events) {
		t.Fatalf("event count round-trip: %d vs %d", len(tr2.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr2.Events[i] != tr.Events[i] {
			t.Fatalf("event %d round-trip: %+v vs %+v", i, tr2.Events[i], tr.Events[i])
		}
	}
}

func TestParseRejects(t *testing.T) {
	header := `{"v":1,"kind":"ltsim-trace","replicas":2,"trials":3,"horizon_hours":1000}`
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"empty", "", "empty input"},
		{"bad version", `{"v":2,"kind":"ltsim-trace","replicas":2,"trials":3,"horizon_hours":1000}`, "unsupported version"},
		{"bad kind", `{"v":1,"kind":"other","replicas":2,"trials":3,"horizon_hours":1000}`, "kind"},
		{"zero replicas", `{"v":1,"kind":"ltsim-trace","replicas":0,"trials":3,"horizon_hours":1000}`, "replicas"},
		{"zero trials", `{"v":1,"kind":"ltsim-trace","replicas":2,"trials":0,"horizon_hours":1000}`, "trials"},
		{"bad horizon", `{"v":1,"kind":"ltsim-trace","replicas":2,"trials":3,"horizon_hours":0}`, "horizon_hours"},
		{"unknown header field", `{"v":1,"kind":"ltsim-trace","replicas":2,"trials":3,"horizon_hours":1000,"extra":1}`, "unknown field"},
		{"unknown event field", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"access","x":1}`, "unknown field"},
		{"unknown event kind", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"boom"}`, "unknown event kind"},
		{"fault without class", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"fault"}`, "fault event needs"},
		{"repair with class", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"repair","fault":"latent"}`, "must not carry"},
		{"planted access", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"access","planted":true}`, "must not be planted"},
		{"trial out of range", header + "\n" + `{"trial":3,"t":1,"replica":0,"event":"access"}`, "trial index out of range"},
		{"replica out of range", header + "\n" + `{"trial":0,"t":1,"replica":2,"event":"access"}`, "out of range"},
		{"negative time", header + "\n" + `{"trial":0,"t":-1,"replica":0,"event":"access"}`, "outside"},
		{"time past horizon", header + "\n" + `{"trial":0,"t":1001,"replica":0,"event":"access"}`, "outside"},
		{"descending trial", header + "\n" + `{"trial":1,"t":1,"replica":0,"event":"access"}` + "\n" + `{"trial":0,"t":1,"replica":0,"event":"access"}`, "ascending trial"},
		{"descending time", header + "\n" + `{"trial":0,"t":5,"replica":0,"event":"access"}` + "\n" + `{"trial":0,"t":4,"replica":0,"event":"access"}`, "non-decreasing"},
		{"trailing garbage", header + "\n" + `{"trial":0,"t":1,"replica":0,"event":"access"} junk`, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.doc)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTimesMayRepeatAcrossTrials(t *testing.T) {
	doc := `{"v":1,"kind":"ltsim-trace","replicas":1,"trials":2,"horizon_hours":10}
{"trial":0,"t":9,"replica":0,"event":"access"}
{"trial":1,"t":1,"replica":0,"event":"access"}
`
	if _, err := ParseString(doc); err != nil {
		t.Fatalf("time reset across trials rejected: %v", err)
	}
}
