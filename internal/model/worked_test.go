package model

import (
	"math"
	"testing"
)

// These tests pin the model to the paper's §5.4 printed results. The
// tolerance is 0.5% — the paper prints one decimal place and rounds
// intermediate values.

const paperTolerance = 0.005

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

// §5.4 second implication, first scenario: no scrubbing. "we achieve an
// MTTDL = 32.0 years. This gives a 79.0% probability of data loss in 50
// years".
func TestPaperNoScrub(t *testing.T) {
	p := PaperNoScrub()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	years := Years(p.MTTDL())
	if relErr(years, 32.0) > paperTolerance {
		t.Errorf("no-scrub MTTDL = %.2f years, paper says 32.0", years)
	}
	loss := p.LossProbability(YearsToHours(PaperMissionYears))
	if relErr(loss, 0.790) > paperTolerance {
		t.Errorf("no-scrub 50-year loss probability = %.4f, paper says 0.790", loss)
	}
	// The paper reaches this number by setting P(V2 ∨ L2 | L1) = 1;
	// verify the clamp actually engaged.
	if got := p.SecondFaultProbabilities().AnyAfterLatent(); got != 1 {
		t.Errorf("AnyAfterLatent = %v, want clamped to 1 with unbounded MDL", got)
	}
}

// §5.4 second scenario: "if we scrub a replica 3 times a year ... MDL is
// 1460 hours ... applying equation 10 ... MTTDL = 6128.7 years, which
// gives a 0.8% chance of data loss in 50 years".
func TestPaperScrubbed(t *testing.T) {
	p := PaperScrubbed()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	years := Years(p.LatentDominatedMTTDL())
	if relErr(years, 6128.7) > paperTolerance {
		t.Errorf("scrubbed eq-10 MTTDL = %.1f years, paper says 6128.7", years)
	}
	loss := FaultProbability(YearsToHours(50), p.LatentDominatedMTTDL())
	if relErr(loss, 0.008) > 0.05 { // 0.8% printed with one significant digit
		t.Errorf("scrubbed 50-year loss probability = %.4f, paper says 0.008", loss)
	}
	// WithScrubsPerYear must reproduce the paper's MDL exactly.
	q := PaperNoScrub().WithScrubsPerYear(3)
	if q.MDL != 1460 {
		t.Errorf("3 scrubs/year gives MDL = %v hours, paper says 1460", q.MDL)
	}
	// The full eq-7 value is lower than the paper's eq-10 number because
	// eq 10 drops the visible-after-latent channel; the model must keep
	// them ordered and within the regime's error budget.
	full := Years(p.MTTDL())
	if full >= years {
		t.Errorf("full eq-7 MTTDL %.1f should be below the eq-10 approximation %.1f", full, years)
	}
	if full < years*0.75 {
		t.Errorf("full eq-7 MTTDL %.1f unexpectedly far below eq-10 value %.1f", full, years)
	}
}

// §5.4 third scenario: "assume α = 0.1 as suggested by Chen et al. Then
// MTTDL = 612.9 years, which gives a 7.8% chance of data loss in 50
// years".
func TestPaperCorrelated(t *testing.T) {
	p := PaperCorrelated()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	years := Years(p.LatentDominatedMTTDL())
	if relErr(years, 612.9) > paperTolerance {
		t.Errorf("correlated eq-10 MTTDL = %.1f years, paper says 612.9", years)
	}
	loss := FaultProbability(YearsToHours(50), p.LatentDominatedMTTDL())
	if relErr(loss, 0.078) > 0.02 {
		t.Errorf("correlated 50-year loss probability = %.4f, paper says 0.078", loss)
	}
	// Correlation is a pure multiplicative factor on eq 10 (§5.4 third
	// implication): exactly 10x below the uncorrelated value.
	ratio := PaperScrubbed().LatentDominatedMTTDL() / p.LatentDominatedMTTDL()
	if relErr(ratio, 10) > 1e-9 {
		t.Errorf("alpha=0.1 should divide eq-10 MTTDL by exactly 10, got ratio %v", ratio)
	}
}

// §5.4 fourth scenario: "if ML = 1.4 × 10^7, MV and MRV remain the same,
// and α = 0.1, then MTTDL = 159.8 years, leading to a 26.8% probability
// of data loss in 50 years".
func TestPaperNegligent(t *testing.T) {
	p := PaperNegligent()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	years := Years(p.LongLatentWOVMTTDL())
	if relErr(years, 159.8) > paperTolerance {
		t.Errorf("negligent eq-11 MTTDL = %.1f years, paper says 159.8", years)
	}
	loss := FaultProbability(YearsToHours(50), p.LongLatentWOVMTTDL())
	if relErr(loss, 0.268) > 0.01 {
		t.Errorf("negligent 50-year loss probability = %.4f, paper says 0.268", loss)
	}
}

// §5.4 fourth implication: "we assume the same values as above for MV and
// MRV = MRL, resulting in 1 ≥ α ≥ 2 × 10^-6, which gives a range of at
// least 5 orders of magnitude".
func TestPaperAlphaLowerBound(t *testing.T) {
	p := PaperNoScrub()
	bound := p.AlphaLowerBound()
	if relErr(bound, 10*PaperMRV/PaperMV) > 1e-12 {
		t.Fatalf("alpha lower bound = %v, want 10*MRV/MV", bound)
	}
	// The paper rounds 2.38e-6 to 2e-6 and claims >= 5 orders of
	// magnitude below 1.
	if bound > 3e-6 || bound < 2e-6 {
		t.Errorf("alpha lower bound = %v, paper says ~2e-6", bound)
	}
	if orders := -math.Log10(bound); orders < 5 {
		t.Errorf("alpha range spans %.1f orders of magnitude, paper says at least 5", orders)
	}
}

// Approximation must choose the paper's own procedure for each of the four
// worked scenarios.
func TestApproximationMatchesPaperProcedure(t *testing.T) {
	cases := []struct {
		name      string
		p         Params
		wantYears float64
		regime    Regime
	}{
		// E1: clamped eq 7 (the paper substitutes P(V2∨L2|L1)=1).
		{"no-scrub", PaperNoScrub(), 32.0, RegimeLongLatentWOV},
		// E4: eq 11.
		{"negligent", PaperNegligent(), 159.8, RegimeLongLatentWOV},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, regime := c.p.Approximation()
			if regime != c.regime {
				t.Errorf("regime = %v, want %v", regime, c.regime)
			}
			if relErr(Years(got), c.wantYears) > paperTolerance {
				t.Errorf("approximation = %.1f years, paper says %.1f", Years(got), c.wantYears)
			}
		})
	}
	// E2/E3 classify as latent-dominated only marginally (ML = MV/5 is
	// within the 10x dominance margin), so the classifier reports Mixed;
	// the paper's eq-10 number is still reproduced by the explicit form,
	// tested above.
	if r := PaperScrubbed().Regime(); r != RegimeMixed {
		t.Errorf("scrubbed scenario regime = %v, want mixed (ML only 5x below MV)", r)
	}
}

// §6.1's conclusion quantified through the model: a 14x more expensive
// enterprise drive halves the visible fault probability, while tripling
// audit frequency does far more for MTTDL — the "large incremental cost of
// enterprise drives is hard to justify" argument.
func TestScrubbingBeatsDriveUpgrade(t *testing.T) {
	base := PaperNoScrub().WithScrubsPerYear(1)
	// Enterprise upgrade at 14x the cost (§6.1): visible fault
	// probability falls 7% -> 3% (rate ratio ~2.33) and lifetime bit
	// errors fall 8 -> 6 (latent rate ratio ~1.33).
	upgraded := base
	upgraded.MV *= 7.0 / 3
	upgraded.ML *= 8.0 / 6
	// Cheaper alternative: keep consumer drives, audit 3x more often.
	audited := base.WithScrubsPerYear(3)
	gainUpgrade := upgraded.MTTDL() / base.MTTDL()
	gainAudit := audited.MTTDL() / base.MTTDL()
	if gainAudit <= gainUpgrade {
		t.Errorf("audit gain %.2fx should beat drive-upgrade gain %.2fx in the latent-dominated regime", gainAudit, gainUpgrade)
	}
}
