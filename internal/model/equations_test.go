package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFaultProbability(t *testing.T) {
	cases := []struct{ t, mttf, want float64 }{
		{0, 100, 0},
		{-5, 100, 0},
		{100, 100, 1 - math.Exp(-1)},
		{1e9, 100, 1}, // asymptote
		{50, 0, 1},    // degenerate mttf
	}
	for _, c := range cases {
		if got := FaultProbability(c.t, c.mttf); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FaultProbability(%v, %v) = %v, want %v", c.t, c.mttf, got, c.want)
		}
	}
}

func TestFaultProbabilityMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		t1 := float64(a)
		t2 := t1 + float64(b)
		return FaultProbability(t1, 1000) <= FaultProbability(t2, 1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecondFaultProbabilitiesScaleWithAlpha(t *testing.T) {
	p := PaperScrubbed()
	ind := p.SecondFaultProbabilities()
	cor := p.WithAlpha(0.1).SecondFaultProbabilities()
	for _, pair := range [][2]float64{
		{ind.VAfterV, cor.VAfterV},
		{ind.LAfterV, cor.LAfterV},
		{ind.VAfterL, cor.VAfterL},
		{ind.LAfterL, cor.LAfterL},
	} {
		if relErr(pair[1], pair[0]*10) > 1e-12 {
			t.Errorf("correlated probability %v should be 10x independent %v", pair[1], pair[0])
		}
	}
}

func TestEq8MatchesEq7WhenUnclamped(t *testing.T) {
	// Eq 8 is algebraically identical to eq 7 while no window probability
	// is clamped, so the clamped MTTDL must equal the closed form there.
	p := PaperScrubbed()
	if s := p.SecondFaultProbabilities(); s.AnyAfterVisible() >= 1 || s.AnyAfterLatent() >= 1 {
		t.Fatal("test scenario unexpectedly clamps")
	}
	a, b := p.MTTDL(), p.MTTDLClosedForm()
	if relErr(a, b) > 1e-9 {
		t.Errorf("clamped eq 7 = %v but closed-form eq 8 = %v; should agree when unclamped", a, b)
	}
}

func TestMTTDLNeverBelowClosedForm(t *testing.T) {
	// Clamping can only reduce the double-fault rate, so the general
	// MTTDL is >= the literal eq 8 everywhere in the domain.
	src := rng.New(5)
	f := func(seed uint64) bool {
		s := src.Derive(seed)
		p := randomParams(s)
		return p.MTTDL() >= p.MTTDLClosedForm()*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// randomParams draws parameters spanning the realistic domain: mean fault
// times 1e3..1e8 h, repairs 0.1..1e3 h, detection 0..1e5 h, alpha over 5
// orders of magnitude.
func randomParams(s *rng.Source) Params {
	logUniform := func(lo, hi float64) float64 {
		return math.Pow(10, math.Log10(lo)+s.Float64()*(math.Log10(hi)-math.Log10(lo)))
	}
	return Params{
		MV:    logUniform(1e3, 1e8),
		ML:    logUniform(1e3, 1e8),
		MRV:   logUniform(0.1, 1e3),
		MRL:   logUniform(0.1, 1e3),
		MDL:   logUniform(0.1, 1e5),
		Alpha: logUniform(1e-5, 1),
	}
}

func TestMTTDLMonotoneInLevers(t *testing.T) {
	src := rng.New(17)
	type lever struct {
		name  string
		apply func(Params) Params
	}
	// Each transformation is an unambiguous improvement; MTTDL must not
	// decrease.
	levers := []lever{
		{"MV x2", func(p Params) Params { p.MV *= 2; return p }},
		{"ML x2", func(p Params) Params { p.ML *= 2; return p }},
		{"MRV /2", func(p Params) Params { p.MRV /= 2; return p }},
		{"MRL /2", func(p Params) Params { p.MRL /= 2; return p }},
		{"MDL /2", func(p Params) Params { p.MDL /= 2; return p }},
		{"Alpha toward 1", func(p Params) Params { p.Alpha = math.Min(1, p.Alpha*2); return p }},
	}
	for _, lv := range levers {
		lv := lv
		f := func(seed uint64) bool {
			p := randomParams(src.Derive(seed))
			improved := lv.apply(p)
			return improved.MTTDL() >= p.MTTDL()*(1-1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("MTTDL not monotone under %s: %v", lv.name, err)
		}
	}
}

func TestMTTDLNoFaultChannels(t *testing.T) {
	p := Params{MV: math.Inf(1), ML: math.Inf(1), MRV: 1, MRL: 1, MDL: 0, Alpha: 1}
	if got := p.MTTDL(); !math.IsInf(got, 1) {
		t.Errorf("MTTDL with no fault channels = %v, want +Inf", got)
	}
	if got := p.DoubleFaultRate(); got != 0 {
		t.Errorf("double fault rate = %v, want 0", got)
	}
}

func TestDoubleFaultRateIsInverseMTTDL(t *testing.T) {
	p := PaperScrubbed()
	if got, want := p.DoubleFaultRate(), 1/p.MTTDL(); relErr(got, want) > 1e-12 {
		t.Errorf("rate = %v, want 1/MTTDL = %v", got, want)
	}
}

func TestReplicatedMTTDL(t *testing.T) {
	p := Params{MV: 1e6, ML: 1e6, MRV: 10, MRL: 10, MDL: 0, Alpha: 1}
	// r=1: no replication, MTTDL = MV.
	if got := p.ReplicatedMTTDL(1); relErr(got, 1e6) > 1e-12 {
		t.Errorf("r=1 MTTDL = %v, want MV", got)
	}
	// r=2 with alpha=1: MV^2/MRV.
	if got, want := p.ReplicatedMTTDL(2), 1e12/10; relErr(got, want) > 1e-12 {
		t.Errorf("r=2 MTTDL = %v, want %v", got, want)
	}
	// Each extra replica multiplies by alpha*MV/MRV (eq 12 geometry).
	factor := p.Alpha * p.MV / p.MRV
	for r := 2; r <= 6; r++ {
		got := p.ReplicatedMTTDL(r) / p.ReplicatedMTTDL(r-1)
		if relErr(got, factor) > 1e-9 {
			t.Errorf("r=%d growth factor = %v, want %v", r, got, factor)
		}
	}
}

func TestReplicatedMTTDLCorrelationOffsetsReplication(t *testing.T) {
	// §5.5: "a high degree of correlated errors (α ≪ 1) would also
	// geometrically decrease MTTDL, thereby offsetting much or all of the
	// gains from additional replicas." Quantify: with alpha = MRV/MV,
	// extra replicas buy nothing.
	p := Params{MV: 1e6, ML: 1e6, MRV: 10, MRL: 10, MDL: 0, Alpha: 10.0 / 1e6}
	for r := 1; r <= 5; r++ {
		if got := p.ReplicatedMTTDL(r); relErr(got, 1e6) > 1e-9 {
			t.Errorf("with alpha=MRV/MV, r=%d MTTDL = %v, want MV (no gain)", r, got)
		}
	}
}

func TestReplicatedMTTDLNoOverflow(t *testing.T) {
	p := PaperNoScrub()
	got := p.ReplicatedMTTDL(12)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("r=12 MTTDL = %v, want finite (log-space evaluation)", got)
	}
	if got <= 0 {
		t.Errorf("r=12 MTTDL = %v, want positive", got)
	}
}

func TestReplicatedMTTDLPanicsOnZeroReplicas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ReplicatedMTTDL(0) did not panic")
		}
	}()
	PaperNoScrub().ReplicatedMTTDL(0)
}

func TestReplicatedLossProbability(t *testing.T) {
	p := Params{MV: 1e5, ML: 1e5, MRV: 10, MRL: 10, MDL: 0, Alpha: 1}
	mission := YearsToHours(50)
	prev := 1.1
	for r := 1; r <= 4; r++ {
		got := p.ReplicatedLossProbability(r, mission)
		if got <= 0 || got >= prev {
			t.Errorf("r=%d loss probability = %v, want decreasing in r (prev %v)", r, got, prev)
		}
		prev = got
	}
}
