package model

import (
	"math"
	"strings"
	"testing"
)

func TestValidateAcceptsPaperPresets(t *testing.T) {
	for name, p := range map[string]Params{
		"no-scrub":   PaperNoScrub(),
		"scrubbed":   PaperScrubbed(),
		"correlated": PaperCorrelated(),
		"negligent":  PaperNegligent(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s preset invalid: %v", name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	base := PaperScrubbed()
	cases := []struct {
		name   string
		mutate func(*Params)
		want   string
	}{
		{"zero MV", func(p *Params) { p.MV = 0 }, "MV"},
		{"negative ML", func(p *Params) { p.ML = -1 }, "ML"},
		{"NaN MRV", func(p *Params) { p.MRV = math.NaN() }, "MRV"},
		{"inf MRV", func(p *Params) { p.MRV = math.Inf(1) }, "MRV"},
		{"zero MRL", func(p *Params) { p.MRL = 0 }, "MRL"},
		{"negative MDL", func(p *Params) { p.MDL = -2 }, "MDL"},
		{"zero alpha", func(p *Params) { p.Alpha = 0 }, "Alpha"},
		{"alpha above one", func(p *Params) { p.Alpha = 1.5 }, "Alpha"},
		{"inf MV", func(p *Params) { p.MV = math.Inf(1) }, "MV"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base
			c.mutate(&p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not name the offending field %q", err, c.want)
			}
		})
	}
}

func TestValidateAllowsBoundaryValues(t *testing.T) {
	p := PaperScrubbed()
	p.MDL = 0 // perfect detection
	if err := p.Validate(); err != nil {
		t.Errorf("MDL=0 rejected: %v", err)
	}
	p.MDL = math.Inf(1) // never audited
	if err := p.Validate(); err != nil {
		t.Errorf("MDL=+Inf rejected: %v", err)
	}
	p.ML = math.Inf(1) // no latent channel
	if err := p.Validate(); err != nil {
		t.Errorf("ML=+Inf rejected: %v", err)
	}
	p.Alpha = 1
	if err := p.Validate(); err != nil {
		t.Errorf("Alpha=1 rejected: %v", err)
	}
}

func TestUnitsRoundTrip(t *testing.T) {
	if got := Years(YearsToHours(123.4)); relErr(got, 123.4) > 1e-12 {
		t.Errorf("year round trip = %v", got)
	}
	if got := Minutes(20); relErr(got, 1.0/3) > 1e-12 {
		t.Errorf("Minutes(20) = %v hours, want 1/3", got)
	}
	if HoursPerYear != 8760 {
		t.Errorf("HoursPerYear = %v, the paper's numbers assume 8760", HoursPerYear)
	}
}

func TestWithScrubsPerYear(t *testing.T) {
	p := PaperNoScrub()
	cases := []struct{ n, wantMDL float64 }{
		{3, 1460},         // paper's value
		{1, 4380},         // annual audit: half a year
		{12, 365},         // monthly
		{0, math.Inf(1)},  // never
		{-2, math.Inf(1)}, // nonsense treated as never
	}
	for _, c := range cases {
		got := p.WithScrubsPerYear(c.n).MDL
		if got != c.wantMDL && !(math.IsInf(got, 1) && math.IsInf(c.wantMDL, 1)) {
			t.Errorf("WithScrubsPerYear(%v).MDL = %v, want %v", c.n, got, c.wantMDL)
		}
	}
	// Must not mutate the receiver.
	if !math.IsInf(p.MDL, 1) {
		t.Error("WithScrubsPerYear mutated its receiver")
	}
}

func TestSchwarzRatioPreset(t *testing.T) {
	if got := PaperMV / PaperML; relErr(got, SchwarzLatentFactor) > 1e-12 {
		t.Errorf("preset latent ratio = %v, want %v (Schwarz et al.)", got, SchwarzLatentFactor)
	}
}
