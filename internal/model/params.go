// Package model implements the analytic reliability model of Baker et al.,
// "A Fresh Look at the Reliability of Long-term Digital Storage"
// (EuroSys 2006), §5: mean time to data loss (MTTDL) for mirrored and
// r-way replicated data under visible faults, latent faults, and
// correlated faults.
//
// The model is deliberately agnostic to the unit of replication — a bit, a
// sector, a file, a disk, or an entire site (§5, "Our model is agnostic to
// the unit of replication") — so Params carries plain mean times with no
// device semantics. Device semantics (drive specs, media) live in
// internal/storage; the Monte Carlo validation lives in internal/sim.
//
// All times are float64 hours. Use Years/YearsToHours for presentation.
package model

import (
	"errors"
	"fmt"
	"math"
)

// HoursPerYear converts between the model's hour timescale and the
// paper's year-denominated results (8760 h = 365 d reproduces the
// paper's printed values).
const HoursPerYear = 8760.0

// Years converts hours to years.
func Years(hours float64) float64 { return hours / HoursPerYear }

// YearsToHours converts years to hours.
func YearsToHours(years float64) float64 { return years * HoursPerYear }

// Minutes converts minutes to hours, for repair times quoted in minutes.
func Minutes(m float64) float64 { return m / 60 }

// ErrInvalidParams reports a Params value outside the model's domain.
var ErrInvalidParams = errors.New("model: invalid parameters")

// Params holds the model parameters of §5.1–§5.2.
//
// A *visible* fault is detected the instant it occurs (disk crash,
// controller error). A *latent* fault occurs silently (bit rot, misplaced
// write, format obsolescence) and is only discovered MDL later, typically
// by a scrubbing/audit pass. Once detected, each kind of fault takes its
// mean repair time to fix. Alpha models correlation: once one replica is
// faulty, the conditional mean time to a fault on another replica
// contracts by the factor Alpha (§5.3).
type Params struct {
	// MV is the mean time to a visible fault, in hours.
	MV float64
	// ML is the mean time to a latent fault, in hours. May be +Inf for a
	// system with no latent fault channel.
	ML float64
	// MRV is the mean time to repair a visible fault, in hours.
	MRV float64
	// MRL is the mean time to repair a latent fault once detected, in
	// hours.
	MRL float64
	// MDL is the mean time from occurrence to detection of a latent
	// fault, in hours. +Inf models a system that never audits: latent
	// faults are then detected only by the (ignored) user-access channel
	// and the window of vulnerability after a latent fault is unbounded.
	MDL float64
	// Alpha is the correlation factor α ∈ (0, 1]: the mean time to a
	// second fault, conditioned on an outstanding first fault, is Alpha
	// times the unconditional mean (§5.3). Alpha = 1 means independent
	// replicas; smaller is worse.
	Alpha float64
}

// Validate reports whether the parameters are in the model's domain.
func (p Params) Validate() error {
	check := func(name string, v float64, allowInf bool) error {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: %s is NaN", ErrInvalidParams, name)
		}
		if v <= 0 {
			return fmt.Errorf("%w: %s = %v, must be positive", ErrInvalidParams, name, v)
		}
		if !allowInf && math.IsInf(v, 1) {
			return fmt.Errorf("%w: %s is +Inf", ErrInvalidParams, name)
		}
		return nil
	}
	if err := check("MV", p.MV, false); err != nil {
		return err
	}
	if err := check("ML", p.ML, true); err != nil {
		return err
	}
	if err := check("MRV", p.MRV, false); err != nil {
		return err
	}
	if err := check("MRL", p.MRL, false); err != nil {
		return err
	}
	// MDL may be zero (perfect instantaneous detection) or +Inf (never
	// audited).
	if math.IsNaN(p.MDL) || p.MDL < 0 {
		return fmt.Errorf("%w: MDL = %v, must be >= 0", ErrInvalidParams, p.MDL)
	}
	if math.IsNaN(p.Alpha) || p.Alpha <= 0 || p.Alpha > 1 {
		return fmt.Errorf("%w: Alpha = %v, must be in (0, 1]", ErrInvalidParams, p.Alpha)
	}
	return nil
}

// WithScrubsPerYear returns a copy of p whose MDL corresponds to periodic
// auditing n times per year: detection lag is uniform over the scrub
// interval, so the mean is half the interval (§5.4, §6.2; the paper's
// "3 times a year ⇒ MDL = 1460 hours").
func (p Params) WithScrubsPerYear(n float64) Params {
	if n <= 0 {
		p.MDL = math.Inf(1)
		return p
	}
	p.MDL = HoursPerYear / n / 2
	return p
}

// WithAlpha returns a copy of p with the given correlation factor.
func (p Params) WithAlpha(alpha float64) Params {
	p.Alpha = alpha
	return p
}

// AlphaLowerBound returns the paper's reasoned lower bound on α for this
// configuration: the correlated mean time to a second visible fault should
// be at least an order of magnitude above the recovery time,
// α·MV ≥ 10·MRV, giving α ≥ 10·MRV/MV (§5.4, fourth implication).
func (p Params) AlphaLowerBound() float64 {
	return 10 * p.MRV / p.MV
}

// SchwarzLatentFactor is the ratio of latent to visible fault rates
// suggested by Schwarz et al. and adopted in §5.4: "silent block faults
// occur five times as often as whole disk faults". ML = MV / 5.
const SchwarzLatentFactor = 5.0

// Paper parameter presets (§5.4). The worked example uses a Seagate
// Cheetah: MV = 1.4e6 hours, 146 GB at 300 MB/s giving a 20-minute
// full-copy repair, and latent faults five times as frequent as visible
// ones.
const (
	// PaperMV is the §5.4 visible-fault mean time (Cheetah datasheet
	// MTTF), in hours.
	PaperMV = 1.4e6
	// PaperML is the §5.4 latent-fault mean time: MV / SchwarzLatentFactor.
	PaperML = PaperMV / SchwarzLatentFactor // 2.8e5
	// PaperMRV is the §5.4 visible repair time: 20 minutes, in hours.
	PaperMRV = 20.0 / 60
	// PaperMRL is the latent repair time; the paper uses MRL = MRV.
	PaperMRL = PaperMRV
	// PaperScrubMDL is the §5.4 detection lag under 3 scrubs/year:
	// half of the 1/3-year scrub interval, 1460 hours.
	PaperScrubMDL = 1460.0
	// PaperAlpha is the §5.4 correlation factor taken from Chen et al.
	PaperAlpha = 0.1
	// PaperMissionYears is the horizon for the paper's loss
	// probabilities ("probability of data loss in 50 years").
	PaperMissionYears = 50.0
	// PaperNegligentML is the §5.4 fourth scenario's latent mean time
	// ("even when latent faults are infrequent", ML = 1.4e7 h = 10·MV).
	PaperNegligentML = 1.4e7
)

// PaperNoScrub returns the §5.4 baseline scenario: mirrored Cheetahs,
// latent faults 5x visible, no auditing (MDL unbounded), no correlation.
// Expected MTTDL ≈ 32.0 years.
func PaperNoScrub() Params {
	return Params{
		MV:    PaperMV,
		ML:    PaperML,
		MRV:   PaperMRV,
		MRL:   PaperMRL,
		MDL:   math.Inf(1),
		Alpha: 1,
	}
}

// PaperScrubbed returns the §5.4 scenario with scrubbing three times a
// year and no correlation. Expected MTTDL ≈ 6128.7 years.
func PaperScrubbed() Params {
	p := PaperNoScrub()
	p.MDL = PaperScrubMDL
	return p
}

// PaperCorrelated returns the §5.4 scenario with scrubbing and α = 0.1.
// Expected MTTDL ≈ 612.9 years.
func PaperCorrelated() Params {
	return PaperScrubbed().WithAlpha(PaperAlpha)
}

// PaperNegligent returns the §5.4 fourth scenario: latent faults rare
// (ML = 1.4e7 h) but never audited, α = 0.1. Expected MTTDL ≈ 159.8
// years via eq 11.
func PaperNegligent() Params {
	return Params{
		MV:    PaperMV,
		ML:    PaperNegligentML,
		MRV:   PaperMRV,
		MRL:   PaperMRL,
		MDL:   math.Inf(1),
		Alpha: PaperAlpha,
	}
}
