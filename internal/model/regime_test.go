package model

import (
	"math"
	"testing"
)

func TestRegimeClassification(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want Regime
	}{
		{
			// Classic RAID setting: latent channel negligible.
			"visible dominated",
			Params{MV: 1e5, ML: 1e8, MRV: 10, MRL: 1, MDL: 10, Alpha: 1},
			RegimeVisibleDominated,
		},
		{
			// No latent channel at all.
			"no latent channel",
			Params{MV: 1e5, ML: math.Inf(1), MRV: 10, MRL: 1, MDL: 0, Alpha: 1},
			RegimeVisibleDominated,
		},
		{
			// Bit-rot-heavy archive with slow-ish audit.
			"latent dominated",
			Params{MV: 1e8, ML: 1e5, MRV: 10, MRL: 1, MDL: 500, Alpha: 1},
			RegimeLatentDominated,
		},
		{
			// Never audited: latent WOV unbounded.
			"long latent WOV",
			Params{MV: 1e5, ML: 1e6, MRV: 10, MRL: 1, MDL: math.Inf(1), Alpha: 1},
			RegimeLongLatentWOV,
		},
		{
			// Comparable rates, short windows: no approximation wins.
			"mixed",
			Params{MV: 1e6, ML: 1e6, MRV: 10, MRL: 10, MDL: 100, Alpha: 1},
			RegimeMixed,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.p.Regime(); got != c.want {
				t.Errorf("Regime() = %v, want %v", got, c.want)
			}
		})
	}
}

func TestRegimeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range []Regime{RegimeMixed, RegimeVisibleDominated, RegimeLatentDominated, RegimeLongLatentWOV} {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("regime %d has empty or duplicate string %q", r, s)
		}
		seen[s] = true
	}
}

func TestApproximationAccuracyInRegime(t *testing.T) {
	// Inside a regime the designated closed form should track the full
	// clamped eq 7 within the dominance margin (~20-25%).
	cases := []struct {
		name string
		p    Params
	}{
		{"visible dominated", Params{MV: 1e5, ML: 1e8, MRV: 10, MRL: 1, MDL: 10, Alpha: 1}},
		{"latent dominated", Params{MV: 1e8, ML: 1e5, MRV: 10, MRL: 1, MDL: 500, Alpha: 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			approx, regime := c.p.Approximation()
			if regime == RegimeMixed {
				t.Fatalf("scenario unexpectedly classified mixed")
			}
			full := c.p.MTTDL()
			if relErr(approx, full) > 0.25 {
				t.Errorf("approximation %v vs full model %v: relative error %.2f > 0.25", approx, full, relErr(approx, full))
			}
		})
	}
}

func TestApproximationMixedFallsBack(t *testing.T) {
	p := Params{MV: 1e6, ML: 1e6, MRV: 10, MRL: 10, MDL: 100, Alpha: 1}
	got, regime := p.Approximation()
	if regime != RegimeMixed {
		t.Fatalf("regime = %v, want mixed", regime)
	}
	if got != p.MTTDL() {
		t.Errorf("mixed approximation = %v, want full model %v", got, p.MTTDL())
	}
}

// Eq 9 must converge to eq 8 as the latent channel vanishes — the paper's
// "the equation appropriately resembles the original RAID reliability
// model".
func TestEq9LimitOfEq8(t *testing.T) {
	p := Params{MV: 1e5, ML: 1e7, MRV: 10, MRL: 1, MDL: 1, Alpha: 0.5}
	prevErr := math.Inf(1)
	for _, ml := range []float64{1e7, 1e8, 1e9, 1e10} {
		p.ML = ml
		err := relErr(p.VisibleDominatedMTTDL(), p.MTTDLClosedForm())
		if err > prevErr*1.01 {
			t.Errorf("eq9 error %v at ML=%v did not shrink from %v", err, ml, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-3 {
		t.Errorf("eq9 should converge to eq8 as ML -> inf, residual %v", prevErr)
	}
}

// Eq 10 must converge to eq 8 as visible faults vanish.
func TestEq10LimitOfEq8(t *testing.T) {
	p := Params{MV: 1e7, ML: 1e5, MRV: 10, MRL: 1, MDL: 100, Alpha: 0.5}
	prevErr := math.Inf(1)
	for _, mv := range []float64{1e7, 1e8, 1e9, 1e10} {
		p.MV = mv
		err := relErr(p.LatentDominatedMTTDL(), p.MTTDLClosedForm())
		if err > prevErr*1.01 {
			t.Errorf("eq10 error %v at MV=%v did not shrink from %v", err, mv, prevErr)
		}
		prevErr = err
	}
	if prevErr > 1e-3 {
		t.Errorf("eq10 should converge to eq8 as MV -> inf, residual %v", prevErr)
	}
}

// Eq 11 interpolates: with a fast-detected latent channel it approaches
// eq 9; with an undetectable one and independent replicas it matches the
// clamped model's latent term.
func TestEq11Behaviour(t *testing.T) {
	p := PaperNegligent().WithAlpha(1) // MDL = inf, independence
	full := p.MTTDL()
	eq11 := p.LongLatentWOVMTTDL()
	if relErr(eq11, full) > 0.05 {
		t.Errorf("eq11 = %v vs clamped model %v; should agree when MV << ML, MDL unbounded, alpha=1", eq11, full)
	}
	// With no latent channel eq 11 degenerates to eq 9.
	q := p
	q.ML = math.Inf(1)
	if got, want := q.LongLatentWOVMTTDL(), q.VisibleDominatedMTTDL(); relErr(got, want) > 1e-12 {
		t.Errorf("eq11 with ML=inf = %v, want eq9 = %v", got, want)
	}
}

// Eq 11 as printed applies 1/α to a window probability that is already
// clamped at certainty, so for α < 1 it is up to 1/α more pessimistic
// than the defensible clamped eq 7 (the loss rate cannot exceed the
// latent fault arrival rate). The paper's §5.4 fourth scenario (159.8
// years) uses the printed form; we reproduce it and pin the discrepancy
// here so EXPERIMENTS.md can report it honestly.
func TestEq11AlphaPessimism(t *testing.T) {
	p := PaperNegligent() // alpha = 0.1
	eq11 := p.LongLatentWOVMTTDL()
	clamped := p.MTTDL()
	ratio := clamped / eq11
	if ratio < 1 {
		t.Fatalf("clamped model %v below eq11 %v; clamping can only slow loss", clamped, eq11)
	}
	if relErr(ratio, 1/p.Alpha) > 0.01 {
		t.Errorf("clamped/eq11 ratio = %v, want ~1/alpha = %v for the paper's scenario", ratio, 1/p.Alpha)
	}
}
