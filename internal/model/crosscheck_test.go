package model

import (
	"math"
	"testing"

	"repro/internal/baseline"
)

// Eq 12 and the exact birth-death Markov chain describe the same r-way
// replicated system under different conventions: eq 12 counts first
// faults at rate 1/MV for the group, while the physical chain counts r
// initiators — and in state k its r-k fault candidates are exactly offset
// by its k parallel repairs, leaving the fast-repair limit
//
//	Markov MTTDL = MV^r / (r · MRV^(r-1)) = eq 12 / r   (alpha = 1).
//
// Pinning the relation documents the convention gap the simulator
// measures (E9's factor 2 for mirrors is the r=2 case).
func TestEq12VsMarkovConventionFactor(t *testing.T) {
	p := Params{MV: 1e6, ML: math.Inf(1), MRV: 1, MRL: 1, MDL: 0, Alpha: 1}
	for r := 2; r <= 5; r++ {
		markov := baseline.MarkovErasure{
			N: r, M: 1,
			FragmentMTTF: p.MV, FragmentMTTR: p.MRV,
		}
		exact, err := markov.MTTDL()
		if err != nil {
			t.Fatal(err)
		}
		ratio := p.ReplicatedMTTDL(r) / exact
		// Repair-to-failure ratio 1e-6 makes the fast-repair limit
		// tight; allow 1% for the chain's sub-leading terms.
		if math.Abs(ratio-float64(r))/float64(r) > 0.01 {
			t.Errorf("r=%d: eq12/markov = %.4f, want r", r, ratio)
		}
	}
}

// The mirrored clamped model with no latent channel must agree with the
// exact chain up to the same convention factor (2) and the window
// approximation.
func TestEq7VsMarkovMirror(t *testing.T) {
	for _, mrv := range []float64{1, 10, 100} {
		p := Params{MV: 1e5, ML: math.Inf(1), MRV: mrv, MRL: mrv, MDL: 0, Alpha: 1}
		markov := baseline.MarkovErasure{N: 2, M: 1, FragmentMTTF: p.MV, FragmentMTTR: mrv}
		exact, err := markov.MTTDL()
		if err != nil {
			t.Fatal(err)
		}
		ratio := p.MTTDL() / 2 / exact
		if math.Abs(ratio-1) > 0.01 {
			t.Errorf("MRV=%v: (eq7/2)/markov = %.4f, want ~1", mrv, ratio)
		}
	}
}

// Patterson's formula is the fast-repair limit of the exact chain for
// arrays: check the mirrored case.
func TestPattersonVsMarkov(t *testing.T) {
	pat := baseline.PattersonRAID{DiskMTTF: 1e6, DiskMTTR: 5, TotalDisks: 2, GroupSize: 2}
	markov := baseline.MarkovErasure{N: 2, M: 1, FragmentMTTF: 1e6, FragmentMTTR: 5}
	exact, err := markov.MTTDL()
	if err != nil {
		t.Fatal(err)
	}
	if ratio := pat.MTTDL() / exact; math.Abs(ratio-1) > 0.01 {
		t.Errorf("patterson/markov = %.4f, want ~1 in the fast-repair limit", ratio)
	}
}
