package model

import (
	"math"
	"testing"
)

func TestImproveDirections(t *testing.T) {
	p := PaperCorrelated()
	cases := []struct {
		lever Lever
		check func(before, after Params) bool
	}{
		{LeverMV, func(b, a Params) bool { return a.MV == b.MV*2 }},
		{LeverML, func(b, a Params) bool { return a.ML == b.ML*2 }},
		{LeverMDL, func(b, a Params) bool { return a.MDL == b.MDL/2 }},
		{LeverMRL, func(b, a Params) bool { return a.MRL == b.MRL/2 }},
		{LeverMRV, func(b, a Params) bool { return a.MRV == b.MRV/2 }},
		{LeverAlpha, func(b, a Params) bool { return a.Alpha == math.Min(1, b.Alpha*2) }},
	}
	for _, c := range cases {
		after := p.Improve(c.lever, 2)
		if !c.check(p, after) {
			t.Errorf("Improve(%s, 2) produced %+v from %+v", c.lever, after, p)
		}
		if after.MTTDL() < p.MTTDL()*(1-1e-9) {
			t.Errorf("Improve(%s, 2) decreased MTTDL", c.lever)
		}
	}
}

func TestImproveAlphaClamped(t *testing.T) {
	p := PaperScrubbed() // alpha already 1
	after := p.Improve(LeverAlpha, 5)
	if after.Alpha != 1 {
		t.Errorf("alpha improved past 1: %v", after.Alpha)
	}
}

func TestSensitivitiesSortedAndComplete(t *testing.T) {
	s := PaperCorrelated().Sensitivities(2)
	if len(s) != len(AllLevers) {
		t.Fatalf("got %d sensitivities, want %d", len(s), len(AllLevers))
	}
	seen := map[Lever]bool{}
	for i, v := range s {
		if seen[v.Lever] {
			t.Errorf("duplicate lever %s", v.Lever)
		}
		seen[v.Lever] = true
		if i > 0 && v.Gain > s[i-1].Gain+1e-12 {
			t.Errorf("sensitivities not sorted by gain: %v after %v", v.Gain, s[i-1].Gain)
		}
		if v.Gain < 1-1e-9 {
			t.Errorf("lever %s gain %v < 1; Improve should never hurt", v.Lever, v.Gain)
		}
	}
}

// §5.4 first implication: "MTTDL varies quadratically with both MV and ML,
// and in particular, with the minimum of MV and ML."
func TestQuadraticElasticityInDominantFaultTime(t *testing.T) {
	// Latent-dominated: ML is the minimum and should carry elasticity ~2.
	latent := Params{MV: 1e8, ML: 1e5, MRV: 10, MRL: 1, MDL: 500, Alpha: 1}
	for _, s := range latent.Sensitivities(2) {
		if s.Lever == LeverML && math.Abs(s.Elasticity-2) > 0.1 {
			t.Errorf("latent-dominated ML elasticity = %v, want ~2", s.Elasticity)
		}
		if s.Lever == LeverMV && s.Elasticity > 0.5 {
			t.Errorf("latent-dominated MV elasticity = %v, want near 0", s.Elasticity)
		}
	}
	// Visible-dominated: MV carries the quadratic payoff.
	visible := Params{MV: 1e5, ML: 1e8, MRV: 10, MRL: 1, MDL: 10, Alpha: 1}
	for _, s := range visible.Sensitivities(2) {
		if s.Lever == LeverMV && math.Abs(s.Elasticity-2) > 0.1 {
			t.Errorf("visible-dominated MV elasticity = %v, want ~2", s.Elasticity)
		}
	}
}

// §5.4 second implication: with frequent latent faults, reducing MDL is
// the lever that matters ("it is important to reduce their detection time,
// and not just their repair time").
func TestDetectionTimeIsTopLeverWhenLatentDominates(t *testing.T) {
	p := Params{MV: 1e8, ML: 1e5, MRV: 10, MRL: 1, MDL: 5000, Alpha: 1}
	best := p.BestLever(2)
	if best.Lever != LeverMDL && best.Lever != LeverML {
		t.Errorf("best lever = %s (gain %.2f), want MDL or ML when latent faults dominate", best.Lever, best.Gain)
	}
	// MDL must beat MRL decisively since MDL >> MRL here.
	var mdlGain, mrlGain float64
	for _, s := range p.Sensitivities(2) {
		switch s.Lever {
		case LeverMDL:
			mdlGain = s.Gain
		case LeverMRL:
			mrlGain = s.Gain
		}
	}
	if mdlGain <= mrlGain {
		t.Errorf("MDL gain %v should exceed MRL gain %v when detection lag dominates the WOV", mdlGain, mrlGain)
	}
}

// §5.4 first implication, second half: "We must be careful not to
// sacrifice one for the other" — trading ML down to raise MV can lower
// MTTDL overall.
func TestAntiCorrelatedTradeCanHurt(t *testing.T) {
	p := Params{MV: 1e6, ML: 5e5, MRV: 1, MRL: 1, MDL: 2000, Alpha: 1}
	// "Upgrade" visible reliability 2x at the cost of 4x worse latent
	// behaviour (e.g. a denser medium with more bit rot).
	traded := p
	traded.MV *= 2
	traded.ML /= 4
	if traded.MTTDL() >= p.MTTDL() {
		t.Errorf("trading ML for MV should hurt here: %v >= %v", traded.MTTDL(), p.MTTDL())
	}
}

func TestBestLeverForPaperCorrelatedIsIndependence(t *testing.T) {
	// In the paper's correlated scenario (α = 0.1), restoring
	// independence multiplies MTTDL by up to 10; no 2x lever can match a
	// 10x alpha restoration, but at equal factors alpha is linear. Check
	// the documented ordering at factor 10: alpha wins or ties ML.
	p := PaperCorrelated()
	s := p.Sensitivities(10)
	gains := map[Lever]float64{}
	for _, v := range s {
		gains[v.Lever] = v.Gain
	}
	if gains[LeverAlpha] < 9.99 {
		t.Errorf("alpha gain at factor 10 = %v, want ~10 (full independence restoration)", gains[LeverAlpha])
	}
	if gains[LeverMDL] > gains[LeverML] {
		// With MDL=1460h and MRL=1/3h, MDL improvements saturate at the
		// MRL floor while ML is quadratic; ML must dominate at factor 10.
		t.Errorf("MDL gain %v should not exceed quadratic ML gain %v at factor 10", gains[LeverMDL], gains[LeverML])
	}
}
