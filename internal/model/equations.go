package model

import "math"

// This file implements equations 1–12 of the paper in order. Each function
// cites its equation number. The exported API favours the robust clamped
// evaluation (MTTDL) and exposes the raw closed forms for comparison and
// for the regime analysis of §5.4.

// FaultProbability is eq 1: the probability that a memoryless fault with
// the given mean time occurs within t. Callers use it both for fault
// processes and, applied to MTTDL, for "probability of data loss in T
// years" (§5.4).
func FaultProbability(t, mttf float64) float64 {
	if t <= 0 {
		return 0
	}
	if mttf <= 0 {
		return 1
	}
	return 1 - math.Exp(-t/mttf)
}

// SecondFaultProbs holds the four conditional probabilities of Figure 2:
// the chance that a second fault of each type occurs within the window of
// vulnerability opened by a first fault of each type. Eqs 3–6, including
// the 1/α correlation inflation of §5.3, without clamping.
type SecondFaultProbs struct {
	// VAfterV is P(V2|V1) = MRV/MV / α (eq 3).
	VAfterV float64
	// LAfterV is P(L2|V1) = MRV/ML / α (eq 4).
	LAfterV float64
	// VAfterL is P(V2|L1) = (MDL+MRL)/MV / α (eq 5).
	VAfterL float64
	// LAfterL is P(L2|L1) = (MDL+MRL)/ML / α (eq 6).
	LAfterL float64
}

// SecondFaultProbabilities evaluates eqs 3–6 for p. Values can exceed 1
// when the approximation t ≪ MTTF breaks down (e.g. MDL → ∞); see
// SecondFaultProbabilities.Clamped and the discussion under eq 6 in the
// paper ("the combined … approaches 1").
func (p Params) SecondFaultProbabilities() SecondFaultProbs {
	wovV := p.MRV
	wovL := p.MDL + p.MRL
	return SecondFaultProbs{
		VAfterV: wovV / p.MV / p.Alpha,
		LAfterV: wovV / p.ML / p.Alpha,
		VAfterL: wovL / p.MV / p.Alpha,
		LAfterL: wovL / p.ML / p.Alpha,
	}
}

// AnyAfterVisible returns min(1, P(V2|V1)+P(L2|V1)): the probability that
// the mirror is lost during the window opened by a visible fault.
func (s SecondFaultProbs) AnyAfterVisible() float64 {
	return clampProb(s.VAfterV + s.LAfterV)
}

// AnyAfterLatent returns min(1, P(V2|L1)+P(L2|L1)): the probability that
// the mirror is lost during the window opened by a latent fault. The
// paper's no-scrubbing analysis substitutes 1 here (§5.4).
func (s SecondFaultProbs) AnyAfterLatent() float64 {
	return clampProb(s.VAfterL + s.LAfterL)
}

func clampProb(p float64) float64 {
	if p >= 1 || math.IsNaN(p) {
		// NaN arises from Inf/Inf (MDL = ML = +Inf); an unbounded window
		// against an impossible fault channel is a certain-loss
		// combination only if the other channel fires, and callers reach
		// this only with a fault channel present, so 1 is the honest
		// clamp.
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// MTTDL is the mean time to data loss of mirrored data: eq 7 with each
// window-of-vulnerability probability clamped to 1. This is the paper's
// own procedure for the no-scrubbing case ("applying equation 7 and
// substituting P(V2 ∨ L2|L1) ≈ 1", §5.4) and reduces to the closed form
// of eq 8 whenever the probabilities are genuinely small.
//
// The result is in hours. It returns +Inf when no fault channel exists.
func (p Params) MTTDL() float64 {
	s := p.SecondFaultProbabilities()
	rate := s.AnyAfterVisible()/p.MV + s.AnyAfterLatent()/p.ML
	if rate <= 0 {
		return math.Inf(1)
	}
	return 1 / rate
}

// MTTDLClosedForm is eq 8 evaluated literally:
//
//	α·ML²·MV² / ((MV+ML)·(MRV·ML + (MRL+MDL)·MV))
//
// It is exact relative to eq 7 only while every window-of-vulnerability
// probability is small; with unbounded MDL it degenerates to 0. Kept for
// regime analysis and model-vs-model comparisons.
func (p Params) MTTDLClosedForm() float64 {
	if math.IsInf(p.ML, 1) {
		// No latent channel: eq 8's latent terms vanish; limit is eq 9.
		return p.VisibleDominatedMTTDL()
	}
	num := p.Alpha * p.ML * p.ML * p.MV * p.MV
	den := (p.MV + p.ML) * (p.MRV*p.ML + (p.MRL+p.MDL)*p.MV)
	return num / den
}

// VisibleDominatedMTTDL is eq 9, the regime where visible faults dominate
// ({MRL+MDL, MRV} ≪ MV ≪ ML): MTTDL ≈ α·MV²/MRV. This is the original
// RAID reliability model of Patterson et al. scaled by α.
func (p Params) VisibleDominatedMTTDL() float64 {
	return p.Alpha * p.MV * p.MV / p.MRV
}

// LatentDominatedMTTDL is eq 10, the regime where latent faults dominate
// ({MRL+MDL, MRV} ≪ ML ≪ MV): MTTDL ≈ α·ML²/(MRL+MDL). It exposes the
// paper's central point: replication buys a factor of ML only if MDL is
// kept small by auditing.
func (p Params) LatentDominatedMTTDL() float64 {
	return p.Alpha * p.ML * p.ML / (p.MRL + p.MDL)
}

// LongLatentWOVMTTDL is eq 11, the regime where visible faults dominate
// but latent faults are never (or too slowly) detected, so any latent
// fault almost surely leads to a double fault:
//
//	MTTDL ≈ α·MV² / (MRV + MV²/ML)
//
// Valid when latent rates are non-negligible, i.e. ML < MV² (paper's
// condition, with times in hours).
func (p Params) LongLatentWOVMTTDL() float64 {
	if math.IsInf(p.ML, 1) {
		return p.VisibleDominatedMTTDL()
	}
	return p.Alpha * p.MV * p.MV / (p.MRV + p.MV*p.MV/p.ML)
}

// ReplicatedMTTDL is eq 12: the mean time to data loss with r total
// replicas under correlation factor α, assuming detection is instrumented
// to make MDL negligible and latent and visible faults have similar rates
// and repairs (§5.5):
//
//	MTTDL = α^(r-1) · MV^r / MRV^(r-1)
//
// r = 1 (no replication) gives MV. It panics if r < 1; replication counts
// are structural constants, not data.
func (p Params) ReplicatedMTTDL(r int) float64 {
	if r < 1 {
		panic("model: ReplicatedMTTDL needs r >= 1 replicas")
	}
	// Evaluate in log space: MV^r overflows float64 around r = 5 for
	// realistic hour-denominated MVs.
	logMTTDL := float64(r-1)*math.Log(p.Alpha) +
		float64(r)*math.Log(p.MV) -
		float64(r-1)*math.Log(p.MRV)
	return math.Exp(logMTTDL)
}

// ReplicatedLossProbability combines eq 12 with eq 1: the probability of
// data loss within mission hours for r replicas.
func (p Params) ReplicatedLossProbability(r int, mission float64) float64 {
	return FaultProbability(mission, p.ReplicatedMTTDL(r))
}

// LossProbability is eq 1 applied to the clamped MTTDL: the probability
// of data loss within mission hours for mirrored data (§5.4's "probability
// of data loss in 50 years").
func (p Params) LossProbability(mission float64) float64 {
	return FaultProbability(mission, p.MTTDL())
}

// DoubleFaultRate returns 1/MTTDL, the rate of double-fault failures per
// hour (§5.3 defines reliability through this rate).
func (p Params) DoubleFaultRate() float64 {
	mttdl := p.MTTDL()
	if math.IsInf(mttdl, 1) {
		return 0
	}
	return 1 / mttdl
}
