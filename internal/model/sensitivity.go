package model

import (
	"math"
	"sort"
)

// Lever identifies one of the §6 strategy levers: the model parameters an
// operator can invest in.
type Lever string

// The levers correspond one-to-one with the §6 strategy list.
const (
	LeverMV    Lever = "MV"    // §6.1: sturdier media / better drives
	LeverML    Lever = "ML"    // §6.1: corruption-resistant media/formats
	LeverMDL   Lever = "MDL"   // §6.2: audit more often
	LeverMRL   Lever = "MRL"   // §6.3: automate latent repair
	LeverMRV   Lever = "MRV"   // §6.3: hot spares, automated recovery
	LeverAlpha Lever = "Alpha" // §6.5: independence of replicas
)

// AllLevers lists every lever in presentation order.
var AllLevers = []Lever{LeverMV, LeverML, LeverMDL, LeverMRL, LeverMRV, LeverAlpha}

// apply returns p with the lever scaled by factor. Improving a mean time
// to fault means increasing it; improving a repair/detection time means
// decreasing it; improving independence means increasing α (toward 1,
// clamped).
func (p Params) apply(l Lever, factor float64) Params {
	switch l {
	case LeverMV:
		p.MV *= factor
	case LeverML:
		p.ML *= factor
	case LeverMDL:
		p.MDL /= factor
	case LeverMRL:
		p.MRL /= factor
	case LeverMRV:
		p.MRV /= factor
	case LeverAlpha:
		p.Alpha = math.Min(1, p.Alpha*factor)
	}
	return p
}

// Improve returns a copy of p with the given lever improved by factor > 1.
// For mean-time-to-fault levers the mean grows by factor; for
// repair/detection levers it shrinks by factor; for Alpha it grows toward
// 1 (clamped).
func (p Params) Improve(l Lever, factor float64) Params {
	return p.apply(l, factor)
}

// Sensitivity is the outcome of improving one lever.
type Sensitivity struct {
	Lever Lever
	// Gain is MTTDL(improved)/MTTDL(baseline) for a `factor` improvement.
	Gain float64
	// Elasticity is d ln MTTDL / d ln lever improvement near the baseline:
	// 1 means proportional payoff, 2 quadratic (the paper's "MTTDL varies
	// quadratically with both MV and ML"), ~0 means the lever is
	// currently irrelevant.
	Elasticity float64
}

// Sensitivities evaluates every lever at the given improvement factor and
// returns results sorted by decreasing gain: the paper's §6 strategy
// ranking ("what strategies are most likely to increase reliability")
// computed for a concrete configuration.
func (p Params) Sensitivities(factor float64) []Sensitivity {
	base := p.MTTDL()
	out := make([]Sensitivity, 0, len(AllLevers))
	for _, l := range AllLevers {
		improved := p.Improve(l, factor).MTTDL()
		gain := improved / base
		// Central difference in log space with a small step for the
		// local elasticity.
		const h = 1.01
		up := p.Improve(l, h).MTTDL()
		down := p.Improve(l, 1/h).MTTDL()
		elast := (math.Log(up) - math.Log(down)) / (2 * math.Log(h))
		if math.IsNaN(elast) || math.IsInf(elast, 0) {
			elast = 0
		}
		out = append(out, Sensitivity{Lever: l, Gain: gain, Elasticity: elast})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out
}

// BestLever returns the lever with the largest MTTDL gain at the given
// improvement factor.
func (p Params) BestLever(factor float64) Sensitivity {
	return p.Sensitivities(factor)[0]
}
