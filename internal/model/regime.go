package model

import "math"

// Regime identifies which of the paper's §5.4 operating ranges a parameter
// set falls in, i.e. which closed-form approximation (eq 9, 10, or 11)
// tracks the full model.
type Regime int

const (
	// RegimeMixed means no single approximation dominates; use MTTDL()
	// directly.
	RegimeMixed Regime = iota
	// RegimeVisibleDominated is eq 9's range: visible faults much more
	// frequent than latent ones and all windows of vulnerability short.
	// The model degenerates to the original RAID model (×α).
	RegimeVisibleDominated
	// RegimeLatentDominated is eq 10's range: latent faults dominate;
	// MTTDL is controlled by ML²/(MRL+MDL), so detection time is the
	// lever.
	RegimeLatentDominated
	// RegimeLongLatentWOV is eq 11's range: the window of vulnerability
	// after a latent fault is so long that any latent fault is
	// effectively fatal (P(V2 ∨ L2 | L1) ≈ 1).
	RegimeLongLatentWOV
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case RegimeVisibleDominated:
		return "visible-dominated (eq 9)"
	case RegimeLatentDominated:
		return "latent-dominated (eq 10)"
	case RegimeLongLatentWOV:
		return "long-latent-WOV (eq 11)"
	default:
		return "mixed (eq 7/8)"
	}
}

// dominanceFactor is the margin used to call one term "much larger" than
// another when classifying; 10× matches the paper's order-of-magnitude
// reasoning.
const dominanceFactor = 10

// Regime classifies p into the paper's operating ranges.
func (p Params) Regime() Regime {
	s := p.SecondFaultProbabilities()
	// Eq 11's precondition: a latent fault almost surely escalates to
	// loss.
	if s.VAfterL+s.LAfterL >= 0.5 {
		return RegimeLongLatentWOV
	}
	wovL := p.MDL + p.MRL
	visTerm := p.MRV * p.ML // visible-window contribution in eq 8
	latTerm := wovL * p.MV  // latent-window contribution in eq 8
	mlDominates := p.ML >= dominanceFactor*p.MV
	mvDominates := p.MV >= dominanceFactor*p.ML
	switch {
	case math.IsInf(p.ML, 1), visTerm >= dominanceFactor*latTerm && mlDominates:
		return RegimeVisibleDominated
	case latTerm >= dominanceFactor*visTerm && mvDominates:
		return RegimeLatentDominated
	default:
		return RegimeMixed
	}
}

// Approximation returns the closed-form MTTDL for p's regime: eq 9, 10, or
// 11 when one applies, falling back to the general clamped eq 7 for mixed
// regimes. Reports the regime used.
func (p Params) Approximation() (mttdl float64, regime Regime) {
	regime = p.Regime()
	switch regime {
	case RegimeVisibleDominated:
		return p.VisibleDominatedMTTDL(), regime
	case RegimeLatentDominated:
		return p.LatentDominatedMTTDL(), regime
	case RegimeLongLatentWOV:
		// Eq 11 additionally assumes the visible rate dominates
		// (MV ≪ ML). When it does not — no-scrub with frequent latent
		// faults, the paper's first worked example — the general eq 7
		// treatment with the clamp is the defensible value. Use eq 11
		// only on its home turf.
		if p.ML >= p.MV {
			return p.LongLatentWOVMTTDL(), regime
		}
		return p.MTTDL(), regime
	default:
		return p.MTTDL(), regime
	}
}
