package experiments

import (
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/replica"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/threat"
)

func init() {
	register(Experiment{
		ID:     "E11",
		Title:  "Replication without independence does not help much: topology comparison",
		Source: "§5.5, §6.5",
		Run:    runE11,
	})
}

// runE11 makes §5.5's conclusion mechanical. Three placements of r
// replicas — one machine room, geo-distributed under one administration,
// and fully independent — face the same per-replica threat rates
// (identical marginal hazard, by construction); only the sharing
// structure differs. Colocated replication barely moves MTTDL no matter
// how many copies exist, because every shared-component event is a
// common-cause fault.
func runE11(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E11", Title: "Independence vs replication (§5.5, §6.5)"}

	// Threat rates per shared component (§3 scenarios): disasters per
	// geography, admin errors per ops team, epidemic software faults per
	// stack. Scaled to make Monte Carlo affordable while keeping the
	// ordering disaster < software < admin in frequency.
	threatMeans := map[threat.Threat]float64{
		threat.LargeScaleDisaster:   30000,
		threat.HumanError:           8000,
		threat.SoftwareObsolescence: 20000,
	}

	topologies := []struct {
		label string
		build func(int) replica.Topology
	}{
		{"colocated", replica.Colocated},
		{"geo-distributed, one admin", replica.GeoDistributed},
		{"fully independent", replica.FullyIndependent},
	}

	tbl := report.NewTable("MTTDL (hours) by placement and replica count; identical marginal threat rates everywhere",
		"placement", "independence score", "r=2", "r=3", "r=4")
	var plot report.LinePlot
	plot.Title = "MTTDL vs replicas by placement (log y)"
	plot.XLabel = "replicas"
	plot.YLabel = "MTTDL hours"
	plot.LogY = true

	rep, err := repair.Automated(24, 24, 0)
	if err != nil {
		return nil, err
	}
	for _, top := range topologies {
		row := []any{top.label, top.build(2).IndependenceScore()}
		var xs, ys []float64
		for r := 2; r <= 4; r++ {
			t := top.build(r)
			shocks, err := threat.ScenarioShocks(t, threatMeans)
			if err != nil {
				return nil, err
			}
			c := sim.Config{
				Replicas:    r,
				VisibleMean: 50000, // per-replica media faults on top of shocks
				LatentMean:  50000,
				Scrub:       scrub.Periodic{Interval: 1000},
				Repair:      rep,
				Correlation: faults.Independent{}, // correlation comes from shocks
				Shocks:      shocks,
			}
			mttdl, err := estimateMTTDL(c, cfg, cfg.trials(500))
			if err != nil {
				return nil, err
			}
			row = append(row, mttdl)
			xs = append(xs, float64(r))
			ys = append(ys, mttdl)
		}
		tbl.MustAddRow(row...)
		plot.MustAdd(report.Series{Name: top.label, X: xs, Y: ys})
	}
	res.Tables = append(res.Tables, tbl)
	res.Plots = append(res.Plots, &plot)

	// The implied alpha each topology achieves, read back through the
	// model: alpha = MTTDL_measured / MTTDL_independent for r=2.
	res.addNote("colocated MTTDL is pinned near the shared-shock scale regardless of r — 'simply increasing the replication is not enough' (§4.2)")
	res.addNote("the fully-independent curve grows with every added replica; geography alone (one admin team) sits in between, §4.2's 9/11 lesson")
	res.addNote("threat mapping: disasters correlate over %s; admin error over %s; epidemic software faults over %s (§3)",
		dims(threat.LargeScaleDisaster), dims(threat.HumanError), dims(threat.SoftwareObsolescence))

	// Analytic cross-check through eq 12: equivalent alpha from shared
	// fraction of hazards.
	p := model.Params{MV: 20000, ML: 1e18, MRV: 24, MRL: 24, MDL: 0, Alpha: 1}
	res.addNote("for calibration, eq 12 with alpha=1 at these scales gives r=2: %.3g h; colocated measured values sitting far below that gap quantify the lost independence",
		p.ReplicatedMTTDL(2))
	return res, nil
}

// dims formats a threat's correlation dimensions.
func dims(t threat.Threat) string {
	info := t.Info()
	if len(info.CorrelatesOver) == 0 {
		return "nothing (independent)"
	}
	s := ""
	for i, d := range info.CorrelatesOver {
		if i > 0 {
			s += "+"
		}
		s += string(d)
	}
	return s
}
