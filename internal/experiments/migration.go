package experiments

import (
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E12",
		Title:  "Format obsolescence as a latent fault: migration cycling as low-frequency scrubbing",
		Source: "§6 (strategies list), §4.1",
		Run:    runE12,
	})
}

// runE12 runs the paper's §6 observation that format obsolescence is a
// latent fault at a slower timescale: "we can use a similar process of
// cycling through the data, albeit at a reduced frequency, to detect data
// in endangered formats and convert to new formats". A "replica" here is
// an independently-formatted rendition of the collection; the latent
// channel is a rendition's format becoming endangered, detection is the
// format-review cycle, and repair is migration to a current format.
func runE12(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E12", Title: "Format migration cycling (§6)"}

	// Timescales in years, converted to hours: format generations go
	// endangered on ~15-year scales (proprietary RAW formats, §3);
	// media faults continue underneath; migration of a rendition takes
	// a month of pipeline work once the need is noticed.
	const (
		formatEndangerMean = 15.0 * model.HoursPerYear
		mediaFaultMean     = 80.0 * model.HoursPerYear
		migrationHours     = 30 * 24.0
	)
	rep, err := repair.Automated(48, migrationHours, 0)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Two independently-formatted renditions; format reviews every N years",
		"review cycle (years)", "effective MDL (years)", "MTTDL (years)", "P(collection uninterpretable in 100y)")
	var xs, ys []float64
	for _, cycleYears := range []float64{0, 20, 10, 5, 2} {
		var strat scrub.Strategy = scrub.None{}
		if cycleYears > 0 {
			strat = scrub.Periodic{Interval: cycleYears * model.HoursPerYear}
		}
		c := sim.Config{
			Replicas:    2,
			VisibleMean: mediaFaultMean,
			LatentMean:  formatEndangerMean,
			Scrub:       strat,
			Repair:      rep,
			Correlation: faults.Independent{},
		}
		mttdl, err := estimateMTTDL(c, cfg, cfg.trials(800))
		if err != nil {
			return nil, err
		}
		mdlYears := model.Years(strat.MeanDetectionLag())
		loss := model.FaultProbability(model.YearsToHours(100), mttdl)
		tbl.MustAddRow(cycleYears, mdlYears, model.Years(mttdl), loss)
		if cycleYears > 0 {
			xs = append(xs, cycleYears)
			ys = append(ys, model.Years(mttdl))
		}
	}
	res.Tables = append(res.Tables, tbl)

	var plot report.LinePlot
	plot.Title = "Collection MTTDL vs format-review cycle (log y)"
	plot.XLabel = "review cycle years"
	plot.YLabel = "MTTDL years"
	plot.LogY = true
	plot.MustAdd(report.Series{Name: "two renditions", X: xs, Y: ys})
	res.Plots = append(res.Plots, &plot)

	res.addNote("with no review cycle, an endangered format sits latent until the other rendition also degrades — the Venera-photograph scenario in reverse (§2)")
	res.addNote("a 5-year review cycle behaves like scrubbing with MDL=2.5y: the same eq-10 mechanics at archival timescales")
	return res, nil
}
