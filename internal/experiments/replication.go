package experiments

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E6",
		Title:  "Replication vs correlation: eq 12 sweep and Monte Carlo shape check",
		Source: "§5.5, eq 12",
		Run:    runE6,
	})
}

// runE6 reproduces §5.5: replication pays off geometrically, and
// correlation (α ≪ 1) takes the payoff back geometrically. The analytic
// sweep uses the paper's eq 12 directly; the Monte Carlo side replays a
// scaled-down physical system to confirm the *shape* (slopes in log
// space), since eq 12's absolute values rest on the overlapping-window
// and single-candidate approximations the paper itself flags.
func runE6(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E6", Title: "Replication × correlation sweep (eq 12)"}
	p := model.PaperNoScrub() // eq 12 uses MV/MRV only

	alphas := []float64{1, 0.1, 0.01, 0.001}
	maxR := 6
	tbl := report.NewTable("eq 12 MTTDL in years, paper parameters (MV=1.4e6 h, MRV=20 min)",
		"replicas", "alpha=1", "alpha=0.1", "alpha=0.01", "alpha=0.001")
	var plot report.LinePlot
	plot.Title = "eq 12: MTTDL vs replicas (log y)"
	plot.XLabel = "replicas"
	plot.YLabel = "MTTDL years"
	plot.LogY = true
	for _, a := range alphas {
		q := p.WithAlpha(a)
		var xs, ys []float64
		for r := 1; r <= maxR; r++ {
			xs = append(xs, float64(r))
			ys = append(ys, model.Years(q.ReplicatedMTTDL(r)))
		}
		plot.MustAdd(report.Series{Name: fmt.Sprintf("alpha=%g", a), X: xs, Y: ys})
	}
	for r := 1; r <= maxR; r++ {
		row := make([]any, 0, 1+len(alphas))
		row = append(row, r)
		for _, a := range alphas {
			row = append(row, model.Years(p.WithAlpha(a).ReplicatedMTTDL(r)))
		}
		tbl.MustAddRow(row...)
	}
	res.Tables = append(res.Tables, tbl)
	res.Plots = append(res.Plots, &plot)

	// The paper's cancellation point: with α = MRV/MV the gain per
	// replica is exactly 1.
	cancel := p.MRV / p.MV
	res.addNote("per-replica MTTDL multiplier is α·MV/MRV; at α = MRV/MV = %.1e extra replicas buy nothing (eq 12)", cancel)

	// Monte Carlo shape check on a scaled system.
	mc, err := replicationShapeMC(cfg)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, mc.table)
	res.addNote("monte carlo side defined as scenario document \"E6-replication-x-correlation\" (replicas × alpha grid) and executed through scenario.Expand — the same expansion path behind `ltsim -scenario` and the daemon's scenario-driven /sweep")
	res.addNote("monte carlo log-slope per replica: alpha=1 %.2f decades, alpha=0.1 %.2f decades (eq 12 predicts %.2f and %.2f)",
		mc.slope1, mc.slope01, math.Log10(1*mcMV/mcMRV), math.Log10(0.1*mcMV/mcMRV))
	res.addNote("eq 12 sits ~r above the exact birth-death chain (model.TestEq12VsMarkovConventionFactor): the r first-fault initiators it ignores are exactly offset by parallel repair; the geometric shape is what the paper argues from")
	return res, nil
}

type replicationMC struct {
	table           *report.Table
	slope1, slope01 float64
}

// mcMV and mcMRV scale the shape-check system: the per-replica eq 12
// multiplier is α·mcMV/mcMRV = 20α, large enough to measure a geometric
// slope and small enough that r=4 trials stay affordable.
const (
	mcMV  = 200.0
	mcMRV = 10.0
)

// replicationShapeMC measures MTTDL vs replica count on a fast system
// for α ∈ {1, 0.1}. The sweep is a declarative scenario document — a
// replicas × alpha grid over the scaled mirror — expanded and executed
// through the same path as `ltsim -scenario` and the daemon's
// scenario-driven /sweep.
func replicationShapeMC(cfg RunConfig) (*replicationMC, error) {
	base := adaptiveBase(cfg.Seed, cfg.trials(800), 0.08)
	never := 0.0
	base.ScrubsPerYear = &never
	base.VisibleMeanHours = mcMV
	base.LatentMeanHours = -1 // no latent channel
	base.RepairVisibleHours = mcMRV
	base.RepairLatentHours = mcMRV
	doc := scenario.Document{
		V:    scenario.Version,
		Name: "E6-replication-x-correlation",
		Base: base,
		Grid: []scenario.Axis{
			{Param: "replicas", Values: []float64{2, 3, 4}},
			{Param: "alpha", Values: []float64{1, 0.1}},
		},
	}
	_, ests, err := runScenario(doc)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Monte Carlo MTTDL (hours), scaled mirror MV=200, MRV=10",
		"replicas", "alpha=1", "alpha=0.1", "eq 12 alpha=1", "eq 12 alpha=0.1")
	p := model.Params{MV: mcMV, ML: math.Inf(1), MRV: mcMRV, MRL: mcMRV, MDL: 0, Alpha: 1}

	var logs1, logs01 []float64
	// Grid order: replicas slowest, alpha fastest — pairs per r.
	for i, r := range []int{2, 3, 4} {
		est1 := ests[2*i].MTTDL.Point
		est01 := ests[2*i+1].MTTDL.Point
		tbl.MustAddRow(r, est1, est01,
			p.WithAlpha(1).ReplicatedMTTDL(r),
			p.WithAlpha(0.1).ReplicatedMTTDL(r))
		logs1 = append(logs1, math.Log10(est1))
		logs01 = append(logs01, math.Log10(est01))
	}
	return &replicationMC{
		table:   tbl,
		slope1:  (logs1[len(logs1)-1] - logs1[0]) / float64(len(logs1)-1),
		slope01: (logs01[len(logs01)-1] - logs01[0]) / float64(len(logs01)-1),
	}, nil
}

// estimateMTTDL runs a precision-targeted run-to-loss estimate (8%
// relative CI half-width, capped at the historical trial budget) and
// returns the point value.
func estimateMTTDL(c sim.Config, cfg RunConfig, trials int) (float64, error) {
	runner, err := sim.NewRunner(c)
	if err != nil {
		return 0, err
	}
	est, err := runner.Estimate(adaptiveSweepOptions(cfg.Seed, trials, 0.08))
	if err != nil {
		return 0, err
	}
	return est.MTTDL.Point, nil
}
