package experiments

import (
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/storage"
)

func init() {
	register(Experiment{
		ID:     "E8",
		Title:  "Audit strategies: scrub frequency sweep and disk-vs-tape replica economics",
		Source: "§6.2",
		Run:    runE8,
	})
}

// runE8 reproduces §6.2's two arguments: (1) MDL is half the audit
// interval, so MTTDL grows nearly linearly in audit frequency until the
// repair floor; (2) auditing offline (tape) replicas is slow, expensive,
// and itself a fault source, so online disk replicas win — the paper's
// "Would it be better to replicate an archive on tape or on disk? (Disk)".
func runE8(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E8", Title: "Audit strategy economics (§6.2)"}

	// Part 1: scrub-frequency sweep through the model at paper scale.
	sweep := report.NewTable("Scrub frequency vs reliability (paper §5.4 parameters, eq 7 clamped)",
		"audits/year", "MDL (hours)", "MTTDL (years)", "P(loss in 50y)")
	var xs, ys []float64
	for _, perYear := range []float64{0, 0.5, 1, 2, 3, 6, 12, 26, 52} {
		p := model.PaperNoScrub().WithScrubsPerYear(perYear)
		mttdl := p.MTTDL()
		sweep.MustAddRow(perYear, p.MDL, model.Years(mttdl),
			model.FaultProbability(model.YearsToHours(50), mttdl))
		if perYear > 0 {
			xs = append(xs, perYear)
			ys = append(ys, model.Years(mttdl))
		}
	}
	res.Tables = append(res.Tables, sweep)
	var plot report.LinePlot
	plot.Title = "MTTDL vs audit frequency (log-log)"
	plot.XLabel = "audits per year"
	plot.YLabel = "MTTDL years"
	plot.LogX, plot.LogY = true, true
	plot.MustAdd(report.Series{Name: "clamped eq 7", X: xs, Y: ys})
	res.Plots = append(res.Plots, &plot)
	res.addNote("MTTDL grows ~linearly with audit frequency while MDL dominates MRL; the paper's 3x/year already buys ~190x over never auditing")

	// Part 2: disk vs tape replicas, simulated with the media models.
	disk := storage.DiskMedia(storage.Barracuda200(), 1e-7)
	tape := storage.TapeShelf(400, 80, 24, 2e-3, 1e-3, 35)

	type mediaPlan struct {
		label         string
		media         storage.Media
		auditsPerYear float64
	}
	plans := []mediaPlan{
		// Disk can afford frequent automatic audits.
		{"disk mirror, audit 12x/yr", disk, 12},
		// Tape at the same audit budget in dollars is audited rarely.
		{"tape mirror, audit 1x/yr", tape, 1},
		// Even giving tape the same audit *frequency*, handling faults
		// bite.
		{"tape mirror, audit 12x/yr", tape, 12},
	}
	// Fault means are scaled down 10x from the paper's so that the
	// side-effect-bearing (eager) simulation stays affordable; the
	// disk/tape comparison depends on ratios, not absolute scales.
	const scale = 10
	cmp := report.NewTable("Disk vs tape mirrored replicas, Monte Carlo (fault means = paper/10)",
		"plan", "MTTDL (years)", "audit cost/replica-year ($)", "audit-induced faults/1000 trials")
	for _, pl := range plans {
		strat, err := scrub.NewPeriodic(pl.auditsPerYear, 0)
		if err != nil {
			return nil, err
		}
		rep, err := repair.Automated(pl.media.RepairHours+model.PaperMRV, pl.media.RepairHours+model.PaperMRV, 0)
		if err != nil {
			return nil, err
		}
		c := sim.Config{
			Replicas:              2,
			VisibleMean:           model.PaperMV / scale,
			LatentMean:            model.PaperML / scale,
			Scrub:                 strat,
			Repair:                rep,
			Correlation:           faults.Independent{},
			AuditLatentFaultProb:  pl.media.ReadWearFaultProb,
			AuditVisibleFaultProb: pl.media.HandlingFaultProb,
		}
		runner, err := sim.NewRunner(c)
		if err != nil {
			return nil, err
		}
		// Precision-targeted: stop once the MTTDL interval is within 8%,
		// capped at the historical 300-trial budget.
		est, err := runner.Estimate(cfg.adaptiveOptions(300, 0.08))
		if err != nil {
			return nil, err
		}
		cmp.MustAddRow(pl.label,
			model.Years(est.MTTDL.Point),
			pl.auditsPerYear*pl.media.AuditCost,
			float64(est.Stats.AuditInduced)/float64(est.Trials)*1000)
	}
	res.Tables = append(res.Tables, cmp)
	res.addNote("tape audits cost ~$%.0f per pass against ~$0 for disk, and each handling cycle risks faults (%.1f%% visible, %.2f%% wear) — §6.2's double penalty",
		tape.AuditCost, 100*tape.HandlingFaultProb, 100*tape.ReadWearFaultProb)
	res.addNote("periodic beats random auditing 2x on MDL at equal budget (scrub.TestPeriodicBeatsPoissonAtEqualBudget)")
	return res, nil
}
