package experiments

import (
	"math"

	"repro/internal/report"
	"repro/internal/storage"
)

func init() {
	register(Experiment{
		ID:     "E15",
		Title:  "Heterogeneous fleets: mixed consumer+enterprise replicas and a disk+tape tiered archive",
		Source: "§6.1–§6.2",
		Run:    runE15,
	})
}

// fleetScale compresses the drives' ~10⁶-hour fault scales into a
// Monte-Carlo-affordable regime: all means divide by this factor, which
// preserves every ratio the §6.1 comparison turns on (MTTF gap, latent
// factor, scrub-to-repair ratios) while letting run-to-loss trials
// finish in milliseconds.
const fleetScale = 300

// scaledDiskSpec is storage.DiskSpec with the time axis divided by
// fleetScale and an audit period of 200 scaled hours.
func scaledDiskSpec(d storage.DriveSpec) storage.Spec {
	s := storage.DiskSpec(d, 0)
	s.VisibleMean /= fleetScale
	s.LatentMean /= fleetScale
	s.ScrubsPerYear = 8760.0 / 200 // every 200 scaled hours
	if s.RepairHours < 2 {
		s.RepairHours = 2 // floor: dispatch + copy never beats 2 scaled hours
	}
	return s
}

// runE15 exercises the per-replica spec machinery end-to-end: §6.1's
// consumer-vs-enterprise argument replayed as three-replica fleets
// (pure and mixed), and §6.2's online/offline argument as a disk+tape
// tiered archive. The analytic model cannot express either mix — its
// parameters are fleet-wide scalars — so this is pure simulator
// territory, and the experiment that justifies sim.Config.Specs.
func runE15(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E15", Title: "Heterogeneous replica fleets (§6.1–§6.2)"}

	consumer := scaledDiskSpec(storage.Barracuda200())
	enterprise := scaledDiskSpec(storage.Cheetah146())

	// Part 1: pure vs mixed consumer/enterprise three-replica fleets.
	// Hardware $ prices a 1 TB archive from the §6.1 per-GB quotes.
	const archiveGB = 1000
	fleets := []struct {
		label string
		specs []storage.Spec
	}{
		{"3x consumer", []storage.Spec{consumer, consumer, consumer}},
		{"2 consumer + 1 enterprise", []storage.Spec{consumer, consumer, enterprise}},
		{"1 consumer + 2 enterprise", []storage.Spec{consumer, enterprise, enterprise}},
		{"3x enterprise", []storage.Spec{enterprise, enterprise, enterprise}},
	}
	prices := map[string]float64{
		consumer.Label:   storage.Barracuda200().PricePerGB * archiveGB,
		enterprise.Label: storage.Cheetah146().PricePerGB * archiveGB,
	}
	mixTbl := report.NewTable("Mixed consumer/enterprise fleets (r=3, scaled time; 1 TB archive hardware $)",
		"fleet", "MTTDL (scaled h)", "hardware $", "$ per MTTDL-hour")
	var mttdls []float64
	for _, f := range fleets {
		c, err := storage.FleetConfig(f.specs...)
		if err != nil {
			return nil, err
		}
		mttdl, err := estimateMTTDL(c, cfg, cfg.trials(800))
		if err != nil {
			return nil, err
		}
		var cost float64
		for _, s := range f.specs {
			cost += prices[s.Label]
		}
		mixTbl.MustAddRow(f.label, mttdl, cost, cost/mttdl)
		mttdls = append(mttdls, mttdl)
	}
	res.Tables = append(res.Tables, mixTbl)
	res.addNote("MTTDL rises monotonically with enterprise share (%.3g → %.3g scaled h) while hardware cost rises %.1fx — each enterprise substitution buys less reliability per dollar, §6.1's conclusion extended to mixed fleets",
		mttdls[0], mttdls[len(mttdls)-1], storage.PriceRatio(storage.Barracuda200(), storage.Cheetah146()))
	if upgrade, premium := mttdls[1]/mttdls[0], (prices[consumer.Label]*2+prices[enterprise.Label])/(prices[consumer.Label]*3); !math.IsNaN(upgrade) {
		res.addNote("swapping one consumer replica for enterprise multiplies MTTDL by %.2f at %.1fx the hardware cost", upgrade, premium)
	}

	// Part 2: disk+tape tiered archive. The tape replica is offline:
	// audited rarely (retrieval + mounting is expensive), repaired
	// slowly (handling), but on a medium whose fault clock is slower
	// and independent of the disk fleet's.
	tape := storage.OfflineSpec(
		storage.TapeShelf(200, 80, 24, 0.001, 0.001, 15),
		3*consumer.VisibleMean, // shelved media dodge the in-service wear channels
		3*consumer.LatentMean,
		8760.0/2000, // audited every 2000 scaled hours: ten times rarer than disk
	)
	tape.RepairHours = 24 / 10.0 // retrieve+rewrite, scaled like the disk floor

	tiers := []struct {
		label string
		specs []storage.Spec
	}{
		{"2x disk (mirror)", []storage.Spec{consumer, consumer}},
		{"2x disk + 1 tape", []storage.Spec{consumer, consumer, tape}},
		{"3x disk", []storage.Spec{consumer, consumer, consumer}},
	}
	tierTbl := report.NewTable("Disk+tape tiered archive (scaled time; audit $ at §6.2 per-pass costs)",
		"tier", "MTTDL (scaled h)", "audit $/1000 scaled h")
	auditDollars := func(specs []storage.Spec) float64 {
		var perKh float64
		for _, s := range specs {
			passes := s.ScrubsPerYear / 8760 * 1000
			if s.Label == tape.Label {
				perKh += passes * 15 // §6.2 retrieval/mount/return per pass
			} else {
				perKh += passes * 0.05 // online scrub: power + wear
			}
		}
		return perKh
	}
	var tierMTTDL []float64
	for _, f := range tiers {
		c, err := storage.FleetConfig(f.specs...)
		if err != nil {
			return nil, err
		}
		mttdl, err := estimateMTTDL(c, cfg, cfg.trials(800))
		if err != nil {
			return nil, err
		}
		tierTbl.MustAddRow(f.label, mttdl, auditDollars(f.specs))
		tierMTTDL = append(tierMTTDL, mttdl)
	}
	res.Tables = append(res.Tables, tierTbl)
	res.addNote("adding a rarely-audited tape to a disk mirror multiplies MTTDL by %.1f vs a third disk's %.1fx: the tape's slower fault clock roughly offsets its ten-times-longer detection lag (§6.2), and its audit spend is two orders of magnitude lower per pass only because passes are rare",
		tierMTTDL[1]/tierMTTDL[0], tierMTTDL[2]/tierMTTDL[0])
	res.addNote("the analytic model has no vocabulary for either mix: its MV/ML/MDL are fleet-wide scalars, so heterogeneous fleets are simulator-only territory (sim.Config.Specs)")
	return res, nil
}
