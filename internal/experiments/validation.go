package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/report"
	"repro/internal/scenario"
)

func init() {
	register(Experiment{
		ID:     "E9",
		Title:  "Monte Carlo validation of the closed-form mirrored MTTDL (eq 8) across a parameter grid",
		Source: "§5.3, eq 8",
		Run:    runE9,
	})
}

// e9Case is one grid point: a physical configuration whose simulated
// MTTDL is compared against the paper's closed form (adjusted for the
// first-fault convention) and against the Patterson baseline.
type e9Case struct {
	label            string
	mv, ml, mrv, mrl float64
	scrubsPerYear    float64 // 0 = no scrubbing
	alpha            float64
	trials           int
}

// runE9 sweeps the model's operating regimes. The grid is a declarative
// scenario document — one zip block pairing every physical parameter
// per cell — expanded and executed through the same path as `ltsim
// -scenario` and the daemon's scenario-driven /sweep. In every cell the
// physical simulation should agree with eq 7/8 divided by the replica
// count (the paper counts first faults at rate 1/MV for the pair; the
// physical pair sees 2/MV — DESIGN.md §4), up to the small-window
// approximations.
func runE9(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E9", Title: "Model-vs-simulation validation grid (eq 8)"}
	grid := []e9Case{
		{"visible dominated", 1000, 1e8, 10, 10, 8760.0 / 100, 1, 2500},
		{"latent dominated, scrubbed", 1e7, 1000, 5, 5, 8760.0 / 100, 1, 2500},
		{"mixed rates", 2000, 1500, 20, 20, 8760.0 / 200, 1, 2500},
		{"correlated alpha=0.1", 1000, 1e8, 10, 10, 8760.0 / 100, 0.1, 2500},
		{"latent, slow audit", 1e7, 2000, 5, 5, 8760.0 / 1000, 1, 2000},
	}

	// Each zip axis carries one parameter column of the grid; the axes
	// advance together, one expanded point per validation cell.
	zip := []scenario.Axis{
		{Param: "visible_mean_hours"}, {Param: "latent_mean_hours"},
		{Param: "repair_visible_hours"}, {Param: "repair_latent_hours"},
		{Param: "scrubs_per_year"}, {Param: "alpha"},
		{Param: "trials"}, {Param: "max_trials"},
	}
	budgets := make([]int, len(grid))
	for i, g := range grid {
		opt := adaptiveSweepOptions(cfg.Seed, cfg.trials(g.trials), 0.04)
		budgets[i] = opt.MaxTrials
		for j, v := range []float64{ // one value per zip axis, same order
			g.mv, g.ml, g.mrv, g.mrl, g.scrubsPerYear, g.alpha,
			float64(opt.Trials), float64(opt.MaxTrials),
		} {
			zip[j].Values = append(zip[j].Values, v)
		}
	}
	doc := scenario.Document{
		V:    scenario.Version,
		Name: "E9-validation-grid",
		Base: scenario.EstimateRequest{Replicas: 2, Seed: &cfg.Seed, TargetRelWidth: 0.04},
		Zip:  zip,
	}

	points, ests, err := runScenario(doc)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Simulated vs closed-form MTTDL (hours); model = clamped eq 7 / 2; runs stop at 4% CI half-width",
		"scenario", "trials", "sim MTTDL", "sim 95% CI half-width", "model/2", "sim ÷ (model/2)", "patterson/2")
	worst := 0.0
	saved := 0
	for i, g := range grid {
		c, _, err := points[i].Request.Build()
		if err != nil {
			return nil, err
		}
		est := ests[i]
		saved += budgets[i] - est.Trials
		adjusted := c.ModelParams().MTTDL() / 2
		ratio := est.MTTDL.Point / adjusted
		patterson := baseline.PattersonRAID{
			DiskMTTF: g.mv, DiskMTTR: g.mrv, TotalDisks: 2, GroupSize: 2,
		}.MTTDL()
		tbl.MustAddRow(g.label, est.Trials, est.MTTDL.Point, est.MTTDL.HalfWidth(), adjusted, ratio, patterson)
		if d := math.Abs(ratio - 1); d > worst {
			worst = d
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.addNote("worst sim/model deviation %.0f%% — within the model's small-window approximations (window dwell time and exponential saturation are the residuals)", worst*100)
	res.addNote("precision-targeted runs (4%% relative CI half-width) spent %d fewer trials than the fixed grid budget", saved)
	res.addNote("grid defined as scenario document \"E9-validation-grid\": eight zip axes advancing together, one point per cell, expanded by scenario.Expand — the same path behind `ltsim -scenario` and the daemon's scenario-driven /sweep")
	res.addNote("the Patterson baseline matches only the visible-dominated row; everywhere else it overstates MTTDL because it prices neither latent faults nor correlation (§4, §5)")
	return res, nil
}
