package experiments

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E9",
		Title:  "Monte Carlo validation of the closed-form mirrored MTTDL (eq 8) across a parameter grid",
		Source: "§5.3, eq 8",
		Run:    runE9,
	})
}

// e9Case is one grid point: a physical configuration whose simulated
// MTTDL is compared against the paper's closed form (adjusted for the
// first-fault convention) and against the Patterson baseline.
type e9Case struct {
	label            string
	mv, ml, mrv, mrl float64
	scrubInterval    float64 // 0 = no scrubbing
	alpha            float64
	trials           int
}

// runE9 sweeps the model's operating regimes. In every cell the
// physical simulation should agree with eq 7/8 divided by the replica
// count (the paper counts first faults at rate 1/MV for the pair; the
// physical pair sees 2/MV — DESIGN.md §4), up to the small-window
// approximations.
func runE9(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E9", Title: "Model-vs-simulation validation grid (eq 8)"}
	grid := []e9Case{
		{"visible dominated", 1000, 1e8, 10, 10, 100, 1, 2500},
		{"latent dominated, scrubbed", 1e7, 1000, 5, 5, 100, 1, 2500},
		{"mixed rates", 2000, 1500, 20, 20, 200, 1, 2500},
		{"correlated alpha=0.1", 1000, 1e8, 10, 10, 100, 0.1, 2500},
		{"latent, slow audit", 1e7, 2000, 5, 5, 1000, 1, 2000},
	}
	tbl := report.NewTable("Simulated vs closed-form MTTDL (hours); model = clamped eq 7 / 2; runs stop at 4% CI half-width",
		"scenario", "trials", "sim MTTDL", "sim 95% CI half-width", "model/2", "sim ÷ (model/2)", "patterson/2")
	worst := 0.0
	saved := 0
	for _, g := range grid {
		rep, err := repair.Automated(g.mrv, g.mrl, 0)
		if err != nil {
			return nil, err
		}
		var strat scrub.Strategy = scrub.None{}
		if g.scrubInterval > 0 {
			strat = scrub.Periodic{Interval: g.scrubInterval}
		}
		var corr faults.Correlation = faults.Independent{}
		if g.alpha < 1 {
			a, err := faults.NewAlphaCorrelation(g.alpha)
			if err != nil {
				return nil, err
			}
			corr = a
		}
		c := sim.Config{
			Replicas:    2,
			VisibleMean: g.mv,
			LatentMean:  g.ml,
			Scrub:       strat,
			Repair:      rep,
			Correlation: corr,
		}
		runner, err := sim.NewRunner(c)
		if err != nil {
			return nil, err
		}
		// Precision-targeted: each cell runs until its MTTDL interval is
		// tight enough to judge the model, instead of burning a fixed
		// budget on easy cells.
		est, err := runner.Estimate(cfg.adaptiveOptions(g.trials, 0.04))
		if err != nil {
			return nil, err
		}
		saved += cfg.trials(g.trials) - est.Trials
		adjusted := c.ModelParams().MTTDL() / 2
		ratio := est.MTTDL.Point / adjusted
		patterson := baseline.PattersonRAID{
			DiskMTTF: g.mv, DiskMTTR: g.mrv, TotalDisks: 2, GroupSize: 2,
		}.MTTDL()
		tbl.MustAddRow(g.label, est.Trials, est.MTTDL.Point, est.MTTDL.HalfWidth(), adjusted, ratio, patterson)
		if d := math.Abs(ratio - 1); d > worst {
			worst = d
		}
	}
	res.Tables = append(res.Tables, tbl)
	res.addNote("worst sim/model deviation %.0f%% — within the model's small-window approximations (window dwell time and exponential saturation are the residuals)", worst*100)
	res.addNote("precision-targeted runs (4%% relative CI half-width) spent %d fewer trials than the fixed grid budget", saved)
	res.addNote("the Patterson baseline matches only the visible-dominated row; everywhere else it overstates MTTDL because it prices neither latent faults nor correlation (§4, §5)")
	return res, nil
}
