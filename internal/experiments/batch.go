package experiments

import (
	"repro/internal/aging"
	"repro/internal/model"
	"repro/internal/report"
)

func init() {
	register(Experiment{
		ID:     "E14",
		Title:  "Hardware-batch aging: same-batch mirrors vs rolling procurement under bathtub mortality",
		Source: "§6.5 (hardware diversity)",
		Run:    runE14,
	})
}

// runE14 quantifies §6.5's hardware-batch warning: drives from one batch
// sit at the same point of the bathtub curve, so under wear-out mortality
// their failures cluster and the mirror suffers correlated double faults
// that the memoryless model cannot express. Rolling procurement staggers
// the ages and dissolves the correlation. The Weibull shape sweeps from
// memoryless (k=1, batch age irrelevant) to sharply clustered mortality
// (k=8).
func runE14(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E14", Title: "Batch aging and rolling procurement (§6.5)"}
	const (
		meanLife = 5 * model.HoursPerYear // 5-year service life
		repairH  = 100.0                  // rebuild + replacement window
		horizon  = 6 * model.HoursPerYear // one procurement generation
	)
	trials := cfg.trials(20000)

	tbl := report.NewTable("P(double fault within 6 years) for a mirrored pair, by mortality shape",
		"weibull shape", "same batch", "staggered half-life", "batch penalty", "implied alpha")
	var xs, penalties []float64
	for _, shape := range []float64{1, 2, 4, 8} {
		same, err := aging.SimulatePair(aging.SameBatch(shape, meanLife, repairH, 0), trials, horizon, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		stag, err := aging.SimulatePair(aging.RollingProcurement(shape, meanLife, repairH, 0.5), trials, horizon, cfg.Seed+18)
		if err != nil {
			return nil, err
		}
		pSame := same.DoubleFaultProbability()
		pStag := stag.DoubleFaultProbability()
		penalty := pSame / pStag
		// Read the clustering back as the paper's alpha: the staggered
		// pair plays the role of the independent baseline.
		alphaImplied := pStag / pSame
		tbl.MustAddRow(shape, pSame, pStag, penalty, alphaImplied)
		xs = append(xs, shape)
		penalties = append(penalties, penalty)
	}
	res.Tables = append(res.Tables, tbl)

	var plot report.LinePlot
	plot.Title = "Same-batch double-fault penalty vs mortality shape"
	plot.XLabel = "weibull shape k"
	plot.YLabel = "penalty (x)"
	plot.MustAdd(report.Series{Name: "same-batch / staggered", X: xs, Y: penalties})
	res.Plots = append(res.Plots, &plot)

	res.addNote("k=1 (memoryless): batch age is irrelevant, penalty ~1 — the regime where the paper's exponential model lives")
	res.addNote("k>=4: same-batch mirrors cluster their wear-out failures; rolling procurement is the free independence lever of §6.5")
	res.addNote("the implied alpha column shows batch aging alone pushing correlation well below 1 without any shared component at all")
	return res, nil
}
