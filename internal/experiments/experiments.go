// Package experiments regenerates every figure and numeric claim of the
// paper's analysis (§5.4–§6.6), one registered experiment per item. Each
// experiment produces text tables and ASCII plots plus commentary notes
// recording paper-vs-measured values; cmd/ltexp renders them and the root
// bench_test.go exposes each as a benchmark.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// recorded outcomes.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/report"
	"repro/internal/sim"
)

// RunConfig scales an experiment run.
type RunConfig struct {
	// Seed fixes all Monte Carlo randomness.
	Seed uint64
	// Quick reduces Monte Carlo trial counts for smoke tests and
	// benchmarks; results stay directionally correct with wider error
	// bars.
	Quick bool
}

// trials picks a trial budget.
func (c RunConfig) trials(full int) int {
	if c.Quick {
		q := full / 10
		if q < 60 {
			q = 60
		}
		return q
	}
	return full
}

// adaptiveOptions returns precision-targeted Monte Carlo options for one
// sweep cell: the run stops at the first batch boundary where the
// relevant interval's relative half-width reaches targetRel, bounded by
// the cell's historical budget (scaled down in Quick mode, so sweeps are
// never slower than their fixed-budget ancestors) and floored at a tenth
// of it so an early boundary cannot stop on a fluke. Adaptive runs are
// deterministic in (Seed, target, budget, batch size), so experiment
// output stays reproducible.
func (c RunConfig) adaptiveOptions(full int, targetRel float64) sim.Options {
	return adaptiveSweepOptions(c.Seed, c.trials(full), targetRel)
}

// adaptiveSweepOptions is adaptiveOptions over a pre-scaled budget, for
// call sites that already applied RunConfig.trials.
func adaptiveSweepOptions(seed uint64, budget int, targetRel float64) sim.Options {
	floor := budget / 10
	if floor < 60 {
		floor = 60
	}
	if floor > budget {
		floor = budget
	}
	return sim.Options{
		Seed:           seed,
		Trials:         floor,
		MaxTrials:      budget,
		TargetRelWidth: targetRel,
	}
}

// Result is an experiment's rendered output.
type Result struct {
	// ID is the experiment identifier (F1, F2, E1..E12).
	ID string
	// Title describes what was reproduced.
	Title string
	// Tables holds the regenerated tables.
	Tables []*report.Table
	// Plots holds the regenerated figures.
	Plots []*report.LinePlot
	// Notes records paper-vs-measured commentary, one finding per line.
	Notes []string
}

// addNote appends a formatted note.
func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is one registered reproduction target.
type Experiment struct {
	// ID is the DESIGN.md §3 identifier.
	ID string
	// Title summarizes the target.
	Title string
	// Source cites the paper section/figure.
	Source string
	// Run executes the experiment.
	Run func(RunConfig) (*Result, error)
}

var registry []Experiment

// register adds an experiment at package init.
func register(e Experiment) {
	registry = append(registry, e)
}

// All returns the experiments in DESIGN.md order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts F1, F2 first, then E1..E12 numerically.
func orderKey(id string) int {
	if len(id) < 2 {
		return 1 << 20
	}
	var n int
	if _, err := fmt.Sscanf(id[1:], "%d", &n); err != nil {
		return 1 << 20
	}
	if id[0] == 'F' {
		return n
	}
	return 100 + n
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
