package experiments

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E13",
		Title:  "Erasure coding vs replication at equal storage overhead (Weatherspoon comparison)",
		Source: "§7 (related work: Weatherspoon & Kubiatowicz; OceanStore)",
		Run:    runE13,
	})
}

// runE13 reproduces the §7-surveyed comparison the paper positions its
// model against: at equal storage overhead, an m-of-n erasure code
// tolerates n-m simultaneous fragment losses where r-way replication
// tolerates r-1, so the code's MTTDL grows combinatorially. Both the
// exact birth-death model and the event-driven simulator (MinIntact=m)
// are shown; the paper's own caveat — that this model prices neither
// latent nor correlated faults — is then demonstrated by turning on a
// latent channel with slow auditing, which erodes most of the erasure
// advantage.
func runE13(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E13", Title: "Erasure coding vs replication (§7)"}

	const (
		mttf = 1000.0 // fragment/replica MTTF, hours (scaled for MC)
		mttr = 25.0   // exponential repair mean, hours
	)
	vis, err := rng.NewExponential(mttr)
	if err != nil {
		return nil, err
	}
	pol := repair.Policy{Visible: vis, Latent: vis}

	tbl := report.NewTable("Equal 2x storage overhead, visible faults only (MTTF 1000 h, exp repair 25 h)",
		"scheme", "tolerates", "markov MTTDL (h)", "sim MTTDL (h)", "sim/markov")
	configs := []struct {
		label string
		n, m  int
	}{
		{"2-way replication", 2, 1},
		{"2-of-4 erasure", 4, 2},
		{"4-of-8 erasure", 8, 4},
	}
	var overheadNote string
	for _, sc := range configs {
		markov := baseline.MarkovErasure{N: sc.n, M: sc.m, FragmentMTTF: mttf, FragmentMTTR: mttr}
		want, err := markov.MTTDL()
		if err != nil {
			return nil, err
		}
		c := sim.Config{
			Replicas:    sc.n,
			MinIntact:   sc.m,
			VisibleMean: mttf,
			LatentMean:  math.Inf(1),
			Scrub:       scrub.None{},
			Repair:      pol,
			Correlation: faults.Independent{},
		}
		// The widest code's MTTDL is large; censor the simulation and
		// use the restricted mean only for the two cheap rows, the
		// Markov value carries the wide row.
		var got float64
		if sc.n <= 4 {
			got, err = estimateMTTDL(c, cfg, cfg.trials(1500))
			if err != nil {
				return nil, err
			}
		} else {
			got = math.NaN() // reported as Markov-only
		}
		ratio := got / want
		tbl.MustAddRow(sc.label, fmt.Sprintf("%d losses", sc.n-sc.m), want, got, ratio)
		overheadNote = "all rows store 2 bytes per byte of data"
	}
	res.Tables = append(res.Tables, tbl)
	res.addNote("%s; the erasure advantage at equal overhead is combinatorial (Weatherspoon & Kubiatowicz)", overheadNote)

	// The paper's rejoinder: the advantage assumes visible, independent
	// fragment faults. Add a latent channel with slow audits and the
	// code's extra tolerance is consumed by undetected fragments.
	latentTbl := report.NewTable("Same schemes with latent faults (ML = 2000 h) and audits every 500 h",
		"scheme", "sim MTTDL (h)", "penalty vs visible-only")
	for _, sc := range configs[:2] {
		c := sim.Config{
			Replicas:    sc.n,
			MinIntact:   sc.m,
			VisibleMean: mttf,
			LatentMean:  2000,
			Scrub:       scrub.Periodic{Interval: 500},
			Repair:      pol,
			Correlation: faults.Independent{},
		}
		withLatent, err := estimateMTTDL(c, cfg, cfg.trials(1200))
		if err != nil {
			return nil, err
		}
		visOnly := c
		visOnly.LatentMean = math.Inf(1)
		visOnly.Scrub = scrub.None{}
		base, err := estimateMTTDL(visOnly, cfg, cfg.trials(1200))
		if err != nil {
			return nil, err
		}
		latentTbl.MustAddRow(sc.label, withLatent, base/withLatent)
	}
	res.Tables = append(res.Tables, latentTbl)
	res.addNote("latent faults tax every scheme; fragment counts do not audit themselves — the paper's case for modeling MDL explicitly rather than adding redundancy (§5.4, §7)")
	return res, nil
}
