package experiments

import (
	"math"

	"repro/internal/costs"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/storage"
)

func init() {
	register(Experiment{
		ID:     "E7",
		Title:  "Consumer vs enterprise drives: bit errors, fault probabilities, and the cost of reliability",
		Source: "§6.1",
		Run:    runE7,
	})
}

// runE7 reproduces §6.1: the Barracuda/Cheetah spec comparison, the
// "about 8 vs about 6 irrecoverable bit errors over a 99%-idle 5-year
// life" arithmetic, and the economic conclusion that consumer replicas
// beat enterprise drives for archival storage.
func runE7(RunConfig) (*Result, error) {
	res := &Result{ID: "E7", Title: "Drive economics (§6.1)"}
	b, c := storage.Barracuda200(), storage.Cheetah146()

	spec := report.NewTable("Datasheet comparison (paper quotes in parentheses where they differ)",
		"drive", "class", "GB", "$/GB", "5yr fault prob", "derived MTTF (h)", "UBER")
	for _, d := range []storage.DriveSpec{b, c} {
		spec.MustAddRow(d.Name, d.Class.String(), d.CapacityGB, d.PricePerGB,
			d.ServiceLifeFaultProb, d.MTTFHours(), d.UBER)
	}
	res.Tables = append(res.Tables, spec)
	res.addNote("price ratio %.1fx per byte (paper: 'about 14 times')", storage.PriceRatio(b, c))
	res.addNote("Cheetah derived MTTF %.3g h matches §5.4's MV = 1.4e6 h", c.MTTFHours())

	const idle = 0.01 // 99% idle
	bitErr := report.NewTable("Irrecoverable bit errors over a 99%-idle 5-year life",
		"drive", "at sustained rate", "at interface rate", "paper says")
	bitErr.MustAddRow(b.Name, b.LifetimeBitErrors(idle, 0), b.LifetimeBitErrors(idle, b.InterfaceMBps), "about 8")
	bitErr.MustAddRow(c.Name, c.LifetimeBitErrors(idle, 0), c.LifetimeBitErrors(idle, c.InterfaceMBps), "about 6")
	res.Tables = append(res.Tables, bitErr)
	res.addNote("Barracuda reproduces the paper's ~8 at its 65 MB/s sustained rate (%.1f)", b.LifetimeBitErrors(idle, 0))
	res.addNote("Cheetah shows %.1f at 300 MB/s and %.1f at sustained rate; the printed 6 needs a ~475 MB/s effective rate no 2005 datasheet supports — the paper's qualitative point (money does not buy away bit errors) survives either way",
		c.LifetimeBitErrors(idle, c.InterfaceMBps), c.LifetimeBitErrors(idle, 0))

	// The 14x-cost question asked as the paper asks it: what does the
	// money buy? Halved in-service fault probability, 3/4 the bit
	// errors — versus what the same money buys in consumer replicas.
	frontier := report.NewTable("Cost vs modeled reliability, 10 TB archive, 10-year mission, scrub 3x/yr, alpha=0.1",
		"plan", "$/TB-year", "MTTDL (years)", "P(loss in mission)")
	plans := []struct {
		label    string
		drive    storage.DriveSpec
		replicas int
	}{
		{"consumer mirror (r=2)", b, 2},
		{"enterprise mirror (r=2)", c, 2},
		{"consumer triple (r=3)", b, 3},
		{"consumer quad (r=4)", b, 4},
	}
	for _, pl := range plans {
		plan := costs.Plan{
			Drive:                 pl.drive,
			Replicas:              pl.replicas,
			ArchiveGB:             10000,
			MissionYears:          10,
			ScrubsPerYear:         3,
			AuditCostPerPass:      0.05,
			PowerWattsPerDrive:    10,
			PowerCostPerKWh:       0.10,
			AdminCostPerDriveYear: 20,
		}
		params := model.Params{
			MV:    pl.drive.MTTFHours(),
			ML:    pl.drive.MTTFHours() / model.SchwarzLatentFactor,
			MRV:   pl.drive.FullScanHours(),
			MRL:   pl.drive.FullScanHours(),
			MDL:   model.PaperScrubMDL,
			Alpha: model.PaperAlpha,
		}
		fp, err := costs.Evaluate(pl.label, plan, params)
		if err != nil {
			return nil, err
		}
		frontier.MustAddRow(fp.Label, fp.CostPerTBYear, fp.MTTDLYears, fp.LossProb)
	}
	res.Tables = append(res.Tables, frontier)

	// Quantify the paper's closing §6.1 sentence under eq 12 for both
	// (its ideal-detection assumptions overstate absolutes but cancel in
	// the comparison).
	consumerTriple := model.Params{MV: b.MTTFHours(), ML: b.MTTFHours() / model.SchwarzLatentFactor,
		MRV: b.FullScanHours(), MRL: b.FullScanHours(), MDL: model.PaperScrubMDL, Alpha: model.PaperAlpha}
	enterpriseMirror := consumerTriple
	enterpriseMirror.MV = c.MTTFHours()
	enterpriseMirror.ML = c.MTTFHours() / model.SchwarzLatentFactor
	gain := consumerTriple.ReplicatedMTTDL(3) / enterpriseMirror.ReplicatedMTTDL(2)
	res.addNote("under eq 12, a third consumer replica delivers ~%.0fx the MTTDL of the enterprise mirror at a fraction of the cost — 'the large incremental cost of enterprise drives is hard to justify' (§6.1)",
		math.Max(1, gain))
	return res, nil
}
