package experiments

import (
	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E10",
		Title:  "Strategy side effects: audit wear optimum and buggy automated repair",
		Source: "§6.6",
		Run:    runE10,
	})
}

// runE10 quantifies §6.6's two cautions. First, auditing touches media,
// and touching media causes faults, so MTTDL versus audit frequency has
// an interior optimum instead of "more is better". Second, automated
// repair is software; if each repair can silently plant a latent fault,
// visible faults convert into latent ones, and only auditing wins the
// resulting race.
func runE10(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E10", Title: "Audit wear and buggy repair (§6.6)"}

	// Part 1: audit-frequency sweep with per-pass wear. Scaled system
	// (ML=2000 h) keeps the eager audit path affordable.
	rep, err := repair.Automated(2, 2, 0)
	if err != nil {
		return nil, err
	}
	base := sim.Config{
		Replicas:    2,
		VisibleMean: 20000,
		LatentMean:  2000,
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	sweep := report.NewTable("Audit frequency vs MTTDL with per-pass wear (1% latent + 0.2% visible; ML=2000 h)",
		"audit interval (h)", "MTTDL clean (h)", "MTTDL with wear (h)", "wear penalty")
	var xs, clean, worn []float64
	for _, interval := range []float64{1000, 500, 200, 100, 50, 20} {
		strat := scrub.Periodic{Interval: interval}
		c := base
		c.Scrub = strat
		cleanEst, err := estimateMTTDL(c, cfg, cfg.trials(500))
		if err != nil {
			return nil, err
		}
		w := c
		// Wear plants mostly silent corruption, but a fraction of
		// passes destroys the replica outright (handling, head wear) —
		// the §6.2/§6.6 channel that makes hyperactive auditing lose.
		w.AuditLatentFaultProb = 0.01
		w.AuditVisibleFaultProb = 0.002
		wornEst, err := estimateMTTDL(w, cfg, cfg.trials(500))
		if err != nil {
			return nil, err
		}
		sweep.MustAddRow(interval, cleanEst, wornEst, wornEst/cleanEst)
		xs = append(xs, interval)
		clean = append(clean, cleanEst)
		worn = append(worn, wornEst)
	}
	res.Tables = append(res.Tables, sweep)
	var plot report.LinePlot
	plot.Title = "MTTDL vs audit interval, with and without audit wear (log-log)"
	plot.XLabel = "audit interval hours"
	plot.YLabel = "MTTDL hours"
	plot.LogX, plot.LogY = true, true
	plot.MustAdd(report.Series{Name: "clean audits", X: xs, Y: clean})
	plot.MustAdd(report.Series{Name: "1% wear per pass", X: xs, Y: worn})
	res.Plots = append(res.Plots, &plot)

	// Locate the optimum under wear.
	bestIdx := 0
	for i, v := range worn {
		if v > worn[bestIdx] {
			bestIdx = i
		}
	}
	res.addNote("clean audits: monotone improvement with frequency; with wear the optimum sits at interval ~%.0f h — §6.6's balance point", xs[bestIdx])

	// Part 2: buggy automated repair, with and without auditing. The
	// sweep is a declarative scenario document — a bug-probability ×
	// audit-schedule grid — expanded and executed through the same path
	// as `ltsim -scenario` and the daemon's scenario-driven /sweep.
	bugTbl := report.NewTable("Buggy repair: probability each repair plants a latent fault (MV=2000 h, no latent channel otherwise)",
		"bug probability", "MTTDL no scrub (h)", "MTTDL scrubbed every 200 h (h)")
	bugBase := adaptiveBase(cfg.Seed, cfg.trials(600), 0.08)
	bugBase.Replicas = 2
	bugBase.VisibleMeanHours = 2000
	bugBase.LatentMeanHours = 1e12 // bug-planted faults are the only latent source
	bugBase.RepairVisibleHours = 10
	bugBase.RepairLatentHours = 10
	bugProbs := []float64{0, 0.01, 0.1, 0.5}
	bugDoc := scenario.Document{
		V:    scenario.Version,
		Name: "E10-buggy-repair",
		Base: bugBase,
		Grid: []scenario.Axis{
			{Param: "repair_bug_prob", Values: bugProbs},
			{Param: "scrubs_per_year", Values: []float64{0, 8760.0 / 200}},
		},
	}
	_, bugEsts, err := runScenario(bugDoc)
	if err != nil {
		return nil, err
	}
	// Grid order: bug probability slowest, audit schedule fastest.
	for i, bug := range bugProbs {
		bugTbl.MustAddRow(bug, bugEsts[2*i].MTTDL.Point, bugEsts[2*i+1].MTTDL.Point)
	}
	res.Tables = append(res.Tables, bugTbl)
	res.addNote("without auditing, a 10%% repair bug rate collapses MTTDL toward the single-copy value — 'even visible faults can now turn into latent ones' (§6.6); auditing recovers most of the loss")
	res.addNote("sweep defined as scenario document \"E10-buggy-repair\" (repair_bug_prob × scrubs_per_year grid) executed through scenario.Expand — the same expansion path behind `ltsim -scenario` and the daemon's scenario-driven /sweep")

	// Part 3 (ablation): synchronized vs staggered audit schedules.
	stagTbl, err := staggeredAblation(cfg)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, stagTbl)
	res.addNote("staggering halves the worst-case joint exposure of the pair but leaves mean MTTDL within noise — detection lag, not phase, is what matters (§6.2)")
	return res, nil
}

// staggeredAblation compares synchronized periodic audits against
// schedules offset by half an interval per replica.
func staggeredAblation(cfg RunConfig) (*report.Table, error) {
	rep, err := repair.Automated(2, 2, 0)
	if err != nil {
		return nil, err
	}
	base := sim.Config{
		Replicas:    2,
		VisibleMean: 1e12,
		LatentMean:  2000,
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	interval := 400.0
	sync := base
	sync.Scrub = scrub.Periodic{Interval: interval}
	stag := base
	stag.Scrub = scrub.Periodic{Interval: interval}
	stag.ScrubPerReplica = []scrub.Strategy{
		scrub.Periodic{Interval: interval},
		scrub.Periodic{Interval: interval, Offset: interval / 2},
	}
	tbl := report.NewTable("Synchronized vs staggered audit schedules (interval 400 h)",
		"schedule", "MTTDL (h)")
	a, err := estimateMTTDL(sync, cfg, cfg.trials(800))
	if err != nil {
		return nil, err
	}
	b, err := estimateMTTDL(stag, cfg, cfg.trials(800))
	if err != nil {
		return nil, err
	}
	tbl.MustAddRow("synchronized", a)
	tbl.MustAddRow("staggered half-interval", b)
	return tbl, nil
}
