package experiments

import (
	"math"

	"repro/internal/report"
	"repro/internal/scenario"
)

func init() {
	register(Experiment{
		ID:     "E16",
		Title:  "Rare-event importance sampling: trials to target precision, naive vs failure-biased",
		Source: "§5.1 (simulation method); variance reduction for the reliable regimes of §5.4",
		Run:    runE16,
	})
}

// Rare-regime mirror for the sweep: visible-only faults on a 1000-hour
// mean with fast automated repair, censored at one year. Loss requires
// every replica faulty at once inside a repair window, so the target
// probability falls by orders of magnitude per added replica — exactly
// the regime where naive Monte Carlo burns its whole budget waiting for
// losses and failure biasing is designed to pay off.
const (
	rareMV      = 1000.0
	rareHorizon = 1.0 // years
)

// runE16 measures what the importance-sampling fast path buys: over a
// replicas × repair-speed grid, each cell runs twice — plain Monte
// Carlo and auto-biased — with the same precision target and trial
// budget, and the sweep records the trials each needed to reach the
// target relative CI half-width on P(loss). Both arms are cells of one
// declarative scenario document (the bias axis is just another swept
// parameter), so the whole comparison is replayable through `ltsim
// -scenario` or the daemon's /sweep.
func runE16(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E16", Title: "Rare-event fast path: importance sampling vs naive Monte Carlo"}

	const targetRel = 0.2
	budget := cfg.trials(20000)
	base := adaptiveBase(cfg.Seed, budget, targetRel)
	never := 0.0
	base.ScrubsPerYear = &never
	base.VisibleMeanHours = rareMV
	base.LatentMeanHours = -1 // no latent channel
	base.HorizonYears = rareHorizon

	replicas := []float64{2, 3, 4, 5, 6}
	repairs := []float64{1, 4}
	doc := scenario.Document{
		V:    scenario.Version,
		Name: "E16-rare-event-biasing",
		Base: base,
		Grid: []scenario.Axis{
			{Param: "replicas", Values: replicas},
			{Param: "repair_visible_hours", Values: repairs},
			{Param: "bias", Values: []float64{0, -1}}, // naive, then auto-biased
		},
	}
	_, ests, err := runScenario(doc)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("Trials to a 20% relative CI half-width on P(loss in 1y), naive vs auto-biased",
		"replicas", "repair (h)", "naive trials", "naive P(loss)", "biased trials", "beta", "biased P(loss)", "eff. losses", "trial ratio")
	var xsNaive, ysNaive, xsBiased, ysBiased []float64
	var maxSigma, sumRatio float64
	ratios, biasedEarly, bothCapped := 0, 0, 0
	// Grid order: replicas slowest, repair next, bias fastest — the
	// naive/biased pair for one cell is adjacent.
	for ri, r := range replicas {
		for si, s := range repairs {
			i := (ri*len(repairs) + si) * 2
			naive, biased := ests[i], ests[i+1]

			ratio := float64(naive.Trials) / float64(biased.Trials)
			if biased.Trials < naive.Trials {
				biasedEarly++
			}
			if naive.Trials >= budget && biased.Trials >= budget {
				bothCapped++
			}
			tbl.MustAddRow(int(r), s,
				naive.Trials, naive.LossProb.Point,
				biased.Trials, biased.Bias, biased.LossProb.Point,
				biased.EffectiveSamples, ratio)
			if s == repairs[0] {
				xsNaive = append(xsNaive, r)
				ysNaive = append(ysNaive, float64(naive.Trials))
				xsBiased = append(xsBiased, r)
				ysBiased = append(ysBiased, float64(biased.Trials))
			}
			// Unbiasedness cross-check where both arms actually saw
			// losses: the two estimates should agree within their
			// combined half-widths.
			if naive.LossProb.Point > 0 && biased.LossProb.Point > 0 {
				halfN := (naive.LossProb.Hi - naive.LossProb.Lo) / 2
				halfB := (biased.LossProb.Hi - biased.LossProb.Lo) / 2
				if combined := halfN + halfB; combined > 0 {
					sigma := math.Abs(naive.LossProb.Point-biased.LossProb.Point) / combined
					maxSigma = math.Max(maxSigma, sigma)
				}
				sumRatio += ratio
				ratios++
			}
		}
	}
	res.Tables = append(res.Tables, tbl)

	var plot report.LinePlot
	plot.Title = "Trials to 20% precision vs replica count (repair 1h, log y)"
	plot.XLabel = "replicas"
	plot.YLabel = "trials"
	plot.LogY = true
	plot.MustAdd(report.Series{Name: "naive", X: xsNaive, Y: ysNaive})
	plot.MustAdd(report.Series{Name: "auto-biased", X: xsBiased, Y: ysBiased})
	res.Plots = append(res.Plots, &plot)

	if ratios > 0 {
		res.addNote("where both arms produced estimates they agree within %.2f combined half-widths (unbiasedness cross-check), with the naive arm needing %.1fx the trials on average", maxSigma, sumRatio/float64(ratios))
	}
	res.addNote("in %d of %d cells the biased arm reached the precision target in fewer trials than naive Monte Carlo (cells showing the full %d-trial budget hit the cap without reaching it)", biasedEarly, len(replicas)*len(repairs), budget)
	if bothCapped > 0 {
		res.addNote("%d deep cells capped out in both arms: loss there needs a %d-plus-fault cascade, and the auto β is derived from the model's two-fault window probability, so it under-boosts deep cascades — cascade-aware biasing is an open item", bothCapped, 3)
	}
	res.addNote("the bias axis is an ordinary scenario parameter: the same document replays through ltsim -scenario or the daemon's /sweep, and biased cells cache under canonical keys distinct from their naive twins")
	return res, nil
}
