package experiments

import (
	"math"

	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/scenario"
)

func init() {
	register(Experiment{
		ID:     "E17",
		Title:  "Non-stationary hazards: bathtub fleets vs constant fleets at equal mean fault rate",
		Source: "§5.1 (constant-rate fault processes); temporal-profile extension, docs/MODEL.md",
		Run:    runE17,
	})
}

// Mission under test: a two-way mirror with visible-only faults on a
// 1000-hour mean and fast automated repair, censored at two years. Loss
// needs both replicas down inside one 10-hour repair window, so the
// loss probability tracks the *square* of the instantaneous fault rate
// — exactly the quantity a time profile redistributes while the mean
// rate stays fixed.
const (
	temporalMV      = 1000.0
	temporalRepair  = 10.0
	temporalHorizon = 2.0 // years
)

// runE17 asks whether the fault process's time profile matters on its
// own, holding the mean fault rate fixed: every bathtub arm is
// normalized so its mean rate multiplier over the mission equals 1,
// making it rate-for-rate comparable with the constant (unprofiled)
// fleet. A constant-rate analysis sees the two fleets as identical; the
// simulator should not, because a profile that concentrates faults into
// a wear-out (or burn-in) band raises the chance two replicas are down
// at once — pair overlap scales with the squared instantaneous rate,
// and E[λ(t)²] > (E[λ(t)])² for any non-constant profile.
func runE17(cfg RunConfig) (*Result, error) {
	res := &Result{ID: "E17", Title: "Bathtub vs constant fleets at equal mean fault rate"}

	horizonHours := model.YearsToHours(temporalHorizon)
	trials := cfg.trials(20000)
	seed := cfg.Seed
	base := scenario.EstimateRequest{
		Seed:               &seed,
		Trials:             trials,
		Replicas:           2,
		VisibleMeanHours:   temporalMV,
		LatentMeanHours:    -1, // no latent channel
		RepairVisibleHours: temporalRepair,
		HorizonYears:       temporalHorizon,
	}
	never := 0.0
	base.ScrubsPerYear = &never

	// The constant arm is the same document with no hazard at all.
	constDoc := scenario.Document{V: scenario.Version, Name: "E17-constant", Base: base}
	_, constEst, err := runScenario(constDoc)
	if err != nil {
		return nil, err
	}
	flat := constEst[0]

	// The profiled arms sweep wear-out severity over a fixed bathtub
	// shape: early burn-in at 3x, wear-out from 12000 h at the swept
	// factor, the whole profile normalized to mean multiplier 1 over the
	// mission. hazard.wear_factor is an ordinary scenario axis, so this
	// document replays through ltsim -scenario or the daemon's /sweep.
	wearFactors := []float64{2, 6, 12}
	bathBase := base
	bathBase.Hazard = &scenario.HazardSpec{
		Kind:           "bathtub",
		BurnInHours:    2000,
		BurnInFactor:   3,
		WearOnsetHours: 12000,
		WearFactor:     6,
		NormalizeHours: horizonHours,
	}
	bathDoc := scenario.Document{
		V:    scenario.Version,
		Name: "E17-bathtub",
		Base: bathBase,
		Grid: []scenario.Axis{{Param: "hazard.wear_factor", Values: wearFactors}},
	}
	_, bathEsts, err := runScenario(bathDoc)
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("P(loss in 2y) at equal mean fault rate: constant vs normalized bathtub profiles",
		"fleet", "wear factor", "P(loss)", "95% CI low", "95% CI high", "vs constant")
	tbl.MustAddRow("constant", "-", flat.LossProb.Point, flat.LossProb.Lo, flat.LossProb.Hi, 1.0)
	xs := []float64{}
	ys := []float64{}
	separated := 0
	for i, wf := range wearFactors {
		b := bathEsts[i]
		ratio := math.NaN()
		if flat.LossProb.Point > 0 {
			ratio = b.LossProb.Point / flat.LossProb.Point
		}
		tbl.MustAddRow("bathtub", wf, b.LossProb.Point, b.LossProb.Lo, b.LossProb.Hi, ratio)
		xs = append(xs, wf)
		ys = append(ys, b.LossProb.Point)
		// The acceptance check: a profile with the same mean rate must be
		// measurably different — its CI and the constant arm's disjoint.
		if b.LossProb.Lo > flat.LossProb.Hi || b.LossProb.Hi < flat.LossProb.Lo {
			separated++
		}
	}
	res.Tables = append(res.Tables, tbl)

	var plot report.LinePlot
	plot.Title = "P(loss in 2y) vs wear-out factor (mean fault rate held fixed)"
	plot.XLabel = "wear factor"
	plot.YLabel = "P(loss)"
	plot.MustAdd(report.Series{Name: "bathtub (normalized)", X: xs, Y: ys})
	plot.MustAdd(report.Series{Name: "constant", X: []float64{xs[0], xs[len(xs)-1]}, Y: []float64{flat.LossProb.Point, flat.LossProb.Point}})
	res.Plots = append(res.Plots, &plot)

	res.addNote("every bathtub arm carries the same mean fault rate as the constant fleet (profiles normalized to mean multiplier 1 over the %v-hour mission); a constant-rate analytic model cannot distinguish these fleets", horizonHours)
	res.addNote("%d of %d profiled arms are measurably different from the constant fleet (disjoint 95%% CIs): concentrating the same fault budget into burn-in and wear-out bands changes double-fault overlap, which scales with the squared instantaneous rate", separated, len(wearFactors))
	res.addNote("the sweep is a declarative scenario (hazard.wear_factor axis over a bathtub base): replayable via ltsim -scenario or POST /sweep, each arm cached under its own canonical key")
	return res, nil
}
