package experiments

import (
	"math"

	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "E1",
		Title:  "No-scrub mirrored Cheetahs: MTTDL 32.0 years, 79.0% loss in 50 years",
		Source: "§5.4",
		Run:    func(c RunConfig) (*Result, error) { return runWorkedScenario(c, scenarioE1()) },
	})
	register(Experiment{
		ID:     "E2",
		Title:  "Scrubbing 3x/year: MTTDL 6128.7 years, 0.8% loss in 50 years",
		Source: "§5.4",
		Run:    func(c RunConfig) (*Result, error) { return runWorkedScenario(c, scenarioE2()) },
	})
	register(Experiment{
		ID:     "E3",
		Title:  "Correlation α=0.1: MTTDL 612.9 years, 7.8% loss in 50 years",
		Source: "§5.4",
		Run:    func(c RunConfig) (*Result, error) { return runWorkedScenario(c, scenarioE3()) },
	})
	register(Experiment{
		ID:     "E4",
		Title:  "Negligent latent handling: MTTDL 159.8 years, 26.8% loss in 50 years",
		Source: "§5.4, eq 11",
		Run:    func(c RunConfig) (*Result, error) { return runWorkedScenario(c, scenarioE4()) },
	})
	register(Experiment{
		ID:     "E5",
		Title:  "Correlation factor bounds: 1 ≥ α ≥ 2e-6, five orders of magnitude",
		Source: "§5.4",
		Run:    runE5,
	})
}

// workedScenario binds one §5.4 worked example to its paper values and
// the paper's own evaluation procedure.
type workedScenario struct {
	id, title     string
	params        model.Params
	scrubsPerYear float64
	alpha         float64
	paperYears    float64
	paperLoss     float64
	// paperProcedure evaluates the closed form the paper used for this
	// scenario (clamped eq 7, eq 10, or eq 11).
	paperProcedure func(model.Params) float64
	procedureName  string
	// mcTrials is the full-mode Monte Carlo budget.
	mcTrials int
}

func scenarioE1() workedScenario {
	return workedScenario{
		id: "E1", title: "no scrubbing (MDL unbounded)",
		params: model.PaperNoScrub(), scrubsPerYear: 0, alpha: 1,
		paperYears: 32.0, paperLoss: 0.790,
		paperProcedure: model.Params.MTTDL, procedureName: "eq 7 with P(V2∨L2|L1)=1",
		mcTrials: 3000,
	}
}

func scenarioE2() workedScenario {
	return workedScenario{
		id: "E2", title: "scrub 3x/year (MDL = 1460 h)",
		params: model.PaperScrubbed(), scrubsPerYear: 3, alpha: 1,
		paperYears: 6128.7, paperLoss: 0.008,
		paperProcedure: model.Params.LatentDominatedMTTDL, procedureName: "eq 10",
		mcTrials: 800,
	}
}

func scenarioE3() workedScenario {
	return workedScenario{
		id: "E3", title: "scrub 3x/year, α = 0.1",
		params: model.PaperCorrelated(), scrubsPerYear: 3, alpha: model.PaperAlpha,
		paperYears: 612.9, paperLoss: 0.078,
		paperProcedure: model.Params.LatentDominatedMTTDL, procedureName: "eq 10",
		mcTrials: 1200,
	}
}

func scenarioE4() workedScenario {
	return workedScenario{
		id: "E4", title: "rare latent faults, never audited, α = 0.1",
		params: model.PaperNegligent(), scrubsPerYear: 0, alpha: model.PaperAlpha,
		paperYears: 159.8, paperLoss: 0.268,
		paperProcedure: model.Params.LongLatentWOVMTTDL, procedureName: "eq 11",
		mcTrials: 2500,
	}
}

// runWorkedScenario reproduces one §5.4 example three ways: the paper's
// own closed form, the general clamped eq 7, and the event-driven Monte
// Carlo simulation.
func runWorkedScenario(cfg RunConfig, sc workedScenario) (*Result, error) {
	res := &Result{ID: sc.id, Title: "§5.4 worked example: " + sc.title}
	mission := model.YearsToHours(model.PaperMissionYears)

	paperEval := sc.paperProcedure(sc.params)
	full := sc.params.MTTDL()

	// Monte Carlo on the physical mirror. The latent scenario's ML needs
	// overriding for E4 (PaperConfig uses the Schwarz ratio).
	simCfg, err := sim.PaperConfig(sc.scrubsPerYear, sc.alpha)
	if err != nil {
		return nil, err
	}
	simCfg.LatentMean = sc.params.ML
	runner, err := sim.NewRunner(simCfg)
	if err != nil {
		return nil, err
	}
	est, err := runner.Estimate(sim.Options{Trials: cfg.trials(sc.mcTrials), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	tbl := report.NewTable("MTTDL and 50-year loss probability, paper vs reproduction",
		"quantity", "paper", "paper procedure ("+sc.procedureName+")", "full model (clamped eq 7)", "monte carlo")
	tbl.MustAddRow("MTTDL (years)",
		sc.paperYears,
		model.Years(paperEval),
		model.Years(full),
		model.Years(est.MTTDL.Point))
	tbl.MustAddRow("P(loss in 50y)",
		sc.paperLoss,
		model.FaultProbability(mission, paperEval),
		model.FaultProbability(mission, full),
		model.FaultProbability(mission, est.MTTDL.Point))
	res.Tables = append(res.Tables, tbl)

	ci := report.NewTable("Monte Carlo detail",
		"trials", "MTTDL 95% CI low (years)", "high (years)", "latent faults", "visible faults", "detections")
	ci.MustAddRow(est.Trials,
		model.Years(est.MTTDL.Lo), model.Years(est.MTTDL.Hi),
		est.Stats.LatentFaults, est.Stats.VisibleFaults, est.Stats.Detections)
	res.Tables = append(res.Tables, ci)

	procErr := math.Abs(model.Years(paperEval)-sc.paperYears) / sc.paperYears
	res.addNote("paper procedure reproduces the printed %.1f years within %.2f%%", sc.paperYears, procErr*100)
	res.addNote("physical simulation MTTDL %.1f years vs paper %.1f — the closed forms count first faults at rate 1/MV for the pair instead of 2/MV (DESIGN.md §4)",
		model.Years(est.MTTDL.Point), sc.paperYears)
	if sc.id == "E4" {
		res.addNote("eq 11 applies 1/α to an already-certain window probability; the clamped eq 7 is %.0fx less pessimistic (see model.TestEq11AlphaPessimism)",
			model.Years(full)/model.Years(paperEval))
	}
	return res, nil
}

// runE5 reproduces the §5.4 α-range argument: the reasoned lower bound
// α ≥ 10·MRV/MV and the resulting five-orders-of-magnitude span, swept
// through eq 10.
func runE5(RunConfig) (*Result, error) {
	res := &Result{ID: "E5", Title: "Correlation factor α: bounds and MTTDL impact"}
	p := model.PaperScrubbed()
	bound := p.AlphaLowerBound()

	tbl := report.NewTable("MTTDL under eq 10 as α varies (scrubbed §5.4 scenario)",
		"alpha", "MTTDL (years)", "P(loss in 50y)")
	alphas := []float64{1, 0.1, 0.01, 1e-3, 1e-4, 1e-5, bound}
	var xs, ys []float64
	for _, a := range alphas {
		q := p.WithAlpha(a)
		mttdl := q.LatentDominatedMTTDL()
		tbl.MustAddRow(a, model.Years(mttdl), model.FaultProbability(model.YearsToHours(50), mttdl))
		xs = append(xs, a)
		ys = append(ys, model.Years(mttdl))
	}
	res.Tables = append(res.Tables, tbl)

	var plot report.LinePlot
	plot.Title = "MTTDL vs correlation factor (log-log)"
	plot.XLabel = "alpha"
	plot.YLabel = "MTTDL years"
	plot.LogX, plot.LogY = true, true
	plot.MustAdd(report.Series{Name: "eq 10", X: xs, Y: ys})
	res.Plots = append(res.Plots, &plot)

	res.addNote("α lower bound 10·MRV/MV = %.2e (paper: ~2e-6)", bound)
	res.addNote("range spans %.1f orders of magnitude (paper: at least 5)", -math.Log10(bound))
	res.addNote("correlation divides MTTDL linearly: every decade of α costs a decade of MTTDL (§5.4 third implication)")
	return res, nil
}
