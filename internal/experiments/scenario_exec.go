package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// runScenario expands a declarative scenario document and estimates
// every point in expansion order — the same schema and expansion path
// the ltsimd service (POST /sweep with a scenario) and `ltsim
// -scenario` execute, so an experiment's sweep is a document any
// frontend could replay, not a hand-rolled loop. Points and estimates
// are returned index-aligned.
func runScenario(doc scenario.Document) ([]scenario.Point, []sim.Estimate, error) {
	points, err := scenario.Expand(doc)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: scenario %q: %w", doc.Name, err)
	}
	ests := make([]sim.Estimate, len(points))
	for i, pt := range points {
		_, est, _, err := pt.Execute()
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: scenario %q point %d: %w", doc.Name, i, err)
		}
		ests[i] = est
	}
	return points, ests, nil
}

// adaptiveBase seeds a scenario base request with the harness's
// standard precision-targeted stopping rule (the request-level mirror
// of adaptiveSweepOptions): floor Trials, budget MaxTrials, and the
// given relative-half-width target.
func adaptiveBase(seed uint64, budget int, targetRel float64) scenario.EstimateRequest {
	opt := adaptiveSweepOptions(seed, budget, targetRel)
	return scenario.EstimateRequest{
		Seed:           &seed,
		Trials:         opt.Trials,
		MaxTrials:      opt.MaxTrials,
		TargetRelWidth: opt.TargetRelWidth,
	}
}
