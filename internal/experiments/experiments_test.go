package experiments

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	all := All()
	wantIDs := []string{"F1", "F2", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17"}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Errorf("position %d: ID %s, want %s", i, e.ID, wantIDs[i])
		}
		if e.Title == "" || e.Source == "" || e.Run == nil {
			t.Errorf("%s incompletely registered: %+v", e.ID, e)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 found")
	}
}

// Every experiment must run in quick mode and produce renderable output.
// This is the smoke test that keeps the whole harness runnable.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(RunConfig{Seed: 7, Quick: true})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %s, want %s", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Error("no tables produced")
			}
			for _, tbl := range res.Tables {
				if tbl.Rows() == 0 {
					t.Errorf("table %q empty", tbl.Title)
				}
				var sb strings.Builder
				if err := tbl.Render(&sb); err != nil {
					t.Errorf("table %q failed to render: %v", tbl.Title, err)
				}
				sb.Reset()
				if err := tbl.CSV(&sb); err != nil {
					t.Errorf("table %q failed to CSV: %v", tbl.Title, err)
				}
			}
			for _, p := range res.Plots {
				var sb strings.Builder
				if err := p.Render(&sb); err != nil {
					t.Errorf("plot %q failed to render: %v", p.Title, err)
				}
			}
			if len(res.Notes) == 0 {
				t.Error("no notes produced; experiments must record paper-vs-measured commentary")
			}
		})
	}
}

// The worked examples must reproduce the paper's printed values through
// the paper's own procedure (tolerances are pinned tighter in
// internal/model; here we assert the experiment layer reports them).
func TestWorkedScenarioPaperAgreement(t *testing.T) {
	for _, tc := range []struct {
		scenario workedScenario
		years    float64
	}{
		{scenarioE1(), 32.0},
		{scenarioE2(), 6128.7},
		{scenarioE3(), 612.9},
		{scenarioE4(), 159.8},
	} {
		got := model.Years(tc.scenario.paperProcedure(tc.scenario.params))
		if rel := abs(got-tc.years) / tc.years; rel > 0.005 {
			t.Errorf("%s: paper procedure gives %.1f years, paper says %.1f", tc.scenario.id, got, tc.years)
		}
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// F2's Monte Carlo matrix must agree with eqs 3-6 within Monte Carlo
// noise in quick mode for the dominant (latent-first) cells.
func TestF2MatrixAgreement(t *testing.T) {
	e, ok := ByID("F2")
	if !ok {
		t.Fatal("F2 missing")
	}
	res, err := e.Run(RunConfig{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The table carries mc/model ratios in the last column; parse is
	// overkill — re-derive through the note instead: just assert the
	// run produced the 4-cell table.
	if res.Tables[0].Rows() != 4 {
		t.Errorf("F2 matrix has %d rows, want 4", res.Tables[0].Rows())
	}
}

func TestQuickTrialsFloor(t *testing.T) {
	c := RunConfig{Quick: true}
	if got := c.trials(1000); got != 100 {
		t.Errorf("quick trials(1000) = %d, want 100", got)
	}
	if got := c.trials(100); got != 60 {
		t.Errorf("quick trials(100) = %d, want floor 60", got)
	}
	full := RunConfig{}
	if got := full.trials(1000); got != 1000 {
		t.Errorf("full trials(1000) = %d, want 1000", got)
	}
}
