package experiments

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/scrub"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:     "F1",
		Title:  "Types of replica faults: visible vs latent lifecycle timeline",
		Source: "Figure 1",
		Run:    runF1,
	})
	register(Experiment{
		ID:     "F2",
		Title:  "Double-fault combinations: conditional second-fault probabilities, model vs Monte Carlo",
		Source: "Figure 2, eqs 3-6",
		Run:    runF2,
	})
}

// runF1 regenerates Figure 1 as a simulated trace: a visible fault whose
// recovery starts immediately, and a latent fault that sits undetected
// until an audit finds it.
func runF1(cfg RunConfig) (*Result, error) {
	rep, err := repair.Automated(24, 12, 0)
	if err != nil {
		return nil, err
	}
	// Fault scales chosen so a handful of both fault classes land within
	// the horizon; audits every 500 h make the detection lag visible.
	c := sim.Config{
		Replicas:    2,
		VisibleMean: 4000,
		LatentMean:  3000,
		Scrub:       scrub.Periodic{Interval: 500},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	// Trace trials until one exhibits both Figure-1 lifecycles (an
	// immediate visible repair and an audit-lagged latent detection),
	// aggregating lifecycle lags across every trial examined so the
	// measured numbers are not single-trace noise.
	var display *sim.Trace
	var visAgg, latAgg lagAccumulator
	for offset := uint64(1); offset <= 40; offset++ {
		tr, err := sim.TraceTrial(c, cfg.Seed+offset, 20000)
		if err != nil {
			return nil, err
		}
		vis, lat := lifecycleLags(tr)
		visAgg.add(vis)
		latAgg.add(lat)
		if display == nil && !math.IsNaN(vis) && !math.IsNaN(lat) {
			display = tr
		}
	}
	if display == nil {
		return nil, fmt.Errorf("experiments: no F1 trace exhibited both lifecycles in 40 trials")
	}
	tr := display
	res := &Result{ID: "F1", Title: "Fault lifecycle timeline (Figure 1)"}

	tbl := report.NewTable("Trace of one simulated mirror (times in hours; periodic audits every 500 h elided)",
		"time", "replica", "event", "fault class")
	const maxRows = 40
	rows := 0
	for _, e := range tr.Events {
		if e.Kind.String() == "audit" {
			continue // audits swamp the timeline; the detections show them
		}
		if rows >= maxRows {
			res.addNote("trace truncated to %d lifecycle events", maxRows)
			break
		}
		class := e.Fault.String()
		if e.Planted {
			class += " (induced)"
		}
		tbl.MustAddRow(e.Time, e.Replica, e.Kind.String(), class)
		rows++
	}
	res.Tables = append(res.Tables, tbl)

	// Figure 1's claim, measured: visible faults begin recovery
	// immediately; latent faults wait for detection first.
	res.addNote("mean occurrence-to-repair-start lag over %d lifecycles: visible %.1f h (immediate)", visAgg.n, visAgg.mean())
	res.addNote("mean occurrence-to-detection lag over %d lifecycles: latent %.1f h (audit interval 500 h => expected ~250 h)", latAgg.n, latAgg.mean())
	return res, nil
}

// lagAccumulator averages per-trace mean lags, skipping traces with none.
type lagAccumulator struct {
	sum float64
	n   int
}

func (a *lagAccumulator) add(v float64) {
	if math.IsNaN(v) {
		return
	}
	a.sum += v
	a.n++
}

func (a *lagAccumulator) mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.sum / float64(a.n)
}

// lifecycleLags extracts the mean fault-to-action lags per class from a
// trace.
func lifecycleLags(tr *sim.Trace) (visible, latent float64) {
	type open struct {
		at    float64
		class faults.Type
	}
	pending := map[int]open{}
	var visSum, latSum float64
	var visN, latN int
	for _, e := range tr.Events {
		switch e.Kind.String() {
		case "fault":
			if _, exists := pending[e.Replica]; !exists {
				pending[e.Replica] = open{at: e.Time, class: e.Fault}
			}
		case "repair-start":
			if o, exists := pending[e.Replica]; exists && o.class == faults.Visible {
				visSum += e.Time - o.at
				visN++
				delete(pending, e.Replica)
			}
		case "detected":
			if o, exists := pending[e.Replica]; exists && o.class == faults.Latent {
				latSum += e.Time - o.at
				latN++
				delete(pending, e.Replica)
			}
		case "repaired", "DATA LOSS":
			delete(pending, e.Replica)
		}
	}
	visible, latent = math.NaN(), math.NaN()
	if visN > 0 {
		visible = visSum / float64(visN)
	}
	if latN > 0 {
		latent = latSum / float64(latN)
	}
	return visible, latent
}

// runF2 regenerates Figure 2's 2x2 matrix quantitatively: the analytic
// conditional second-fault probabilities (eqs 3-6) against Monte Carlo
// conditional loss frequencies, on a configuration scaled so every cell
// is measurable.
func runF2(cfg RunConfig) (*Result, error) {
	// Scaled mirror: both channels active, windows short but non-trivial.
	rep, err := repair.Automated(20, 20, 0)
	if err != nil {
		return nil, err
	}
	c := sim.Config{
		Replicas:    2,
		VisibleMean: 2000,
		LatentMean:  1500,
		Scrub:       scrub.Periodic{Interval: 200},
		Repair:      rep,
		Correlation: faults.Independent{},
	}
	runner, err := sim.NewRunner(c)
	if err != nil {
		return nil, err
	}
	est, err := runner.Estimate(sim.Options{Trials: cfg.trials(4000), Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	p := c.ModelParams()
	probs := p.SecondFaultProbabilities()

	res := &Result{ID: "F2", Title: "Double-fault combination matrix (Figure 2)"}
	tbl := report.NewTable(
		fmt.Sprintf("Conditional probability that a window of vulnerability ends in loss (MV=%.3g, ML=%.3g, MRV=MRL=%.3g, MDL=%.3g)",
			p.MV, p.ML, p.MRV, p.MDL),
		"first fault", "second fault", "model (eqs 3-6)", "monte carlo", "mc/model")
	type cell struct {
		first, second faults.Type
		modelP        float64
	}
	cells := []cell{
		{faults.Visible, faults.Visible, probs.VAfterV},
		{faults.Visible, faults.Latent, probs.LAfterV},
		{faults.Latent, faults.Visible, probs.VAfterL},
		{faults.Latent, faults.Latent, probs.LAfterL},
	}
	for _, cl := range cells {
		mc := est.Matrix.ConditionalLossProb(cl.first, cl.second)
		ratio := mc / cl.modelP
		tbl.MustAddRow(cl.first.String(), cl.second.String(), cl.modelP, mc, ratio)
	}
	res.Tables = append(res.Tables, tbl)
	res.addNote("windows opened: %d by visible faults, %d by latent faults over %d trials",
		est.Matrix.WOVByVis, est.Matrix.WOVByLat, est.Trials)
	res.addNote("latent-first windows are ~%.0fx more dangerous than visible-first (detection lag %.3g h vs repair %.3g h) — the paper's core asymmetry",
		(probs.VAfterL+probs.LAfterL)/(probs.VAfterV+probs.LAfterV), p.MDL, p.MRV)
	return res, nil
}
