package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
)

// randomSpec draws a well-formed storage spec exercising every field,
// including disabled (+Inf) fault channels — but never both disabled at
// once, so the spec also survives full config validation.
func randomSpec(r *rand.Rand, label string) storage.Spec {
	s := storage.Spec{
		Label:       label,
		VisibleMean: 1 + r.Float64()*2e6,
		LatentMean:  1 + r.Float64()*4e5,
		RepairHours: 0.1 + r.Float64()*200,
	}
	switch r.Intn(4) {
	case 0:
		s.VisibleMean = math.Inf(1)
	case 1:
		s.LatentMean = math.Inf(1)
	}
	if r.Intn(2) == 0 {
		s.ScrubsPerYear = 0.5 + r.Float64()*51.5
	}
	if r.Intn(3) == 0 {
		s.ScrubOffset = r.Float64() * 4000
	}
	if r.Intn(2) == 0 {
		s.AccessRatePerHour = 0.001 + r.Float64()
		s.AccessCoverage = 0.05 + r.Float64()*0.9
	}
	return s
}

// TestWireFloatRoundTripProperty pins the +Inf ↔ −1 wire convention end
// to end: FleetEntryFromSpec → FleetEntry.spec recovers every
// storage.Spec field exactly, including disabled channels, regardless
// of the surrounding default audit frequency.
func TestWireFloatRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20060418)) // deterministic property sample
	for i := 0; i < 500; i++ {
		orig := randomSpec(r, fmt.Sprintf("spec-%d", i))
		entry := FleetEntryFromSpec(orig)
		// A default audit frequency the generator never emits: if it
		// leaks through, the round trip is consulting the default
		// instead of the entry.
		got, err := entry.spec(123.456)
		if err != nil {
			t.Fatalf("spec %d: %v (entry %+v)", i, err, entry)
		}
		if got != orig {
			t.Fatalf("spec %d round trip drifted:\n  orig %+v\n  wire %+v\n  back %+v", i, orig, entry, got)
		}
	}
}

// TestWireFloatRoundTripThroughBuild drives the same convention through
// the full request path: a fleet of specs converted to wire entries and
// rebuilt by EstimateRequest.Build canonicalizes identically to the
// directly-assembled storage.FleetConfig — the fingerprint-level
// statement that no field (least of all a disabled channel) was lost in
// wire transit.
func TestWireFloatRoundTripThroughBuild(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		specs := make([]storage.Spec, 1+r.Intn(4))
		entries := make([]FleetEntry, len(specs))
		for i := range specs {
			specs[i] = randomSpec(r, fmt.Sprintf("s%d-%d", trial, i))
			entries[i] = FleetEntryFromSpec(specs[i])
		}
		req := EstimateRequest{Fleet: entries, Trials: 50}
		cfg, opt, err := req.Build()
		if err != nil {
			t.Fatalf("trial %d: Build: %v", trial, err)
		}
		direct, err := storage.FleetConfig(specs...)
		if err != nil {
			t.Fatalf("trial %d: FleetConfig: %v", trial, err)
		}
		wireCanon, err := sim.Canonical(cfg, opt)
		if err != nil {
			t.Fatalf("trial %d: canonicalizing wire config: %v", trial, err)
		}
		directCanon, err := sim.Canonical(direct, opt)
		if err != nil {
			t.Fatalf("trial %d: canonicalizing direct config: %v", trial, err)
		}
		if wireCanon != directCanon {
			t.Fatalf("trial %d: wire round trip changed the canonical config:\n  wire   %s\n  direct %s", trial, wireCanon, directCanon)
		}
	}
}

// TestWireFloatExplicitCases pins the convention's edges the sampler
// cannot hit by accident.
func TestWireFloatExplicitCases(t *testing.T) {
	if got := WireFloat(math.Inf(1)); got != -1 {
		t.Errorf("WireFloat(+Inf) = %v, want -1", got)
	}
	if got := WireFloat(1234.5); got != 1234.5 {
		t.Errorf("WireFloat(1234.5) = %v", got)
	}
	// Both channels disabled survives the entry round trip (the config
	// layer rejects it later, as it should — no fault channel at all).
	dead := storage.Spec{
		Label: "inert", VisibleMean: math.Inf(1), LatentMean: math.Inf(1),
		RepairHours: 10,
	}
	back, err := FleetEntryFromSpec(dead).spec(3)
	if err != nil {
		t.Fatal(err)
	}
	if back != dead {
		t.Errorf("dead-channel round trip = %+v, want %+v", back, dead)
	}
}
