// Package scenario is the declarative, versioned vocabulary for naming
// simulations: one Document describes a base system plus named sweep
// axes, and every frontend — cmd/ltsim (-scenario), the ltsimd daemon
// (POST /scenarios/expand, scenario-driven POST /sweep), and the
// experiment harness — expands it through the same deterministic path.
// The paper's analyses are parameter sweeps (§5.4–§6.6: replication
// levels, scrub schedules, correlation α, mixed fleets); a scenario
// document is such a sweep as data instead of code.
//
// # Schema (v1)
//
// A document is JSON with a mandatory version tag:
//
//	{
//	  "v": 1,
//	  "name": "replication-vs-correlation",      // optional label
//	  "base": { ... },                           // an EstimateRequest
//	  "grid": [ {axis}, ... ],                   // cartesian axes
//	  "zip":  [ {axis}, ... ]                    // paired axes
//	}
//
// "base" is the full wire request vocabulary (EstimateRequest): the
// uniform-fleet scalars or an explicit "fleet" of tiers, plus the run
// options (trials, seed, horizon_years, level, target_rel_width,
// max_trials). Omitted base fields keep the wire defaults.
//
// An axis sweeps one named parameter over explicit values:
//
//	{"param": "replicas", "values": [2, 3, 4]}
//	{"param": "scrubs_per_year", "values": [0, 3, 12]}
//	{"param": "tier", "tiers": ["consumer", "enterprise"], "replica": 0}
//
// Scalar params (swept via "values"): replicas, min_intact,
// visible_mean_hours, latent_mean_hours, repair_visible_hours,
// repair_latent_hours, scrubs_per_year, alpha, repair_bug_prob,
// audit_wear_prob, trials, max_trials, horizon_years, seed, level,
// target_rel_width, bias, and the hazard-profile params (hazard.factor,
// hazard.shape, hazard.scale_hours, hazard.burn_in_hours,
// hazard.burn_in_factor, hazard.wear_onset_hours, hazard.wear_factor,
// hazard.normalize_hours) — these last require "base" to declare a
// "hazard" of the matching kind and sweep its fields in place.
// Negative means disable a fault channel, exactly as
// on a single request; scrubs_per_year 0 means never audited (the axis
// value is always explicit), while params whose wire 0 means "use the
// default" (alpha, level, the mean and repair scalars, max_trials)
// reject an axis value of 0 — sweeping a silent default is never what
// the author meant. The uniform-fleet params (replicas, the mean and
// repair scalars, repair_bug_prob) cannot be swept when "base" declares
// a fleet, and neither can scrubs_per_year when no fleet entry follows
// the request-level audit default — they would be silently inert.
//
// The "tier" param substitutes named storage tiers into the base fleet
// (swept via "tiers"); "replica" selects which fleet entry it rewrites
// (omitted = every entry). Explicit per-entry overrides survive the
// substitution, per the FleetEntry contract.
//
// # Expansion
//
// Expansion order is deterministic and documented: grid axes nest in
// document order with the first axis varying slowest and the last
// fastest, and the zip block — whose axes must share one length and
// advance together — forms one compound axis nested innermost (fastest).
// A document with no axes expands to its base alone. Each Point carries
// its expansion index, the coordinate values that produced it, and the
// fully-applied EstimateRequest.
//
// # Canonicalization
//
// A point is just a request: fingerprinting goes through
// EstimateRequest.Build and sim.Fingerprint, so an expanded point
// content-addresses identically to the equivalent hand-built request —
// server-side and client-side expansion of one document share cache
// entries, and equivalent points inside one document (e.g. a min_intact
// 0 vs 1 axis) collide onto a single computation.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/storage"
)

// Version is the scenario schema version this package implements.
const Version = 1

// MaxPoints bounds one document's expansion, so a small JSON body
// cannot fan out into an unbounded amount of scheduled work.
const MaxPoints = 65536

// Document is one declarative scenario: a base request plus named sweep
// axes. See the package comment for the schema.
type Document struct {
	// V is the schema version; must be Version.
	V int `json:"v"`
	// Name labels the scenario in reports and summaries.
	Name string `json:"name,omitempty"`
	// Base is the request every point starts from.
	Base EstimateRequest `json:"base"`
	// Grid axes expand as a cartesian product, first axis slowest.
	Grid []Axis `json:"grid,omitempty"`
	// Zip axes advance together (all must share one length) and nest
	// innermost of the grid.
	Zip []Axis `json:"zip,omitempty"`
}

// Axis sweeps one named parameter.
type Axis struct {
	// Param names the swept request field, or "tier" for named-tier
	// substitution into the base fleet.
	Param string `json:"param"`
	// Values are the scalar sweep values (every param except "tier").
	Values []float64 `json:"values,omitempty"`
	// Tiers are the named tiers a "tier" axis substitutes.
	Tiers []string `json:"tiers,omitempty"`
	// Replica selects which fleet entry a "tier" axis rewrites; nil
	// rewrites every entry.
	Replica *int `json:"replica,omitempty"`
}

// Coord is one axis coordinate of an expanded point. Value is a
// pointer so that a legitimate 0 coordinate (scrubs_per_year 0,
// repair_bug_prob 0) survives JSON encoding; tier coords carry Tier
// and a nil Value.
type Coord struct {
	Param string   `json:"param"`
	Value *float64 `json:"value,omitempty"`
	Tier  string   `json:"tier,omitempty"`
}

// Point is one expanded scenario point.
type Point struct {
	// Index is the point's position in the deterministic expansion
	// order.
	Index int `json:"index"`
	// Coords records the axis values that produced the point, grid axes
	// first (document order), then zip axes.
	Coords []Coord `json:"coords,omitempty"`
	// Request is the base request with every coordinate applied.
	Request EstimateRequest `json:"request"`
}

// Fingerprint returns the point's content-address: identical to the
// fingerprint of the equivalent hand-built request.
func (p Point) Fingerprint() (string, error) { return p.Request.Fingerprint() }

// Execute builds, fingerprints, and simulates one point locally — the
// single local execution path shared by `ltsim -scenario` and the
// experiment harness, so every frontend that runs a point itself
// produces exactly what a daemon sweeping the same document would
// compute and cache under key. opt is returned alongside the estimate
// because result encodings need the run's horizon.
func (p Point) Execute() (key string, est sim.Estimate, opt sim.Options, err error) {
	cfg, opt, err := p.Request.Build()
	if err != nil {
		return "", sim.Estimate{}, sim.Options{}, err
	}
	key, err = sim.Fingerprint(cfg, opt)
	if err != nil {
		return "", sim.Estimate{}, sim.Options{}, err
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return "", sim.Estimate{}, sim.Options{}, err
	}
	est, err = runner.Estimate(opt)
	if err != nil {
		return "", sim.Estimate{}, sim.Options{}, err
	}
	return key, est, opt, nil
}

// Parse decodes and validates a scenario document, rejecting unknown
// fields so typos fail loudly instead of expanding the wrong sweep.
func Parse(data []byte) (Document, error) {
	var d Document
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Document{}, fmt.Errorf("scenario: decoding document: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Document{}, err
	}
	return d, nil
}

// applyScalar sets one scalar param on a request. The table is the
// single source of truth for which params exist; Validate checks
// against it.
var scalarParams = map[string]func(*EstimateRequest, float64){
	"replicas":             func(r *EstimateRequest, v float64) { r.Replicas = int(v) },
	"min_intact":           func(r *EstimateRequest, v float64) { r.MinIntact = int(v) },
	"visible_mean_hours":   func(r *EstimateRequest, v float64) { r.VisibleMeanHours = v },
	"latent_mean_hours":    func(r *EstimateRequest, v float64) { r.LatentMeanHours = v },
	"repair_visible_hours": func(r *EstimateRequest, v float64) { r.RepairVisibleHours = v },
	"repair_latent_hours":  func(r *EstimateRequest, v float64) { r.RepairLatentHours = v },
	"scrubs_per_year":      func(r *EstimateRequest, v float64) { r.ScrubsPerYear = &v },
	"alpha":                func(r *EstimateRequest, v float64) { r.Alpha = v },
	"repair_bug_prob":      func(r *EstimateRequest, v float64) { r.RepairBugProb = v },
	"audit_wear_prob":      func(r *EstimateRequest, v float64) { r.AuditWearProb = v },
	"trials":               func(r *EstimateRequest, v float64) { r.Trials = int(v) },
	"max_trials":           func(r *EstimateRequest, v float64) { r.MaxTrials = int(v) },
	"horizon_years":        func(r *EstimateRequest, v float64) { r.HorizonYears = v },
	"seed":                 func(r *EstimateRequest, v float64) { u := uint64(v); r.Seed = &u },
	"level":                func(r *EstimateRequest, v float64) { r.Level = v },
	"target_rel_width":     func(r *EstimateRequest, v float64) { r.TargetRelWidth = v },
	"bias":                 func(r *EstimateRequest, v float64) { r.Bias = v },

	// Hazard-profile params mutate the base request's hazard spec; axis
	// validation guarantees r.Hazard is non-nil and of the matching kind
	// before any of these run (see hazardParamKind).
	"hazard.factor":           func(r *EstimateRequest, v float64) { r.Hazard.Factor = v },
	"hazard.shape":            func(r *EstimateRequest, v float64) { r.Hazard.Shape = v },
	"hazard.scale_hours":      func(r *EstimateRequest, v float64) { r.Hazard.ScaleHours = v },
	"hazard.burn_in_hours":    func(r *EstimateRequest, v float64) { r.Hazard.BurnInHours = v },
	"hazard.burn_in_factor":   func(r *EstimateRequest, v float64) { r.Hazard.BurnInFactor = v },
	"hazard.wear_onset_hours": func(r *EstimateRequest, v float64) { r.Hazard.WearOnsetHours = v },
	"hazard.wear_factor":      func(r *EstimateRequest, v float64) { r.Hazard.WearFactor = v },
	"hazard.normalize_hours":  func(r *EstimateRequest, v float64) { r.Hazard.NormalizeHours = v },
}

// hazardParamKind maps each hazard.* axis param to the profile kind it
// parameterizes ("" = any kind). The base request must declare a hazard
// of that kind, or the axis would sweep a field its Build rejects (or,
// worse for a kind-independent field on a nil hazard, sweep nothing).
var hazardParamKind = map[string]string{
	"hazard.factor":           "constant",
	"hazard.shape":            "weibull",
	"hazard.scale_hours":      "weibull",
	"hazard.burn_in_hours":    "bathtub",
	"hazard.burn_in_factor":   "bathtub",
	"hazard.wear_onset_hours": "bathtub",
	"hazard.wear_factor":      "bathtub",
	"hazard.normalize_hours":  "",
}

// integerParams must carry non-negative integral values.
var integerParams = map[string]bool{
	"replicas": true, "min_intact": true, "trials": true,
	"max_trials": true, "seed": true,
}

// zeroMeansDefault lists the params whose wire value 0 is the
// "use the default" sentinel: an axis value of 0 there would silently
// sweep the default instead of what the author plausibly meant, so
// Validate rejects it. (trials 0 stays legal — it is the wire's own
// spelling for "the adaptive floor, or the default fixed budget";
// seed/min_intact 0 are real values; a fault channel is disabled with
// a negative mean, never 0.)
var zeroMeansDefault = map[string]string{
	"alpha":                "1 (independent)",
	"level":                "0.95",
	"visible_mean_hours":   "the paper's Cheetah MV",
	"latent_mean_hours":    "the paper's ML",
	"repair_visible_hours": "the paper's MRV",
	"repair_latent_hours":  "the paper's MRL",
	"max_trials":           "the simulator's 1<<20 cap",
}

// fleetOnlyInert lists the params Build ignores when the base declares
// a fleet — sweeping them there would silently do nothing.
var fleetOnlyInert = map[string]bool{
	"replicas": true, "visible_mean_hours": true, "latent_mean_hours": true,
	"repair_visible_hours": true, "repair_latent_hours": true,
	"repair_bug_prob": true,
}

// len returns the axis's value count.
func (a Axis) len() int {
	if a.Param == "tier" {
		return len(a.Tiers)
	}
	return len(a.Values)
}

// validate checks one axis against the document's base.
func (a Axis) validate(block string, base EstimateRequest) error {
	if a.Param == "" {
		return fmt.Errorf("scenario: %s axis has no param", block)
	}
	if a.Param == "tier" {
		if len(a.Tiers) == 0 {
			return fmt.Errorf("scenario: tier axis needs a non-empty \"tiers\" list")
		}
		if len(a.Values) > 0 {
			return fmt.Errorf("scenario: tier axis takes \"tiers\", not \"values\"")
		}
		if len(base.Fleet) == 0 {
			return fmt.Errorf("scenario: tier axis requires a base fleet to substitute into")
		}
		if a.Replica != nil && (*a.Replica < 0 || *a.Replica >= len(base.Fleet)) {
			return fmt.Errorf("scenario: tier axis replica %d out of range [0,%d)", *a.Replica, len(base.Fleet))
		}
		for _, name := range a.Tiers {
			if _, ok := storage.TierSpec(name, 1); !ok {
				return fmt.Errorf("scenario: tier axis names unknown tier %q", name)
			}
		}
		return nil
	}
	if _, ok := scalarParams[a.Param]; !ok {
		return fmt.Errorf("scenario: unknown axis param %q", a.Param)
	}
	if a.Replica != nil {
		return fmt.Errorf("scenario: %q axis: \"replica\" applies only to tier axes", a.Param)
	}
	if len(a.Tiers) > 0 {
		return fmt.Errorf("scenario: %q axis takes \"values\", not \"tiers\"", a.Param)
	}
	if len(a.Values) == 0 {
		return fmt.Errorf("scenario: %q axis has no values", a.Param)
	}
	if len(base.Fleet) > 0 && fleetOnlyInert[a.Param] {
		return fmt.Errorf("scenario: %q axis is inert when the base declares a fleet", a.Param)
	}
	if kind, isHazard := hazardParamKind[a.Param]; isHazard {
		if base.Hazard == nil {
			return fmt.Errorf("scenario: %q axis requires the base to declare a hazard profile", a.Param)
		}
		if kind != "" && base.Hazard.Kind != kind {
			return fmt.Errorf("scenario: %q axis parameterizes a %q hazard, but the base declares kind %q", a.Param, kind, base.Hazard.Kind)
		}
		for _, v := range a.Values {
			// 0 is the wire's "unset" for every hazard field, so a 0
			// coordinate would sweep a spec HazardSpec.Build rejects (or
			// silently drop normalization); fail at validation instead.
			if v == 0 {
				return fmt.Errorf("scenario: %q axis value 0 would read as an unset hazard field; hazard parameters must be positive", a.Param)
			}
		}
	}
	if a.Param == "scrubs_per_year" && len(base.Fleet) > 0 {
		// With a fleet, the request-level frequency is only the default
		// for tier entries that don't pin their own; if no entry follows
		// it, the axis could not move any replica.
		matters := false
		for _, e := range base.Fleet {
			if e.defaultScrubsMatters() {
				matters = true
				break
			}
		}
		if !matters {
			return fmt.Errorf("scenario: scrubs_per_year axis is inert: no fleet entry follows the request-level audit default (custom entries and tiers pinning their own frequency ignore it)")
		}
	}
	for _, v := range a.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("scenario: %q axis value %v is not finite (disable a channel with a negative mean)", a.Param, v)
		}
		if integerParams[a.Param] && (v < 0 || v != math.Trunc(v)) {
			return fmt.Errorf("scenario: %q axis value %v must be a non-negative integer", a.Param, v)
		}
		if integerParams[a.Param] && v > 1<<53 {
			// Axis values travel as float64: above 2^53 the written
			// integer and the decoded one can silently differ, and a
			// seed the author never named would be simulated and cached.
			return fmt.Errorf("scenario: %q axis value %v exceeds 2^53 and cannot be represented exactly", a.Param, v)
		}
		if a.Param == "replicas" && v < 1 {
			return fmt.Errorf("scenario: replicas axis value %v must be >= 1 (0 would silently mean the default)", v)
		}
		if def, sentinel := zeroMeansDefault[a.Param]; sentinel && v == 0 {
			return fmt.Errorf("scenario: %q axis value 0 would silently mean the default %s; sweep the value you mean", a.Param, def)
		}
	}
	return nil
}

// conflictKey identifies what an axis overrides, for duplicate
// detection: scalar params by name, tier axes by substituted entry.
func (a Axis) conflictKey() string {
	if a.Param == "tier" {
		if a.Replica == nil {
			return "tier/*"
		}
		return fmt.Sprintf("tier/%d", *a.Replica)
	}
	return a.Param
}

// Validate checks the document's structure: version, axis shapes, zip
// alignment, conflicting axes, and the expansion size cap.
func (d Document) Validate() error {
	if d.V != Version {
		return fmt.Errorf("scenario: unsupported version %d (this build speaks v%d)", d.V, Version)
	}
	seen := make(map[string]bool)
	tierAll, tierSome := false, false
	check := func(block string, axes []Axis) error {
		for _, a := range axes {
			if err := a.validate(block, d.Base); err != nil {
				return err
			}
			key := a.conflictKey()
			if seen[key] {
				return fmt.Errorf("scenario: two axes sweep %s", key)
			}
			seen[key] = true
			if a.Param == "tier" {
				if a.Replica == nil {
					tierAll = true
				} else {
					tierSome = true
				}
			}
		}
		return nil
	}
	if err := check("grid", d.Grid); err != nil {
		return err
	}
	if err := check("zip", d.Zip); err != nil {
		return err
	}
	if tierAll && tierSome {
		return fmt.Errorf("scenario: a whole-fleet tier axis conflicts with per-replica tier axes")
	}
	for _, a := range d.Zip {
		if a.len() != d.Zip[0].len() {
			return fmt.Errorf("scenario: zip axes must share one length: %q has %d values, %q has %d",
				a.Param, a.len(), d.Zip[0].Param, d.Zip[0].len())
		}
	}
	if n := d.numPoints(); n > MaxPoints {
		return fmt.Errorf("scenario: document expands to %d points, limit %d", n, MaxPoints)
	}
	return nil
}

// numPoints is the expansion size. Callers must have validated axis
// shapes (every axis non-empty, zip aligned).
func (d Document) numPoints() int {
	n := 1
	for _, a := range d.Grid {
		n *= a.len()
		if n > MaxPoints {
			return n // avoid overflow on absurd documents
		}
	}
	if len(d.Zip) > 0 {
		n *= d.Zip[0].len()
	}
	return n
}

// clone deep-copies the request's pointer and slice fields so one
// point's overrides never alias another's (or the base's).
func clone(r EstimateRequest) EstimateRequest {
	if r.ScrubsPerYear != nil {
		v := *r.ScrubsPerYear
		r.ScrubsPerYear = &v
	}
	if r.Seed != nil {
		v := *r.Seed
		r.Seed = &v
	}
	if r.Fleet != nil {
		r.Fleet = append([]FleetEntry(nil), r.Fleet...)
		for i := range r.Fleet {
			if r.Fleet[i].Hazard != nil {
				h := *r.Fleet[i].Hazard
				h.BoundsHours = append([]float64(nil), h.BoundsHours...)
				h.Factors = append([]float64(nil), h.Factors...)
				r.Fleet[i].Hazard = &h
			}
		}
	}
	if r.Hazard != nil {
		h := *r.Hazard
		h.BoundsHours = append([]float64(nil), h.BoundsHours...)
		h.Factors = append([]float64(nil), h.Factors...)
		r.Hazard = &h
	}
	return r
}

// apply writes axis coordinate i into the request and returns the
// coordinate record.
func (a Axis) apply(r *EstimateRequest, i int) Coord {
	if a.Param == "tier" {
		name := a.Tiers[i]
		if a.Replica != nil {
			r.Fleet[*a.Replica].Tier = name
		} else {
			for j := range r.Fleet {
				r.Fleet[j].Tier = name
			}
		}
		return Coord{Param: "tier", Tier: name}
	}
	v := a.Values[i]
	scalarParams[a.Param](r, v)
	return Coord{Param: a.Param, Value: &v}
}

// Expand validates the document and materializes every point in the
// deterministic order the package comment specifies: grid odometer
// (first axis slowest), zip tuple innermost.
func Expand(d Document) ([]Point, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	counts := make([]int, 0, len(d.Grid)+1)
	for _, a := range d.Grid {
		counts = append(counts, a.len())
	}
	zipLen := 1
	if len(d.Zip) > 0 {
		zipLen = d.Zip[0].len()
	}
	counts = append(counts, zipLen)

	total := d.numPoints()
	points := make([]Point, 0, total)
	digits := make([]int, len(counts))
	for idx := 0; idx < total; idx++ {
		rem := idx
		for i := len(counts) - 1; i >= 0; i-- {
			digits[i] = rem % counts[i]
			rem /= counts[i]
		}
		req := clone(d.Base)
		coords := make([]Coord, 0, len(d.Grid)+len(d.Zip))
		for i, a := range d.Grid {
			coords = append(coords, a.apply(&req, digits[i]))
		}
		for _, a := range d.Zip {
			coords = append(coords, a.apply(&req, digits[len(counts)-1]))
		}
		points = append(points, Point{Index: idx, Coords: coords, Request: req})
	}
	return points, nil
}
