package scenario

import (
	"strings"
	"testing"
)

func TestBuildPreservesExplicitSeedZero(t *testing.T) {
	zero := uint64(0)
	_, opt, err := EstimateRequest{Trials: 10, Seed: &zero}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Seed != 0 {
		t.Errorf("explicit seed 0 became %d", opt.Seed)
	}
	_, opt, err = EstimateRequest{Trials: 10}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Seed != 1 {
		t.Errorf("omitted seed = %d, want default 1", opt.Seed)
	}
}

func TestFleetEntryNegativeScrubsDisablesTierAudits(t *testing.T) {
	s, err := FleetEntry{Tier: "consumer", ScrubsPerYear: -1}.spec(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.ScrubsPerYear != 0 {
		t.Errorf("negative override left scrubs/year at %v, want 0 (never audited)", s.ScrubsPerYear)
	}
	// Zero keeps the tier's frequency.
	s, err = FleetEntry{Tier: "consumer"}.spec(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.ScrubsPerYear != 3 {
		t.Errorf("omitted scrubs/year = %v, want the tier default 3", s.ScrubsPerYear)
	}
}

func TestBuildRejectsDisabledRepairs(t *testing.T) {
	for _, req := range []EstimateRequest{
		{Trials: 10, RepairVisibleHours: -1},
		{Trials: 10, RepairLatentHours: -1},
	} {
		_, _, err := req.Build()
		if err == nil {
			t.Errorf("Build accepted a negative repair time: %+v", req)
			continue
		}
		if !strings.Contains(err.Error(), "repair") {
			t.Errorf("error %q does not name the repair field", err)
		}
	}
}
