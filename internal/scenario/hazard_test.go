package scenario

import (
	"strings"
	"testing"

	"repro/internal/aging"
	"repro/internal/faults"
)

func TestHazardSpecBuild(t *testing.T) {
	cases := []struct {
		name string
		spec HazardSpec
		want faults.Hazard
	}{
		{"constant", HazardSpec{Kind: "constant", Factor: 2}, faults.ConstantHazard{Factor: 2}},
		{"weibull", HazardSpec{Kind: "weibull", Shape: 2, ScaleHours: 50000}, faults.WeibullHazard{Shape: 2, Scale: 50000}},
	}
	for _, c := range cases {
		h, err := c.spec.Build()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if h != c.want {
			t.Errorf("%s: built %#v, want %#v", c.name, h, c.want)
		}
	}

	bath, err := (HazardSpec{Kind: "bathtub", BurnInHours: 2000, BurnInFactor: 3, WearOnsetHours: 12000, WearFactor: 6}).Build()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := aging.Bathtub(2000, 3, 12000, 6)
	if err != nil {
		t.Fatal(err)
	}
	if bath.Multiplier(100) != direct.Multiplier(100) || bath.Multiplier(20000) != direct.Multiplier(20000) {
		t.Errorf("bathtub spec disagrees with aging.Bathtub")
	}

	pw, err := (HazardSpec{Kind: "piecewise", BoundsHours: []float64{1000}, Factors: []float64{3, 1}}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if pw.Multiplier(500) != 3 || pw.Multiplier(1500) != 1 {
		t.Errorf("piecewise spec built the wrong profile: %#v", pw)
	}

	norm, err := (HazardSpec{Kind: "weibull", Shape: 2, ScaleHours: 8000, NormalizeHours: 20000}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if m := norm.MeanMultiplier(20000); m < 0.999 || m > 1.001 {
		t.Errorf("normalized profile has mean multiplier %v over its horizon, want 1", m)
	}
}

func TestHazardSpecBuildRejects(t *testing.T) {
	cases := []struct {
		name string
		spec HazardSpec
		frag string
	}{
		{"unknown kind", HazardSpec{Kind: "gamma", Shape: 2}, "unknown hazard kind"},
		{"empty kind", HazardSpec{Factor: 2}, "unknown hazard kind"},
		{"wrong-kind param", HazardSpec{Kind: "bathtub", Shape: 2, BurnInHours: 100, BurnInFactor: 2, WearOnsetHours: 1000, WearFactor: 2}, `"shape" does not apply`},
		{"constant with scale", HazardSpec{Kind: "constant", Factor: 2, ScaleHours: 100}, `"scale_hours" does not apply`},
		{"bad shape", HazardSpec{Kind: "weibull", Shape: 0.5, ScaleHours: 100}, "shape"},
		{"negative normalize", HazardSpec{Kind: "constant", Factor: 2, NormalizeHours: -1}, "normalize_hours"},
	}
	for _, c := range cases {
		if _, err := c.spec.Build(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.frag)
		}
	}
}

// TestHazardRequestInheritance checks the wire-side scalar-to-fleet
// inheritance mirrors the simulator's: a request-level hazard fills in
// fleet entries without their own, and a per-entry profile wins.
func TestHazardRequestInheritance(t *testing.T) {
	req := EstimateRequest{
		Hazard: &HazardSpec{Kind: "constant", Factor: 2},
		Fleet: []FleetEntry{
			{Tier: "consumer"},
			{Tier: "consumer", Hazard: &HazardSpec{Kind: "weibull", Shape: 2, ScaleHours: 9000}},
		},
	}
	cfg, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	specs := cfg.ReplicaSpecs()
	if specs[0].Hazard != (faults.ConstantHazard{Factor: 2}) {
		t.Errorf("entry 0 did not inherit the request hazard: %#v", specs[0].Hazard)
	}
	if specs[1].Hazard != (faults.WeibullHazard{Shape: 2, Scale: 9000}) {
		t.Errorf("entry 1 lost its own hazard: %#v", specs[1].Hazard)
	}

	uniform := EstimateRequest{Replicas: 3, Hazard: &HazardSpec{Kind: "constant", Factor: 3}}
	cfg, _, err = uniform.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Hazard != (faults.ConstantHazard{Factor: 3}) {
		t.Errorf("uniform request dropped the hazard: %#v", cfg.Hazard)
	}

	bad := EstimateRequest{Hazard: &HazardSpec{Kind: "nope"}}
	if _, _, err := bad.Build(); err == nil || !strings.Contains(err.Error(), "hazard") {
		t.Errorf("bad request hazard: err = %v", err)
	}
	badFleet := EstimateRequest{Fleet: []FleetEntry{{Tier: "consumer", Hazard: &HazardSpec{Kind: "constant"}}}}
	if _, _, err := badFleet.Build(); err == nil || !strings.Contains(err.Error(), "fleet entry 0") {
		t.Errorf("bad fleet hazard: err = %v", err)
	}
}

// TestHazardAxisSweep expands a wear_factor sweep over a bathtub base
// and checks each point builds a distinct profile without aliasing the
// base or its siblings.
func TestHazardAxisSweep(t *testing.T) {
	doc := Document{
		V: 1,
		Base: EstimateRequest{
			Hazard: &HazardSpec{Kind: "bathtub", BurnInHours: 2000, BurnInFactor: 3, WearOnsetHours: 12000, WearFactor: 6},
		},
		Grid: []Axis{{Param: "hazard.wear_factor", Values: []float64{2, 6, 12}}},
	}
	points, err := Expand(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("expanded %d points, want 3", len(points))
	}
	for i, want := range []float64{2, 6, 12} {
		if got := points[i].Request.Hazard.WearFactor; got != want {
			t.Errorf("point %d wear factor = %v, want %v", i, got, want)
		}
		cfg, _, err := points[i].Request.Build()
		if err != nil {
			t.Fatalf("point %d build: %v", i, err)
		}
		if cfg.Hazard.Multiplier(20000) != want {
			t.Errorf("point %d built wear multiplier %v, want %v", i, cfg.Hazard.Multiplier(20000), want)
		}
	}
	if doc.Base.Hazard.WearFactor != 6 {
		t.Errorf("expansion mutated the base document's hazard (wear factor now %v)", doc.Base.Hazard.WearFactor)
	}
	fps := map[string]bool{}
	for _, p := range points {
		fp, err := p.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		fps[fp] = true
	}
	if len(fps) != 3 {
		t.Errorf("swept points share fingerprints: %d distinct of 3", len(fps))
	}
}

func TestHazardAxisValidation(t *testing.T) {
	base := EstimateRequest{Hazard: &HazardSpec{Kind: "constant", Factor: 2}}
	cases := []struct {
		name string
		doc  Document
		frag string
	}{
		{
			"no base hazard",
			Document{V: 1, Grid: []Axis{{Param: "hazard.factor", Values: []float64{1, 2}}}},
			"requires the base to declare a hazard",
		},
		{
			"kind mismatch",
			Document{V: 1, Base: base, Grid: []Axis{{Param: "hazard.shape", Values: []float64{1, 2}}}},
			`parameterizes a "weibull" hazard`,
		},
		{
			"zero coordinate",
			Document{V: 1, Base: base, Grid: []Axis{{Param: "hazard.factor", Values: []float64{0, 2}}}},
			"unset hazard field",
		},
	}
	for _, c := range cases {
		if err := c.doc.Validate(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.frag)
		}
	}
	// normalize_hours is kind-independent: valid over any base kind.
	ok := Document{V: 1, Base: base, Grid: []Axis{{Param: "hazard.normalize_hours", Values: []float64{10000, 20000}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("normalize_hours axis over a constant base: %v", err)
	}
}
