package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// intp is a test shorthand.
func intp(v int) *int { return &v }

// TestExpansionOrderGolden pins the documented deterministic order:
// grid odometer with the first axis slowest and the last fastest, the
// zip tuple innermost.
func TestExpansionOrderGolden(t *testing.T) {
	doc := Document{
		V: Version,
		Base: EstimateRequest{
			Fleet:  []FleetEntry{{Tier: "consumer"}, {Tier: "consumer"}},
			Trials: 50,
		},
		Grid: []Axis{
			{Param: "alpha", Values: []float64{1, 0.5}},
			{Param: "tier", Tiers: []string{"consumer", "enterprise"}, Replica: intp(1)},
		},
		Zip: []Axis{
			{Param: "horizon_years", Values: []float64{10, 50}},
			{Param: "scrubs_per_year", Values: []float64{12, 3}},
		},
	}
	points, err := Expand(doc)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		alpha   float64
		tier1   string
		horizon float64
		scrubs  float64
	}{
		{1, "consumer", 10, 12},
		{1, "consumer", 50, 3},
		{1, "enterprise", 10, 12},
		{1, "enterprise", 50, 3},
		{0.5, "consumer", 10, 12},
		{0.5, "consumer", 50, 3},
		{0.5, "enterprise", 10, 12},
		{0.5, "enterprise", 50, 3},
	}
	if len(points) != len(want) {
		t.Fatalf("expanded %d points, want %d", len(points), len(want))
	}
	for i, w := range want {
		pt := points[i]
		if pt.Index != i {
			t.Errorf("point %d carries index %d", i, pt.Index)
		}
		r := pt.Request
		if r.Alpha != w.alpha || r.Fleet[1].Tier != w.tier1 || r.HorizonYears != w.horizon {
			t.Errorf("point %d = alpha %v, tier %q, horizon %v; want %v, %q, %v",
				i, r.Alpha, r.Fleet[1].Tier, r.HorizonYears, w.alpha, w.tier1, w.horizon)
		}
		if r.ScrubsPerYear == nil || *r.ScrubsPerYear != w.scrubs {
			t.Errorf("point %d scrubs = %v, want %v", i, r.ScrubsPerYear, w.scrubs)
		}
		if r.Fleet[0].Tier != "consumer" {
			t.Errorf("point %d rewrote the unswept fleet entry: %q", i, r.Fleet[0].Tier)
		}
		// Coords mirror the applied values, grid axes first; tier coords
		// carry no Value, scalar coords always carry one (even 0).
		if len(pt.Coords) != 4 || pt.Coords[0].Param != "alpha" || pt.Coords[1].Tier != w.tier1 ||
			pt.Coords[1].Value != nil || pt.Coords[2].Value == nil || *pt.Coords[2].Value != w.horizon ||
			pt.Coords[3].Value == nil || *pt.Coords[3].Value != w.scrubs {
			t.Errorf("point %d coords = %+v", i, pt.Coords)
		}
	}
	// The base document must be untouched by expansion.
	if doc.Base.Alpha != 0 || doc.Base.Fleet[1].Tier != "consumer" || doc.Base.ScrubsPerYear != nil {
		t.Errorf("expansion mutated the base request: %+v", doc.Base)
	}
}

// TestCoordZeroSurvivesWire: a swept 0 (never audited, bug prob 0) is
// a real coordinate and must not vanish under omitempty.
func TestCoordZeroSurvivesWire(t *testing.T) {
	points, err := Expand(Document{
		V:    Version,
		Base: EstimateRequest{Trials: 10},
		Grid: []Axis{{Param: "scrubs_per_year", Values: []float64{0, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(points[0].Coords)
	if err != nil {
		t.Fatal(err)
	}
	if want := `[{"param":"scrubs_per_year","value":0}]`; string(b) != want {
		t.Errorf("zero coordinate encodes as %s, want %s", b, want)
	}
}

// TestExpandNoAxes: a document with no axes is its base alone.
func TestExpandNoAxes(t *testing.T) {
	points, err := Expand(Document{V: Version, Base: EstimateRequest{Trials: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Request.Trials != 10 || len(points[0].Coords) != 0 {
		t.Fatalf("no-axis expansion = %+v, want the bare base", points)
	}
}

// TestZipOnlyExpansion: without a grid, the zip block alone drives the
// point count.
func TestZipOnlyExpansion(t *testing.T) {
	points, err := Expand(Document{
		V:    Version,
		Base: EstimateRequest{Trials: 10},
		Zip: []Axis{
			{Param: "replicas", Values: []float64{2, 3, 4}},
			{Param: "alpha", Values: []float64{1, 0.5, 0.1}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("zip expansion has %d points, want 3", len(points))
	}
	for i, want := range []struct {
		replicas int
		alpha    float64
	}{{2, 1}, {3, 0.5}, {4, 0.1}} {
		r := points[i].Request
		if r.Replicas != want.replicas || r.Alpha != want.alpha {
			t.Errorf("zip point %d = (%d, %v), want (%d, %v)", i, r.Replicas, r.Alpha, want.replicas, want.alpha)
		}
	}
}

// TestValidationErrors exercises every structural rejection.
func TestValidationErrors(t *testing.T) {
	fleetBase := EstimateRequest{Fleet: []FleetEntry{{Tier: "consumer"}}}
	huge := make([]float64, 300)
	for i := range huge {
		huge[i] = float64(i + 1)
	}
	cases := []struct {
		name string
		doc  Document
		want string
	}{
		{"missing version", Document{}, "unsupported version"},
		{"future version", Document{V: 2}, "unsupported version"},
		{"unknown param", Document{V: 1, Grid: []Axis{{Param: "scrub_cadence", Values: []float64{1}}}}, "unknown axis param"},
		{"no param", Document{V: 1, Grid: []Axis{{Values: []float64{1}}}}, "no param"},
		{"empty values", Document{V: 1, Grid: []Axis{{Param: "alpha"}}}, "no values"},
		{"tiers on scalar", Document{V: 1, Grid: []Axis{{Param: "alpha", Tiers: []string{"consumer"}}}}, `takes "values"`},
		{"values on tier", Document{V: 1, Base: fleetBase, Grid: []Axis{{Param: "tier", Tiers: []string{"consumer"}, Values: []float64{1}}}}, `takes "tiers"`},
		{"tier without fleet", Document{V: 1, Grid: []Axis{{Param: "tier", Tiers: []string{"consumer"}}}}, "requires a base fleet"},
		{"unknown tier", Document{V: 1, Base: fleetBase, Grid: []Axis{{Param: "tier", Tiers: []string{"floppy"}}}}, "unknown tier"},
		{"tier replica range", Document{V: 1, Base: fleetBase, Grid: []Axis{{Param: "tier", Tiers: []string{"consumer"}, Replica: intp(1)}}}, "out of range"},
		{"replica on scalar", Document{V: 1, Grid: []Axis{{Param: "alpha", Values: []float64{1}, Replica: intp(0)}}}, "applies only to tier axes"},
		{"duplicate param", Document{V: 1, Grid: []Axis{{Param: "alpha", Values: []float64{1}}}, Zip: []Axis{{Param: "alpha", Values: []float64{0.5}}}}, "two axes sweep alpha"},
		{"whole vs per-replica tier", Document{V: 1,
			Base: EstimateRequest{Fleet: []FleetEntry{{Tier: "consumer"}, {Tier: "consumer"}}},
			Grid: []Axis{
				{Param: "tier", Tiers: []string{"consumer"}},
				{Param: "tier", Tiers: []string{"tape"}, Replica: intp(0)},
			}}, "whole-fleet tier axis conflicts"},
		{"zip length mismatch", Document{V: 1, Zip: []Axis{
			{Param: "alpha", Values: []float64{1, 0.5}},
			{Param: "replicas", Values: []float64{2}},
		}}, "share one length"},
		{"non-integer replicas", Document{V: 1, Grid: []Axis{{Param: "replicas", Values: []float64{2.5}}}}, "non-negative integer"},
		{"zero replicas", Document{V: 1, Grid: []Axis{{Param: "replicas", Values: []float64{0}}}}, ">= 1"},
		{"nan value", Document{V: 1, Grid: []Axis{{Param: "alpha", Values: []float64{math.NaN()}}}}, "not finite"},
		{"zero alpha", Document{V: 1, Grid: []Axis{{Param: "alpha", Values: []float64{0, 0.5}}}}, "silently mean the default"},
		{"zero level", Document{V: 1, Grid: []Axis{{Param: "level", Values: []float64{0}}}}, "silently mean the default"},
		{"zero visible mean", Document{V: 1, Grid: []Axis{{Param: "visible_mean_hours", Values: []float64{0, 500}}}}, "silently mean the default"},
		{"zero max trials", Document{V: 1, Grid: []Axis{{Param: "max_trials", Values: []float64{0}}}}, "silently mean the default"},
		{"inert fleet param", Document{V: 1, Base: fleetBase, Grid: []Axis{{Param: "visible_mean_hours", Values: []float64{1000}}}}, "inert"},
		{"inert scrubs on custom fleet", Document{V: 1,
			Base: EstimateRequest{Fleet: []FleetEntry{{VisibleMeanHours: 1000, RepairHours: 10}}},
			Grid: []Axis{{Param: "scrubs_per_year", Values: []float64{0, 3, 12}}}}, "inert"},
		{"inert scrubs on pinned tier", Document{V: 1,
			Base: EstimateRequest{Fleet: []FleetEntry{{Tier: "consumer", ScrubsPerYear: 6}, {Tier: "tape"}}},
			Grid: []Axis{{Param: "scrubs_per_year", Values: []float64{3, 12}}}}, "inert"},
		{"seed beyond float53", Document{V: 1, Grid: []Axis{{Param: "seed", Values: []float64{9.007199254740994e15}}}}, "2^53"},
		{"too many points", Document{V: 1, Grid: []Axis{
			{Param: "visible_mean_hours", Values: huge},
			{Param: "latent_mean_hours", Values: huge},
		}}, "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Expand(tc.doc)
			if err == nil {
				t.Fatalf("Expand accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseStrict: unknown fields and trailing garbage are rejected, a
// valid document round-trips.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"v":1,"axes":[]}`)); err == nil {
		t.Error("Parse accepted an unknown top-level field")
	}
	if _, err := Parse([]byte(`{"v":1,"grid":[{"param":"alpha","valuez":[1]}]}`)); err == nil {
		t.Error("Parse accepted an unknown axis field")
	}
	doc, err := Parse([]byte(`{"v":1,"name":"ok","base":{"trials":10},"grid":[{"param":"alpha","values":[1,0.5]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Name != "ok" || len(doc.Grid) != 1 {
		t.Errorf("parsed %+v", doc)
	}
}

// TestFingerprintEquivalence is the canonicalization contract: an
// expanded point content-addresses identically to the equivalent
// hand-built request, and canonically-equal points inside one document
// (min_intact 0 vs its default 1) collide.
func TestFingerprintEquivalence(t *testing.T) {
	seed := uint64(9)
	doc := Document{
		V: Version,
		Base: EstimateRequest{
			Trials: 60, HorizonYears: 50, Seed: &seed,
		},
		Grid: []Axis{
			{Param: "replicas", Values: []float64{2, 3}},
			{Param: "scrubs_per_year", Values: []float64{0, 12}},
		},
	}
	points, err := Expand(doc)
	if err != nil {
		t.Fatal(err)
	}
	// Point 3 = replicas 2 (slow axis index 1... ) — order: (2,0),(2,12),(3,0),(3,12).
	scrubs := 12.0
	hand := EstimateRequest{
		Replicas: 3, ScrubsPerYear: &scrubs,
		Trials: 60, HorizonYears: 50, Seed: &seed,
	}
	handKey, err := hand.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	ptKey, err := points[3].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if ptKey != handKey {
		t.Errorf("expanded point fingerprint %s != hand-built request fingerprint %s", ptKey, handKey)
	}

	// min_intact 0 and 1 canonicalize identically, so a sweep over both
	// yields colliding fingerprints — the dedupe satellite's substrate.
	collide := Document{
		V:    Version,
		Base: EstimateRequest{Trials: 60},
		Grid: []Axis{{Param: "min_intact", Values: []float64{0, 1}}},
	}
	cp, err := Expand(collide)
	if err != nil {
		t.Fatal(err)
	}
	k0, err := cp[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	k1, err := cp[1].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if k0 != k1 {
		t.Errorf("min_intact 0 and 1 fingerprints differ: %s vs %s", k0, k1)
	}
}
