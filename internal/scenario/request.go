package scenario

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/aging"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/storage"
)

// HazardSpec is a non-stationary fault profile on the wire: a named kind
// plus that kind's parameters. It builds the faults.Hazard that scales
// both fault channels over replica age (docs/MODEL.md §Hazard profiles):
//
//	{"kind": "constant", "factor": 2}
//	{"kind": "weibull", "shape": 2, "scale_hours": 50000}
//	{"kind": "bathtub", "burn_in_hours": 8760, "burn_in_factor": 4,
//	                    "wear_onset_hours": 43800, "wear_factor": 8}
//	{"kind": "piecewise", "bounds_hours": [1000], "factors": [3, 1]}
//
// Setting a parameter that does not belong to the kind is an error, so a
// typo ("shape" on a bathtub) fails loudly instead of silently sweeping
// the default. NormalizeHours, valid with any kind, rescales the profile
// so its mean multiplier over that horizon is exactly 1 — the
// equal-mean-rate framing for "does the time profile itself matter?"
// comparisons (experiment E17).
type HazardSpec struct {
	// Kind names the profile: "constant", "weibull", "bathtub", or
	// "piecewise".
	Kind string `json:"kind"`
	// Factor is the constant profile's multiplier.
	Factor float64 `json:"factor,omitempty"`
	// Shape and ScaleHours parameterize the Weibull profile (shape >= 1).
	Shape      float64 `json:"shape,omitempty"`
	ScaleHours float64 `json:"scale_hours,omitempty"`
	// BurnInHours/BurnInFactor and WearOnsetHours/WearFactor parameterize
	// the bathtub profile (aging.Bathtub).
	BurnInHours    float64 `json:"burn_in_hours,omitempty"`
	BurnInFactor   float64 `json:"burn_in_factor,omitempty"`
	WearOnsetHours float64 `json:"wear_onset_hours,omitempty"`
	WearFactor     float64 `json:"wear_factor,omitempty"`
	// BoundsHours and Factors parameterize the piecewise profile
	// (faults.NewPiecewiseHazard).
	BoundsHours []float64 `json:"bounds_hours,omitempty"`
	Factors     []float64 `json:"factors,omitempty"`
	// NormalizeHours, when positive, wraps the profile in
	// faults.Normalize over this horizon (mean multiplier 1).
	NormalizeHours float64 `json:"normalize_hours,omitempty"`
}

// hazardKindParams maps each kind to its parameter fields, as wire
// names. The reverse index drives the wrong-kind rejection in Build and
// the axis/kind check in scenario validation.
var hazardKindParams = map[string][]string{
	"constant":  {"factor"},
	"weibull":   {"shape", "scale_hours"},
	"bathtub":   {"burn_in_hours", "burn_in_factor", "wear_onset_hours", "wear_factor"},
	"piecewise": {"bounds_hours", "factors"},
}

// setFields returns the names of the kind-specific parameters the spec
// sets (NormalizeHours is kind-independent and excluded).
func (h HazardSpec) setFields() []string {
	var out []string
	if h.Factor != 0 {
		out = append(out, "factor")
	}
	if h.Shape != 0 {
		out = append(out, "shape")
	}
	if h.ScaleHours != 0 {
		out = append(out, "scale_hours")
	}
	if h.BurnInHours != 0 {
		out = append(out, "burn_in_hours")
	}
	if h.BurnInFactor != 0 {
		out = append(out, "burn_in_factor")
	}
	if h.WearOnsetHours != 0 {
		out = append(out, "wear_onset_hours")
	}
	if h.WearFactor != 0 {
		out = append(out, "wear_factor")
	}
	if h.BoundsHours != nil {
		out = append(out, "bounds_hours")
	}
	if h.Factors != nil {
		out = append(out, "factors")
	}
	return out
}

// Build constructs the faults.Hazard the spec describes, rejecting
// unknown kinds and parameters that belong to a different kind.
func (h HazardSpec) Build() (faults.Hazard, error) {
	fields, ok := hazardKindParams[h.Kind]
	if !ok {
		return nil, fmt.Errorf("unknown hazard kind %q (valid: constant, weibull, bathtub, piecewise)", h.Kind)
	}
	allowed := make(map[string]bool, len(fields))
	for _, f := range fields {
		allowed[f] = true
	}
	for _, f := range h.setFields() {
		if !allowed[f] {
			return nil, fmt.Errorf("hazard parameter %q does not apply to kind %q (its parameters: %s)",
				f, h.Kind, strings.Join(fields, ", "))
		}
	}
	var built faults.Hazard
	var err error
	switch h.Kind {
	case "constant":
		built, err = faults.NewConstantHazard(h.Factor)
	case "weibull":
		built, err = faults.NewWeibullHazard(h.Shape, h.ScaleHours)
	case "bathtub":
		built, err = aging.Bathtub(h.BurnInHours, h.BurnInFactor, h.WearOnsetHours, h.WearFactor)
	case "piecewise":
		built, err = faults.NewPiecewiseHazard(h.BoundsHours, h.Factors)
	}
	if err != nil {
		return nil, err
	}
	if h.NormalizeHours != 0 {
		if h.NormalizeHours < 0 || math.IsNaN(h.NormalizeHours) || math.IsInf(h.NormalizeHours, 0) {
			return nil, fmt.Errorf("normalize_hours %v must be positive and finite", h.NormalizeHours)
		}
		return faults.Normalize(built, h.NormalizeHours)
	}
	return built, nil
}

// FleetEntry is one replica of a heterogeneous fleet on the wire: either
// a named tier (resolved by storage.TierSpec, so CLI and daemon agree on
// what "consumer" means) or explicit storage.Spec numbers, with explicit
// fields overriding the tier's. JSON cannot carry +Inf, so a negative
// mean disables that fault channel; a custom entry that omits
// latent_mean_hours has no latent channel at all.
type FleetEntry struct {
	Tier             string  `json:"tier,omitempty"`
	Label            string  `json:"label,omitempty"`
	VisibleMeanHours float64 `json:"visible_mean_hours,omitempty"`
	LatentMeanHours  float64 `json:"latent_mean_hours,omitempty"`
	// ScrubsPerYear: 0 means "keep the tier's frequency" (or never, for
	// a custom entry); negative means explicitly never audited — the
	// escape hatch for overriding a tier back to zero.
	ScrubsPerYear     float64 `json:"scrubs_per_year,omitempty"`
	ScrubOffsetHours  float64 `json:"scrub_offset_hours,omitempty"`
	RepairHours       float64 `json:"repair_hours,omitempty"`
	AccessRatePerHour float64 `json:"access_rate_per_hour,omitempty"`
	AccessCoverage    float64 `json:"access_coverage,omitempty"`
	// Hazard, when non-nil, makes this replica's fault channels
	// non-stationary (see HazardSpec). Tiers carry no profile, so there
	// is nothing to override: the entry's profile is always the final one.
	Hazard *HazardSpec `json:"hazard,omitempty"`
}

// WireFloat maps a fault mean onto its wire form: JSON cannot carry
// +Inf, so a disabled channel travels as -1. The inverse lives in
// EstimateRequest.Build / FleetEntry.spec.
func WireFloat(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// FleetEntryFromSpec converts a resolved storage spec into its wire
// form, mapping +Inf means onto the negative-disables convention. A
// hazard profile is not reverse-mapped: named tiers never carry one, and
// a built faults.Hazard has no canonical wire decomposition.
func FleetEntryFromSpec(s storage.Spec) FleetEntry {
	return FleetEntry{
		Label:             s.Label,
		VisibleMeanHours:  WireFloat(s.VisibleMean),
		LatentMeanHours:   WireFloat(s.LatentMean),
		ScrubsPerYear:     s.ScrubsPerYear,
		ScrubOffsetHours:  s.ScrubOffset,
		RepairHours:       s.RepairHours,
		AccessRatePerHour: s.AccessRatePerHour,
		AccessCoverage:    s.AccessCoverage,
	}
}

// defaultScrubsMatters reports whether the entry's resolved audit
// frequency follows the request-level scrubs_per_year default: true
// only for tier entries that neither pin their own frequency nor name
// a tier that ignores the default (tape audits once a year regardless).
// Custom entries never consume the default. Scenario validation uses
// this to reject scrubs_per_year axes that could not move any replica.
func (e FleetEntry) defaultScrubsMatters() bool {
	if e.Tier == "" || e.ScrubsPerYear != 0 {
		return false
	}
	a, ok := storage.TierSpec(e.Tier, 1)
	if !ok {
		return false
	}
	b, _ := storage.TierSpec(e.Tier, 2)
	return a.ScrubsPerYear != b.ScrubsPerYear
}

// spec resolves the entry into a storage.Spec. defaultScrubs applies to
// tiers that do not set their own audit frequency.
func (e FleetEntry) spec(defaultScrubs float64) (storage.Spec, error) {
	var s storage.Spec
	if e.Tier != "" {
		t, ok := storage.TierSpec(e.Tier, defaultScrubs)
		if !ok {
			return storage.Spec{}, fmt.Errorf("unknown tier %q (valid: %s)", e.Tier, strings.Join(storage.TierNames(), ", "))
		}
		s = t
	} else {
		s = storage.Spec{Label: "custom", LatentMean: math.Inf(1)}
	}
	if e.Label != "" {
		s.Label = e.Label
	}
	unfinite := func(v float64) float64 {
		if v < 0 {
			return math.Inf(1)
		}
		return v
	}
	if e.VisibleMeanHours != 0 {
		s.VisibleMean = unfinite(e.VisibleMeanHours)
	}
	if e.LatentMeanHours != 0 {
		s.LatentMean = unfinite(e.LatentMeanHours)
	}
	switch {
	case e.ScrubsPerYear < 0:
		s.ScrubsPerYear = 0 // never audited
	case e.ScrubsPerYear > 0:
		s.ScrubsPerYear = e.ScrubsPerYear
	}
	if e.ScrubOffsetHours != 0 {
		s.ScrubOffset = e.ScrubOffsetHours
	}
	if e.RepairHours != 0 {
		s.RepairHours = e.RepairHours
	}
	if e.AccessRatePerHour != 0 {
		s.AccessRatePerHour = e.AccessRatePerHour
	}
	if e.AccessCoverage != 0 {
		s.AccessCoverage = e.AccessCoverage
	}
	if e.Hazard != nil {
		h, err := e.Hazard.Build()
		if err != nil {
			return storage.Spec{}, fmt.Errorf("hazard: %w", err)
		}
		s.Hazard = h
	}
	return s, nil
}

// DefaultTrials is the wire default Monte Carlo budget for fixed-trial
// requests that omit "trials" — shared by Build and the daemon policy
// clamp so both agree on what a budget-less request means.
const DefaultTrials = 1000

// EstimateRequest is one estimation query: the uniform-fleet shorthand
// (mirroring cmd/ltsim's flags and their defaults) or an explicit Fleet,
// plus the Monte Carlo options that shape the result. Omitted fields take
// the same defaults as the CLI, so the CLI in client mode and a hand-rolled
// curl body describing the same system build the same sim.Config — and
// therefore the same cache key.
type EstimateRequest struct {
	// Replicas is the uniform-fleet copy count (default 2). Ignored when
	// Fleet is set.
	Replicas int `json:"replicas,omitempty"`
	// MinIntact is the recovery threshold: 1 for replication (default),
	// m for an m-of-n erasure code.
	MinIntact int `json:"min_intact,omitempty"`
	// VisibleMeanHours / LatentMeanHours are the uniform per-replica
	// fault means (defaults: the paper's Cheetah MV and ML). Negative
	// disables the channel.
	VisibleMeanHours float64 `json:"visible_mean_hours,omitempty"`
	LatentMeanHours  float64 `json:"latent_mean_hours,omitempty"`
	// RepairVisibleHours / RepairLatentHours are the uniform automated
	// repair times (defaults: the paper's MRV and MRL).
	RepairVisibleHours float64 `json:"repair_visible_hours,omitempty"`
	RepairLatentHours  float64 `json:"repair_latent_hours,omitempty"`
	// ScrubsPerYear is the uniform periodic audit frequency; nil means
	// the paper's 3/year, explicit 0 means never audited.
	ScrubsPerYear *float64 `json:"scrubs_per_year,omitempty"`
	// Alpha is the §5.3 correlation factor in (0,1]; 0 means 1
	// (independent).
	Alpha float64 `json:"alpha,omitempty"`
	// RepairBugProb and AuditWearProb are the §6.6 side-effect
	// probabilities.
	RepairBugProb float64 `json:"repair_bug_prob,omitempty"`
	AuditWearProb float64 `json:"audit_wear_prob,omitempty"`
	// Fleet, when non-empty, replaces the uniform shorthand with one
	// entry per replica.
	Fleet []FleetEntry `json:"fleet,omitempty"`
	// Hazard, when non-nil, applies a non-stationary fault profile to
	// every replica of the uniform fleet (see HazardSpec). Per-entry
	// profiles on Fleet entries take precedence; with a Fleet set, this
	// field fills in entries that carry none, mirroring the simulator's
	// scalar-to-spec inheritance.
	Hazard *HazardSpec `json:"hazard,omitempty"`

	// Trials is the Monte Carlo budget (default 1000). When
	// TargetRelWidth is set it is instead the adaptive run's minimum
	// trial count and defaults to 0 (the simulator's floor).
	Trials int `json:"trials,omitempty"`
	// HorizonYears censors trials (0 = run each to loss).
	HorizonYears float64 `json:"horizon_years,omitempty"`
	// Seed fixes the randomness; nil means 1. A pointer so that an
	// explicit seed 0 stays seed 0.
	Seed *uint64 `json:"seed,omitempty"`
	// Level is the confidence level in (0,1); 0 means 0.95.
	Level float64 `json:"level,omitempty"`

	// TargetRelWidth, when positive, makes the run adaptive: it stops at
	// the first batch boundary where the stopping interval's relative
	// half-width reaches the target (see sim.Options.TargetRelWidth).
	// Adaptive results are deterministic and cacheable: the stopping
	// rule joins the canonical key, the realized trial count does not.
	TargetRelWidth float64 `json:"target_rel_width,omitempty"`
	// MaxTrials caps an adaptive run (0 = the simulator's 1<<20
	// default). Ignored for fixed-trial runs.
	MaxTrials int `json:"max_trials,omitempty"`
	// Bias controls importance-sampled failure biasing for rare-event
	// runs: 0 (default) is plain Monte Carlo, -1 asks the analytic
	// model to choose the boost factor β from the configuration and
	// horizon, and any value >= 1 is used as β directly. Biased runs
	// require a horizon and report the Horvitz–Thompson weighted
	// estimate with its effective sample size. Mirrors
	// sim.Options.Bias (-1 is sim.AutoBias).
	Bias float64 `json:"bias,omitempty"`

	// Progress asks /estimate to stream NDJSON progress frames followed
	// by the final result frame, instead of a single JSON body. It is
	// transport, not configuration: it does not shape the result and is
	// excluded from the canonical key, so a progress-streamed run and a
	// plain run of the same request share one cache entry.
	Progress bool `json:"progress,omitempty"`
}

// Build assembles the simulator configuration and options the request
// describes. The result is not yet validated beyond what construction
// requires; sim.Fingerprint / sim.NewRunner validate fully.
func (r EstimateRequest) Build() (sim.Config, sim.Options, error) {
	scrubs := 3.0
	if r.ScrubsPerYear != nil {
		scrubs = *r.ScrubsPerYear
	}
	alpha := r.Alpha
	if alpha == 0 {
		alpha = 1
	}
	var corr faults.Correlation = faults.Independent{}
	if alpha != 1 {
		a, err := faults.NewAlphaCorrelation(alpha)
		if err != nil {
			return sim.Config{}, sim.Options{}, err
		}
		corr = a
	}

	var hazard faults.Hazard
	if r.Hazard != nil {
		h, err := r.Hazard.Build()
		if err != nil {
			return sim.Config{}, sim.Options{}, fmt.Errorf("hazard: %w", err)
		}
		hazard = h
	}

	var cfg sim.Config
	if len(r.Fleet) > 0 {
		specs := make([]storage.Spec, len(r.Fleet))
		for i, e := range r.Fleet {
			s, err := e.spec(scrubs)
			if err != nil {
				return sim.Config{}, sim.Options{}, fmt.Errorf("fleet entry %d: %w", i, err)
			}
			if s.Hazard == nil {
				s.Hazard = hazard
			}
			specs[i] = s
		}
		built, err := storage.FleetConfig(specs...)
		if err != nil {
			return sim.Config{}, sim.Options{}, err
		}
		cfg = built
	} else {
		orDefault := func(v, def float64) float64 {
			switch {
			case v < 0:
				return math.Inf(1)
			case v == 0:
				return def
			}
			return v
		}
		// Repairs cannot be disabled: the negative-disables convention
		// applies only to fault means.
		for name, v := range map[string]float64{
			"repair_visible_hours": r.RepairVisibleHours,
			"repair_latent_hours":  r.RepairLatentHours,
		} {
			if v < 0 || math.IsInf(v, 1) {
				return sim.Config{}, sim.Options{}, fmt.Errorf("%s %v must be positive and finite", name, v)
			}
		}
		rep, err := repair.Automated(
			orDefault(r.RepairVisibleHours, model.PaperMRV),
			orDefault(r.RepairLatentHours, model.PaperMRL),
			r.RepairBugProb)
		if err != nil {
			return sim.Config{}, sim.Options{}, err
		}
		var strat scrub.Strategy = scrub.None{}
		if scrubs > 0 {
			p, err := scrub.NewPeriodic(scrubs, 0)
			if err != nil {
				return sim.Config{}, sim.Options{}, err
			}
			strat = p
		}
		replicas := r.Replicas
		if replicas == 0 {
			replicas = 2
		}
		cfg = sim.Config{
			Replicas:    replicas,
			VisibleMean: orDefault(r.VisibleMeanHours, model.PaperMV),
			LatentMean:  orDefault(r.LatentMeanHours, model.PaperML),
			Scrub:       strat,
			Repair:      rep,
			Hazard:      hazard,
		}
	}
	cfg.MinIntact = r.MinIntact
	cfg.Correlation = corr
	cfg.AuditLatentFaultProb = r.AuditWearProb

	trials := r.Trials
	if trials == 0 && r.TargetRelWidth == 0 {
		trials = DefaultTrials
	}
	var seed uint64 = 1
	if r.Seed != nil {
		seed = *r.Seed
	}
	opt := sim.Options{
		Trials:         trials,
		Horizon:        model.YearsToHours(r.HorizonYears),
		Seed:           seed,
		Level:          r.Level,
		TargetRelWidth: r.TargetRelWidth,
		MaxTrials:      r.MaxTrials,
		Bias:           r.Bias,
	}
	return cfg, opt, nil
}

// Fingerprint builds the request and returns its sim.Fingerprint cache
// key — the content address a daemon without request policy would use.
func (r EstimateRequest) Fingerprint() (string, error) {
	cfg, opt, err := r.Build()
	if err != nil {
		return "", err
	}
	return sim.Fingerprint(cfg, opt)
}
