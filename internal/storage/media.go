package storage

import (
	"fmt"
	"math"
)

// MediaKind distinguishes the §6.2 audit-economics classes.
type MediaKind int

const (
	// Online media (disk) can be audited in place at media rate, with no
	// human handling.
	Online MediaKind = iota
	// Offline media (tape, optical) must be retrieved, mounted, read,
	// dismounted, and returned; every step costs money and risks
	// handling faults, and the read itself degrades the medium.
	Offline
)

// String returns the media-kind name.
func (k MediaKind) String() string {
	switch k {
	case Online:
		return "online"
	case Offline:
		return "offline"
	default:
		return fmt.Sprintf("storage.MediaKind(%d)", int(k))
	}
}

// Media describes one replica's storage medium for audit and repair
// economics (§6.2–§6.4).
type Media struct {
	// Name identifies the medium ("consumer disk", "LTO tape shelf").
	Name string
	// Kind is Online or Offline.
	Kind MediaKind
	// AuditHours is the wall-clock time to audit one replica once:
	// a full scan for disk; retrieve+mount+read+return for tape.
	AuditHours float64
	// AuditCost is the dollar cost of one audit pass (staff time,
	// transport, reader wear). Near zero for online media.
	AuditCost float64
	// HandlingFaultProb is the probability that one audit or repair
	// handling cycle itself inflicts a fault on the medium (§6.2: "the
	// error-prone human handling of media", AMIA tape guidance). Zero
	// for online media under normal duty.
	HandlingFaultProb float64
	// ReadWearFaultProb is the probability that the read pass degrades
	// the medium enough to plant a latent fault ("the media degradation
	// caused by the reading process").
	ReadWearFaultProb float64
	// RepairHours is the time to restore a replica on this medium from
	// a good copy once the fault is known.
	RepairHours float64
}

// Validate reports whether the media description is well-formed.
func (m Media) Validate() error {
	if m.Kind != Online && m.Kind != Offline {
		return fmt.Errorf("%w: media %q kind %d unknown", ErrInvalid, m.Name, int(m.Kind))
	}
	for name, v := range map[string]float64{
		"audit hours":  m.AuditHours,
		"audit cost":   m.AuditCost,
		"repair hours": m.RepairHours,
	} {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("%w: media %q %s = %v, must be non-negative", ErrInvalid, m.Name, name, v)
		}
	}
	for name, p := range map[string]float64{
		"handling fault probability":  m.HandlingFaultProb,
		"read wear fault probability": m.ReadWearFaultProb,
	} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("%w: media %q %s = %v, must be in [0,1]", ErrInvalid, m.Name, name, p)
		}
	}
	return nil
}

// AuditFaultProb returns the probability that a single audit pass itself
// inflicts a fault — the §6.6 side-channel that makes over-frequent
// auditing counterproductive, dominated by handling for offline media and
// by read wear for both.
func (m Media) AuditFaultProb() float64 {
	// Independent channels: 1 - (1-h)(1-w).
	return 1 - (1-m.HandlingFaultProb)*(1-m.ReadWearFaultProb)
}

// DiskMedia returns an online medium built from a drive spec: audits run
// at the sustained media rate, repairs are a full-drive copy, and no
// handling is involved. readWear is the per-pass wear fault probability
// (0 for a duty cycle within spec).
func DiskMedia(d DriveSpec, readWear float64) Media {
	return Media{
		Name:              d.Name,
		Kind:              Online,
		AuditHours:        d.FullScanHours(),
		AuditCost:         0.01 * d.Price() / 1000, // negligible: power + amortized wear
		HandlingFaultProb: 0,
		ReadWearFaultProb: readWear,
		RepairHours:       d.FullScanHours(),
	}
}

// TapeShelf returns an offline tape medium with §6.2's cost structure:
// hours of retrieval and mounting around the read, a per-cycle handling
// fault probability (lost, dropped, misfiled, reader-damaged tapes), and
// read-pass wear.
func TapeShelf(capacityGB, readMBps, retrieveHours, handlingProb, wearProb, costPerCycle float64) Media {
	readHours := capacityGB * 1e9 / (readMBps * 1e6) / 3600
	return Media{
		Name:              "offline tape shelf",
		Kind:              Offline,
		AuditHours:        retrieveHours + readHours,
		AuditCost:         costPerCycle,
		HandlingFaultProb: handlingProb,
		ReadWearFaultProb: wearProb,
		RepairHours:       retrieveHours + readHours, // re-write plus the same handling
	}
}
