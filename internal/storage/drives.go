// Package storage models the storage substrate of §6.1–§6.2: concrete
// drive specifications (the paper's Seagate Barracuda and Cheetah),
// irrecoverable-bit-error arithmetic, and the online/offline media
// distinction that drives the disk-versus-tape auditing argument.
package storage

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
)

// ErrInvalid reports a storage parameter outside its domain.
var ErrInvalid = errors.New("storage: invalid parameter")

// Class distinguishes the two §6.1 market segments.
type Class int

const (
	// Consumer drives: cheap, fairly fast, fairly reliable.
	Consumer Class = iota
	// Enterprise drives: vastly more expensive, much faster, only a
	// little more reliable.
	Enterprise
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Consumer:
		return "consumer"
	case Enterprise:
		return "enterprise"
	default:
		return fmt.Sprintf("storage.Class(%d)", int(c))
	}
}

// DriveSpec captures the datasheet numbers §6.1 works from.
type DriveSpec struct {
	// Name is the marketing name.
	Name string
	// Class is the market segment.
	Class Class
	// CapacityGB is the formatted capacity in decimal gigabytes.
	CapacityGB float64
	// SustainedMBps is the sustained media transfer rate in MB/s — the
	// rate that bounds scrub and rebuild throughput. (Interface burst
	// rates are higher and irrelevant to reliability arithmetic.)
	SustainedMBps float64
	// InterfaceMBps is the quoted interface bandwidth in MB/s; the paper
	// uses the Cheetah's 300 MB/s figure for its 20-minute repair
	// estimate.
	InterfaceMBps float64
	// UBER is the quoted irrecoverable bit error rate per bit read
	// (10^-14 consumer, 10^-15 enterprise in §6.1).
	UBER float64
	// ServiceLifeFaultProb is the probability of a visible in-service
	// fault over ServiceLifeYears (7% Barracuda, 3% Cheetah in §6.1).
	ServiceLifeFaultProb float64
	// ServiceLifeYears is the service life the fault probability refers
	// to (5 years for both §6.1 drives).
	ServiceLifeYears float64
	// PricePerGB is the quoted price in dollars per decimal GB
	// (TigerDirect, June 2005: $0.57 consumer, $8.20 enterprise).
	PricePerGB float64
}

// Validate reports whether the spec is internally consistent.
func (d DriveSpec) Validate() error {
	pos := func(name string, v float64) error {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("%w: drive %q %s = %v, must be positive", ErrInvalid, d.Name, name, v)
		}
		return nil
	}
	for name, v := range map[string]float64{
		"capacity":       d.CapacityGB,
		"sustained rate": d.SustainedMBps,
		"interface rate": d.InterfaceMBps,
		"service life":   d.ServiceLifeYears,
		"price per GB":   d.PricePerGB,
	} {
		if err := pos(name, v); err != nil {
			return err
		}
	}
	if d.UBER < 0 || d.UBER > 1 || math.IsNaN(d.UBER) {
		return fmt.Errorf("%w: drive %q UBER = %v, must be in [0,1]", ErrInvalid, d.Name, d.UBER)
	}
	if d.ServiceLifeFaultProb < 0 || d.ServiceLifeFaultProb >= 1 || math.IsNaN(d.ServiceLifeFaultProb) {
		return fmt.Errorf("%w: drive %q service-life fault probability = %v, must be in [0,1)", ErrInvalid, d.Name, d.ServiceLifeFaultProb)
	}
	return nil
}

// MTTFHours derives the visible-fault mean time from the service-life
// fault probability under the memoryless assumption (eq 1 inverted):
// MTTF = -T / ln(1 - P). For the Cheetah's 3%/5yr this yields 1.44e6 h,
// matching the paper's MV = 1.4e6 h within rounding — a consistency check
// between §5.4 and §6.1.
func (d DriveSpec) MTTFHours() float64 {
	life := model.YearsToHours(d.ServiceLifeYears)
	return -life / math.Log(1-d.ServiceLifeFaultProb)
}

// CapacityBytes returns the capacity in bytes (decimal GB).
func (d DriveSpec) CapacityBytes() float64 { return d.CapacityGB * 1e9 }

// CapacityBits returns the capacity in bits.
func (d DriveSpec) CapacityBits() float64 { return d.CapacityBytes() * 8 }

// Price returns the drive's price in dollars.
func (d DriveSpec) Price() float64 { return d.PricePerGB * d.CapacityGB }

// FullScanHours returns the time to read the whole drive at the sustained
// media rate: the cost of one scrub pass or one rebuild copy.
func (d DriveSpec) FullScanHours() float64 {
	seconds := d.CapacityBytes() / (d.SustainedMBps * 1e6)
	return seconds / 3600
}

// LifetimeBitErrors returns the expected number of irrecoverable bit
// errors over the drive's service life when it is active (transferring at
// the given rate) for activeFraction of the time — the §6.1 "99% idle"
// calculation. rateMBps of zero uses the sustained rate.
func (d DriveSpec) LifetimeBitErrors(activeFraction, rateMBps float64) float64 {
	if activeFraction < 0 {
		activeFraction = 0
	}
	if activeFraction > 1 {
		activeFraction = 1
	}
	if rateMBps <= 0 {
		rateMBps = d.SustainedMBps
	}
	lifeHours := model.YearsToHours(d.ServiceLifeYears)
	activeSeconds := lifeHours * 3600 * activeFraction
	bitsRead := activeSeconds * rateMBps * 1e6 * 8
	return bitsRead * d.UBER
}

// ScanBitErrorProbability returns the probability that one full-drive
// read hits at least one irrecoverable bit error: 1 - exp(-bits·UBER).
// This is the per-scrub-pass latent-fault discovery risk and the rebuild
// hazard the Chen baseline prices in.
func (d DriveSpec) ScanBitErrorProbability() float64 {
	return 1 - math.Exp(-d.CapacityBits()*d.UBER)
}

// Barracuda200 returns the §6.1 consumer drive: Seagate Barracuda
// ST3200822A, 200 GB, 7% five-year visible fault probability, UBER 1e-14,
// $0.57/GB. The 65 MB/s sustained rate is the published media rate for
// the 7200.7 family and reproduces the paper's "about 8" lifetime bit
// errors at 1% duty (see EXPERIMENTS.md E7 for the arithmetic).
func Barracuda200() DriveSpec {
	return DriveSpec{
		Name:                 "Seagate Barracuda ST3200822A",
		Class:                Consumer,
		CapacityGB:           200,
		SustainedMBps:        65,
		InterfaceMBps:        100, // ATA/100
		UBER:                 1e-14,
		ServiceLifeFaultProb: 0.07,
		ServiceLifeYears:     5,
		PricePerGB:           0.57,
	}
}

// Cheetah146 returns the §6.1/§5.4 enterprise drive: Seagate Cheetah
// 15K.4, 146 GB, 3% five-year visible fault probability, UBER 1e-15,
// $8.20/GB, 300 MB/s quoted bandwidth (the figure the paper uses for its
// 20-minute MRV estimate).
func Cheetah146() DriveSpec {
	return DriveSpec{
		Name:                 "Seagate Cheetah 15K.4",
		Class:                Enterprise,
		CapacityGB:           146,
		SustainedMBps:        85, // published sustained media rate
		InterfaceMBps:        300,
		UBER:                 1e-15,
		ServiceLifeFaultProb: 0.03,
		ServiceLifeYears:     5,
		PricePerGB:           8.20,
	}
}

// PriceRatio returns how many times more expensive per byte b is than a
// (§6.1's "about 14 times as much per byte").
func PriceRatio(a, b DriveSpec) float64 {
	return b.PricePerGB / a.PricePerGB
}
