package storage

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/scrub"
	"repro/internal/sim"
)

// Spec names one replica's storage substrate for heterogeneous-fleet
// simulation: the reliability and maintenance numbers a concrete drive
// or medium implies, ready to bridge into a sim.ReplicaSpec. It is the
// §6.1–§6.2 vocabulary ("a consumer disk scrubbed monthly", "a tape on
// a shelf audited yearly") turned into simulator inputs.
type Spec struct {
	// Label names the tier ("consumer-disk", "enterprise-disk",
	// "tape-shelf"); it becomes the replica's site/tier label.
	Label string
	// VisibleMean is the mean time to a visible fault in hours (+Inf
	// disables the channel).
	VisibleMean float64
	// LatentMean is the mean time to a latent fault in hours (+Inf
	// disables the channel).
	LatentMean float64
	// ScrubsPerYear is the periodic audit frequency (0 = never audited).
	ScrubsPerYear float64
	// ScrubOffset staggers the audit schedule by this many hours, so
	// fleet members need not audit in lockstep.
	ScrubOffset float64
	// RepairHours is the time to restore this replica from a good copy
	// once a fault is known (both fault classes; a full-media copy).
	RepairHours float64
	// AccessRatePerHour and AccessCoverage, when both positive, add the
	// §4.1 user-access detection channel.
	AccessRatePerHour float64
	AccessCoverage    float64
	// Hazard, when non-nil, makes both fault channels non-stationary:
	// the profile multiplies their rates over the replica's age (burn-in,
	// wear-out — see faults.Hazard and aging.Bathtub). Named tiers carry
	// no profile; it is set by callers modelling a specific fleet.
	Hazard faults.Hazard
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	for name, v := range map[string]float64{
		"visible mean": s.VisibleMean,
		"latent mean":  s.LatentMean,
		"repair hours": s.RepairHours,
	} {
		if math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("%w: spec %q %s = %v, must be positive", ErrInvalid, s.Label, name, v)
		}
	}
	if math.IsInf(s.RepairHours, 1) {
		return fmt.Errorf("%w: spec %q repair hours must be finite", ErrInvalid, s.Label)
	}
	if s.ScrubsPerYear < 0 || math.IsNaN(s.ScrubsPerYear) {
		return fmt.Errorf("%w: spec %q scrubs/year = %v, must be >= 0", ErrInvalid, s.Label, s.ScrubsPerYear)
	}
	if math.IsNaN(s.ScrubOffset) || math.IsInf(s.ScrubOffset, 0) {
		return fmt.Errorf("%w: spec %q scrub offset = %v, must be finite", ErrInvalid, s.Label, s.ScrubOffset)
	}
	// The access channel is all-or-nothing: a half-set pair would be
	// silently dropped by the bridge, which reads as a config typo.
	if (s.AccessRatePerHour > 0) != (s.AccessCoverage > 0) {
		return fmt.Errorf("%w: spec %q access rate %v and coverage %v must be set together", ErrInvalid, s.Label, s.AccessRatePerHour, s.AccessCoverage)
	}
	for name, v := range map[string]float64{
		"access rate":     s.AccessRatePerHour,
		"access coverage": s.AccessCoverage,
	} {
		if math.IsNaN(v) || v < 0 {
			return fmt.Errorf("%w: spec %q %s = %v, must be non-negative", ErrInvalid, s.Label, name, v)
		}
	}
	if s.AccessCoverage > 1 {
		return fmt.Errorf("%w: spec %q access coverage = %v, must be in [0,1]", ErrInvalid, s.Label, s.AccessCoverage)
	}
	if s.Hazard != nil {
		if err := s.Hazard.Validate(); err != nil {
			return fmt.Errorf("%w: spec %q hazard: %v", ErrInvalid, s.Label, err)
		}
	}
	return nil
}

// ReplicaSpec bridges the storage spec into the simulator's per-replica
// configuration: periodic audits at ScrubsPerYear, automated repair at
// RepairHours for both fault classes, and the optional access channel.
func (s Spec) ReplicaSpec() (sim.ReplicaSpec, error) {
	if err := s.Validate(); err != nil {
		return sim.ReplicaSpec{}, err
	}
	var strat scrub.Strategy = scrub.None{}
	if s.ScrubsPerYear > 0 {
		p, err := scrub.NewPeriodic(s.ScrubsPerYear, s.ScrubOffset)
		if err != nil {
			return sim.ReplicaSpec{}, fmt.Errorf("storage: spec %q: %w", s.Label, err)
		}
		strat = p
	}
	rep, err := repair.Automated(s.RepairHours, s.RepairHours, 0)
	if err != nil {
		return sim.ReplicaSpec{}, fmt.Errorf("storage: spec %q: %w", s.Label, err)
	}
	var access scrub.Strategy
	if s.AccessRatePerHour > 0 && s.AccessCoverage > 0 {
		a, err := scrub.NewOnAccess(s.AccessRatePerHour, s.AccessCoverage)
		if err != nil {
			return sim.ReplicaSpec{}, fmt.Errorf("storage: spec %q: %w", s.Label, err)
		}
		access = a
	}
	return sim.ReplicaSpec{
		Label:        s.Label,
		VisibleMean:  s.VisibleMean,
		LatentMean:   s.LatentMean,
		Scrub:        strat,
		AccessDetect: access,
		Repair:       rep,
		Hazard:       s.Hazard,
	}, nil
}

// DiskSpec derives a Spec from a §6.1 drive datasheet: visible mean
// from the service-life fault probability (MTTFHours), latent mean from
// the Schwarz latent-to-visible ratio the paper's own worked example
// uses, and repair at full-media copy speed.
func DiskSpec(d DriveSpec, scrubsPerYear float64) Spec {
	return Spec{
		Label:         d.Class.String() + "-disk",
		VisibleMean:   d.MTTFHours(),
		LatentMean:    d.MTTFHours() / model.SchwarzLatentFactor,
		ScrubsPerYear: scrubsPerYear,
		RepairHours:   d.FullScanHours(),
	}
}

// OfflineSpec derives a Spec from an offline medium: audits and repairs
// take the medium's handling-inclusive hours, and the caller supplies
// the fault means (offline media fail for shelf-life reasons a disk
// datasheet cannot predict).
func OfflineSpec(m Media, visibleMean, latentMean, auditsPerYear float64) Spec {
	return Spec{
		Label:         m.Name,
		VisibleMean:   visibleMean,
		LatentMean:    latentMean,
		ScrubsPerYear: auditsPerYear,
		RepairHours:   m.RepairHours,
	}
}

// TierSpec resolves a named storage tier into a Spec at the given audit
// frequency: the shared vocabulary behind `ltsim -replica consumer` and
// the daemon's {"tier": "consumer"} fleet entries, defined once so CLI
// and service agree on what a tier means (and hence on cache keys).
//
//	consumer    the §6.1 Barracuda-class drive
//	enterprise  the §6.1 Cheetah-class drive
//	tape        an offline shelf: 3× consumer fault means (shelved media
//	            dodge in-service wear), handling-scale repairs, audited
//	            once a year regardless of scrubsPerYear
//
// ok is false for an unknown name; TierNames lists the valid ones.
func TierSpec(name string, scrubsPerYear float64) (Spec, bool) {
	switch name {
	case "consumer":
		return DiskSpec(Barracuda200(), scrubsPerYear), true
	case "enterprise":
		return DiskSpec(Cheetah146(), scrubsPerYear), true
	case "tape":
		d := Barracuda200()
		shelf := TapeShelf(200, 80, 24, 0.001, 0.001, 15)
		return OfflineSpec(shelf, 3*d.MTTFHours(), 3*d.MTTFHours()/model.SchwarzLatentFactor, 1), true
	}
	return Spec{}, false
}

// TierNames returns the names TierSpec accepts, for error messages.
func TierNames() []string { return []string{"consumer", "enterprise", "tape"} }

// FleetConfig assembles a heterogeneous-fleet simulator configuration
// from named storage specs: one replica per spec, independent replicas
// by default (set Correlation afterwards for the §5.3 α models).
func FleetConfig(specs ...Spec) (sim.Config, error) {
	if len(specs) == 0 {
		return sim.Config{}, fmt.Errorf("%w: fleet needs at least one spec", ErrInvalid)
	}
	rs := make([]sim.ReplicaSpec, len(specs))
	for i, s := range specs {
		r, err := s.ReplicaSpec()
		if err != nil {
			return sim.Config{}, fmt.Errorf("storage: fleet replica %d: %w", i, err)
		}
		rs[i] = r
	}
	return sim.Config{Specs: rs, Correlation: faults.Independent{}}, nil
}
