package storage

import (
	"math"
	"testing"

	"repro/internal/model"
)

func relErr(got, want float64) float64 { return math.Abs(got-want) / math.Abs(want) }

func TestPresetsValidate(t *testing.T) {
	for _, d := range []DriveSpec{Barracuda200(), Cheetah146()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*DriveSpec)
	}{
		{"zero capacity", func(d *DriveSpec) { d.CapacityGB = 0 }},
		{"negative rate", func(d *DriveSpec) { d.SustainedMBps = -1 }},
		{"UBER above 1", func(d *DriveSpec) { d.UBER = 2 }},
		{"fault prob 1", func(d *DriveSpec) { d.ServiceLifeFaultProb = 1 }},
		{"NaN price", func(d *DriveSpec) { d.PricePerGB = math.NaN() }},
		{"zero life", func(d *DriveSpec) { d.ServiceLifeYears = 0 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := Barracuda200()
			c.mutate(&d)
			if err := d.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}

// §6.1: "a 200GB consumer Barracuda drive has a 7% visible fault
// probability in a 5-year service life, whereas a 146GB enterprise
// Cheetah has a 3% fault probability. But the Cheetah costs about 14
// times as much per byte."
func TestPaperSection61Quotes(t *testing.T) {
	b, c := Barracuda200(), Cheetah146()
	if got := PriceRatio(b, c); math.Abs(got-14.4) > 0.1 {
		t.Errorf("price ratio = %v, paper says about 14 (8.20/0.57 = 14.4)", got)
	}
	if b.UBER != 1e-14 || c.UBER != 1e-15 {
		t.Errorf("UBERs = %v, %v; paper quotes 1e-14 and 1e-15", b.UBER, c.UBER)
	}
	if b.ServiceLifeFaultProb != 0.07 || c.ServiceLifeFaultProb != 0.03 {
		t.Error("five-year fault probabilities must match §6.1 (7% and 3%)")
	}
}

// The Cheetah's derived MTTF must agree with §5.4's MV = 1.4e6 hours —
// the paper uses the same drive in both sections.
func TestCheetahMTTFMatchesSection54(t *testing.T) {
	mttf := Cheetah146().MTTFHours()
	if relErr(mttf, model.PaperMV) > 0.03 {
		t.Errorf("Cheetah derived MTTF = %.3g h, want within 3%% of paper MV %.3g h", mttf, model.PaperMV)
	}
}

// §6.1: "Even if the drives spend their 5 year life 99% idle, the
// Barracuda will suffer about 8 and the Cheetah about 6 irrecoverable bit
// errors." The Barracuda number reproduces from its sustained media rate;
// the Cheetah's printed 6 requires a higher effective rate than any
// single-drive figure on its datasheet (see EXPERIMENTS.md E7) — at its
// sustained rate the model yields ~1, still the same order and the same
// qualitative conclusion (enterprise money does not buy away bit errors).
func TestLifetimeBitErrors(t *testing.T) {
	b := Barracuda200()
	gotB := b.LifetimeBitErrors(0.01, 0)
	if gotB < 7 || gotB > 9 {
		t.Errorf("Barracuda lifetime bit errors = %.2f, paper says about 8", gotB)
	}
	c := Cheetah146()
	gotC := c.LifetimeBitErrors(0.01, 0)
	if gotC < 0.5 || gotC > 6.5 {
		t.Errorf("Cheetah lifetime bit errors = %.2f, want order of the paper's ~6", gotC)
	}
	// The paper's qualitative claim: the 14x price buys only a modest
	// reduction in bit errors, nowhere near the 10x UBER ratio suggests,
	// because the faster drive reads more bits.
	if gotC >= gotB {
		t.Errorf("enterprise drive bit errors %.2f should be below consumer %.2f", gotC, gotB)
	}
	if gotB/gotC > 10 {
		t.Errorf("bit error ratio %.1f should be well below the 10x UBER ratio", gotB/gotC)
	}
	// At the paper's quoted 300 MB/s interface rate the Cheetah shows
	// ~3.8 errors — "about" the printed 6, given the paper's rounding.
	got300 := c.LifetimeBitErrors(0.01, c.InterfaceMBps)
	if got300 < 3 || got300 > 6.5 {
		t.Errorf("Cheetah bit errors at 300 MB/s = %.2f, want 3-6.5", got300)
	}
}

func TestLifetimeBitErrorsClamping(t *testing.T) {
	b := Barracuda200()
	if got := b.LifetimeBitErrors(-0.5, 0); got != 0 {
		t.Errorf("negative duty gave %v errors, want 0", got)
	}
	full := b.LifetimeBitErrors(1, 0)
	if got := b.LifetimeBitErrors(2, 0); got != full {
		t.Errorf("duty above 1 not clamped: %v != %v", got, full)
	}
}

func TestFullScanHours(t *testing.T) {
	c := Cheetah146()
	// 146e9 bytes at 85 MB/s = 1717.6 s = 0.477 h.
	want := 146e9 / (85e6) / 3600
	if got := c.FullScanHours(); relErr(got, want) > 1e-12 {
		t.Errorf("full scan = %v h, want %v", got, want)
	}
}

func TestScanBitErrorProbability(t *testing.T) {
	b := Barracuda200()
	// 200GB = 1.6e12 bits; x 1e-14 = 0.016 expected errors per scan.
	want := 1 - math.Exp(-1.6e12*1e-14)
	if got := b.ScanBitErrorProbability(); relErr(got, want) > 1e-9 {
		t.Errorf("scan bit error probability = %v, want %v", got, want)
	}
	// Consumer drive must carry more per-scan risk than enterprise.
	if b.ScanBitErrorProbability() <= Cheetah146().ScanBitErrorProbability() {
		t.Error("consumer scan risk should exceed enterprise")
	}
}

func TestMTTFMonotoneInFaultProb(t *testing.T) {
	d := Barracuda200()
	prev := math.Inf(1)
	for _, p := range []float64{0.01, 0.03, 0.07, 0.2, 0.5} {
		d.ServiceLifeFaultProb = p
		mttf := d.MTTFHours()
		if mttf >= prev {
			t.Errorf("MTTF %v at fault prob %v should fall below %v", mttf, p, prev)
		}
		prev = mttf
	}
}

func TestPriceAndCapacityDerived(t *testing.T) {
	b := Barracuda200()
	if got := b.Price(); relErr(got, 114) > 1e-12 { // 200 * 0.57
		t.Errorf("Barracuda price = %v, want 114", got)
	}
	if got := b.CapacityBits(); relErr(got, 1.6e12) > 1e-12 {
		t.Errorf("capacity bits = %v, want 1.6e12", got)
	}
	if Barracuda200().Class.String() != "consumer" || Cheetah146().Class.String() != "enterprise" {
		t.Error("class strings wrong")
	}
}
