package storage

import (
	"math"
	"testing"
)

func TestMediaKindString(t *testing.T) {
	if Online.String() != "online" || Offline.String() != "offline" {
		t.Error("media kind strings wrong")
	}
	if MediaKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestDiskMedia(t *testing.T) {
	d := Cheetah146()
	m := DiskMedia(d, 1e-6)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Kind != Online {
		t.Error("disk media should be online")
	}
	if m.AuditHours != d.FullScanHours() {
		t.Errorf("audit hours = %v, want full scan %v", m.AuditHours, d.FullScanHours())
	}
	if m.HandlingFaultProb != 0 {
		t.Error("online media should have no handling faults")
	}
	if m.RepairHours != d.FullScanHours() {
		t.Errorf("repair hours = %v, want %v", m.RepairHours, d.FullScanHours())
	}
}

func TestTapeShelf(t *testing.T) {
	m := TapeShelf(400, 80, 24, 0.001, 0.0005, 35)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Kind != Offline {
		t.Error("tape should be offline")
	}
	readHours := 400e9 / 80e6 / 3600
	if math.Abs(m.AuditHours-(24+readHours)) > 1e-9 {
		t.Errorf("audit hours = %v, want retrieve 24 + read %v", m.AuditHours, readHours)
	}
	if m.AuditCost != 35 {
		t.Errorf("audit cost = %v, want 35", m.AuditCost)
	}
}

// §6.2's comparison: auditing offline media is both slower and more
// dangerous than auditing online replicas.
func TestTapeAuditWorseThanDisk(t *testing.T) {
	disk := DiskMedia(Barracuda200(), 1e-6)
	tape := TapeShelf(400, 80, 24, 0.001, 0.0005, 35)
	if tape.AuditHours <= disk.AuditHours {
		t.Error("tape audit should take longer than disk audit")
	}
	if tape.AuditCost <= disk.AuditCost {
		t.Error("tape audit should cost more than disk audit")
	}
	if tape.AuditFaultProb() <= disk.AuditFaultProb() {
		t.Error("tape audit should carry more fault risk than disk audit")
	}
}

func TestAuditFaultProbCombination(t *testing.T) {
	m := Media{Name: "x", Kind: Offline, HandlingFaultProb: 0.1, ReadWearFaultProb: 0.2}
	want := 1 - 0.9*0.8
	if got := m.AuditFaultProb(); math.Abs(got-want) > 1e-12 {
		t.Errorf("combined audit fault probability = %v, want %v", got, want)
	}
	// Zero channels combine to zero.
	clean := Media{Name: "y", Kind: Online}
	if clean.AuditFaultProb() != 0 {
		t.Error("fault-free media should have zero audit risk")
	}
}

func TestMediaValidateRejections(t *testing.T) {
	good := TapeShelf(400, 80, 24, 0.001, 0.0005, 35)
	cases := []struct {
		name   string
		mutate func(*Media)
	}{
		{"bad kind", func(m *Media) { m.Kind = MediaKind(5) }},
		{"negative audit hours", func(m *Media) { m.AuditHours = -1 }},
		{"negative cost", func(m *Media) { m.AuditCost = -0.01 }},
		{"handling prob above 1", func(m *Media) { m.HandlingFaultProb = 1.1 }},
		{"NaN wear", func(m *Media) { m.ReadWearFaultProb = math.NaN() }},
		{"negative repair", func(m *Media) { m.RepairHours = -2 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := good
			c.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Errorf("Validate accepted %s", c.name)
			}
		})
	}
}
