package storage

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func TestDiskSpecDerivation(t *testing.T) {
	d := Barracuda200()
	s := DiskSpec(d, 12)
	if s.Label != "consumer-disk" {
		t.Errorf("label %q, want consumer-disk", s.Label)
	}
	if s.VisibleMean != d.MTTFHours() {
		t.Errorf("visible mean %v, want datasheet MTTF %v", s.VisibleMean, d.MTTFHours())
	}
	if want := d.MTTFHours() / model.SchwarzLatentFactor; s.LatentMean != want {
		t.Errorf("latent mean %v, want MTTF/Schwarz %v", s.LatentMean, want)
	}
	if s.RepairHours != d.FullScanHours() {
		t.Errorf("repair hours %v, want full-scan %v", s.RepairHours, d.FullScanHours())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	good := DiskSpec(Cheetah146(), 4)
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero visible mean", func(s *Spec) { s.VisibleMean = 0 }},
		{"NaN latent mean", func(s *Spec) { s.LatentMean = math.NaN() }},
		{"zero repair", func(s *Spec) { s.RepairHours = 0 }},
		{"infinite repair", func(s *Spec) { s.RepairHours = math.Inf(1) }},
		{"negative scrubs", func(s *Spec) { s.ScrubsPerYear = -1 }},
		{"NaN scrub offset", func(s *Spec) { s.ScrubOffset = math.NaN() }},
		{"infinite scrub offset", func(s *Spec) { s.ScrubOffset = math.Inf(1) }},
		{"access rate without coverage", func(s *Spec) { s.AccessRatePerHour = 0.5 }},
		{"access coverage without rate", func(s *Spec) { s.AccessCoverage = 0.1 }},
		{"negative access rate", func(s *Spec) { s.AccessRatePerHour = -1; s.AccessCoverage = 0.1 }},
		{"access coverage above 1", func(s *Spec) { s.AccessRatePerHour = 0.5; s.AccessCoverage = 1.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good
			tc.mutate(&s)
			if err := s.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
			if _, err := s.ReplicaSpec(); err == nil {
				t.Errorf("ReplicaSpec accepted %s", tc.name)
			}
		})
	}
}

func TestReplicaSpecBridge(t *testing.T) {
	s := DiskSpec(Barracuda200(), 12)
	s.ScrubOffset = 100
	s.AccessRatePerHour = 0.5
	s.AccessCoverage = 0.1
	rs, err := s.ReplicaSpec()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Label != s.Label || rs.VisibleMean != s.VisibleMean || rs.LatentMean != s.LatentMean {
		t.Errorf("bridge lost fields: %+v from %+v", rs, s)
	}
	if rs.Scrub == nil || math.Abs(rs.Scrub.MeanDetectionLag()-8760.0/12/2) > 1e-9 {
		t.Errorf("scrub lag %v, want half of monthly interval", rs.Scrub.MeanDetectionLag())
	}
	if rs.AccessDetect == nil {
		t.Error("access channel dropped")
	}
	if rs.Repair.MeanVisible() != s.RepairHours || rs.Repair.MeanLatent() != s.RepairHours {
		t.Errorf("repair means %v/%v, want %v", rs.Repair.MeanVisible(), rs.Repair.MeanLatent(), s.RepairHours)
	}

	// Never-audited, no-access spec bridges to scrub.None and nil detect.
	bare := OfflineSpec(TapeShelf(200, 80, 24, 0.001, 0.001, 15), 1e6, 2e5, 0)
	brs, err := bare.ReplicaSpec()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(brs.Scrub.MeanDetectionLag(), 1) {
		t.Errorf("unaudited spec got scrub %v, want none", brs.Scrub.Name())
	}
	if brs.AccessDetect != nil {
		t.Error("unaudited spec grew an access channel")
	}
}

func TestFleetConfigEndToEnd(t *testing.T) {
	if _, err := FleetConfig(); err == nil {
		t.Error("FleetConfig accepted an empty fleet")
	}
	consumer := DiskSpec(Barracuda200(), 12)
	enterprise := DiskSpec(Cheetah146(), 12)
	tape := OfflineSpec(TapeShelf(200, 80, 24, 0.001, 0.001, 15), 2e6, 4e5, 1)
	cfg, err := FleetConfig(consumer, enterprise, tape)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumReplicas() != 3 {
		t.Errorf("fleet has %d replicas, want 3", cfg.NumReplicas())
	}
	labels := []string{"consumer-disk", "enterprise-disk", "offline tape shelf"}
	for i, rs := range cfg.ReplicaSpecs() {
		if rs.Label != labels[i] {
			t.Errorf("replica %d label %q, want %q", i, rs.Label, labels[i])
		}
	}
	// The fleet must run: a short censored estimate through the runner.
	r, err := sim.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est, err := r.Estimate(sim.Options{Trials: 50, Seed: 1, Horizon: 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 50 {
		t.Errorf("ran %d trials, want 50", est.Trials)
	}
}

func TestTierSpec(t *testing.T) {
	for _, name := range TierNames() {
		s, ok := TierSpec(name, 12)
		if !ok {
			t.Fatalf("TierSpec(%q) not found despite being in TierNames", name)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("tier %q spec invalid: %v", name, err)
		}
		if _, err := s.ReplicaSpec(); err != nil {
			t.Errorf("tier %q does not bridge: %v", name, err)
		}
	}
	if s, ok := TierSpec("consumer", 12); !ok || s.ScrubsPerYear != 12 {
		t.Errorf("consumer tier scrubs = %v, want the given 12", s.ScrubsPerYear)
	}
	// Tape audits on its own yearly schedule regardless of the default.
	if s, ok := TierSpec("tape", 12); !ok || s.ScrubsPerYear != 1 {
		t.Errorf("tape tier scrubs = %v, want 1", s.ScrubsPerYear)
	}
	if _, ok := TierSpec("floppy", 12); ok {
		t.Error("TierSpec accepted an unknown tier name")
	}
}

func TestFleetConfigZeroSpecsErrorIsClear(t *testing.T) {
	_, err := FleetConfig()
	if err == nil {
		t.Fatal("FleetConfig accepted a zero-drive fleet")
	}
	if !errors.Is(err, ErrInvalid) {
		t.Errorf("zero-drive error %v does not wrap storage.ErrInvalid", err)
	}
	if !strings.Contains(err.Error(), "at least one") {
		t.Errorf("zero-drive error %q does not explain the requirement", err)
	}
}
