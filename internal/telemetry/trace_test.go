package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

func TestTraceMarksOrdered(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID) != 16 {
		t.Fatalf("trace ID %q, want 16 hex chars", tr.ID)
	}
	for _, name := range []string{"received", "queued", "running", "served"} {
		tr.Mark(name)
	}
	marks := tr.Marks()
	if len(marks) != 4 {
		t.Fatalf("got %d marks, want 4", len(marks))
	}
	for i := 1; i < len(marks); i++ {
		if marks[i].At.Before(marks[i-1].At) {
			t.Errorf("mark %q at %v precedes %q at %v", marks[i].Name, marks[i].At, marks[i-1].Name, marks[i-1].At)
		}
	}
	q, _ := tr.At("queued")
	ru, _ := tr.At("running")
	se, _ := tr.At("served")
	if q.After(ru) || ru.After(se) {
		t.Errorf("span order violated: queued=%v running=%v served=%v", q, ru, se)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].AtMS < spans[i-1].AtMS {
			t.Errorf("span offsets not monotonic: %+v", spans)
		}
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Mark("anything")
	if tr.Marks() != nil || tr.Spans() != nil && len(tr.Spans()) != 0 {
		t.Error("nil trace should carry no marks")
	}
	if _, ok := tr.At("x"); ok {
		t.Error("nil trace At returned ok")
	}
	if tr.LogAttrs() != nil {
		t.Error("nil trace LogAttrs should be nil")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the attached trace")
	}
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatal("TraceFrom on empty context should be nil")
	}
	// The nil result must be markable without branching.
	TraceFrom(context.Background()).Mark("noop")
}

// TestTraceLogEmission checks a trace renders as one structured NDJSON
// record with id and spans.
func TestTraceLogEmission(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	tr := NewTrace()
	tr.Mark("received")
	tr.Mark("served")
	logger.LogAttrs(context.Background(), slog.LevelInfo, "request", tr.LogAttrs()...)

	var rec struct {
		Msg     string `json:"msg"`
		Request string `json:"request"`
		Spans   []Span `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec.Request != tr.ID {
		t.Errorf("request id = %q, want %q", rec.Request, tr.ID)
	}
	if len(rec.Spans) != 2 || rec.Spans[0].Name != "received" || rec.Spans[1].Name != "served" {
		t.Errorf("spans = %+v", rec.Spans)
	}
}

func TestUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := newTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}
