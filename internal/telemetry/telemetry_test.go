package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	buckets, sum, count := h.Snapshot()
	// Per-bucket (non-cumulative): (-inf,1]=2 {0.5, 1}, (1,2]=1 {1.5},
	// (2,5]=1 {3}, (5,+inf)=1 {100}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, buckets[i], w, buckets)
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if math.Abs(sum-106) > 1e-9 {
		t.Errorf("sum = %v, want 106", sum)
	}
}

func TestVecChildrenAreStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits_total", "hits", "route")
	a := v.With("/estimate")
	b := v.With("/estimate")
	a.Inc()
	b.Inc()
	if got := v.With("/estimate").Value(); got != 2 {
		t.Fatalf("shared child = %d, want 2", got)
	}
	if got := v.With("/sweep").Value(); got != 0 {
		t.Fatalf("distinct child = %d, want 0", got)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("re-registration did not return the existing family")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x") // same name, different kind
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9lives", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

// TestConcurrentRegistry hammers every instrument type from many
// goroutines while exposition runs, for the race detector.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	hv := r.HistogramVec("h_seconds", "", []float64{0.1, 1}, "route")
	cv := r.CounterVec("cv_total", "", "k")
	r.GaugeFunc("gf", "", func() float64 { return 42 })

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hv.With("/estimate")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) / 2)
				cv.With([]string{"a", "b"}[i%2]).Inc()
			}
		}(w)
	}
	// Concurrent exposition must not race with recording.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != workers*iters {
		t.Errorf("gauge = %v, want %d", got, workers*iters)
	}
	_, _, count := hv.With("/estimate").Snapshot()
	if count != workers*iters {
		t.Errorf("histogram count = %d, want %d", count, workers*iters)
	}
}
