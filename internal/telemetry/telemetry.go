// Package telemetry is the observability substrate for the simulation
// stack: a stdlib-only, allocation-light metrics registry (atomic
// counters, gauges, and fixed-bucket histograms, with bounded label
// sets), Prometheus text-format exposition, and per-request tracing
// (request IDs plus span timelines emitted as structured log/slog
// records).
//
// The design optimizes for the recording path: handles resolved once
// (Registry.Counter, CounterVec.With, ...) record with a single atomic
// operation and zero allocations, so instruments can sit on hot paths —
// the simulator records only at batch boundaries, and even the HTTP
// middleware's per-request cost is a handful of atomics. Registration
// is idempotent: re-registering the same name with the same shape
// returns the existing family, so independently initialized subsystems
// can share a registry safely.
//
// Exposition (Registry.WritePrometheus, Registry.Handler) renders the
// standard Prometheus text format: families sorted by name, HELP/TYPE
// comments, cumulative histogram buckets with the implicit "+Inf", and
// _sum/_count series.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DurationBuckets is the default latency histogram layout, in seconds:
// wide enough for sub-millisecond cache hits and minute-long
// simulations alike.
var DurationBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// WidthBuckets is the default layout for relative-width observations
// (adaptive stopping trajectories): dimensionless ratios in (0, 1+].
var WidthBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label schema and one child
// series per label-value combination.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, sorted, +Inf implicit

	mu       sync.RWMutex
	children map[string]*child
}

// child is one series: the atomic storage behind a Counter, Gauge, or
// Histogram handle.
type child struct {
	labelValues []string

	// bits holds the counter count, or the gauge value's float64 bits.
	bits atomic.Uint64
	// fn, when non-nil, makes this a callback gauge read at exposition.
	fn func() float64

	// Histogram state: one count per bucket plus the overflow bucket,
	// and the running sum/count. bucketsRef aliases the family's bounds
	// so Observe never chases the family pointer.
	bucketCounts []atomic.Uint64
	bucketsRef   []float64
	sumBits      atomic.Uint64
	count        atomic.Uint64
}

// Counter is a monotonically increasing series handle.
type Counter struct{ c *child }

// Inc adds one.
func (c *Counter) Inc() { c.c.bits.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.c.bits.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.c.bits.Load() }

// Gauge is a series handle whose value can move both ways.
type Gauge struct{ c *child }

// Set stores v.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram is a fixed-bucket distribution handle.
type Histogram struct{ c *child }

// Observe records v into its bucket and the running sum.
func (h *Histogram) Observe(v float64) {
	c := h.c
	// Linear scan: bucket layouts are small (≤ ~20) and the scan is
	// branch-predictable, so this beats binary search at these sizes.
	i := 0
	for ; i < len(c.bucketsRef); i++ {
		if v <= c.bucketsRef[i] {
			break
		}
	}
	c.bucketCounts[i].Add(1)
	c.count.Add(1)
	for {
		old := c.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Snapshot returns the per-bucket counts (overflow last), the sum, and
// the total count — a consistent-enough view for tests and debugging
// (buckets are read one by one, so a concurrent Observe may appear in
// count but not yet in a bucket).
func (h *Histogram) Snapshot() (buckets []uint64, sum float64, count uint64) {
	buckets = make([]uint64, len(h.c.bucketCounts))
	for i := range h.c.bucketCounts {
		buckets[i] = h.c.bucketCounts[i].Load()
	}
	return buckets, math.Float64frombits(h.c.sumBits.Load()), h.c.count.Load()
}

// register finds or creates the family, enforcing shape consistency.
func (r *Registry) register(name, help string, kind Kind, labels []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different shape", name))
		}
		return f
	}
	if kind == KindHistogram {
		if len(buckets) == 0 {
			buckets = DurationBuckets
		}
		if !sort.Float64sAreSorted(buckets) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets are not sorted", name))
		}
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// childFor finds or creates the series for the given label values.
func (f *family) childFor(values []string, fn func() float64) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...), fn: fn}
	if f.kind == KindHistogram {
		c.bucketCounts = make([]atomic.Uint64, len(f.buckets)+1)
		c.bucketsRef = f.buckets
	}
	f.children[key] = c
	return c
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil)
	return &Counter{f.childFor(nil, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil)
	return &Gauge{f.childFor(nil, nil)}
}

// GaugeFunc registers a callback gauge: fn is evaluated at exposition.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.childFor(nil, fn)
}

// Histogram registers (or finds) an unlabeled histogram. A nil bucket
// layout defaults to DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, buckets)
	return &Histogram{f.childFor(nil, nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil)}
}

// With resolves (creating if needed) the series for the label values.
// Resolve once and keep the handle on hot paths.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{v.f.childFor(values, nil)}
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil)}
}

// With resolves the settable series for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{v.f.childFor(values, nil)}
}

// Func registers a callback series under the label values: fn is
// evaluated at exposition time (e.g. a queue-depth probe per shard).
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	v.f.childFor(values, fn)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family. A nil
// bucket layout defaults to DurationBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, buckets)}
}

// With resolves the series for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return &Histogram{v.f.childFor(values, nil)}
}

// mustValidName enforces the Prometheus name charset.
func mustValidName(s string) {
	if s == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", s))
		}
	}
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
