package telemetry

import (
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text a small registry renders:
// family sort order, HELP/TYPE comments, label rendering and escaping,
// cumulative buckets with the implicit +Inf, and _sum/_count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "b counter").Add(7)
	v := r.CounterVec("a_total", "a counter", "route", "status")
	v.With("/estimate", "200").Add(3)
	v.With("/sweep", "400").Inc()
	r.Gauge("c_depth", "depth").Set(2.5)
	r.GaugeFunc("d_fn", "callback", func() float64 { return 9 })
	h := r.Histogram("e_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	r.CounterVec("f_total", `esc "quoted"\n`, "k").With("va\"l\\ue\n").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_total a counter
# TYPE a_total counter
a_total{route="/estimate",status="200"} 3
a_total{route="/sweep",status="400"} 1
# HELP b_total b counter
# TYPE b_total counter
b_total 7
# HELP c_depth depth
# TYPE c_depth gauge
c_depth 2.5
# HELP d_fn callback
# TYPE d_fn gauge
d_fn 9
# HELP e_seconds latency
# TYPE e_seconds histogram
e_seconds_bucket{le="0.1"} 1
e_seconds_bucket{le="1"} 2
e_seconds_bucket{le="+Inf"} 3
e_seconds_sum 3.55
e_seconds_count 3
# HELP f_total esc "quoted"\\n
# TYPE f_total counter
f_total{k="va\"l\\ue\n"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// sampleLine matches one exposition sample: name{labels} value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)

// TestExpositionParses validates the format structurally on a larger
// registry: every non-comment line is a well-formed sample, every
// sample's family was declared by a TYPE line first, histogram buckets
// are cumulative, and the +Inf bucket equals _count.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("x_seconds", "x", []float64{0.01, 0.1, 1}, "route", "cache")
	for i := 0; i < 100; i++ {
		hv.With("/estimate", []string{"hit", "miss"}[i%2]).Observe(float64(i) / 50)
	}
	cv := r.CounterVec("y_total", "y", "shard")
	for i := 0; i < 4; i++ {
		cv.With(strconv.Itoa(i)).Add(uint64(i))
	}
	r.Gauge("z", "z").Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	declared := map[string]bool{}
	type histKey struct{ name, labels string }
	lastBucket := map[histKey]uint64{}
	infBucket := map[histKey]uint64{}
	counts := map[histKey]uint64{}
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			declared[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line %q", line)
		}
		name, rest, _ := strings.Cut(line, "{")
		if !strings.Contains(line, "{") {
			name = strings.Fields(line)[0]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && declared[cut] {
				base = cut
			}
		}
		if !declared[base] {
			t.Fatalf("sample %q has no TYPE declaration (base %q)", line, base)
		}
		if strings.HasSuffix(name, "_bucket") {
			labels, valStr, _ := strings.Cut(rest, "} ")
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			// Strip the le pair so buckets of one series group together.
			le := regexp.MustCompile(`,?le="[^"]*"`).FindString(labels)
			key := histKey{base, strings.Replace(labels, le, "", 1)}
			if v < lastBucket[key] {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastBucket[key] = v
			if strings.Contains(le, "+Inf") {
				infBucket[key] = v
			}
		}
		if strings.HasSuffix(name, "_count") && declared[base] && base != name {
			labels, valStr, _ := strings.Cut(rest, "} ")
			v, _ := strconv.ParseUint(valStr, 10, 64)
			counts[histKey{base, labels}] = v
		}
	}
	if len(infBucket) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for key, inf := range infBucket {
		if counts[key] != inf {
			t.Errorf("series %v: le=+Inf bucket %d != count %d", key, inf, counts[key])
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "up").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(rec.Body)
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("body missing sample:\n%s", body)
	}
}

// TestFormatFloat pins the special values the exposition format defines.
func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{2.5, "2.5"}, {1e-9, "1e-09"}} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := fmt.Sprint(formatFloat(1.0)); got != "1" {
		t.Errorf("formatFloat(1.0) = %q, want 1", got)
	}
}
