package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"sync"
	"time"
)

// Trace is one request's span timeline: an ID plus ordered named marks
// (received → resolved → queued → running → encoded → served in the
// simulation service). A nil *Trace is a valid no-op receiver, so code
// can mark unconditionally whether or not a trace rides the context.
type Trace struct {
	// ID is the request identifier, returned to clients in the
	// X-Ltsimd-Request header and stamped on every log record.
	ID string
	// Start anchors the timeline; marks are reported as offsets from it.
	Start time.Time

	mu    sync.Mutex
	marks []Mark
}

// Mark is one named point on a trace's timeline.
type Mark struct {
	Name string
	At   time.Time
}

// Span is a mark rendered for logging: its offset from the trace start
// in milliseconds.
type Span struct {
	Name string  `json:"name"`
	AtMS float64 `json:"at_ms"`
}

// NewTrace starts a trace now with a fresh random ID.
func NewTrace() *Trace {
	return &Trace{ID: newTraceID(), Start: time.Now()}
}

// newTraceID returns 16 hex characters of crypto randomness.
func newTraceID() string {
	var b [8]byte
	// crypto/rand.Read never fails on supported platforms (it aborts the
	// program instead), so the error is genuinely unreachable.
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Mark appends a named point at the current time. Safe on a nil trace
// and from concurrent goroutines (the scheduler worker marks "running"
// while the request goroutine may be marking its own points).
func (t *Trace) Mark(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.marks = append(t.marks, Mark{Name: name, At: time.Now()})
	t.mu.Unlock()
}

// Marks returns a copy of the timeline in mark order.
func (t *Trace) Marks() []Mark {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Mark(nil), t.marks...)
}

// At returns the first mark with the given name.
func (t *Trace) At(name string) (time.Time, bool) {
	if t == nil {
		return time.Time{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.marks {
		if m.Name == name {
			return m.At, true
		}
	}
	return time.Time{}, false
}

// Spans renders the timeline as offsets from Start, for structured
// logging ({"name":"queued","at_ms":1.42}, ...).
func (t *Trace) Spans() []Span {
	marks := t.Marks()
	spans := make([]Span, len(marks))
	for i, m := range marks {
		spans[i] = Span{Name: m.Name, AtMS: float64(m.At.Sub(t.Start).Nanoseconds()) / 1e6}
	}
	return spans
}

// LogAttrs returns the trace's standard log attributes: its ID and the
// span timeline.
func (t *Trace) LogAttrs() []slog.Attr {
	if t == nil {
		return nil
	}
	return []slog.Attr{slog.String("request", t.ID), slog.Any("spans", t.Spans())}
}

// ctxKey is the context key type for traces.
type ctxKey struct{}

// WithTrace attaches t to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFrom returns the context's trace, or nil — and nil is safe to
// Mark, so callers never need to branch.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
