package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in the Prometheus text format
// (version 0.0.4): families sorted by name, children sorted by label
// values, HELP/TYPE comments, and for histograms the cumulative
// _bucket/_sum/_count series with the implicit le="+Inf" bucket.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.RUnlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	var b strings.Builder
	for _, f := range families {
		b.Reset()
		if err := f.write(&b); err != nil {
			return err
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// write renders one family.
func (f *family) write(b *strings.Builder) error {
	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].labelValues, "\xff") < strings.Join(children[j].labelValues, "\xff")
	})

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case KindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.bits.Load(), 10))
			b.WriteByte('\n')
		case KindGauge:
			v := math.Float64frombits(c.bits.Load())
			if c.fn != nil {
				v = c.fn()
			}
			b.WriteString(f.name)
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(v))
			b.WriteByte('\n')
		case KindHistogram:
			var cum uint64
			for i := range c.bucketCounts {
				cum += c.bucketCounts[i].Load()
				le := "+Inf"
				if i < len(f.buckets) {
					le = formatFloat(f.buckets[i])
				}
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, c.labelValues, "le", le)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(c.sumBits.Load())))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, c.labelValues, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(c.count.Load(), 10))
			b.WriteByte('\n')
		}
	}
	return nil
}

// writeLabels renders the {k="v",...} block, appending the extra pair
// (the histogram "le") when extraKey is non-empty. No braces are
// emitted for an unlabeled series.
func writeLabels(b *strings.Builder, names, values []string, extraKey, extraVal string) {
	if len(names) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string { return helpEscaper.Replace(s) }
