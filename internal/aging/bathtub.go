package aging

import (
	"fmt"
	"math"

	"repro/internal/faults"
)

// This file is the bridge from the package's Weibull/bathtub mortality
// vocabulary to the event simulator's hazard profiles: where
// SimulatePair is a self-contained renewal model of one aging mirrored
// pair, the constructors here return faults.Hazard profiles that plug
// into sim.ReplicaSpec.Hazard, so any fleet the simulator can express
// can age. See docs/MODEL.md for the sampling contract.

// Bathtub returns the §6.5 three-phase lifetime hazard as a
// piecewise-constant profile over a fault process's base rate:
//
//	[0, burnInHours)            φ = burnInFactor   (infant mortality)
//	[burnInHours, wearOnset)    φ = 1              (useful life)
//	[wearOnset, ∞)              φ = wearFactor     (wear-out)
//
// burnInHours may be 0 to skip the burn-in phase, in which case
// burnInFactor must also be 0 (it would name a segment that does not
// exist). Factors are multipliers on the replica's configured mean fault
// rate; a same-batch fleet gives every replica the same profile, which is
// exactly the correlated wear-out the paper warns about — replicas climb
// the bathtub's right wall together.
func Bathtub(burnInHours, burnInFactor, wearOnsetHours, wearFactor float64) (faults.PiecewiseHazard, error) {
	if burnInHours == 0 && burnInFactor != 0 {
		return faults.PiecewiseHazard{}, fmt.Errorf("%w: burn-in factor %v without a burn-in phase (set burnInHours > 0)", ErrInvalid, burnInFactor)
	}
	var bounds, factors []float64
	if burnInHours > 0 {
		bounds = append(bounds, burnInHours)
		factors = append(factors, burnInFactor)
	}
	if math.IsNaN(wearOnsetHours) || math.IsInf(wearOnsetHours, 0) || wearOnsetHours <= burnInHours {
		return faults.PiecewiseHazard{}, fmt.Errorf("%w: wear onset %v h must be finite and after the burn-in phase (%v h)", ErrInvalid, wearOnsetHours, burnInHours)
	}
	bounds = append(bounds, wearOnsetHours)
	factors = append(factors, 1, wearFactor)
	h, err := faults.NewPiecewiseHazard(bounds, factors)
	if err != nil {
		return faults.PiecewiseHazard{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return h, nil
}

// Wearout returns the Weibull wear-out hazard φ(t) = shape·(t/λ)^(shape−1)
// with λ chosen so a component whose fault-process mean equals
// characteristicLifeHours has exactly Weibull(shape, λ) first-arrival
// times. shape must be >= 1; shape 1 is the memoryless constant hazard.
// For infant mortality (falling hazard) use Bathtub's burn-in phase —
// shapes below 1 have no finite thinning envelope at t = 0.
func Wearout(shape, characteristicLifeHours float64) (faults.WeibullHazard, error) {
	h, err := faults.NewWeibullHazard(shape, characteristicLifeHours)
	if err != nil {
		return faults.WeibullHazard{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return h, nil
}
