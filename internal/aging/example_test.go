package aging_test

import (
	"fmt"

	"repro/internal/aging"
	"repro/internal/faults"
)

// ExampleBathtub builds the paper's §6.5 lifetime curve — one year of
// infant mortality at 4× the nominal fault rate, five years of useful
// life, then wear-out at 8× — and shows the two operations profiles
// compose with: reading the multiplier at a point in a replica's life,
// and normalizing the profile so a ten-year horizon sees the same
// expected fault count as the constant-rate process (the equal-mean-rate
// comparison experiment E17 runs).
func ExampleBathtub() {
	const year = 8760.0
	h, err := aging.Bathtub(year, 4, 5*year, 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("multiplier at 6 months: %.0f\n", h.Multiplier(0.5*year))
	fmt.Printf("multiplier at 3 years:  %.0f\n", h.Multiplier(3*year))
	fmt.Printf("multiplier at 8 years:  %.0f\n", h.Multiplier(8*year))
	fmt.Printf("mean multiplier over 10 years: %.2f\n", h.MeanMultiplier(10*year))

	norm, err := faults.Normalize(h, 10*year)
	if err != nil {
		panic(err)
	}
	fmt.Printf("normalized mean multiplier:    %.2f\n", norm.MeanMultiplier(10*year))
	// Output:
	// multiplier at 6 months: 4
	// multiplier at 3 years:  1
	// multiplier at 8 years:  8
	// mean multiplier over 10 years: 4.80
	// normalized mean multiplier:    1.00
}
