// Package aging models age-dependent ("bathtub") drive mortality and the
// §6.5 hardware-batch hazard: "Disks in an array often come from a single
// manufacturing batch. They thus have the same firmware, same hardware
// and are the same age, and so are at the same point in the 'bathtub'
// lifetime failure curve." Same-age replicas wear out together, which is
// a correlated-fault channel the memoryless model cannot see; the cure
// the paper endorses is rolling procurement.
//
// The package provides conditional Weibull sampling (remaining lifetime
// given current age) and a small renewal simulation of a mirrored pair
// whose drives age, fail, and are replaced — deliberately simpler than
// internal/sim because age-dependent hazards break that simulator's
// memoryless resampling.
package aging

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// ErrInvalid reports an aging parameter outside its domain.
var ErrInvalid = errors.New("aging: invalid parameter")

// RemainingLifetime samples the residual life of a component that has
// survived to the given age under a Weibull(shape, scale) lifetime, by
// inverse transform of the conditional distribution:
//
//	P(L > age+t | L > age) = exp((age/λ)^k - ((age+t)/λ)^k)
//
// shape = 1 reduces to the memoryless exponential (residual independent
// of age); shape > 1 is wear-out (§6.5's bathtub right wall).
func RemainingLifetime(shape, scale, age float64, src *rng.Source) float64 {
	u := src.Float64Open()
	ak := math.Pow(age/scale, shape)
	total := scale * math.Pow(ak-math.Log(u), 1/shape)
	if total <= age { // float guard; residual must be positive
		return math.SmallestNonzeroFloat64
	}
	return total - age
}

// PairConfig describes a mirrored pair of drives with Weibull mortality.
type PairConfig struct {
	// Shape is the Weibull shape k: 1 = memoryless, >1 = wear-out.
	Shape float64
	// MeanLife is the mean drive lifetime in hours.
	MeanLife float64
	// RepairHours is the replacement time once a drive fails (the window
	// of vulnerability).
	RepairHours float64
	// InitialAges holds the two drives' ages at time zero. A same-batch
	// array has equal ages; rolling procurement staggers them.
	InitialAges [2]float64
}

// Validate reports whether the configuration is well-formed.
func (c PairConfig) Validate() error {
	if c.Shape <= 0 || math.IsNaN(c.Shape) {
		return fmt.Errorf("%w: shape %v must be positive", ErrInvalid, c.Shape)
	}
	if c.MeanLife <= 0 || math.IsNaN(c.MeanLife) {
		return fmt.Errorf("%w: mean life %v must be positive", ErrInvalid, c.MeanLife)
	}
	if c.RepairHours <= 0 || math.IsNaN(c.RepairHours) {
		return fmt.Errorf("%w: repair hours %v must be positive", ErrInvalid, c.RepairHours)
	}
	for _, a := range c.InitialAges {
		if a < 0 || math.IsNaN(a) {
			return fmt.Errorf("%w: initial age %v must be non-negative", ErrInvalid, a)
		}
	}
	return nil
}

// scale returns the Weibull scale λ for the configured mean.
func (c PairConfig) scale() float64 {
	return c.MeanLife / math.Gamma(1+1/c.Shape)
}

// Result summarizes a renewal simulation.
type Result struct {
	// Trials is the number of independent pair histories simulated.
	Trials int
	// DoubleFaults counts trials that suffered a double fault (second
	// drive failing during the first one's replacement) within the
	// horizon.
	DoubleFaults int
	// Replacements counts total drive replacements across trials.
	Replacements int
}

// DoubleFaultProbability returns the per-trial double-fault probability
// within the horizon.
func (r Result) DoubleFaultProbability() float64 {
	if r.Trials == 0 {
		return math.NaN()
	}
	return float64(r.DoubleFaults) / float64(r.Trials)
}

// SimulatePair runs the renewal simulation: two drives age and fail under
// Weibull mortality; a failed drive is replaced by a new (age-0) one
// after RepairHours; if the companion fails during that window, the trial
// records a double fault (mirrored data loss) and ends. Trials end at the
// horizon otherwise.
func SimulatePair(cfg PairConfig, trials int, horizon float64, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if trials < 1 {
		return Result{}, fmt.Errorf("%w: trials %d must be >= 1", ErrInvalid, trials)
	}
	if horizon <= 0 || math.IsNaN(horizon) {
		return Result{}, fmt.Errorf("%w: horizon %v must be positive", ErrInvalid, horizon)
	}
	root := rng.New(seed)
	scale := cfg.scale()
	var res Result
	res.Trials = trials
	for trial := 0; trial < trials; trial++ {
		src := root.Derive(uint64(trial) + 1)
		now := 0.0
		// Each drive's pending failure time, computed from its age.
		age := cfg.InitialAges
		fail := [2]float64{
			RemainingLifetime(cfg.Shape, scale, age[0], src),
			RemainingLifetime(cfg.Shape, scale, age[1], src),
		}
		for {
			first := 0
			if fail[1] < fail[0] {
				first = 1
			}
			t := fail[first]
			if t > horizon {
				break
			}
			// The first drive fails at t; its replacement completes at
			// t+R. Double fault if the companion fails in the window.
			other := 1 - first
			if fail[other] <= t+cfg.RepairHours {
				res.DoubleFaults++
				break
			}
			// Replace the failed drive with a new one.
			res.Replacements++
			now = t + cfg.RepairHours
			age[first] = 0
			fail[first] = now + RemainingLifetime(cfg.Shape, scale, 0, src)
		}
	}
	return res, nil
}

// SameBatch returns a pair configuration with both drives the same age.
func SameBatch(shape, meanLife, repairHours, age float64) PairConfig {
	return PairConfig{
		Shape: shape, MeanLife: meanLife, RepairHours: repairHours,
		InitialAges: [2]float64{age, age},
	}
}

// RollingProcurement returns a pair whose second drive is staggered by
// the given fraction of the mean life — §6.5's prescription.
func RollingProcurement(shape, meanLife, repairHours, staggerFraction float64) PairConfig {
	return PairConfig{
		Shape: shape, MeanLife: meanLife, RepairHours: repairHours,
		InitialAges: [2]float64{0, staggerFraction * meanLife},
	}
}
