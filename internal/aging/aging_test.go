package aging

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRemainingLifetimeMemorylessAtShapeOne(t *testing.T) {
	// shape=1: residual life is exponential regardless of age.
	src := rng.New(1)
	const n = 200000
	meanAt := func(age float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += RemainingLifetime(1, 1000, age, src)
		}
		return sum / n
	}
	fresh := meanAt(0)
	old := meanAt(5000)
	if math.Abs(fresh-1000)/1000 > 0.02 {
		t.Errorf("fresh residual mean %v, want 1000", fresh)
	}
	if math.Abs(old-fresh)/fresh > 0.03 {
		t.Errorf("aged residual mean %v differs from fresh %v; shape=1 must be memoryless", old, fresh)
	}
}

func TestRemainingLifetimeWearOut(t *testing.T) {
	// shape=3: an old component has much less residual life.
	src := rng.New(2)
	const n = 100000
	meanAt := func(age float64) float64 {
		var sum float64
		for i := 0; i < n; i++ {
			sum += RemainingLifetime(3, 1000, age, src)
		}
		return sum / n
	}
	fresh := meanAt(0)
	old := meanAt(1000)
	if old >= fresh/2 {
		t.Errorf("residual at age=scale %v should be far below fresh %v under wear-out", old, fresh)
	}
	// Always strictly positive.
	for i := 0; i < 1000; i++ {
		if v := RemainingLifetime(3, 1000, 5000, src); v <= 0 {
			t.Fatalf("non-positive residual %v", v)
		}
	}
}

func TestRemainingLifetimeFreshMatchesWeibullMean(t *testing.T) {
	// At age 0 the residual is a plain Weibull draw; its mean is
	// scale * Gamma(1 + 1/k).
	src := rng.New(3)
	const n = 200000
	shape, scale := 2.0, 700.0
	var sum float64
	for i := 0; i < n; i++ {
		sum += RemainingLifetime(shape, scale, 0, src)
	}
	want := scale * math.Gamma(1+1/shape)
	if got := sum / n; math.Abs(got-want)/want > 0.02 {
		t.Errorf("fresh mean %v, want %v", got, want)
	}
}

func TestPairConfigValidate(t *testing.T) {
	good := SameBatch(3, 40000, 24, 0)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []PairConfig{
		{Shape: 0, MeanLife: 1000, RepairHours: 1},
		{Shape: 1, MeanLife: 0, RepairHours: 1},
		{Shape: 1, MeanLife: 1000, RepairHours: 0},
		{Shape: 1, MeanLife: 1000, RepairHours: 1, InitialAges: [2]float64{-1, 0}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestSimulatePairArgumentChecks(t *testing.T) {
	cfg := SameBatch(1, 1000, 10, 0)
	if _, err := SimulatePair(cfg, 0, 1000, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := SimulatePair(cfg, 10, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	bad := cfg
	bad.Shape = -1
	if _, err := SimulatePair(bad, 10, 1000, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSimulatePairMemorylessMatchesTheory(t *testing.T) {
	// shape=1 reduces to the exponential mirror: P(double fault within
	// horizon) ≈ 1 - exp(-horizon / (MeanLife²/(2·R))).
	cfg := SameBatch(1, 1000, 10, 0)
	res, err := SimulatePair(cfg, 30000, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	mttdl := 1000.0 * 1000 / (2 * 10)
	want := 1 - math.Exp(-20000/mttdl)
	got := res.DoubleFaultProbability()
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("memoryless double-fault probability %v, want ~%v", got, want)
	}
	if res.Replacements == 0 {
		t.Error("no replacements recorded")
	}
}

// §6.5's claim, quantified: under wear-out mortality, same-batch pairs
// suffer far more double faults than staggered pairs, while under
// memoryless mortality batch age is irrelevant.
func TestSameBatchPenaltyOnlyUnderWearOut(t *testing.T) {
	const (
		meanLife = 40000.0
		repair   = 100.0
		horizon  = 50000.0 // ~one procurement generation
		trials   = 20000
	)
	run := func(cfg PairConfig) float64 {
		res, err := SimulatePair(cfg, trials, horizon, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res.DoubleFaultProbability()
	}
	// Sharp wear-out (shape 8, the tight mortality clustering of one
	// manufacturing batch): same batch vs half-life stagger. Over one
	// generation the same-batch pair's failures cluster, the staggered
	// pair's cannot.
	same := run(SameBatch(8, meanLife, repair, 0))
	staggered := run(RollingProcurement(8, meanLife, repair, 0.5))
	if same < 3*staggered {
		t.Errorf("wear-out same-batch double-fault probability %v should be >= 3x staggered %v", same, staggered)
	}
	// Memoryless: batch age must not matter (within MC noise).
	sameExp := run(SameBatch(1, meanLife, repair, 0))
	stagExp := run(RollingProcurement(1, meanLife, repair, 0.5))
	if sameExp == 0 || stagExp == 0 {
		t.Skip("insufficient events for the memoryless comparison")
	}
	if ratio := sameExp / stagExp; ratio > 1.5 || ratio < 0.67 {
		t.Errorf("memoryless same/staggered ratio %v, want ~1", ratio)
	}
}
